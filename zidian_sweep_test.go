package zidian

import (
	"fmt"
	"testing"
	"time"
)

// The background reclamation sweep: retired MVCC versions and pending
// posting shrinks on a quiescent relation are reclaimed between commits —
// normally that work rides the relation's *next* commit, so the last
// commit's retirees would otherwise sit live forever.

// TestSweepMVCCQuiescentRelation: deletes committed while a snapshot was
// pinned leave their superseded versions live; once the pin releases and the
// relation goes quiescent, only the sweep can reclaim them (commit-path
// reclamation rides the *next* commit, which never comes). One sweep drops
// them, the swept counter advances by exactly that amount, and a second
// sweep finds nothing.
func TestSweepMVCCQuiescentRelation(t *testing.T) {
	for _, eng := range mvccEngines {
		inst := mvccItemsInstance(t, eng)
		snap := inst.Store().PinSnapshot([]string{"ITEM"})
		for i := 0; i < 5; i++ {
			if _, err := inst.Exec(fmt.Sprintf("delete from ITEM where item_id = %d", i)); err != nil {
				t.Fatal(err)
			}
		}
		snap.Release()
		liveBefore, reclaimedBefore := inst.MVCCVersions()
		sweptBefore := inst.MVCCSwept()

		swept := inst.SweepMVCC()
		if swept <= 0 {
			t.Fatalf("%s: quiescent sweep reclaimed nothing; %d versions live", eng, liveBefore)
		}
		live, reclaimed := inst.MVCCVersions()
		if reclaimed != reclaimedBefore+swept {
			t.Fatalf("%s: reclaimed %d -> %d, sweep reported %d", eng, reclaimedBefore, reclaimed, swept)
		}
		if live != liveBefore-swept {
			t.Fatalf("%s: live %d -> %d after sweeping %d", eng, liveBefore, live, swept)
		}
		if got := inst.MVCCSwept(); got != sweptBefore+swept {
			t.Fatalf("%s: swept counter %d, want %d", eng, got, sweptBefore+swept)
		}
		if again := inst.SweepMVCC(); again != 0 {
			t.Fatalf("%s: second sweep of an untouched store reclaimed %d", eng, again)
		}

		// The sweep must be invisible to query answers.
		res, _, err := inst.Query("select COUNT(*) from ITEM I")
		if err != nil {
			t.Fatal(err)
		}
		if n := res.Rows[0][0].Int; n != 195 {
			t.Fatalf("%s: COUNT(*) = %d after sweep, want 195", eng, n)
		}
	}
}

// TestSweepMVCCRespectsPins: a pinned snapshot holds the watermark, so the
// sweep reclaims nothing while the pin lives and everything once released.
func TestSweepMVCCRespectsPins(t *testing.T) {
	inst := mvccItemsInstance(t, "hash")
	snap := inst.Store().PinSnapshot([]string{"ITEM"})
	for i := 0; i < 5; i++ {
		if _, err := inst.Exec(fmt.Sprintf("delete from ITEM where item_id = %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if swept := inst.SweepMVCC(); swept != 0 {
		t.Fatalf("sweep reclaimed %d versions a snapshot could reach", swept)
	}
	snap.Release()
	if swept := inst.SweepMVCC(); swept <= 0 {
		t.Fatal("sweep reclaimed nothing after the pin released")
	}
}

// TestSweepRetriesPendingPostingShrinks: posting shrinks blocked by a pin
// stay pending; the sweep retries them against the released watermark, so
// index statistics (and with them planner eligibility) recover on a
// quiescent relation without another commit.
func TestSweepRetriesPendingPostingShrinks(t *testing.T) {
	db := NewDatabase()
	schema := MustRelSchema("EV", []Attr{
		{Name: "id", Kind: KindInt},
		{Name: "tag", Kind: KindString},
	}, []string{"id"})
	rel := NewRelation(schema)
	for i := 0; i < 30; i++ {
		rel.MustInsert(Tuple{Int(int64(i)), String("HOT")})
	}
	for i := 0; i < 40; i++ {
		rel.MustInsert(Tuple{Int(int64(100 + i)), String(fmt.Sprintf("COLD-%02d", i/2))})
	}
	db.Add(rel)
	bv, err := NewBaaVSchema(db, KVSchema{Name: "ev_full", Rel: "EV", Key: []string{"id"}, Val: []string{"tag"}})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Open(db, bv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Exec("create index ix_ev_tag on EV(tag)"); err != nil {
		t.Fatal(err)
	}
	// Drain the hot tag under a pin: the shrink of its posting list cannot
	// run at commit time.
	snap := inst.Store().PinSnapshot([]string{"EV"})
	for i := 0; i < 28; i++ {
		if err := inst.Delete("EV", Tuple{Int(int64(i)), String("HOT")}); err != nil {
			t.Fatal(err)
		}
	}
	if st, ok := inst.IndexStats("ix_ev_tag"); !ok || st.MaxPosting != 30 {
		t.Fatalf("MaxPosting under pin = %d (ok=%v), want 30 still", st.MaxPosting, ok)
	}
	snap.Release()
	if swept := inst.SweepMVCC(); swept <= 0 {
		t.Fatal("sweep reclaimed nothing after the pin released")
	}
	if st, ok := inst.IndexStats("ix_ev_tag"); !ok || st.MaxPosting != 2 {
		t.Fatalf("MaxPosting after sweep = %d (ok=%v), want 2 — pending shrink not retried", st.MaxPosting, ok)
	}
	res, _, err := inst.Query("select E.id from EV E where E.tag = 'HOT'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("HOT rows after sweep = %d, want 2", len(res.Rows))
	}
}

// TestReclaimSweeperBackground: the ticker variant reclaims a quiescent
// relation's pin-blocked backlog on its own, concurrent readers stay correct
// throughout, and stop is idempotent.
func TestReclaimSweeperBackground(t *testing.T) {
	inst := mvccItemsInstance(t, "hash")
	snap := inst.Store().PinSnapshot([]string{"ITEM"})
	for i := 0; i < 5; i++ {
		if _, err := inst.Exec(fmt.Sprintf("delete from ITEM where item_id = %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	snap.Release()
	stop := inst.StartReclaimSweeper(2 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for inst.MVCCSwept() == 0 {
		if time.Now().After(deadline) {
			stop()
			t.Fatal("background sweeper reclaimed nothing within 5s")
		}
		res, _, err := inst.Query("select COUNT(*) from ITEM I")
		if err != nil {
			t.Fatal(err)
		}
		if n := res.Rows[0][0].Int; n != 195 {
			t.Fatalf("COUNT(*) = %d while sweeper runs, want 195", n)
		}
	}
	stop()
	stop() // idempotent
}

// Package zidian_test keeps these benchmarks outside the zidian package
// proper: internal/bench imports the zidian facade (the index experiment
// drives DDL through it), so an in-package test would form a cycle.
package zidian_test

// This file holds one testing.B benchmark per table and figure of the
// paper's evaluation (Section 9). Each benchmark runs the corresponding
// experiment at a reduced scale; `cmd/zidian-bench` prints the full tables.
// Run: go test -bench=. -benchmem
//
//	Table 2   -> BenchmarkExp1CaseStudy
//	Table 3   -> BenchmarkExp1Overall
//	Fig 3a/3b -> BenchmarkExp2ScanFreeMOT
//	Fig 3c/3d -> BenchmarkExp2ScanFreeTPCH
//	Fig 4a–4d -> BenchmarkExp3VaryWorkers{MOT,TPCH}
//	Fig 4e–4h -> BenchmarkExp3VaryData{MOT,TPCH}
//	Exp-4     -> BenchmarkExp4Throughput, BenchmarkExp4Horizontal

import (
	"io"
	"testing"

	"zidian/internal/bench"
	"zidian/internal/kv"
)

func benchConfig() bench.Config {
	return bench.Config{Scale: 0.25, Seed: 7, Nodes: 4, Workers: 4}
}

// BenchmarkExp1CaseStudy regenerates Table 2: the paper's Q1 case study.
func BenchmarkExp1CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Exp1Case(io.Discard, benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp1Overall regenerates Table 3: average time per workload.
func BenchmarkExp1Overall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Exp1Overall(io.Discard, benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp2ScanFreeMOT regenerates Figures 3a/3b (MOT, 1 worker).
func BenchmarkExp2ScanFreeMOT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Exp2(io.Discard, benchConfig(), "mot", []float64{1, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp2ScanFreeTPCH regenerates Figures 3c/3d (TPC-H, 1 worker).
func BenchmarkExp2ScanFreeTPCH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Exp2(io.Discard, benchConfig(), "tpch", []float64{1, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp3VaryWorkersMOT regenerates Figures 4a/4b.
func BenchmarkExp3VaryWorkersMOT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Exp3Workers(io.Discard, benchConfig(), "mot", []int{4, 8, 12}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp3VaryWorkersTPCH regenerates Figures 4c/4d.
func BenchmarkExp3VaryWorkersTPCH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Exp3Workers(io.Discard, benchConfig(), "tpch", []int{4, 8, 12}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp3VaryDataMOT regenerates Figures 4e/4f.
func BenchmarkExp3VaryDataMOT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Exp3Data(io.Discard, benchConfig(), "mot", []float64{1, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp3VaryDataTPCH regenerates Figures 4g/4h.
func BenchmarkExp3VaryDataTPCH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Exp3Data(io.Discard, benchConfig(), "tpch", []float64{1, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp4Throughput regenerates the KV-workload throughput numbers.
func BenchmarkExp4Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Exp4Throughput(io.Discard, benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp4Horizontal regenerates the horizontal-scalability numbers.
func BenchmarkExp4Horizontal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Exp4Horizontal(io.Discard, benchConfig(), []int{4, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPaperQ1Zidian micro-benchmarks one scan-free execution (the
// per-query fast path behind Table 2's Zidian columns).
func BenchmarkPaperQ1Zidian(b *testing.B) {
	env, err := bench.NewEnv("tpch", 0.25, 7, 4, []kv.CostModel{kv.ProfileKStore})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.RunQuery(env.Systems[0], true, "tq09_important_stock", 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPaperQ1Baseline micro-benchmarks the TaaV baseline for the same
// query (Table 2's SoK column).
func BenchmarkPaperQ1Baseline(b *testing.B) {
	env, err := bench.NewEnv("tpch", 0.25, 7, 4, []kv.CostModel{kv.ProfileKStore})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.RunQuery(env.Systems[0], false, "tq09_important_stock", 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation regenerates the four design-choice ablations.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Ablation(io.Discard, benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

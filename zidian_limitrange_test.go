package zidian

import (
	"strings"
	"testing"
)

// TestRangeLimitPushdown: `... BETWEEN ? AND ? LIMIT k` stops the ordered
// posting walk after O(k) scan steps instead of merging the whole range —
// asserted through the store's scan-next metrics, not just the plan text —
// and the k rows are the same on every engine and under parameterized
// bounds.
func TestRangeLimitPushdown(t *testing.T) {
	const q = "select I.item_id, I.qty from ITEM I where I.sku between 'SKU-00050' and 'SKU-00149' limit 8"
	const full = "select I.item_id, I.qty from ITEM I where I.sku between 'SKU-00050' and 'SKU-00149'"
	var reference string
	for _, eng := range rangeEngines {
		db, bv := rangeItemsDB(t)
		inst, err := Open(db, bv, Options{Engine: eng, Nodes: 4, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Exec("create index ix_item_sku on ITEM(sku)"); err != nil {
			t.Fatal(err)
		}
		plan, err := inst.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(plan, "index-range") || !strings.Contains(plan, "limit 8") {
			t.Fatalf("%s: LIMIT not pushed into the range walk: %s", eng, plan)
		}

		// The unbounded window spans 100 posting lists; the bound walk may
		// stop each of the 4 nodes after ~2 lists (4 postings each).
		before := inst.Store().Cluster.Metrics()
		res, _, err := inst.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		delta := inst.Store().Cluster.Metrics().Sub(before)
		if len(res.Rows) != 8 {
			t.Fatalf("%s: rows = %d, want 8", eng, len(res.Rows))
		}
		if delta.ScanNexts > 16 {
			t.Fatalf("%s: bound walk took %d scan steps, want O(limit) <= 16", eng, delta.ScanNexts)
		}
		before = inst.Store().Cluster.Metrics()
		fullRes, _, err := inst.Query(full)
		if err != nil {
			t.Fatal(err)
		}
		fullDelta := inst.Store().Cluster.Metrics().Sub(before)
		if len(fullRes.Rows) != 400 || fullDelta.ScanNexts < 100 {
			t.Fatalf("%s: control walk visited %d lists for %d rows, expected the whole range",
				eng, fullDelta.ScanNexts, len(fullRes.Rows))
		}

		// The limited answer is a subset of the range, deterministic across
		// engines, and identical under `?` bounds and `LIMIT ?`.
		fullSet := make(map[string]bool, len(fullRes.Rows))
		for _, row := range fullRes.Rows {
			fullSet[renderResult(&Result{Cols: res.Cols, Rows: []Tuple{row}})] = true
		}
		for _, row := range res.Rows {
			if !fullSet[renderResult(&Result{Cols: res.Cols, Rows: []Tuple{row}})] {
				t.Fatalf("%s: limited row %v not in the range answer", eng, row)
			}
		}
		got := renderResult(res)
		if reference == "" {
			reference = got
		} else if got != reference {
			t.Fatalf("%s: limited answer diverges across engines:\n%s\nvs\n%s", eng, got, reference)
		}
		tmpl, params := paramize(t, q)
		p, err := inst.Prepare(tmpl)
		if err != nil {
			t.Fatal(err)
		}
		parRes, _, err := p.Run(params...)
		if err != nil {
			t.Fatal(err)
		}
		if renderResult(parRes) != reference {
			t.Fatalf("%s: parameterized limited answer diverges", eng)
		}
	}
}

// TestRangeLimitNotPushedWhenUnsound: plan shapes where a walked posting
// may not reach the output keep the limit at the result stage.
func TestRangeLimitNotPushedWhenUnsound(t *testing.T) {
	db, bv := rangeItemsDB(t)
	inst, err := Open(db, bv, Options{Nodes: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, ddl := range rangeSuiteDDL {
		if _, err := inst.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	unsound := []string{
		// ORDER BY reorders before the limit applies.
		"select I.item_id from ITEM I where I.sku between 'SKU-00050' and 'SKU-00149' order by I.item_id limit 8",
		// An extra predicate can drop walked postings.
		"select I.item_id from ITEM I where I.sku between 'SKU-00050' and 'SKU-00149' and I.qty > 25 limit 8",
		// DISTINCT collapses rows.
		"select distinct I.qty from ITEM I where I.sku between 'SKU-00050' and 'SKU-00149' limit 8",
		// Aggregation reshapes the row set entirely.
		"select COUNT(*) from ITEM I where I.sku between 'SKU-00050' and 'SKU-00149' limit 8",
	}
	for _, q := range unsound {
		plan, err := inst.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(plan, "limit") {
			t.Fatalf("limit pushed into an unsound shape %q: %s", q, plan)
		}
	}
}

// TestOneSidedRangeCostUsesValueBounds: with per-index min/max maintained,
// a highly selective one-sided literal range flips from the shape-only scan
// (1/3 of the entries assumed matched) to the index-range walk, while an
// unselective one keeps the scan and a `?` bound stays shape-only (the
// template discipline: a slot must plan identically for every literal).
func TestOneSidedRangeCostUsesValueBounds(t *testing.T) {
	db, bv := rangeItemsDB(t) // qty spans 0..49, fan 16, 800 pk-keyed blocks
	inst, err := Open(db, bv, Options{Nodes: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	scanRes, _, err := inst.Query("select I.item_id from ITEM I where I.qty >= 48")
	if err != nil {
		t.Fatal(err)
	}
	for _, ddl := range rangeSuiteDDL {
		if _, err := inst.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := inst.Explain("select I.item_id from ITEM I where I.qty >= 48")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index-range") {
		t.Fatalf("selective one-sided literal range still scans: %s", plan)
	}
	res, _, err := inst.Query("select I.item_id from ITEM I where I.qty >= 48")
	if err != nil {
		t.Fatal(err)
	}
	if renderResult(res) != renderResult(scanRes) {
		t.Fatal("index-served one-sided range diverges from the scan answer")
	}

	plan, err = inst.Explain("select I.item_id from ITEM I where I.qty >= 5")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "index-range") {
		t.Fatalf("unselective one-sided range took the walk against the cost model: %s", plan)
	}

	p, err := inst.Prepare("select I.item_id from ITEM I where I.qty >= ?")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p.Plan(), "IndexRange") {
		t.Fatalf("`?` bound planned value-dependently: %s", p.Plan())
	}
	parRes, _, err := p.Run(Int(48))
	if err != nil {
		t.Fatal(err)
	}
	if renderResult(parRes) != renderResult(scanRes) {
		t.Fatal("parameterized one-sided range diverges")
	}
}

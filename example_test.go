package zidian_test

import (
	"fmt"

	"zidian"
)

// Example walks the full Zidian lifecycle on the paper's Example 1 schema:
// build a database, declare a BaaV schema with non-primary-key block keys,
// open an instance, and answer a query scan-free through the ∝ chain.
func Example() {
	db := zidian.NewDatabase()

	nation := zidian.NewRelation(zidian.MustRelSchema("NATION",
		[]zidian.Attr{
			{Name: "nationkey", Kind: zidian.KindInt},
			{Name: "name", Kind: zidian.KindString},
		}, []string{"nationkey"}))
	nation.MustInsert(zidian.Tuple{zidian.Int(1), zidian.String("GERMANY")})
	nation.MustInsert(zidian.Tuple{zidian.Int(2), zidian.String("FRANCE")})
	db.Add(nation)

	supplier := zidian.NewRelation(zidian.MustRelSchema("SUPPLIER",
		[]zidian.Attr{
			{Name: "suppkey", Kind: zidian.KindInt},
			{Name: "nationkey", Kind: zidian.KindInt},
		}, []string{"suppkey"}))
	supplier.MustInsert(zidian.Tuple{zidian.Int(10), zidian.Int(1)})
	supplier.MustInsert(zidian.Tuple{zidian.Int(11), zidian.Int(1)})
	supplier.MustInsert(zidian.Tuple{zidian.Int(12), zidian.Int(2)})
	db.Add(supplier)

	// Example 1 of the paper: nation keyed by name, suppliers blocked by
	// nation — attributes that could never be TaaV keys.
	schema, err := zidian.NewBaaVSchema(db,
		zidian.KVSchema{Name: "nation_by_name", Rel: "NATION", Key: []string{"name"}, Val: []string{"nationkey"}},
		zidian.KVSchema{Name: "supplier_by_nation", Rel: "SUPPLIER", Key: []string{"nationkey"}, Val: []string{"suppkey"}},
	)
	if err != nil {
		panic(err)
	}
	inst, err := zidian.Open(db, schema, zidian.Options{Workers: 2})
	if err != nil {
		panic(err)
	}

	res, stats, err := inst.Query(`select S.suppkey from SUPPLIER S, NATION N
		where S.nationkey = N.nationkey and N.name = 'GERMANY'
		order by S.suppkey`)
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0])
	}
	fmt.Println("scan-free:", stats.ScanFree, "bounded:", stats.Bounded)
	// Output:
	// 10
	// 11
	// scan-free: true bounded: true
}

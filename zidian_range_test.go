package zidian

import (
	"fmt"
	"strings"
	"testing"

	"zidian/internal/core"
	"zidian/internal/ra"
	sqlpkg "zidian/internal/sql"
	"zidian/internal/workload"
)

var rangeEngines = []string{"hash", "lsm", "sorted"}

// rangeItemsDB builds the ITEM fixture: 800 rows, 200 distinct skus (fan 4),
// 50 distinct qtys (fan 16), 200 distinct prices (fan 4), pk-keyed full
// schema.
func rangeItemsDB(t *testing.T) (*Database, *BaaVSchema) {
	t.Helper()
	db := NewDatabase()
	schema := MustRelSchema("ITEM", []Attr{
		{Name: "item_id", Kind: KindInt},
		{Name: "sku", Kind: KindString},
		{Name: "qty", Kind: KindInt},
		{Name: "price", Kind: KindFloat},
	}, []string{"item_id"})
	rel := NewRelation(schema)
	for i := 0; i < 800; i++ {
		rel.MustInsert(Tuple{
			Int(int64(i)),
			String(fmt.Sprintf("SKU-%05d", i/4)),
			Int(int64(i % 50)),
			Float(float64(100+i%200) / 10),
		})
	}
	db.Add(rel)
	bv, err := NewBaaVSchema(db, KVSchema{
		Name: "item_full", Rel: "ITEM", Key: []string{"item_id"},
		Val: []string{"sku", "qty", "price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, bv
}

// rangeSuite: the dedicated range workload — two-sided closed/open/half-open
// bounds, one-sided comparisons, empty windows (inverted bounds and gaps),
// string and int attributes, and ranges composed with other predicates.
var rangeSuite = []string{
	"select I.item_id, I.qty from ITEM I where I.sku between 'SKU-00010' and 'SKU-00019'",
	"select I.item_id from ITEM I where I.sku >= 'SKU-00190' and I.sku < 'SKU-00195'",
	"select I.item_id from ITEM I where I.sku > 'SKU-00010' and I.sku <= 'SKU-00012'",
	"select I.item_id from ITEM I where I.sku > 'SKU-00010' and I.sku < 'SKU-00011'",
	"select I.item_id from ITEM I where I.sku between 'SKU-00150' and 'SKU-00050'",
	"select I.item_id from ITEM I where I.sku > 'SKU-00180'",
	"select I.item_id from ITEM I where I.sku <= 'SKU-00003'",
	"select I.item_id, I.price from ITEM I where I.qty between 10 and 12",
	"select I.item_id, I.qty from ITEM I where I.price between 10 and 20",
	"select I.item_id from ITEM I where I.qty >= 48",
	"select I.sku, I.qty from ITEM I where I.sku between 'SKU-00020' and 'SKU-00024' and I.qty > 25",
	"select COUNT(*), MIN(I.qty), MAX(I.qty) from ITEM I where I.sku between 'SKU-00030' and 'SKU-00039'",
	"select I.item_id from ITEM I where I.sku between 'SKU-00040' and 'SKU-00044' order by I.item_id limit 7",
}

var rangeSuiteDDL = []string{
	"create index ix_item_sku on ITEM(sku)",
	"create index ix_item_qty on ITEM(qty)",
	"create index ix_item_price on ITEM(price)",
}

// TestDifferentialRangeSuite runs every range query four ways — forced full
// scan (no indexes) and index-served, each literal-inlined and with
// parameterized bounds — on all three kv engines, and requires byte-identical
// results across all twelve combinations.
func TestDifferentialRangeSuite(t *testing.T) {
	for qi, src := range rangeSuite {
		var reference string
		var refLabel string
		check := func(label string, res *Result) {
			t.Helper()
			got := renderResult(res)
			if reference == "" {
				reference, refLabel = got, label
				return
			}
			if got != reference {
				t.Fatalf("q%d %q:\n%s differs from %s\n--- %s\n%s--- %s\n%s",
					qi, src, label, refLabel, refLabel, reference, label, got)
			}
		}
		for _, eng := range rangeEngines {
			db, bv := rangeItemsDB(t)
			inst, err := Open(db, bv, Options{Engine: eng, Nodes: 4, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			tmpl, params := paramize(t, src)

			// Forced full scan: no index exists yet.
			scanRes, scanStats, err := inst.Query(src)
			if err != nil {
				t.Fatalf("q%d scan on %s: %v", qi, eng, err)
			}
			if strings.Contains(scanStats.Plan, "IndexRange") {
				t.Fatalf("q%d: IndexRange before CREATE INDEX on %s", qi, eng)
			}
			check(eng+"/scan/literal", scanRes)
			p, err := inst.Prepare(tmpl)
			if err != nil {
				t.Fatalf("q%d scan template %q: %v", qi, tmpl, err)
			}
			scanPar, _, err := p.Run(params...)
			if err != nil {
				t.Fatalf("q%d scan bound on %s: %v", qi, eng, err)
			}
			check(eng+"/scan/params", scanPar)

			// Index-served: same statements after DDL.
			for _, ddl := range rangeSuiteDDL {
				if _, err := inst.Exec(ddl); err != nil {
					t.Fatal(err)
				}
			}
			idxRes, _, err := inst.Query(src)
			if err != nil {
				t.Fatalf("q%d index on %s: %v", qi, eng, err)
			}
			check(eng+"/index/literal", idxRes)
			p2, err := inst.Prepare(tmpl)
			if err != nil {
				t.Fatalf("q%d index template: %v", qi, err)
			}
			idxPar, _, err := p2.Run(params...)
			if err != nil {
				t.Fatalf("q%d index bound on %s: %v", qi, eng, err)
			}
			check(eng+"/index/params", idxPar)
		}
	}
}

// TestRangeBoundedWalk asserts the access-path change is real, not just
// plan text: Explain reports index-range, and the store's scan-next metrics
// confirm the walk visits the matched posting lists instead of the
// instance.
func TestRangeBoundedWalk(t *testing.T) {
	const q = "select I.item_id, I.qty from ITEM I where I.sku between 'SKU-00100' and 'SKU-00109'"
	for _, eng := range rangeEngines {
		db, bv := rangeItemsDB(t)
		inst, err := Open(db, bv, Options{Engine: eng, Nodes: 4, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		before := inst.Store().Cluster.Metrics()
		if _, _, err := inst.Query(q); err != nil {
			t.Fatal(err)
		}
		scanDelta := inst.Store().Cluster.Metrics().Sub(before)
		if scanDelta.ScanNexts < 800 {
			t.Fatalf("%s: full scan visited %d pairs, expected >= 800", eng, scanDelta.ScanNexts)
		}

		if _, err := inst.Exec("create index ix_item_sku on ITEM(sku)"); err != nil {
			t.Fatal(err)
		}
		plan, err := inst.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(plan, "index-range") || !strings.Contains(plan, "IndexRange") {
			t.Fatalf("%s: Explain lacks index-range: %s", eng, plan)
		}
		before = inst.Store().Cluster.Metrics()
		res, _, err := inst.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		delta := inst.Store().Cluster.Metrics().Sub(before)
		if len(res.Rows) != 40 {
			t.Fatalf("%s: rows = %d, want 40", eng, len(res.Rows))
		}
		// 10 matched posting lists; everything else arrives via gets.
		if delta.ScanNexts > 20 {
			t.Fatalf("%s: bounded walk took %d scan steps, want ~10", eng, delta.ScanNexts)
		}
		if delta.Gets < 40 {
			t.Fatalf("%s: expected one get per matched block, got %d", eng, delta.Gets)
		}

		// Sequential-executor parity: the same plan run outside the
		// parallel runtime returns the same rows, and its logical stats
		// count the posting walk, not an instance scan.
		bound, err := ra.Parse(q, inst.db)
		if err != nil {
			t.Fatal(err)
		}
		info, err := inst.checker.Plan(bound)
		if err != nil {
			t.Fatal(err)
		}
		seqRes, seqStats, err := core.Answer(info, inst.store)
		if err != nil {
			t.Fatal(err)
		}
		if renderResult(seqRes) != renderResult(res) {
			t.Fatalf("%s: sequential and parallel range answers differ", eng)
		}
		if seqStats.ScanBlocks != 10 {
			t.Fatalf("%s: sequential walk visited %d posting lists, want 10", eng, seqStats.ScanBlocks)
		}
	}
}

// TestRangeSpansBufferedSortedWrites: rows inserted after index creation
// sit in the sorted engine's unmerged write buffer; a range spanning them
// must see them on every engine, with identical answers.
func TestRangeSpansBufferedSortedWrites(t *testing.T) {
	const q = "select I.item_id, I.sku from ITEM I where I.sku between 'SKU-90000' and 'SKU-90009'"
	var reference string
	for _, eng := range rangeEngines {
		db, bv := rangeItemsDB(t)
		inst, err := Open(db, bv, Options{Engine: eng, Nodes: 2, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Exec("create index ix_item_sku on ITEM(sku)"); err != nil {
			t.Fatal(err)
		}
		// Fresh band of skus, written through incremental maintenance after
		// the backfill — on the sorted engine these postings stay in the
		// write buffer (well under the fold threshold).
		for i := 0; i < 30; i++ {
			if err := inst.Insert("ITEM", Tuple{
				Int(int64(10000 + i)), String(fmt.Sprintf("SKU-%05d", 90000+i/3)),
				Int(int64(i)), Float(1.5),
			}); err != nil {
				t.Fatal(err)
			}
		}
		// And a deletion inside the band must be invisible to the walk.
		if err := inst.Delete("ITEM", Tuple{
			Int(10001), String("SKU-90000"), Int(1), Float(1.5),
		}); err != nil {
			t.Fatal(err)
		}
		res, stats, err := inst.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(stats.Plan, "IndexRange") {
			t.Fatalf("%s: buffered-band query not index-served: %s", eng, stats.Plan)
		}
		if len(res.Rows) != 29 {
			t.Fatalf("%s: rows = %d, want 29 (30 inserts − 1 delete)", eng, len(res.Rows))
		}
		got := renderResult(res)
		if reference == "" {
			reference = got
		} else if got != reference {
			t.Fatalf("%s: buffered-band answer differs:\n%s\nvs\n%s", eng, got, reference)
		}
	}
}

// TestDifferentialWorkloadRangeQueries runs every workload-suite query that
// carries a range predicate — scan vs indexed (indexes created on each
// ranged attribute), literal vs parameterized — across all three engines,
// requiring byte-identical results.
func TestDifferentialWorkloadRangeQueries(t *testing.T) {
	for _, name := range []string{"mot", "airca", "tpch"} {
		t.Run(name, func(t *testing.T) {
			w, err := workload.Generate(name, workload.Spec{Scale: 0.1, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			// Find the suite's range queries and the (relation, attribute)
			// pairs their range conjuncts touch.
			type rq struct {
				name, sql string
			}
			var rqs []rq
			ddl := map[string]string{}
			for _, q := range w.Queries {
				ast, err := sqlpkg.Parse(q.SQL)
				if err != nil {
					t.Fatalf("%s: %v", q.Name, err)
				}
				ranged := false
				for _, p := range ast.Where {
					switch p.Op {
					case sqlpkg.OpLt, sqlpkg.OpLe, sqlpkg.OpGt, sqlpkg.OpGe:
					default:
						continue
					}
					if p.Lit == nil {
						continue
					}
					ranged = true
					rel := p.Left.Table
					for _, ref := range ast.From {
						if ref.Alias == p.Left.Table {
							rel = ref.Name
						}
					}
					key := rel + "." + p.Left.Name
					ddl[key] = fmt.Sprintf("create index ix_%s_%s on %s(%s)",
						strings.ToLower(rel), strings.ToLower(p.Left.Name), rel, p.Left.Name)
				}
				if ranged {
					rqs = append(rqs, rq{q.Name, q.SQL})
				}
			}
			if len(rqs) == 0 {
				t.Fatalf("workload %s has no range queries to exercise", name)
			}
			for _, q := range rqs {
				tmpl, params := paramize(t, q.sql)
				var reference, refLabel string
				check := func(label string, res *Result) {
					t.Helper()
					got := renderResult(res)
					if reference == "" {
						reference, refLabel = got, label
						return
					}
					if got != reference {
						t.Fatalf("%s: %s differs from %s\n--- %s\n%s--- %s\n%s",
							q.name, label, refLabel, refLabel, reference, label, got)
					}
				}
				for _, eng := range rangeEngines {
					w2, err := workload.Generate(name, workload.Spec{Scale: 0.1, Seed: 1})
					if err != nil {
						t.Fatal(err)
					}
					inst, err := Open(w2.DB, w2.Schema, Options{Engine: eng, Nodes: 4, Workers: 4})
					if err != nil {
						t.Fatal(err)
					}
					res, _, err := inst.Query(q.sql)
					if err != nil {
						t.Fatalf("%s scan on %s: %v", q.name, eng, err)
					}
					check(eng+"/scan", res)
					for _, stmt := range ddl {
						if _, err := inst.Exec(stmt); err != nil {
							t.Fatalf("%s: %q: %v", q.name, stmt, err)
						}
					}
					res2, _, err := inst.Query(q.sql)
					if err != nil {
						t.Fatalf("%s indexed on %s: %v", q.name, eng, err)
					}
					check(eng+"/indexed", res2)
					p, err := inst.Prepare(tmpl)
					if err != nil {
						t.Fatalf("%s template %q: %v", q.name, tmpl, err)
					}
					res3, _, err := p.Run(params...)
					if err != nil {
						t.Fatalf("%s bound on %s: %v", q.name, eng, err)
					}
					check(eng+"/indexed/params", res3)
				}
			}
		})
	}
}

// TestRangeKindMismatchLiterals: literal predicate values whose numeric
// kind differs from the indexed column's must still answer identically on
// the key-encoded access paths. Compare treats int/float numerically, but
// the key codec partitions by kind tag, so an unaligned fence or probe
// would silently miss every stored posting: ra.Bind coerces lossless
// literals to the column kind, and the planner rounds a non-integral float
// fence over an int column inward.
func TestRangeKindMismatchLiterals(t *testing.T) {
	cases := []struct {
		sql  string
		want int    // expected row count
		path string // substring the post-DDL plan must contain
	}{
		// Non-integral float bounds over the int qty column (fan 16 per
		// value): ints in [44.5, 47.5] are {45, 46, 47}.
		{"select I.item_id from ITEM I where I.qty between 44.5 and 47.5", 48, "IndexRange"},
		// Integral float bounds coerce losslessly.
		{"select I.item_id from ITEM I where I.qty between 45.0 and 47.0", 48, "IndexRange"},
		// Int bounds over the float price column: price = (100 + i%200)/10,
		// so [10, 12] matches i%200 ∈ {0..20}, 4 rows each.
		{"select I.item_id from ITEM I where I.price between 10 and 12", 84, "IndexRange"},
		// Equality with an integral float over an int column takes the
		// IndexLookup path and must still find the postings.
		{"select I.item_id from ITEM I where I.qty = 44.0", 16, "IndexLookup"},
		// Lossy float equality matches nothing — on every path.
		{"select I.item_id from ITEM I where I.qty = 44.5", 0, ""},
	}
	for _, eng := range rangeEngines {
		db, bv := rangeItemsDB(t)
		inst, err := Open(db, bv, Options{Engine: eng, Nodes: 4, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		scans := make([]*Result, len(cases))
		for i, c := range cases {
			res, _, err := inst.Query(c.sql)
			if err != nil {
				t.Fatalf("%s scan %q: %v", eng, c.sql, err)
			}
			if len(res.Rows) != c.want {
				t.Fatalf("%s scan %q: rows = %d, want %d", eng, c.sql, len(res.Rows), c.want)
			}
			scans[i] = res
		}
		for _, ddl := range rangeSuiteDDL {
			if _, err := inst.Exec(ddl); err != nil {
				t.Fatal(err)
			}
		}
		for i, c := range cases {
			res, stats, err := inst.Query(c.sql)
			if err != nil {
				t.Fatalf("%s indexed %q: %v", eng, c.sql, err)
			}
			if c.path != "" && !strings.Contains(stats.Plan, c.path) {
				t.Fatalf("%s %q: expected %s path, got %s", eng, c.sql, c.path, stats.Plan)
			}
			if renderResult(res) != renderResult(scans[i]) {
				t.Fatalf("%s %q: indexed answer (%d rows) differs from scan (%d rows); plan %s",
					eng, c.sql, len(res.Rows), len(scans[i].Rows), stats.Plan)
			}
		}
	}
}

// TestFacadeIndexEligibilityAfterDeletes: the planner's boundedness check
// compares an index's longest posting list against the degree bound. A
// heavy-delete workload that shrinks the longest list must restore
// eligibility (pre-fix, Stats.MaxPosting never decreased, so the check
// stayed pessimistic forever).
func TestFacadeIndexEligibilityAfterDeletes(t *testing.T) {
	db := NewDatabase()
	schema := MustRelSchema("EV", []Attr{
		{Name: "id", Kind: KindInt},
		{Name: "tag", Kind: KindString},
	}, []string{"id"})
	rel := NewRelation(schema)
	// One hot tag with 30 rows, twenty cold tags with 2 rows each.
	for i := 0; i < 30; i++ {
		rel.MustInsert(Tuple{Int(int64(i)), String("HOT")})
	}
	for i := 0; i < 40; i++ {
		rel.MustInsert(Tuple{Int(int64(100 + i)), String(fmt.Sprintf("COLD-%02d", i/2))})
	}
	db.Add(rel)
	bv, err := NewBaaVSchema(db, KVSchema{Name: "ev_full", Rel: "EV", Key: []string{"id"}, Val: []string{"tag"}})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Open(db, bv, Options{MaxBoundedDegree: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Exec("create index ix_ev_tag on EV(tag)"); err != nil {
		t.Fatal(err)
	}
	const q = "select E.id from EV E where E.tag = 'COLD-03'"
	_, stats, err := inst.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats.Plan, "IndexLookup") {
		t.Fatalf("expected an index plan: %s", stats.Plan)
	}
	if stats.Bounded {
		t.Fatalf("hot posting (30) above the degree bound (8) must make the plan unbounded")
	}
	// Heavy-delete workload: drain the hot tag.
	for i := 0; i < 28; i++ {
		if err := inst.Delete("EV", Tuple{Int(int64(i)), String("HOT")}); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := inst.IndexStats("ix_ev_tag")
	if !ok || st.MaxPosting != 2 {
		t.Fatalf("MaxPosting after drain = %d (ok=%v), want 2", st.MaxPosting, ok)
	}
	_, stats, err = inst.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Bounded {
		t.Fatalf("index did not regain eligibility after deletes: %+v", st)
	}
}

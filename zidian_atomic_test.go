package zidian

import (
	"encoding/binary"
	"fmt"
	"testing"

	"zidian/internal/relation"
)

// atomicItemsDB builds the write-path atomicity fixture: 100 ITEM rows over
// a pk-keyed full schema plus a sku-keyed schema, so one inserted tuple
// maintains two blocks (and, with an index, a posting) — three stores that
// must move together or not at all.
func atomicItemsDB(t *testing.T) (*Database, *BaaVSchema) {
	t.Helper()
	db := NewDatabase()
	schema := MustRelSchema("ITEM", []Attr{
		{Name: "item_id", Kind: KindInt},
		{Name: "sku", Kind: KindString},
		{Name: "qty", Kind: KindInt},
	}, []string{"item_id"})
	rel := NewRelation(schema)
	for i := 0; i < 100; i++ {
		rel.MustInsert(Tuple{
			Int(int64(i)),
			String(fmt.Sprintf("SKU-%03d", i/4)),
			Int(int64(i % 50)),
		})
	}
	db.Add(rel)
	bv, err := NewBaaVSchema(db,
		KVSchema{Name: "item_full", Rel: "ITEM", Key: []string{"item_id"}, Val: []string{"sku", "qty"}},
		KVSchema{Name: "item_by_sku", Rel: "ITEM", Key: []string{"sku"}, Val: []string{"item_id", "qty"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return db, bv
}

// corruptPair overwrites a stored pair with garbage and returns an undo. The
// predicate selects the pair by its decoded single-attribute key; prefixes
// under the given id are probed (BaaV instance ids are small integers, index
// prefixes set the top bit — see the package layouts).
func corruptPair(t *testing.T, in *Instance, ids []uint32, match func(relation.Value) bool, garbage []byte) func() {
	t.Helper()
	cluster := in.Store().Cluster
	for _, id := range ids {
		prefix := make([]byte, 4)
		binary.BigEndian.PutUint32(prefix, id)
		var key, val []byte
		cluster.Scan(prefix, func(k, v []byte) bool {
			body := k[4:]
			if id&(1<<31) == 0 {
				body = k[4 : len(k)-12] // block keys carry segment (4) + version (8) suffixes
			}
			dv, _, err := relation.DecodeValue(body)
			if err != nil || !match(dv) {
				return true
			}
			key = append([]byte{}, k...)
			val = append([]byte{}, v...)
			return false
		})
		if key == nil {
			continue
		}
		route := key
		if id&(1<<31) == 0 {
			route = key[:len(key)-12] // blocks route by their suffix-less prefix
		}
		cluster.PutRouted(route, key, garbage)
		return func() { cluster.PutRouted(route, key, val) }
	}
	t.Fatalf("no pair matching the corruption target under ids %v", ids)
	return nil
}

// skuMatch matches a stored pair keyed by the given sku string.
func skuMatch(sku string) func(relation.Value) bool {
	return func(v relation.Value) bool { return v.Kind == relation.KindString && v.Str == sku }
}

// TestInsertAbortsOnCorruptBlock: Insert validates and reads every affected
// block before writing anything, so a failure reading one KV schema's block
// leaves the relation and every other schema untouched — no half-applied
// insert survives.
func TestInsertAbortsOnCorruptBlock(t *testing.T) {
	db, bv := atomicItemsDB(t)
	inst, err := Open(db, bv, Options{Nodes: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rel := db.Relation("ITEM")
	// Corrupt the item_by_sku block of an existing sku: the new tuple's
	// pk block is fresh, but its sku block must be read-modify-written.
	// A truncated segment-count varint fails the read deterministically.
	undo := corruptPair(t, inst, []uint32{1, 2}, skuMatch("SKU-010"), []byte{0x80})

	bad := Tuple{Int(999), String("SKU-010"), Int(7)}
	if err := inst.Insert("ITEM", bad); err == nil {
		t.Fatal("insert over a corrupt block succeeded")
	}
	if rel.Cardinality() != 100 {
		t.Fatalf("failed insert left the relation at %d tuples, want 100", rel.Cardinality())
	}
	res, _, err := inst.Query("select I.qty from ITEM I where I.item_id = 999")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("failed insert left %d rows in the pk instance", len(res.Rows))
	}

	undo()
	if err := inst.Insert("ITEM", bad); err != nil {
		t.Fatalf("insert after restoring the block: %v", err)
	}
	if rel.Cardinality() != 100+1 {
		t.Fatalf("cardinality = %d after recovery insert", rel.Cardinality())
	}
	res, _, err = inst.Query("select I.item_id from ITEM I where I.sku = 'SKU-010'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 { // 4 seeded + the recovered insert
		t.Fatalf("sku block holds %d rows after recovery, want 5", len(res.Rows))
	}
}

// TestInsertRollsBackOnCorruptPosting: when index maintenance fails after
// the blocks were written, Insert deletes the blocks again and un-appends
// the relation tuple, so all three stores still agree.
func TestInsertRollsBackOnCorruptPosting(t *testing.T) {
	db, bv := atomicItemsDB(t)
	inst, err := Open(db, bv, Options{Nodes: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Exec("create index ix_sku on ITEM(sku)"); err != nil {
		t.Fatal(err)
	}
	rel := db.Relation("ITEM")
	// An invalid value tag fails splitPostings in the index's read phase.
	undo := corruptPair(t, inst, []uint32{1 << 31, 1<<31 | 1, 1<<31 | 2}, skuMatch("SKU-010"), []byte{0xFE})

	bad := Tuple{Int(999), String("SKU-010"), Int(7)}
	if err := inst.Insert("ITEM", bad); err == nil {
		t.Fatal("insert over a corrupt posting succeeded")
	}
	if rel.Cardinality() != 100 {
		t.Fatalf("failed insert left the relation at %d tuples, want 100", rel.Cardinality())
	}
	res, _, err := inst.Query("select I.qty from ITEM I where I.item_id = 999")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("failed insert left %d rows in the pk instance after rollback", len(res.Rows))
	}

	undo()
	st, ok := inst.IndexStats("ix_sku")
	if !ok || st.Postings != 100 {
		t.Fatalf("postings = %d (ok=%v) after rollback, want 100", st.Postings, ok)
	}
	if err := inst.Insert("ITEM", bad); err != nil {
		t.Fatalf("insert after restoring the posting: %v", err)
	}
	if st, _ := inst.IndexStats("ix_sku"); st.Postings != 101 {
		t.Fatalf("postings = %d after recovery insert, want 101", st.Postings)
	}
	res, _, err = inst.Query("select I.item_id from ITEM I where I.sku = 'SKU-010'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("sku block holds %d rows after recovery insert, want 5", len(res.Rows))
	}
}

// TestDeleteRestoresBlocksOnCorruptPosting: when the posting removal fails
// after the blocks were deleted, Delete re-inserts the blocks and leaves the
// relation's tuples untouched.
func TestDeleteRestoresBlocksOnCorruptPosting(t *testing.T) {
	db, bv := atomicItemsDB(t)
	inst, err := Open(db, bv, Options{Nodes: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Exec("create index ix_sku on ITEM(sku)"); err != nil {
		t.Fatal(err)
	}
	rel := db.Relation("ITEM")
	undo := corruptPair(t, inst, []uint32{1 << 31, 1<<31 | 1, 1<<31 | 2}, skuMatch("SKU-010"), []byte{0xFE})

	victim := Tuple{Int(40), String("SKU-010"), Int(40)}
	if err := inst.Delete("ITEM", victim); err == nil {
		t.Fatal("delete over a corrupt posting succeeded")
	}
	if rel.Cardinality() != 100 {
		t.Fatalf("failed delete left the relation at %d tuples, want 100", rel.Cardinality())
	}
	res, _, err := inst.Query("select I.qty from ITEM I where I.item_id = 40")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("failed delete left the pk block missing (%d rows)", len(res.Rows))
	}

	undo()
	if err := inst.Delete("ITEM", victim); err != nil {
		t.Fatalf("delete after restoring the posting: %v", err)
	}
	if rel.Cardinality() != 99 {
		t.Fatalf("cardinality = %d after recovery delete", rel.Cardinality())
	}
	res, _, err = inst.Query("select I.item_id from ITEM I where I.sku = 'SKU-010'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("sku posting holds %d rows after recovery delete, want 3", len(res.Rows))
	}
}

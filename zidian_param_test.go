package zidian

import (
	"fmt"
	"strings"
	"testing"

	sqlpkg "zidian/internal/sql"
	"zidian/internal/workload"
)

// paramize rewrites a literal SQL query into its `?` template: every
// literal in the WHERE clause (constant equalities, filters, BETWEEN
// bounds, IN elements) becomes a placeholder, and the extracted literals
// are returned in slot order. The rewritten text comes from the AST's own
// String rendering, so the template exercises the lexer and parser again
// when compiled.
func paramize(t *testing.T, src string) (string, []Value) {
	t.Helper()
	ast, err := sqlpkg.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	var params []Value
	n := 0
	for i := range ast.Where {
		p := &ast.Where[i]
		switch {
		case len(p.In) > 0:
			for _, v := range p.In {
				p.InParams = append(p.InParams, sqlpkg.Param{Index: n})
				params = append(params, v)
				n++
			}
			p.In = nil
		case p.Lit != nil:
			p.Param = &sqlpkg.Param{Index: n}
			params = append(params, *p.Lit)
			p.Lit = nil
			n++
		}
	}
	ast.NumParams = n
	return ast.String(), params
}

// renderResult canonicalizes a result for byte comparison: sorted rows,
// one line per row.
func renderResult(res *Result) string {
	res.Sort()
	var b strings.Builder
	b.WriteString(strings.Join(res.Cols, ",") + "\n")
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			fmt.Fprintf(&b, "%d:%s", v.Kind, v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestDifferentialLiteralVsParameterized runs every query of the three
// workload suites both literal-inlined and as a bound `?` template and
// requires byte-identical results: parameterized execution must be
// indistinguishable from recompiling with the literals inlined.
func TestDifferentialLiteralVsParameterized(t *testing.T) {
	for _, name := range []string{"mot", "airca", "tpch"} {
		t.Run(name, func(t *testing.T) {
			w, err := workload.Generate(name, workload.Spec{Scale: 0.1, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			inst, err := Open(w.DB, w.Schema, Options{Nodes: 4, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range w.Queries {
				tmpl, params := paramize(t, q.SQL)
				litRes, litStats, err := inst.Query(q.SQL)
				if err != nil {
					t.Fatalf("%s literal: %v", q.Name, err)
				}
				p, err := inst.Prepare(tmpl)
				if err != nil {
					t.Fatalf("%s template %q: %v", q.Name, tmpl, err)
				}
				if p.NumParams() != len(params) {
					t.Fatalf("%s: template has %d slots, extracted %d literals", q.Name, p.NumParams(), len(params))
				}
				parRes, parStats, err := p.Run(params...)
				if err != nil {
					t.Fatalf("%s bound: %v", q.Name, err)
				}
				if got, want := renderResult(parRes), renderResult(litRes); got != want {
					t.Fatalf("%s: results differ\ntemplate %s\nliteral:\n%s\nparameterized:\n%s",
						q.Name, tmpl, want, got)
				}
				// The access-path classification must be decided by the
				// template's shape alone, matching the literal plan.
				if litStats.ScanFree != parStats.ScanFree {
					t.Fatalf("%s: scanFree literal=%v parameterized=%v", q.Name, litStats.ScanFree, parStats.ScanFree)
				}
				// Re-binding different values must not leak state: run again
				// with the same values and expect the same answer.
				again, _, err := p.Run(params...)
				if err != nil {
					t.Fatalf("%s re-run: %v", q.Name, err)
				}
				if renderResult(again) != renderResult(litRes) {
					t.Fatalf("%s: second bound run differs", q.Name)
				}
			}
		})
	}
}

// TestPreparedTemplateReuse checks the core promise: one compiled template
// serves many distinct literals with correct, distinct answers.
func TestPreparedTemplateReuse(t *testing.T) {
	inst := facadeInstance(t)
	p, err := inst.Prepare(
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = ?")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParams() != 1 {
		t.Fatalf("NumParams = %d", p.NumParams())
	}
	if !strings.Contains(p.Plan(), "?0") {
		t.Fatalf("template plan should show the slot: %s", p.Plan())
	}
	res, stats, err := p.Run(String("GERMANY"))
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("GERMANY: %v %v", res, err)
	}
	if !stats.ScanFree {
		t.Fatalf("stats = %+v", stats)
	}
	res, _, err = p.Run(String("FRANCE"))
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("FRANCE: %v %v", res, err)
	}
	res, _, err = p.Run(String("ATLANTIS"))
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("ATLANTIS: %v %v", res, err)
	}
}

// TestBindErrors covers the bind-time failure modes: arity mismatch, type
// mismatch, NULL binding, and parameters in DDL.
func TestBindErrors(t *testing.T) {
	inst := facadeInstance(t)
	p, err := inst.Prepare("select N.nationkey from NATION N where N.name = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Run(); err == nil || !strings.Contains(err.Error(), "parameters") {
		t.Fatalf("arity 0: %v", err)
	}
	if _, _, err := p.Run(String("A"), String("B")); err == nil {
		t.Fatalf("arity 2: %v", err)
	}
	if _, _, err := p.Run(Int(7)); err == nil || !strings.Contains(err.Error(), "type mismatch") {
		t.Fatalf("type mismatch: %v", err)
	}
	if _, _, err := p.Run(Null()); err == nil || !strings.Contains(err.Error(), "NULL") {
		t.Fatalf("null: %v", err)
	}
	// Numeric slots interconvert: an integral float binds to an int column.
	pInt, err := inst.Prepare("select S.suppkey from SUPPLIER S where S.nationkey = ?")
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := pInt.Run(Float(1))
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("float-as-int: %v %v", res, err)
	}
	if _, _, err := pInt.Run(Float(1.5)); err == nil {
		t.Fatal("fractional float for int column must error")
	}
	// Parameters in DDL: a `?` inside the statement is a parse error, and
	// binding values to a DDL statement is rejected.
	if _, err := inst.Exec("create index ix on SUPPLIER(?)"); err == nil {
		t.Fatal("placeholder in DDL must fail to parse")
	}
	if _, err := inst.Exec("create index ix_nk on SUPPLIER(nationkey)", Int(1)); err == nil ||
		!strings.Contains(err.Error(), "parameters") {
		t.Fatalf("params with DDL: %v", err)
	}
	// Arity is also enforced through Exec.
	if _, err := inst.Exec("select N.nationkey from NATION N where N.name = ?"); err == nil {
		t.Fatal("Exec arity mismatch must error")
	}
}

// TestExecParamsDML drives INSERT and DELETE through Exec with bound
// parameters, including mixed literal/placeholder rows.
func TestExecParamsDML(t *testing.T) {
	inst := facadeInstance(t)
	r, err := inst.Exec("insert into SUPPLIER values (?, ?), (14, ?)", Int(13), Int(2), Int(1))
	if err != nil || r.Affected != 2 {
		t.Fatalf("insert: %+v %v", r, err)
	}
	res, _, err := inst.Query("select S.suppkey from SUPPLIER S where S.nationkey = ?", Int(1))
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("after insert: %v %v", res, err)
	}
	r, err = inst.Exec("delete from SUPPLIER where suppkey = ?", Int(14))
	if err != nil || r.Affected != 1 {
		t.Fatalf("delete: %+v %v", r, err)
	}
	r, err = inst.Exec("delete from SUPPLIER where suppkey in (?, ?)", Int(13), Int(99))
	if err != nil || r.Affected != 1 {
		t.Fatalf("delete in: %+v %v", r, err)
	}
	res, _, err = inst.Query("select S.suppkey from SUPPLIER S where S.nationkey = ?", Int(1))
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("after deletes: %v %v", res, err)
	}
	// Type mismatch surfaces on the write path too.
	if _, err := inst.Exec("delete from SUPPLIER where suppkey = ?", String("x")); err == nil {
		t.Fatal("type mismatch in DELETE must error")
	}
}

// TestParamBetweenAndFilters exercises placeholders in range predicates.
func TestParamBetweenAndFilters(t *testing.T) {
	inst := facadeInstance(t)
	res, _, err := inst.Query(
		"select S.suppkey from SUPPLIER S where S.nationkey = ? and S.suppkey between ? and ?",
		Int(1), Int(10), Int(10))
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("between: %v %v", res, err)
	}
	res, _, err = inst.Query(
		"select S.suppkey from SUPPLIER S where S.nationkey = ? and S.suppkey > ?",
		Int(1), Int(10))
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("filter: %v %v", res, err)
	}
	res, _, err = inst.Query(
		"select S.suppkey from SUPPLIER S where S.nationkey in (?, 2) and S.suppkey >= ?",
		Int(1), Int(10))
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("mixed in: %v %v", res, err)
	}
}

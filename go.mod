module zidian

go 1.24

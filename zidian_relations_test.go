package zidian

import (
	"reflect"
	"testing"
)

// TestPreparedRelationsAndStatementInfo: the facade surfaces exactly what a
// serving layer needs to pick locks — the compiled plan's read set, and a
// statement's kind and write target without executing it.
func TestPreparedRelationsAndStatementInfo(t *testing.T) {
	db, bv := atomicItemsDB(t)
	inst, err := Open(db, bv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := inst.Prepare("select I.qty from ITEM I where I.item_id = 7")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Relations(); !reflect.DeepEqual(got, []string{"ITEM"}) {
		t.Fatalf("Prepared.Relations = %v, want [ITEM]", got)
	}

	r, err := inst.Exec("insert into ITEM values (500, 'SKU-500', 1)")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Relations, []string{"ITEM"}) {
		t.Fatalf("insert ExecResult.Relations = %v", r.Relations)
	}
	r, err = inst.Exec("delete from ITEM where item_id = 500")
	if err != nil {
		t.Fatal(err)
	}
	if r.Affected != 1 || !reflect.DeepEqual(r.Relations, []string{"ITEM"}) {
		t.Fatalf("delete ExecResult = affected %d, relations %v", r.Affected, r.Relations)
	}
	r, err = inst.Exec("create index ix_qty on ITEM(qty)")
	if err != nil {
		t.Fatal(err)
	}
	if !r.SchemaChanged || !reflect.DeepEqual(r.Relations, []string{"ITEM"}) {
		t.Fatalf("create index ExecResult = %+v", r)
	}
	r, err = inst.Exec("drop index ix_qty")
	if err != nil {
		t.Fatal(err)
	}
	if !r.SchemaChanged || !reflect.DeepEqual(r.Relations, []string{"ITEM"}) {
		t.Fatalf("drop index ExecResult = %+v", r)
	}

	cases := []struct {
		sql    string
		kind   StmtKind
		target string
	}{
		{"select I.qty from ITEM I where I.item_id = 1", StmtSelect, ""},
		{"insert into ITEM values (1, 'a', 2)", StmtInsert, "ITEM"},
		{"delete from ITEM where item_id = 1", StmtDelete, "ITEM"},
		{"create index ix on ITEM(qty)", StmtDDL, ""},
		{"drop index ix", StmtDDL, ""},
		{"explain select I.qty from ITEM I where I.item_id = 1", StmtExplain, ""},
	}
	for _, c := range cases {
		kind, target, err := StatementInfo(c.sql)
		if err != nil {
			t.Fatalf("%q: %v", c.sql, err)
		}
		if kind != c.kind || target != c.target {
			t.Fatalf("StatementInfo(%q) = (%v, %q), want (%v, %q)", c.sql, kind, target, c.kind, c.target)
		}
	}
	if _, _, err := StatementInfo("frobnicate"); err == nil {
		t.Fatal("malformed statement classified without error")
	}
}

package zidian

import (
	"sort"
	"time"

	"zidian/internal/obs"
)

// Per-relation group commit. Writers never apply their own maintenance:
// they enqueue a logical operation with the relation's committer and wait.
// The first writer to find the committer idle becomes the leader; it drains
// the queue in arrival order, folds every queued operation into ONE store
// commit — one sequence bump, one batched cluster apply per node — and
// wakes the waiters. Writers that arrive while a batch is in flight queue
// up for the next round, so under contention the per-operation cost of the
// emulated storage round trips amortizes across the batch, and readers
// (which pin snapshots instead of taking locks) never wait at all.

// writeOp is one queued logical write: exactly one of insertRows,
// deleteTuple, or deleteWhere is set.
type writeOp struct {
	insertRows  []Tuple
	deleteTuple *Tuple
	deleteWhere func(Tuple) bool
	// deleteProbe, when set alongside deleteWhere, marks the predicate as a
	// key-equality conjunction: at most one tuple matches, so the committer
	// probes for it and stops instead of scanning the whole relation.
	deleteProbe *deleteProbe

	kvt      *obs.KV    // statement's kv sink; batch totals merge into it
	trace    *obs.Trace // receives CommitWaitNanos, may be nil
	enqueued time.Time
	done     chan writeOutcome
}

type writeOutcome struct {
	affected int
	err      error
}

// committer serializes and batches writes to one relation.
type committer struct {
	in  *Instance
	rel string

	mu      chan struct{} // 1-buffered semaphore guarding queue+leading
	queue   []*writeOp
	leading bool
}

func newCommitter(in *Instance, rel string) *committer {
	co := &committer{in: in, rel: rel, mu: make(chan struct{}, 1)}
	co.mu <- struct{}{}
	return co
}

// submit enqueues op and waits for its batch to commit. The calling
// goroutine leads the commit when no other leader is active.
func (co *committer) submit(op *writeOp) writeOutcome {
	op.done = make(chan writeOutcome, 1)
	op.enqueued = time.Now()
	<-co.mu
	co.queue = append(co.queue, op)
	lead := !co.leading
	if lead {
		co.leading = true
	}
	co.mu <- struct{}{}
	if lead {
		for {
			<-co.mu
			batch := co.queue
			co.queue = nil
			if len(batch) == 0 {
				co.leading = false
				co.mu <- struct{}{}
				break
			}
			co.mu <- struct{}{}
			co.commit(batch)
		}
	}
	out := <-op.done
	if op.trace != nil {
		op.trace.CommitWaitNanos = time.Since(op.enqueued).Nanoseconds()
	}
	return out
}

// commit applies one batch as a single store+index commit. Staging is
// all-or-nothing: any operation failing to stage aborts the whole batch
// (like a shared WAL write failing) with the relation rolled back and
// nothing written — every waiter sees the error.
func (co *committer) commit(batch []*writeOp) {
	in := co.in
	r := in.db.Relation(co.rel)
	batchKV := &obs.KV{}

	fail := func(err error) {
		for _, op := range batch {
			op.done <- writeOutcome{err: err}
		}
	}
	c, err := in.store.BeginCommit(co.rel)
	if err != nil {
		fail(err)
		return
	}
	defer c.Close()
	ic := in.indexes.BeginCommit(co.rel)

	// Seed the commit's block cache: one batched read round per node for
	// every block the batch can touch. deleteWhere tuples are evaluated
	// against the current relation — a best-effort prefetch; staging
	// re-reads lazily anything the loop below touches that isn't cached.
	var pre []Tuple
	for _, op := range batch {
		pre = append(pre, op.insertRows...)
		if op.deleteTuple != nil {
			pre = append(pre, *op.deleteTuple)
		}
		switch {
		case op.deleteProbe != nil:
			for _, u := range r.Tuples {
				if op.deleteProbe.match(u) {
					pre = append(pre, u)
					break
				}
			}
		case op.deleteWhere != nil:
			for _, u := range r.Tuples {
				if op.deleteWhere(u) {
					pre = append(pre, u)
				}
			}
		}
	}
	if err := c.Prefetch(batchKV, pre); err != nil {
		fail(err)
		return
	}

	// Stage in arrival order, mutating the relation as we go so later
	// operations in the batch see earlier ones; undo everything on abort.
	var undos []func()
	abort := func(err error) {
		for i := len(undos) - 1; i >= 0; i-- {
			undos[i]()
		}
		fail(err)
	}
	stageDelete := func(at int) error {
		t := r.Tuples[at]
		if _, err := c.StageDelete(batchKV, t); err != nil {
			return err
		}
		if err := ic.StageDelete(batchKV, t); err != nil {
			return err
		}
		r.Tuples = append(r.Tuples[:at], r.Tuples[at+1:]...)
		undos = append(undos, func() {
			rest := append([]Tuple{t}, r.Tuples[at:]...)
			r.Tuples = append(r.Tuples[:at], rest...)
		})
		return nil
	}
	affected := make([]int, len(batch))
	for i, op := range batch {
		switch {
		case op.insertRows != nil:
			for _, row := range op.insertRows {
				if err := r.Insert(row); err != nil {
					abort(err)
					return
				}
				undos = append(undos, func() { r.Tuples = r.Tuples[:len(r.Tuples)-1] })
				if err := c.StageInsert(batchKV, row); err != nil {
					abort(err)
					return
				}
				if err := ic.StageInsert(batchKV, row); err != nil {
					abort(err)
					return
				}
			}
			affected[i] = len(op.insertRows)
		case op.deleteTuple != nil:
			for at, u := range r.Tuples {
				if u.Equal(*op.deleteTuple) {
					if err := stageDelete(at); err != nil {
						abort(err)
						return
					}
					affected[i] = 1
					break
				}
			}
		case op.deleteProbe != nil:
			// Key equality: the declared key is unique, so the first match
			// is the only match.
			for at, u := range r.Tuples {
				if op.deleteProbe.match(u) {
					if err := stageDelete(at); err != nil {
						abort(err)
						return
					}
					affected[i] = 1
					break
				}
			}
		case op.deleteWhere != nil:
			for at := 0; at < len(r.Tuples); {
				if !op.deleteWhere(r.Tuples[at]) {
					at++
					continue
				}
				if err := stageDelete(at); err != nil {
					abort(err)
					return
				}
				affected[i]++
			}
		}
	}

	// One cluster round for the whole batch: new block versions, tombstones,
	// and grown postings together. Install publishes the new sequence, then
	// the watermark decides what retired state can go right away.
	ops := append(c.Ops(), ic.Ops()...)
	in.store.Cluster.ApplyBatch(batchKV, ops)
	c.Install()
	ic.Apply(c.Seq())
	w := c.Reclaim(batchKV)
	// Posting shrinks whose sequence is still pinned stay pending; they are
	// retried on the relation's next commit, so an error here (a corrupt
	// posting) delays reclamation without failing the installed write.
	_ = in.indexes.ReclaimRemovals(batchKV, co.rel, w)

	if f := in.onCommit.Load(); f != nil {
		(*f)(len(batch))
	}
	snap := batchKV.Snapshot()
	for i, op := range batch {
		// A grouped write's trace carries its whole batch's kv traffic (the
		// shared commit is one physical event); single-op batches are exact.
		op.kvt.Merge(snap)
		op.done <- writeOutcome{affected: affected[i]}
	}
}

// snapshotIndex is the SecondaryIndex view a pinned statement executes
// against. Postings obey a superset invariant (see internal/index), so
// unlimited lookups and range walks are sound as-is: stale keys resolve to
// blocks that lack the row at the snapshot and drop out. The one unsound
// path is a pushed-down LIMIT — a stale key inside the first `limit`
// postings would displace a real one that the executor then never fetches.
// RangeLimitT therefore push the limit down only when the relation is
// quiescent (no commit in flight, nothing newer than the snapshot, no
// pending posting shrinks) before AND after the walk; on conflict it
// re-walks unlimited and trims, trading scan steps for soundness.
type snapshotIndex struct {
	in   *Instance
	snap map[string]uint64 // pinned sequences by relation
}

// quiescent reports whether rel has no write activity the pinned snapshot
// could miss: the installed sequence equals both the commit stamp (no
// commit in flight) and the pinned sequence, and no posting shrinks are
// pending.
func (si *snapshotIndex) quiescent(rel string) bool {
	seq := si.in.store.CommitSeq(rel)
	if si.in.store.CommitStamp(rel) != seq {
		return false
	}
	if pinned, ok := si.snap[rel]; ok && pinned != seq {
		return false
	}
	return si.in.indexes.PendingRemovals(rel) == 0
}

func (si *snapshotIndex) relOf(name string) string {
	if d, ok := si.in.indexes.DefOf(name); ok {
		return d.Rel
	}
	return ""
}

func (si *snapshotIndex) Lookup(name string, v Value) ([]Tuple, int, error) {
	return si.in.indexes.Lookup(name, v)
}

func (si *snapshotIndex) LookupT(t *obs.Trace, name string, v Value) ([]Tuple, int, error) {
	return si.in.indexes.LookupT(t, name, v)
}

func (si *snapshotIndex) LookupManyT(t *obs.Trace, name string, vs []Value) ([][]Tuple, int, error) {
	return si.in.indexes.LookupManyT(t, name, vs)
}

func (si *snapshotIndex) Range(name string, lo, hi *Value, loIncl, hiIncl bool) ([]Value, []Tuple, int, error) {
	return si.in.indexes.Range(name, lo, hi, loIncl, hiIncl)
}

func (si *snapshotIndex) RangeLimit(name string, lo, hi *Value, loIncl, hiIncl bool, limit int) ([]Value, []Tuple, int, error) {
	return si.RangeLimitT(nil, name, lo, hi, loIncl, hiIncl, limit)
}

func (si *snapshotIndex) RangeLimitT(t *obs.Trace, name string, lo, hi *Value, loIncl, hiIncl bool, limit int) ([]Value, []Tuple, int, error) {
	rel := si.relOf(name)
	if limit >= 0 && si.quiescent(rel) {
		vals, keys, scanned, err := si.in.indexes.RangeLimitT(t, name, lo, hi, loIncl, hiIncl, limit)
		if err == nil && si.quiescent(rel) {
			return vals, keys, scanned, nil
		}
		if err != nil {
			return nil, nil, scanned, err
		}
		// A commit landed mid-walk: the limited result may have admitted a
		// stale posting in place of a real one. Fall through and re-walk.
	}
	vals, keys, scanned, err := si.in.indexes.RangeLimitT(t, name, lo, hi, loIncl, hiIncl, -1)
	if err == nil && limit >= 0 && len(keys) > limit {
		vals, keys = vals[:limit], keys[:limit]
	}
	return vals, keys, scanned, err
}

func (si *snapshotIndex) MaxPostings(name string) int {
	return si.in.indexes.MaxPostings(name)
}

// RenderSnapshotSeqs renders pinned sequences for EXPLAIN ANALYZE totals
// and the slow-query log: "REL:seq" pairs, sorted, comma-joined ("-" when
// the statement pinned nothing).
func RenderSnapshotSeqs(seqs map[string]uint64) string {
	if len(seqs) == 0 {
		return "-"
	}
	rels := make([]string, 0, len(seqs))
	for rel := range seqs {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	var b []byte
	for i, rel := range rels {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, rel...)
		b = append(b, ':')
		b = appendUint(b, seqs[rel])
	}
	return string(b)
}

func appendUint(b []byte, v uint64) []byte {
	if v >= 10 {
		b = appendUint(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

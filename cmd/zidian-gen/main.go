// Command zidian-gen generates one of the evaluation workloads and writes
// its relations as tab-separated files, one per relation, plus a manifest
// of the BaaV schema and query suite. Useful for inspecting the synthetic
// datasets or loading them into other systems.
//
// Usage:
//
//	zidian-gen -workload mot -scale 2 -out /tmp/mot
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"zidian/internal/workload"
)

func main() {
	var (
		name  = flag.String("workload", "mot", "workload: tpch, mot, airca")
		scale = flag.Float64("scale", 1.0, "dataset scale")
		seed  = flag.Int64("seed", 7, "generator seed")
		out   = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	w, err := workload.Generate(*name, workload.Spec{Scale: *scale, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, schema := range w.DB.Schemas() {
		rel := w.DB.Relation(schema.Name)
		path := filepath.Join(*out, strings.ToLower(schema.Name)+".tsv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriter(f)
		fmt.Fprintln(bw, strings.Join(schema.AttrNames(), "\t"))
		for _, t := range rel.Tuples {
			cells := make([]string, len(t))
			for i, v := range t {
				cells[i] = v.String()
			}
			fmt.Fprintln(bw, strings.Join(cells, "\t"))
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d tuples)\n", path, rel.Cardinality())
	}

	manifest := filepath.Join(*out, "manifest.txt")
	f, err := os.Create(manifest)
	if err != nil {
		fatal(err)
	}
	bw := bufio.NewWriter(f)
	fmt.Fprintf(bw, "workload %s scale %g seed %d: %d tuples, %d values\n\n",
		*name, *scale, *seed, w.DB.Cardinality(), w.DB.ValueCount())
	fmt.Fprintln(bw, "BaaV schema:")
	for _, s := range w.Schema.KVs {
		fmt.Fprintf(bw, "  %s\n", s)
	}
	fmt.Fprintln(bw, "\nQueries:")
	for _, q := range w.Queries {
		tag := "non-scan-free"
		if q.ScanFree {
			tag = "scan-free"
			if q.Bounded {
				tag += " bounded"
			}
		}
		fmt.Fprintf(bw, "  %-28s [%s]%s\n", q.Name, tag, strings.ReplaceAll(q.SQL, "\n", " "))
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", manifest)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zidian-gen:", err)
	os.Exit(1)
}

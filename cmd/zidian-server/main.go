// Command zidian-server runs the Zidian middleware as a long-lived,
// concurrent query service over a generated workload dataset: the
// line-delimited JSON wire protocol on -tcp and the HTTP surface
// (/query, /healthz, /stats, Prometheus-text /metrics) on -http.
//
// Quickstart (two terminals):
//
//	zidian-server -workload mot -scale 1 -tcp :7071 -http :7072
//	zidian-loadgen -addr localhost:7071 -clients 64 -requests 200
//
// Or poke it by hand:
//
//	curl 'localhost:7072/query?q=select+T.result+from+TEST+T+where+T.vehicle_id+=+42'
//	curl localhost:7072/stats
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// statements before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zidian/internal/server"
)

func main() {
	var (
		tcpAddr  = flag.String("tcp", ":7071", "wire-protocol listen address (empty disables)")
		httpAddr = flag.String("http", ":7072", "HTTP listen address (empty disables)")
		wl       = flag.String("workload", "mot", "dataset to serve: mot, airca, tpch")
		scale    = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed     = flag.Int64("seed", 7, "generator seed")
		nodes    = flag.Int("nodes", 4, "storage nodes")
		opDelay  = flag.Duration("op-delay", 0, "emulated per-node service time per storage round trip (0 disables): each node serves at most 1/delay rounds per second, so -nodes becomes a real capacity axis")
		workers  = flag.Int("workers", 4, "per-query SQL-layer workers")
		inflight = flag.Int("max-inflight", 8, "statements executing concurrently")
		queue    = flag.Int("queue", 256, "admission queue depth")
		queueTO  = flag.Duration("queue-timeout", time.Second, "admission queue timeout")
		cacheSz  = flag.Int("plan-cache", 4096, "plan cache capacity (plans)")
		drainTO  = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain timeout")
		regime   = flag.String("lock-regime", "", "locking regime: mvcc (default; snapshot reads + group commit), per-relation, or global")
		gwl      = flag.Bool("global-write-lock", false, "legacy alias for -lock-regime=global (applies only when -lock-regime is unset)")
		obsOn    = flag.Bool("obs", true, "collect metrics and serve /metrics (off disables all observability counting)")
		slowTO   = flag.Duration("slow-query-threshold", 0, "log statements slower than this as JSON lines (0 disables)")
		slowLog  = flag.String("slow-query-log", "", "slow-query log file (default stderr); with -slow-query-max-bytes the file rotates to <path>.1 at the cap")
		slowMax  = flag.Int64("slow-query-max-bytes", 0, "byte cap for the slow-query log: rotate a -slow-query-log file at the cap, or drop further lines (counted on zidian_slow_query_dropped_total); 0 = unbounded")
		capture  = flag.String("capture", "", "stream one anonymized JSON line per statement to this file for zidian-loadgen -replay (templates and bind kinds only — never literal values)")
		stmtCap  = flag.Int("stmt-stats", 512, "statement templates tracked by /stats/statements and SHOW STATEMENTS (cold templates fold into _evicted)")
		stmtTop  = flag.Int("stmt-metrics-top", 10, "templates exported as per-template zidian_stmt_* families on /metrics")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the HTTP listener")
	)
	flag.Parse()

	if *tcpAddr == "" && *httpAddr == "" {
		fmt.Fprintln(os.Stderr, "zidian-server: need at least one of -tcp or -http")
		os.Exit(2)
	}

	fmt.Printf("loading workload %s (scale %g, %d nodes)...\n", *wl, *scale, *nodes)
	start := time.Now()
	inst, w, err := server.OpenWorkload(*wl, *scale, *seed, *nodes, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zidian-server: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("loaded %d relations, %d rows in %v\n",
		len(w.DB.Names()), w.DB.Cardinality(), time.Since(start).Round(time.Millisecond))
	if *opDelay > 0 {
		// Installed after the bulk load so startup stays fast; from here on
		// every storage round occupies its node for the delay.
		inst.Store().Cluster.SetServiceDelay(*opDelay)
		fmt.Printf("emulated storage service time: %v per node round\n", *opDelay)
	}

	cfg := server.Config{
		MaxConcurrent:      *inflight,
		QueueDepth:         *queue,
		QueueTimeout:       *queueTO,
		PlanCacheSize:      *cacheSz,
		LockRegime:         *regime,
		GlobalWriteLock:    *gwl,
		DisableMetrics:     !*obsOn,
		SlowQueryThreshold: *slowTO,
		SlowQueryMaxBytes:  *slowMax,
		StmtStatsCapacity:  *stmtCap,
		StmtMetricsTopK:    *stmtTop,
		EnablePprof:        *pprofOn,
	}
	if *slowLog != "" {
		f, err := server.OpenRotatingFile(*slowLog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zidian-server: open slow-query log: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.SlowQueryLog = f
	}
	if *capture != "" {
		f, err := os.OpenFile(*capture, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zidian-server: open capture log: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.CaptureLog = f
		fmt.Printf("capturing workload to %s\n", *capture)
	}
	srv := server.New(inst, cfg)
	tcp, httpA, err := srv.Start(*tcpAddr, *httpAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zidian-server: %v\n", err)
		os.Exit(1)
	}
	if tcp != "" {
		fmt.Printf("wire protocol listening on %s\n", tcp)
	}
	if httpA != "" {
		fmt.Printf("http listening on %s\n", httpA)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down...")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "zidian-server: shutdown: %v\n", err)
		os.Exit(1)
	}
	st := srv.Stats()
	fmt.Printf("served %d statements (%d errors), plan cache hit rate %.1f%%\n",
		st.Queries, st.Errors, 100*st.PlanCache.HitRate)
}

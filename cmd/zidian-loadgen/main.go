// Command zidian-loadgen drives a running zidian-server with a
// repeated-template workload over many concurrent connections and reports
// throughput, latency percentiles, and the plan-cache hit rate. With -out
// it also writes the machine-readable report (the BENCH_server.json
// format) for tracking the serving-layer perf trajectory across changes.
//
//	zidian-loadgen -addr localhost:7071 -clients 64 -requests 200 -out BENCH_server.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"zidian/internal/server/loadgen"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7071", "server wire-protocol address")
		wl       = flag.String("workload", "mot", "template suite: mot, airca, tpch")
		mix      = flag.String("mix", "point", "query mix: point, nonkey (selective non-key predicates over secondary indexes), range (BETWEEN windows over ordered posting scans), mixed, readwrite (multi-relation reads + INSERT/DELETE writes; see -write-frac)")
		wfrac    = flag.Float64("write-frac", 0.2, "write fraction for -mix readwrite (0..1)")
		wbase    = flag.Int("write-base", 1<<21, "first unique id for -mix readwrite inserts (vary across runs against a warm server)")
		clients  = flag.Int("clients", 64, "concurrent client connections")
		requests = flag.Int("requests", 200, "statements per client")
		pool     = flag.Int("params", 100, "distinct parameter values per template")
		seed     = flag.Int64("seed", 1, "parameter sequence seed")
		prep     = flag.Bool("parameterized", false, "send `?` templates with wire parameters instead of inlined literals")
		distinct = flag.Bool("distinct", false, "use a globally unique literal per request (numeric templates)")
		out      = flag.String("out", "", "write the JSON report to this file")
		metrics  = flag.String("metrics", "", "server /metrics URL (e.g. http://localhost:7072/metrics); scraped after the run to fold server-side latency quantiles into the report")
		strict   = flag.Bool("metrics-strict", false, "exit non-zero when the -metrics scrape fails instead of warning")
		replay   = flag.String("replay", "", "replay a capture file recorded by zidian-server -capture instead of generating templates")
		speed    = flag.Float64("speed", 1, "replay pacing factor: 1 reproduces the captured arrival deltas, 2 is twice as fast, 0 is as fast as possible")
	)
	flag.Parse()

	if *replay != "" {
		rep, err := loadgen.Replay(loadgen.ReplayOptions{
			Addr:          *addr,
			Path:          *replay,
			Clients:       *clients,
			Speed:         *speed,
			Seed:          *seed,
			ParamPool:     *pool,
			MetricsURL:    *metrics,
			MetricsStrict: *strict,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "zidian-loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("replayed %d statements in %.2fs (%d clients)\n", rep.Requests, rep.WallSeconds, rep.Clients)
		fmt.Printf("  qps        %.0f\n", rep.QPS)
		fmt.Printf("  errors     %d\n", rep.Errors)
		fmt.Printf("  latency µs p50=%d p90=%d p95=%d p99=%d max=%d\n",
			rep.Latency.P50, rep.Latency.P90, rep.Latency.P95, rep.Latency.P99, rep.Latency.Max)
		fmt.Printf("  row digest %s\n", rep.RowDigest)
		if sl := rep.ServerLatency; sl != nil {
			fmt.Printf("  server-side latency µs p50=%.0f p95=%.0f p99=%.0f (%d statements)\n",
				sl.P50Micros, sl.P95Micros, sl.P99Micros, sl.Count)
		}
		if *out != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "zidian-loadgen: %v\n", err)
				os.Exit(1)
			}
			data = append(data, '\n')
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "zidian-loadgen: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *out)
		}
		return
	}

	opts := loadgen.Options{
		Addr:           *addr,
		Clients:        *clients,
		Requests:       *requests,
		ParamPool:      *pool,
		Seed:           *seed,
		Parameterized:  *prep,
		DistinctParams: *distinct,
		MetricsURL:     *metrics,
		MetricsStrict:  *strict,
	}
	if *mix == "readwrite" {
		reads, writes, setup, err := loadgen.ReadWriteMix(*wl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zidian-loadgen: %v\n", err)
			os.Exit(2)
		}
		opts.Templates, opts.WriteTemplates, opts.Setup = reads, writes, setup
		opts.WriteFraction, opts.WriteIDBase = *wfrac, *wbase
	} else {
		templates, setup, err := loadgen.TemplatesMix(*wl, *mix)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zidian-loadgen: %v\n", err)
			os.Exit(2)
		}
		opts.Templates, opts.Setup = templates, setup
	}
	rep, err := loadgen.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zidian-loadgen: %v\n", err)
		os.Exit(1)
	}
	rep.Workload = *wl
	rep.Mix = *mix

	fmt.Printf("%d clients × %d requests in %.2fs\n", rep.Clients, *requests, rep.WallSeconds)
	fmt.Printf("  qps        %.0f\n", rep.QPS)
	fmt.Printf("  errors     %d\n", rep.Errors)
	fmt.Printf("  latency µs p50=%d p90=%d p95=%d p99=%d max=%d\n",
		rep.Latency.P50, rep.Latency.P90, rep.Latency.P95, rep.Latency.P99, rep.Latency.Max)
	fmt.Printf("  plan cache %.1f%% hit, scan-free %.1f%%\n", 100*rep.CacheHitRate, 100*rep.ScanFreeRate)
	if rep.Writes > 0 {
		fmt.Printf("  writes     %d (%.0f%% of requests)\n", rep.Writes, 100*float64(rep.Writes)/float64(rep.Requests))
	}
	if rep.Server != nil {
		fmt.Printf("  server     %d queries, %d sessions, %d rejected, %d timed out\n",
			rep.Server.Queries, rep.Server.TotalSessions, rep.Server.Admission.Rejected, rep.Server.Admission.TimedOut)
	}
	if sl := rep.ServerLatency; sl != nil {
		fmt.Printf("  server-side latency µs p50=%.0f p95=%.0f p99=%.0f (%d statements)\n",
			sl.P50Micros, sl.P95Micros, sl.P99Micros, sl.Count)
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "zidian-loadgen: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "zidian-loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

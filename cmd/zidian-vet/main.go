// Command zidian-vet runs zidian's domain static analyzers (internal/lint)
// over the module: mechanical enforcement of the concurrency and privacy
// contracts the codebase otherwise carries as convention — trace
// threading, snapshot-pin release, lock ordering, template anonymization,
// and sync/atomic copy discipline.
//
// Usage:
//
//	zidian-vet [-rules spec] [-json] [packages...]
//
// Packages default to ./... and accept the go tool's pattern shapes
// ("./internal/kv", "./..."). Findings print as file:line:col: [rule]
// message and make the exit status 1; load or usage errors exit 2.
// Suppressions (//lint:ignore zidian/<rule> <reason>) are counted and
// printed so waivers stay visible in CI logs.
//
// -rules selects analyzers: a comma-separated list of rule names, each
// optionally prefixed with '-' to skip instead ("tracethread,snapshotpin"
// runs two; "-atomiccopy" runs all but one).
//
// -json replaces the text output with one machine-readable object:
// {"findings": [...], "suppressed": [...], "packages": N, "rules": [...]}.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"zidian/internal/lint"
)

func main() {
	rules := flag.String("rules", "", "comma-separated rule names to run; prefix with '-' to skip (default: all)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: zidian-vet [-rules spec] [-json] [packages...]\n\nrules:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := lint.Select(lint.Analyzers(), *rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res := lint.Run(pkgs, analyzers)

	if *jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(jsonResult(res)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Findings {
			fmt.Println(d)
		}
		for _, s := range res.Suppressed {
			fmt.Printf("%s:%d: [%s] suppressed by //lint:ignore: %s\n", s.Diag.Pos.Filename, s.Diag.Pos.Line, s.Diag.Rule, s.Reason)
		}
		fmt.Printf("zidian-vet: %d packages, %d rules, %d findings, %d suppressed\n",
			res.Packages, len(res.RulesRun), len(res.Findings), len(res.Suppressed))
	}
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Reason  string `json:"reason,omitempty"` // suppression reason, suppressed list only
}

type jsonOutput struct {
	Findings   []jsonFinding `json:"findings"`
	Suppressed []jsonFinding `json:"suppressed"`
	Packages   int           `json:"packages"`
	Rules      []string      `json:"rules"`
}

func jsonResult(res *lint.Result) jsonOutput {
	out := jsonOutput{
		Findings:   []jsonFinding{},
		Suppressed: []jsonFinding{},
		Packages:   res.Packages,
		Rules:      res.RulesRun,
	}
	for _, d := range res.Findings {
		out.Findings = append(out.Findings, jsonFinding{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Message: d.Message,
		})
	}
	for _, s := range res.Suppressed {
		out.Suppressed = append(out.Suppressed, jsonFinding{
			File: s.Diag.Pos.Filename, Line: s.Diag.Pos.Line, Col: s.Diag.Pos.Column,
			Rule: s.Diag.Rule, Message: s.Diag.Message, Reason: s.Reason,
		})
	}
	return out
}

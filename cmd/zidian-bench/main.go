// Command zidian-bench regenerates the paper's experimental tables and
// figures (Section 9) on the in-process cluster.
//
// Usage:
//
//	zidian-bench -exp all                # every experiment
//	zidian-bench -exp 1case              # Table 2 (Q1 case study)
//	zidian-bench -exp 1                  # Table 3 (overall averages)
//	zidian-bench -exp 2 -workload mot    # Figure 3a/3b
//	zidian-bench -exp 3p -workload tpch  # Figure 4c/4d
//	zidian-bench -exp 3d -workload mot   # Figure 4e/4f
//	zidian-bench -exp 4                  # KV throughput
//	zidian-bench -exp 4h                 # horizontal scalability
//	zidian-bench -exp server             # serving layer (writes BENCH_server.json)
//	zidian-bench -exp index              # secondary indexes (writes BENCH_index.json)
//	zidian-bench -exp range              # range predicates / ordered posting scans (writes BENCH_range.json)
//	zidian-bench -exp mixed              # mixed read/write locking regimes (writes BENCH_mixed.json)
//	zidian-bench -exp replay             # capture→replay fidelity (writes BENCH_replay.json)
//	zidian-bench -exp scaleout           # horizontal read scaling under the emulated service-capacity network (writes BENCH_scaleout.json)
//
// -scale multiplies the dataset sizes; -workers and -nodes set the cluster
// shape (paper defaults: 8 workers, 12 nodes). -exp scaleout sweeps its own
// node counts (1/2/4/8) and, unless -op-delay pins one, emulated per-node
// service times (0/200µs/1ms).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"zidian/internal/bench"
	"zidian/internal/server/loadgen"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all, 1case, 1, 2, 3p, 3d, 4, 4h, ablation, server, index, range, mixed, replay, scaleout")
		workload = flag.String("workload", "mot", "workload for exp 2/3/server: mot, airca, tpch")
		mix      = flag.String("mix", "point", "query mix for -exp server: point, nonkey, range, mixed")
		scale    = flag.Float64("scale", 1.0, "dataset scale multiplier")
		workers  = flag.Int("workers", 8, "SQL-layer workers")
		nodes    = flag.Int("nodes", 12, "storage nodes")
		seed     = flag.Int64("seed", 7, "generator seed")
		clients  = flag.Int("clients", 64, "concurrent connections for -exp server")
		requests = flag.Int("requests", 100, "statements per connection for -exp server")
		jsonOut  = flag.String("json", "", "report path for -exp server/index/range (default BENCH_server.json / BENCH_index.json / BENCH_range.json; \"none\" disables)")
		opDelay  = flag.Duration("op-delay", 0, "for -exp scaleout: pin the emulated per-node service time to this single value instead of sweeping 0/200µs/1ms")
	)
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Seed: *seed, Nodes: *nodes, Workers: *workers}
	out := os.Stdout

	jsonPath := func(def string) string {
		switch *jsonOut {
		case "":
			return def
		case "none":
			return ""
		default:
			return *jsonOut
		}
	}

	serverBench := func(out io.Writer, cfg bench.Config) error {
		return loadgen.BenchServer(out, loadgen.BenchOptions{
			Workload: *workload,
			Mix:      *mix,
			Scale:    cfg.Scale,
			Seed:     cfg.Seed,
			Nodes:    cfg.Nodes,
			Workers:  cfg.Workers,
			Clients:  *clients,
			Requests: *requests,
			JSONPath: jsonPath("BENCH_server.json"),
		})
	}

	indexBench := func(out io.Writer, cfg bench.Config) error {
		return bench.ExpIndex(out, cfg, jsonPath("BENCH_index.json"))
	}

	rangeBench := func(out io.Writer, cfg bench.Config) error {
		return bench.ExpRange(out, cfg, jsonPath("BENCH_range.json"))
	}

	mixedBench := func(out io.Writer, cfg bench.Config) error {
		return bench.ExpMixed(out, cfg, jsonPath("BENCH_mixed.json"), *clients, *requests)
	}

	scaleoutBench := func(out io.Writer, cfg bench.Config) error {
		var delays []time.Duration
		if *opDelay > 0 {
			delays = []time.Duration{*opDelay}
		}
		return bench.ExpScaleout(out, cfg, jsonPath("BENCH_scaleout.json"), *clients, *requests, delays)
	}

	replayBench := func(out io.Writer, cfg bench.Config) error {
		return loadgen.BenchReplay(out, loadgen.ReplayBenchOptions{
			Workload: *workload,
			Scale:    cfg.Scale,
			Seed:     cfg.Seed,
			Nodes:    cfg.Nodes,
			Workers:  cfg.Workers,
			Clients:  *clients,
			Requests: *requests,
			JSONPath: jsonPath("BENCH_replay.json"),
		})
	}

	run := func(name string, f func() error) {
		fmt.Fprintf(out, "==> %s\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "zidian-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(out)
	}

	switch *exp {
	case "1case":
		run("exp1-case", func() error { return bench.Exp1Case(out, cfg) })
	case "1":
		run("exp1-overall", func() error { return bench.Exp1Overall(out, cfg) })
	case "2":
		run("exp2", func() error { return bench.Exp2(out, cfg, *workload, nil) })
	case "3p":
		run("exp3-workers", func() error { return bench.Exp3Workers(out, cfg, *workload, nil) })
	case "3d":
		run("exp3-data", func() error { return bench.Exp3Data(out, cfg, *workload, nil) })
	case "4":
		run("exp4-throughput", func() error { return bench.Exp4Throughput(out, cfg) })
	case "4h":
		run("exp4-horizontal", func() error { return bench.Exp4Horizontal(out, cfg, nil) })
	case "ablation":
		run("ablation", func() error { return bench.Ablation(out, cfg) })
	case "server":
		run("server", func() error { return serverBench(out, cfg) })
	case "index":
		run("index", func() error { return indexBench(out, cfg) })
	case "range":
		run("range", func() error { return rangeBench(out, cfg) })
	case "mixed":
		run("mixed", func() error { return mixedBench(out, cfg) })
	case "replay":
		run("replay", func() error { return replayBench(out, cfg) })
	case "scaleout":
		run("scaleout", func() error { return scaleoutBench(out, cfg) })
	case "all":
		run("exp1-case (Table 2)", func() error { return bench.Exp1Case(out, cfg) })
		run("exp1-overall (Table 3)", func() error { return bench.Exp1Overall(out, cfg) })
		for _, w := range []string{"mot", "tpch"} {
			w := w
			run("exp2 (Figure 3, "+w+")", func() error { return bench.Exp2(out, cfg, w, nil) })
			run("exp3-workers (Figure 4a-d, "+w+")", func() error { return bench.Exp3Workers(out, cfg, w, nil) })
			run("exp3-data (Figure 4e-h, "+w+")", func() error { return bench.Exp3Data(out, cfg, w, nil) })
		}
		run("exp2 (airca)", func() error { return bench.Exp2(out, cfg, "airca", nil) })
		run("exp4-throughput", func() error { return bench.Exp4Throughput(out, cfg) })
		run("exp4-horizontal", func() error { return bench.Exp4Horizontal(out, cfg, nil) })
		run("ablation", func() error { return bench.Ablation(out, cfg) })
		run("server", func() error { return serverBench(out, cfg) })
		run("index", func() error { return indexBench(out, cfg) })
		run("range", func() error { return rangeBench(out, cfg) })
		run("mixed", func() error { return mixedBench(out, cfg) })
		run("replay", func() error { return replayBench(out, cfg) })
		run("scaleout", func() error { return scaleoutBench(out, cfg) })
	default:
		fmt.Fprintf(os.Stderr, "zidian-bench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

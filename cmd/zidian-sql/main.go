// Command zidian-sql is an interactive SQL shell over a generated workload
// database mapped to a BaaV store. Every answer is accompanied by the KBA
// plan, its scan-free/bounded classification, and data-access statistics —
// a direct window into what Zidian does with a query.
//
// Usage:
//
//	zidian-sql -workload tpch -scale 0.5
//	> select PS.suppkey, SUM(PS.supplycost) from PARTSUPP PS, SUPPLIER S,
//	  NATION N where PS.suppkey = S.suppkey and S.nationkey = N.nationkey
//	  and N.name = 'GERMANY' group by PS.suppkey
//
// Meta commands: \schema (BaaV schema), \tables (relations), \q (quit).
// SHOW STATEMENTS prints this session's per-template statement statistics.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"zidian"
	"zidian/internal/obs"
	"zidian/internal/server"
	"zidian/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "tpch", "workload: tpch, mot, airca")
		scale   = flag.Float64("scale", 0.25, "dataset scale")
		seed    = flag.Int64("seed", 7, "generator seed")
		workers = flag.Int("workers", 4, "SQL-layer workers")
	)
	flag.Parse()

	w, err := workload.Generate(*name, workload.Spec{Scale: *scale, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "zidian-sql:", err)
		os.Exit(1)
	}
	inst, err := zidian.Open(w.DB, w.Schema, zidian.Options{Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "zidian-sql:", err)
		os.Exit(1)
	}
	fmt.Printf("zidian-sql: %s at scale %g (%d tuples); \\q to quit\n",
		*name, *scale, w.DB.Cardinality())
	stmts := obs.NewStmtStats(256)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() { fmt.Print("> ") }
	prompt()
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "\\q" || line == "quit" || line == "exit":
			return
		case line == "\\tables":
			for _, s := range w.DB.Schemas() {
				fmt.Printf("  %s (%d tuples)\n", s, w.DB.Relation(s.Name).Cardinality())
			}
			prompt()
			continue
		case line == "\\schema":
			for _, kvs := range w.Schema.KVs {
				fmt.Printf("  %s  [degree %d]\n", kvs, inst.Store().Degree(kvs.Name))
			}
			prompt()
			continue
		case line == "\\queries":
			for _, q := range w.Queries {
				tag := "non scan-free"
				if q.ScanFree {
					tag = "scan-free"
				}
				fmt.Printf("  %-28s %s\n", q.Name, tag)
			}
			prompt()
			continue
		case line == "":
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteString(" ")
		if !strings.HasSuffix(line, ";") && !looksComplete(pending.String()) {
			fmt.Print("... ")
			continue
		}
		src := strings.TrimSuffix(strings.TrimSpace(pending.String()), ";")
		pending.Reset()
		runQuery(inst, stmts, src)
		prompt()
	}
}

// looksComplete treats a statement as complete when it has a FROM clause or
// is an INSERT; multiline input continues until a semicolon otherwise.
func looksComplete(src string) bool {
	lower := strings.ToLower(strings.TrimSpace(src))
	return strings.Contains(lower, " from ") || strings.HasPrefix(lower, "insert") ||
		strings.HasSuffix(lower, ";")
}

func runQuery(inst *zidian.Instance, stmts *obs.StmtStats, src string) {
	lower := strings.ToLower(strings.TrimSpace(src))
	if lower == "show statements" {
		showStatements(stmts)
		return
	}
	norm := server.NormalizeSQL(src)
	template, _ := server.AnonymizeSQL(norm, nil)
	if strings.HasPrefix(lower, "insert") || strings.HasPrefix(lower, "delete") {
		verb := "insert"
		if strings.HasPrefix(lower, "delete") {
			verb = "delete"
		}
		t0 := time.Now()
		out, err := inst.Exec(src)
		u := obs.StmtUsage{Verb: verb, Template: template, Wall: time.Since(t0), Err: err != nil}
		if out != nil {
			u.Rows = int64(out.Affected)
		}
		stmts.Record(u)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("-- %d rows affected\n", out.Affected)
		return
	}
	t0 := time.Now()
	res, stats, err := inst.Query(src)
	u := obs.StmtUsage{Verb: "select", Template: template, Wall: time.Since(t0), Err: err != nil}
	if res != nil {
		u.Rows = int64(len(res.Rows))
	}
	stmts.Record(u)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(strings.Join(res.Cols, " | "))
	max := len(res.Rows)
	if max > 20 {
		max = 20
	}
	for _, row := range res.Rows[:max] {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	if len(res.Rows) > max {
		fmt.Printf("... (%d rows total)\n", len(res.Rows))
	}
	kind := "not scan-free"
	if stats.ScanFree {
		kind = "scan-free"
		if stats.Bounded {
			kind += ", bounded"
		}
	}
	fmt.Printf("-- %d rows; %s; %d gets, %d values, %s\n",
		len(res.Rows), kind, stats.Gets, stats.DataValues, stats.Wall)
	fmt.Printf("-- plan: %s\n", stats.Plan)
}

// showStatements prints this session's per-template statistics, the shell's
// local analogue of the server's SHOW STATEMENTS.
func showStatements(stmts *obs.StmtStats) {
	snap := stmts.Snapshot()
	entries := snap.Statements
	obs.SortStmtEntries(entries, obs.SortByTotalTime)
	if snap.Evicted != nil {
		entries = append(entries, *snap.Evicted)
	}
	if len(entries) == 0 {
		fmt.Println("-- no statements recorded yet")
		return
	}
	fmt.Printf("%-56s %-7s %6s %6s %8s %10s %8s %8s\n",
		"template", "verb", "calls", "errs", "rows", "total_ms", "mean_us", "p95_us")
	for _, e := range entries {
		name := e.Template
		if len(name) > 56 {
			name = name[:53] + "..."
		}
		fmt.Printf("%-56s %-7s %6d %6d %8d %10.2f %8.0f %8.0f\n",
			name, e.Verb, e.Calls, e.Errors, e.Rows,
			float64(e.TotalNanos)/1e6, e.MeanMicros, e.P95Micros)
	}
	fmt.Printf("-- %d templates tracked (capacity %d, %d evictions)\n",
		snap.Tracked, snap.Capacity, snap.Evictions)
}

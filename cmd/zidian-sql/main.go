// Command zidian-sql is an interactive SQL shell over a generated workload
// database mapped to a BaaV store. Every answer is accompanied by the KBA
// plan, its scan-free/bounded classification, and data-access statistics —
// a direct window into what Zidian does with a query.
//
// Usage:
//
//	zidian-sql -workload tpch -scale 0.5
//	> select PS.suppkey, SUM(PS.supplycost) from PARTSUPP PS, SUPPLIER S,
//	  NATION N where PS.suppkey = S.suppkey and S.nationkey = N.nationkey
//	  and N.name = 'GERMANY' group by PS.suppkey
//
// Meta commands: \schema (BaaV schema), \tables (relations), \q (quit).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"zidian"
	"zidian/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "tpch", "workload: tpch, mot, airca")
		scale   = flag.Float64("scale", 0.25, "dataset scale")
		seed    = flag.Int64("seed", 7, "generator seed")
		workers = flag.Int("workers", 4, "SQL-layer workers")
	)
	flag.Parse()

	w, err := workload.Generate(*name, workload.Spec{Scale: *scale, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "zidian-sql:", err)
		os.Exit(1)
	}
	inst, err := zidian.Open(w.DB, w.Schema, zidian.Options{Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "zidian-sql:", err)
		os.Exit(1)
	}
	fmt.Printf("zidian-sql: %s at scale %g (%d tuples); \\q to quit\n",
		*name, *scale, w.DB.Cardinality())

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() { fmt.Print("> ") }
	prompt()
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "\\q" || line == "quit" || line == "exit":
			return
		case line == "\\tables":
			for _, s := range w.DB.Schemas() {
				fmt.Printf("  %s (%d tuples)\n", s, w.DB.Relation(s.Name).Cardinality())
			}
			prompt()
			continue
		case line == "\\schema":
			for _, kvs := range w.Schema.KVs {
				fmt.Printf("  %s  [degree %d]\n", kvs, inst.Store().Degree(kvs.Name))
			}
			prompt()
			continue
		case line == "\\queries":
			for _, q := range w.Queries {
				tag := "non scan-free"
				if q.ScanFree {
					tag = "scan-free"
				}
				fmt.Printf("  %-28s %s\n", q.Name, tag)
			}
			prompt()
			continue
		case line == "":
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteString(" ")
		if !strings.HasSuffix(line, ";") && !looksComplete(pending.String()) {
			fmt.Print("... ")
			continue
		}
		src := strings.TrimSuffix(strings.TrimSpace(pending.String()), ";")
		pending.Reset()
		runQuery(inst, src)
		prompt()
	}
}

// looksComplete treats a statement as complete when it has a FROM clause or
// is an INSERT; multiline input continues until a semicolon otherwise.
func looksComplete(src string) bool {
	lower := strings.ToLower(strings.TrimSpace(src))
	return strings.Contains(lower, " from ") || strings.HasPrefix(lower, "insert") ||
		strings.HasSuffix(lower, ";")
}

func runQuery(inst *zidian.Instance, src string) {
	lower := strings.ToLower(strings.TrimSpace(src))
	if strings.HasPrefix(lower, "insert") || strings.HasPrefix(lower, "delete") {
		out, err := inst.Exec(src)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("-- %d rows affected\n", out.Affected)
		return
	}
	res, stats, err := inst.Query(src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(strings.Join(res.Cols, " | "))
	max := len(res.Rows)
	if max > 20 {
		max = 20
	}
	for _, row := range res.Rows[:max] {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	if len(res.Rows) > max {
		fmt.Printf("... (%d rows total)\n", len(res.Rows))
	}
	kind := "not scan-free"
	if stats.ScanFree {
		kind = "scan-free"
		if stats.Bounded {
			kind += ", bounded"
		}
	}
	fmt.Printf("-- %d rows; %s; %d gets, %d values, %s\n",
		len(res.Rows), kind, stats.Gets, stats.DataValues, stats.Wall)
	fmt.Printf("-- plan: %s\n", stats.Plan)
}

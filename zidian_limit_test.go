package zidian

import "testing"

// TestLimitParam covers the parameterized LIMIT ? satellite end to end:
// the slot flows lexer → AST → binder → PlanInfo.Bind, with arity and kind
// validation (non-negative int) and template reuse across limits.
func TestLimitParam(t *testing.T) {
	db := NewDatabase()
	schema := MustRelSchema("T", []Attr{
		{Name: "id", Kind: KindInt},
		{Name: "v", Kind: KindInt},
	}, []string{"id"})
	rel := NewRelation(schema)
	for i := 0; i < 20; i++ {
		rel.MustInsert(Tuple{Int(int64(i)), Int(int64(i * 2))})
	}
	db.Add(rel)
	bv, err := NewBaaVSchema(db, KVSchema{Name: "t_full", Rel: "T", Key: []string{"id"}, Val: []string{"v"}})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Open(db, bv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := inst.Prepare("select T.id from T T order by T.id limit ?")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int64{0, 3, 7, 100} {
		res, _, err := p.Run(Int(n))
		if err != nil {
			t.Fatal(err)
		}
		want := int(n)
		if want > 20 {
			want = 20
		}
		if len(res.Rows) != want {
			t.Fatalf("limit %d: rows = %d, want %d", n, len(res.Rows), want)
		}
	}
	if _, _, err := p.Run(Int(-1)); err == nil {
		t.Fatal("negative LIMIT parameter accepted")
	}
	if _, _, err := p.Run(String("x")); err == nil {
		t.Fatal("string LIMIT parameter accepted")
	}
	if _, _, err := p.Run(); err == nil {
		t.Fatal("missing LIMIT parameter accepted")
	}
	// combined with a predicate slot
	p2, err := inst.Prepare("select T.id from T T where T.v >= ? order by T.id limit ?")
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := p2.Run(Int(10), Int(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	// template must stay reusable with a different limit
	res, _, err = p2.Run(Int(10), Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

package zidian

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"zidian/internal/obs"
)

// obsSuite: query shapes covering every traced access path — point lookup,
// chain join, index lookup, ordered posting-range walk, aggregation.
var obsSuite = []string{
	"select I.sku, I.qty from ITEM I where I.item_id = 42",
	"select I.item_id from ITEM I where I.sku = 'SKU-00010'",
	"select I.item_id, I.qty from ITEM I where I.sku between 'SKU-00010' and 'SKU-00019'",
	"select COUNT(*), MAX(I.qty) from ITEM I where I.sku between 'SKU-00030' and 'SKU-00039'",
	"select I.item_id from ITEM I where I.qty >= 48",
}

// TestAnalyzeTraceMatchesClusterDelta is the acceptance invariant: for every
// traced statement the trace's kv counters equal the cluster-wide metrics
// delta, per op kind, on all three storage engines. Run under -race this
// also exercises concurrent trace recording through the parallel executor.
func TestAnalyzeTraceMatchesClusterDelta(t *testing.T) {
	for _, eng := range rangeEngines {
		db, bv := rangeItemsDB(t)
		inst, err := Open(db, bv, Options{Engine: eng, Nodes: 4, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, ddl := range rangeSuiteDDL {
			if _, err := inst.Exec(ddl); err != nil {
				t.Fatal(err)
			}
		}
		for _, q := range obsSuite {
			p, err := inst.Prepare(q)
			if err != nil {
				t.Fatalf("%s: %s: %v", eng, q, err)
			}
			before := inst.Store().Cluster.Metrics()
			_, _, tr, err := p.Analyze(nil)
			if err != nil {
				t.Fatalf("%s: %s: %v", eng, q, err)
			}
			delta := inst.Store().Cluster.Metrics().Sub(before)
			s := tr.KV.Snapshot()
			if s.Gets != delta.Gets || s.Puts != delta.Puts ||
				s.Deletes != delta.Deletes || s.ScanNexts != delta.ScanNexts {
				t.Fatalf("%s: %s:\ntrace   gets=%d puts=%d deletes=%d scan=%d\ncluster gets=%d puts=%d deletes=%d scan=%d",
					eng, q, s.Gets, s.Puts, s.Deletes, s.ScanNexts,
					delta.Gets, delta.Puts, delta.Deletes, delta.ScanNexts)
			}
			if s.BytesRead != delta.BytesRead || s.BytesWritten != delta.BytesWritten {
				t.Fatalf("%s: %s: trace bytes %d/%d, cluster %d/%d",
					eng, q, s.BytesRead, s.BytesWritten, delta.BytesRead, delta.BytesWritten)
			}
		}
	}
}

var kvOpsRe = regexp.MustCompile(`kv_ops=(\d+)`)

// TestExplainAnalyzeStatement: EXPLAIN ANALYZE through Exec returns one row
// per plan line — headline, annotated tree, totals — and the totals line's
// kv-op count matches the cluster delta for the statement.
func TestExplainAnalyzeStatement(t *testing.T) {
	for _, eng := range rangeEngines {
		db, bv := rangeItemsDB(t)
		inst, err := Open(db, bv, Options{Engine: eng, Nodes: 4, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Exec("create index ix_item_sku on ITEM(sku)"); err != nil {
			t.Fatal(err)
		}
		before := inst.Store().Cluster.Metrics()
		r, err := inst.Exec("explain analyze select I.item_id from ITEM I where I.sku = 'SKU-00010'")
		if err != nil {
			t.Fatal(err)
		}
		delta := inst.Store().Cluster.Metrics().Sub(before)
		if len(r.Result.Cols) != 1 || r.Result.Cols[0] != "plan" {
			t.Fatalf("%s: cols = %v", eng, r.Result.Cols)
		}
		if len(r.Result.Rows) < 3 {
			t.Fatalf("%s: plan rows = %d, want headline + tree + totals", eng, len(r.Result.Rows))
		}
		headline := r.Result.Rows[0][0].Str
		if !strings.Contains(headline, "IndexLookup") || !strings.Contains(headline, "index-assisted") {
			t.Fatalf("%s: headline = %q", eng, headline)
		}
		var totals string
		for _, row := range r.Result.Rows {
			if strings.HasPrefix(row[0].Str, "totals:") {
				totals = row[0].Str
			}
		}
		if totals == "" {
			t.Fatalf("%s: no totals line in %v", eng, r.Result.Rows)
		}
		m := kvOpsRe.FindStringSubmatch(totals)
		if m == nil {
			t.Fatalf("%s: totals line has no kv_ops: %q", eng, totals)
		}
		kvOps, _ := strconv.ParseInt(m[1], 10, 64)
		wantOps := delta.Gets + delta.Puts + delta.Deletes + delta.ScanNexts
		if kvOps != wantOps {
			t.Fatalf("%s: totals kv_ops=%d, cluster delta=%d", eng, kvOps, wantOps)
		}
		// A rendered operator line carries runtime annotations.
		tree := r.Result.Rows[1][0].Str
		if !strings.Contains(tree, "rows=") || !strings.Contains(tree, "time=") {
			t.Fatalf("%s: tree line unannotated: %q", eng, tree)
		}
	}
}

// TestTracedPointLookupScanFree: a block point lookup performs zero scan
// steps — the scan-freeness the paper's middleware exists to deliver,
// asserted through the per-statement trace instead of the plan text.
func TestTracedPointLookupScanFree(t *testing.T) {
	db, bv := rangeItemsDB(t)
	inst, err := Open(db, bv, Options{Nodes: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	p, err := inst.Prepare("select I.sku, I.qty from ITEM I where I.item_id = ?")
	if err != nil {
		t.Fatal(err)
	}
	tr := &obs.Trace{}
	res, stats, err := p.RunTraced(tr, Int(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !stats.ScanFree {
		t.Fatalf("rows=%d scanFree=%v", len(res.Rows), stats.ScanFree)
	}
	s := tr.KV.Snapshot()
	if s.ScanNexts != 0 {
		t.Fatalf("point lookup took %d scan steps, want 0", s.ScanNexts)
	}
	if s.Gets == 0 {
		t.Fatal("trace recorded no gets for a point lookup")
	}
}

// TestTracedLimitPushdownBounded: `range LIMIT k` stays O(k) in scan steps,
// asserted through the trace (the regression the LIMIT pushdown PR fixed,
// now pinned via the observability layer).
func TestTracedLimitPushdownBounded(t *testing.T) {
	db, bv := rangeItemsDB(t)
	inst, err := Open(db, bv, Options{Nodes: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Exec("create index ix_item_sku on ITEM(sku)"); err != nil {
		t.Fatal(err)
	}
	p, err := inst.Prepare("select I.item_id, I.qty from ITEM I where I.sku between 'SKU-00050' and 'SKU-00149' limit 8")
	if err != nil {
		t.Fatal(err)
	}
	tr := &obs.Trace{}
	res, _, err := p.RunTraced(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	if scans := tr.KV.Snapshot().ScanNexts; scans > 16 {
		t.Fatalf("bound walk traced %d scan steps, want O(limit) <= 16", scans)
	}
	// Control: the unbounded window walks the whole range.
	full, err := inst.Prepare("select I.item_id, I.qty from ITEM I where I.sku between 'SKU-00050' and 'SKU-00149'")
	if err != nil {
		t.Fatal(err)
	}
	ftr := &obs.Trace{}
	fres, _, err := full.RunTraced(ftr)
	if err != nil {
		t.Fatal(err)
	}
	if len(fres.Rows) != 400 || ftr.KV.Snapshot().ScanNexts < 100 {
		t.Fatalf("control: rows=%d scans=%d, expected the whole range", len(fres.Rows), ftr.KV.Snapshot().ScanNexts)
	}
}

package zidian

import (
	"fmt"
	"strings"
	"testing"

	"zidian/internal/baav"
)

// The placement differential suite: the scattered per-node read pipelines
// (scan fan-in, posting heap merge, batched routed gets) must answer every
// query byte-identically to the single-node layout, on every engine, for
// every node count — node count is placement, never semantics. Run under
// -race in CI.

var scatterTestNodes = []int{1, 2, 4, 8}

// scatterSuite covers every scattered access path: whole-instance scans
// (node-contiguous fan-in), pk point reads and index lookups (batched routed
// gets), index ranges (ordered heap merge), LIMIT walks (producer-side cut),
// and aggregates over all of them.
var scatterSuite = []string{
	"select I.item_id, I.sku, I.qty, I.price from ITEM I",
	"select I.qty from ITEM I where I.item_id = 123",
	"select I.item_id from ITEM I where I.sku = 'SKU-00042'",
	"select I.item_id, I.qty from ITEM I where I.sku between 'SKU-00050' and 'SKU-00059'",
	"select I.item_id from ITEM I where I.qty >= 45 order by I.item_id limit 9",
	"select I.sku, I.item_id from ITEM I where I.sku between 'SKU-00010' and 'SKU-00014' order by I.sku, I.item_id limit 5",
	"select COUNT(*), SUM(I.qty), MIN(I.price), MAX(I.sku) from ITEM I",
	"select COUNT(*), MIN(I.item_id) from ITEM I where I.price between 12 and 14",
}

// TestDifferentialScatterNodeCounts pins the reference at one node (where
// scatter degenerates to the serial walk) and requires every other node
// count, engine, and plan shape (scan vs index-served, literal vs bound) to
// reproduce it byte for byte.
func TestDifferentialScatterNodeCounts(t *testing.T) {
	refs := make([]string, len(scatterSuite))
	refLabels := make([]string, len(scatterSuite))
	check := func(qi int, label string, res *Result) {
		t.Helper()
		got := renderResult(res)
		if refs[qi] == "" {
			refs[qi], refLabels[qi] = got, label
			return
		}
		if got != refs[qi] {
			t.Fatalf("q%d %q:\n%s differs from %s\n--- %s\n%s--- %s\n%s",
				qi, scatterSuite[qi], label, refLabels[qi], refLabels[qi], refs[qi], label, got)
		}
	}
	for _, eng := range rangeEngines {
		for _, nodes := range scatterTestNodes {
			db, bv := rangeItemsDB(t)
			inst, err := Open(db, bv, Options{Engine: eng, Nodes: nodes, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("%s/%dn", eng, nodes)

			for qi, src := range scatterSuite {
				res, _, err := inst.Query(src)
				if err != nil {
					t.Fatalf("q%d scan on %s: %v", qi, label, err)
				}
				check(qi, label+"/scan", res)
			}
			for _, ddl := range rangeSuiteDDL {
				if _, err := inst.Exec(ddl); err != nil {
					t.Fatal(err)
				}
			}
			for qi, src := range scatterSuite {
				res, _, err := inst.Query(src)
				if err != nil {
					t.Fatalf("q%d indexed on %s: %v", qi, label, err)
				}
				check(qi, label+"/indexed", res)

				tmpl, params := paramize(t, src)
				p, err := inst.Prepare(tmpl)
				if err != nil {
					t.Fatalf("q%d template %q: %v", qi, tmpl, err)
				}
				bound, _, err := p.Run(params...)
				if err != nil {
					t.Fatalf("q%d bound on %s: %v", qi, label, err)
				}
				check(qi, label+"/indexed/params", bound)
			}
		}
	}
}

// scatterMVCCInstance is a smaller ITEM fixture (200 rows) so every node's
// scatter pipeline buffers its whole walk without consumer backpressure —
// the mid-scan-commit test below relies on producers releasing their node
// locks while the gather is paused inside the callback.
func scatterMVCCInstance(t *testing.T, engine string, nodes int) *Instance {
	t.Helper()
	db := NewDatabase()
	schema := MustRelSchema("ITEM", []Attr{
		{Name: "item_id", Kind: KindInt},
		{Name: "sku", Kind: KindString},
		{Name: "qty", Kind: KindInt},
	}, []string{"item_id"})
	rel := NewRelation(schema)
	for i := 0; i < 200; i++ {
		rel.MustInsert(Tuple{
			Int(int64(i)),
			String(fmt.Sprintf("SKU-%05d", i/4)),
			Int(int64(i % 50)),
		})
	}
	db.Add(rel)
	bv, err := NewBaaVSchema(db, KVSchema{
		Name: "item_full", Rel: "ITEM", Key: []string{"item_id"}, Val: []string{"sku", "qty"},
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Open(db, bv, Options{Engine: engine, Nodes: nodes, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// scatterCollect renders one scattered walk of item_full — block keys and
// tuple payloads in delivery order — pinning a snapshot around the walk
// exactly like statement execution does.
func scatterCollect(t *testing.T, inst *Instance, mid func()) string {
	t.Helper()
	snap := inst.Store().PinSnapshot([]string{"ITEM"})
	defer snap.Release()
	var b strings.Builder
	first := true
	_, err := inst.Store().AtSnapshot(snap).ScanInstanceScatterT(nil, "item_full", func(key Tuple, blk *baav.Block, _ *baav.BlockStats) bool {
		if first && mid != nil {
			mid()
			first = false
		}
		fmt.Fprintf(&b, "%v:", key)
		for _, tu := range blk.Tuples {
			fmt.Fprintf(&b, "%v|", tu)
		}
		b.WriteByte('\n')
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestScatterMidScanCommitMVCC: a commit that lands while a scattered scan
// is mid-delivery must be invisible to that scan. The callback pauses the
// gather after the first block and blocks until a writer commits an insert
// and a delete through the group committer — per-node producers have already
// buffered their walks and released their locks, so the commit fully
// installs while the scan is in flight. The paused scan must still deliver
// exactly the pre-commit state; a fresh scan afterwards sees the new one.
//
// Node count 1 is excluded: the degenerate single-node walk runs inline
// under the node's read lock, so a writer cannot commit mid-scan at all —
// pausing for one there would deadlock by design, and its differential
// coverage comes from TestDifferentialScatterNodeCounts.
func TestScatterMidScanCommitMVCC(t *testing.T) {
	for _, eng := range rangeEngines {
		for _, nodes := range scatterTestNodes {
			if nodes == 1 {
				continue
			}
			inst := scatterMVCCInstance(t, eng, nodes)
			before := scatterCollect(t, inst, nil)

			committed := make(chan error, 1)
			got := scatterCollect(t, inst, func() {
				go func() {
					if _, err := inst.Exec("insert into ITEM values (9000, 'SKU-MID', 7)"); err != nil {
						committed <- err
						return
					}
					_, err := inst.Exec("delete from ITEM where item_id = 150")
					committed <- err
				}()
				if err := <-committed; err != nil {
					t.Errorf("%s/%dn: mid-scan writer: %v", eng, nodes, err)
				}
			})
			if t.Failed() {
				t.FailNow()
			}
			if got != before {
				t.Fatalf("%s/%dn: scan started before the commit observed it", eng, nodes)
			}

			after := scatterCollect(t, inst, nil)
			if after == before {
				t.Fatalf("%s/%dn: committed insert+delete invisible to a fresh scan", eng, nodes)
			}
			if !strings.Contains(after, "SKU-MID") {
				t.Fatalf("%s/%dn: fresh scan lacks the inserted row", eng, nodes)
			}
			res, _, err := inst.Query("select COUNT(*) from ITEM I")
			if err != nil {
				t.Fatal(err)
			}
			if n := res.Rows[0][0].Int; n != 200 {
				t.Fatalf("%s/%dn: COUNT(*) = %d after insert+delete of one row each, want 200", eng, nodes, n)
			}
		}
	}
}

package kba

import (
	"fmt"

	"zidian/internal/relation"
)

// Bind resolves every parameter slot in a plan template against the bound
// values, returning an executable literal-only plan. Subtrees without slots
// are shared, not copied, so binding a cached template is cheap: the cost is
// proportional to the number of parameterized nodes, not the plan size, and
// no parsing, checking or plan generation happens. Callers validate arity
// and types before Bind (see core.PlanInfo.Bind); Bind itself only fails on
// out-of-range slots, which indicates a template/binding mismatch.
func Bind(p Plan, params []relation.Value) (Plan, error) {
	if p == nil {
		return nil, nil
	}
	switch n := p.(type) {
	case *Const:
		if len(n.Args) == 0 {
			return n, nil
		}
		keys := make([]relation.Tuple, 0, len(n.Keys)+len(n.Args))
		keys = append(keys, n.Keys...)
		for _, row := range n.Args {
			t := make(relation.Tuple, len(row))
			for i, a := range row {
				v, err := a.Resolve(params)
				if err != nil {
					return nil, err
				}
				t[i] = v
			}
			keys = append(keys, t)
		}
		return &Const{KeyAttrs: n.KeyAttrs, Keys: dedupeTuples(keys)}, nil
	case *IndexLookup:
		if len(n.Args) == 0 {
			return n, nil
		}
		vals := make([]relation.Value, 0, len(n.Values)+len(n.Args))
		vals = append(vals, n.Values...)
		for _, a := range n.Args {
			v, err := a.Resolve(params)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		out := *n
		out.Args = nil
		out.Values = dedupeValues(vals)
		return &out, nil
	case *IndexRange:
		if !n.hasSlots() {
			return n, nil
		}
		out := *n
		resolveBound := func(a *Arg) (*Arg, error) {
			if a == nil || !a.IsSlot {
				return a, nil
			}
			v, err := a.Resolve(params)
			if err != nil {
				return nil, err
			}
			lit := LitArg(v)
			return &lit, nil
		}
		var err error
		if out.Lo, err = resolveBound(n.Lo); err != nil {
			return nil, err
		}
		if out.Hi, err = resolveBound(n.Hi); err != nil {
			return nil, err
		}
		if out.Limit, err = resolveBound(n.Limit); err != nil {
			return nil, err
		}
		return &out, nil
	case *Select:
		in, err := Bind(n.Input, params)
		if err != nil {
			return nil, err
		}
		changed := in != n.Input
		preds := n.Preds
		for i := range n.Preds {
			if n.Preds[i].hasSlots() {
				changed = true
				preds = make([]Pred, len(n.Preds))
				copy(preds, n.Preds)
				for j := range preds {
					bp, err := bindPred(preds[j], params)
					if err != nil {
						return nil, err
					}
					preds[j] = bp
				}
				break
			}
		}
		if !changed {
			return n, nil
		}
		return &Select{Input: in, Preds: preds}, nil
	case *Extend:
		return bind1(n, &n.Input, params, func(in Plan) Plan {
			c := *n
			c.Input = in
			return &c
		})
	case *Shift:
		return bind1(n, &n.Input, params, func(in Plan) Plan {
			c := *n
			c.Input = in
			return &c
		})
	case *Project:
		return bind1(n, &n.Input, params, func(in Plan) Plan {
			c := *n
			c.Input = in
			return &c
		})
	case *Distinct:
		return bind1(n, &n.Input, params, func(in Plan) Plan {
			c := *n
			c.Input = in
			return &c
		})
	case *GroupBy:
		return bind1(n, &n.Input, params, func(in Plan) Plan {
			c := *n
			c.Input = in
			return &c
		})
	case *Join:
		return bind2(n, &n.L, &n.R, params, func(l, r Plan) Plan {
			c := *n
			c.L, c.R = l, r
			return &c
		})
	case *Union:
		return bind2(n, &n.L, &n.R, params, func(l, r Plan) Plan {
			c := *n
			c.L, c.R = l, r
			return &c
		})
	case *Diff:
		return bind2(n, &n.L, &n.R, params, func(l, r Plan) Plan {
			c := *n
			c.L, c.R = l, r
			return &c
		})
	case *ScanKV, *StatsAgg:
		return p, nil
	default:
		// Unknown leaves (e.g. executor-internal wrappers) carry no slots.
		if len(p.Children()) == 0 {
			return p, nil
		}
		return nil, fmt.Errorf("kba: cannot bind unknown plan node %T", p)
	}
}

// bind1 rebuilds a single-input node only when its input changed.
func bind1(n Plan, input *Plan, params []relation.Value, rebuild func(Plan) Plan) (Plan, error) {
	in, err := Bind(*input, params)
	if err != nil {
		return nil, err
	}
	if in == *input {
		return n, nil
	}
	return rebuild(in), nil
}

// bind2 rebuilds a two-input node only when an input changed.
func bind2(n Plan, l, r *Plan, params []relation.Value, rebuild func(Plan, Plan) Plan) (Plan, error) {
	bl, err := Bind(*l, params)
	if err != nil {
		return nil, err
	}
	br, err := Bind(*r, params)
	if err != nil {
		return nil, err
	}
	if bl == *l && br == *r {
		return n, nil
	}
	return rebuild(bl, br), nil
}

// bindPred resolves a predicate's parameter slots.
func bindPred(p Pred, params []relation.Value) (Pred, error) {
	if p.Param != nil {
		slot := *p.Param
		if slot < 0 || slot >= len(params) {
			return Pred{}, fmt.Errorf("kba: parameter slot %d out of range (have %d)", slot, len(params))
		}
		v := params[slot]
		p.Param = nil
		p.Lit = &v
	}
	if len(p.InSlots) > 0 {
		vals := append([]relation.Value{}, p.In...)
		for _, slot := range p.InSlots {
			if slot < 0 || slot >= len(params) {
				return Pred{}, fmt.Errorf("kba: parameter slot %d out of range (have %d)", slot, len(params))
			}
			vals = append(vals, params[slot])
		}
		p.InSlots = nil
		p.In = vals
	}
	return p, nil
}

// HasParams reports whether the plan still contains unresolved parameter
// slots (i.e. it is a template, not an executable plan).
func HasParams(p Plan) bool {
	if p == nil {
		return false
	}
	switch n := p.(type) {
	case *Const:
		if len(n.Args) > 0 {
			return true
		}
	case *IndexLookup:
		if len(n.Args) > 0 {
			return true
		}
	case *IndexRange:
		if n.hasSlots() {
			return true
		}
	case *Select:
		for _, pr := range n.Preds {
			if pr.hasSlots() {
				return true
			}
		}
	}
	for _, c := range p.Children() {
		if HasParams(c) {
			return true
		}
	}
	return false
}

// dedupeTuples removes duplicate key tuples, preserving first-seen order.
// Binding may collapse template rows onto one value (two slots bound to the
// same literal), and a seed must contribute each distinct key once.
func dedupeTuples(ts []relation.Tuple) []relation.Tuple {
	seen := make(map[string]bool, len(ts))
	out := ts[:0:0]
	for _, t := range ts {
		k := relation.KeyString(t)
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out
}

// dedupeValues removes duplicate lookup values, preserving first-seen order.
func dedupeValues(vs []relation.Value) []relation.Value {
	seen := make(map[string]bool, len(vs))
	out := vs[:0:0]
	for _, v := range vs {
		k := relation.KeyString(relation.Tuple{v})
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}

package kba

import (
	"fmt"
	"strings"

	"zidian/internal/obs"
)

// OpName returns the operator name of a plan node — the stable identifier
// EXPLAIN, EXPLAIN ANALYZE, and trace spans all share, so the static and
// the executed rendering of a plan can never drift apart.
func OpName(p Plan) string {
	switch p.(type) {
	case *Const:
		return "Const"
	case *ScanKV:
		return "ScanKV"
	case *IndexLookup:
		return "IndexLookup"
	case *IndexRange:
		return "IndexRange"
	case *Extend:
		return "Extend"
	case *Shift:
		return "Shift"
	case *Join:
		return "Join"
	case *Select:
		return "Select"
	case *Project:
		return "Project"
	case *Union:
		return "Union"
	case *Diff:
		return "Diff"
	case *GroupBy:
		return "GroupBy"
	case *StatsAgg:
		return "StatsAgg"
	case *Distinct:
		return "Distinct"
	default:
		return fmt.Sprintf("%T", p)
	}
}

// NodeLabel returns the node's own parameters without recursing into its
// inputs — the per-line annotation of the rendered plan tree (children get
// their own lines).
func NodeLabel(p Plan) string {
	switch n := p.(type) {
	case *Const:
		return strings.TrimPrefix(strings.TrimSuffix(n.String(), "]"), "const[")
	case *ScanKV:
		return fmt.Sprintf("%s as %s", n.KV, n.Alias)
	case *IndexLookup:
		return strings.TrimPrefix(strings.TrimSuffix(n.String(), "]"), "IndexLookup[")
	case *IndexRange:
		return strings.TrimPrefix(strings.TrimSuffix(n.String(), "]"), "IndexRange[")
	case *Extend:
		return fmt.Sprintf("∝ %s on %s as %s", n.KV, strings.Join(n.KeyFrom, ","), n.Alias)
	case *Shift:
		return "↑ " + strings.Join(n.NewKey, ",")
	case *Join:
		// Labels render before the executor validates, so tolerate a
		// malformed node (mismatched LOn/ROn) instead of panicking.
		pairs := make([]string, 0, len(n.LOn))
		for i := range n.LOn {
			if i >= len(n.ROn) {
				break
			}
			pairs = append(pairs, n.LOn[i]+"="+n.ROn[i])
		}
		return strings.Join(pairs, ",")
	case *Select:
		parts := make([]string, len(n.Preds))
		for i, pr := range n.Preds {
			parts[i] = pr.String()
		}
		return strings.Join(parts, "∧")
	case *Project:
		return strings.Join(n.Attrs, ",")
	case *Union, *Diff, *Distinct:
		return ""
	case *GroupBy:
		parts := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			parts[i] = a.Name
		}
		return fmt.Sprintf("%s; %s", strings.Join(n.Keys, ","), strings.Join(parts, ","))
	case *StatsAgg:
		return fmt.Sprintf("%s as %s", n.KV, n.Alias)
	default:
		return ""
	}
}

// PlanTree renders a plan's static shape as an operator tree — the same
// node identities execution spans carry, with zero measurements. EXPLAIN
// renders this tree; EXPLAIN ANALYZE renders the executed one.
func PlanTree(p Plan) *obs.OpNode {
	n := &obs.OpNode{Name: OpName(p), Label: NodeLabel(p)}
	for _, c := range p.Children() {
		n.Children = append(n.Children, PlanTree(c))
	}
	return n
}

package kba

import (
	"fmt"

	"zidian/internal/baav"
	"zidian/internal/obs"
	"zidian/internal/relation"
	"zidian/internal/sql"
)

// ExecStats counts the logical data access of one plan execution: the #get,
// #data (values accessed) and fetched bytes reported in the paper's
// experiments. Physical per-node counters live in kv.Metrics; these are the
// query-level numbers.
type ExecStats struct {
	Gets       int64 // get invocations against the BaaV store
	Blocks     int64 // keyed blocks fetched (hits)
	DataValues int64 // values accessed (block rows × width, plus keys)
	ScanBlocks int64 // blocks visited by ScanKV / StatsAgg leaves, posting lists by IndexRange walks
	BytesRead  int64 // accounting size of all fetched data
}

// Add folds another stats record into s.
func (s *ExecStats) Add(o ExecStats) {
	s.Gets += o.Gets
	s.Blocks += o.Blocks
	s.DataValues += o.DataValues
	s.ScanBlocks += o.ScanBlocks
	s.BytesRead += o.BytesRead
}

// Executor runs KBA plans sequentially against a BaaV store.
type Executor struct {
	Store *baav.Store
	Stats *ExecStats

	// Trace, when set, records one operator span per executed plan node
	// plus kv/posting/block counters for the statement.
	Trace *obs.Trace
	// KV, when set while Trace is nil, sinks kv-op counts without opening
	// operator spans. The parallel executor's sequential delegate (StatsAgg)
	// uses it so the delegate's kv traffic lands in the enclosing
	// statement's totals without starting a second span tree.
	KV *obs.KV
}

// NewExecutor returns an executor with a fresh stats record.
func NewExecutor(store *baav.Store) *Executor {
	return &Executor{Store: store, Stats: &ExecStats{}}
}

// kv returns the kv-op sink the executor threads into the store: the
// trace's counters when tracing, the bare sink otherwise, nil untraced.
func (e *Executor) kv() *obs.KV {
	if e.Trace != nil {
		return &e.Trace.KV
	}
	return e.KV
}

// Run executes the plan and returns the resulting KV instance. Under a
// trace every node gets an operator span whose kv delta is inclusive of
// its inputs (the plan-tree recursion runs within the parent's span).
func (e *Executor) Run(p Plan) (*KeyedRel, error) {
	span := e.Trace.StartOpLazy(OpName(p), func() string { return NodeLabel(p) })
	out, err := e.exec(p)
	e.Trace.FinishOp(span, RowCount(out))
	return out, err
}

// RowCount returns the flattened row count of a result without
// materializing it; 0 for nil.
func RowCount(kr *KeyedRel) int {
	if kr == nil {
		return 0
	}
	n := 0
	for _, b := range kr.Blocks {
		n += len(b.Rows)
	}
	return n
}

func (e *Executor) exec(p Plan) (*KeyedRel, error) {
	switch n := p.(type) {
	case *Const:
		return e.runConst(n)
	case *ScanKV:
		return e.runScan(n)
	case *IndexLookup:
		return e.runIndexLookup(n)
	case *IndexRange:
		return e.runIndexRange(n)
	case *Extend:
		return e.runExtend(n)
	case *Shift:
		return e.runShift(n)
	case *Join:
		return e.runJoin(n)
	case *Select:
		return e.runSelect(n)
	case *Project:
		return e.runProject(n)
	case *Union:
		return e.runUnion(n)
	case *Diff:
		return e.runDiff(n)
	case *GroupBy:
		return e.runGroupBy(n)
	case *StatsAgg:
		return e.runStatsAgg(n)
	case *Distinct:
		return e.runDistinct(n)
	default:
		return nil, fmt.Errorf("kba: unknown plan node %T", p)
	}
}

func (e *Executor) runConst(n *Const) (*KeyedRel, error) {
	if len(n.Args) > 0 {
		return nil, fmt.Errorf("kba: plan template has unbound parameters (call Bind before executing)")
	}
	out := &KeyedRel{KeyAttrs: n.KeyAttrs}
	for _, k := range n.Keys {
		if len(k) != len(n.KeyAttrs) {
			return nil, fmt.Errorf("kba: constant key %v does not match attrs %v", k, n.KeyAttrs)
		}
		out.Blocks = append(out.Blocks, KeyedBlock{Key: k, Rows: []relation.Tuple{{}}})
	}
	return out, nil
}

// qualify prefixes attribute names with a query alias.
func qualify(alias string, attrs []string) []string {
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = alias + "." + a
	}
	return out
}

func (e *Executor) runScan(n *ScanKV) (*KeyedRel, error) {
	kvSchema := e.Store.Schema.ByName(n.KV)
	if kvSchema == nil {
		return nil, fmt.Errorf("kba: unknown KV schema %q", n.KV)
	}
	out := &KeyedRel{
		KeyAttrs: qualify(n.Alias, kvSchema.Key),
		ValAttrs: qualify(n.Alias, kvSchema.Val),
	}
	stats, err := e.Store.ScanInstanceScatterT(e.kv(), n.KV, func(key relation.Tuple, blk *baav.Block, _ *baav.BlockStats) bool {
		rows := blk.Expand()
		e.Stats.ScanBlocks++
		e.Trace.CountBlocks(1)
		e.Stats.DataValues += int64(len(rows)*len(kvSchema.Val) + len(key))
		e.Stats.BytesRead += int64(key.SizeBytes())
		for _, r := range rows {
			e.Stats.BytesRead += int64(r.SizeBytes())
		}
		out.Blocks = append(out.Blocks, KeyedBlock{Key: key, Rows: rows})
		return true
	})
	baav.AnnotateScatter(e.Trace, stats)
	return out, err
}

func (e *Executor) runIndexLookup(n *IndexLookup) (*KeyedRel, error) {
	if len(n.Args) > 0 {
		return nil, fmt.Errorf("kba: plan template has unbound parameters (call Bind before executing)")
	}
	if e.Store.Index == nil {
		return nil, fmt.Errorf("kba: plan uses index %q but the store has no index catalog", n.Index)
	}
	out := &KeyedRel{KeyAttrs: append([]string{n.ValAttr}, n.KeyAttrs...)}
	// The whole IN-list resolves in one batched round: the posting gets
	// group by owning node instead of paying one round trip per value.
	lists, gets, err := e.Store.Index.LookupManyT(e.Trace, n.Index, n.Values)
	if err != nil {
		return nil, err
	}
	e.Stats.Gets += int64(gets)
	for i, v := range n.Values {
		for _, k := range lists[i] {
			if len(k) != len(n.KeyAttrs) {
				return nil, fmt.Errorf("kba: index %q posts %d key attributes, plan expects %d",
					n.Index, len(k), len(n.KeyAttrs))
			}
			row := relation.Tuple{v}.Concat(k)
			e.Stats.DataValues += int64(len(row))
			e.Stats.BytesRead += int64(row.SizeBytes())
			out.Blocks = append(out.Blocks, KeyedBlock{Key: row, Rows: []relation.Tuple{{}}})
		}
	}
	return out, nil
}

// RangeBounds resolves an IndexRange node's bound Args into the values the
// index walk takes; shared by both executors. It fails on unresolved slots.
func RangeBounds(n *IndexRange) (lo, hi *relation.Value, err error) {
	resolve := func(a *Arg) (*relation.Value, error) {
		if a == nil {
			return nil, nil
		}
		if a.IsSlot {
			return nil, fmt.Errorf("kba: plan template has unbound parameters (call Bind before executing)")
		}
		v := a.Lit
		return &v, nil
	}
	if lo, err = resolve(n.Lo); err != nil {
		return nil, nil, err
	}
	hi, err = resolve(n.Hi)
	return lo, hi, err
}

// RangeWalkLimit resolves an IndexRange node's pushed-down LIMIT into the
// posting cap the walk takes: -1 when the node carries none. It fails on
// unresolved slots and on non-integer or negative bound values (which the
// query-level LIMIT validation rejects before execution anyway).
func RangeWalkLimit(n *IndexRange) (int, error) {
	if n.Limit == nil {
		return -1, nil
	}
	if n.Limit.IsSlot {
		return 0, fmt.Errorf("kba: plan template has unbound parameters (call Bind before executing)")
	}
	v := n.Limit.Lit
	if v.Kind != relation.KindInt || v.Int < 0 {
		return 0, fmt.Errorf("kba: index range limit must be a non-negative integer, got %s", v)
	}
	return int(v.Int), nil
}

func (e *Executor) runIndexRange(n *IndexRange) (*KeyedRel, error) {
	lo, hi, err := RangeBounds(n)
	if err != nil {
		return nil, err
	}
	limit, err := RangeWalkLimit(n)
	if err != nil {
		return nil, err
	}
	if e.Store.Index == nil {
		return nil, fmt.Errorf("kba: plan uses index %q but the store has no index catalog", n.Index)
	}
	vals, keys, scanned, err := e.Store.Index.RangeLimitT(e.Trace, n.Index, lo, hi, n.LoIncl, n.HiIncl, limit)
	if err != nil {
		return nil, err
	}
	e.Stats.ScanBlocks += int64(scanned)
	out := &KeyedRel{KeyAttrs: append([]string{n.ValAttr}, n.KeyAttrs...)}
	for i, k := range keys {
		if len(k) != len(n.KeyAttrs) {
			return nil, fmt.Errorf("kba: index %q posts %d key attributes, plan expects %d",
				n.Index, len(k), len(n.KeyAttrs))
		}
		row := relation.Tuple{vals[i]}.Concat(k)
		e.Stats.DataValues += int64(len(row))
		e.Stats.BytesRead += int64(row.SizeBytes())
		out.Blocks = append(out.Blocks, KeyedBlock{Key: row, Rows: []relation.Tuple{{}}})
	}
	return out, nil
}

func (e *Executor) runExtend(n *Extend) (*KeyedRel, error) {
	in, err := e.Run(n.Input)
	if err != nil {
		return nil, err
	}
	kvSchema := e.Store.Schema.ByName(n.KV)
	if kvSchema == nil {
		return nil, fmt.Errorf("kba: unknown KV schema %q", n.KV)
	}
	if len(n.KeyFrom) != len(kvSchema.Key) {
		return nil, fmt.Errorf("kba: extend on %s needs %d key attributes, got %v",
			n.KV, len(kvSchema.Key), n.KeyFrom)
	}
	inAttrs := in.Attrs()
	pos := make(map[string]int, len(inAttrs))
	for i, a := range inAttrs {
		pos[a] = i
	}
	keyIdx := make([]int, len(n.KeyFrom))
	for i, a := range n.KeyFrom {
		j, ok := pos[a]
		if !ok {
			return nil, fmt.Errorf("kba: extend key attribute %q not in input %v", a, inAttrs)
		}
		keyIdx[i] = j
	}

	out := &KeyedRel{
		KeyAttrs: inAttrs,
		ValAttrs: qualify(n.Alias, kvSchema.Val),
	}
	// One get per distinct key, and all of them in one batched round: the
	// operator's whole fetch set goes out as a single GetBlocksT, which
	// groups segment gets by owning node instead of paying one round trip
	// per block.
	inRows := in.Flatten()
	var keys []relation.Tuple
	at := make(map[string]int) // key string -> index into keys
	for _, row := range inRows {
		key := row.Project(keyIdx)
		ks := relation.KeyString(key)
		if _, ok := at[ks]; !ok {
			at[ks] = len(keys)
			keys = append(keys, key)
		}
	}
	blks, _, gets, err := e.Store.GetBlocksT(e.kv(), n.KV, keys)
	if err != nil {
		return nil, err
	}
	e.Stats.Gets += int64(gets)
	cache := make(map[string][]relation.Tuple, len(keys))
	for i, key := range keys {
		var rows []relation.Tuple
		if blk := blks[i]; blk != nil {
			rows = blk.Expand()
			e.Stats.Blocks++
			e.Trace.CountBlocks(1)
			e.Stats.DataValues += int64(len(rows)*len(kvSchema.Val) + len(key))
			e.Stats.BytesRead += int64(key.SizeBytes())
			for _, r := range rows {
				e.Stats.BytesRead += int64(r.SizeBytes())
			}
		}
		cache[relation.KeyString(key)] = rows
	}
	for _, row := range inRows {
		rows := cache[relation.KeyString(row.Project(keyIdx))]
		if len(rows) == 0 {
			continue // no matching block: ∝ joins away the row
		}
		out.Blocks = append(out.Blocks, KeyedBlock{Key: row, Rows: rows})
	}
	return out, nil
}

func (e *Executor) runShift(n *Shift) (*KeyedRel, error) {
	in, err := e.Run(n.Input)
	if err != nil {
		return nil, err
	}
	return FromRows(in.Attrs(), in.Flatten(), n.NewKey)
}

func (e *Executor) runJoin(n *Join) (*KeyedRel, error) {
	l, err := e.Run(n.L)
	if err != nil {
		return nil, err
	}
	r, err := e.Run(n.R)
	if err != nil {
		return nil, err
	}
	if len(n.LOn) != len(n.ROn) {
		return nil, fmt.Errorf("kba: join attribute lists differ in length")
	}
	lAttrs, rAttrs := l.Attrs(), r.Attrs()
	lIdx, err := attrPositions(lAttrs, n.LOn)
	if err != nil {
		return nil, err
	}
	rIdx, err := attrPositions(rAttrs, n.ROn)
	if err != nil {
		return nil, err
	}
	index := make(map[string][]relation.Tuple)
	for _, row := range r.Flatten() {
		k := relation.KeyString(row.Project(rIdx))
		index[k] = append(index[k], row)
	}
	var joined []relation.Tuple
	for _, row := range l.Flatten() {
		k := relation.KeyString(row.Project(lIdx))
		for _, rr := range index[k] {
			joined = append(joined, row.Concat(rr))
		}
	}
	return FromRows(append(append([]string{}, lAttrs...), rAttrs...), joined, n.LOn)
}

func attrPositions(attrs, want []string) ([]int, error) {
	pos := make(map[string]int, len(attrs))
	for i, a := range attrs {
		pos[a] = i
	}
	out := make([]int, len(want))
	for i, a := range want {
		j, ok := pos[a]
		if !ok {
			return nil, fmt.Errorf("kba: attribute %q not in %v", a, attrs)
		}
		out[i] = j
	}
	return out, nil
}

func (e *Executor) runSelect(n *Select) (*KeyedRel, error) {
	in, err := e.Run(n.Input)
	if err != nil {
		return nil, err
	}
	attrs := in.Attrs()
	checks, err := CompilePreds(attrs, n.Preds)
	if err != nil {
		return nil, err
	}
	var kept []relation.Tuple
	for _, row := range in.Flatten() {
		if checks(row) {
			kept = append(kept, row)
		}
	}
	return FromRows(attrs, kept, in.KeyAttrs)
}

// CompilePreds compiles predicates over the attribute layout into a single
// row filter; shared with the parallel executor.
func CompilePreds(attrs []string, preds []Pred) (func(relation.Tuple) bool, error) {
	type check func(relation.Tuple) bool
	var checks []check
	pos := make(map[string]int, len(attrs))
	for i, a := range attrs {
		pos[a] = i
	}
	for _, p := range preds {
		if p.hasSlots() {
			return nil, fmt.Errorf("kba: predicate %s has unbound parameters (call Bind before executing)", p)
		}
		i, ok := pos[p.Attr]
		if !ok {
			return nil, fmt.Errorf("kba: predicate attribute %q not in %v", p.Attr, attrs)
		}
		switch {
		case len(p.In) > 0:
			set := make(map[string]bool, len(p.In))
			for _, v := range p.In {
				set[relation.KeyString(relation.Tuple{v})] = true
			}
			checks = append(checks, func(t relation.Tuple) bool {
				return set[relation.KeyString(relation.Tuple{t[i]})]
			})
		case p.RAttr != "":
			j, ok := pos[p.RAttr]
			if !ok {
				return nil, fmt.Errorf("kba: predicate attribute %q not in %v", p.RAttr, attrs)
			}
			op := p.Op
			checks = append(checks, func(t relation.Tuple) bool {
				return cmpOK(t[i], op, t[j])
			})
		case p.Lit != nil:
			op, lit := p.Op, *p.Lit
			checks = append(checks, func(t relation.Tuple) bool {
				return cmpOK(t[i], op, lit)
			})
		default:
			return nil, fmt.Errorf("kba: malformed predicate %v", p)
		}
	}
	return func(t relation.Tuple) bool {
		for _, c := range checks {
			if !c(t) {
				return false
			}
		}
		return true
	}, nil
}

func cmpOK(a relation.Value, op sql.CmpOp, b relation.Value) bool {
	c := relation.Compare(a, b)
	switch op {
	case sql.OpEq:
		return c == 0
	case sql.OpNe:
		return c != 0
	case sql.OpLt:
		return c < 0
	case sql.OpLe:
		return c <= 0
	case sql.OpGt:
		return c > 0
	case sql.OpGe:
		return c >= 0
	default:
		return false
	}
}

func (e *Executor) runProject(n *Project) (*KeyedRel, error) {
	in, err := e.Run(n.Input)
	if err != nil {
		return nil, err
	}
	attrs := in.Attrs()
	idx, err := attrPositions(attrs, n.Attrs)
	if err != nil {
		return nil, err
	}
	rows := in.Flatten()
	proj := make([]relation.Tuple, len(rows))
	for i, r := range rows {
		proj[i] = r.Project(idx)
	}
	// Key by the kept input-key attributes.
	var key []string
	kept := make(map[string]bool, len(n.Attrs))
	for _, a := range n.Attrs {
		kept[a] = true
	}
	for _, a := range in.KeyAttrs {
		if kept[a] {
			key = append(key, a)
		}
	}
	return FromRows(n.Attrs, proj, key)
}

// align reorders r's columns to match l's attribute set.
func align(l, r *KeyedRel) ([]relation.Tuple, error) {
	idx, err := attrPositions(r.Attrs(), l.Attrs())
	if err != nil {
		return nil, fmt.Errorf("kba: set operation over mismatched attributes: %v", err)
	}
	rows := r.Flatten()
	out := make([]relation.Tuple, len(rows))
	for i, row := range rows {
		out[i] = row.Project(idx)
	}
	return out, nil
}

func (e *Executor) runUnion(n *Union) (*KeyedRel, error) {
	l, err := e.Run(n.L)
	if err != nil {
		return nil, err
	}
	r, err := e.Run(n.R)
	if err != nil {
		return nil, err
	}
	rRows, err := align(l, r)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var rows []relation.Tuple
	for _, row := range append(l.Flatten(), rRows...) {
		k := relation.KeyString(row)
		if !seen[k] {
			seen[k] = true
			rows = append(rows, row)
		}
	}
	return FromRows(l.Attrs(), rows, l.KeyAttrs)
}

func (e *Executor) runDiff(n *Diff) (*KeyedRel, error) {
	l, err := e.Run(n.L)
	if err != nil {
		return nil, err
	}
	r, err := e.Run(n.R)
	if err != nil {
		return nil, err
	}
	rRows, err := align(l, r)
	if err != nil {
		return nil, err
	}
	drop := make(map[string]bool, len(rRows))
	for _, row := range rRows {
		drop[relation.KeyString(row)] = true
	}
	seen := make(map[string]bool)
	var rows []relation.Tuple
	for _, row := range l.Flatten() {
		k := relation.KeyString(row)
		if !drop[k] && !seen[k] {
			seen[k] = true
			rows = append(rows, row)
		}
	}
	return FromRows(l.Attrs(), rows, l.KeyAttrs)
}

func (e *Executor) runDistinct(n *Distinct) (*KeyedRel, error) {
	in, err := e.Run(n.Input)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var rows []relation.Tuple
	for _, row := range in.Flatten() {
		k := relation.KeyString(row)
		if !seen[k] {
			seen[k] = true
			rows = append(rows, row)
		}
	}
	return FromRows(in.Attrs(), rows, in.KeyAttrs)
}

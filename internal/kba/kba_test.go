package kba

import (
	"strings"
	"testing"

	"zidian/internal/baav"
	"zidian/internal/kv"
	"zidian/internal/ra"
	"zidian/internal/relation"
	"zidian/internal/sql"
)

// fixture builds the paper's Example 1 database and BaaV schema:
//
//	~SUPPLIER⟨nationkey, suppkey⟩
//	~PARTSUPP⟨suppkey, (partkey, supplycost, availqty)⟩
//	~NATION⟨name, nationkey⟩
func fixture(t *testing.T) (*relation.Database, *baav.Store) {
	t.Helper()
	db := relation.NewDatabase()

	nation := relation.NewRelation(relation.MustSchema("NATION",
		[]relation.Attr{{Name: "nationkey", Kind: relation.KindInt}, {Name: "name", Kind: relation.KindString}},
		[]string{"nationkey"}))
	nation.MustInsert(relation.Tuple{relation.Int(1), relation.String("GERMANY")})
	nation.MustInsert(relation.Tuple{relation.Int(2), relation.String("FRANCE")})
	db.Add(nation)

	supplier := relation.NewRelation(relation.MustSchema("SUPPLIER",
		[]relation.Attr{{Name: "suppkey", Kind: relation.KindInt}, {Name: "nationkey", Kind: relation.KindInt}},
		[]string{"suppkey"}))
	supplier.MustInsert(relation.Tuple{relation.Int(10), relation.Int(1)})
	supplier.MustInsert(relation.Tuple{relation.Int(11), relation.Int(1)})
	supplier.MustInsert(relation.Tuple{relation.Int(12), relation.Int(2)})
	db.Add(supplier)

	partsupp := relation.NewRelation(relation.MustSchema("PARTSUPP",
		[]relation.Attr{
			{Name: "partkey", Kind: relation.KindInt}, {Name: "suppkey", Kind: relation.KindInt},
			{Name: "supplycost", Kind: relation.KindInt}, {Name: "availqty", Kind: relation.KindInt},
		},
		[]string{"partkey", "suppkey"}))
	partsupp.MustInsert(relation.Tuple{relation.Int(100), relation.Int(10), relation.Int(5), relation.Int(1)})
	partsupp.MustInsert(relation.Tuple{relation.Int(101), relation.Int(10), relation.Int(7), relation.Int(2)})
	partsupp.MustInsert(relation.Tuple{relation.Int(100), relation.Int(11), relation.Int(3), relation.Int(3)})
	partsupp.MustInsert(relation.Tuple{relation.Int(100), relation.Int(12), relation.Int(9), relation.Int(4)})
	db.Add(partsupp)

	schema := baav.MustSchema(baav.RelSchemas(db),
		baav.KVSchema{Name: "NATION_by_name", Rel: "NATION", Key: []string{"name"}, Val: []string{"nationkey"}},
		baav.KVSchema{Name: "SUPPLIER_by_nation", Rel: "SUPPLIER", Key: []string{"nationkey"}, Val: []string{"suppkey"}},
		baav.KVSchema{Name: "PARTSUPP_by_supp", Rel: "PARTSUPP", Key: []string{"suppkey"}, Val: []string{"partkey", "supplycost", "availqty"}},
	)
	store, err := baav.Map(db, schema, kv.NewCluster(kv.EngineHash, 3), baav.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return db, store
}

// paperPlan builds ξ1 of Example 3:
// group_by((("GERMANY" ∝ ~NATION) ∝ ~SUPPLIER) ∝ ~PARTSUPP, PS.suppkey, SUM(PS.supplycost)).
func paperPlan() Plan {
	seed := &Const{KeyAttrs: []string{"N.name"}, Keys: []relation.Tuple{{relation.String("GERMANY")}}}
	t1 := &Extend{Input: seed, KV: "NATION_by_name", Alias: "N", KeyFrom: []string{"N.name"}}
	t2 := &Extend{Input: t1, KV: "SUPPLIER_by_nation", Alias: "S", KeyFrom: []string{"N.nationkey"}}
	t3 := &Extend{Input: t2, KV: "PARTSUPP_by_supp", Alias: "PS", KeyFrom: []string{"S.suppkey"}}
	return &GroupBy{
		Input: t3,
		Keys:  []string{"S.suppkey"},
		Aggs:  []AggSpec{{Func: sql.AggSum, Attr: "PS.supplycost", Name: "total"}},
	}
}

func TestPaperQ1PlanScanFree(t *testing.T) {
	_, store := fixture(t)
	plan := paperPlan()
	if !IsScanFree(plan) {
		t.Fatal("ξ1 is scan-free")
	}
	if len(CollectScans(plan)) != 0 {
		t.Fatal("scan-free plan must scan nothing")
	}
	exec := NewExecutor(store)
	out, err := exec.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	out.SortBlocks()
	if len(out.Blocks) != 2 {
		t.Fatalf("blocks = %v", out.Blocks)
	}
	// Supplier 10: 5+7=12; supplier 11: 3.
	if out.Blocks[0].Key[0].Int != 10 || out.Blocks[0].Rows[0][0].Int != 12 {
		t.Fatalf("group 10 = %v", out.Blocks[0])
	}
	if out.Blocks[1].Key[0].Int != 11 || out.Blocks[1].Rows[0][0].Int != 3 {
		t.Fatalf("group 11 = %v", out.Blocks[1])
	}
	// Scan-free data access: one get per block (3 extends, 1+1+2 distinct
	// keys), zero scans.
	if exec.Stats.ScanBlocks != 0 {
		t.Fatalf("scan blocks = %d", exec.Stats.ScanBlocks)
	}
	if exec.Stats.Gets != 4 {
		t.Fatalf("gets = %d (want 4: germany, nation-1, supp-10, supp-11)", exec.Stats.Gets)
	}
	if exec.Stats.DataValues == 0 || exec.Stats.BytesRead == 0 {
		t.Fatal("stats must count fetched data")
	}
}

func TestExtendDropsUnmatchedRows(t *testing.T) {
	_, store := fixture(t)
	seed := &Const{KeyAttrs: []string{"N.name"}, Keys: []relation.Tuple{
		{relation.String("GERMANY")}, {relation.String("ATLANTIS")},
	}}
	plan := &Extend{Input: seed, KV: "NATION_by_name", Alias: "N", KeyFrom: []string{"N.name"}}
	exec := NewExecutor(store)
	out, err := exec.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Blocks) != 1 {
		t.Fatalf("blocks = %d", len(out.Blocks))
	}
	if exec.Stats.Gets != 2 || exec.Stats.Blocks != 1 {
		t.Fatalf("gets=%d blocks=%d", exec.Stats.Gets, exec.Stats.Blocks)
	}
}

func TestExtendDeduplicatesGets(t *testing.T) {
	_, store := fixture(t)
	// Two constant rows with the same key: one get.
	seed := &Const{KeyAttrs: []string{"a", "N.name"}, Keys: []relation.Tuple{
		{relation.Int(1), relation.String("GERMANY")},
		{relation.Int(2), relation.String("GERMANY")},
	}}
	plan := &Extend{Input: seed, KV: "NATION_by_name", Alias: "N", KeyFrom: []string{"N.name"}}
	exec := NewExecutor(store)
	out, err := exec.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Stats.Gets != 1 {
		t.Fatalf("gets = %d, extend must dedup keys", exec.Stats.Gets)
	}
	if len(out.Blocks) != 2 {
		t.Fatalf("both input rows must extend: %d", len(out.Blocks))
	}
}

func TestExtendErrors(t *testing.T) {
	_, store := fixture(t)
	exec := NewExecutor(store)
	seed := &Const{KeyAttrs: []string{"x"}, Keys: []relation.Tuple{{relation.Int(1)}}}
	if _, err := exec.Run(&Extend{Input: seed, KV: "nope", Alias: "N", KeyFrom: []string{"x"}}); err == nil {
		t.Fatal("unknown KV schema")
	}
	if _, err := exec.Run(&Extend{Input: seed, KV: "NATION_by_name", Alias: "N", KeyFrom: []string{"zz"}}); err == nil {
		t.Fatal("unknown key attribute")
	}
	if _, err := exec.Run(&Extend{Input: seed, KV: "PARTSUPP_by_supp", Alias: "PS", KeyFrom: []string{}}); err == nil {
		t.Fatal("key arity mismatch")
	}
	if _, err := exec.Run(&Const{KeyAttrs: []string{"a", "b"}, Keys: []relation.Tuple{{relation.Int(1)}}}); err == nil {
		t.Fatal("constant arity mismatch")
	}
}

func TestScanKV(t *testing.T) {
	_, store := fixture(t)
	exec := NewExecutor(store)
	out, err := exec.Run(&ScanKV{KV: "SUPPLIER_by_nation", Alias: "S"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 3 {
		t.Fatalf("rows = %d", out.Rows())
	}
	if out.KeyAttrs[0] != "S.nationkey" || out.ValAttrs[0] != "S.suppkey" {
		t.Fatalf("attrs = %v %v", out.KeyAttrs, out.ValAttrs)
	}
	if exec.Stats.ScanBlocks != 2 || exec.Stats.DataValues == 0 {
		t.Fatalf("stats = %+v", exec.Stats)
	}
	if IsScanFree(&ScanKV{KV: "x", Alias: "a"}) {
		t.Fatal("ScanKV is not scan-free")
	}
}

func TestShiftPreservesRelationalVersion(t *testing.T) {
	_, store := fixture(t)
	exec := NewExecutor(store)
	scan := &ScanKV{KV: "PARTSUPP_by_supp", Alias: "PS"}
	shifted, err := exec.Run(&Shift{Input: scan, NewKey: []string{"PS.partkey"}})
	if err != nil {
		t.Fatal(err)
	}
	if shifted.KeyAttrs[0] != "PS.partkey" || len(shifted.Blocks) != 2 {
		t.Fatalf("shifted = %s", shifted)
	}
	base, err := exec.Run(scan)
	if err != nil {
		t.Fatal(err)
	}
	// Same relational version: compare flattened multisets modulo column order.
	idx, err := attrPositions(shifted.Attrs(), base.Attrs())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	for _, r := range base.Flatten() {
		want[relation.KeyString(r)]++
	}
	got := map[string]int{}
	for _, r := range shifted.Flatten() {
		got[relation.KeyString(r.Project(idx))]++
	}
	if len(got) != len(want) {
		t.Fatalf("flatten mismatch: %d vs %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatal("shift changed the relational version")
		}
	}
}

func TestJoin(t *testing.T) {
	_, store := fixture(t)
	exec := NewExecutor(store)
	j := &Join{
		L:   &ScanKV{KV: "SUPPLIER_by_nation", Alias: "S"},
		R:   &ScanKV{KV: "PARTSUPP_by_supp", Alias: "PS"},
		LOn: []string{"S.suppkey"},
		ROn: []string{"PS.suppkey"},
	}
	out, err := exec.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 4 {
		t.Fatalf("rows = %d", out.Rows())
	}
	if len(out.Attrs()) != 2+4 {
		t.Fatalf("attrs = %v", out.Attrs())
	}
	if _, err := exec.Run(&Join{L: j.L, R: j.R, LOn: []string{"S.suppkey"}, ROn: nil}); err == nil {
		t.Fatal("mismatched join lists")
	}
}

func TestSelectPredicates(t *testing.T) {
	_, store := fixture(t)
	exec := NewExecutor(store)
	scan := &ScanKV{KV: "PARTSUPP_by_supp", Alias: "PS"}
	five := relation.Int(5)
	sel := &Select{Input: scan, Preds: []Pred{
		{Attr: "PS.supplycost", Op: sql.OpGe, Lit: &five},
		{Attr: "PS.partkey", Op: sql.OpNe, RAttr: "PS.availqty"},
		{Attr: "PS.suppkey", In: []relation.Value{relation.Int(10), relation.Int(12)}},
	}}
	out, err := exec.Run(sel)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 3 {
		t.Fatalf("rows = %d", out.Rows())
	}
	bad := &Select{Input: scan, Preds: []Pred{{Attr: "zzz", Op: sql.OpEq, Lit: &five}}}
	if _, err := exec.Run(bad); err == nil {
		t.Fatal("unknown attribute must error")
	}
}

func TestProject(t *testing.T) {
	_, store := fixture(t)
	exec := NewExecutor(store)
	out, err := exec.Run(&Project{
		Input: &ScanKV{KV: "PARTSUPP_by_supp", Alias: "PS"},
		Attrs: []string{"PS.partkey", "PS.suppkey"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Attrs()) != 2 || out.Rows() != 4 {
		t.Fatalf("projected = %s", out)
	}
	if out.KeyAttrs[0] != "PS.suppkey" {
		t.Fatalf("kept key attrs = %v", out.KeyAttrs)
	}
}

func TestUnionAndDiff(t *testing.T) {
	_, store := fixture(t)
	exec := NewExecutor(store)
	a := &Const{KeyAttrs: []string{"k"}, Keys: []relation.Tuple{{relation.Int(1)}, {relation.Int(2)}}}
	b := &Const{KeyAttrs: []string{"k"}, Keys: []relation.Tuple{{relation.Int(2)}, {relation.Int(3)}}}
	u, err := exec.Run(&Union{L: a, R: b})
	if err != nil {
		t.Fatal(err)
	}
	if u.Rows() != 3 {
		t.Fatalf("union rows = %d", u.Rows())
	}
	d, err := exec.Run(&Diff{L: a, R: b})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 1 || d.Blocks[0].Key[0].Int != 1 {
		t.Fatalf("diff = %v", d.Blocks)
	}
	mismatched := &Const{KeyAttrs: []string{"other"}, Keys: []relation.Tuple{{relation.Int(1)}}}
	if _, err := exec.Run(&Union{L: a, R: mismatched}); err == nil {
		t.Fatal("mismatched attrs must error")
	}
}

func TestDistinct(t *testing.T) {
	_, store := fixture(t)
	exec := NewExecutor(store)
	// Project supplier block values onto nationkey only: duplicates appear.
	p := &Project{Input: &ScanKV{KV: "SUPPLIER_by_nation", Alias: "S"}, Attrs: []string{"S.nationkey"}}
	out, err := exec.Run(&Distinct{Input: p})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 2 {
		t.Fatalf("distinct rows = %d", out.Rows())
	}
}

func TestGroupByMatchesReference(t *testing.T) {
	db, store := fixture(t)
	q := ra.MustParse(`select PS.suppkey, SUM(PS.supplycost)
		from PARTSUPP as PS, SUPPLIER as S, NATION as N
		where PS.suppkey = S.suppkey and S.nationkey = N.nationkey and N.name = 'GERMANY'
		group by PS.suppkey`, db)
	want, err := ra.Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(store)
	out, err := exec.Run(paperPlan())
	if err != nil {
		t.Fatal(err)
	}
	got := &ra.Result{Cols: want.Cols, Rows: out.Flatten()}
	if !got.Equal(want) {
		t.Fatalf("KBA plan answer %v != reference %v", got.Rows, want.Rows)
	}
}

func TestStatsAggMatchesGroupBy(t *testing.T) {
	_, store := fixture(t)
	aggs := []AggSpec{
		{Func: sql.AggCount, Star: true, Name: "cnt"},
		{Func: sql.AggSum, Attr: "PS.supplycost", Name: "sum"},
		{Func: sql.AggMin, Attr: "PS.supplycost", Name: "min"},
		{Func: sql.AggMax, Attr: "PS.supplycost", Name: "max"},
		{Func: sql.AggAvg, Attr: "PS.supplycost", Name: "avg"},
	}
	full := NewExecutor(store)
	wantRel, err := full.Run(&GroupBy{
		Input: &ScanKV{KV: "PARTSUPP_by_supp", Alias: "PS"},
		Keys:  []string{"PS.suppkey"},
		Aggs:  aggs,
	})
	if err != nil {
		t.Fatal(err)
	}
	fast := NewExecutor(store)
	gotRel, err := fast.Run(&StatsAgg{KV: "PARTSUPP_by_supp", Alias: "PS", Aggs: aggs})
	if err != nil {
		t.Fatal(err)
	}
	wantRel.SortBlocks()
	gotRel.SortBlocks()
	if len(gotRel.Blocks) != len(wantRel.Blocks) {
		t.Fatalf("groups: %d vs %d", len(gotRel.Blocks), len(wantRel.Blocks))
	}
	for i := range wantRel.Blocks {
		w, g := wantRel.Blocks[i], gotRel.Blocks[i]
		if !w.Key.Equal(g.Key) {
			t.Fatalf("group keys differ: %v vs %v", w.Key, g.Key)
		}
		for j := range w.Rows[0] {
			if w.Rows[0][j].AsFloat() != g.Rows[0][j].AsFloat() {
				t.Fatalf("group %v agg %d: %v vs %v", w.Key, j, g.Rows[0][j], w.Rows[0][j])
			}
		}
	}
	// The stats path reads block headers only: strictly less data.
	if fast.Stats.DataValues >= full.Stats.DataValues {
		t.Fatalf("stats path must touch less data: %d vs %d", fast.Stats.DataValues, full.Stats.DataValues)
	}
}

func TestExecStatsAdd(t *testing.T) {
	a := ExecStats{Gets: 1, Blocks: 2, DataValues: 3, ScanBlocks: 4, BytesRead: 5}
	a.Add(ExecStats{Gets: 10, Blocks: 20, DataValues: 30, ScanBlocks: 40, BytesRead: 50})
	if a.Gets != 11 || a.Blocks != 22 || a.DataValues != 33 || a.ScanBlocks != 44 || a.BytesRead != 55 {
		t.Fatalf("add = %+v", a)
	}
}

func TestPlanStrings(t *testing.T) {
	plan := paperPlan()
	s := plan.String()
	for _, frag := range []string{"GERMANY", "∝", "γ"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("plan string missing %q: %s", frag, s)
		}
	}
	nodes := []Plan{
		&Shift{Input: &ScanKV{KV: "a", Alias: "A"}, NewKey: []string{"x"}},
		&Select{Input: &ScanKV{KV: "a", Alias: "A"}, Preds: []Pred{{Attr: "x", In: []relation.Value{relation.Int(1)}}}},
		&Project{Input: &ScanKV{KV: "a", Alias: "A"}, Attrs: []string{"x"}},
		&Union{L: &ScanKV{KV: "a", Alias: "A"}, R: &ScanKV{KV: "b", Alias: "B"}},
		&Diff{L: &ScanKV{KV: "a", Alias: "A"}, R: &ScanKV{KV: "b", Alias: "B"}},
		&Distinct{Input: &ScanKV{KV: "a", Alias: "A"}},
		&StatsAgg{KV: "a", Alias: "A"},
	}
	for _, n := range nodes {
		if n.String() == "" {
			t.Fatalf("%T has empty String()", n)
		}
	}
	if len(CollectScans(nodes[3])) != 2 {
		t.Fatal("union scans both sides")
	}
}

func TestShiftThenGroupBy(t *testing.T) {
	_, store := fixture(t)
	exec := NewExecutor(store)
	// Re-key partsupp by partkey, then aggregate per part.
	plan := &GroupBy{
		Input: &Shift{Input: &ScanKV{KV: "PARTSUPP_by_supp", Alias: "PS"}, NewKey: []string{"PS.partkey"}},
		Keys:  []string{"PS.partkey"},
		Aggs:  []AggSpec{{Func: sql.AggCount, Star: true, Name: "n"}},
	}
	out, err := exec.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	out.SortBlocks()
	if len(out.Blocks) != 2 {
		t.Fatalf("groups = %d", len(out.Blocks))
	}
	if out.Blocks[0].Key[0].Int != 100 || out.Blocks[0].Rows[0][0].Int != 3 {
		t.Fatalf("part 100 count = %v", out.Blocks[0])
	}
	// Shift with an unknown attribute errors.
	if _, err := exec.Run(&Shift{Input: &ScanKV{KV: "PARTSUPP_by_supp", Alias: "PS"}, NewKey: []string{"zzz"}}); err == nil {
		t.Fatal("unknown shift key must error")
	}
}

// Package kba implements KBA, the paper's extension of relational algebra to
// keyed blocks (Section 4.2): plan nodes for the new operators extension (∝)
// and shift (↑), BaaV versions of the classical operators, and a sequential
// executor over BaaV stores with first-class data-access accounting.
package kba

import (
	"fmt"
	"sort"
	"strings"

	"zidian/internal/relation"
)

// KeyedBlock is one (k, B) pair at runtime: a key tuple and the rows of its
// block. Rows form a bag (multiplicities matter for aggregates).
type KeyedBlock struct {
	Key  relation.Tuple
	Rows []relation.Tuple
}

// KeyedRel is a runtime KV instance: keyed blocks whose key and value
// attributes carry query-qualified names ("PS.suppkey").
type KeyedRel struct {
	KeyAttrs []string
	ValAttrs []string
	Blocks   []KeyedBlock
}

// Attrs returns key attributes followed by value attributes.
func (r *KeyedRel) Attrs() []string {
	out := make([]string, 0, len(r.KeyAttrs)+len(r.ValAttrs))
	out = append(out, r.KeyAttrs...)
	out = append(out, r.ValAttrs...)
	return out
}

// Rows returns the total number of flattened rows. A block contributes one
// row per entry in Rows; value-less instances use empty row placeholders to
// carry multiplicities.
func (r *KeyedRel) Rows() int {
	n := 0
	for _, b := range r.Blocks {
		n += len(b.Rows)
	}
	return n
}

// Flatten materializes the relational version: every row is key ++ value.
// Blocks with no value attributes flatten to one copy of their key per
// (empty) row, preserving bag semantics.
func (r *KeyedRel) Flatten() []relation.Tuple {
	out := make([]relation.Tuple, 0, r.Rows())
	for _, b := range r.Blocks {
		if len(r.ValAttrs) == 0 {
			for range b.Rows {
				out = append(out, b.Key)
			}
			continue
		}
		for _, row := range b.Rows {
			out = append(out, b.Key.Concat(row))
		}
	}
	return out
}

// FromRows groups flat rows (over the given attributes) into a KeyedRel
// keyed by keyAttrs; the remaining attributes become values. This is the
// shift operator's workhorse.
func FromRows(attrs []string, rows []relation.Tuple, keyAttrs []string) (*KeyedRel, error) {
	pos := make(map[string]int, len(attrs))
	for i, a := range attrs {
		pos[a] = i
	}
	keyIdx := make([]int, 0, len(keyAttrs))
	for _, a := range keyAttrs {
		i, ok := pos[a]
		if !ok {
			return nil, fmt.Errorf("kba: shift key attribute %q not in %v", a, attrs)
		}
		keyIdx = append(keyIdx, i)
	}
	var valAttrs []string
	var valIdx []int
	inKey := make(map[string]bool, len(keyAttrs))
	for _, a := range keyAttrs {
		inKey[a] = true
	}
	for i, a := range attrs {
		if !inKey[a] {
			valAttrs = append(valAttrs, a)
			valIdx = append(valIdx, i)
		}
	}
	out := &KeyedRel{KeyAttrs: append([]string{}, keyAttrs...), ValAttrs: valAttrs}
	index := make(map[string]int)
	for _, row := range rows {
		key := row.Project(keyIdx)
		ks := relation.KeyString(key)
		bi, ok := index[ks]
		if !ok {
			bi = len(out.Blocks)
			out.Blocks = append(out.Blocks, KeyedBlock{Key: key})
			index[ks] = bi
		}
		out.Blocks[bi].Rows = append(out.Blocks[bi].Rows, row.Project(valIdx))
	}
	return out, nil
}

// SortBlocks orders blocks by key; canonical form for tests and output.
func (r *KeyedRel) SortBlocks() {
	sort.Slice(r.Blocks, func(i, j int) bool {
		return r.Blocks[i].Key.Compare(r.Blocks[j].Key) < 0
	})
}

// String summarizes the instance shape.
func (r *KeyedRel) String() string {
	return fmt.Sprintf("⟨%s | %s⟩ %d blocks, %d rows",
		strings.Join(r.KeyAttrs, ","), strings.Join(r.ValAttrs, ","), len(r.Blocks), r.Rows())
}

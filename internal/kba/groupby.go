package kba

import (
	"fmt"

	"zidian/internal/baav"
	"zidian/internal/ra"
	"zidian/internal/relation"
	"zidian/internal/sql"
)

func (e *Executor) runGroupBy(n *GroupBy) (*KeyedRel, error) {
	in, err := e.Run(n.Input)
	if err != nil {
		return nil, err
	}
	attrs := in.Attrs()
	keyIdx, err := attrPositions(attrs, n.Keys)
	if err != nil {
		return nil, err
	}
	aggIdx := make([]int, len(n.Aggs))
	for i, a := range n.Aggs {
		if a.Star {
			aggIdx[i] = -1
			continue
		}
		j, err := attrPositions(attrs, []string{a.Attr})
		if err != nil {
			return nil, err
		}
		aggIdx[i] = j[0]
	}

	type group struct {
		key    relation.Tuple
		states []*ra.AggState
	}
	groups := make(map[string]*group)
	var order []string
	for _, row := range in.Flatten() {
		key := row.Project(keyIdx)
		ks := relation.KeyString(key)
		g, ok := groups[ks]
		if !ok {
			g = &group{key: key, states: make([]*ra.AggState, len(n.Aggs))}
			for i := range g.states {
				g.states[i] = ra.NewAggState()
			}
			groups[ks] = g
			order = append(order, ks)
		}
		for i := range n.Aggs {
			if aggIdx[i] < 0 {
				g.states[i].AddCount()
			} else {
				g.states[i].Add(row[aggIdx[i]])
			}
		}
	}

	out := &KeyedRel{KeyAttrs: n.Keys}
	for _, a := range n.Aggs {
		out.ValAttrs = append(out.ValAttrs, a.Name)
	}
	for _, ks := range order {
		g := groups[ks]
		row := make(relation.Tuple, 0, len(n.Aggs))
		for i, a := range n.Aggs {
			row = append(row, g.states[i].Final(a.Func))
		}
		out.Blocks = append(out.Blocks, KeyedBlock{Key: g.key, Rows: []relation.Tuple{row}})
	}
	return out, nil
}

// runStatsAgg answers a group-by over a whole KV instance from per-block
// statistics, reading only block headers. Supported when group keys are the
// instance key and every aggregate is COUNT(*)/SUM/MIN/MAX/AVG over a
// numeric value attribute.
func (e *Executor) runStatsAgg(n *StatsAgg) (*KeyedRel, error) {
	kvSchema := e.Store.Schema.ByName(n.KV)
	if kvSchema == nil {
		return nil, fmt.Errorf("kba: unknown KV schema %q", n.KV)
	}
	valPos := make(map[string]int, len(kvSchema.Val))
	for i, a := range kvSchema.Val {
		valPos[n.Alias+"."+a] = i
	}
	out := &KeyedRel{KeyAttrs: qualify(n.Alias, kvSchema.Key)}
	for _, a := range n.Aggs {
		out.ValAttrs = append(out.ValAttrs, a.Name)
	}
	// ScanStats yields segmented blocks of one key as separate records;
	// merge them here by key.
	merged := make(map[string]*statsAcc)
	var order []string
	err := e.Store.ScanStatsT(e.kv(), n.KV, func(key relation.Tuple, stats *baav.BlockStats) bool {
		e.Stats.ScanBlocks++
		if stats == nil {
			return true // block without stats: handled by validation below
		}
		ks := relation.KeyString(key)
		m, ok := merged[ks]
		if !ok {
			m = &statsAcc{key: key}
			merged[ks] = m
			order = append(order, ks)
		}
		m.merge(stats)
		return true
	})
	if err != nil {
		return nil, err
	}
	for _, ks := range order {
		m := merged[ks]
		row := make(relation.Tuple, 0, len(n.Aggs))
		for _, a := range n.Aggs {
			v, err := statsFinal(m, a, valPos)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.Blocks = append(out.Blocks, KeyedBlock{Key: m.key, Rows: []relation.Tuple{row}})
	}
	return out, nil
}

type statsAcc struct {
	key   relation.Tuple
	stats baav.BlockStats
}

func (m *statsAcc) merge(s *baav.BlockStats) { m.stats.Merge(s) }

func statsFinal(m *statsAcc, a AggSpec, valPos map[string]int) (relation.Value, error) {
	if a.Star || a.Func == sql.AggCount {
		return relation.Int(m.stats.Rows), nil
	}
	i, ok := valPos[a.Attr]
	if !ok {
		return relation.Value{}, fmt.Errorf("kba: stats aggregate attribute %q not a value attribute", a.Attr)
	}
	if i >= len(m.stats.Attrs) || !m.stats.Attrs[i].Valid {
		return relation.Value{}, fmt.Errorf("kba: no statistics for attribute %q", a.Attr)
	}
	st := m.stats.Attrs[i]
	switch a.Func {
	case sql.AggSum:
		return relation.Float(st.Sum), nil
	case sql.AggMin:
		return relation.Float(st.Min), nil
	case sql.AggMax:
		return relation.Float(st.Max), nil
	case sql.AggAvg:
		if m.stats.Rows == 0 {
			return relation.Null(), nil
		}
		return relation.Float(st.Sum / float64(m.stats.Rows)), nil
	default:
		return relation.Value{}, fmt.Errorf("kba: aggregate %s not supported from statistics", a.Func)
	}
}

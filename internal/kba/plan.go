package kba

import (
	"fmt"
	"strings"

	"zidian/internal/relation"
	"zidian/internal/sql"
)

// Plan is a KBA plan node. As in the paper, leaves are either constants
// (constant keyed blocks) or KV instances (ScanKV); Extend's KV schema is a
// parameter of the operator, not a leaf, so plans whose only leaves are
// constants never scan a table.
type Plan interface {
	// Children returns the input plans (parameters like Extend's KV schema
	// are not children).
	Children() []Plan
	String() string
}

// Arg is a bind-time value in a plan template: either a literal known at
// plan time or a slot into the parameter array supplied at Bind time. The
// zero value is a literal NULL; construct with LitArg / SlotArg.
type Arg struct {
	Lit    relation.Value
	Slot   int // 0-based parameter slot, meaningful when IsSlot
	IsSlot bool
}

// LitArg wraps a literal as an Arg.
func LitArg(v relation.Value) Arg { return Arg{Lit: v} }

// SlotArg refers to parameter slot i.
func SlotArg(i int) Arg { return Arg{Slot: i, IsSlot: true} }

// Resolve returns the literal the Arg stands for under the given bindings.
func (a Arg) Resolve(params []relation.Value) (relation.Value, error) {
	if !a.IsSlot {
		return a.Lit, nil
	}
	if a.Slot < 0 || a.Slot >= len(params) {
		return relation.Value{}, fmt.Errorf("kba: parameter slot %d out of range (have %d)", a.Slot, len(params))
	}
	return params[a.Slot], nil
}

// String renders the Arg: the literal, or "?i" for a slot.
func (a Arg) String() string {
	if a.IsSlot {
		return fmt.Sprintf("?%d", a.Slot)
	}
	return a.Lit.String()
}

// Const is a constant keyed-block leaf, e.g. the "GERMANY" seed of the
// paper's Example 3. Val-less constants hold bare key tuples. In a plan
// template, Args carries the seed rows with parameter slots in place of
// bind-time values; Bind materializes them into Keys, and a Const with
// non-empty Args is not executable.
type Const struct {
	KeyAttrs []string
	Keys     []relation.Tuple
	Args     [][]Arg
}

// Children implements Plan.
func (c *Const) Children() []Plan { return nil }

// String renders the node.
func (c *Const) String() string {
	parts := make([]string, 0, len(c.Keys)+len(c.Args))
	for _, k := range c.Keys {
		parts = append(parts, k.String())
	}
	for _, row := range c.Args {
		elems := make([]string, len(row))
		for i, a := range row {
			elems[i] = a.String()
		}
		parts = append(parts, "("+strings.Join(elems, ", ")+")")
	}
	return fmt.Sprintf("const[%s=%s]", strings.Join(c.KeyAttrs, ","), strings.Join(parts, "|"))
}

// ScanKV is a KV-instance leaf: a full scan of the named KV instance. Plans
// containing ScanKV are not scan-free.
type ScanKV struct {
	KV    string
	Alias string // query alias that qualifies the fetched attributes
}

// Children implements Plan.
func (s *ScanKV) Children() []Plan { return nil }

// String renders the node.
func (s *ScanKV) String() string { return fmt.Sprintf("scan[%s as %s]", s.KV, s.Alias) }

// Extend is the extension operator ∝: it fetches, for every input row, the
// block of the parameter KV instance keyed by the row's KeyFrom attributes,
// and extends the row with the block's value attributes (qualified by
// Alias). It never scans the KV instance.
type Extend struct {
	Input Plan
	// KV names the parameter KV schema ~R⟨X,Y⟩.
	KV string
	// Alias qualifies the fetched Y attributes in the output.
	Alias string
	// KeyFrom lists the input attributes supplying the KV key X, in X's
	// declared order.
	KeyFrom []string
}

// Children implements Plan.
func (e *Extend) Children() []Plan { return []Plan{e.Input} }

// String renders the node.
func (e *Extend) String() string {
	return fmt.Sprintf("(%s ∝ %s on %s as %s)", e.Input, e.KV, strings.Join(e.KeyFrom, ","), e.Alias)
}

// IndexLookup is the secondary-index access path: for each constant in
// Values it fetches the posting list of the parameter index — the block
// keys of tuples carrying that value — and emits one row (value, block key)
// per posting. Like Const it is a bounded leaf: it issues one get per value
// and never scans a KV instance, so plans built on it stay scan-free. The
// planner feeds its output into ∝ on a KV schema keyed by the posted block
// keys, replacing a full instance scan with a handful of round trips.
type IndexLookup struct {
	// Index names the secondary index (a catalog name, not a KV schema).
	Index string
	// Alias is the query alias whose tuples the index locates.
	Alias string
	// ValAttr is the output column carrying the matched value; it uses a
	// synthetic "$idx." name so the later ∝ can re-fetch the real attribute
	// without a column collision.
	ValAttr string
	// KeyAttrs are the alias-qualified output columns of the posted block
	// keys, in the index's declared key order.
	KeyAttrs []string
	// Values are the constants to look up.
	Values []relation.Value
	// Args, in a plan template, are the lookup values with parameter slots
	// unresolved; Bind materializes them into Values. A lookup with
	// non-empty Args is not executable.
	Args []Arg
}

// Children implements Plan.
func (l *IndexLookup) Children() []Plan { return nil }

// String renders the node.
func (l *IndexLookup) String() string {
	parts := make([]string, 0, len(l.Values)+len(l.Args))
	for _, v := range l.Values {
		parts = append(parts, v.String())
	}
	for _, a := range l.Args {
		parts = append(parts, a.String())
	}
	return fmt.Sprintf("IndexLookup[%s=%s as %s]", l.Index, strings.Join(parts, "|"), l.Alias)
}

// IndexRange is the ordered-posting-scan access path for range predicates:
// it walks the parameter index's posting key space between the Lo and Hi
// bounds — one bounded ordered cluster scan, since postings are stored in
// encoded value order — and emits one row (value, block key) per posting in
// the range. Like IndexLookup, its output feeds ∝ on a KV schema keyed by
// the posted block keys, so a selective range fetches exactly the blocks it
// matches instead of scanning the instance. Unlike Const and IndexLookup it
// is not a get-only leaf: the posting walk is a (bounded) scan, so plans
// containing it are not scan-free in the paper's strict sense.
type IndexRange struct {
	// Index names the secondary index (a catalog name, not a KV schema).
	Index string
	// Alias is the query alias whose tuples the range locates.
	Alias string
	// ValAttr is the output column carrying the matched value, under a
	// synthetic "$idx." name (see IndexLookup.ValAttr).
	ValAttr string
	// KeyAttrs are the alias-qualified output columns of the posted block
	// keys, in the index's declared key order.
	KeyAttrs []string
	// Lo and Hi bound the walk; a nil side is unbounded. In a plan template
	// a bound may be a parameter slot, resolved by Bind; a node whose bound
	// still holds a slot is not executable.
	Lo, Hi *Arg
	// LoIncl and HiIncl select closed (<=) or open (<) ends.
	LoIncl, HiIncl bool
	// Limit, when non-nil, bounds the walk to the first Limit postings in
	// (value, block key) order — the planner pushes a query's LIMIT down
	// here when every walked posting is guaranteed to survive to the
	// output, so the ordered merge stops O(limit) steps in instead of
	// paying for the whole range. Like the bounds it is a bind-time Arg,
	// so a `LIMIT ?` template fixes the plan once and binds per execution.
	Limit *Arg
}

// Children implements Plan.
func (r *IndexRange) Children() []Plan { return nil }

// hasSlots reports whether a bound still references a parameter slot.
func (r *IndexRange) hasSlots() bool {
	return (r.Lo != nil && r.Lo.IsSlot) || (r.Hi != nil && r.Hi.IsSlot) ||
		(r.Limit != nil && r.Limit.IsSlot)
}

// String renders the node with interval notation: closed/open brackets for
// inclusive/exclusive bounds, -∞/+∞ for unbounded sides.
func (r *IndexRange) String() string {
	lo, lob := "-∞", "("
	if r.Lo != nil {
		lo = r.Lo.String()
		if r.LoIncl {
			lob = "["
		}
	}
	hi, hib := "+∞", ")"
	if r.Hi != nil {
		hi = r.Hi.String()
		if r.HiIncl {
			hib = "]"
		}
	}
	limit := ""
	if r.Limit != nil {
		limit = " limit " + r.Limit.String()
	}
	return fmt.Sprintf("IndexRange[%s∈%s%s, %s%s%s as %s]", r.Index, lob, lo, hi, hib, limit, r.Alias)
}

// Shift is the shift operator ↑: it re-keys the input instance on NewKey.
type Shift struct {
	Input  Plan
	NewKey []string
}

// Children implements Plan.
func (s *Shift) Children() []Plan { return []Plan{s.Input} }

// String renders the node.
func (s *Shift) String() string {
	return fmt.Sprintf("(%s ↑ %s)", s.Input, strings.Join(s.NewKey, ","))
}

// Join is the BaaV equi-join: it joins the flattened inputs on the paired
// attribute lists (LOn[i] = ROn[i]) and keys the output by the left join
// attributes.
type Join struct {
	L, R Plan
	LOn  []string
	ROn  []string
}

// Children implements Plan.
func (j *Join) Children() []Plan { return []Plan{j.L, j.R} }

// String renders the node.
func (j *Join) String() string {
	pairs := make([]string, len(j.LOn))
	for i := range j.LOn {
		pairs[i] = j.LOn[i] + "=" + j.ROn[i]
	}
	return fmt.Sprintf("(%s ⋈[%s] %s)", j.L, strings.Join(pairs, ","), j.R)
}

// Pred is a selection predicate over qualified attribute names. In a plan
// template the comparison value may be a parameter slot (Param) and an IN
// list may carry unresolved slots (InSlots); Bind resolves both, and
// CompilePreds refuses predicates still holding slots.
type Pred struct {
	Attr    string
	Op      sql.CmpOp
	Lit     *relation.Value
	Param   *int   // parameter slot for the RHS
	RAttr   string // attribute-attribute comparison when non-empty
	In      []relation.Value
	InSlots []int // parameter slots appended to In at bind time
}

// hasSlots reports whether the predicate still references parameter slots.
func (p Pred) hasSlots() bool { return p.Param != nil || len(p.InSlots) > 0 }

// String renders the predicate.
func (p Pred) String() string {
	switch {
	case len(p.In)+len(p.InSlots) > 0:
		return fmt.Sprintf("%s IN(%d)", p.Attr, len(p.In)+len(p.InSlots))
	case p.RAttr != "":
		return fmt.Sprintf("%s%s%s", p.Attr, p.Op, p.RAttr)
	case p.Param != nil:
		return fmt.Sprintf("%s%s?%d", p.Attr, p.Op, *p.Param)
	default:
		return fmt.Sprintf("%s%s%s", p.Attr, p.Op, p.Lit)
	}
}

// Select filters rows by a conjunction of predicates.
type Select struct {
	Input Plan
	Preds []Pred
}

// Children implements Plan.
func (s *Select) Children() []Plan { return []Plan{s.Input} }

// String renders the node.
func (s *Select) String() string {
	parts := make([]string, len(s.Preds))
	for i, p := range s.Preds {
		parts[i] = p.String()
	}
	return fmt.Sprintf("σ[%s](%s)", strings.Join(parts, "∧"), s.Input)
}

// Project keeps only the named attributes (duplicates collapse to one
// column). The output is keyed by the kept input-key attributes.
type Project struct {
	Input Plan
	Attrs []string
}

// Children implements Plan.
func (p *Project) Children() []Plan { return []Plan{p.Input} }

// String renders the node.
func (p *Project) String() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(p.Attrs, ","), p.Input)
}

// Union is set union of two instances over identical attribute sets (↑ is
// applied implicitly to align keys).
type Union struct{ L, R Plan }

// Children implements Plan.
func (u *Union) Children() []Plan { return []Plan{u.L, u.R} }

// String renders the node.
func (u *Union) String() string { return fmt.Sprintf("(%s ∪ %s)", u.L, u.R) }

// Diff is set difference L − R over identical attribute sets.
type Diff struct{ L, R Plan }

// Children implements Plan.
func (d *Diff) Children() []Plan { return []Plan{d.L, d.R} }

// String renders the node.
func (d *Diff) String() string { return fmt.Sprintf("(%s − %s)", d.L, d.R) }

// AggSpec is one aggregate output of GroupBy.
type AggSpec struct {
	Func sql.AggFunc
	Attr string // input attribute; empty for COUNT(*)
	Star bool
	Name string // output attribute name
}

// GroupBy groups the flattened input by Keys and computes the aggregates;
// the output is keyed by Keys with one row per group.
type GroupBy struct {
	Input Plan
	Keys  []string
	Aggs  []AggSpec
}

// Children implements Plan.
func (g *GroupBy) Children() []Plan { return []Plan{g.Input} }

// String renders the node.
func (g *GroupBy) String() string {
	parts := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		parts[i] = a.Name
	}
	return fmt.Sprintf("γ[%s; %s](%s)", strings.Join(g.Keys, ","), strings.Join(parts, ","), g.Input)
}

// StatsAgg computes a GroupBy directly from per-block statistics of a whole
// KV instance, reading only block headers (the Section 8.2 statistics
// feature). It requires group keys equal to the instance's key attributes
// and aggregates the instance's value attributes with COUNT/SUM/MIN/MAX/AVG.
type StatsAgg struct {
	KV    string
	Alias string
	Aggs  []AggSpec
}

// Children implements Plan.
func (s *StatsAgg) Children() []Plan { return nil }

// String renders the node.
func (s *StatsAgg) String() string {
	return fmt.Sprintf("γstats[%s as %s]", s.KV, s.Alias)
}

// Distinct removes duplicate flattened rows.
type Distinct struct{ Input Plan }

// Children implements Plan.
func (d *Distinct) Children() []Plan { return []Plan{d.Input} }

// String renders the node.
func (d *Distinct) String() string { return fmt.Sprintf("δ(%s)", d.Input) }

// IsScanFree reports whether the plan is scan-free over its BaaV schema:
// every leaf is a constant (Section 4.2). Extend parameters do not count as
// leaves. An IndexRange leaf is a bounded ordered scan of the posting key
// space — far cheaper than an instance scan, but still a scan, so plans
// containing one are not scan-free.
func IsScanFree(p Plan) bool {
	switch p.(type) {
	case *ScanKV, *StatsAgg, *IndexRange:
		return false
	}
	for _, c := range p.Children() {
		if !IsScanFree(c) {
			return false
		}
	}
	return true
}

// CollectScans returns the KV instance names scanned by the plan.
func CollectScans(p Plan) []string {
	var out []string
	switch n := p.(type) {
	case *ScanKV:
		out = append(out, n.KV)
	case *StatsAgg:
		out = append(out, n.KV)
	}
	for _, c := range p.Children() {
		out = append(out, CollectScans(c)...)
	}
	return out
}

package kba

import (
	"testing"

	"zidian/internal/relation"
	"zidian/internal/sql"
)

func TestBindMaterializesTemplates(t *testing.T) {
	slot0, slot1 := 0, 1
	tmpl := &Select{
		Input: &Extend{
			Input: &Const{
				KeyAttrs: []string{"$const.a"},
				Args:     [][]Arg{{SlotArg(0)}, {LitArg(relation.Int(7))}},
			},
			KV: "kv", Alias: "T", KeyFrom: []string{"$const.a"},
		},
		Preds: []Pred{
			{Attr: "$const.a", Op: sql.OpEq, Param: &slot0},
			{Attr: "T.b", Op: sql.OpGt, Param: &slot1},
			{Attr: "T.c", In: []relation.Value{relation.Int(1)}, InSlots: []int{1}},
		},
	}
	if !HasParams(tmpl) {
		t.Fatal("template must report params")
	}
	bound, err := Bind(tmpl, []relation.Value{relation.Int(7), relation.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if HasParams(bound) {
		t.Fatalf("bound plan still has params: %s", bound)
	}
	sel := bound.(*Select)
	c := sel.Input.(*Extend).Input.(*Const)
	// Slot 0 bound to 7 collides with the literal 7: the seed dedupes.
	if len(c.Keys) != 1 || !relation.Equal(c.Keys[0][0], relation.Int(7)) {
		t.Fatalf("seed keys = %v", c.Keys)
	}
	if sel.Preds[0].Lit == nil || !relation.Equal(*sel.Preds[0].Lit, relation.Int(7)) {
		t.Fatalf("pred 0 = %+v", sel.Preds[0])
	}
	if sel.Preds[1].Lit == nil || !relation.Equal(*sel.Preds[1].Lit, relation.Int(3)) {
		t.Fatalf("pred 1 = %+v", sel.Preds[1])
	}
	if len(sel.Preds[2].In) != 2 || len(sel.Preds[2].InSlots) != 0 {
		t.Fatalf("pred 2 = %+v", sel.Preds[2])
	}
	// The template is untouched and rebindable.
	if !HasParams(tmpl) || len(tmpl.Preds[0].In) != 0 || tmpl.Preds[0].Param == nil {
		t.Fatalf("template mutated: %s", tmpl)
	}
	bound2, err := Bind(tmpl, []relation.Value{relation.Int(8), relation.Int(4)})
	if err != nil {
		t.Fatal(err)
	}
	if c2 := bound2.(*Select).Input.(*Extend).Input.(*Const); len(c2.Keys) != 2 {
		t.Fatalf("second binding keys = %v", c2.Keys)
	}
}

func TestBindSharesParamFreeSubtrees(t *testing.T) {
	scan := &ScanKV{KV: "kv", Alias: "T"}
	lit := relation.Int(5)
	plain := &Select{Input: scan, Preds: []Pred{{Attr: "T.a", Op: sql.OpEq, Lit: &lit}}}
	bound, err := Bind(plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bound != Plan(plain) {
		t.Fatal("param-free plan must bind to itself")
	}
	// A slot out of range is a template/binding mismatch.
	slot := 3
	bad := &Select{Input: scan, Preds: []Pred{{Attr: "T.a", Op: sql.OpEq, Param: &slot}}}
	if _, err := Bind(bad, []relation.Value{relation.Int(1)}); err == nil {
		t.Fatal("out-of-range slot must error")
	}
}

package taav

import (
	"testing"

	"zidian/internal/kv"
	"zidian/internal/ra"
	"zidian/internal/relation"
)

func testDB() *relation.Database {
	db := relation.NewDatabase()
	nation := relation.NewRelation(relation.MustSchema("NATION",
		[]relation.Attr{{Name: "nationkey", Kind: relation.KindInt}, {Name: "name", Kind: relation.KindString}},
		[]string{"nationkey"}))
	nation.MustInsert(relation.Tuple{relation.Int(1), relation.String("GERMANY")})
	nation.MustInsert(relation.Tuple{relation.Int(2), relation.String("FRANCE")})
	db.Add(nation)

	supplier := relation.NewRelation(relation.MustSchema("SUPPLIER",
		[]relation.Attr{{Name: "suppkey", Kind: relation.KindInt}, {Name: "nationkey", Kind: relation.KindInt}},
		[]string{"suppkey"}))
	for i := int64(0); i < 10; i++ {
		supplier.MustInsert(relation.Tuple{relation.Int(i), relation.Int(i%2 + 1)})
	}
	db.Add(supplier)
	return db
}

func TestMapAndPointAccess(t *testing.T) {
	db := testDB()
	cluster := kv.NewCluster(kv.EngineHash, 3)
	s, err := Map(db, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if cluster.Len() != 12 {
		t.Fatalf("pairs = %d", cluster.Len())
	}
	tup, ok, err := s.Get("SUPPLIER", relation.Tuple{relation.Int(3)})
	if err != nil || !ok || tup[1].Int != 2 {
		t.Fatalf("get = %v %v %v", tup, ok, err)
	}
	if _, ok, _ := s.Get("SUPPLIER", relation.Tuple{relation.Int(99)}); ok {
		t.Fatal("missing key must miss")
	}
	if _, _, err := s.Get("NOPE", nil); err == nil {
		t.Fatal("unknown relation")
	}
}

func TestScanCountsOneGetPerTuple(t *testing.T) {
	db := testDB()
	cluster := kv.NewCluster(kv.EngineHash, 3)
	s, _ := Map(db, cluster)
	cluster.ResetMetrics()
	n := 0
	if err := s.Scan("SUPPLIER", func(relation.Tuple) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("scanned %d", n)
	}
	if got := cluster.Metrics().ScanNexts; got != 10 {
		t.Fatalf("scan nexts = %d", got)
	}
	// Early stop.
	n = 0
	s.Scan("SUPPLIER", func(relation.Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestScanNodePartition(t *testing.T) {
	db := testDB()
	cluster := kv.NewCluster(kv.EngineHash, 4)
	s, _ := Map(db, cluster)
	total := 0
	for i := 0; i < cluster.NodeCount(); i++ {
		if err := s.ScanNode(i, "SUPPLIER", func(relation.Tuple) bool { total++; return true }); err != nil {
			t.Fatal(err)
		}
	}
	if total != 10 {
		t.Fatalf("per-node scans saw %d", total)
	}
}

func TestInsertDelete(t *testing.T) {
	db := testDB()
	cluster := kv.NewCluster(kv.EngineHash, 2)
	s, _ := Map(db, cluster)
	if err := s.Insert("SUPPLIER", relation.Tuple{relation.Int(50), relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("SUPPLIER", relation.Tuple{relation.Int(50)}); !ok {
		t.Fatal("inserted tuple missing")
	}
	ok, err := s.Delete("SUPPLIER", relation.Tuple{relation.Int(50)})
	if err != nil || !ok {
		t.Fatalf("delete = %v %v", ok, err)
	}
	if ok, _ := s.Delete("SUPPLIER", relation.Tuple{relation.Int(50)}); ok {
		t.Fatal("double delete")
	}
	if err := s.Insert("SUPPLIER", relation.Tuple{relation.Int(1)}); err == nil {
		t.Fatal("arity mismatch")
	}
	if err := s.Insert("NOPE", nil); err == nil {
		t.Fatal("unknown relation")
	}
}

func TestExecuteBaseline(t *testing.T) {
	db := testDB()
	cluster := kv.NewCluster(kv.EngineLSM, 3)
	s, _ := Map(db, cluster)
	q := ra.MustParse(`select S.suppkey from SUPPLIER S, NATION N
		where S.nationkey = N.nationkey and N.name = 'GERMANY'`, db)
	res, stats, err := Execute(q, s)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ra.Evaluate(q, db)
	if !res.Equal(want) {
		t.Fatalf("baseline answer %v != reference %v", res.Rows, want.Rows)
	}
	// The baseline retrieves BOTH relations in full: 10 + 2 tuples.
	if stats.Gets != 12 {
		t.Fatalf("gets = %d (baseline must fetch everything)", stats.Gets)
	}
	if stats.DataValues != 24 || stats.BytesRead <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestExecuteSelfJoinScansOnce(t *testing.T) {
	db := testDB()
	s, _ := Map(db, kv.NewCluster(kv.EngineHash, 2))
	q := ra.MustParse(`select A.suppkey, B.suppkey from SUPPLIER A, SUPPLIER B
		where A.nationkey = B.nationkey and A.suppkey < B.suppkey`, db)
	res, stats, err := Execute(q, s)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ra.Evaluate(q, db)
	if !res.Equal(want) {
		t.Fatalf("self join answer differs")
	}
	if stats.Gets != 10 {
		t.Fatalf("gets = %d (one scan per distinct relation)", stats.Gets)
	}
}

func TestKeylessRelationUsesRowIDs(t *testing.T) {
	db := relation.NewDatabase()
	log := relation.NewRelation(relation.MustSchema("LOG",
		[]relation.Attr{{Name: "msg", Kind: relation.KindString}}, nil))
	log.MustInsert(relation.Tuple{relation.String("a")})
	log.MustInsert(relation.Tuple{relation.String("a")}) // duplicate tuples survive
	db.Add(log)
	s, err := Map(db, kv.NewCluster(kv.EngineHash, 2))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	s.Scan("LOG", func(relation.Tuple) bool { n++; return true })
	if n != 2 {
		t.Fatalf("keyless relation kept %d tuples", n)
	}
	if _, err := s.Delete("LOG", relation.Tuple{relation.String("a")}); err == nil {
		t.Fatal("delete by key on keyless relation must error")
	}
}

// Package taav implements the conventional tuple-as-a-value representation
// of relations in KV stores (Section 3) and the baseline SQL-over-NoSQL
// evaluation strategy the paper compares against: retrieve every relation a
// query mentions from the storage layer with full scans, move the data to
// the SQL layer, and evaluate there. TaaV is the special case of BaaV where
// every block holds a single tuple and keys are primary keys.
package taav

import (
	"encoding/binary"
	"fmt"

	"zidian/internal/kv"
	"zidian/internal/ra"
	"zidian/internal/relation"
)

// Store is a TaaV store: each tuple of each relation is one KV pair whose
// key is the relation id plus the tuple's primary key (or a synthetic row
// id when the relation has no key), and whose value is the whole tuple.
type Store struct {
	Cluster *kv.Cluster
	Rels    map[string]*relation.Schema

	ids    map[string]uint32
	nextID map[string]uint64 // synthetic row ids for keyless relations
}

// NewStore creates an empty TaaV store for the relational schemas.
func NewStore(rels map[string]*relation.Schema, cluster *kv.Cluster) *Store {
	s := &Store{
		Cluster: cluster,
		Rels:    rels,
		ids:     make(map[string]uint32),
		nextID:  make(map[string]uint64),
	}
	names := make([]string, 0, len(rels))
	for n := range rels {
		names = append(names, n)
	}
	// Deterministic ids.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for i, n := range names {
		s.ids[n] = uint32(i + 1)
	}
	return s
}

// Map loads a database into a fresh TaaV store on the cluster.
func Map(db *relation.Database, cluster *kv.Cluster) (*Store, error) {
	rels := make(map[string]*relation.Schema)
	for _, sc := range db.Schemas() {
		rels[sc.Name] = sc
	}
	s := NewStore(rels, cluster)
	for _, name := range db.Names() {
		rel := db.Relation(name)
		for _, t := range rel.Tuples {
			if err := s.Insert(name, t); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

func (s *Store) keyOf(rel string, t relation.Tuple) ([]byte, error) {
	schema, ok := s.Rels[rel]
	if !ok {
		return nil, fmt.Errorf("taav: unknown relation %q", rel)
	}
	out := make([]byte, 4, 4+16)
	binary.BigEndian.PutUint32(out, s.ids[rel])
	if len(schema.Key) > 0 {
		pos, err := schema.Positions(schema.Key)
		if err != nil {
			return nil, err
		}
		return relation.AppendTuple(out, t.Project(pos)), nil
	}
	s.nextID[rel]++
	return binary.BigEndian.AppendUint64(out, s.nextID[rel]), nil
}

// Insert stores one tuple.
func (s *Store) Insert(rel string, t relation.Tuple) error {
	schema, ok := s.Rels[rel]
	if !ok {
		return fmt.Errorf("taav: unknown relation %q", rel)
	}
	if len(t) != len(schema.Attrs) {
		return fmt.Errorf("taav: tuple arity %d != %s arity %d", len(t), rel, len(schema.Attrs))
	}
	key, err := s.keyOf(rel, t)
	if err != nil {
		return err
	}
	s.Cluster.Put(key, relation.EncodeTuple(t))
	return nil
}

// Delete removes the tuple with the given primary key values.
func (s *Store) Delete(rel string, pk relation.Tuple) (bool, error) {
	schema, ok := s.Rels[rel]
	if !ok {
		return false, fmt.Errorf("taav: unknown relation %q", rel)
	}
	if len(schema.Key) == 0 {
		return false, fmt.Errorf("taav: relation %q has no primary key", rel)
	}
	out := make([]byte, 4, 4+16)
	binary.BigEndian.PutUint32(out, s.ids[rel])
	return s.Cluster.Delete(relation.AppendTuple(out, pk)), nil
}

// Get performs the TaaV point access: fetch the whole tuple by primary key.
func (s *Store) Get(rel string, pk relation.Tuple) (relation.Tuple, bool, error) {
	schema, ok := s.Rels[rel]
	if !ok {
		return nil, false, fmt.Errorf("taav: unknown relation %q", rel)
	}
	out := make([]byte, 4, 4+16)
	binary.BigEndian.PutUint32(out, s.ids[rel])
	data, found := s.Cluster.Get(relation.AppendTuple(out, pk))
	if !found {
		return nil, false, nil
	}
	t, _, err := relation.DecodeTuple(data, len(schema.Attrs))
	if err != nil {
		return nil, false, err
	}
	return t, true, nil
}

// Scan visits every tuple of the relation in key order: the "blind scan"
// that costs as many get invocations as the relation has tuples.
func (s *Store) Scan(rel string, fn func(relation.Tuple) bool) error {
	schema, ok := s.Rels[rel]
	if !ok {
		return fmt.Errorf("taav: unknown relation %q", rel)
	}
	prefix := make([]byte, 4)
	binary.BigEndian.PutUint32(prefix, s.ids[rel])
	var scanErr error
	s.Cluster.Scan(prefix, func(_, v []byte) bool {
		t, _, err := relation.DecodeTuple(v, len(schema.Attrs))
		if err != nil {
			scanErr = err
			return false
		}
		return fn(t)
	})
	return scanErr
}

// ScanNode visits the relation's tuples held by one storage node; parallel
// scan drivers split work across nodes with it.
func (s *Store) ScanNode(node int, rel string, fn func(relation.Tuple) bool) error {
	schema, ok := s.Rels[rel]
	if !ok {
		return fmt.Errorf("taav: unknown relation %q", rel)
	}
	prefix := make([]byte, 4)
	binary.BigEndian.PutUint32(prefix, s.ids[rel])
	var scanErr error
	s.Cluster.ScanNode(node, prefix, func(_, v []byte) bool {
		t, _, err := relation.DecodeTuple(v, len(schema.Attrs))
		if err != nil {
			scanErr = err
			return false
		}
		return fn(t)
	})
	return scanErr
}

// Stats summarizes the logical data access of one baseline execution.
type Stats struct {
	// Gets counts get invocations; a full scan of a relation costs one get
	// per tuple under TaaV (Section 1).
	Gets       int64
	DataValues int64
	BytesRead  int64
}

// Execute answers the query with the baseline strategy: fully retrieve every
// relation the query mentions (no predicate pushdown), then evaluate in the
// SQL layer via the reference evaluator.
func Execute(q *ra.Query, s *Store) (*ra.Result, *Stats, error) {
	stats := &Stats{}
	mem := relation.NewDatabase()
	fetched := make(map[string]bool)
	for _, atom := range q.Atoms {
		if fetched[atom.Rel] {
			continue
		}
		fetched[atom.Rel] = true
		rel := relation.NewRelation(atom.Schema)
		err := s.Scan(atom.Rel, func(t relation.Tuple) bool {
			rel.Tuples = append(rel.Tuples, t)
			stats.Gets++
			stats.DataValues += int64(len(t))
			stats.BytesRead += int64(t.SizeBytes())
			return true
		})
		if err != nil {
			return nil, nil, err
		}
		mem.Add(rel)
	}
	res, err := ra.Evaluate(q, mem)
	if err != nil {
		return nil, nil, err
	}
	return res, stats, nil
}

// Package qcs implements module M4 of Zidian (Section 8.1): QCS access
// patterns Z[X] extracted from historical queries, and the T2B algorithm
// that designs a BaaV schema from them under a storage budget.
package qcs

import (
	"fmt"
	"sort"
	"strings"

	"zidian/internal/baav"
	"zidian/internal/core"
	"zidian/internal/ra"
	"zidian/internal/relation"
)

// QCS is one access pattern Z[X] over a relation: a plan frequently accesses
// attributes Z of the relation when the values of X ⊆ Z are already known.
// X may be empty (a full-scan pattern).
type QCS struct {
	Rel string
	Z   []string
	X   []string
}

// String renders the pattern as "Rel: Z[X]".
func (q QCS) String() string {
	return fmt.Sprintf("%s: {%s}[%s]", q.Rel, strings.Join(q.Z, ","), strings.Join(q.X, ","))
}

// key returns a canonical identity for deduplication.
func (q QCS) key() string {
	z := append([]string{}, q.Z...)
	x := append([]string{}, q.X...)
	sort.Strings(z)
	sort.Strings(x)
	return q.Rel + "|" + strings.Join(z, ",") + "|" + strings.Join(x, ",")
}

// Extract derives the QCS of one query by simulating the access order of a
// plan: starting from constant-bound attributes, atoms are visited as soon
// as one of their used attributes is derivable; X is the set of attributes
// already known at that moment (the probe key), and visiting an atom makes
// the rest of its used attributes Z known for downstream atoms. Section
// 8.1's example πF(σA=1 R(A,B,C) ⋈B=E S(E,F,G)) yields AB[A] and EF[E].
func Extract(q *ra.Query) []QCS {
	eq := ra.BuildEqClasses(q)
	known := make(map[ra.ColRef]bool)
	for _, ce := range eq.ConstCols() {
		known[eq.Find(ce.Col)] = true
	}
	for _, in := range q.Ins {
		known[eq.Find(in.Col)] = true
	}
	// Parameter-pinned columns are constant-bound at execution time, so a
	// template query contributes the same access patterns as any of its
	// literal instantiations.
	for _, pe := range q.EqParams {
		known[eq.Find(pe.Col)] = true
	}

	visited := make(map[string]bool)
	out := make([]QCS, 0, len(q.Atoms))
	for len(visited) < len(q.Atoms) {
		// Prefer an atom with some known attribute (a probe); otherwise
		// take the first unvisited one (a scan).
		pick := -1
		for i, atom := range q.Atoms {
			if visited[atom.Alias] {
				continue
			}
			for _, attr := range q.AttrsUsed(atom.Alias) {
				if known[eq.Find(ra.ColRef{Alias: atom.Alias, Attr: attr})] {
					pick = i
					break
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			for i, atom := range q.Atoms {
				if !visited[atom.Alias] {
					pick = i
					break
				}
			}
		}
		atom := q.Atoms[pick]
		z := q.AttrsUsed(atom.Alias)
		var x []string
		for _, attr := range z {
			if known[eq.Find(ra.ColRef{Alias: atom.Alias, Attr: attr})] {
				x = append(x, attr)
			}
		}
		for _, attr := range z {
			known[eq.Find(ra.ColRef{Alias: atom.Alias, Attr: attr})] = true
		}
		visited[atom.Alias] = true
		out = append(out, QCS{Rel: atom.Rel, Z: z, X: x})
	}
	return out
}

// ExtractAll unions the deduplicated QCS of a workload.
func ExtractAll(queries []*ra.Query) []QCS {
	seen := make(map[string]bool)
	var out []QCS
	for _, q := range queries {
		for _, pattern := range Extract(q) {
			k := pattern.key()
			if !seen[k] {
				seen[k] = true
				out = append(out, pattern)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// Config parameterizes T2B.
type Config struct {
	// Budget bounds the estimated size in bytes of the mapped BaaV store;
	// zero means unlimited.
	Budget int64
	// EnsurePreserving adds a primary-key-keyed full schema per relation so
	// the result is data preserving (users can then drop the TaaV store).
	EnsurePreserving bool
}

// Report records what T2B did.
type Report struct {
	Patterns      int
	InitialKVs    int
	FinalKVs      int
	EstimatedSize int64
	// ScanFree maps each workload query (by index) to its scan-free status
	// under the final schema.
	ScanFree []bool
	Dropped  []string
}

// Designer runs T2B for a relational schema and a query workload.
type Designer struct {
	Rels     map[string]*relation.Schema
	Workload []*ra.Query
}

// Design computes a BaaV schema supporting the workload's access patterns
// within the storage budget (algorithm T2B, Section 8.1): (1) one KV schema
// per QCS, (2) drop schemas that are redundant for the workload, (3) merge
// and drop under the budget, preferring the schemas with the least impact
// on workload efficiency.
func (d *Designer) Design(db *relation.Database, cfg Config) (*baav.Schema, *Report, error) {
	patterns := ExtractAll(d.Workload)
	report := &Report{Patterns: len(patterns)}

	// Step 1: initial schema, one KV schema per usable pattern.
	var kvs []baav.KVSchema
	seen := make(map[string]bool)
	add := func(s baav.KVSchema) {
		id := s.Rel + "|" + strings.Join(s.Key, ",") + "|" + strings.Join(s.Val, ",")
		if !seen[id] {
			seen[id] = true
			kvs = append(kvs, s)
		}
	}
	for _, p := range patterns {
		if s, ok := d.schemaFor(p); ok {
			add(s)
		}
	}
	protected := make(map[string]bool)
	if cfg.EnsurePreserving {
		for relName, rel := range d.Rels {
			if s, ok := fullSchema(relName, rel); ok {
				add(s)
				protected[s.Rel+"|"+strings.Join(s.Key, ",")] = true
			}
		}
	}
	for i := range kvs {
		kvs[i].Name = fmt.Sprintf("%s_by_%s_%d", kvs[i].Rel, strings.Join(kvs[i].Key, "_"), i)
	}
	report.InitialKVs = len(kvs)
	if len(kvs) == 0 {
		return nil, nil, fmt.Errorf("qcs: workload produced no usable access patterns")
	}
	isProtected := func(s baav.KVSchema) bool {
		return protected[s.Rel+"|"+strings.Join(s.Key, ",")]
	}

	// Step 2: drop redundant schemas (answerability and scan-freeness of
	// the workload unchanged without them). Preservation schemas stay.
	baseline := d.evaluate(kvs)
	for i := 0; i < len(kvs); {
		if isProtected(kvs[i]) {
			i++
			continue
		}
		candidate := removeAt(kvs, i)
		if len(candidate) > 0 && !worse(baseline, d.evaluate(candidate)) {
			report.Dropped = append(report.Dropped, kvs[i].Name)
			kvs = candidate
			continue
		}
		i++
	}

	// Step 3: merge same-relation same-key schemas, then drop by impact
	// until within budget.
	kvs = mergeSameKey(kvs)
	if cfg.Budget > 0 {
		for estimate(db, kvs) > cfg.Budget && len(kvs) > 1 {
			drop := d.leastImpact(db, kvs, isProtected)
			if drop < 0 {
				break // only protected schemas left
			}
			report.Dropped = append(report.Dropped, kvs[drop].Name)
			kvs = removeAt(kvs, drop)
		}
	}

	schema, err := baav.NewSchema(d.Rels, kvs...)
	if err != nil {
		return nil, nil, err
	}
	report.FinalKVs = len(kvs)
	report.EstimatedSize = estimate(db, kvs)
	checker := core.NewChecker(schema, d.Rels)
	for _, q := range d.Workload {
		report.ScanFree = append(report.ScanFree, checker.ScanFree(q))
	}
	return schema, report, nil
}

// schemaFor maps one QCS Z[X] to a KV schema ⟨X, Z\X⟩; full-scan patterns
// (empty X) are keyed by the relation's primary key.
func (d *Designer) schemaFor(p QCS) (baav.KVSchema, bool) {
	rel, ok := d.Rels[p.Rel]
	if !ok {
		return baav.KVSchema{}, false
	}
	key := append([]string{}, p.X...)
	if len(key) == 0 {
		key = append(key, rel.Key...)
	}
	if len(key) == 0 && len(p.Z) > 1 {
		key = p.Z[:1]
	}
	if len(key) == 0 {
		return baav.KVSchema{}, false
	}
	inKey := make(map[string]bool)
	for _, k := range key {
		inKey[k] = true
	}
	var val []string
	for _, z := range p.Z {
		if !inKey[z] {
			val = append(val, z)
		}
	}
	if len(val) == 0 {
		// The pattern only touches key attributes; widen with the primary
		// key so the schema remains well-formed and useful for probing.
		for _, k := range rel.Key {
			if !inKey[k] {
				val = append(val, k)
			}
		}
		if len(val) == 0 {
			return baav.KVSchema{}, false
		}
	}
	return baav.KVSchema{Rel: p.Rel, Key: key, Val: val}, true
}

// fullSchema builds the data-preserving ⟨pk, rest⟩ schema of a relation.
func fullSchema(name string, rel *relation.Schema) (baav.KVSchema, bool) {
	if len(rel.Key) == 0 || len(rel.Key) == len(rel.Attrs) {
		return baav.KVSchema{}, false
	}
	inKey := make(map[string]bool)
	for _, k := range rel.Key {
		inKey[k] = true
	}
	var val []string
	for _, a := range rel.Attrs {
		if !inKey[a.Name] {
			val = append(val, a.Name)
		}
	}
	return baav.KVSchema{Rel: name, Key: append([]string{}, rel.Key...), Val: val}, true
}

// evaluation is the workload status under a candidate schema.
type evaluation struct {
	answerable []bool
	scanFree   []bool
}

func (d *Designer) evaluate(kvs []baav.KVSchema) evaluation {
	schema, err := baav.NewSchema(d.Rels, kvs...)
	ev := evaluation{
		answerable: make([]bool, len(d.Workload)),
		scanFree:   make([]bool, len(d.Workload)),
	}
	if err != nil {
		return ev
	}
	checker := core.NewChecker(schema, d.Rels)
	for i, q := range d.Workload {
		ev.answerable[i] = checker.ResultPreserving(q)
		ev.scanFree[i] = checker.ScanFree(q)
	}
	return ev
}

// worse reports whether candidate loses any capability baseline had.
func worse(baseline, candidate evaluation) bool {
	for i := range baseline.answerable {
		if baseline.answerable[i] && !candidate.answerable[i] {
			return true
		}
		if baseline.scanFree[i] && !candidate.scanFree[i] {
			return true
		}
	}
	return false
}

// leastImpact picks the schema whose removal hurts the workload least:
// fewest queries losing scan-freeness or answerability, size as tiebreak.
// It returns -1 when only protected schemas remain.
func (d *Designer) leastImpact(db *relation.Database, kvs []baav.KVSchema, isProtected func(baav.KVSchema) bool) int {
	baseline := d.evaluate(kvs)
	best, bestImpact, bestSize := -1, 1<<30, int64(-1)
	for i := range kvs {
		if isProtected(kvs[i]) {
			continue
		}
		candidate := removeAt(kvs, i)
		if len(candidate) == 0 {
			continue
		}
		ev := d.evaluate(candidate)
		impact := 0
		for j := range baseline.answerable {
			if baseline.answerable[j] && !ev.answerable[j] {
				impact += 10 // losing answerability hurts more
			}
			if baseline.scanFree[j] && !ev.scanFree[j] {
				impact++
			}
		}
		size := estimateOne(db, kvs[i])
		if impact < bestImpact || (impact == bestImpact && size > bestSize) {
			best, bestImpact, bestSize = i, impact, size
		}
	}
	return best
}

func removeAt(kvs []baav.KVSchema, i int) []baav.KVSchema {
	out := make([]baav.KVSchema, 0, len(kvs)-1)
	out = append(out, kvs[:i]...)
	return append(out, kvs[i+1:]...)
}

// mergeSameKey merges schemas over the same relation and key into one wider
// schema (keys are stored once, so the merge shrinks the mapping).
func mergeSameKey(kvs []baav.KVSchema) []baav.KVSchema {
	type groupKey struct{ rel, key string }
	groups := make(map[groupKey]*baav.KVSchema)
	var order []groupKey
	for _, s := range kvs {
		k := append([]string{}, s.Key...)
		sort.Strings(k)
		gk := groupKey{s.Rel, strings.Join(k, ",")}
		g, ok := groups[gk]
		if !ok {
			copied := s
			copied.Val = append([]string{}, s.Val...)
			groups[gk] = &copied
			order = append(order, gk)
			continue
		}
		have := make(map[string]bool)
		for _, v := range g.Val {
			have[v] = true
		}
		for _, v := range s.Val {
			if !have[v] {
				g.Val = append(g.Val, v)
			}
		}
	}
	out := make([]baav.KVSchema, 0, len(order))
	for _, gk := range order {
		out = append(out, *groups[gk])
	}
	return out
}

// estimate computes the exact mapped size of the schemas over the database.
func estimate(db *relation.Database, kvs []baav.KVSchema) int64 {
	var total int64
	for _, s := range kvs {
		total += estimateOne(db, s)
	}
	return total
}

func estimateOne(db *relation.Database, s baav.KVSchema) int64 {
	rel := db.Relation(s.Rel)
	if rel == nil {
		return 0
	}
	keyPos, err := rel.Schema.Positions(s.Key)
	if err != nil {
		return 0
	}
	valPos, err := rel.Schema.Positions(s.Val)
	if err != nil {
		return 0
	}
	keys := make(map[string]bool)
	var total int64
	for _, t := range rel.Tuples {
		k := t.Project(keyPos)
		ks := relation.KeyString(k)
		if !keys[ks] {
			keys[ks] = true
			total += int64(k.SizeBytes())
		}
		total += int64(t.Project(valPos).SizeBytes())
	}
	return total
}

package qcs

import (
	"strings"
	"testing"

	"zidian/internal/baav"
	"zidian/internal/core"
	"zidian/internal/kv"
	"zidian/internal/ra"
	"zidian/internal/relation"
)

func testDB() *relation.Database {
	db := relation.NewDatabase()
	r := relation.NewRelation(relation.MustSchema("R",
		[]relation.Attr{{Name: "A", Kind: relation.KindInt}, {Name: "B", Kind: relation.KindInt}, {Name: "C", Kind: relation.KindInt}},
		[]string{"A"}))
	for i := int64(0); i < 50; i++ {
		r.MustInsert(relation.Tuple{relation.Int(i), relation.Int(i % 7), relation.Int(i % 3)})
	}
	db.Add(r)
	s := relation.NewRelation(relation.MustSchema("S",
		[]relation.Attr{{Name: "E", Kind: relation.KindInt}, {Name: "F", Kind: relation.KindInt}, {Name: "G", Kind: relation.KindInt}},
		[]string{"E", "F"}))
	for i := int64(0); i < 60; i++ {
		s.MustInsert(relation.Tuple{relation.Int(i % 7), relation.Int(i), relation.Int(i % 5)})
	}
	db.Add(s)
	return db
}

// TestExtractPaperExample reproduces Section 8.1's example: for
// Q = πF(σA=1 R(A,B,C) ⋈B=E S(E,F,G)), the QCS are AB[A] and EF[E].
func TestExtractPaperExample(t *testing.T) {
	db := testDB()
	q := ra.MustParse("select S.F from R, S where R.A = 1 and R.B = S.E", db)
	patterns := Extract(q)
	if len(patterns) != 2 {
		t.Fatalf("patterns = %v", patterns)
	}
	byRel := map[string]QCS{}
	for _, p := range patterns {
		byRel[p.Rel] = p
	}
	r := byRel["R"]
	if strings.Join(r.Z, ",") != "A,B" || strings.Join(r.X, ",") != "A" {
		t.Fatalf("R pattern = %v, want {A,B}[A]", r)
	}
	s := byRel["S"]
	if strings.Join(s.Z, ",") != "E,F" || strings.Join(s.X, ",") != "E" {
		t.Fatalf("S pattern = %v", s)
	}
}

func TestExtractAllDedup(t *testing.T) {
	db := testDB()
	q1 := ra.MustParse("select R.B from R where R.A = 1", db)
	q2 := ra.MustParse("select R.B from R where R.A = 2", db)
	patterns := ExtractAll([]*ra.Query{q1, q2})
	if len(patterns) != 1 {
		t.Fatalf("identical patterns must dedup: %v", patterns)
	}
}

func TestDesignMakesWorkloadScanFree(t *testing.T) {
	db := testDB()
	workload := []*ra.Query{
		ra.MustParse("select S.F from R, S where R.A = 1 and R.B = S.E", db),
		ra.MustParse("select R.C from R where R.A = 7", db),
	}
	d := &Designer{Rels: baav.RelSchemas(db), Workload: workload}
	schema, report, err := d.Design(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, sf := range report.ScanFree {
		if !sf {
			t.Fatalf("query %d not scan-free under designed schema %v", i, schema.Names())
		}
	}
	// The designed schema really answers the queries.
	store, err := baav.Map(db, schema, kv.NewCluster(kv.EngineHash, 2), baav.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checker := core.NewChecker(schema, baav.RelSchemas(db))
	for _, q := range workload {
		info, err := checker.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := core.Answer(info, store)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ra.Evaluate(q, db)
		if !got.Equal(want) {
			t.Fatalf("designed schema answer differs for %s", q)
		}
	}
}

func TestDesignDropsRedundant(t *testing.T) {
	db := testDB()
	// Two queries with the same access pattern plus one subsumed pattern.
	workload := []*ra.Query{
		ra.MustParse("select R.B, R.C from R where R.A = 1", db),
		ra.MustParse("select R.B from R where R.A = 2", db),
	}
	d := &Designer{Rels: baav.RelSchemas(db), Workload: workload}
	schema, report, err := d.Design(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if report.FinalKVs >= report.InitialKVs && report.InitialKVs > 1 {
		t.Fatalf("redundant schema not dropped: initial=%d final=%d (%v)",
			report.InitialKVs, report.FinalKVs, schema.Names())
	}
}

func TestDesignBudget(t *testing.T) {
	db := testDB()
	workload := []*ra.Query{
		ra.MustParse("select R.B, R.C from R where R.A = 1", db),
		ra.MustParse("select S.G from S where S.E = 3", db),
		ra.MustParse("select S.F from R, S where R.A = 1 and R.B = S.E", db),
	}
	d := &Designer{Rels: baav.RelSchemas(db), Workload: workload}
	unlimited, rep1, err := d.Design(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A tight budget forces drops.
	budget := rep1.EstimatedSize / 2
	tight, rep2, err := d.Design(db, Config{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.EstimatedSize > budget {
		t.Fatalf("estimated size %d exceeds budget %d", rep2.EstimatedSize, budget)
	}
	if len(tight.KVs) >= len(unlimited.KVs) {
		t.Fatalf("budget must shrink the schema: %d vs %d", len(tight.KVs), len(unlimited.KVs))
	}
}

func TestDesignEnsurePreserving(t *testing.T) {
	db := testDB()
	workload := []*ra.Query{ra.MustParse("select R.B from R where R.A = 1", db)}
	d := &Designer{Rels: baav.RelSchemas(db), Workload: workload}
	schema, _, err := d.Design(db, Config{EnsurePreserving: true})
	if err != nil {
		t.Fatal(err)
	}
	checker := core.NewChecker(schema, baav.RelSchemas(db))
	ok, missing := checker.DataPreserving()
	if !ok {
		t.Fatalf("EnsurePreserving schema misses %v", missing)
	}
}

func TestSchemaForEdgeCases(t *testing.T) {
	db := testDB()
	d := &Designer{Rels: baav.RelSchemas(db)}
	// Full-scan pattern keyed by primary key.
	s, ok := d.schemaFor(QCS{Rel: "R", Z: []string{"A", "B", "C"}})
	if !ok || s.Key[0] != "A" || len(s.Val) != 2 {
		t.Fatalf("full-scan schema = %v %v", s, ok)
	}
	// Pattern over only the key widens with the primary key.
	s, ok = d.schemaFor(QCS{Rel: "S", Z: []string{"E"}, X: []string{"E"}})
	if !ok || len(s.Val) == 0 {
		t.Fatalf("key-only pattern = %v %v", s, ok)
	}
	// Unknown relation.
	if _, ok := d.schemaFor(QCS{Rel: "NOPE", Z: []string{"x"}}); ok {
		t.Fatal("unknown relation must fail")
	}
}

func TestMergeSameKey(t *testing.T) {
	merged := mergeSameKey([]baav.KVSchema{
		{Rel: "R", Key: []string{"A"}, Val: []string{"B"}},
		{Rel: "R", Key: []string{"A"}, Val: []string{"C", "B"}},
		{Rel: "R", Key: []string{"B"}, Val: []string{"A"}},
	})
	if len(merged) != 2 {
		t.Fatalf("merged = %v", merged)
	}
	if len(merged[0].Val) != 2 {
		t.Fatalf("vals not unioned: %v", merged[0])
	}
}

func TestQCSString(t *testing.T) {
	p := QCS{Rel: "R", Z: []string{"A", "B"}, X: []string{"A"}}
	if !strings.Contains(p.String(), "R:") {
		t.Fatal("String format")
	}
}

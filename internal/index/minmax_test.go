package index

import (
	"testing"

	"zidian/internal/kv"
	"zidian/internal/relation"
)

// TestValueBoundsMaintenance: the per-index min/max the planner's range
// costing consults widens on insert and decays on delete — draining every
// posting of the extreme value must retighten the bound, exactly like
// MaxPosting's histogram decay.
func TestValueBoundsMaintenance(t *testing.T) {
	c := kv.NewCluster(kv.EngineHash, 3)
	m := NewManager(c)
	schema := itemSchema(t)
	tuples := itemTuples(40) // qty cycles 0..4
	if _, err := m.Create("ix_qty", "ITEM", "qty", schema, tuples); err != nil {
		t.Fatal(err)
	}
	wantBounds := func(lo, hi int64) {
		t.Helper()
		gotLo, gotHi, ok := m.ValueBounds("ix_qty")
		if !ok || gotLo.Int != lo || gotHi.Int != hi {
			t.Fatalf("ValueBounds = (%s, %s, %v), want (%d, %d)", gotLo, gotHi, ok, lo, hi)
		}
	}
	wantBounds(0, 4)

	// Widen both sides.
	if err := m.Insert("ITEM", relation.Tuple{relation.Int(100), relation.String("S99"), relation.Int(-3)}); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("ITEM", relation.Tuple{relation.Int(101), relation.String("S99"), relation.Int(9)}); err != nil {
		t.Fatal(err)
	}
	wantBounds(-3, 9)

	// Drain the extremes: the bounds must decay back.
	if err := m.Delete("ITEM", relation.Tuple{relation.Int(100), relation.String("S99"), relation.Int(-3)}); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("ITEM", relation.Tuple{relation.Int(101), relation.String("S99"), relation.Int(9)}); err != nil {
		t.Fatal(err)
	}
	wantBounds(0, 4)

	// Drain qty 4 entirely (tuples 4, 9, 14, ... carry it).
	for _, tp := range tuples {
		if tp[2].Int == 4 {
			if err := m.Delete("ITEM", tp); err != nil {
				t.Fatal(err)
			}
		}
	}
	wantBounds(0, 3)

	// A fresh Manager over the same cluster recovers the bounds from the
	// stored postings.
	m2 := NewManager(c)
	if err := m2.Load(map[string]*relation.Schema{"ITEM": schema}); err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := m2.ValueBounds("ix_qty")
	if !ok || lo.Int != 0 || hi.Int != 3 {
		t.Fatalf("recovered ValueBounds = (%s, %s, %v), want (0, 3)", lo, hi, ok)
	}

	if _, _, ok := m.ValueBounds("nope"); ok {
		t.Fatal("unknown index reported bounds")
	}
}

// TestRangeLimitStreaming: a bound LIMIT stops the ordered posting walk
// after O(limit) scan steps, and the kept entries are exactly the prefix of
// the unbounded walk's (value, key) order.
func TestRangeLimitStreaming(t *testing.T) {
	for _, kind := range []kv.EngineKind{kv.EngineHash, kv.EngineLSM, kv.EngineSorted} {
		c := kv.NewCluster(kind, 4)
		m := NewManager(c)
		schema := itemSchema(t)
		// 200 tuples → 10 sku values × 20 postings each.
		if _, err := m.Create("ix_sku", "ITEM", "sku", schema, itemTuples(200)); err != nil {
			t.Fatal(err)
		}
		lo, hi := relation.String("S00"), relation.String("S09")
		fullVals, fullKeys, fullScanned, err := m.Range("ix_sku", &lo, &hi, true, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(fullKeys) != 200 || fullScanned != 10 {
			t.Fatalf("full range: %d keys over %d lists", len(fullKeys), fullScanned)
		}
		const limit = 7
		vals, keys, scanned, err := m.RangeLimit("ix_sku", &lo, &hi, true, true, limit)
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != limit {
			t.Fatalf("limited range returned %d keys, want %d", len(keys), limit)
		}
		// Each node stops after one posting list (20 entries ≥ limit), so
		// at most one list per node is visited.
		if scanned > c.NodeCount() {
			t.Fatalf("limited walk visited %d lists, want <= %d", scanned, c.NodeCount())
		}
		for i := range keys {
			if !relation.Equal(keys[i][0], fullKeys[i][0]) || !relation.Equal(vals[i], fullVals[i]) {
				t.Fatalf("limited entry %d = (%s, %s), want prefix of full walk (%s, %s)",
					i, vals[i], keys[i], fullVals[i], fullKeys[i])
			}
		}
		// Zero limit short-circuits; negative is unbounded.
		if _, zk, zs, err := m.RangeLimit("ix_sku", &lo, &hi, true, true, 0); err != nil || len(zk) != 0 || zs != 0 {
			t.Fatalf("zero limit: %d keys, %d scanned, %v", len(zk), zs, err)
		}
	}
}

package index

import (
	"bytes"
	"fmt"
	"sort"

	"zidian/internal/kv"
	"zidian/internal/obs"
	"zidian/internal/relation"
)

// Snapshot-consistent posting maintenance. Postings are not versioned;
// instead they obey a superset invariant: a posting list always contains
// at least the block keys any active snapshot could need. Inserts add
// block keys in the commit's write batch — before the commit sequence
// installs — so a reader that sees the new sequence sees the new posting
// (a reader pinned below it sees a harmless extra key: the block fetch at
// its snapshot simply lacks the row, and residual predicate re-checks
// discard false positives). Deletes never shrink the payload inline; the
// removal is registered as pending at the commit's sequence and applied
// physically — with the stats update — only once the relation's watermark
// passes that sequence (ReclaimRemovals), so a pinned snapshot can always
// still reach every block its posting walk promises. Re-inserting a
// (value, block key) pair cancels its pending removal.

// pendingRemoval is one deferred posting shrink.
type pendingRemoval struct {
	idx string
	v   relation.Value
	key []byte // posting key
	pk  []byte // encoded block key to remove
	seq uint64 // commit sequence that logically removed it
}

// pendKey identifies a pending removal for cancellation on re-add.
func pendKey(idx string, key, pk []byte) string {
	return idx + "\x00" + string(key) + "\x00" + string(pk)
}

// stagedPosting is one posting list's pending state inside a commit.
type stagedPosting struct {
	d      *Def
	v      relation.Value
	key    []byte
	lst    [][]byte // physical content at stage time
	adds   [][]byte // block keys this commit adds (not in lst)
	remove [][]byte // block keys this commit logically removes (in lst)
	readds [][]byte // block keys re-added that are still in lst (cancel pending)
}

// Commit stages posting maintenance for one relation's group-committed
// write batch. Stage every tuple, apply Ops() in the caller's batch
// (before the commit sequence installs), then Apply(seq) to publish stats
// and register deferred removals. Abandoning before Apply leaves the
// index untouched except for superset payloads that were never installed
// — harmless by the invariant above (callers install after applying the
// batch, so in practice abandonment happens before any write).
type Commit struct {
	m      *Manager
	rel    string
	staged map[string]*stagedPosting // string(posting key) -> state
}

// BeginCommit opens a staged maintenance round for rel's indexes.
func (m *Manager) BeginCommit(rel string) *Commit {
	return &Commit{m: m, rel: rel, staged: make(map[string]*stagedPosting)}
}

// posting returns the staged state for one posting list, reading its
// current payload on first touch.
func (c *Commit) posting(kvt *obs.KV, d *Def, v relation.Value) (*stagedPosting, error) {
	key := postingKey(d.id, v)
	if sp, ok := c.staged[string(key)]; ok {
		return sp, nil
	}
	var lst [][]byte
	if data, ok := c.m.cluster.GetRoutedT(kvt, key, key); ok {
		var err error
		if lst, err = splitPostings(data, len(d.Key)); err != nil {
			return nil, fmt.Errorf("index: %s: %v", d.Name, err)
		}
	}
	sp := &stagedPosting{d: d, v: v, key: key, lst: lst}
	c.staged[string(key)] = sp
	return sp, nil
}

// defsOn snapshots the definitions covering rel.
func (m *Manager) defsOn(rel string) ([]*Def, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*Def
	for _, d := range m.defs {
		if d.Rel == rel {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func contains(lst [][]byte, pk []byte) bool {
	at := sort.Search(len(lst), func(i int) bool { return bytes.Compare(lst[i], pk) >= 0 })
	return at < len(lst) && bytes.Equal(lst[at], pk)
}

func removeFrom(lst [][]byte, pk []byte) ([][]byte, bool) {
	for i, p := range lst {
		if bytes.Equal(p, pk) {
			return append(lst[:i], lst[i+1:]...), true
		}
	}
	return lst, false
}

// StageInsert stages posting maintenance for one inserted tuple.
func (c *Commit) StageInsert(kvt *obs.KV, t relation.Tuple) error {
	defs, err := c.m.defsOn(c.rel)
	if err != nil {
		return err
	}
	for _, d := range defs {
		if d.attrPos >= len(t) {
			return fmt.Errorf("index: tuple arity %d too small for %s(%s)", len(t), c.rel, d.Attr)
		}
		sp, err := c.posting(kvt, d, t[d.attrPos])
		if err != nil {
			return err
		}
		pk := relation.EncodeTuple(t.Project(d.keyPos))
		if next, canceled := removeFrom(sp.remove, pk); canceled {
			sp.remove = next // delete+insert in one batch: net no-op
			continue
		}
		if contains(sp.lst, pk) {
			// Physically present already (possibly pending removal from an
			// earlier commit): keep it and cancel that removal at Apply.
			sp.readds = append(sp.readds, pk)
			continue
		}
		if !contains(sp.adds, pk) {
			sp.adds, _ = insertPosting(sp.adds, pk)
		}
	}
	return nil
}

// StageDelete stages posting maintenance for one deleted tuple.
func (c *Commit) StageDelete(kvt *obs.KV, t relation.Tuple) error {
	defs, err := c.m.defsOn(c.rel)
	if err != nil {
		return err
	}
	for _, d := range defs {
		if d.attrPos >= len(t) {
			return fmt.Errorf("index: tuple arity %d too small for %s(%s)", len(t), c.rel, d.Attr)
		}
		sp, err := c.posting(kvt, d, t[d.attrPos])
		if err != nil {
			return err
		}
		pk := relation.EncodeTuple(t.Project(d.keyPos))
		if next, was := removeFrom(sp.adds, pk); was {
			sp.adds = next // insert+delete in one batch: net no-op
			continue
		}
		if contains(sp.lst, pk) && !contains(sp.remove, pk) {
			sp.remove, _ = insertPosting(sp.remove, pk)
			// A re-add earlier in the batch loses to the later delete.
			sp.readds, _ = removeFrom(sp.readds, pk)
		}
	}
	return nil
}

// Ops materializes the grown posting payloads as batch puts. Shrinks are
// deferred, so a posting with only removals emits nothing.
func (c *Commit) Ops() []kv.BatchOp {
	keys := make([]string, 0, len(c.staged))
	for k := range c.staged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var ops []kv.BatchOp
	for _, k := range keys {
		sp := c.staged[k]
		if len(sp.adds) == 0 {
			continue
		}
		merged := append([][]byte{}, sp.lst...)
		for _, pk := range sp.adds {
			merged, _ = insertPosting(merged, pk)
		}
		ops = append(ops, kv.BatchOp{Route: sp.key, Key: sp.key, Value: joinPostings(merged)})
	}
	return ops
}

// Apply publishes the commit: stats for the added postings, pending
// registrations (at seq) for the removed ones, and cancellations for
// re-added pairs. Call after the batch ops applied, as part of install.
func (c *Commit) Apply(seq uint64) {
	c.m.mu.Lock()
	for _, sp := range c.staged {
		if len(sp.adds) == 0 {
			continue
		}
		st := c.m.stats[sp.d.Name]
		if st == nil {
			continue // index dropped mid-flight (DDL is gated; defensive)
		}
		oldLen := len(sp.lst)
		st.Postings += len(sp.adds)
		if oldLen == 0 {
			st.Entries++
			st.addValue(sp.v)
		}
		st.bump(oldLen, oldLen+len(sp.adds))
	}
	c.m.mu.Unlock()

	c.m.pendMu.Lock()
	defer c.m.pendMu.Unlock()
	pend := c.m.pending[c.rel]
	for _, sp := range c.staged {
		for _, pk := range append(sp.adds, sp.readds...) {
			delete(pend, pendKey(sp.d.Name, sp.key, pk))
		}
		if len(sp.remove) == 0 {
			continue
		}
		if pend == nil {
			pend = make(map[string]pendingRemoval)
			if c.m.pending == nil {
				c.m.pending = make(map[string]map[string]pendingRemoval)
			}
			c.m.pending[c.rel] = pend
		}
		for _, pk := range sp.remove {
			pend[pendKey(sp.d.Name, sp.key, pk)] = pendingRemoval{
				idx: sp.d.Name, v: sp.v, key: sp.key, pk: pk, seq: seq,
			}
		}
	}
}

// PendingRemovals reports the number of deferred posting shrinks queued
// for rel — the limit-pushdown quiescence check keys off it.
func (m *Manager) PendingRemovals(rel string) int {
	m.pendMu.Lock()
	defer m.pendMu.Unlock()
	return len(m.pending[rel])
}

// ReclaimRemovals physically applies every pending removal for rel whose
// sequence the watermark has passed: posting payloads shrink (or vanish)
// and the stats update, exactly as an immediate delete would have done.
// Failed removals (corrupt postings) stay pending and surface the error.
func (m *Manager) ReclaimRemovals(kvt *obs.KV, rel string, watermark uint64) error {
	m.pendMu.Lock()
	pend := m.pending[rel]
	type group struct {
		idx string
		v   relation.Value
		key []byte
		pks [][]byte
		ids []string // pend-map keys, removed on success
	}
	groups := make(map[string]*group)
	for id, pr := range pend {
		if pr.seq > watermark {
			continue
		}
		gk := pr.idx + "\x00" + string(pr.key)
		g := groups[gk]
		if g == nil {
			g = &group{idx: pr.idx, v: pr.v, key: pr.key}
			groups[gk] = g
		}
		g.pks = append(g.pks, pr.pk)
		g.ids = append(g.ids, id)
	}
	m.pendMu.Unlock()
	if len(groups) == 0 {
		return nil
	}
	order := make([]string, 0, len(groups))
	for gk := range groups {
		order = append(order, gk)
	}
	sort.Strings(order)

	m.mu.Lock()
	defer m.mu.Unlock()
	// Batch the posting reads (one round per storage node) and the
	// write-backs (one more): reclamation runs inside the group committer's
	// critical path, so per-group round trips would put unbatched storage
	// waits right back into every write's latency.
	live := make([]*group, 0, len(order))
	reqs := make([]kv.GetRequest, 0, len(order))
	for _, gk := range order {
		g := groups[gk]
		if _, ok := m.defs[g.idx]; !ok {
			m.clearPending(rel, g.ids) // index dropped: nothing to shrink
			continue
		}
		live = append(live, g)
		reqs = append(reqs, kv.GetRequest{Route: g.key, Key: g.key})
	}
	res := m.cluster.GetManyRouted(kvt, reqs)
	var ops []kv.BatchOp
	var firstErr error
	for i, g := range live {
		d := m.defs[g.idx]
		var lst [][]byte
		if res[i].OK {
			var err error
			if lst, err = splitPostings(res[i].Value, len(d.Key)); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("index: %s: %v", g.idx, err)
				}
				continue
			}
		}
		oldLen := len(lst)
		removed := 0
		for _, pk := range g.pks {
			var was bool
			if lst, was = removePosting(lst, pk); was {
				removed++
			}
		}
		if removed > 0 {
			st := m.stats[g.idx]
			if len(lst) == 0 {
				ops = append(ops, kv.BatchOp{Route: g.key, Key: g.key, Delete: true})
				st.Entries--
				st.removeValue(g.v)
			} else {
				ops = append(ops, kv.BatchOp{Route: g.key, Key: g.key, Value: joinPostings(lst)})
			}
			st.Postings -= removed
			st.bump(oldLen, len(lst))
		}
		m.clearPending(rel, g.ids)
	}
	m.cluster.ApplyBatch(kvt, ops)
	return firstErr
}

// clearPending drops resolved pending-removal entries.
func (m *Manager) clearPending(rel string, ids []string) {
	m.pendMu.Lock()
	defer m.pendMu.Unlock()
	pend := m.pending[rel]
	for _, id := range ids {
		delete(pend, id)
	}
	if len(pend) == 0 {
		delete(m.pending, rel)
	}
}

// Package index implements block-aware secondary indexes for BaaV stores.
//
// A secondary index on rel(attr) maps every value of a non-key attribute to
// the set of block keys — the source relation's primary-key tuples, i.e. the
// keys of the relation's primary-key KV schema — of the tuples carrying that
// value. Postings are stored as ordinary key-value pairs in the same
// kv.Cluster as the blocks they point at, so hash sharding, per-node metrics
// and engine cost profiles apply to index traffic for free, and an index
// lookup preserves the paper's round-trip economics: one get fetches the
// posting, then one get per posted block key fetches exactly the blocks the
// query needs, instead of scanning the whole instance.
//
// Physical layout. Index pairs live in a key space disjoint from BaaV
// blocks: BaaV instance ids are small positive integers, index prefixes set
// the top bit of the 4-byte id word. Id 0 of that space holds the catalog —
// one pair per index describing (name, relation, attribute, block-key
// attributes) — which makes indexes persistent in the store itself: a fresh
// Manager over the same cluster recovers them with Load.
//
//	catalog pair:  [0x80000000]      [enc(name)]  -> enc(rel, attr, id, key...)
//	posting pair:  [0x80000000|id]   [enc(value)] -> enc(pk1) ++ enc(pk2) ++ ...
//
// Posting lists keep their block keys in encoded (memcmp) order, so
// maintenance is a binary search plus splice and lookups return keys
// deterministically.
package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"

	"zidian/internal/kv"
	"zidian/internal/obs"
	"zidian/internal/relation"
)

// idxSpace is the top bit distinguishing index prefixes from BaaV instance
// ids in the shared 4-byte key prefix.
const idxSpace = uint32(1) << 31

// catalogID is the reserved index id of the catalog pairs.
const catalogID = uint32(0)

// Def describes one secondary index.
type Def struct {
	// Name identifies the index uniquely within the store.
	Name string
	// Rel and Attr name the indexed relation and attribute.
	Rel  string
	Attr string
	// Key lists the block-key attributes a posting holds — the indexed
	// relation's primary key, in declared order.
	Key []string

	id      uint32
	attrPos int
	keyPos  []int
}

// Stats summarize one index's shape for the planner's cost decisions.
type Stats struct {
	// Entries is the number of distinct indexed values (posting lists).
	Entries int
	// Postings is the total number of (value, block key) pairs.
	Postings int
	// MaxPosting is the exact length of the longest posting list currently
	// stored: it shrinks under deletes too, so the planner's boundedness
	// check recovers after a heavy-delete workload instead of staying
	// pessimistic on a stale ceiling.
	MaxPosting int

	// lens counts posting lists by length; maintenance moves one list
	// between adjacent lengths per call, so MaxPosting retightens in
	// amortized O(1) without ever rescanning the index.
	lens map[int]int

	// vals lists the distinct indexed values currently present, sorted in
	// encoded (memcmp) key order — the order the posting key space walks
	// in. Maintenance splices one entry per created or drained posting
	// list, so the min/max the planner uses to tighten range selectivity
	// decay under deletes exactly like MaxPosting does.
	vals []valEntry
}

// valEntry pairs a distinct indexed value with its encoded key, which
// defines the sort order of Stats.vals.
type valEntry struct {
	key string
	val relation.Value
}

// addValue splices a newly present distinct value into the sorted list.
func (st *Stats) addValue(v relation.Value) {
	k := string(relation.AppendValue(nil, v))
	at := sort.Search(len(st.vals), func(i int) bool { return st.vals[i].key >= k })
	if at < len(st.vals) && st.vals[at].key == k {
		return
	}
	st.vals = append(st.vals, valEntry{})
	copy(st.vals[at+1:], st.vals[at:])
	st.vals[at] = valEntry{key: k, val: v}
}

// setValues installs the distinct-value list in one shot — backfill and
// Load use it so building an index stays O(n log n) in the distinct-value
// count instead of paying a splice per value. The input may be unordered.
func (st *Stats) setValues(vals []relation.Value) {
	st.vals = make([]valEntry, len(vals))
	for i, v := range vals {
		st.vals[i] = valEntry{key: string(relation.AppendValue(nil, v)), val: v}
	}
	sort.Slice(st.vals, func(i, j int) bool { return st.vals[i].key < st.vals[j].key })
}

// removeValue splices a drained distinct value out of the sorted list.
func (st *Stats) removeValue(v relation.Value) {
	k := string(relation.AppendValue(nil, v))
	at := sort.Search(len(st.vals), func(i int) bool { return st.vals[i].key >= k })
	if at >= len(st.vals) || st.vals[at].key != k {
		return
	}
	st.vals = append(st.vals[:at], st.vals[at+1:]...)
}

// ValueBounds returns the smallest and largest indexed value currently
// present (in encoded key order, which matches the posting walk). ok is
// false for an empty index.
func (st *Stats) ValueBounds() (lo, hi relation.Value, ok bool) {
	if len(st.vals) == 0 {
		return relation.Value{}, relation.Value{}, false
	}
	return st.vals[0].val, st.vals[len(st.vals)-1].val, true
}

// bump moves one posting list from length `from` to length `to` (zero
// means the list does not exist on that side) and retightens MaxPosting.
// The downward walk only revisits lengths an earlier growth walked up
// through, so maintenance stays O(posting) amortized — draining a hot
// value never rescans the index.
func (st *Stats) bump(from, to int) {
	if st.lens == nil {
		st.lens = make(map[int]int)
	}
	if from > 0 {
		if st.lens[from]--; st.lens[from] <= 0 {
			delete(st.lens, from)
		}
	}
	if to > 0 {
		st.lens[to]++
	}
	if to > st.MaxPosting {
		st.MaxPosting = to
	}
	for st.MaxPosting > 0 && st.lens[st.MaxPosting] == 0 {
		st.MaxPosting--
	}
}

// Manager is the secondary-index subsystem of one opened instance: the
// catalog of index definitions plus the read/maintenance paths over the
// cluster. All methods are safe for concurrent use; the caller is expected
// to serialize DDL and data maintenance against each other the same way it
// serializes writes to the BaaV store (the server's instance-level write
// lock does this).
type Manager struct {
	cluster *kv.Cluster

	mu     sync.RWMutex
	defs   map[string]*Def
	byAttr map[string]string // rel + "\x00" + attr -> index name
	stats  map[string]*Stats
	nextID uint32

	// Deferred posting shrinks, per relation, keyed by pendKey — see
	// commit.go. Guarded by pendMu, never by mu.
	pendMu  sync.Mutex
	pending map[string]map[string]pendingRemoval
}

// NewManager builds an empty index manager over the cluster.
func NewManager(cluster *kv.Cluster) *Manager {
	return &Manager{
		cluster: cluster,
		defs:    make(map[string]*Def),
		byAttr:  make(map[string]string),
		stats:   make(map[string]*Stats),
		nextID:  1,
	}
}

func prefix(id uint32) []byte {
	out := make([]byte, 4)
	binary.BigEndian.PutUint32(out, idxSpace|id)
	return out
}

func postingKey(id uint32, v relation.Value) []byte {
	return relation.AppendValue(prefix(id), v)
}

func catalogKey(name string) []byte {
	return relation.AppendValue(prefix(catalogID), relation.String(name))
}

func attrKey(rel, attr string) string { return rel + "\x00" + attr }

// resolve computes the positional plumbing of a definition against the
// relation schema.
func resolve(d *Def, schema *relation.Schema) error {
	if len(schema.Key) == 0 {
		return fmt.Errorf("index: relation %s has no primary key to post", d.Rel)
	}
	d.attrPos = schema.Index(d.Attr)
	if d.attrPos < 0 {
		return fmt.Errorf("index: relation %s has no attribute %q", d.Rel, d.Attr)
	}
	d.Key = append([]string{}, schema.Key...)
	pos, err := schema.Positions(d.Key)
	if err != nil {
		return err
	}
	d.keyPos = pos
	return nil
}

// Create defines and backfills an index on rel(attr) over the given tuples,
// returning the number of tuples indexed. The definition is written to the
// in-store catalog.
func (m *Manager) Create(name, rel, attr string, schema *relation.Schema, tuples []relation.Tuple) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("index: index needs a name")
	}
	d := &Def{Name: name, Rel: rel, Attr: attr}
	if err := resolve(d, schema); err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.defs[name]; dup {
		return 0, fmt.Errorf("index: index %q already exists", name)
	}
	if prev, dup := m.byAttr[attrKey(rel, attr)]; dup {
		return 0, fmt.Errorf("index: %s(%s) is already indexed by %q", rel, attr, prev)
	}
	d.id = m.nextID
	m.nextID++

	// Backfill: group block keys by indexed value, keeping each posting
	// sorted and duplicate-free in encoded order.
	groups := make(map[string][][]byte)
	var order []string
	valOf := make(map[string]relation.Value)
	n := 0
	for _, t := range tuples {
		v := t[d.attrPos]
		vk := relation.KeyString(relation.Tuple{v})
		pk := relation.EncodeTuple(t.Project(d.keyPos))
		if _, ok := groups[vk]; !ok {
			order = append(order, vk)
			valOf[vk] = v
		}
		lst, added := insertPosting(groups[vk], pk)
		groups[vk] = lst
		if added {
			n++
		}
	}
	st := &Stats{}
	distinct := make([]relation.Value, 0, len(order))
	for _, vk := range order {
		lst := groups[vk]
		m.cluster.Put(postingKey(d.id, valOf[vk]), joinPostings(lst))
		st.Entries++
		st.Postings += len(lst)
		st.bump(0, len(lst))
		distinct = append(distinct, valOf[vk])
	}
	st.setValues(distinct)
	m.cluster.Put(catalogKey(name), encodeCatalog(d))
	m.defs[name] = d
	m.byAttr[attrKey(rel, attr)] = name
	m.stats[name] = st
	return n, nil
}

// Drop removes the index and all of its postings from the store.
func (m *Manager) Drop(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.defs[name]
	if !ok {
		return fmt.Errorf("index: unknown index %q", name)
	}
	var doomed [][]byte
	m.cluster.Scan(prefix(d.id), func(k, _ []byte) bool {
		doomed = append(doomed, append([]byte{}, k...))
		return true
	})
	for _, k := range doomed {
		m.cluster.Delete(k)
	}
	m.cluster.Delete(catalogKey(name))
	delete(m.defs, name)
	delete(m.byAttr, attrKey(d.Rel, d.Attr))
	delete(m.stats, name)
	m.pendMu.Lock()
	if pend := m.pending[d.Rel]; pend != nil {
		for id := range pend {
			if strings.HasPrefix(id, name+"\x00") {
				delete(pend, id)
			}
		}
		if len(pend) == 0 {
			delete(m.pending, d.Rel)
		}
	}
	m.pendMu.Unlock()
	return nil
}

// Insert maintains every index on rel for one inserted tuple: a
// read-modify-write of the affected posting per index, O(posting) work
// independent of the relation size.
func (m *Manager) Insert(rel string, t relation.Tuple) error {
	return m.maintain(nil, rel, t, true)
}

// InsertT is Insert with a per-statement kv trace sink.
func (m *Manager) InsertT(kvt *obs.KV, rel string, t relation.Tuple) error {
	return m.maintain(kvt, rel, t, true)
}

// Delete maintains every index on rel for one deleted tuple.
func (m *Manager) Delete(rel string, t relation.Tuple) error {
	return m.maintain(nil, rel, t, false)
}

// DeleteT is Delete with a per-statement kv trace sink.
func (m *Manager) DeleteT(kvt *obs.KV, rel string, t relation.Tuple) error {
	return m.maintain(kvt, rel, t, false)
}

// maintain updates every index on rel for one inserted or deleted tuple in
// two phases: a validate-and-read phase that performs every fallible step
// (arity checks, posting reads, payload decoding) without writing anything,
// and an apply phase of pure cluster puts/deletes that cannot fail. An error
// therefore leaves every posting list exactly as it was — the write path's
// callers rely on this to keep relation, blocks, and postings consistent.
func (m *Manager) maintain(kvt *obs.KV, rel string, t relation.Tuple, insert bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	type edit struct {
		d       *Def
		v       relation.Value
		key     []byte
		oldLen  int
		payload [][]byte
	}
	var edits []edit
	for _, d := range m.defs {
		if d.Rel != rel {
			continue
		}
		if d.attrPos >= len(t) {
			return fmt.Errorf("index: tuple arity %d too small for %s(%s)", len(t), rel, d.Attr)
		}
		v := t[d.attrPos]
		pk := relation.EncodeTuple(t.Project(d.keyPos))
		key := postingKey(d.id, v)
		var lst [][]byte
		if data, ok := m.cluster.GetRoutedT(kvt, key, key); ok {
			var err error
			if lst, err = splitPostings(data, len(d.Key)); err != nil {
				return fmt.Errorf("index: %s: %v", d.Name, err)
			}
		}
		oldLen := len(lst)
		var next [][]byte
		var changed bool
		if insert {
			next, changed = insertPosting(lst, pk)
		} else {
			next, changed = removePosting(lst, pk)
		}
		if !changed {
			continue
		}
		edits = append(edits, edit{d: d, v: v, key: key, oldLen: oldLen, payload: next})
	}
	for _, e := range edits {
		st := m.stats[e.d.Name]
		if len(e.payload) == 0 {
			m.cluster.DeleteRoutedT(kvt, e.key, e.key)
			st.Entries--
			st.removeValue(e.v)
		} else {
			m.cluster.PutRoutedT(kvt, e.key, e.key, joinPostings(e.payload))
			if e.oldLen == 0 {
				st.Entries++
				st.addValue(e.v)
			}
		}
		if insert {
			st.Postings++
		} else {
			st.Postings--
		}
		st.bump(e.oldLen, len(e.payload))
	}
	return nil
}

// insertPosting splices an encoded block key into a sorted posting list,
// reporting whether it was added (false: already present). Backfill and
// incremental maintenance share it so their ordering and dedup semantics
// cannot diverge.
func insertPosting(lst [][]byte, pk []byte) ([][]byte, bool) {
	at := sort.Search(len(lst), func(i int) bool { return bytes.Compare(lst[i], pk) >= 0 })
	if at < len(lst) && bytes.Equal(lst[at], pk) {
		return lst, false
	}
	lst = append(lst, nil)
	copy(lst[at+1:], lst[at:])
	lst[at] = pk
	return lst, true
}

// removePosting splices an encoded block key out of a sorted posting list,
// reporting whether it was present.
func removePosting(lst [][]byte, pk []byte) ([][]byte, bool) {
	at := sort.Search(len(lst), func(i int) bool { return bytes.Compare(lst[i], pk) >= 0 })
	if at >= len(lst) || !bytes.Equal(lst[at], pk) {
		return lst, false
	}
	return append(lst[:at], lst[at+1:]...), true
}

// Lookup returns the block keys posted under value v in the named index, in
// encoded key order, along with the number of get invocations issued. A
// value with no posting returns no keys.
func (m *Manager) Lookup(name string, v relation.Value) ([]relation.Tuple, int, error) {
	return m.LookupT(nil, name, v)
}

// LookupT is Lookup with a per-statement trace sink (nil untraced): the
// posting get counts into the trace's kv counters, and each decoded
// posting list into its posting-read counter.
func (m *Manager) LookupT(t *obs.Trace, name string, v relation.Value) ([]relation.Tuple, int, error) {
	m.mu.RLock()
	d, ok := m.defs[name]
	m.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("index: unknown index %q", name)
	}
	key := postingKey(d.id, v)
	data, found := m.cluster.GetRoutedT(t.KVCounters(), key, key)
	if !found {
		return nil, 1, nil
	}
	t.CountPostings(1)
	width := len(d.Key)
	var out []relation.Tuple
	off := 0
	for off < len(data) {
		t, k, err := relation.DecodeTuple(data[off:], width)
		if err != nil {
			return nil, 1, fmt.Errorf("index: %s: corrupt posting: %v", name, err)
		}
		out = append(out, t)
		off += k
	}
	return out, 1, nil
}

// LookupManyT resolves the postings of several values of one index in a
// single batched cluster round: the posting gets are grouped by owning
// node and issued as one GetManyRouted — one emulated round trip and one
// lock acquisition per node — instead of one routed get per value. outs
// aligns with vs (nil for a value with no posting); gets reports the
// point lookups issued, one per value, matching LookupT's accounting.
func (m *Manager) LookupManyT(t *obs.Trace, name string, vs []relation.Value) (outs [][]relation.Tuple, gets int, err error) {
	if len(vs) == 0 {
		return nil, 0, nil
	}
	m.mu.RLock()
	d, ok := m.defs[name]
	m.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("index: unknown index %q", name)
	}
	reqs := make([]kv.GetRequest, len(vs))
	for i, v := range vs {
		key := postingKey(d.id, v)
		reqs[i] = kv.GetRequest{Route: key, Key: key}
	}
	res := m.cluster.GetManyRouted(t.KVCounters(), reqs)
	if t != nil {
		// Span annotation: how the batch's posting gets spread over the
		// storage nodes (the batch pays one round trip per non-empty slot).
		perNode := make([]int64, m.cluster.NodeCount())
		for _, r := range reqs {
			perNode[m.cluster.NodeFor(r.Route)]++
		}
		t.AnnotateNodes(perNode, nil)
	}
	width := len(d.Key)
	outs = make([][]relation.Tuple, len(vs))
	for i, r := range res {
		if !r.OK {
			continue
		}
		t.CountPostings(1)
		off := 0
		for off < len(r.Value) {
			tup, n, err := relation.DecodeTuple(r.Value[off:], width)
			if err != nil {
				return nil, len(vs), fmt.Errorf("index: %s: corrupt posting: %v", name, err)
			}
			outs[i] = append(outs[i], tup)
			off += n
		}
	}
	return outs, len(vs), nil
}

// Range returns the postings of every indexed value within the bounds, as
// parallel slices: vals[i] is the indexed value that posted block key
// keys[i]. A nil lo (hi) leaves that side unbounded; loIncl/hiIncl select
// closed or open ends. Postings are stored in encoded (memcmp) value order,
// so the read is ONE ordered cluster walk bounded to the index prefix with
// encoded-value fences — the engines seek to lo and stop past hi, visiting
// only the posting lists the range matches, never the whole posting space.
// Block keys are deduplicated and the result is sorted by (value, block
// key) in encoded order, so callers see one deterministic merged posting
// regardless of how the key space is sharded. scanned reports the number of
// posting lists visited (the walk's scan steps).
func (m *Manager) Range(name string, lo, hi *relation.Value, loIncl, hiIncl bool) (vals []relation.Value, keys []relation.Tuple, scanned int, err error) {
	return m.RangeLimitT(nil, name, lo, hi, loIncl, hiIncl, -1)
}

// RangeLimit is Range bounded to the first limit postings in (value, block
// key) order; a negative limit is unbounded, a zero limit returns nothing.
// The merge is streaming: each storage node walks its slice of the posting
// key space in ascending order and stops as soon as it alone has yielded
// limit entries — since a node's walk is ordered, no later posting list on
// it can displace an already-collected entry from the global first limit.
// A bound LIMIT k therefore costs O(k) scan steps per node, not O(range):
// the walk never visits the posting lists past the ones the answer needs.
func (m *Manager) RangeLimit(name string, lo, hi *relation.Value, loIncl, hiIncl bool, limit int) (vals []relation.Value, keys []relation.Tuple, scanned int, err error) {
	return m.RangeLimitT(nil, name, lo, hi, loIncl, hiIncl, limit)
}

// RangeLimitT is RangeLimit with a per-statement trace sink (nil
// untraced): scan steps count into the trace's kv counters and each
// decoded posting list into its posting-read counter.
//
// Placement: the logical plan is "the posting window [lo, hi] of this
// index"; how it fans out is decided here. One node walks it inline; more
// scatter it as one ordered pipeline per node (kv.RangeScatterT) whose
// streams an ascending heap merge recombines — each posting key lives on
// exactly one node and per-node streams ascend, so popping the smallest
// head IS the global walk, while every node's seek round trip and engine
// walk overlaps the others. Block-key dedup happens at the merge point in
// global (value, block key) order, so the kept posting of a block key
// listed under several in-range values is the same whatever the node
// count or shard layout. The value encoding is prefix-free, so per-key
// merge order equals the (value, block key) concatenated encoded order
// and no post-sort is needed.
func (m *Manager) RangeLimitT(t *obs.Trace, name string, lo, hi *relation.Value, loIncl, hiIncl bool, limit int) (vals []relation.Value, keys []relation.Tuple, scanned int, err error) {
	m.mu.RLock()
	d, ok := m.defs[name]
	m.mu.RUnlock()
	if !ok {
		return nil, nil, 0, fmt.Errorf("index: unknown index %q", name)
	}
	if limit == 0 {
		return nil, nil, 0, nil
	}
	pfx := prefix(d.id)
	var loKey, hiKey []byte
	if lo != nil {
		loKey = postingKey(d.id, *lo)
	}
	if hi != nil {
		hiKey = postingKey(d.id, *hi)
	}
	width := len(d.Key)

	// Open bounds: the fences are inclusive at the byte level, so an
	// excluded endpoint shows up as its exact posting key and is skipped.
	excluded := func(k []byte) bool {
		return (!loIncl && loKey != nil && bytes.Equal(k, loKey)) ||
			(!hiIncl && hiKey != nil && bytes.Equal(k, hiKey))
	}

	type entry struct {
		val relation.Value
		key relation.Tuple
	}
	var entries []entry
	seen := make(map[string]bool)
	var scanErr error
	// process consumes one posting list in global key order; entries come
	// out already globally ordered. Returns false to stop the walk —
	// mid-list once the limit is reached: later postings of the list are
	// larger in the global order, so none can belong to the answer.
	process := func(k, v []byte) bool {
		if excluded(k) {
			return true
		}
		val, _, err := relation.DecodeValue(k[len(pfx):])
		if err != nil {
			scanErr = fmt.Errorf("index: %s: corrupt posting key: %v", name, err)
			return false
		}
		lst, err := splitPostings(v, width)
		if err != nil {
			scanErr = fmt.Errorf("index: %s: %v", name, err)
			return false
		}
		scanned++
		for _, pk := range lst {
			if seen[string(pk)] {
				continue
			}
			seen[string(pk)] = true
			tup, _, err := relation.DecodeTuple(pk, width)
			if err != nil {
				scanErr = fmt.Errorf("index: %s: corrupt posting: %v", name, err)
				return false
			}
			entries = append(entries, entry{val: val, key: tup})
			if limit >= 0 && len(entries) >= limit {
				return false
			}
		}
		return true
	}

	if m.cluster.NodeCount() == 1 {
		m.cluster.ScanRangeNodeT(t.KVCounters(), 0, pfx, loKey, hiKey, process)
		if t != nil {
			t.AnnotateNodes([]int64{int64(scanned)}, nil)
		}
	} else {
		// Producer-side LIMIT cut: a node stops after yielding limit
		// entries net of its own duplicates. Sound: an entry that survives
		// the global dedup survives its node's self-dedup too, so anything
		// in the global first limit sits within the first limit
		// self-deduped entries of its node — the cut keeps every candidate
		// while holding each node's scan cost at O(limit), not O(range),
		// deterministically (not subject to cancellation timing).
		var cut func(node int, k, v []byte) bool
		if limit > 0 {
			counts := make([]int, m.cluster.NodeCount())
			seenNode := make([]map[string]bool, m.cluster.NodeCount())
			for i := range seenNode {
				seenNode[i] = make(map[string]bool)
			}
			cut = func(node int, k, v []byte) bool {
				if excluded(k) {
					return true
				}
				lst, err := splitPostings(v, width)
				if err != nil {
					return false // the merge surfaces the error when it gets here
				}
				for _, pk := range lst {
					if !seenNode[node][string(pk)] {
						seenNode[node][string(pk)] = true
						counts[node]++
					}
				}
				return counts[node] < limit
			}
		}
		sc := m.cluster.RangeScatterT(t.KVCounters(), pfx, loKey, hiKey, cut)
		// Per-node posting-list counts are taken at the merge point (the
		// global walk the consumer actually processed), so they are as
		// deterministic as scanned itself.
		perNode := make([]int64, m.cluster.NodeCount())
		mergeRangeStreams(sc, func(node int, k, v []byte) bool {
			before := scanned
			ok := process(k, v)
			perNode[node] += int64(scanned - before)
			return ok
		})
		if t != nil {
			t.AnnotateNodes(perNode, nil)
		}
	}
	if scanErr != nil {
		return nil, nil, scanned, scanErr
	}
	t.CountPostings(scanned)
	vals = make([]relation.Value, len(entries))
	keys = make([]relation.Tuple, len(entries))
	for i, e := range entries {
		vals[i] = e.val
		keys[i] = e.key
	}
	return vals, keys, scanned, nil
}

// mergeRangeStreams recombines a range scatter's per-node ordered streams
// into one globally key-ordered walk: pop the smallest head among the live
// streams, refill that stream, repeat. Node counts are small, so a linear
// min over stream heads beats a heap. fn receives the node each pair came
// from so callers can account fan-out. Always cancels the scatter before
// returning so an early stop aborts the in-flight node walks.
func mergeRangeStreams(sc *kv.RangeScatter, fn func(node int, k, v []byte) bool) {
	defer sc.Cancel()
	chunks := make([][]kv.Pair, len(sc.Streams))
	at := make([]int, len(sc.Streams))
	live := make([]bool, len(sc.Streams))
	// refill ensures stream i has a head pair, blocking on its channel;
	// reports false once the stream is exhausted.
	refill := func(i int) bool {
		for at[i] >= len(chunks[i]) {
			c, ok := <-sc.Streams[i].C
			if !ok {
				return false
			}
			chunks[i], at[i] = c, 0
		}
		return true
	}
	for i := range sc.Streams {
		live[i] = refill(i)
	}
	for {
		min := -1
		for i := range live {
			if live[i] && (min < 0 || bytes.Compare(chunks[i][at[i]].Key, chunks[min][at[min]].Key) < 0) {
				min = i
			}
		}
		if min < 0 {
			return
		}
		p := chunks[min][at[min]]
		at[min]++
		if !fn(min, p.Key, p.Value) {
			return
		}
		live[min] = refill(min)
	}
}

// IndexOn reports the index covering rel(attr): its name and the block-key
// attributes its postings hold. It implements the planner's catalog
// interface (core.IndexCatalog).
func (m *Manager) IndexOn(rel, attr string) (string, []string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	name, ok := m.byAttr[attrKey(rel, attr)]
	if !ok {
		return "", nil, false
	}
	return name, append([]string{}, m.defs[name].Key...), true
}

// AvgPostings estimates the posting-list length of one lookup against the
// named index — the planner's analogue of a block-degree statistic.
func (m *Manager) AvgPostings(name string) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st, ok := m.stats[name]
	if !ok || st.Entries == 0 {
		return 1
	}
	n := st.Postings / st.Entries
	if n < 1 {
		n = 1
	}
	return n
}

// Shape returns the entry and posting counts of the named index — the
// planner's statistics for range-selectivity estimates (range fraction ×
// average posting). It implements core.IndexCatalog.
func (m *Manager) Shape(name string) (entries, postings int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if st, ok := m.stats[name]; ok {
		return st.Entries, st.Postings
	}
	return 0, 0
}

// ValueBounds returns the smallest and largest value currently indexed by
// the named index — the per-index min/max statistic the planner uses to
// tighten range-selectivity estimates for literal bounds. It implements
// core.IndexCatalog; ok is false for unknown or empty indexes.
func (m *Manager) ValueBounds(name string) (lo, hi relation.Value, ok bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st, found := m.stats[name]
	if !found {
		return relation.Value{}, relation.Value{}, false
	}
	return st.ValueBounds()
}

// MaxPostings returns the longest posting list of the named index; the
// boundedness check compares it against the degree bound.
func (m *Manager) MaxPostings(name string) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if st, ok := m.stats[name]; ok {
		return st.MaxPosting
	}
	return 0
}

// StatsOf snapshots the named index's statistics. The snapshot detaches the
// internal histogram and value list, which later maintenance keeps mutating.
func (m *Manager) StatsOf(name string) (Stats, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st, ok := m.stats[name]
	if !ok {
		return Stats{}, false
	}
	out := *st
	out.lens = nil
	out.vals = append([]valEntry{}, st.vals...)
	return out, true
}

// DefOf returns a copy of the named index's definition.
func (m *Manager) DefOf(name string) (Def, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.defs[name]
	if !ok {
		return Def{}, false
	}
	out := *d
	out.Key = append([]string{}, d.Key...)
	out.keyPos = append([]int{}, d.keyPos...)
	return out, true
}

// Names lists the defined indexes, sorted.
func (m *Manager) Names() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.defs))
	for n := range m.defs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Load rebuilds the catalog from the store: definitions come from the
// catalog pairs, statistics from a scan of each index's postings. It lets a
// fresh Manager over an existing cluster recover the indexes a previous one
// created.
func (m *Manager) Load(rels map[string]*relation.Schema) error {
	type rec struct {
		d *Def
	}
	var recs []rec
	var scanErr error
	m.cluster.Scan(prefix(catalogID), func(_, v []byte) bool {
		d, err := decodeCatalog(v)
		if err != nil {
			scanErr = err
			return false
		}
		recs = append(recs, rec{d: d})
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range recs {
		d := r.d
		schema, ok := rels[d.Rel]
		if !ok {
			return fmt.Errorf("index: catalog references unknown relation %q", d.Rel)
		}
		id := d.id
		if err := resolve(d, schema); err != nil {
			return err
		}
		d.id = id
		st := &Stats{}
		width := len(d.Key)
		pfx := prefix(d.id)
		var distinct []relation.Value
		m.cluster.Scan(pfx, func(k, v []byte) bool {
			lst, err := splitPostings(v, width)
			if err != nil {
				scanErr = err
				return false
			}
			val, _, err := relation.DecodeValue(k[len(pfx):])
			if err != nil {
				scanErr = err
				return false
			}
			st.Entries++
			st.Postings += len(lst)
			st.bump(0, len(lst))
			distinct = append(distinct, val)
			return true
		})
		st.setValues(distinct)
		if scanErr != nil {
			return scanErr
		}
		m.defs[d.Name] = d
		m.byAttr[attrKey(d.Rel, d.Attr)] = d.Name
		m.stats[d.Name] = st
		if d.id >= m.nextID {
			m.nextID = d.id + 1
		}
	}
	return nil
}

// splitPostings cuts a posting payload into its encoded block keys.
func splitPostings(b []byte, width int) ([][]byte, error) {
	var out [][]byte
	off := 0
	for off < len(b) {
		n, err := relation.SkipTuple(b[off:], width)
		if err != nil {
			return nil, err
		}
		out = append(out, b[off:off+n])
		off += n
	}
	return out, nil
}

// joinPostings concatenates encoded block keys into one posting payload.
func joinPostings(lst [][]byte) []byte {
	n := 0
	for _, p := range lst {
		n += len(p)
	}
	out := make([]byte, 0, n)
	for _, p := range lst {
		out = append(out, p...)
	}
	return out
}

// encodeCatalog renders a definition as a catalog value: rel, attr, id,
// then the block-key attributes.
func encodeCatalog(d *Def) []byte {
	t := relation.Tuple{
		relation.String(d.Rel),
		relation.String(d.Attr),
		relation.Int(int64(d.id)),
	}
	for _, k := range d.Key {
		t = append(t, relation.String(k))
	}
	return relation.AppendTuple(relation.EncodeTuple(relation.Tuple{relation.String(d.Name)}), t)
}

// decodeCatalog parses a catalog value.
func decodeCatalog(b []byte) (*Def, error) {
	t, err := relation.DecodeAll(b)
	if err != nil {
		return nil, fmt.Errorf("index: corrupt catalog entry: %v", err)
	}
	if len(t) < 4 {
		return nil, fmt.Errorf("index: short catalog entry")
	}
	d := &Def{Name: t[0].Str, Rel: t[1].Str, Attr: t[2].Str, id: uint32(t[3].Int)}
	for _, v := range t[4:] {
		d.Key = append(d.Key, v.Str)
	}
	return d, nil
}

package index

import (
	"fmt"
	"testing"

	"zidian/internal/kv"
	"zidian/internal/relation"
)

func itemSchema(t *testing.T) *relation.Schema {
	t.Helper()
	return relation.MustSchema("ITEM", []relation.Attr{
		{Name: "id", Kind: relation.KindInt},
		{Name: "sku", Kind: relation.KindString},
		{Name: "qty", Kind: relation.KindInt},
	}, []string{"id"})
}

func itemTuples(n int) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		out[i] = relation.Tuple{
			relation.Int(int64(i)),
			relation.String(fmt.Sprintf("S%02d", i%10)),
			relation.Int(int64(i % 5)),
		}
	}
	return out
}

func lookupIDs(t *testing.T, m *Manager, name string, v relation.Value) []int64 {
	t.Helper()
	keys, gets, err := m.Lookup(name, v)
	if err != nil {
		t.Fatal(err)
	}
	if gets != 1 {
		t.Fatalf("lookup issued %d gets, want 1", gets)
	}
	out := make([]int64, len(keys))
	for i, k := range keys {
		out[i] = k[0].Int
	}
	return out
}

func TestCreateBackfillLookup(t *testing.T) {
	c := kv.NewCluster(kv.EngineHash, 3)
	m := NewManager(c)
	schema := itemSchema(t)
	n, err := m.Create("ix_sku", "ITEM", "sku", schema, itemTuples(40))
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("backfilled %d, want 40", n)
	}
	ids := lookupIDs(t, m, "ix_sku", relation.String("S03"))
	if len(ids) != 4 {
		t.Fatalf("posting for S03 = %v, want 4 ids", ids)
	}
	for i, id := range ids {
		if id%10 != 3 {
			t.Fatalf("posting %d = %d, not a S03 item", i, id)
		}
		if i > 0 && ids[i-1] >= id {
			t.Fatalf("posting not sorted: %v", ids)
		}
	}
	if ids := lookupIDs(t, m, "ix_sku", relation.String("NOPE")); len(ids) != 0 {
		t.Fatalf("posting for absent value = %v", ids)
	}
	name, key, ok := m.IndexOn("ITEM", "sku")
	if !ok || name != "ix_sku" || len(key) != 1 || key[0] != "id" {
		t.Fatalf("IndexOn = %q %v %v", name, key, ok)
	}
	if _, _, ok := m.IndexOn("ITEM", "qty"); ok {
		t.Fatal("IndexOn reported an index that does not exist")
	}
	st, _ := m.StatsOf("ix_sku")
	if st.Entries != 10 || st.Postings != 40 || st.MaxPosting != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if m.AvgPostings("ix_sku") != 4 {
		t.Fatalf("avg postings = %d", m.AvgPostings("ix_sku"))
	}
}

func TestMaintenance(t *testing.T) {
	c := kv.NewCluster(kv.EngineHash, 2)
	m := NewManager(c)
	schema := itemSchema(t)
	if _, err := m.Create("ix_sku", "ITEM", "sku", schema, itemTuples(20)); err != nil {
		t.Fatal(err)
	}
	add := relation.Tuple{relation.Int(100), relation.String("S03"), relation.Int(1)}
	if err := m.Insert("ITEM", add); err != nil {
		t.Fatal(err)
	}
	if ids := lookupIDs(t, m, "ix_sku", relation.String("S03")); len(ids) != 3 || ids[2] != 100 {
		t.Fatalf("after insert: %v", ids)
	}
	// Duplicate insert of the same block key is a no-op.
	if err := m.Insert("ITEM", add); err != nil {
		t.Fatal(err)
	}
	if ids := lookupIDs(t, m, "ix_sku", relation.String("S03")); len(ids) != 3 {
		t.Fatalf("after duplicate insert: %v", ids)
	}
	if err := m.Delete("ITEM", add); err != nil {
		t.Fatal(err)
	}
	if ids := lookupIDs(t, m, "ix_sku", relation.String("S03")); len(ids) != 2 {
		t.Fatalf("after delete: %v", ids)
	}
	// Deleting the last posting of a value removes the pair entirely.
	for _, id := range []int64{4, 14} {
		if err := m.Delete("ITEM", relation.Tuple{relation.Int(id), relation.String("S04"), relation.Int(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if ids := lookupIDs(t, m, "ix_sku", relation.String("S04")); len(ids) != 0 {
		t.Fatalf("after draining S04: %v", ids)
	}
	st, _ := m.StatsOf("ix_sku")
	if st.Entries != 9 {
		t.Fatalf("entries after drain = %d, want 9", st.Entries)
	}
	// Maintenance on an unindexed relation is a no-op, not an error.
	if err := m.Insert("OTHER", relation.Tuple{relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
}

func TestDropRemovesPairs(t *testing.T) {
	c := kv.NewCluster(kv.EngineHash, 2)
	m := NewManager(c)
	base := c.Len()
	if _, err := m.Create("ix_sku", "ITEM", "sku", itemSchema(t), itemTuples(30)); err != nil {
		t.Fatal(err)
	}
	if c.Len() <= base {
		t.Fatal("create wrote no pairs")
	}
	if err := m.Drop("ix_sku"); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != base {
		t.Fatalf("pairs after drop = %d, want %d", got, base)
	}
	if _, _, ok := m.IndexOn("ITEM", "sku"); ok {
		t.Fatal("dropped index still in catalog")
	}
	if err := m.Drop("ix_sku"); err == nil {
		t.Fatal("double drop succeeded")
	}
	// The attribute is indexable again.
	if _, err := m.Create("ix_sku2", "ITEM", "sku", itemSchema(t), itemTuples(10)); err != nil {
		t.Fatal(err)
	}
}

func TestCreateValidation(t *testing.T) {
	m := NewManager(kv.NewCluster(kv.EngineHash, 1))
	schema := itemSchema(t)
	if _, err := m.Create("ix", "ITEM", "nope", schema, nil); err == nil {
		t.Fatal("indexing an unknown attribute succeeded")
	}
	if _, err := m.Create("ix", "ITEM", "sku", schema, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("ix", "ITEM", "qty", schema, nil); err == nil {
		t.Fatal("duplicate index name succeeded")
	}
	if _, err := m.Create("ix2", "ITEM", "sku", schema, nil); err == nil {
		t.Fatal("double-indexing one attribute succeeded")
	}
	nokey := relation.MustSchema("NOKEY", []relation.Attr{{Name: "a", Kind: relation.KindInt}}, nil)
	if _, err := m.Create("ix3", "NOKEY", "a", nokey, nil); err == nil {
		t.Fatal("indexing a keyless relation succeeded")
	}
}

// TestLoadRecoversCatalog checks the persistent-in-store property: a fresh
// Manager over the same cluster recovers definitions, postings and
// statistics from the catalog pairs.
func TestLoadRecoversCatalog(t *testing.T) {
	c := kv.NewCluster(kv.EngineHash, 3)
	m := NewManager(c)
	schema := itemSchema(t)
	if _, err := m.Create("ix_sku", "ITEM", "sku", schema, itemTuples(40)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("ix_qty", "ITEM", "qty", schema, itemTuples(40)); err != nil {
		t.Fatal(err)
	}

	m2 := NewManager(c)
	if err := m2.Load(map[string]*relation.Schema{"ITEM": schema}); err != nil {
		t.Fatal(err)
	}
	names := m2.Names()
	if len(names) != 2 || names[0] != "ix_qty" || names[1] != "ix_sku" {
		t.Fatalf("recovered names = %v", names)
	}
	if ids := lookupIDs(t, m2, "ix_sku", relation.String("S07")); len(ids) != 4 {
		t.Fatalf("recovered posting = %v", ids)
	}
	st, _ := m2.StatsOf("ix_qty")
	if st.Entries != 5 || st.Postings != 40 || st.MaxPosting != 8 {
		t.Fatalf("recovered stats = %+v", st)
	}
	// New ids must not collide with recovered ones: create after Load and
	// check both indexes still answer.
	if _, err := m2.Create("ix_more", "ITEM", "sku", schema, nil); err == nil {
		t.Fatal("re-indexing recovered attribute succeeded")
	}
	if err := m2.Drop("ix_sku"); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Create("ix_sku_v2", "ITEM", "sku", schema, itemTuples(10)); err != nil {
		t.Fatal(err)
	}
	if ids := lookupIDs(t, m2, "ix_qty", relation.Int(2)); len(ids) != 8 {
		t.Fatalf("ix_qty posting after churn = %v", ids)
	}
}

// rangeIDs runs a Range over ix_sku-style indexes and flattens the posted
// ids, checking vals/keys stay parallel.
func rangeIDs(t *testing.T, m *Manager, name string, lo, hi *relation.Value, loIncl, hiIncl bool) []int64 {
	t.Helper()
	vals, keys, _, err := m.Range(name, lo, hi, loIncl, hiIncl)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(keys) {
		t.Fatalf("Range returned %d vals, %d keys", len(vals), len(keys))
	}
	out := make([]int64, len(keys))
	for i, k := range keys {
		out[i] = k[0].Int
	}
	return out
}

// TestRangeOrderedWalk checks the ordered posting walk on every engine
// kind: bounds, inclusivity, unbounded sides, empty windows, and the
// deterministic (value, key) output order.
func TestRangeOrderedWalk(t *testing.T) {
	for _, kind := range []kv.EngineKind{kv.EngineHash, kv.EngineLSM, kv.EngineSorted} {
		t.Run(kind.String(), func(t *testing.T) {
			c := kv.NewCluster(kind, 3)
			m := NewManager(c)
			if _, err := m.Create("ix_sku", "ITEM", "sku", itemSchema(t), itemTuples(40)); err != nil {
				t.Fatal(err)
			}
			lo, hi := relation.String("S03"), relation.String("S05")

			// Closed range: S03, S04, S05 → 12 ids, each id%10 in [3,5].
			ids := rangeIDs(t, m, "ix_sku", &lo, &hi, true, true)
			if len(ids) != 12 {
				t.Fatalf("closed range ids = %v", ids)
			}
			for _, id := range ids {
				if id%10 < 3 || id%10 > 5 {
					t.Fatalf("id %d outside [S03, S05]", id)
				}
			}

			// Scan cost is the number of matched posting lists, not the
			// whole posting space.
			c.ResetMetrics()
			_, _, scanned, err := m.Range("ix_sku", &lo, &hi, true, true)
			if err != nil {
				t.Fatal(err)
			}
			if scanned != 3 {
				t.Fatalf("scanned %d posting lists, want 3", scanned)
			}
			if got := c.Metrics().ScanNexts; got != 3 {
				t.Fatalf("cluster scan steps = %d, want 3 (bounded walk)", got)
			}

			// Open ends exclude their boundary value.
			if ids := rangeIDs(t, m, "ix_sku", &lo, &hi, false, true); len(ids) != 8 {
				t.Fatalf("(S03, S05] ids = %v", ids)
			}
			if ids := rangeIDs(t, m, "ix_sku", &lo, &hi, true, false); len(ids) != 8 {
				t.Fatalf("[S03, S05) ids = %v", ids)
			}
			if ids := rangeIDs(t, m, "ix_sku", &lo, &hi, false, false); len(ids) != 4 {
				t.Fatalf("(S03, S05) ids = %v", ids)
			}

			// Unbounded sides.
			if ids := rangeIDs(t, m, "ix_sku", &lo, nil, true, true); len(ids) != 28 {
				t.Fatalf("[S03, +inf) ids = %v", ids)
			}
			if ids := rangeIDs(t, m, "ix_sku", nil, &hi, true, true); len(ids) != 24 {
				t.Fatalf("(-inf, S05] ids = %v", ids)
			}
			if ids := rangeIDs(t, m, "ix_sku", nil, nil, true, true); len(ids) != 40 {
				t.Fatalf("full range ids = %v", ids)
			}

			// Empty windows: inverted bounds and a gap between values.
			if ids := rangeIDs(t, m, "ix_sku", &hi, &lo, true, true); len(ids) != 0 {
				t.Fatalf("inverted range ids = %v", ids)
			}
			gapLo, gapHi := relation.String("S03a"), relation.String("S03z")
			if ids := rangeIDs(t, m, "ix_sku", &gapLo, &gapHi, true, true); len(ids) != 0 {
				t.Fatalf("gap range ids = %v", ids)
			}

			// Output is merged into encoded (value, key) order regardless of
			// sharding.
			vals, keys, _, err := m.Range("ix_sku", &lo, &hi, true, true)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(vals); i++ {
				if relation.Compare(vals[i-1], vals[i]) > 0 {
					t.Fatalf("values out of order at %d: %v", i, vals)
				}
				if relation.Compare(vals[i-1], vals[i]) == 0 && keys[i-1][0].Int >= keys[i][0].Int {
					t.Fatalf("keys out of order within value at %d", i)
				}
			}

			if _, _, _, err := m.Range("nope", &lo, &hi, true, true); err == nil {
				t.Fatal("Range on unknown index succeeded")
			}
		})
	}
}

// TestRangeSeesMaintenance: postings added and removed by incremental
// maintenance are visible to the ordered walk (including, on the sorted
// engine, writes still sitting in the unmerged buffer).
func TestRangeSeesMaintenance(t *testing.T) {
	c := kv.NewCluster(kv.EngineSorted, 2)
	m := NewManager(c)
	if _, err := m.Create("ix_sku", "ITEM", "sku", itemSchema(t), itemTuples(20)); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("ITEM", relation.Tuple{relation.Int(200), relation.String("S03x"), relation.Int(0)}); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("ITEM", relation.Tuple{relation.Int(4), relation.String("S04"), relation.Int(4)}); err != nil {
		t.Fatal(err)
	}
	lo, hi := relation.String("S03"), relation.String("S04")
	ids := rangeIDs(t, m, "ix_sku", &lo, &hi, true, true)
	// S03: {3, 13}, S03x: {200}, S04: {14} (4 deleted).
	want := map[int64]bool{3: true, 13: true, 200: true, 14: true}
	if len(ids) != len(want) {
		t.Fatalf("ids after maintenance = %v", ids)
	}
	for _, id := range ids {
		if !want[id] {
			t.Fatalf("unexpected id %d in %v", id, ids)
		}
	}
}

// TestMaxPostingDecay: the delete path must shrink MaxPosting once the
// longest list shrinks, so the planner's boundedness check recovers after a
// heavy-delete workload (pre-fix, MaxPosting only ever grew).
func TestMaxPostingDecay(t *testing.T) {
	c := kv.NewCluster(kv.EngineHash, 2)
	m := NewManager(c)
	schema := itemSchema(t)
	// One hot value with 30 postings, nine values with 1 each.
	var tuples []relation.Tuple
	for i := 0; i < 30; i++ {
		tuples = append(tuples, relation.Tuple{relation.Int(int64(i)), relation.String("HOT"), relation.Int(0)})
	}
	for i := 0; i < 9; i++ {
		tuples = append(tuples, relation.Tuple{relation.Int(int64(100 + i)), relation.String(fmt.Sprintf("C%d", i)), relation.Int(0)})
	}
	if _, err := m.Create("ix_sku", "ITEM", "sku", schema, tuples); err != nil {
		t.Fatal(err)
	}
	if got := m.MaxPostings("ix_sku"); got != 30 {
		t.Fatalf("MaxPostings = %d, want 30", got)
	}
	// Drain the hot value down to 2 postings.
	for i := 0; i < 28; i++ {
		if err := m.Delete("ITEM", relation.Tuple{relation.Int(int64(i)), relation.String("HOT"), relation.Int(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.MaxPostings("ix_sku"); got != 2 {
		t.Fatalf("MaxPostings after drain = %d, want 2 (stale ceiling not recomputed)", got)
	}
	st, _ := m.StatsOf("ix_sku")
	if st.Entries != 10 || st.Postings != 11 {
		t.Fatalf("stats after drain = %+v", st)
	}
	// Growth after decay re-raises it.
	for i := 0; i < 3; i++ {
		if err := m.Insert("ITEM", relation.Tuple{relation.Int(int64(300 + i)), relation.String("C0"), relation.Int(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.MaxPostings("ix_sku"); got != 4 {
		t.Fatalf("MaxPostings after regrowth = %d, want 4", got)
	}
	// Deleting a non-longest list must not trigger a recompute visible as a
	// wrong maximum.
	if err := m.Delete("ITEM", relation.Tuple{relation.Int(101), relation.String("C1"), relation.Int(0)}); err != nil {
		t.Fatal(err)
	}
	if got := m.MaxPostings("ix_sku"); got != 4 {
		t.Fatalf("MaxPostings after unrelated delete = %d, want 4", got)
	}
}

package index

import (
	"fmt"
	"testing"

	"zidian/internal/kv"
	"zidian/internal/relation"
)

func itemSchema(t *testing.T) *relation.Schema {
	t.Helper()
	return relation.MustSchema("ITEM", []relation.Attr{
		{Name: "id", Kind: relation.KindInt},
		{Name: "sku", Kind: relation.KindString},
		{Name: "qty", Kind: relation.KindInt},
	}, []string{"id"})
}

func itemTuples(n int) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		out[i] = relation.Tuple{
			relation.Int(int64(i)),
			relation.String(fmt.Sprintf("S%02d", i%10)),
			relation.Int(int64(i % 5)),
		}
	}
	return out
}

func lookupIDs(t *testing.T, m *Manager, name string, v relation.Value) []int64 {
	t.Helper()
	keys, gets, err := m.Lookup(name, v)
	if err != nil {
		t.Fatal(err)
	}
	if gets != 1 {
		t.Fatalf("lookup issued %d gets, want 1", gets)
	}
	out := make([]int64, len(keys))
	for i, k := range keys {
		out[i] = k[0].Int
	}
	return out
}

func TestCreateBackfillLookup(t *testing.T) {
	c := kv.NewCluster(kv.EngineHash, 3)
	m := NewManager(c)
	schema := itemSchema(t)
	n, err := m.Create("ix_sku", "ITEM", "sku", schema, itemTuples(40))
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("backfilled %d, want 40", n)
	}
	ids := lookupIDs(t, m, "ix_sku", relation.String("S03"))
	if len(ids) != 4 {
		t.Fatalf("posting for S03 = %v, want 4 ids", ids)
	}
	for i, id := range ids {
		if id%10 != 3 {
			t.Fatalf("posting %d = %d, not a S03 item", i, id)
		}
		if i > 0 && ids[i-1] >= id {
			t.Fatalf("posting not sorted: %v", ids)
		}
	}
	if ids := lookupIDs(t, m, "ix_sku", relation.String("NOPE")); len(ids) != 0 {
		t.Fatalf("posting for absent value = %v", ids)
	}
	name, key, ok := m.IndexOn("ITEM", "sku")
	if !ok || name != "ix_sku" || len(key) != 1 || key[0] != "id" {
		t.Fatalf("IndexOn = %q %v %v", name, key, ok)
	}
	if _, _, ok := m.IndexOn("ITEM", "qty"); ok {
		t.Fatal("IndexOn reported an index that does not exist")
	}
	st, _ := m.StatsOf("ix_sku")
	if st.Entries != 10 || st.Postings != 40 || st.MaxPosting != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if m.AvgPostings("ix_sku") != 4 {
		t.Fatalf("avg postings = %d", m.AvgPostings("ix_sku"))
	}
}

func TestMaintenance(t *testing.T) {
	c := kv.NewCluster(kv.EngineHash, 2)
	m := NewManager(c)
	schema := itemSchema(t)
	if _, err := m.Create("ix_sku", "ITEM", "sku", schema, itemTuples(20)); err != nil {
		t.Fatal(err)
	}
	add := relation.Tuple{relation.Int(100), relation.String("S03"), relation.Int(1)}
	if err := m.Insert("ITEM", add); err != nil {
		t.Fatal(err)
	}
	if ids := lookupIDs(t, m, "ix_sku", relation.String("S03")); len(ids) != 3 || ids[2] != 100 {
		t.Fatalf("after insert: %v", ids)
	}
	// Duplicate insert of the same block key is a no-op.
	if err := m.Insert("ITEM", add); err != nil {
		t.Fatal(err)
	}
	if ids := lookupIDs(t, m, "ix_sku", relation.String("S03")); len(ids) != 3 {
		t.Fatalf("after duplicate insert: %v", ids)
	}
	if err := m.Delete("ITEM", add); err != nil {
		t.Fatal(err)
	}
	if ids := lookupIDs(t, m, "ix_sku", relation.String("S03")); len(ids) != 2 {
		t.Fatalf("after delete: %v", ids)
	}
	// Deleting the last posting of a value removes the pair entirely.
	for _, id := range []int64{4, 14} {
		if err := m.Delete("ITEM", relation.Tuple{relation.Int(id), relation.String("S04"), relation.Int(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if ids := lookupIDs(t, m, "ix_sku", relation.String("S04")); len(ids) != 0 {
		t.Fatalf("after draining S04: %v", ids)
	}
	st, _ := m.StatsOf("ix_sku")
	if st.Entries != 9 {
		t.Fatalf("entries after drain = %d, want 9", st.Entries)
	}
	// Maintenance on an unindexed relation is a no-op, not an error.
	if err := m.Insert("OTHER", relation.Tuple{relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
}

func TestDropRemovesPairs(t *testing.T) {
	c := kv.NewCluster(kv.EngineHash, 2)
	m := NewManager(c)
	base := c.Len()
	if _, err := m.Create("ix_sku", "ITEM", "sku", itemSchema(t), itemTuples(30)); err != nil {
		t.Fatal(err)
	}
	if c.Len() <= base {
		t.Fatal("create wrote no pairs")
	}
	if err := m.Drop("ix_sku"); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != base {
		t.Fatalf("pairs after drop = %d, want %d", got, base)
	}
	if _, _, ok := m.IndexOn("ITEM", "sku"); ok {
		t.Fatal("dropped index still in catalog")
	}
	if err := m.Drop("ix_sku"); err == nil {
		t.Fatal("double drop succeeded")
	}
	// The attribute is indexable again.
	if _, err := m.Create("ix_sku2", "ITEM", "sku", itemSchema(t), itemTuples(10)); err != nil {
		t.Fatal(err)
	}
}

func TestCreateValidation(t *testing.T) {
	m := NewManager(kv.NewCluster(kv.EngineHash, 1))
	schema := itemSchema(t)
	if _, err := m.Create("ix", "ITEM", "nope", schema, nil); err == nil {
		t.Fatal("indexing an unknown attribute succeeded")
	}
	if _, err := m.Create("ix", "ITEM", "sku", schema, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("ix", "ITEM", "qty", schema, nil); err == nil {
		t.Fatal("duplicate index name succeeded")
	}
	if _, err := m.Create("ix2", "ITEM", "sku", schema, nil); err == nil {
		t.Fatal("double-indexing one attribute succeeded")
	}
	nokey := relation.MustSchema("NOKEY", []relation.Attr{{Name: "a", Kind: relation.KindInt}}, nil)
	if _, err := m.Create("ix3", "NOKEY", "a", nokey, nil); err == nil {
		t.Fatal("indexing a keyless relation succeeded")
	}
}

// TestLoadRecoversCatalog checks the persistent-in-store property: a fresh
// Manager over the same cluster recovers definitions, postings and
// statistics from the catalog pairs.
func TestLoadRecoversCatalog(t *testing.T) {
	c := kv.NewCluster(kv.EngineHash, 3)
	m := NewManager(c)
	schema := itemSchema(t)
	if _, err := m.Create("ix_sku", "ITEM", "sku", schema, itemTuples(40)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("ix_qty", "ITEM", "qty", schema, itemTuples(40)); err != nil {
		t.Fatal(err)
	}

	m2 := NewManager(c)
	if err := m2.Load(map[string]*relation.Schema{"ITEM": schema}); err != nil {
		t.Fatal(err)
	}
	names := m2.Names()
	if len(names) != 2 || names[0] != "ix_qty" || names[1] != "ix_sku" {
		t.Fatalf("recovered names = %v", names)
	}
	if ids := lookupIDs(t, m2, "ix_sku", relation.String("S07")); len(ids) != 4 {
		t.Fatalf("recovered posting = %v", ids)
	}
	st, _ := m2.StatsOf("ix_qty")
	if st.Entries != 5 || st.Postings != 40 || st.MaxPosting != 8 {
		t.Fatalf("recovered stats = %+v", st)
	}
	// New ids must not collide with recovered ones: create after Load and
	// check both indexes still answer.
	if _, err := m2.Create("ix_more", "ITEM", "sku", schema, nil); err == nil {
		t.Fatal("re-indexing recovered attribute succeeded")
	}
	if err := m2.Drop("ix_sku"); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Create("ix_sku_v2", "ITEM", "sku", schema, itemTuples(10)); err != nil {
		t.Fatal(err)
	}
	if ids := lookupIDs(t, m2, "ix_qty", relation.Int(2)); len(ids) != 8 {
		t.Fatalf("ix_qty posting after churn = %v", ids)
	}
}

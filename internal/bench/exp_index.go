package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"zidian"
)

// ExpIndex measures the secondary-index subsystem end to end on a growing
// relation: a selective non-key predicate answered by a full scan versus an
// IndexLookup plan, plus the write-path overhead of maintaining the index.
// The machine-readable report goes to jsonPath (BENCH_index.json).
//
// The relation is built so the predicate stays equally selective at every
// size (each sku value is shared by a handful of items): the scan path
// degrades linearly with the relation while the index path stays flat, the
// regime where the SQL-vs-NoSQL comparison literature places NoSQL
// middlewares behind.
func ExpIndex(out io.Writer, cfg Config, jsonPath string) error {
	cfg = cfg.normalized()
	rep := &indexReport{Bench: "index", Nodes: cfg.Nodes, Workers: cfg.Workers}
	for _, base := range []int{2000, 10000, 50000} {
		rows := int(float64(base) * cfg.Scale)
		if rows < 100 {
			rows = 100
		}
		sz, err := expIndexAt(rows, cfg)
		if err != nil {
			return err
		}
		rep.Sizes = append(rep.Sizes, *sz)
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "rows\tscan µs\tindex µs\tspeedup\tscan ops\tindex ops\twrite ovhd\n")
	for _, s := range rep.Sizes {
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\t%.1f×\t%d\t%d\t%.2f×\n",
			s.Rows, s.ScanMicros, s.IndexMicros, s.Speedup, s.ScanOps, s.IndexOps, s.WriteOverhead)
	}
	w.Flush()

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return nil
}

// indexReport is the BENCH_index.json payload.
type indexReport struct {
	Bench   string            `json:"bench"`
	Nodes   int               `json:"nodes"`
	Workers int               `json:"workers"`
	Sizes   []indexSizeReport `json:"sizes"`
}

type indexSizeReport struct {
	Rows int `json:"rows"`
	// Matching is the number of tuples the selective predicate hits.
	Matching int `json:"matching"`
	// ScanMicros / IndexMicros are mean per-query latencies of the same
	// statement answered by the scan plan and the IndexLookup plan.
	ScanMicros  float64 `json:"scanMicros"`
	IndexMicros float64 `json:"indexMicros"`
	Speedup     float64 `json:"speedup"`
	// ScanOps / IndexOps count storage operations (gets + scan steps) one
	// query issues under each plan.
	ScanOps  int64 `json:"scanOps"`
	IndexOps int64 `json:"indexOps"`
	// Plan is the EXPLAIN output of the index plan.
	Plan string `json:"plan"`
	// BackfillMicros is the CREATE INDEX cost over the loaded relation.
	BackfillMicros float64 `json:"backfillMicros"`
	// Write-path overhead of index maintenance: mean per-tuple insert cost
	// without and with the index, and their ratio.
	BaseWriteMicros    float64 `json:"baseWriteMicros"`
	IndexedWriteMicros float64 `json:"indexedWriteMicros"`
	WriteOverhead      float64 `json:"writeOverhead"`
}

// itemSKUFan is how many items share one sku value — the predicate's fixed
// selectivity.
const itemSKUFan = 4

func itemTuple(i int) zidian.Tuple {
	return zidian.Tuple{
		zidian.Int(int64(i)),
		zidian.String(fmt.Sprintf("SKU-%06d", i/itemSKUFan)),
		zidian.String(fmt.Sprintf("CAT-%02d", i%17)),
		zidian.Float(float64(100+i%900) / 10),
		zidian.Int(int64(1 + i%50)),
		zidian.Int(int64(i % 23)),
	}
}

func openItems(rows int, cfg Config) (*zidian.Instance, error) {
	return openItemsOn(rows, cfg, "hash")
}

// openItemsOn is openItems over a chosen kv engine kind; the range
// experiment sweeps all three.
func openItemsOn(rows int, cfg Config, engine string) (*zidian.Instance, error) {
	db := zidian.NewDatabase()
	schema := zidian.MustRelSchema("ITEM", []zidian.Attr{
		{Name: "item_id", Kind: zidian.KindInt},
		{Name: "sku", Kind: zidian.KindString},
		{Name: "category", Kind: zidian.KindString},
		{Name: "price", Kind: zidian.KindFloat},
		{Name: "qty", Kind: zidian.KindInt},
		{Name: "warehouse", Kind: zidian.KindInt},
	}, []string{"item_id"})
	rel := zidian.NewRelation(schema)
	for i := 0; i < rows; i++ {
		rel.MustInsert(itemTuple(i))
	}
	db.Add(rel)
	bv, err := zidian.NewBaaVSchema(db, zidian.KVSchema{
		Name: "item_full", Rel: "ITEM", Key: []string{"item_id"},
		Val: []string{"sku", "category", "price", "qty", "warehouse"},
	})
	if err != nil {
		return nil, err
	}
	return zidian.Open(db, bv, zidian.Options{Engine: engine, Nodes: cfg.Nodes, Workers: cfg.Workers})
}

func expIndexAt(rows int, cfg Config) (*indexSizeReport, error) {
	inst, err := openItems(rows, cfg)
	if err != nil {
		return nil, err
	}
	target := (rows / 2) / itemSKUFan // a sku from the middle of the relation
	query := fmt.Sprintf("select I.item_id, I.price, I.qty from ITEM I where I.sku = 'SKU-%06d'", target)
	const repeats = 12
	sz := &indexSizeReport{Rows: rows}

	// Write-path baseline before the index exists: insert fresh tuples,
	// then delete them to restore the dataset. One untimed pass first so
	// the measured passes (with and without index) both run warm.
	writes := rows / 10
	if writes < 50 {
		writes = 50
	}
	if writes > 2000 {
		writes = 2000
	}
	if _, err := timeWrites(inst, rows, writes); err != nil {
		return nil, err
	}
	sz.BaseWriteMicros, err = timeWrites(inst, rows, writes)
	if err != nil {
		return nil, err
	}

	scanRes, scanMicros, scanOps, err := timeQuery(inst, query, repeats)
	if err != nil {
		return nil, err
	}
	sz.ScanMicros, sz.ScanOps = scanMicros, scanOps
	sz.Matching = len(scanRes.Rows)

	t0 := time.Now()
	if _, err := inst.Exec("create index ix_item_sku on ITEM(sku)"); err != nil {
		return nil, err
	}
	sz.BackfillMicros = float64(time.Since(t0).Microseconds())

	plan, err := inst.Explain(query)
	if err != nil {
		return nil, err
	}
	if !strings.Contains(plan, "IndexLookup") {
		return nil, fmt.Errorf("bench: index plan expected for %q, got %s", query, plan)
	}
	sz.Plan = plan

	idxRes, idxMicros, idxOps, err := timeQuery(inst, query, repeats)
	if err != nil {
		return nil, err
	}
	sz.IndexMicros, sz.IndexOps = idxMicros, idxOps
	if err := sameRows(scanRes, idxRes); err != nil {
		return nil, fmt.Errorf("bench: scan/index answers diverge at %d rows: %v", rows, err)
	}
	if sz.IndexMicros > 0 {
		sz.Speedup = sz.ScanMicros / sz.IndexMicros
	}

	sz.IndexedWriteMicros, err = timeWrites(inst, rows, writes)
	if err != nil {
		return nil, err
	}
	if sz.BaseWriteMicros > 0 {
		sz.WriteOverhead = sz.IndexedWriteMicros / sz.BaseWriteMicros
	}
	return sz, nil
}

// timeQuery runs the statement repeatedly and reports the answer, the mean
// latency in microseconds, and the mean storage operations per run.
func timeQuery(inst *zidian.Instance, query string, repeats int) (*zidian.Result, float64, int64, error) {
	var res *zidian.Result
	before := inst.Store().Cluster.Metrics()
	t0 := time.Now()
	for i := 0; i < repeats; i++ {
		r, _, err := inst.Query(query)
		if err != nil {
			return nil, 0, 0, err
		}
		res = r
	}
	micros := float64(time.Since(t0).Microseconds()) / float64(repeats)
	delta := inst.Store().Cluster.Metrics().Sub(before)
	ops := (delta.Gets + delta.ScanNexts) / int64(repeats)
	return res, micros, ops, nil
}

// timeWrites inserts n fresh tuples (ids above the loaded range), deletes
// them again, and reports the mean per-insert latency in microseconds.
func timeWrites(inst *zidian.Instance, rows, n int) (float64, error) {
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if err := inst.Insert("ITEM", itemTuple(rows+i)); err != nil {
			return 0, err
		}
	}
	micros := float64(time.Since(t0).Microseconds()) / float64(n)
	for i := 0; i < n; i++ {
		if err := inst.Delete("ITEM", itemTuple(rows+i)); err != nil {
			return 0, err
		}
	}
	return micros, nil
}

// sameRows checks two answers are the same bag of rows (order-insensitive).
func sameRows(a, b *zidian.Result) error {
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("row counts %d vs %d", len(a.Rows), len(b.Rows))
	}
	key := func(rows []zidian.Tuple) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = r.String()
		}
		sort.Strings(out)
		return out
	}
	ka, kb := key(a.Rows), key(b.Rows)
	for i := range ka {
		if ka[i] != kb[i] {
			return fmt.Errorf("row %d: %s vs %s", i, ka[i], kb[i])
		}
	}
	return nil
}

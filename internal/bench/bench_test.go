package bench

import (
	"bytes"
	"strings"
	"testing"

	"zidian/internal/kv"
)

func tinyConfig() Config {
	return Config{Scale: 0.15, Seed: 7, Nodes: 4, Workers: 4}
}

func TestEnvBuildsAndPlans(t *testing.T) {
	env, err := NewEnv("mot", 0.2, 7, 4, kv.Profiles())
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Systems) != 3 {
		t.Fatalf("systems = %d", len(env.Systems))
	}
	for _, wq := range env.Workload.Queries {
		if env.Query(wq.Name) == nil || env.Plan(wq.Name) == nil {
			t.Fatalf("missing prepared query/plan for %s", wq.Name)
		}
	}
	if SystemLabel(kv.ProfileHStore, false) != "SoH" || SystemLabel(kv.ProfileCStore, true) != "SoCZidian" {
		t.Fatal("system labels")
	}
	if SystemLabel(kv.CostModel{Name: "x"}, false) != "x" {
		t.Fatal("unknown profile label")
	}
}

// TestZidianWinsOnScanFree asserts the paper's headline shape: for the
// scan-free suite, Zidian beats the baseline on simulated time, gets, and
// data accessed, on every system.
func TestZidianWinsOnScanFree(t *testing.T) {
	env, err := NewEnv("mot", 0.3, 7, 4, kv.Profiles())
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range env.Systems {
		base, err := env.RunSuite(sys, false, env.Workload.ScanFreeQueries(), 4)
		if err != nil {
			t.Fatal(err)
		}
		zid, err := env.RunSuite(sys, true, env.Workload.ScanFreeQueries(), 4)
		if err != nil {
			t.Fatal(err)
		}
		if zid.SimMS >= base.SimMS {
			t.Fatalf("%s: Zidian sim %.2fms !< baseline %.2fms", sys.Profile.Name, zid.SimMS, base.SimMS)
		}
		if zid.Gets >= base.Gets {
			t.Fatalf("%s: Zidian gets %d !< baseline %d", sys.Profile.Name, zid.Gets, base.Gets)
		}
		if zid.Data >= base.Data {
			t.Fatalf("%s: Zidian data %d !< baseline %d", sys.Profile.Name, zid.Data, base.Data)
		}
		if zid.CommMB >= base.CommMB {
			t.Fatalf("%s: Zidian comm %.3f !< baseline %.3f", sys.Profile.Name, zid.CommMB, base.CommMB)
		}
	}
}

func TestExp1CaseOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Exp1Case(&buf, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"SoH", "SoHZidian", "SoK", "SoC", "#get", "#data", "comm"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Exp1Case output missing %q:\n%s", frag, out)
		}
	}
}

func TestExp1OverallOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Exp1Overall(&buf, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"mot", "airca", "tpch", "SoKZidian"} {
		if !strings.Contains(buf.String(), frag) {
			t.Fatalf("Exp1Overall output missing %q:\n%s", frag, buf.String())
		}
	}
}

func TestExp2Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Exp2(&buf, tinyConfig(), "mot", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"s.f.", "non s.f.", "×1", "×2"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Exp2 output missing %q:\n%s", frag, out)
		}
	}
}

func TestExp3Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Exp3Workers(&buf, tinyConfig(), "mot", []int{2, 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "p\t") && !strings.Contains(buf.String(), "p ") {
		t.Fatalf("Exp3Workers output:\n%s", buf.String())
	}
	buf.Reset()
	if err := Exp3Data(&buf, tinyConfig(), "tpch", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "scale") {
		t.Fatalf("Exp3Data output:\n%s", buf.String())
	}
}

// TestExp4ThroughputShape asserts the paper's finding: Zidian improves read
// throughput and pays a modest write penalty.
func TestExp4ThroughputShape(t *testing.T) {
	env, err := NewEnv("mot", 0.3, 7, 4, kv.Profiles())
	if err != nil {
		t.Fatal(err)
	}
	results, err := measureThroughput(env, tinyConfig(), 300, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	for i := 0; i < len(results); i += 2 {
		base, zid := results[i], results[i+1]
		if zid.Read <= base.Read {
			t.Fatalf("%s: BaaV read throughput %.1f !> TaaV %.1f", zid.System, zid.Read, base.Read)
		}
		if zid.Write >= base.Write {
			t.Fatalf("%s: BaaV write throughput %.1f !< TaaV %.1f (read-modify-write)", zid.System, zid.Write, base.Write)
		}
		if zid.Write < base.Write/20 {
			t.Fatalf("%s: write penalty too extreme: %.1f vs %.1f", zid.System, zid.Write, base.Write)
		}
	}
}

func TestExp4HorizontalScales(t *testing.T) {
	var buf bytes.Buffer
	if err := Exp4Horizontal(&buf, tinyConfig(), []int{2, 8}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nodes") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestExp4ThroughputOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Exp4Throughput(&buf, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "read Tpms") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

// TestBoundedQueriesStableCost reproduces Exp-2's boundedness finding at
// the harness level: a bounded query's data access stays flat as |D| grows.
func TestBoundedQueriesStableCost(t *testing.T) {
	costAt := func(scale float64) int64 {
		env, err := NewEnv("mot", scale, 7, 4, []kv.CostModel{kv.ProfileHStore})
		if err != nil {
			t.Fatal(err)
		}
		r, err := env.RunQuery(env.Systems[0], true, "mq01_vehicle_tests", 1)
		if err != nil {
			t.Fatal(err)
		}
		return r.Data
	}
	small := costAt(0.3)
	big := costAt(1.2)
	if big > small*3 {
		t.Fatalf("bounded query data grew with |D|: %d -> %d", small, big)
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{}.normalized()
	if c.Scale != 1 || c.Nodes != 12 || c.Workers != 8 || c.Seed != 7 {
		t.Fatalf("normalized = %+v", c)
	}
	if DefaultConfig().Nodes != 12 {
		t.Fatal("default config")
	}
}

// TestHorizontalThroughputGrows asserts Exp-4's horizontal claim: with
// fixed per-node data, read throughput grows with the node count for both
// representations.
func TestHorizontalThroughputGrows(t *testing.T) {
	measure := func(nodes int) (float64, float64) {
		cfg := tinyConfig()
		cfg.Nodes = nodes
		env, err := NewEnv("mot", 0.2*float64(nodes)/4, 7, nodes, []kv.CostModel{kv.ProfileKStore})
		if err != nil {
			t.Fatal(err)
		}
		res, err := measureThroughput(env, cfg, 200, 200)
		if err != nil {
			t.Fatal(err)
		}
		return res[0].Read, res[1].Read // TaaV, BaaV
	}
	t4, b4 := measure(4)
	t12, b12 := measure(12)
	if t12 <= t4 || b12 <= b4 {
		t.Fatalf("throughput must grow with nodes: taav %f->%f, baav %f->%f", t4, t12, b4, b12)
	}
}

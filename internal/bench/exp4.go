package bench

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"zidian/internal/baav"
	"zidian/internal/kv"
	"zidian/internal/relation"
)

// Throughput is the Tpms (values processed per simulated millisecond across
// all storage nodes) of one system for one KV workload.
type Throughput struct {
	System string
	Read   float64
	Write  float64
}

// Exp4Throughput reproduces the KV-workload experiment: read throughput
// (bulk gets — one BaaV get retrieves a whole block, one TaaV get a single
// tuple) and write throughput (bulk puts — BaaV pays a read-modify-write)
// for every system with and without Zidian, on the MOT dataset.
func Exp4Throughput(out io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	env, err := NewEnv("mot", cfg.Scale*baseScale("mot"), cfg.Seed, cfg.Nodes, kv.Profiles())
	if err != nil {
		return err
	}
	results, err := measureThroughput(env, cfg, 500, 500)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Exp-4: KV workload throughput (Tpms, values per simulated ms, %d nodes)\n", cfg.Nodes)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "system\tread Tpms\twrite Tpms\n")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\n", r.System, r.Read, r.Write)
	}
	return w.Flush()
}

// measureThroughput runs nReads point reads and nWrites inserts against
// every system in the environment.
func measureThroughput(env *Env, cfg Config, nReads, nWrites int) ([]Throughput, error) {
	r := rand.New(rand.NewSource(cfg.Seed + 99))
	db := env.Workload.DB
	tests := db.Relation("TEST")
	vehicles := db.Relation("VEHICLE")
	if tests == nil || vehicles == nil {
		return nil, fmt.Errorf("bench: exp4 needs the MOT workload")
	}
	// Read keys: test primary keys for TaaV, vehicle ids (block keys of
	// test_by_vehicle) for BaaV.
	var testPKs, vehicleIDs []relation.Tuple
	for i := 0; i < nReads; i++ {
		t := tests.Tuples[r.Intn(len(tests.Tuples))]
		testPKs = append(testPKs, relation.Tuple{t[0]})
		v := vehicles.Tuples[r.Intn(len(vehicles.Tuples))]
		vehicleIDs = append(vehicleIDs, relation.Tuple{v[0]})
	}
	// Write payloads: fresh TEST tuples.
	fresh := make([]relation.Tuple, nWrites)
	nextID := int64(len(tests.Tuples)*100 + 1)
	for i := range fresh {
		v := vehicles.Tuples[r.Intn(len(vehicles.Tuples))]
		fresh[i] = relation.Tuple{
			relation.Int(nextID + int64(i)), v[0], relation.Int(int64(r.Intn(40))),
			relation.String("2011-06-01"), relation.String("PASS"), relation.Int(int64(r.Intn(90000))),
			relation.String("CLASS-4"), relation.Float(45), relation.Int(35),
			relation.Int(0), relation.Int(0), relation.Int(0), relation.Int(int64(r.Intn(500))),
			relation.String("MI"),
		}
	}

	var results []Throughput
	for _, sys := range env.Systems {
		// TaaV reads: one get per tuple.
		before := sys.Taav.Cluster.Metrics()
		values := int64(0)
		for _, pk := range testPKs {
			if t, ok, err := sys.Taav.Get("TEST", pk); err != nil {
				return nil, err
			} else if ok {
				values += int64(len(t))
			}
		}
		readTaav := tpms(sys.Profile, sys.Taav.Cluster.Metrics().Sub(before), env.Nodes, values)

		// TaaV writes.
		before = sys.Taav.Cluster.Metrics()
		for _, t := range fresh {
			if err := sys.Taav.Insert("TEST", t); err != nil {
				return nil, err
			}
		}
		writeTaav := tpms(sys.Profile, sys.Taav.Cluster.Metrics().Sub(before), env.Nodes, int64(nWrites*len(fresh[0])))

		// BaaV reads: one get per block.
		before = sys.Baav.Cluster.Metrics()
		values = 0
		for _, vid := range vehicleIDs {
			blk, _, _, err := sys.Baav.GetBlock("test_by_vehicle", vid)
			if err != nil {
				return nil, err
			}
			if blk != nil {
				sch := env.Workload.Schema.ByName("test_by_vehicle")
				values += blk.Rows() * int64(len(sch.Val))
			}
		}
		readBaav := tpms(sys.Profile, sys.Baav.Cluster.Metrics().Sub(before), env.Nodes, values)

		// BaaV writes: a single put(k, v) whose key already exists is a
		// read-modify-write of one block (the paper's write workload has
		// single-put semantics; full multi-schema maintenance is measured
		// by the maintenance tests, not here).
		before = sys.Baav.Cluster.Metrics()
		schemaT := env.Workload.Schema.ByName("test_by_vehicle")
		relT := env.Workload.DB.Schema("TEST")
		keyPos, _ := relT.Positions(schemaT.Key)
		valPos, _ := relT.Positions(schemaT.Val)
		for _, t := range fresh {
			key := t.Project(keyPos)
			blk, _, _, err := sys.Baav.GetBlock("test_by_vehicle", key)
			if err != nil {
				return nil, err
			}
			if blk == nil {
				blk = &baav.Block{}
			}
			blk.Add(t.Project(valPos), true)
			if err := sys.Baav.PutBlock("test_by_vehicle", key, blk); err != nil {
				return nil, err
			}
		}
		writeBaav := tpms(sys.Profile, sys.Baav.Cluster.Metrics().Sub(before), env.Nodes, int64(nWrites*len(fresh[0])))

		results = append(results,
			Throughput{System: SystemLabel(sys.Profile, false), Read: readTaav, Write: writeTaav},
			Throughput{System: SystemLabel(sys.Profile, true), Read: readBaav, Write: writeBaav},
		)
	}
	return results, nil
}

// tpms converts an operation delta into values-per-simulated-millisecond.
func tpms(profile kv.CostModel, delta kv.Snapshot, nodes int, values int64) float64 {
	us := profile.StorageUS(delta)/float64(nodes) +
		float64(delta.BytesRead+delta.BytesWritten)/1024*profile.ReadUSPerKB
	if us <= 0 {
		return 0
	}
	return float64(values) / (us / 1000)
}

// Exp4Horizontal reproduces the horizontal-scalability experiment: per-node
// data volume fixed, storage nodes varying (paper: 4..12), read and write
// Tpms should grow roughly linearly for all systems, with and without
// Zidian.
func Exp4Horizontal(out io.Writer, cfg Config, nodeCounts []int) error {
	cfg = cfg.normalized()
	if len(nodeCounts) == 0 {
		nodeCounts = []int{4, 8, 12}
	}
	fmt.Fprintf(out, "Exp-4: horizontal scalability (fixed per-node data, varying storage nodes)\n")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	header := false
	for _, nodes := range nodeCounts {
		sub := cfg
		sub.Nodes = nodes
		// Fixed data per node: total scale grows with the node count.
		env, err := NewEnv("mot", cfg.Scale*baseScale("mot")*float64(nodes)/8, cfg.Seed, nodes, kv.Profiles())
		if err != nil {
			return err
		}
		results, err := measureThroughput(env, sub, 400, 400)
		if err != nil {
			return err
		}
		if !header {
			var labels []string
			for _, r := range results {
				labels = append(labels, r.System+" rd", r.System+" wr")
			}
			fmt.Fprintf(w, "nodes\t%s\n", joinTab(labels))
			header = true
		}
		var cells []string
		for _, r := range results {
			cells = append(cells, fmt.Sprintf("%.1f", r.Read), fmt.Sprintf("%.1f", r.Write))
		}
		fmt.Fprintf(w, "%d\t%s\n", nodes, joinTab(cells))
	}
	return w.Flush()
}

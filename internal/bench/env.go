// Package bench implements the paper's experimental study (Section 9):
// environments that pair each of the three SQL-over-NoSQL systems (SoH,
// SoK, SoC — modelled by engine cost profiles) with a TaaV baseline store
// and a Zidian BaaV store, runners that execute workload queries under
// either system, and the four experiments that regenerate the paper's
// tables and figures.
package bench

import (
	"fmt"

	"zidian/internal/baav"
	"zidian/internal/core"
	"zidian/internal/kv"
	"zidian/internal/parallel"
	"zidian/internal/ra"
	"zidian/internal/taav"
	"zidian/internal/workload"
)

// System is one SQL-over-NoSQL deployment: a storage profile with both
// representations loaded.
type System struct {
	Profile kv.CostModel
	Taav    *taav.Store
	Baav    *baav.Store
}

// Env is a fully loaded experimental environment for one workload.
type Env struct {
	Workload *workload.Workload
	Checker  *core.Checker
	Systems  []*System
	Nodes    int

	queries map[string]*ra.Query
	plans   map[string]*core.PlanInfo
}

// SystemLabel names the paper's systems: SoH, SoK, SoC, with the Zidian
// suffix for the BaaV deployment.
func SystemLabel(profile kv.CostModel, zidian bool) string {
	var base string
	switch profile.Name {
	case "hstore":
		base = "SoH"
	case "kstore":
		base = "SoK"
	case "cstore":
		base = "SoC"
	default:
		base = profile.Name
	}
	if zidian {
		return base + "Zidian"
	}
	return base
}

// NewEnv generates the workload at the given scale and loads it into both
// representations for every profile.
func NewEnv(name string, scale float64, seed int64, nodes int, profiles []kv.CostModel) (*Env, error) {
	w, err := workload.Generate(name, workload.Spec{Scale: scale, Seed: seed})
	if err != nil {
		return nil, err
	}
	env := &Env{
		Workload: w,
		Checker:  core.NewChecker(w.Schema, baav.RelSchemas(w.DB)),
		Nodes:    nodes,
		queries:  make(map[string]*ra.Query),
		plans:    make(map[string]*core.PlanInfo),
	}
	for _, p := range profiles {
		sys := &System{Profile: p}
		sys.Taav, err = taav.Map(w.DB, kv.NewCluster(p.EngineKind(), nodes))
		if err != nil {
			return nil, err
		}
		sys.Baav, err = baav.Map(w.DB, w.Schema, kv.NewCluster(p.EngineKind(), nodes), baav.DefaultOptions())
		if err != nil {
			return nil, err
		}
		env.Systems = append(env.Systems, sys)
	}
	if len(env.Systems) > 0 {
		// All systems hold identical data; any store provides the planner's
		// cost statistics.
		env.Checker.WithStats(env.Systems[0].Baav)
	}
	for _, q := range w.Queries {
		bound, err := ra.Parse(q.SQL, w.DB)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %v", q.Name, err)
		}
		env.queries[q.Name] = bound
		info, err := env.Checker.Plan(bound)
		if err != nil {
			return nil, fmt.Errorf("bench: plan %s: %v", q.Name, err)
		}
		env.plans[q.Name] = info
	}
	return env, nil
}

// Query returns the bound form of a workload query.
func (e *Env) Query(name string) *ra.Query { return e.queries[name] }

// Plan returns the generated KBA plan of a workload query.
func (e *Env) Plan(name string) *core.PlanInfo { return e.plans[name] }

// Row is one measurement: the columns of the paper's Table 2.
type Row struct {
	System string
	Query  string
	WallMS float64
	// SimMS is the simulated cluster time from the system's cost profile —
	// the number the paper's absolute seconds correspond to.
	SimMS  float64
	Gets   int64
	Data   int64
	CommMB float64
}

// RunQuery executes one workload query on one system, under either Zidian
// (BaaV + KBA plan) or the TaaV baseline, with the given worker count.
func (e *Env) RunQuery(sys *System, zidian bool, queryName string, workers int) (Row, error) {
	row := Row{System: SystemLabel(sys.Profile, zidian), Query: queryName}
	q := e.queries[queryName]
	if q == nil {
		return row, fmt.Errorf("bench: unknown query %q", queryName)
	}
	if zidian {
		info := e.plans[queryName]
		before := sys.Baav.Cluster.Metrics()
		res, m, err := parallel.RunKBA(info, sys.Baav, workers)
		if err != nil {
			return row, err
		}
		_ = res
		delta := sys.Baav.Cluster.Metrics().Sub(before)
		row.WallMS = float64(m.Wall.Microseconds()) / 1000
		row.SimMS = sys.Profile.QueryUS(delta, m.ShuffleBytes, e.Nodes, workers) / 1000
		row.Gets = delta.Gets + delta.ScanNexts
		row.Data = m.DataValues
		row.CommMB = float64(m.FetchBytes+m.ShuffleBytes) / (1 << 20)
		return row, nil
	}
	before := sys.Taav.Cluster.Metrics()
	res, m, err := parallel.RunTaaV(q, sys.Taav, workers)
	if err != nil {
		return row, err
	}
	_ = res
	delta := sys.Taav.Cluster.Metrics().Sub(before)
	row.WallMS = float64(m.Wall.Microseconds()) / 1000
	row.SimMS = sys.Profile.QueryUS(delta, m.ShuffleBytes, e.Nodes, workers) / 1000
	// Under TaaV a full scan costs one get per tuple (Section 1).
	row.Gets = delta.Gets + delta.ScanNexts
	row.Data = m.DataValues
	row.CommMB = float64(m.FetchBytes+m.ShuffleBytes) / (1 << 20)
	return row, nil
}

// RunSuite averages a set of queries on one system.
func (e *Env) RunSuite(sys *System, zidian bool, queries []workload.Query, workers int) (Row, error) {
	avg := Row{System: SystemLabel(sys.Profile, zidian), Query: "avg"}
	if len(queries) == 0 {
		return avg, nil
	}
	for _, wq := range queries {
		r, err := e.RunQuery(sys, zidian, wq.Name, workers)
		if err != nil {
			return avg, fmt.Errorf("%s: %v", wq.Name, err)
		}
		avg.WallMS += r.WallMS
		avg.SimMS += r.SimMS
		avg.Gets += r.Gets
		avg.Data += r.Data
		avg.CommMB += r.CommMB
	}
	n := float64(len(queries))
	avg.WallMS /= n
	avg.SimMS /= n
	avg.Gets /= int64(len(queries))
	avg.Data /= int64(len(queries))
	avg.CommMB /= n
	return avg, nil
}

package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"zidian/internal/kv"
	"zidian/internal/workload"
)

// Config sets the shared experiment parameters.
type Config struct {
	Scale   float64 // workload scale multiplier (1.0 = laptop default)
	Seed    int64
	Nodes   int // storage nodes ("12 EC2 instances" in the paper)
	Workers int // SQL-layer workers (8 in most of the paper's runs)
}

// DefaultConfig mirrors the paper's setup at laptop scale.
func DefaultConfig() Config {
	return Config{Scale: 1.0, Seed: 7, Nodes: 12, Workers: 8}
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.Nodes <= 0 {
		c.Nodes = 12
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	return c
}

// baseScale tunes per-workload generation so every experiment runs in
// seconds at Scale = 1.
func baseScale(name string) float64 {
	switch name {
	case "tpch":
		return 1.0
	case "mot":
		return 1.5
	default: // airca
		return 1.0
	}
}

// Exp1Case reproduces Table 2: the Q1 case study (time, #data, #get, comm)
// for the three systems with and without Zidian.
func Exp1Case(out io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	env, err := NewEnv("tpch", cfg.Scale*baseScale("tpch"), cfg.Seed, cfg.Nodes, kv.Profiles())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Exp-1 case study (Table 2): paper Q1 (simplified TPC-H q11), %d workers\n", cfg.Workers)
	var rows []Row
	var labels []string
	for _, sys := range env.Systems {
		for _, zidian := range []bool{false, true} {
			r, err := env.RunQuery(sys, zidian, "tq09_important_stock", cfg.Workers)
			if err != nil {
				return err
			}
			rows = append(rows, r)
			labels = append(labels, r.System)
		}
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "\t%s\n", joinTab(labels))
	fmt.Fprintf(w, "time (ms, sim)\t%s\n", joinTabF(rows, func(r Row) string { return fmt.Sprintf("%.1f", r.SimMS) }))
	fmt.Fprintf(w, "time (ms, wall)\t%s\n", joinTabF(rows, func(r Row) string { return fmt.Sprintf("%.2f", r.WallMS) }))
	fmt.Fprintf(w, "#data\t%s\n", joinTabF(rows, func(r Row) string { return fmt.Sprintf("%.2g", float64(r.Data)) }))
	fmt.Fprintf(w, "#get\t%s\n", joinTabF(rows, func(r Row) string { return fmt.Sprintf("%.2g", float64(r.Gets)) }))
	fmt.Fprintf(w, "comm (MB)\t%s\n", joinTabF(rows, func(r Row) string { return fmt.Sprintf("%.3f", r.CommMB) }))
	return w.Flush()
}

// Exp1Overall reproduces Table 3: average evaluation time per workload for
// every system, with and without Zidian.
func Exp1Overall(out io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	fmt.Fprintf(out, "Exp-1 overall (Table 3): average time (ms, sim), %d workers\n", cfg.Workers)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	header := false
	for _, name := range []string{"mot", "airca", "tpch"} {
		env, err := NewEnv(name, cfg.Scale*baseScale(name), cfg.Seed, cfg.Nodes, kv.Profiles())
		if err != nil {
			return err
		}
		var cells []string
		var labels []string
		for _, sys := range env.Systems {
			for _, zidian := range []bool{false, true} {
				r, err := env.RunSuite(sys, zidian, env.Workload.Queries, cfg.Workers)
				if err != nil {
					return err
				}
				cells = append(cells, fmt.Sprintf("%.1f", r.SimMS))
				labels = append(labels, r.System)
			}
		}
		if !header {
			fmt.Fprintf(w, "\t%s\n", joinTab(labels))
			header = true
		}
		fmt.Fprintf(w, "%s\t%s\n", name, joinTab(cells))
	}
	return w.Flush()
}

// Exp2 reproduces Figure 3: scan impact with 1 worker, varying dataset
// scale, split into scan-free and non-scan-free query suites, for one
// workload ("mot" → Fig 3a/3b, "tpch" → Fig 3c/3d).
func Exp2(out io.Writer, cfg Config, name string, scales []float64) error {
	cfg = cfg.normalized()
	if len(scales) == 0 {
		scales = []float64{1, 2, 4, 8, 16}
	}
	fmt.Fprintf(out, "Exp-2 (Figure 3, %s): time (ms, sim), 1 worker, varying scale\n", name)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	header := false
	for _, scale := range scales {
		env, err := NewEnv(name, cfg.Scale*baseScale(name)*scale/4, cfg.Seed, cfg.Nodes, kv.Profiles())
		if err != nil {
			return err
		}
		suites := []struct {
			tag     string
			queries []workload.Query
		}{
			{"s.f.", env.Workload.ScanFreeQueries()},
			{"non s.f.", env.Workload.NonScanFreeQueries()},
		}
		var labels, cells []string
		for _, suite := range suites {
			for _, sys := range env.Systems {
				for _, zidian := range []bool{false, true} {
					r, err := env.RunSuite(sys, zidian, suite.queries, 1)
					if err != nil {
						return err
					}
					labels = append(labels, suite.tag+" "+r.System)
					cells = append(cells, fmt.Sprintf("%.1f", r.SimMS))
				}
			}
		}
		if !header {
			fmt.Fprintf(w, "scale\t%s\n", joinTab(labels))
			header = true
		}
		fmt.Fprintf(w, "×%g\t%s\n", scale, joinTab(cells))
	}
	return w.Flush()
}

// Exp3Workers reproduces Figures 4a–4d: time and communication while the
// number p of EC2 instances varies (paper: 4..12). Each instance is both a
// computing and a storage node, so p drives both layers.
func Exp3Workers(out io.Writer, cfg Config, name string, workers []int) error {
	cfg = cfg.normalized()
	if len(workers) == 0 {
		workers = []int{4, 6, 8, 10, 12}
	}
	fmt.Fprintf(out, "Exp-3 (Figure 4a–4d, %s): varying workers p\n", name)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	header := false
	for _, p := range workers {
		env, err := NewEnv(name, cfg.Scale*baseScale(name), cfg.Seed, p, kv.Profiles())
		if err != nil {
			return err
		}
		var labels, cells []string
		for _, sys := range env.Systems {
			for _, zidian := range []bool{false, true} {
				r, err := env.RunSuite(sys, zidian, env.Workload.Queries, p)
				if err != nil {
					return err
				}
				labels = append(labels, r.System+" ms", r.System+" MB")
				cells = append(cells, fmt.Sprintf("%.1f", r.SimMS), fmt.Sprintf("%.3f", r.CommMB))
			}
		}
		if !header {
			fmt.Fprintf(w, "p\t%s\n", joinTab(labels))
			header = true
		}
		fmt.Fprintf(w, "%d\t%s\n", p, joinTab(cells))
	}
	return w.Flush()
}

// Exp3Data reproduces Figures 4e–4h: time and communication while the
// dataset scale varies at a fixed worker count.
func Exp3Data(out io.Writer, cfg Config, name string, scales []float64) error {
	cfg = cfg.normalized()
	if len(scales) == 0 {
		scales = []float64{1, 2, 4, 8, 16}
	}
	fmt.Fprintf(out, "Exp-3 (Figure 4e–4h, %s): varying |D| at p=%d\n", name, cfg.Workers)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	header := false
	for _, scale := range scales {
		env, err := NewEnv(name, cfg.Scale*baseScale(name)*scale/4, cfg.Seed, cfg.Nodes, kv.Profiles())
		if err != nil {
			return err
		}
		var labels, cells []string
		for _, sys := range env.Systems {
			for _, zidian := range []bool{false, true} {
				r, err := env.RunSuite(sys, zidian, env.Workload.Queries, cfg.Workers)
				if err != nil {
					return err
				}
				labels = append(labels, r.System+" ms", r.System+" MB")
				cells = append(cells, fmt.Sprintf("%.1f", r.SimMS), fmt.Sprintf("%.3f", r.CommMB))
			}
		}
		if !header {
			fmt.Fprintf(w, "scale\t%s\n", joinTab(labels))
			header = true
		}
		fmt.Fprintf(w, "×%g\t%s\n", scale, joinTab(cells))
	}
	return w.Flush()
}

func joinTab(cells []string) string {
	out := ""
	for i, c := range cells {
		if i > 0 {
			out += "\t"
		}
		out += c
	}
	return out
}

func joinTabF(rows []Row, f func(Row) string) string {
	cells := make([]string, len(rows))
	for i, r := range rows {
		cells[i] = f(r)
	}
	return joinTab(cells)
}

package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Ablation(&buf, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"interleaved", "fetch-all", "compression", "stats headers", "full group-by", "threshold"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("ablation output missing %q:\n%s", frag, out)
		}
	}
}

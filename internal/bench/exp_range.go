package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"zidian"
	"zidian/internal/server"
	"zidian/internal/server/loadgen"
)

// ExpRange measures range predicates served by ordered posting scans
// end to end: for each of the three kv engine kinds and each relation size,
// a selectivity sweep of BETWEEN windows over the indexed sku attribute is
// answered by a full scan and by the IndexRange plan, and the two are
// compared on latency and storage operations. A final serving-layer phase
// drives parameterized BETWEEN windows with distinct bounds through an
// in-process server and records the plan-cache hit rate — one cached
// template must serve every window (the PR 3 rate). The machine-readable
// report goes to jsonPath (BENCH_range.json).
func ExpRange(out io.Writer, cfg Config, jsonPath string) error {
	cfg = cfg.normalized()
	rep := &rangeReport{Bench: "range", Nodes: cfg.Nodes, Workers: cfg.Workers}
	for _, engine := range []string{"hash", "lsm", "sorted"} {
		er := rangeEngineReport{Engine: engine}
		for _, base := range []int{2000, 10000, 50000} {
			rows := int(float64(base) * cfg.Scale)
			if rows < 400 {
				rows = 400
			}
			sz, err := expRangeAt(rows, cfg, engine)
			if err != nil {
				return err
			}
			er.Sizes = append(er.Sizes, *sz)
		}
		rep.Engines = append(rep.Engines, er)
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "engine\trows\trange%%\tmatch\tscan µs\trange µs\tspeedup\tscan ops\trange ops\n")
	for _, er := range rep.Engines {
		for _, sz := range er.Sizes {
			for _, sw := range sz.Sweeps {
				fmt.Fprintf(w, "%s\t%d\t%.0f%%\t%d\t%.0f\t%.0f\t%.1f×\t%d\t%d\n",
					er.Engine, sz.Rows, sw.FracPct, sw.Matching,
					sw.ScanMicros, sw.RangeMicros, sw.Speedup, sw.ScanOps, sw.RangeOps)
			}
		}
	}
	w.Flush()

	if err := expRangeCache(out, cfg, rep); err != nil {
		return err
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return nil
}

// rangeReport is the BENCH_range.json payload.
type rangeReport struct {
	Bench   string              `json:"bench"`
	Nodes   int                 `json:"nodes"`
	Workers int                 `json:"workers"`
	Engines []rangeEngineReport `json:"engines"`
	// ParamCacheHitRate is the plan-cache hit rate of the serving-layer
	// phase: distinct-bounds BETWEEN windows sent as `?` templates — only
	// template reuse can hit. ParamCacheHitRateInlined is the same workload
	// with bounds inlined into the SQL text (the no-template baseline).
	ParamCacheHitRate        float64 `json:"planCacheHitRateParamBounds"`
	ParamCacheHitRateInlined float64 `json:"planCacheHitRateInlinedBounds"`
}

type rangeEngineReport struct {
	Engine string            `json:"engine"`
	Sizes  []rangeSizeReport `json:"sizes"`
}

type rangeSizeReport struct {
	Rows   int                `json:"rows"`
	Sweeps []rangeSweepReport `json:"sweeps"`
	// Plan is the EXPLAIN output of the narrowest range's index plan.
	Plan string `json:"plan"`
}

type rangeSweepReport struct {
	// FracPct is the window width as a percentage of the sku value space.
	FracPct float64 `json:"fracPct"`
	// Matching is the number of rows the window selects.
	Matching int `json:"matching"`
	// ScanMicros / RangeMicros are mean per-query latencies of the same
	// statement answered by the full-scan plan and the IndexRange plan.
	ScanMicros  float64 `json:"scanMicros"`
	RangeMicros float64 `json:"rangeMicros"`
	Speedup     float64 `json:"speedup"`
	// ScanOps / RangeOps count storage operations (gets + scan steps) one
	// query issues under each plan.
	ScanOps  int64 `json:"scanOps"`
	RangeOps int64 `json:"rangeOps"`
}

// rangeSweepFracs are the window widths, as fractions of the sku space.
var rangeSweepFracs = []float64{0.01, 0.05, 0.20}

// rangeQueryAt renders the BETWEEN window of the given width centred in the
// sku space: skus run SKU-000000 .. SKU-00NNNN with fan itemSKUFan.
func rangeQueryAt(rows int, frac float64) string {
	skus := rows / itemSKUFan
	width := int(float64(skus) * frac)
	if width < 1 {
		width = 1
	}
	lo := skus/2 - width/2
	return fmt.Sprintf(
		"select I.item_id, I.price, I.qty from ITEM I where I.sku between 'SKU-%06d' and 'SKU-%06d'",
		lo, lo+width-1)
}

func expRangeAt(rows int, cfg Config, engine string) (*rangeSizeReport, error) {
	const repeats = 8
	sz := &rangeSizeReport{Rows: rows}

	// Full-scan phase: no index exists.
	scanInst, err := openItemsOn(rows, cfg, engine)
	if err != nil {
		return nil, err
	}
	scans := make([]*zidian.Result, len(rangeSweepFracs))
	for i, frac := range rangeSweepFracs {
		q := rangeQueryAt(rows, frac)
		res, micros, ops, err := timeQuery(scanInst, q, repeats)
		if err != nil {
			return nil, err
		}
		scans[i] = res
		sz.Sweeps = append(sz.Sweeps, rangeSweepReport{
			FracPct:    100 * frac,
			Matching:   len(res.Rows),
			ScanMicros: micros,
			ScanOps:    ops,
		})
	}

	// Index phase: same statements over the ordered posting scan.
	if _, err := scanInst.Exec("create index ix_item_sku on ITEM(sku)"); err != nil {
		return nil, err
	}
	for i, frac := range rangeSweepFracs {
		q := rangeQueryAt(rows, frac)
		plan, err := scanInst.Explain(q)
		if err != nil {
			return nil, err
		}
		if !strings.Contains(plan, "index-range") {
			return nil, fmt.Errorf("bench: index-range plan expected for %q on %s, got %s", q, engine, plan)
		}
		if i == 0 {
			sz.Plan = plan
		}
		res, micros, ops, err := timeQuery(scanInst, q, repeats)
		if err != nil {
			return nil, err
		}
		if err := sameRows(scans[i], res); err != nil {
			return nil, fmt.Errorf("bench: scan/range answers diverge at %d rows on %s: %v", rows, engine, err)
		}
		sw := &sz.Sweeps[i]
		sw.RangeMicros, sw.RangeOps = micros, ops
		if sw.RangeMicros > 0 {
			sw.Speedup = sw.ScanMicros / sw.RangeMicros
		}
	}
	return sz, nil
}

// expRangeCache is the serving-layer phase: an in-process server over the
// mot workload driven with the range mix, every request a distinct-bounds
// BETWEEN window, first inlined (each window a fresh statement, so the
// cache cannot hit) and then parameterized (one template per shape).
func expRangeCache(out io.Writer, cfg Config, rep *rangeReport) error {
	inst, _, err := server.OpenWorkload("mot", cfg.Scale, cfg.Seed, cfg.Nodes, cfg.Workers)
	if err != nil {
		return err
	}
	srv := server.New(inst, server.Config{
		MaxConcurrent: cfg.Workers * 2,
		QueueDepth:    256,
		QueueTimeout:  30 * time.Second,
	})
	tcpAddr, _, err := srv.Start("127.0.0.1:0", "")
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	templates, setup, err := loadgen.TemplatesMix("mot", "range")
	if err != nil {
		return err
	}
	inlined, err := loadgen.Run(loadgen.Options{
		Addr: tcpAddr, Clients: 32, Requests: 50,
		Templates: templates, Setup: setup,
		Seed: cfg.Seed, DistinctParams: true,
	})
	if err != nil {
		return err
	}
	parameterized, err := loadgen.Run(loadgen.Options{
		Addr: tcpAddr, Clients: 32, Requests: 50,
		Templates: templates, Setup: setup,
		Seed: cfg.Seed + 1, DistinctParams: true, Parameterized: true,
	})
	if err != nil {
		return err
	}
	rep.ParamCacheHitRateInlined = inlined.CacheHitRate
	rep.ParamCacheHitRate = parameterized.CacheHitRate
	fmt.Fprintf(out, "distinct-bounds hit rate: inlined %.1f%% → parameterized %.1f%%\n",
		100*inlined.CacheHitRate, 100*parameterized.CacheHitRate)
	return nil
}

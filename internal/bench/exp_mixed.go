package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"zidian/internal/server"
	"zidian/internal/server/loadgen"
)

// ExpMixed measures the serving layer under mixed read/write traffic: the
// multi-relation readwrite suite (point/chain/range reads across VEHICLE,
// TEST and OBSERVATION; INSERT/DELETE writes on TEST and OBSERVATION,
// including secondary-index posting maintenance) runs at several write
// fractions under three locking regimes:
//
//   - global: the legacy instance-wide write gate (Config.GlobalWriteLock) —
//     one writer stalls every statement in the instance;
//   - per-relation: read/write locks per relation — a writer stalls only its
//     own relation's readers;
//   - mvcc: snapshot reads over versioned blocks plus per-relation group
//     commit — writers never stall readers at all, and concurrent writers of
//     one relation fold into a single batched commit.
//
// The headline numbers are the throughput ratios between regimes, and how
// close the mvcc mixed-traffic throughput stays to the read-only phase.
//
// The cluster runs with an emulated per-operation storage latency
// (mixedStorageDelay), standing in for the network round trip every real
// SQL-over-NoSQL deployment pays per get — the wait the regimes differ in
// overlapping: a writer parked on a storage round trip blocks the whole
// instance under the global gate, its relation's readers under per-relation
// locks, and nobody under mvcc. Without it the in-process cluster is pure
// CPU and the comparison degenerates into a measurement of host core count.
//
// The global and per-relation cells also reproduce their eras' wire
// behavior (SetPerOpBatchDelay): before the group committer, every block
// put and posting read was its own RPC, so those cells charge the RTT per
// op, while the mvcc cell uses the batched per-node fan-out that arrived
// with it. The machine-readable report goes to jsonPath (BENCH_mixed.json).
func ExpMixed(out io.Writer, cfg Config, jsonPath string, clients, requests int) error {
	cfg = cfg.normalized()
	if clients <= 0 {
		clients = 32
	}
	if requests <= 0 {
		requests = 100
	}
	rep := &mixedReport{
		Bench: "mixed", Workload: "mot",
		Nodes: cfg.Nodes, Workers: cfg.Workers,
		Clients: clients, Requests: requests,
		CPUs:               runtime.NumCPU(),
		StorageDelayMicros: mixedStorageDelay.Microseconds(),
	}
	for _, frac := range []float64{0, 0.05, 0.20, 0.50} {
		ph := mixedPhase{WriteFraction: frac}
		for _, regime := range []string{"global", "per-relation", "mvcc"} {
			// Best of mixedCellReps runs per cell: on a small shared host
			// the CPU-bound cells lose throughput to scheduler and GC noise
			// — noise only ever subtracts — so the fastest run is the least
			// contaminated estimate of each regime's capacity.
			var run *loadgen.Report
			for rep := 0; rep < mixedCellReps; rep++ {
				r, err := expMixedRun(cfg, regime, frac, clients, requests)
				if err != nil {
					return err
				}
				if run == nil || r.QPS > run.QPS {
					run = r
				}
			}
			switch regime {
			case "global":
				ph.GlobalQPS, ph.GlobalErrors = run.QPS, run.Errors
				ph.GlobalP99Micros = run.Latency.P99
				ph.GlobalServerLatency = run.ServerLatency
			case "per-relation":
				ph.PerRelationQPS, ph.PerRelationErrors = run.QPS, run.Errors
				ph.PerRelationP99Micros = run.Latency.P99
				ph.PerRelationServerLatency = run.ServerLatency
			case "mvcc":
				ph.MVCCQPS, ph.MVCCErrors = run.QPS, run.Errors
				ph.MVCCP99Micros = run.Latency.P99
				ph.MVCCServerLatency = run.ServerLatency
				ph.Writes = run.Writes
			}
		}
		if ph.GlobalQPS > 0 {
			ph.Speedup = ph.PerRelationQPS / ph.GlobalQPS
		}
		if ph.PerRelationQPS > 0 {
			ph.MVCCSpeedup = ph.MVCCQPS / ph.PerRelationQPS
		}
		rep.Phases = append(rep.Phases, ph)
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "write%%\tglobal qps\tper-rel qps\tmvcc qps\tmvcc/per-rel\twrites\terrors\n")
	for _, ph := range rep.Phases {
		fmt.Fprintf(w, "%.0f%%\t%.0f\t%.0f\t%.0f\t%.2f×\t%d\t%d\n",
			100*ph.WriteFraction, ph.GlobalQPS, ph.PerRelationQPS, ph.MVCCQPS,
			ph.MVCCSpeedup, ph.Writes,
			ph.GlobalErrors+ph.PerRelationErrors+ph.MVCCErrors)
	}
	w.Flush()

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return nil
}

// mixedReport is the BENCH_mixed.json payload. CPUs records the host's
// parallelism: the regimes differ in how many statements may run at once, so
// on a single-CPU host (where the core serializes all statements regardless
// of locks) the qps columns measure alike, and the contrast grows with
// cores.
type mixedReport struct {
	Bench    string `json:"bench"`
	Workload string `json:"workload"`
	Nodes    int    `json:"nodes"`
	Workers  int    `json:"workers"`
	Clients  int    `json:"clients"`
	Requests int    `json:"requests"`
	CPUs     int    `json:"cpus"`
	// StorageDelayMicros is the emulated per-operation storage round trip
	// (kv.Cluster.SetOpDelay) the cells run under.
	StorageDelayMicros int64        `json:"storageDelayMicros"`
	Phases             []mixedPhase `json:"phases"`
}

// mixedStorageDelay emulates a same-datacenter KV round trip per storage
// operation. 200µs is conservative for the Cassandra/HBase deployments the
// paper benchmarks against.
const mixedStorageDelay = 200 * time.Microsecond

// mixedCellReps is how many times each (regime, write fraction) cell runs;
// the report keeps each cell's fastest run (see ExpMixed).
const mixedCellReps = 2

type mixedPhase struct {
	// WriteFraction is the probability a request is an INSERT/DELETE.
	WriteFraction float64 `json:"writeFraction"`
	// GlobalQPS is throughput under the legacy instance-wide write gate,
	// PerRelationQPS under per-relation locking, MVCCQPS under snapshot
	// reads + group commit. Speedup is per-relation over global (the PR 5
	// headline); MVCCSpeedup is mvcc over per-relation (this PR's).
	GlobalQPS      float64 `json:"globalQPS"`
	PerRelationQPS float64 `json:"perRelationQPS"`
	MVCCQPS        float64 `json:"mvccQPS"`
	Speedup        float64 `json:"speedup"`
	MVCCSpeedup    float64 `json:"mvccSpeedup"`
	// Writes counts the write statements of the mvcc run.
	Writes            int64 `json:"writes"`
	GlobalErrors      int64 `json:"globalErrors"`
	PerRelationErrors int64 `json:"perRelationErrors"`
	MVCCErrors        int64 `json:"mvccErrors"`
	// P99 latencies (µs) show the write-stall effect on the tail even when
	// throughput is capacity-bound.
	GlobalP99Micros      int64 `json:"globalP99Micros"`
	PerRelationP99Micros int64 `json:"perRelationP99Micros"`
	MVCCP99Micros        int64 `json:"mvccP99Micros"`
	// Server-side latency summaries scraped from each cell's /metrics after
	// the run: the same tail without wire or client scheduling time.
	GlobalServerLatency      *loadgen.ServerLatency `json:"globalServerLatencyMicros,omitempty"`
	PerRelationServerLatency *loadgen.ServerLatency `json:"perRelationServerLatencyMicros,omitempty"`
	MVCCServerLatency        *loadgen.ServerLatency `json:"mvccServerLatencyMicros,omitempty"`
}

// expMixedRun drives one (lock regime, write fraction) cell: a fresh mot
// instance — writes mutate the dataset, so every cell starts equal — behind
// an in-process server on a loopback port, loaded with the readwrite suite.
// The served instance runs with one SQL-layer worker per query: the suite
// is point/short-range statements whose speedup comes from running many
// statements at once, so per-query fan-out would only steal cores from
// inter-statement parallelism — which is exactly the axis the locking
// regimes differ on. (On a single-core host the CPU serializes everything
// regardless of locks and the regimes measure alike; the contrast needs
// cores for the unblocked statements to run on.)
func expMixedRun(cfg Config, regime string, frac float64, clients, requests int) (*loadgen.Report, error) {
	inst, _, err := server.OpenWorkload("mot", cfg.Scale, cfg.Seed, cfg.Nodes, 1)
	if err != nil {
		return nil, err
	}
	// The delay goes in after the dataset is built — loading pays no
	// emulated round trips.
	inst.Store().Cluster.SetOpDelay(mixedStorageDelay)
	// The baseline regimes reproduce the pre-group-commit wire behavior:
	// every block put and posting read was its own RPC, so their cells
	// charge the emulated RTT per op. Only the mvcc regime runs the batched
	// per-node fan-out that arrived with the group committer — otherwise the
	// A/B would credit the baselines with batching they never had.
	inst.Store().Cluster.SetPerOpBatchDelay(regime != "mvcc")
	// Statements spend most of their time parked on emulated storage round
	// trips, so the useful in-flight count is set by overlap, not cores.
	maxConc := 32
	if c := 2 * runtime.NumCPU(); c > maxConc {
		maxConc = c
	}
	srv := server.New(inst, server.Config{
		LockRegime:    regime,
		MaxConcurrent: maxConc,
		QueueDepth:    4 * clients,
		QueueTimeout:  30 * time.Second,
	})
	tcpAddr, httpAddr, err := srv.Start("127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	reads, writes, setup, err := loadgen.ReadWriteMix("mot")
	if err != nil {
		return nil, err
	}
	// Level the field across cells: collect the previous cell's instance
	// before the timed run, so late cells don't inherit its GC debt.
	runtime.GC()
	return loadgen.Run(loadgen.Options{
		Addr:           tcpAddr,
		Clients:        clients,
		Requests:       requests,
		Templates:      reads,
		WriteTemplates: writes,
		WriteFraction:  frac,
		Setup:          setup,
		Seed:           cfg.Seed,
		Parameterized:  true,
		MetricsURL:     "http://" + httpAddr + "/metrics",
	})
}

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"zidian/internal/server"
	"zidian/internal/server/loadgen"
)

// ExpMixed measures the serving layer under mixed read/write traffic: the
// multi-relation readwrite suite (point/chain/range reads across VEHICLE,
// TEST and OBSERVATION; INSERT/DELETE writes on TEST and OBSERVATION,
// including secondary-index posting maintenance) runs at several write
// fractions, once under the legacy instance-wide write gate
// (Config.GlobalWriteLock) and once under per-relation read/write locking.
// The headline number is the throughput ratio: under the global gate one
// writer stalls the whole instance, under per-relation locks it stalls only
// its own relation's readers.
//
// The cluster runs with an emulated per-operation storage latency
// (mixedStorageDelay), standing in for the network round trip every real
// SQL-over-NoSQL deployment pays per get — the wait the two regimes differ
// in overlapping: a writer parked on a storage round trip blocks the whole
// instance under the global gate but only its own relation under
// per-relation locks. Without it the in-process cluster is pure CPU and the
// comparison degenerates into a measurement of host core count. The
// machine-readable report goes to jsonPath (BENCH_mixed.json).
func ExpMixed(out io.Writer, cfg Config, jsonPath string, clients, requests int) error {
	cfg = cfg.normalized()
	if clients <= 0 {
		clients = 32
	}
	if requests <= 0 {
		requests = 100
	}
	rep := &mixedReport{
		Bench: "mixed", Workload: "mot",
		Nodes: cfg.Nodes, Workers: cfg.Workers,
		Clients: clients, Requests: requests,
		CPUs:               runtime.NumCPU(),
		StorageDelayMicros: mixedStorageDelay.Microseconds(),
	}
	for _, frac := range []float64{0, 0.05, 0.20, 0.50} {
		ph := mixedPhase{WriteFraction: frac}
		for _, global := range []bool{true, false} {
			run, err := expMixedRun(cfg, global, frac, clients, requests)
			if err != nil {
				return err
			}
			if global {
				ph.GlobalQPS, ph.GlobalErrors = run.QPS, run.Errors
				ph.GlobalP99Micros = run.Latency.P99
				ph.GlobalServerLatency = run.ServerLatency
			} else {
				ph.PerRelationQPS, ph.PerRelationErrors = run.QPS, run.Errors
				ph.PerRelationP99Micros = run.Latency.P99
				ph.PerRelationServerLatency = run.ServerLatency
				ph.Writes = run.Writes
			}
		}
		if ph.GlobalQPS > 0 {
			ph.Speedup = ph.PerRelationQPS / ph.GlobalQPS
		}
		rep.Phases = append(rep.Phases, ph)
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "write%%\tglobal qps\tper-rel qps\tspeedup\twrites\terrors\n")
	for _, ph := range rep.Phases {
		fmt.Fprintf(w, "%.0f%%\t%.0f\t%.0f\t%.2f×\t%d\t%d\n",
			100*ph.WriteFraction, ph.GlobalQPS, ph.PerRelationQPS, ph.Speedup,
			ph.Writes, ph.GlobalErrors+ph.PerRelationErrors)
	}
	w.Flush()

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return nil
}

// mixedReport is the BENCH_mixed.json payload. CPUs records the host's
// parallelism: the two regimes differ in how many statements may run at
// once, so on a single-CPU host (where the core serializes all statements
// regardless of locks) the qps columns measure alike, and the contrast
// grows with cores.
type mixedReport struct {
	Bench    string `json:"bench"`
	Workload string `json:"workload"`
	Nodes    int    `json:"nodes"`
	Workers  int    `json:"workers"`
	Clients  int    `json:"clients"`
	Requests int    `json:"requests"`
	CPUs     int    `json:"cpus"`
	// StorageDelayMicros is the emulated per-operation storage round trip
	// (kv.Cluster.SetOpDelay) the cells run under.
	StorageDelayMicros int64        `json:"storageDelayMicros"`
	Phases             []mixedPhase `json:"phases"`
}

// mixedStorageDelay emulates a same-datacenter KV round trip per storage
// operation. 200µs is conservative for the Cassandra/HBase deployments the
// paper benchmarks against.
const mixedStorageDelay = 200 * time.Microsecond

type mixedPhase struct {
	// WriteFraction is the probability a request is an INSERT/DELETE.
	WriteFraction float64 `json:"writeFraction"`
	// GlobalQPS is throughput under the legacy instance-wide write gate;
	// PerRelationQPS under per-relation locking; Speedup their ratio.
	GlobalQPS      float64 `json:"globalQPS"`
	PerRelationQPS float64 `json:"perRelationQPS"`
	Speedup        float64 `json:"speedup"`
	// Writes counts the write statements of the per-relation run.
	Writes            int64 `json:"writes"`
	GlobalErrors      int64 `json:"globalErrors"`
	PerRelationErrors int64 `json:"perRelationErrors"`
	// P99 latencies (µs) show the write-stall effect on the tail even when
	// throughput is capacity-bound.
	GlobalP99Micros      int64 `json:"globalP99Micros"`
	PerRelationP99Micros int64 `json:"perRelationP99Micros"`
	// Server-side latency summaries scraped from each cell's /metrics after
	// the run: the same tail without wire or client scheduling time.
	GlobalServerLatency      *loadgen.ServerLatency `json:"globalServerLatencyMicros,omitempty"`
	PerRelationServerLatency *loadgen.ServerLatency `json:"perRelationServerLatencyMicros,omitempty"`
}

// expMixedRun drives one (lock mode, write fraction) cell: a fresh mot
// instance — writes mutate the dataset, so every cell starts equal — behind
// an in-process server on a loopback port, loaded with the readwrite suite.
// The served instance runs with one SQL-layer worker per query: the suite
// is point/short-range statements whose speedup comes from running many
// statements at once, so per-query fan-out would only steal cores from
// inter-statement parallelism — which is exactly the axis the two locking
// regimes differ on. (On a single-core host the CPU serializes everything
// regardless of locks and the regimes measure alike; the contrast needs
// cores for the unblocked statements to run on.)
func expMixedRun(cfg Config, globalLock bool, frac float64, clients, requests int) (*loadgen.Report, error) {
	inst, _, err := server.OpenWorkload("mot", cfg.Scale, cfg.Seed, cfg.Nodes, 1)
	if err != nil {
		return nil, err
	}
	// The delay goes in after the dataset is built — loading pays no
	// emulated round trips.
	inst.Store().Cluster.SetOpDelay(mixedStorageDelay)
	// Statements spend most of their time parked on emulated storage round
	// trips, so the useful in-flight count is set by overlap, not cores.
	maxConc := 16
	if c := 2 * runtime.NumCPU(); c > maxConc {
		maxConc = c
	}
	srv := server.New(inst, server.Config{
		GlobalWriteLock: globalLock,
		MaxConcurrent:   maxConc,
		QueueDepth:      4 * clients,
		QueueTimeout:    30 * time.Second,
	})
	tcpAddr, httpAddr, err := srv.Start("127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	reads, writes, setup, err := loadgen.ReadWriteMix("mot")
	if err != nil {
		return nil, err
	}
	return loadgen.Run(loadgen.Options{
		Addr:           tcpAddr,
		Clients:        clients,
		Requests:       requests,
		Templates:      reads,
		WriteTemplates: writes,
		WriteFraction:  frac,
		Setup:          setup,
		Seed:           cfg.Seed,
		Parameterized:  true,
		MetricsURL:     "http://" + httpAddr + "/metrics",
	})
}

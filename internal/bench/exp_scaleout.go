package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"zidian/internal/server"
	"zidian/internal/server/loadgen"
)

// ExpScaleout measures horizontal read scaling through the whole serving
// stack: the mot point/chain read suite (scan-free key and index lookups —
// the query class the paper's middleware targets) runs against clusters of
// 1, 2, 4 and 8 storage nodes under an emulated per-node service time
// (kv.Cluster.SetServiceDelay).
//
// The service model is what makes node count a real axis: every storage
// round occupies its node for the delay, so one node serves at most
// 1/delay rounds per second and concurrent statements queue behind each
// other at hot nodes — exactly like region servers in an HBase or
// Cassandra deployment. Adding nodes adds aggregate service capacity, and
// because the read path scatters per node (point gets batch one round per
// owning node, scans and posting walks pipeline one walk per node), a
// point-read-heavy mix should scale near-linearly until the SQL layer's
// CPU becomes the bottleneck. The delay=0 phase is the control: with no
// emulated service time the in-process cluster is pure CPU and the curve
// is expected flat — it measures the placement layer's overhead, not
// scaling.
//
// Cells reuse one loaded instance per node count (the suite is read-only,
// so every phase sees identical data) and the report keeps each cell's
// fastest of scaleoutCellReps runs. The machine-readable report goes to
// jsonPath (BENCH_scaleout.json); each phase carries Scale4x — 4-node qps
// over 1-node qps — which CI gates on for the 200µs phase.
func ExpScaleout(out io.Writer, cfg Config, jsonPath string, clients, requests int, delays []time.Duration) error {
	cfg = cfg.normalized()
	if clients <= 0 {
		clients = 32
	}
	if requests <= 0 {
		requests = 50
	}
	if len(delays) == 0 {
		delays = []time.Duration{0, 200 * time.Microsecond, time.Millisecond}
	}
	nodeCounts := []int{1, 2, 4, 8}

	rep := &scaleoutReport{
		Bench: "scaleout", Workload: "mot",
		Clients: clients, Requests: requests,
		CPUs:       runtime.NumCPU(),
		NodeCounts: nodeCounts,
	}
	for _, d := range delays {
		rep.Phases = append(rep.Phases, scaleoutPhase{OpDelayMicros: d.Microseconds()})
	}

	for _, nodes := range nodeCounts {
		cells, err := expScaleoutNode(cfg, nodes, clients, requests, delays)
		if err != nil {
			return err
		}
		for pi := range rep.Phases {
			rep.Phases[pi].Cells = append(rep.Phases[pi].Cells, cells[pi])
		}
	}
	for pi := range rep.Phases {
		ph := &rep.Phases[pi]
		base := ph.Cells[0].QPS // nodeCounts[0] == 1
		for _, c := range ph.Cells {
			if base <= 0 {
				break
			}
			switch c.Nodes {
			case 4:
				ph.Scale4x = c.QPS / base
			case 8:
				ph.Scale8x = c.QPS / base
			}
		}
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "op delay\t1 node\t2 nodes\t4 nodes\t8 nodes\t4n/1n\t8n/1n\terrors\n")
	for _, ph := range rep.Phases {
		var errs int64
		qps := make([]float64, len(ph.Cells))
		for i, c := range ph.Cells {
			qps[i] = c.QPS
			errs += c.Errors
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.2f×\t%.2f×\t%d\n",
			time.Duration(ph.OpDelayMicros)*time.Microsecond,
			qps[0], qps[1], qps[2], qps[3], ph.Scale4x, ph.Scale8x, errs)
	}
	w.Flush()

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return nil
}

// scaleoutCellReps is how many times each (nodes, delay) cell runs; the
// report keeps each cell's fastest run (noise on a shared host only ever
// subtracts throughput).
const scaleoutCellReps = 2

// scaleoutReport is the BENCH_scaleout.json payload. CPUs matters for the
// delay=0 control phase only: without emulated service time the cluster is
// pure CPU and the node axis cannot show scaling on a small host. The
// delayed phases scale on aggregate service capacity, which exists
// regardless of core count.
type scaleoutReport struct {
	Bench      string          `json:"bench"`
	Workload   string          `json:"workload"`
	Clients    int             `json:"clients"`
	Requests   int             `json:"requests"`
	CPUs       int             `json:"cpus"`
	NodeCounts []int           `json:"nodeCounts"`
	Phases     []scaleoutPhase `json:"phases"`
}

type scaleoutPhase struct {
	// OpDelayMicros is the emulated per-node service time of the phase
	// (kv.Cluster.SetServiceDelay); 0 is the no-delay CPU control.
	OpDelayMicros int64          `json:"opDelayMicros"`
	Cells         []scaleoutCell `json:"cells"`
	// Scale4x (Scale8x) is 4-node (8-node) qps over 1-node qps — the
	// horizontal scaling headline CI gates on.
	Scale4x float64 `json:"scale4x"`
	Scale8x float64 `json:"scale8x"`
}

type scaleoutCell struct {
	Nodes     int     `json:"nodes"`
	QPS       float64 `json:"qps"`
	P99Micros int64   `json:"p99Micros"`
	Errors    int64   `json:"errors"`
}

// expScaleoutNode loads one mot instance on the given node count, serves it
// on a loopback port, and runs every delay phase's cell against it — the
// suite is read-only, so later phases see exactly the data earlier ones did.
// One SQL-layer worker per query, like the mixed bench: the suite is point
// statements whose throughput comes from running many at once.
func expScaleoutNode(cfg Config, nodes, clients, requests int, delays []time.Duration) ([]scaleoutCell, error) {
	inst, _, err := server.OpenWorkload("mot", cfg.Scale, cfg.Seed, nodes, 1)
	if err != nil {
		return nil, err
	}
	// Statements spend most of their time parked on emulated service
	// rounds; the useful in-flight count is set by overlap, not cores.
	maxConc := 32
	if c := 2 * runtime.NumCPU(); c > maxConc {
		maxConc = c
	}
	srv := server.New(inst, server.Config{
		MaxConcurrent: maxConc,
		QueueDepth:    4 * clients,
		QueueTimeout:  30 * time.Second,
	})
	tcpAddr, _, err := srv.Start("127.0.0.1:0", "")
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	templates, err := loadgen.Templates("mot")
	if err != nil {
		return nil, err
	}
	cells := make([]scaleoutCell, 0, len(delays))
	for _, d := range delays {
		// The delay goes in after the load and between phases — dataset
		// construction never pays emulated rounds.
		inst.Store().Cluster.SetServiceDelay(d)
		var best *loadgen.Report
		for rep := 0; rep < scaleoutCellReps; rep++ {
			runtime.GC()
			r, err := loadgen.Run(loadgen.Options{
				Addr:          tcpAddr,
				Clients:       clients,
				Requests:      requests,
				Templates:     templates,
				Seed:          cfg.Seed,
				Parameterized: true,
			})
			if err != nil {
				return nil, err
			}
			if best == nil || r.QPS > best.QPS {
				best = r
			}
		}
		cells = append(cells, scaleoutCell{
			Nodes: nodes, QPS: best.QPS,
			P99Micros: best.Latency.P99, Errors: best.Errors,
		})
	}
	return cells, nil
}

package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"zidian/internal/baav"
	"zidian/internal/core"
	"zidian/internal/kv"
	"zidian/internal/parallel"
	"zidian/internal/ra"
	"zidian/internal/relation"
	"zidian/internal/workload"
)

// Ablation quantifies the design choices the paper motivates:
//
//  1. interleaved vs fetch-all parallelization of ∝ (Section 7.1/7.2),
//  2. block compression with multiplicity counters (Section 8.2),
//  3. per-block statistics pushdown for aggregates (Section 8.2),
//  4. the block segmentation threshold (Section 8.2).
func Ablation(out io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	if err := ablationInterleaved(out, cfg); err != nil {
		return err
	}
	if err := ablationCompression(out, cfg); err != nil {
		return err
	}
	if err := ablationStats(out, cfg); err != nil {
		return err
	}
	return ablationSegments(out, cfg)
}

// ablationInterleaved contrasts the interleaved parallel ∝ with the
// Section 7.1 strawman (retrieve all relevant instances, then join).
func ablationInterleaved(out io.Writer, cfg Config) error {
	env, err := NewEnv("mot", cfg.Scale*baseScale("mot"), cfg.Seed, cfg.Nodes, []kv.CostModel{kv.ProfileHStore})
	if err != nil {
		return err
	}
	sys := env.Systems[0]
	fmt.Fprintf(out, "Ablation 1: interleaved ∝ vs fetch-all (scan-free MOT suite, %d workers)\n", cfg.Workers)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "strategy\tsim ms\t#get\t#data\tcomm MB\n")
	for _, mode := range []string{"interleaved", "fetch-all"} {
		var simMS, commMB float64
		var gets, data int64
		queries := env.Workload.ScanFreeQueries()
		for _, wq := range queries {
			info := env.Plan(wq.Name)
			before := sys.Baav.Cluster.Metrics()
			var m *parallel.Metrics
			if mode == "interleaved" {
				_, m, err = parallel.RunKBA(info, sys.Baav, cfg.Workers)
			} else {
				_, m, err = parallel.RunKBAFetchAll(info, sys.Baav, cfg.Workers)
			}
			if err != nil {
				return err
			}
			delta := sys.Baav.Cluster.Metrics().Sub(before)
			simMS += sys.Profile.QueryUS(delta, m.ShuffleBytes, env.Nodes, cfg.Workers) / 1000
			gets += delta.Gets + delta.ScanNexts
			data += m.DataValues
			commMB += float64(m.FetchBytes+m.ShuffleBytes) / (1 << 20)
		}
		n := float64(len(queries))
		fmt.Fprintf(w, "%s\t%.2f\t%d\t%d\t%.3f\n", mode, simMS/n, gets/int64(len(queries)), data/int64(len(queries)), commMB/n)
	}
	fmt.Fprintln(w)
	return w.Flush()
}

// ablationCompression compares stores built with and without multiplicity
// compression: mapped size and bytes fetched by the query suite.
func ablationCompression(out io.Writer, cfg Config) error {
	w0, err := workload.Generate("mot", workload.Spec{Scale: cfg.Scale * baseScale("mot"), Seed: cfg.Seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Ablation 2: block compression (MOT)\n")
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "compression\tstore bytes\tobs_by_region bytes\tavg fetch KB per query\n")
	for _, compress := range []bool{false, true} {
		opts := baav.DefaultOptions()
		opts.Compress = compress
		store, err := baav.Map(w0.DB, w0.Schema, kv.NewCluster(kv.EngineHash, cfg.Nodes), opts)
		if err != nil {
			return err
		}
		regionBytes, err := store.InstanceBytes("obs_by_region")
		if err != nil {
			return err
		}
		checker := core.NewChecker(w0.Schema, baav.RelSchemas(w0.DB)).WithStats(store)
		var fetch int64
		for _, wq := range w0.Queries {
			q, err := ra.Parse(wq.SQL, w0.DB)
			if err != nil {
				return err
			}
			info, err := checker.Plan(q)
			if err != nil {
				return err
			}
			before := store.Cluster.Metrics()
			if _, _, err := parallel.RunKBA(info, store, cfg.Workers); err != nil {
				return err
			}
			fetch += store.Cluster.Metrics().Sub(before).BytesRead
		}
		fmt.Fprintf(tw, "%v\t%d\t%d\t%.1f\n", compress, store.Cluster.SizeBytes(), regionBytes,
			float64(fetch)/float64(len(w0.Queries))/1024)
	}
	fmt.Fprintln(tw)
	return tw.Flush()
}

// ablationStats compares the statistics pushdown against the full group-by
// for the histogram query mq10.
func ablationStats(out io.Writer, cfg Config) error {
	w0, err := workload.Generate("mot", workload.Spec{Scale: cfg.Scale * baseScale("mot"), Seed: cfg.Seed})
	if err != nil {
		return err
	}
	store, err := baav.Map(w0.DB, w0.Schema, kv.NewCluster(kv.EngineHash, cfg.Nodes), baav.DefaultOptions())
	if err != nil {
		return err
	}
	q, err := ra.Parse(w0.Queries[9].SQL, w0.DB) // mq10_busiest_regions
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Ablation 3: statistics pushdown (mq10 region histogram)\n")
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "plan\t#data\tbytes read\n")

	// With statistics: the planner emits a StatsAgg header scan.
	withStats := core.NewChecker(w0.Schema, baav.RelSchemas(w0.DB)).WithStats(store)
	info, err := withStats.Plan(q)
	if err != nil {
		return err
	}
	if !info.UsedStats {
		return fmt.Errorf("bench: expected a statistics plan for mq10")
	}
	before := store.Cluster.Metrics()
	if _, _, err := parallel.RunKBA(info, store, cfg.Workers); err != nil {
		return err
	}
	delta := store.Cluster.Metrics().Sub(before)
	fmt.Fprintf(tw, "stats headers\t-\t%d\n", delta.BytesRead)

	// Without statistics: full scan + group-by.
	plain := core.NewChecker(w0.Schema, baav.RelSchemas(w0.DB))
	info2, err := plain.Plan(q)
	if err != nil {
		return err
	}
	before = store.Cluster.Metrics()
	_, m, err := parallel.RunKBA(info2, store, cfg.Workers)
	if err != nil {
		return err
	}
	delta = store.Cluster.Metrics().Sub(before)
	fmt.Fprintf(tw, "full group-by\t%d\t%d\n", m.DataValues, delta.BytesRead)
	fmt.Fprintln(tw)
	return tw.Flush()
}

// ablationSegments sweeps the block segmentation threshold and reports the
// store shape and the gets needed to fetch the largest block.
func ablationSegments(out io.Writer, cfg Config) error {
	w0, err := workload.Generate("tpch", workload.Spec{Scale: cfg.Scale * baseScale("tpch"), Seed: cfg.Seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Ablation 4: segment threshold (TPC-H lineitem_by_shipmode blocks)\n")
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "threshold\tpairs\tgets per block fetch\n")
	for _, thr := range []int{64, 512, 4096} {
		opts := baav.DefaultOptions()
		opts.SegmentThreshold = thr
		store, err := baav.Map(w0.DB, w0.Schema, kv.NewCluster(kv.EngineHash, cfg.Nodes), opts)
		if err != nil {
			return err
		}
		// Fetch the MAIL block: at small thresholds it spans many segments.
		blk, _, gets, err := store.GetBlock("lineitem_by_shipmode",
			relation.Tuple{relation.String("MAIL")})
		if err != nil || blk == nil {
			return fmt.Errorf("bench: MAIL block missing: %v", err)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\n", thr, store.Cluster.Len(), gets)
	}
	return tw.Flush()
}

package sql

import (
	"fmt"
	"strings"

	"zidian/internal/relation"
)

// Insert is a parsed "INSERT INTO table VALUES (...), (...)" statement.
// Value positions accept `?` placeholders: a parameterized row holds the
// zero Value at each placeholder position and Params records which
// positions those are.
type Insert struct {
	Table string
	Rows  [][]relation.Value
	// Params, when non-nil, parallels Rows: Params[r][c] is the placeholder
	// occupying Rows[r][c], or nil for a literal position.
	Params [][]*Param
	// NumParams counts the statement's `?` placeholders.
	NumParams int
}

// Delete is a parsed "DELETE FROM table [WHERE conj]" statement. The WHERE
// clause uses the same conjunctive predicate grammar as SELECT, with
// unqualified or table-qualified column references; value positions accept
// `?` placeholders.
type Delete struct {
	Table string
	Where []Pred
	// NumParams counts the statement's `?` placeholders.
	NumParams int
}

// CreateIndex is a parsed "CREATE INDEX name ON table(attr)" statement: it
// defines a block-aware secondary index on one non-key attribute.
type CreateIndex struct {
	Name  string
	Table string
	Attr  string
}

// DropIndex is a parsed "DROP INDEX name" statement.
type DropIndex struct {
	Name string
}

// Explain is a parsed "EXPLAIN [ANALYZE] <select>" statement: it asks for
// the plan description of the wrapped query instead of its answer. With
// Analyze set, the query is also executed and the plan tree is annotated
// with per-operator measurements.
type Explain struct {
	Query   *Query
	Analyze bool
}

// Show is a parsed "SHOW STATEMENTS" statement: it asks the serving layer
// for its per-template statement statistics instead of touching data. What
// names the requested report; only "STATEMENTS" exists today.
type Show struct {
	What string
}

// Statement is a parsed SQL statement: *Query, *Insert, *Delete,
// *CreateIndex, *DropIndex, *Explain, or *Show.
type Statement interface{ isStatement() }

// StatementParams returns the number of `?` placeholders in a parsed
// statement. DDL never carries placeholders (the parser rejects them there).
func StatementParams(stmt Statement) int {
	switch s := stmt.(type) {
	case *Query:
		return s.NumParams
	case *Insert:
		return s.NumParams
	case *Delete:
		return s.NumParams
	case *Explain:
		return s.Query.NumParams
	default:
		return 0
	}
}

func (*Query) isStatement()       {}
func (*Insert) isStatement()      {}
func (*Delete) isStatement()      {}
func (*CreateIndex) isStatement() {}
func (*DropIndex) isStatement()   {}
func (*Explain) isStatement()     {}
func (*Show) isStatement()        {}

// ParseStatement parses one SELECT, INSERT, DELETE, CREATE INDEX, DROP
// INDEX, EXPLAIN or SHOW statement.
func ParseStatement(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt Statement
	switch {
	case p.peekKeyword("SELECT"):
		stmt, err = p.parseQuery()
	case p.peekKeyword("INSERT"):
		stmt, err = p.parseInsert()
	case p.peekKeyword("DELETE"):
		stmt, err = p.parseDelete()
	case p.peekKeyword("CREATE"):
		stmt, err = p.parseCreateIndex()
	case p.peekKeyword("DROP"):
		stmt, err = p.parseDropIndex()
	case p.peekKeyword("EXPLAIN"):
		p.advance()
		analyze := p.keyword("ANALYZE")
		var q *Query
		q, err = p.parseQuery()
		stmt = &Explain{Query: q, Analyze: analyze}
	case p.peekKeyword("SHOW"):
		p.advance()
		if err := p.expectKeyword("STATEMENTS"); err != nil {
			return nil, err
		}
		stmt = &Show{What: "STATEMENTS"}
	default:
		return nil, fmt.Errorf("sql: expected SELECT, INSERT, DELETE, CREATE, DROP, EXPLAIN or SHOW, found %s", p.peek())
	}
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: trailing input at %s", p.peek())
	}
	return stmt, nil
}

func (p *parser) parseInsert() (*Insert, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	for {
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		var row []relation.Value
		var rowParams []*Param
		for {
			v, param, err := p.parseLitOrParam()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			rowParams = append(rowParams, param)
			if p.peek().kind != tokComma {
				break
			}
			p.advance()
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		ins.Params = append(ins.Params, rowParams)
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}
	if p.params == 0 {
		ins.Params = nil
	}
	ins.NumParams = p.params
	return ins, nil
}

func (p *parser) parseDelete() (*Delete, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.keyword("WHERE") {
		for {
			preds, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			del.Where = append(del.Where, preds...)
			if !p.keyword("AND") {
				break
			}
		}
	}
	del.NumParams = p.params
	return del, nil
}

func (p *parser) parseCreateIndex() (*CreateIndex, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	attr, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Attr: attr}, nil
}

func (p *parser) parseDropIndex() (*DropIndex, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropIndex{Name: name}, nil
}

// String renders the statement.
func (c *CreateIndex) String() string {
	return fmt.Sprintf("CREATE INDEX %s ON %s(%s)", c.Name, c.Table, c.Attr)
}

// String renders the statement.
func (d *DropIndex) String() string { return "DROP INDEX " + d.Name }

// String renders the statement.
func (i *Insert) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s VALUES ", i.Table)
	for ri, row := range i.Rows {
		if ri > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for vi, v := range row {
			if vi > 0 {
				b.WriteString(", ")
			}
			if i.Params != nil && i.Params[ri][vi] != nil {
				b.WriteByte('?')
			} else if v.Kind == relation.KindString {
				fmt.Fprintf(&b, "'%s'", strings.ReplaceAll(v.Str, "'", "''"))
			} else {
				b.WriteString(v.String())
			}
		}
		b.WriteByte(')')
	}
	return b.String()
}

// String renders the statement.
func (d *Delete) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DELETE FROM %s", d.Table)
	for i, pr := range d.Where {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		b.WriteString(pr.String())
	}
	return b.String()
}

package sql

import (
	"fmt"
	"strconv"
	"strings"

	"zidian/internal/relation"
)

// Parse parses one SELECT statement.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: trailing input at %s", p.peek())
	}
	return q, nil
}

// MustParse is Parse that panics on error; for static workload queries.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	pos  int
	// params counts the `?` placeholders consumed so far; each placeholder
	// is numbered left to right across the whole statement.
	params int
}

// param consumes a `?` token and allocates the next placeholder slot.
func (p *parser) param() *Param {
	p.advance()
	pr := &Param{Index: p.params}
	p.params++
	return pr
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// keyword reports whether the next token is the given keyword (case
// insensitive) and consumes it if so.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.advance()
		return true
	}
	return false
}

// peekKeyword reports whether the next token is the keyword, not consuming.
func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("sql: expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return token{}, fmt.Errorf("sql: expected %s, found %s", what, t)
	}
	return p.advance(), nil
}

// reserved words that terminate clauses; identifiers may not collide.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "order": true,
	"by": true, "limit": true, "and": true, "as": true, "distinct": true,
	"between": true, "in": true, "asc": true, "desc": true,
}

// IsReserved reports whether word is one of the dialect's reserved words
// (case-insensitive). Reserved words can never be identifiers, so they are
// the exact set a cache-key normalizer may case-fold without merging
// statements that parse differently: identifier case is significant (the
// parser preserves it and relation/attribute lookups are case-sensitive),
// keyword case is not.
func IsReserved(word string) bool { return reserved[strings.ToLower(word)] }

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent || reserved[strings.ToLower(t.text)] {
		return "", fmt.Errorf("sql: expected identifier, found %s", t)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	if p.keyword("DISTINCT") {
		q.Distinct = true
	}
	if p.peek().kind == tokStar {
		p.advance()
		q.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			q.Items = append(q.Items, item)
			if p.peek().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref := TableRef{Name: name, Alias: name}
		if p.keyword("AS") {
			if ref.Alias, err = p.ident(); err != nil {
				return nil, err
			}
		} else if t := p.peek(); t.kind == tokIdent && !reserved[strings.ToLower(t.text)] {
			ref.Alias = t.text
			p.advance()
		}
		q.From = append(q.From, ref)
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}
	if p.keyword("WHERE") {
		for {
			preds, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, preds...)
			if !p.keyword("AND") {
				break
			}
		}
	}
	if p.peekKeyword("GROUP") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseCol()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, c)
			if p.peek().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if p.peekKeyword("ORDER") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseCol()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: c}
			if p.keyword("DESC") {
				item.Desc = true
			} else {
				p.keyword("ASC")
			}
			q.OrderBy = append(q.OrderBy, item)
			if p.peek().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if p.keyword("LIMIT") {
		if p.peek().kind == tokParam {
			q.LimitParam = p.param()
		} else {
			t, err := p.expect(tokNumber, "limit count")
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(t.text)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("sql: bad LIMIT %q", t.text)
			}
			q.Limit = n
		}
	}
	q.NumParams = p.params
	return q, nil
}

var aggFuncs = map[string]AggFunc{
	"sum": AggSum, "count": AggCount, "min": AggMin, "max": AggMax, "avg": AggAvg,
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tokIdent {
		if agg, ok := aggFuncs[strings.ToLower(t.text)]; ok &&
			p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokLParen {
			p.advance() // agg name
			p.advance() // (
			item := SelectItem{Agg: agg}
			if p.peek().kind == tokStar {
				if agg != AggCount {
					return SelectItem{}, fmt.Errorf("sql: %s(*) is not supported", agg)
				}
				p.advance()
				item.Star = true
			} else {
				c, err := p.parseCol()
				if err != nil {
					return SelectItem{}, err
				}
				item.Col = c
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return SelectItem{}, err
			}
			if p.keyword("AS") {
				alias, err := p.ident()
				if err != nil {
					return SelectItem{}, err
				}
				item.Alias = alias
			}
			return item, nil
		}
	}
	c, err := p.parseCol()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Col: c}
	if p.keyword("AS") {
		if item.Alias, err = p.ident(); err != nil {
			return SelectItem{}, err
		}
	}
	return item, nil
}

func (p *parser) parseCol() (Col, error) {
	first, err := p.ident()
	if err != nil {
		return Col{}, err
	}
	if p.peek().kind == tokDot {
		p.advance()
		second, err := p.ident()
		if err != nil {
			return Col{}, err
		}
		return Col{Table: first, Name: second}, nil
	}
	return Col{Name: first}, nil
}

// parseLitOrParam parses a literal value or a `?` placeholder; exactly one
// of the two results is meaningful (the Param pointer is nil for literals).
func (p *parser) parseLitOrParam() (relation.Value, *Param, error) {
	if p.peek().kind == tokParam {
		return relation.Value{}, p.param(), nil
	}
	v, err := p.parseLit()
	return v, nil, err
}

// parseLit parses a literal value.
func (p *parser) parseLit() (relation.Value, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return relation.Value{}, fmt.Errorf("sql: bad number %q", t.text)
			}
			return relation.Float(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return relation.Value{}, fmt.Errorf("sql: bad number %q", t.text)
		}
		return relation.Int(i), nil
	case tokString:
		p.advance()
		return relation.String(t.text), nil
	default:
		return relation.Value{}, fmt.Errorf("sql: expected literal, found %s", t)
	}
}

// boundPred builds one comparison conjunct whose RHS is a literal or a `?`
// placeholder.
func boundPred(left Col, op CmpOp, lit *relation.Value, param *Param) Pred {
	if param != nil {
		return Pred{Left: left, Op: op, Param: param}
	}
	return Pred{Left: left, Op: op, Lit: lit}
}

// parsePred parses one predicate; BETWEEN desugars to two conjuncts. Value
// positions (comparison RHS, BETWEEN bounds, IN elements) accept `?`
// placeholders.
func (p *parser) parsePred() ([]Pred, error) {
	left, err := p.parseCol()
	if err != nil {
		return nil, err
	}
	if p.keyword("BETWEEN") {
		lo, loParam, err := p.parseLitOrParam()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, hiParam, err := p.parseLitOrParam()
		if err != nil {
			return nil, err
		}
		return []Pred{
			boundPred(left, OpGe, &lo, loParam),
			boundPred(left, OpLe, &hi, hiParam),
		}, nil
	}
	if p.keyword("IN") {
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		pred := Pred{Left: left, Op: OpEq}
		for {
			v, param, err := p.parseLitOrParam()
			if err != nil {
				return nil, err
			}
			if param != nil {
				pred.InParams = append(pred.InParams, *param)
			} else {
				pred.In = append(pred.In, v)
			}
			if p.peek().kind != tokComma {
				break
			}
			p.advance()
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return []Pred{pred}, nil
	}
	opTok, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return nil, err
	}
	op := CmpOp(opTok.text)
	t := p.peek()
	if t.kind == tokNumber || t.kind == tokString || t.kind == tokParam {
		lit, param, err := p.parseLitOrParam()
		if err != nil {
			return nil, err
		}
		return []Pred{boundPred(left, op, &lit, param)}, nil
	}
	right, err := p.parseCol()
	if err != nil {
		return nil, err
	}
	return []Pred{{Left: left, Op: op, Right: &right}}, nil
}

package sql

import "testing"

func TestParseCreateIndex(t *testing.T) {
	stmt, err := ParseStatement("CREATE INDEX ix_make ON VEHICLE(make)")
	if err != nil {
		t.Fatal(err)
	}
	ci, ok := stmt.(*CreateIndex)
	if !ok {
		t.Fatalf("statement = %T", stmt)
	}
	if ci.Name != "ix_make" || ci.Table != "VEHICLE" || ci.Attr != "make" {
		t.Fatalf("parsed %+v", ci)
	}
	if ci.String() != "CREATE INDEX ix_make ON VEHICLE(make)" {
		t.Fatalf("render = %q", ci.String())
	}
	// Case-insensitive keywords, flexible whitespace, trailing semicolon via
	// ParseStatement's lexer conventions.
	if _, err := ParseStatement("create   index i on t ( a )"); err != nil {
		t.Fatal(err)
	}
}

func TestParseDropIndex(t *testing.T) {
	stmt, err := ParseStatement("drop index ix_make")
	if err != nil {
		t.Fatal(err)
	}
	di, ok := stmt.(*DropIndex)
	if !ok {
		t.Fatalf("statement = %T", stmt)
	}
	if di.Name != "ix_make" {
		t.Fatalf("parsed %+v", di)
	}
}

func TestParseDDLErrors(t *testing.T) {
	for _, src := range []string{
		"CREATE ix ON t(a)",           // missing INDEX
		"CREATE INDEX ON t(a)",        // missing name
		"CREATE INDEX i t(a)",         // missing ON
		"CREATE INDEX i ON t",         // missing column
		"CREATE INDEX i ON t(a, b)",   // composite keys unsupported
		"CREATE INDEX i ON t(a) junk", // trailing input
		"DROP INDEX",                  // missing name
		"DROP TABLE t",                // unsupported object
	} {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q) succeeded", src)
		}
	}
}

package sql

import (
	"strings"
	"testing"
)

func TestParseParamsInPredicates(t *testing.T) {
	q, err := Parse("select a from T where a = ? and b > ? and c between ? and ? and d in (?, 5, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumParams != 6 {
		t.Fatalf("NumParams = %d, want 6", q.NumParams)
	}
	// Placeholders number left to right: a=?0, b>?1, c>=?2, c<=?3, d∈{?4,5,?5}.
	w := q.Where
	if len(w) != 5 {
		t.Fatalf("predicates = %d: %v", len(w), w)
	}
	if w[0].Param == nil || w[0].Param.Index != 0 || w[0].Op != OpEq {
		t.Fatalf("w[0] = %+v", w[0])
	}
	if w[1].Param == nil || w[1].Param.Index != 1 || w[1].Op != OpGt {
		t.Fatalf("w[1] = %+v", w[1])
	}
	if w[2].Param == nil || w[2].Param.Index != 2 || w[2].Op != OpGe {
		t.Fatalf("between lo = %+v", w[2])
	}
	if w[3].Param == nil || w[3].Param.Index != 3 || w[3].Op != OpLe {
		t.Fatalf("between hi = %+v", w[3])
	}
	in := w[4]
	if !in.IsIn() || len(in.In) != 1 || len(in.InParams) != 2 {
		t.Fatalf("in = %+v", in)
	}
	if in.InParams[0].Index != 4 || in.InParams[1].Index != 5 {
		t.Fatalf("in params = %+v", in.InParams)
	}
	// The template renders with placeholders and re-parses to the same
	// number of slots.
	s := q.String()
	if strings.Count(s, "?") != 6 {
		t.Fatalf("rendered %q", s)
	}
	q2, err := Parse(s)
	if err != nil || q2.NumParams != 6 {
		t.Fatalf("re-parse %q: %v (params %d)", s, err, q2.NumParams)
	}
}

func TestParseParamsInInsertDelete(t *testing.T) {
	stmt, err := ParseStatement("insert into T values (?, 'x', ?), (3, ?, 4)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*Insert)
	if ins.NumParams != 3 || ins.Params == nil {
		t.Fatalf("insert = %+v", ins)
	}
	if ins.Params[0][0] == nil || ins.Params[0][0].Index != 0 ||
		ins.Params[0][1] != nil ||
		ins.Params[0][2] == nil || ins.Params[0][2].Index != 1 ||
		ins.Params[1][1] == nil || ins.Params[1][1].Index != 2 {
		t.Fatalf("insert params = %+v", ins.Params)
	}
	if s := ins.String(); strings.Count(s, "?") != 3 {
		t.Fatalf("rendered %q", s)
	}
	if _, err := ParseStatement(ins.String()); err != nil {
		t.Fatalf("re-parse %q: %v", ins.String(), err)
	}

	stmt, err = ParseStatement("delete from T where a = ? and b in (?, 7)")
	if err != nil {
		t.Fatal(err)
	}
	del := stmt.(*Delete)
	if del.NumParams != 2 {
		t.Fatalf("delete = %+v", del)
	}
	if _, err := ParseStatement(del.String()); err != nil {
		t.Fatalf("re-parse %q: %v", del.String(), err)
	}
	// Literal-only statements carry no param bookkeeping.
	stmt, err = ParseStatement("insert into T values (1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	if ins := stmt.(*Insert); ins.NumParams != 0 || ins.Params != nil {
		t.Fatalf("literal insert = %+v", ins)
	}
}

func TestParamsRejectedInDDL(t *testing.T) {
	for _, src := range []string{
		"create index i on T(?)",
		"create index ? on T(a)",
		"drop index ?",
	} {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q) succeeded", src)
		}
	}
	// A placeholder in a position the grammar gives no meaning is an error,
	// not a silent literal.
	for _, src := range []string{
		"select ? from T",
		"select a from ?",
		"select a from T order by ?",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

// TestLimitParamParse: LIMIT ? allocates a placeholder slot like any other
// value position, numbered left to right across the statement.
func TestLimitParamParse(t *testing.T) {
	q, err := Parse("select a from T where b = ? limit ?")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumParams != 2 {
		t.Fatalf("NumParams = %d, want 2", q.NumParams)
	}
	if q.LimitParam == nil || q.LimitParam.Index != 1 {
		t.Fatalf("LimitParam = %+v, want slot 1", q.LimitParam)
	}
	if q.Limit != -1 {
		t.Fatalf("Limit = %d, want -1 while parameterized", q.Limit)
	}
	if got := q.String(); !strings.HasSuffix(got, "LIMIT ?") {
		t.Fatalf("String() = %q", got)
	}
	// The rendering re-parses to the same shape.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", q.String(), err)
	}
	if q2.NumParams != 2 || q2.LimitParam == nil || q2.LimitParam.Index != 1 {
		t.Fatalf("re-parsed = %+v", q2)
	}
	// Literal limits are unaffected.
	q3, err := Parse("select a from T limit 5")
	if err != nil {
		t.Fatal(err)
	}
	if q3.Limit != 5 || q3.LimitParam != nil || q3.NumParams != 0 {
		t.Fatalf("literal limit = %+v", q3)
	}
}

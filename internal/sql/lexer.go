// Package sql implements a lexer and parser for the SQL fragment covered by
// the paper's theory: select-project-join (SPC) queries with conjunctive
// WHERE clauses, extended with group-by aggregates (RAaggr), DISTINCT,
// ORDER BY and LIMIT.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokStar
	tokOp    // = <> < <= > >=
	tokParam // ? placeholder
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer splits input into tokens. Keywords are returned as tokIdent and
// matched case-insensitively by the parser.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '.':
		l.pos++
		return token{tokDot, ".", start}, nil
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case c == '?':
		l.pos++
		return token{tokParam, "?", start}, nil
	case c == '=':
		l.pos++
		return token{tokOp, "=", start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
			return token{tokOp, l.src[start:l.pos], start}, nil
		}
		return token{tokOp, "<", start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{tokOp, ">=", start}, nil
		}
		return token{tokOp, ">", start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{tokOp, "<>", start}, nil
		}
		return token{}, fmt.Errorf("sql: unexpected %q at %d", c, start)
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("sql: unterminated string at %d", start)
			}
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'') // '' escape
					l.pos += 2
					continue
				}
				l.pos++
				return token{tokString, b.String(), start}, nil
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
	case c == '"':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("sql: unterminated string at %d", start)
		}
		l.pos++
		return token{tokString, b.String(), start}, nil
	case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		l.pos++
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
			l.pos++
		}
		return token{tokNumber, l.src[start:l.pos], start}, nil
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], start}, nil
	default:
		return token{}, fmt.Errorf("sql: unexpected %q at %d", c, start)
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

package sql

import (
	"strings"
	"testing"

	"zidian/internal/relation"
)

func TestParsePaperQ1(t *testing.T) {
	// The paper's running example (Example 3, simplified TPC-H q11).
	q, err := Parse(`select PS.suppkey, SUM(PS.supplycost)
		from PARTSUPP as PS, SUPPLIER as S, NATION as N
		where PS.suppkey = S.suppkey and S.nationkey = N.nationkey
		  and N.name = 'GERMANY'
		group by PS.suppkey`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 3 {
		t.Fatalf("from = %v", q.From)
	}
	if q.From[0].Alias != "PS" || q.From[0].Name != "PARTSUPP" {
		t.Fatalf("alias binding: %+v", q.From[0])
	}
	if len(q.Where) != 3 {
		t.Fatalf("where = %v", q.Where)
	}
	if len(q.Items) != 2 || q.Items[1].Agg != AggSum {
		t.Fatalf("items = %v", q.Items)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != (Col{Table: "PS", Name: "suppkey"}) {
		t.Fatalf("group by = %v", q.GroupBy)
	}
	// The third predicate is the constant selection.
	p := q.Where[2]
	if p.Lit == nil || p.Lit.Str != "GERMANY" || p.Op != OpEq {
		t.Fatalf("constant pred = %v", p)
	}
}

func TestParseImplicitAlias(t *testing.T) {
	q, err := Parse("select s.a from supplier s where s.a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if q.From[0].Alias != "s" {
		t.Fatalf("alias = %q", q.From[0].Alias)
	}
}

func TestParseDefaultAlias(t *testing.T) {
	q, err := Parse("select supplier.a from supplier")
	if err != nil {
		t.Fatal(err)
	}
	if q.From[0].Alias != "supplier" {
		t.Fatalf("alias = %q", q.From[0].Alias)
	}
	if len(q.Where) != 0 || q.Limit != -1 {
		t.Fatal("defaults")
	}
}

func TestParseStarDistinctOrderLimit(t *testing.T) {
	q, err := Parse("select distinct * from r order by r.a desc, r.b limit 10")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Star || !q.Distinct {
		t.Fatal("star/distinct")
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Fatalf("order by = %v", q.OrderBy)
	}
	if q.Limit != 10 {
		t.Fatalf("limit = %d", q.Limit)
	}
}

func TestParseBetweenDesugars(t *testing.T) {
	q, err := Parse("select r.a from r where r.a between 3 and 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 {
		t.Fatalf("where = %v", q.Where)
	}
	if q.Where[0].Op != OpGe || q.Where[1].Op != OpLe {
		t.Fatalf("between ops = %v %v", q.Where[0].Op, q.Where[1].Op)
	}
}

func TestParseIn(t *testing.T) {
	q, err := Parse("select r.a from r where r.b in (1, 2, 3)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 1 || len(q.Where[0].In) != 3 {
		t.Fatalf("in = %v", q.Where)
	}
	if !relation.Equal(q.Where[0].In[2], relation.Int(3)) {
		t.Fatalf("in values = %v", q.Where[0].In)
	}
}

func TestParseAggregates(t *testing.T) {
	q, err := Parse("select count(*), min(r.a), max(r.a), avg(r.b) as m from r")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items) != 4 {
		t.Fatalf("items = %v", q.Items)
	}
	if !q.Items[0].Star || q.Items[0].Agg != AggCount {
		t.Fatal("count(*)")
	}
	if q.Items[3].Alias != "m" || q.Items[3].Agg != AggAvg {
		t.Fatalf("avg alias = %+v", q.Items[3])
	}
}

func TestParseLiteralsAndOps(t *testing.T) {
	q, err := Parse("select r.a from r where r.a >= 1.5 and r.b <> 'x''y' and r.c < r.d and r.e != 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 4 {
		t.Fatalf("where = %v", q.Where)
	}
	if q.Where[0].Lit.Kind != relation.KindFloat {
		t.Fatal("1.5 must parse as float")
	}
	if q.Where[1].Lit.Str != "x'y" {
		t.Fatalf("escaped string = %q", q.Where[1].Lit.Str)
	}
	if q.Where[2].Right == nil {
		t.Fatal("column comparison")
	}
	if q.Where[3].Op != OpNe {
		t.Fatal("!= must normalize to <>")
	}
}

func TestParseNegativeNumber(t *testing.T) {
	q, err := Parse("select r.a from r where r.a = -5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].Lit.Int != -5 {
		t.Fatalf("lit = %v", q.Where[0].Lit)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select from r",
		"select r.a",
		"select r.a from r where",
		"select r.a from r where r.a",
		"select r.a from r where r.a = ",
		"select r.a from r limit -3",
		"select r.a from r limit x",
		"select sum(*) from r",
		"select r.a from r alias )",
		"select r.a from r where 1 = r.a",
		"select r.a from r where r.a between 1",
		"select r.a from r where r.b in 1",
		"select r.a from r where r.b in (1",
		"select r.a from r where r.a = 'unterminated",
		"select r.$ from r",
		"select r.a from r where r.a ! 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestQueryStringRoundTrips(t *testing.T) {
	src := "select distinct PS.suppkey, sum(PS.cost) as total from partsupp as PS, supplier S " +
		"where PS.suppkey = S.suppkey and S.nation = 'DE' and PS.qty in (1, 2) " +
		"group by PS.suppkey order by PS.suppkey desc limit 5"
	q := MustParse(src)
	rendered := q.String()
	for _, frag := range []string{"DISTINCT", "SUM(PS.cost) AS total", "GROUP BY", "ORDER BY", "DESC", "LIMIT 5", "IN (1, 2)"} {
		if !strings.Contains(rendered, frag) {
			t.Fatalf("rendered query missing %q: %s", frag, rendered)
		}
	}
	// Re-parsing the rendered form yields the same structure.
	q2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("reparse: %v (%s)", err, rendered)
	}
	if q2.String() != rendered {
		t.Fatalf("not stable:\n%s\n%s", rendered, q2.String())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("not sql")
}

func TestParseInsertStatement(t *testing.T) {
	stmt, err := ParseStatement("insert into SUPPLIER values (1, 'acme', 2.5), (2, 'x''y', -3)")
	if err != nil {
		t.Fatal(err)
	}
	ins, ok := stmt.(*Insert)
	if !ok || ins.Table != "SUPPLIER" || len(ins.Rows) != 2 {
		t.Fatalf("stmt = %#v", stmt)
	}
	if ins.Rows[0][1].Str != "acme" || ins.Rows[1][1].Str != "x'y" || ins.Rows[1][2].Int != -3 {
		t.Fatalf("rows = %v", ins.Rows)
	}
	// String renders parseable SQL.
	if _, err := ParseStatement(ins.String()); err != nil {
		t.Fatalf("reparse %q: %v", ins.String(), err)
	}
}

func TestParseDeleteStatement(t *testing.T) {
	stmt, err := ParseStatement("delete from T where T.a = 1 and b between 2 and 4 and c in (5, 6)")
	if err != nil {
		t.Fatal(err)
	}
	del, ok := stmt.(*Delete)
	if !ok || del.Table != "T" || len(del.Where) != 4 {
		t.Fatalf("stmt = %#v", stmt)
	}
	if _, err := ParseStatement(del.String()); err != nil {
		t.Fatalf("reparse %q: %v", del.String(), err)
	}
	// DELETE without WHERE.
	stmt, err = ParseStatement("delete from T")
	if err != nil || len(stmt.(*Delete).Where) != 0 {
		t.Fatalf("bare delete: %v %v", stmt, err)
	}
}

func TestParseStatementSelectAndErrors(t *testing.T) {
	if stmt, err := ParseStatement("select r.a from r"); err != nil {
		t.Fatal(err)
	} else if _, ok := stmt.(*Query); !ok {
		t.Fatalf("stmt = %#v", stmt)
	}
	bad := []string{
		"",
		"update t set a = 1",
		"insert into t (1)",
		"insert into t values 1",
		"insert into t values (1",
		"insert into t values (1) trailing ,",
		"delete t",
		"delete from t where",
	}
	for _, src := range bad {
		if _, err := ParseStatement(src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

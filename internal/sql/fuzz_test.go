package sql

import "testing"

// FuzzParse feeds arbitrary input through the statement parser. The parser
// must never panic; when it accepts a statement, the statement's String
// rendering must itself be renderable (and, for DML, re-parseable — the
// plan-cache key and the differential tests rely on the round trip). The
// seed corpus covers every statement kind, `?` placeholders included.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"select a from T",
		"select distinct a, b from T, S where T.a = S.b and a = 5 order by a desc limit 3",
		"select COUNT(*), SUM(x) from T group by y",
		"select a from T where a = ? and b > ? and c between ? and ?",
		"select a from T where a in (?, 5, ?) and b = 'x''y'",
		"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = ?",
		"insert into T values (1, 'x', 2.5)",
		"insert into T values (?, ?), (3, ?)",
		"delete from T where a = ? and b in (?, 7)",
		"delete from T",
		"create index ix on T(a)",
		"drop index ix",
		"explain select a from T where a = ?",
		"select a from T where a = ?????",
		"select ? from ?",
		"select a from T where a = 'unterminated",
		"select a from T where a = -",
		"?",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := ParseStatement(src)
		if err != nil {
			return
		}
		switch s := stmt.(type) {
		case *Query:
			_ = s.String()
		case *Insert:
			if _, err := ParseStatement(s.String()); err != nil {
				t.Fatalf("insert round trip %q -> %q: %v", src, s.String(), err)
			}
		case *Delete:
			if _, err := ParseStatement(s.String()); err != nil {
				t.Fatalf("delete round trip %q -> %q: %v", src, s.String(), err)
			}
		case *CreateIndex:
			if _, err := ParseStatement(s.String()); err != nil {
				t.Fatalf("create index round trip %q -> %q: %v", src, s.String(), err)
			}
		case *DropIndex:
			if _, err := ParseStatement(s.String()); err != nil {
				t.Fatalf("drop index round trip %q -> %q: %v", src, s.String(), err)
			}
		}
	})
}

package sql

import (
	"fmt"
	"strings"

	"zidian/internal/relation"
)

// Col is a possibly alias-qualified column reference "alias.attr" or "attr".
type Col struct {
	Table string // alias; empty when unqualified
	Name  string
}

// String renders the column reference.
func (c Col) String() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// AggFunc names an aggregate function.
type AggFunc string

// Supported aggregate functions.
const (
	AggNone  AggFunc = ""
	AggSum   AggFunc = "SUM"
	AggCount AggFunc = "COUNT"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
	AggAvg   AggFunc = "AVG"
)

// SelectItem is one output column: a plain column, or an aggregate over a
// column (Star for COUNT(*)).
type SelectItem struct {
	Agg   AggFunc
	Col   Col
	Star  bool   // COUNT(*)
	Alias string // output name; optional
}

// String renders the select item.
func (s SelectItem) String() string {
	var b strings.Builder
	switch {
	case s.Agg != AggNone && s.Star:
		fmt.Fprintf(&b, "%s(*)", s.Agg)
	case s.Agg != AggNone:
		fmt.Fprintf(&b, "%s(%s)", s.Agg, s.Col)
	default:
		b.WriteString(s.Col.String())
	}
	if s.Alias != "" {
		fmt.Fprintf(&b, " AS %s", s.Alias)
	}
	return b.String()
}

// TableRef is one FROM-clause entry.
type TableRef struct {
	Name  string
	Alias string // defaults to Name
}

// Param is a `?` placeholder in a value position (a predicate RHS, an IN
// list element, or an INSERT value). Placeholders are numbered left to right
// across the whole statement, starting at 0; the statement compiles into a
// plan template and Index selects the bound value at execution time.
type Param struct {
	Index int
}

// String renders the placeholder.
func (p Param) String() string { return "?" }

// CmpOp is a comparison operator in a predicate.
type CmpOp string

// Comparison operators.
const (
	OpEq CmpOp = "="
	OpNe CmpOp = "<>"
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// Pred is one conjunct of the WHERE clause. Exactly one of RHS column / RHS
// literal / RHS placeholder / IN list is set (BETWEEN is desugared into two
// conjuncts by the parser). An IN list may mix literals (In) and
// placeholders (InParams); at least one of the two is non-empty for an IN
// predicate.
type Pred struct {
	Left     Col
	Op       CmpOp
	Right    *Col            // column RHS (join or self predicate)
	Lit      *relation.Value // literal RHS
	Param    *Param          // `?` RHS
	In       []relation.Value
	InParams []Param // `?` elements of the IN list
}

// IsIn reports whether the predicate is an IN membership test.
func (p Pred) IsIn() bool { return len(p.In)+len(p.InParams) > 0 }

// String renders the predicate.
func (p Pred) String() string {
	switch {
	case p.IsIn():
		parts := make([]string, 0, len(p.In)+len(p.InParams))
		for _, v := range p.In {
			parts = append(parts, renderLit(v))
		}
		for range p.InParams {
			parts = append(parts, "?")
		}
		return fmt.Sprintf("%s IN (%s)", p.Left, strings.Join(parts, ", "))
	case p.Right != nil:
		return fmt.Sprintf("%s %s %s", p.Left, p.Op, *p.Right)
	case p.Param != nil:
		return fmt.Sprintf("%s %s ?", p.Left, p.Op)
	case p.Lit != nil:
		return fmt.Sprintf("%s %s %s", p.Left, p.Op, renderLit(*p.Lit))
	default:
		return p.Left.String()
	}
}

// renderLit renders a literal in re-parseable SQL form: strings are quoted
// with ” escaping, numbers render naturally.
func renderLit(v relation.Value) string {
	if v.Kind == relation.KindString {
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	}
	return v.String()
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Col  Col
	Desc bool
}

// Query is the AST of a parsed SELECT statement.
type Query struct {
	Distinct bool
	Items    []SelectItem
	Star     bool // SELECT *
	From     []TableRef
	Where    []Pred
	GroupBy  []Col
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	// LimitParam is the `?` placeholder of a parameterized LIMIT ? clause;
	// nil when the limit is a literal (or absent). The bound value must be
	// a non-negative integer.
	LimitParam *Param
	// NumParams counts the `?` placeholders in the statement; slots 0 to
	// NumParams-1 must all be bound before execution.
	NumParams int
}

// String renders the query in SQL-ish form (for plans and error messages).
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	if q.Star {
		b.WriteString("*")
	}
	for i, it := range q.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM ")
	for i, t := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Name)
		if t.Alias != t.Name {
			b.WriteString(" AS " + t.Alias)
		}
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Col.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	switch {
	case q.LimitParam != nil:
		b.WriteString(" LIMIT ?")
	case q.Limit >= 0:
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

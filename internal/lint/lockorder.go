package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockorder enforces the PR 5/8 deadlock-freedom discipline:
//
//  1. A loop that acquires locks per element (the relation-lock pattern)
//     must range over a slice with sort evidence in the same function — a
//     sort.Strings/sort.Slice call or a sort.StringsAreSorted guard
//     naming the ranged slice. Two statements locking overlapping
//     relation sets in different orders deadlock; sorted acquisition is
//     the documented total order.
//
//  2. Striped or per-node mutexes (reached through an index expression or
//     a lookup call: shards[i].mu, nodes[n].mu, lockFor(rel)) must not
//     nest: acquiring a second striped lock while one is held orders two
//     stripes of the same family arbitrarily, which deadlocks against the
//     opposite interleaving. Documented pairs that sit on different
//     levels of the lock hierarchy (commitMu -> pinMu: the group
//     committer pins while holding its relation's commit lock) are
//     allowlisted below.
func lockorderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "relation-lock loops iterate sorted slices; striped mutexes never nest outside documented pairs",
		Inspects: func(p string) bool {
			return true // striped locks live in server, obs, kv, and baav
		},
		Run: runLockorder,
	}
}

// allowedNestings are the documented lock-hierarchy pairs: holding the
// first (by mutex field name) while acquiring the second is part of the
// design, not an ordering hazard.
var allowedNestings = map[[2]string]bool{
	{"commitMu", "pinMu"}: true, // group-commit leader pins the pre-commit snapshot
}

func runLockorder(p *Pass) {
	for _, f := range p.Files {
		for _, fb := range funcBodies(f) {
			checkSortedLoops(p, fb)
			checkNestedStripes(p, fb)
		}
	}
}

// --- rule 1: lock-acquisition loops need sort evidence ---

// sortEvidence are the callees accepted as proof the ranged slice is in a
// deterministic order.
var sortEvidence = map[string]bool{
	"Strings": true, "Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"StringsAreSorted": true, "SliceIsSorted": true, "IsSorted": true,
	"SortFunc": true, "SortStableFunc": true, "IsSortedFunc": true,
}

func checkSortedLoops(p *Pass, fb funcBody) {
	// Literals are analyzed within their declaration; standalone
	// literal entries would double-report nested loops.
	if fb.decl == nil {
		return
	}
	ast.Inspect(fb.decl.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		lockPos, locksPerElement := loopAcquiresPerElement(p, rng)
		if !locksPerElement {
			return true
		}
		if !hasSortEvidence(fb.decl.Body, rng) {
			p.Reportf(lockPos, "lock acquisition loop ranges over %s without sort evidence — sort it (or guard with sort.StringsAreSorted) so overlapping acquirers agree on one order", exprString(rng.X))
		}
		return true
	})
}

// loopAcquiresPerElement reports whether the range body acquires a mutex
// that depends on the loop variables (a per-element lock) and holds it
// past the iteration, and where. A lock released by a plain Unlock inside
// the same iteration (the per-shard walk pattern) never holds two
// elements' locks at once, so its order cannot deadlock; only
// accumulating acquisitions (the relation-lock pattern) need the sorted
// order.
func loopAcquiresPerElement(p *Pass, rng *ast.RangeStmt) (token.Pos, bool) {
	// Collect loop variables plus body-local vars derived from them
	// (m := l.lockFor(r)).
	derived := make(map[string]bool)
	for _, v := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			derived[id.Name] = true
		}
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			uses := false
			for _, r := range as.Rhs {
				for name := range identsIn(r) {
					if derived[name] {
						uses = true
					}
				}
			}
			if !uses {
				return true
			}
			for _, l := range as.Lhs {
				if id, ok := l.(*ast.Ident); ok && id.Name != "_" && !derived[id.Name] {
					derived[id.Name] = true
					changed = true
				}
			}
			return true
		})
	}
	var pos token.Pos
	found := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return false // a deferred unlock runs at function return, not per iteration
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if !isMutexExpr(p, sel.X) {
			return true
		}
		root := rootIdent(sel.X)
		if root == nil || !derived[root.Name] {
			return true
		}
		if unlockedInLoop(rng.Body, exprString(sel.X)) {
			return true
		}
		pos, found = call.Pos(), true
		return false
	})
	return pos, found
}

// unlockedInLoop reports whether the loop body contains a plain (non-
// deferred) Unlock/RUnlock of the same mutex expression, meaning the lock
// is released within the iteration that took it.
func unlockedInLoop(body *ast.BlockStmt, key string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
			return true
		}
		if exprString(sel.X) == key {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasSortEvidence reports whether the function sorts (or asserts
// sortedness of) the slice the loop ranges over, before the loop.
func hasSortEvidence(body *ast.BlockStmt, rng *ast.RangeStmt) bool {
	names := identsIn(rng.X)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= rng.Pos() {
			return true
		}
		if !sortEvidence[calleeName(call)] {
			return true
		}
		for _, arg := range call.Args {
			for name := range identsIn(arg) {
				if names[name] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// --- rule 2: striped mutexes must not nest ---

type heldLock struct {
	key   string // rendered expression, identity for release matching
	field string // mutex field name, for the allowlist
	pos   token.Pos
}

func checkNestedStripes(p *Pass, fb funcBody) {
	var held []heldLock
	// Linear statement-order scan of this body only (nested literals are
	// their own funcBody entries: locks taken in a goroutine or returned
	// closure do not nest with the parent's in any enforced order).
	ast.Inspect(fb.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			if fb.lit != nil && st == fb.lit {
				return true
			}
			return false // separate funcBody entry
		case *ast.DeferStmt:
			return false // deferred unlocks release at return, not here
		case *ast.CallExpr:
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch name {
			case "Lock", "RLock":
				if !isMutexExpr(p, sel.X) {
					return true
				}
				key := exprString(sel.X)
				if !stripedMutex(p, fb, sel.X) {
					return true
				}
				for _, h := range held {
					if h.key == key {
						continue // re-lock of the same stripe: a plain bug, but not an ordering hazard
					}
					if allowedNestings[[2]string{h.field, selectorName(sel.X)}] {
						continue
					}
					p.Reportf(st.Pos(), "striped mutex %s acquired while striped %s is held — two stripes locked in arbitrary order deadlock against the opposite interleaving", key, h.key)
					return true
				}
				held = append(held, heldLock{key: key, field: selectorName(sel.X), pos: st.Pos()})
			case "Unlock", "RUnlock":
				if !isMutexExpr(p, sel.X) {
					return true
				}
				key := exprString(sel.X)
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].key == key {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
		}
		return true
	})
}

// isMutexExpr reports whether the expression is a sync.Mutex or
// sync.RWMutex (by value or pointer).
func isMutexExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok {
		return false
	}
	return isTypeFrom(tv.Type, "sync", "Mutex") || isTypeFrom(tv.Type, "sync", "RWMutex")
}

// stripedMutex reports whether the locked expression denotes one stripe of
// a family: the expression contains an index step (shards[i].mu), or its
// root variable was assigned from an index expression or a lookup call
// (sh := s.shards[h%n]; m := l.lockFor(rel); r := st.mvcc.rel(name)).
func stripedMutex(p *Pass, fb funcBody, e ast.Expr) bool {
	if containsIndexExpr(e) {
		return true
	}
	root := rootIdent(e)
	if root == nil {
		return false
	}
	striped := false
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if striped {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, l := range as.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name != root.Name {
				continue
			}
			if i < len(as.Rhs) {
				rhs := as.Rhs[i]
				if containsIndexExpr(rhs) || isLookupCall(p, rhs) {
					striped = true
					return false
				}
			} else if len(as.Rhs) == 1 {
				if isLookupCall(p, as.Rhs[0]) {
					striped = true
					return false
				}
			}
		}
		return true
	})
	return striped
}

func containsIndexExpr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.IndexExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// isLookupCall reports whether the expression is a call yielding a
// pointer to a struct — the stripe-lookup shape (lockFor, mvcc.rel).
func isLookupCall(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	tv, ok := p.Info.Types[call]
	if !ok {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	_, isStruct := ptr.Elem().Underlying().(*types.Struct)
	return isStruct
}

package lint

import (
	"go/ast"
	"go/types"
)

// snapshotpin enforces the PR 8 MVCC reclamation contract: a pinned
// snapshot that is never released blocks the relation's watermark forever,
// so retired block versions accumulate until the process dies. The rule
// requires that in every function:
//
//   - the result of a PinSnapshot call is bound to a variable (never
//     discarded or consumed inline), and
//   - the pin is released panic-safely — `defer s.Release()` (directly or
//     inside a deferred closure) — or escapes to the caller (the snapshot
//     or its Release method value is returned or stored in a field), and
//   - release funcs handed out by pin-style helpers (a call to a function
//     whose name starts with "pin"/"Pin" returning a func()) are likewise
//     deferred, returned, or stored — a plain release() call leaks the pin
//     when anything between the pin and the call panics.
func snapshotpinAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "snapshotpin",
		Doc:  "every PinSnapshot (and pin-helper release func) must be released via defer or escape to the caller",
		Inspects: func(p string) bool {
			return true // pins appear in the facade, the committer, and the server
		},
		Run: runSnapshotpin,
	}
}

func runSnapshotpin(p *Pass) {
	for _, f := range p.Files {
		for _, fb := range funcBodies(f) {
			if fb.decl == nil {
				continue // literals are checked within their declaration
			}
			checkPins(p, fb.decl.Body)
		}
	}
}

func checkPins(p *Pass, body *ast.BlockStmt) {
	// Walk statements so each pin call is seen with its binding context.
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPinSnapshotCall(call) {
				checkSnapshotVar(p, body, st, call)
				return true
			}
			if idx, ok := pinHelperReleaseIndex(p, call); ok {
				checkReleaseVar(p, body, st, call, idx)
				return true
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
				if isPinSnapshotCall(call) {
					p.Reportf(call.Pos(), "PinSnapshot result discarded — the pin can never be released and the reclamation watermark stalls")
				} else if _, ok := pinHelperReleaseIndex(p, call); ok {
					p.Reportf(call.Pos(), "pin helper %s's release func discarded — the pin can never be released", calleeName(call))
				}
			}
		case *ast.CallExpr:
			// A pin consumed inline as an argument (e.g.
			// AtSnapshot(PinSnapshot(...))) has no releasable binding.
			for _, arg := range st.Args {
				if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok && isPinSnapshotCall(inner) {
					p.Reportf(inner.Pos(), "PinSnapshot result consumed inline — bind it so the pin can be released")
				}
			}
		case *ast.ReturnStmt:
			// Returning the pin itself transfers ownership to the caller.
			return true
		}
		return true
	})
}

// isPinSnapshotCall reports whether the call is <recv>.PinSnapshot(...).
func isPinSnapshotCall(call *ast.CallExpr) bool {
	return calleeName(call) == "PinSnapshot"
}

// pinHelperReleaseIndex reports whether the call is a pin-style helper —
// a function or method whose name starts with "pin"/"Pin" (but is not
// PinSnapshot itself, handled separately) — returning a no-arg func() in
// its results, and at which result index the release func sits.
func pinHelperReleaseIndex(p *Pass, call *ast.CallExpr) (int, bool) {
	name := calleeName(call)
	if name == "PinSnapshot" || (len(name) < 4 && name != "pin" && name != "Pin") {
		return 0, false
	}
	if name != "pin" && name != "Pin" &&
		!hasPrefixWord(name, "pin") && !hasPrefixWord(name, "Pin") {
		return 0, false
	}
	// TypeOf, not Types: a plain-identifier callee is only in Uses.
	t := p.Info.TypeOf(call.Fun)
	if t == nil {
		return 0, false
	}
	sig, ok := t.(*types.Signature)
	if !ok {
		return 0, false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if s, ok := res.At(i).Type().(*types.Signature); ok && s.Params().Len() == 0 && s.Results().Len() == 0 {
			return i, true
		}
	}
	return 0, false
}

// hasPrefixWord reports whether name starts with the prefix as a word
// ("pinView", "PinAll" — but not "pingServer").
func hasPrefixWord(name, prefix string) bool {
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return false
	}
	c := name[len(prefix)]
	return c >= 'A' && c <= 'Z'
}

// checkSnapshotVar verifies the binding of a PinSnapshot result.
func checkSnapshotVar(p *Pass, body *ast.BlockStmt, st *ast.AssignStmt, call *ast.CallExpr) {
	if len(st.Lhs) != 1 {
		return
	}
	switch lhs := st.Lhs[0].(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			p.Reportf(call.Pos(), "PinSnapshot result assigned to _ — the pin can never be released")
			return
		}
		if !pinHandled(body, lhs.Name, "Release") {
			p.Reportf(call.Pos(), "snapshot %q is not released on all paths — defer %s.Release() (or return it / its Release to the caller)", lhs.Name, lhs.Name)
		}
	default:
		// Stored directly into a field or map slot: ownership escapes to
		// the holder; release becomes its lifecycle's responsibility.
	}
}

// checkReleaseVar verifies the binding of a pin helper's release func.
func checkReleaseVar(p *Pass, body *ast.BlockStmt, st *ast.AssignStmt, call *ast.CallExpr, idx int) {
	if idx >= len(st.Lhs) {
		return
	}
	switch lhs := st.Lhs[idx].(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			p.Reportf(call.Pos(), "pin helper %s's release func assigned to _ — the pin can never be released", calleeName(call))
			return
		}
		if !releaseHandled(body, lhs.Name) {
			p.Reportf(call.Pos(), "pin release %q must run via defer (panic-safe) or escape to the caller — a plain call leaks the pin on panic", lhs.Name)
		}
	default:
	}
}

// pinHandled reports whether variable name's pin is released panic-safely
// within body: defer name.Method() (directly or inside a deferred
// closure), or name / name.Method escapes via return or a field store.
func pinHandled(body *ast.BlockStmt, name, method string) bool {
	handled := false
	ast.Inspect(body, func(n ast.Node) bool {
		if handled {
			return false
		}
		switch st := n.(type) {
		case *ast.DeferStmt:
			if callsMethodOn(st.Call, name, method) {
				handled = true
				return false
			}
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok && bodyCallsMethodOn(lit.Body, name, method) {
				handled = true
				return false
			}
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if exprIsIdent(r, name) || exprIsMethodValue(r, name, method) {
					handled = true
					return false
				}
			}
		case *ast.AssignStmt:
			// Storing the pin (or its release) into a field/map/global
			// hands ownership to the holder.
			for i, lhs := range st.Lhs {
				if _, isIdent := lhs.(*ast.Ident); isIdent {
					continue
				}
				if i < len(st.Rhs) && (exprIsIdent(st.Rhs[i], name) || exprIsMethodValue(st.Rhs[i], name, method)) {
					handled = true
					return false
				}
			}
		}
		return true
	})
	return handled
}

// releaseHandled reports whether release-func variable name is deferred,
// returned, or stored within body.
func releaseHandled(body *ast.BlockStmt, name string) bool {
	handled := false
	ast.Inspect(body, func(n ast.Node) bool {
		if handled {
			return false
		}
		switch st := n.(type) {
		case *ast.DeferStmt:
			if exprIsIdent(st.Call.Fun, name) {
				handled = true
				return false
			}
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok && exprIsIdent(c.Fun, name) {
						handled = true
						return false
					}
					return true
				})
				if handled {
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if exprIsIdent(r, name) {
					handled = true
					return false
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if _, isIdent := lhs.(*ast.Ident); isIdent {
					continue
				}
				if i < len(st.Rhs) && exprIsIdent(st.Rhs[i], name) {
					handled = true
					return false
				}
			}
		}
		return true
	})
	return handled
}

func exprIsIdent(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

func exprIsMethodValue(e ast.Expr, recv, method string) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == method && exprIsIdent(sel.X, recv)
}

func callsMethodOn(call *ast.CallExpr, recv, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == method && exprIsIdent(sel.X, recv)
}

func bodyCallsMethodOn(body *ast.BlockStmt, recv, method string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && callsMethodOn(c, recv, method) {
			found = true
			return false
		}
		return true
	})
	return found
}

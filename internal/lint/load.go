package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	Path   string // import path
	Dir    string // absolute directory
	ModDir string // module root
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Loader loads module packages from source with full type information,
// using only the standard library: module-internal imports are resolved
// recursively from the module tree, everything else (the standard
// library) through go/importer's source importer. Test files are skipped
// — the invariants the analyzers enforce are production contracts, and
// tests legitimately poke at internals (e.g. pin a snapshot and sit on it
// to exercise reclamation backpressure).
type Loader struct {
	ModDir  string // module root (directory containing go.mod)
	ModPath string // module path from go.mod

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader locates the enclosing module starting at dir (walking up to
// the go.mod) and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer type-checks the standard library from GOROOT
	// source through go/build; with cgo enabled go/build selects cgo
	// files (net, os/user) the importer cannot process, so force the
	// pure-Go file sets. Only this process's view is affected.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		ModDir:  root,
		ModPath: modPath,
		fset:    fset,
		std:     std,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves the given package patterns ("./...", "./dir/...", "./dir",
// or module-qualified import paths) and returns the loaded packages in
// deterministic path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		expanded, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			dirs[d] = true
		}
	}
	var sorted []string
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	var out []*Package
	for _, d := range sorted {
		pkg, err := l.loadDir(d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// expand turns one pattern into the set of package directories it names.
// Directories named testdata (and hidden directories) are skipped during
// ... expansion, mirroring the go tool, but can still be named directly —
// that is how the fixture corpus is loaded.
func (l *Loader) expand(pat string) ([]string, error) {
	if rest, ok := strings.CutPrefix(pat, l.ModPath); ok {
		pat = "./" + strings.TrimPrefix(rest, "/")
	}
	recursive := false
	if strings.HasSuffix(pat, "/...") {
		recursive = true
		pat = strings.TrimSuffix(pat, "/...")
		if pat == "." || pat == "" {
			pat = "."
		}
	} else if pat == "..." {
		recursive, pat = true, "."
	}
	base := pat
	if !filepath.IsAbs(base) {
		base = filepath.Join(l.ModDir, pat)
	}
	base = filepath.Clean(base)
	if !strings.HasPrefix(base, l.ModDir) {
		return nil, fmt.Errorf("lint: pattern %q escapes module root %s", pat, l.ModDir)
	}
	if !recursive {
		return []string{base}, nil
	}
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		n := e.Name()
		if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks one package directory (cached).
func (l *Loader) loadDir(dir string) (*Package, error) {
	rel, err := filepath.Rel(l.ModDir, dir)
	if err != nil {
		return nil, err
	}
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return l.loadPath(path, dir)
}

func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importerFunc{l, dir}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:   path,
		Dir:    dir,
		ModDir: l.ModDir,
		Fset:   l.fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importerFunc adapts the loader as a types.Importer: module-internal
// import paths load recursively from source, everything else goes to the
// stdlib source importer.
type importerFunc struct {
	l   *Loader
	dir string
}

func (f importerFunc) Import(path string) (*types.Package, error) {
	l := f.l
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		dir := l.ModDir
		if rel != "" {
			dir = filepath.Join(l.ModDir, filepath.FromSlash(rel))
		}
		pkg, err := l.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, f.dir, 0)
}

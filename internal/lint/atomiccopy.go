package lint

import (
	"go/ast"
	"go/types"
)

// atomiccopy enforces the no-copy discipline for the synchronization-
// bearing structs of internal/kv and internal/obs, strictly: any struct
// that (transitively, through fields, embedding, and arrays) holds a
// sync.* or sync/atomic.* value must not be copied by value. go vet's
// copylocks only flags types that reach a Locker; our metrics types wrap
// atomics behind accessors and a copy silently forks the counters — reads
// of the copy freeze while writers keep mutating the original, which is
// exactly the kind of skew the obs layer exists to rule out.
//
// Flagged: value assignments (including *p dereference copies), value
// arguments at call sites, range-clause value variables, returns, and
// by-value receivers/parameters in function signatures. Composite
// literals are fresh values and stay legal.
func atomiccopyAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "atomiccopy",
		Doc:  "structs holding sync/atomic state in internal/kv and internal/obs must never be copied by value",
		Inspects: func(p string) bool {
			return pathHasSuffix(p, "internal/kv", "internal/obs")
		},
		Run: runAtomiccopy,
	}
}

func runAtomiccopy(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncDecl:
				checkSignature(p, st)
			case *ast.AssignStmt:
				for _, rhs := range st.Rhs {
					if copiesSyncValue(p, rhs) {
						p.Reportf(rhs.Pos(), "assignment copies %s, which holds sync/atomic state — share it by pointer", typeName(p, rhs))
					}
				}
			case *ast.CallExpr:
				for _, arg := range st.Args {
					if copiesSyncValue(p, arg) {
						p.Reportf(arg.Pos(), "call passes %s by value, which holds sync/atomic state — pass a pointer", typeName(p, arg))
					}
				}
			case *ast.ReturnStmt:
				for _, r := range st.Results {
					if copiesSyncValue(p, r) {
						p.Reportf(r.Pos(), "return copies %s, which holds sync/atomic state — return a pointer", typeName(p, r))
					}
				}
			case *ast.RangeStmt:
				// The range value ident is recorded in Defs, not Types, so
				// go through TypeOf.
				if st.Value != nil {
					if t := p.Info.TypeOf(st.Value); t != nil && holdsSyncState(t, nil) {
						p.Reportf(st.Value.Pos(), "range value copies %s per element, which holds sync/atomic state — range by index or over pointers", t.String())
					}
				}
			case *ast.GenDecl:
				// var x = y copies like an assignment.
				for _, spec := range st.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						if copiesSyncValue(p, v) {
							p.Reportf(v.Pos(), "declaration copies %s, which holds sync/atomic state — share it by pointer", typeName(p, v))
						}
					}
				}
			}
			return true
		})
	}
}

// checkSignature flags by-value receivers and parameters of sync-bearing
// struct types: calling such a function copies the state at every site.
func checkSignature(p *Pass, fn *ast.FuncDecl) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := p.Info.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.(*types.Pointer); isPtr {
				continue
			}
			if holdsSyncState(tv.Type, nil) {
				p.Reportf(field.Type.Pos(), "%s %s is passed by value and holds sync/atomic state — use a pointer", kind, tv.Type.String())
			}
		}
	}
	check(fn.Recv, "receiver")
	check(fn.Type.Params, "parameter")
}

// copiesSyncValue reports whether evaluating the expression copies a
// sync-bearing struct out of an existing location. Composite literals and
// calls are not copies of shared state (a call's return copy is flagged
// at the callee's return statement).
func copiesSyncValue(p *Pass, e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return false
	}
	t := p.Info.TypeOf(ast.Unparen(e))
	if t == nil {
		return false
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return false
	}
	return holdsSyncState(t, nil)
}

func typeName(p *Pass, e ast.Expr) string {
	if t := p.Info.TypeOf(ast.Unparen(e)); t != nil {
		return t.String()
	}
	return "value"
}

// holdsSyncState reports whether t transitively holds a sync.* or
// sync/atomic.* value by value (through named types, struct fields, and
// arrays; pointers, slices, maps, and interfaces cut the recursion).
func holdsSyncState(t types.Type, seen map[types.Type]bool) bool {
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if pkg := u.Obj().Pkg(); pkg != nil {
			if path := pkg.Path(); path == "sync" || path == "sync/atomic" {
				_, isIface := u.Underlying().(*types.Interface)
				return !isIface // sync.Locker values are fine; state types are not
			}
		}
		return holdsSyncState(u.Underlying(), seen)
	case *types.Alias:
		return holdsSyncState(types.Unalias(u), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if holdsSyncState(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return holdsSyncState(u.Elem(), seen)
	}
	return false
}

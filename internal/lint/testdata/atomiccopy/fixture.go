// Package fixture exercises the atomiccopy rule: structs transitively
// holding sync/atomic state must never be copied by value.
package fixture

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	hits   atomic.Int64
	misses atomic.Int64
}

type guarded struct {
	mu sync.Mutex
	n  int
}

type plain struct{ n int64 }

func use(c *counters) {}

func sink(c counters) {} // want `parameter .*counters is passed by value`

func deref(c *counters) counters {
	cp := *c  // want `assignment copies .*counters`
	return cp // want `return copies .*counters`
}

func (c counters) valueRecv() int64 { return 0 } // want `receiver .*counters is passed by value`

func callByValue(c *counters) {
	sink(*c) // want `call passes .*counters by value`
}

func rangeCopies(cs []counters) {
	for _, c := range cs { // want `range value copies .*counters`
		use(&c)
	}
}

func guardedCopy(g *guarded) int {
	cp := *g // want `assignment copies .*guarded`
	return cp.n
}

var seed counters

var leaked = seed // want `declaration copies .*counters`

func fresh() *counters {
	return &counters{} // ok: composite literal, a fresh value
}

func pointers(c *counters) *counters {
	p := c // ok: pointer copy
	return p
}

func plainCopy(ps []plain) plain {
	var total plain
	for _, p := range ps { // ok: no sync state
		total.n += p.n
	}
	return total
}

// Package fixture exercises the literalleak rule. The sink record types
// are modeled locally — matching is by type name, exactly so fixtures
// (and future sinks) are covered without importing server internals.
package fixture

type CaptureEntry struct {
	Verb     string
	Template string
	Rows     int
}

type StmtUsage struct {
	Verb     string
	Template string
}

type slowEntry struct {
	Template string
	Micros   int64
}

// anonymizeFixture stands in for server.AnonymizeSQL: functions whose
// name contains "anonymize" are the trust roots.
func anonymizeFixture(norm string) string { return norm }

func record(e CaptureEntry) {}
func observe(u StmtUsage)   {}

func goodKeyed(raw string) {
	template := anonymizeFixture(raw)
	record(CaptureEntry{Verb: "select", Template: template, Rows: 1})
}

func badKeyed(raw string) {
	record(CaptureEntry{Verb: "select", Template: raw, Rows: 1}) // want `CaptureEntry\.Template set from raw, which is not anonymized`
}

func badPositional(raw string) {
	observe(StmtUsage{"select", raw}) // want `StmtUsage\.Template set from raw, which is not anonymized`
}

func badFieldAssign(raw string) slowEntry {
	var e slowEntry
	e.Template = raw // want `template Template assigned from raw, which is not anonymized`
	return e
}

func goodLaundered(raw string) slowEntry {
	t := anonymizeFixture(raw)
	s := t // ok: every assignment to s traces back to the anonymizer
	return slowEntry{Template: s, Micros: 1}
}

func badLaundered(raw string) slowEntry {
	s := raw
	return slowEntry{Template: s, Micros: 1} // want `slowEntry\.Template set from s, which is not anonymized`
}

func constantTemplate() StmtUsage {
	return StmtUsage{Verb: "show", Template: "SHOW STATEMENTS"} // ok: constant
}

func byTemplateMap(n int) map[string]int {
	byTemplate := make(map[string]int, n) // ok: not a string slot
	return byTemplate
}

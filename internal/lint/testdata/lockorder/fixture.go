// Package fixture exercises the lockorder rule: relation-lock loops need
// sort evidence, and striped mutexes must not nest outside the documented
// pairs.
package fixture

import (
	"sort"
	"sync"
)

type lockTable struct {
	locks map[string]*sync.RWMutex
}

func (t *lockTable) lockFor(rel string) *sync.RWMutex { return t.locks[rel] }

// sortedAcquire is the documented relation-lock pattern: sort first.
func sortedAcquire(t *lockTable, rels []string) []*sync.RWMutex {
	sort.Strings(rels)
	held := make([]*sync.RWMutex, 0, len(rels))
	for _, r := range rels {
		m := t.lockFor(r)
		m.RLock() // ok: sort evidence above
		held = append(held, m)
	}
	return held
}

// guardedAcquire asserts sortedness instead of sorting — also evidence.
func guardedAcquire(t *lockTable, rels []string) []*sync.RWMutex {
	if !sort.StringsAreSorted(rels) {
		return nil
	}
	held := make([]*sync.RWMutex, 0, len(rels))
	for _, r := range rels {
		m := t.lockFor(r)
		m.RLock() // ok: sortedness asserted above
		held = append(held, m)
	}
	return held
}

// unsortedAcquire accumulates per-relation locks with no ordering proof.
func unsortedAcquire(t *lockTable, rels []string) []*sync.RWMutex {
	held := make([]*sync.RWMutex, 0, len(rels))
	for _, r := range rels {
		m := t.lockFor(r)
		m.RLock() // want `lock acquisition loop ranges over rels without sort evidence`
		held = append(held, m)
	}
	return held
}

// perElementWalk locks and unlocks within each iteration: it never holds
// two relations' locks at once, so order cannot deadlock.
func perElementWalk(t *lockTable, rels []string) int {
	n := 0
	for _, r := range rels {
		m := t.lockFor(r)
		m.Lock()
		n += len(r)
		m.Unlock() // ok: released within the iteration
	}
	return n
}

type shardSet struct {
	shards [16]struct{ mu sync.Mutex }
}

func nestedStripes(s *shardSet, i, j int) {
	s.shards[i].mu.Lock()
	s.shards[j].mu.Lock() // want `striped mutex s\.shards\[j\]\.mu acquired while striped s\.shards\[i\]\.mu is held`
	s.shards[j].mu.Unlock()
	s.shards[i].mu.Unlock()
}

func sequentialStripes(s *shardSet, i, j int) {
	s.shards[i].mu.Lock()
	s.shards[i].mu.Unlock()
	s.shards[j].mu.Lock() // ok: the first stripe is already released
	s.shards[j].mu.Unlock()
}

type relState struct {
	commitMu sync.Mutex
	pinMu    sync.Mutex
}

// commitThenPin follows the documented commitMu -> pinMu hierarchy.
func commitThenPin(rels map[string]*relState, name string) {
	r := rels[name]
	r.commitMu.Lock()
	r.pinMu.Lock() // ok: documented pair
	r.pinMu.Unlock()
	r.commitMu.Unlock()
}

// pinThenCommit inverts the documented order.
func pinThenCommit(rels map[string]*relState, name string) {
	r := rels[name]
	r.pinMu.Lock()
	r.commitMu.Lock() // want `striped mutex r\.commitMu acquired while striped r\.pinMu is held`
	r.commitMu.Unlock()
	r.pinMu.Unlock()
}

// waivedNesting demonstrates the suppression directive.
func waivedNesting(rels map[string]*relState, a, b string) {
	x := rels[a]
	y := rels[b]
	x.commitMu.Lock()
	//lint:ignore zidian/lockorder fixture: exercises the suppression path
	y.commitMu.Lock()
	y.commitMu.Unlock()
	x.commitMu.Unlock()
}

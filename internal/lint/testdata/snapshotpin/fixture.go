// Package fixture exercises the snapshotpin rule: every PinSnapshot
// result (and every pin-helper release func) must be released via defer
// or escape to the caller.
package fixture

import "zidian/internal/baav"

// pinView is a pin-style helper: the release escapes via return — ok.
func pinView(st *baav.Store, rels []string) (*baav.Store, func()) {
	s := st.PinSnapshot(rels)
	return st.AtSnapshot(s), s.Release
}

func deferred(st *baav.Store, rels []string) *baav.Store {
	s := st.PinSnapshot(rels)
	defer s.Release()
	return st.AtSnapshot(s)
}

func deferredClosure(st *baav.Store, rels []string) *baav.Store {
	s := st.PinSnapshot(rels)
	defer func() { s.Release() }()
	return st.AtSnapshot(s)
}

func escapes(st *baav.Store, rels []string) *baav.Snapshot {
	s := st.PinSnapshot(rels) // ok: ownership transfers to the caller
	return s
}

func leaked(st *baav.Store, rels []string) *baav.Store {
	s := st.PinSnapshot(rels) // want `snapshot "s" is not released on all paths`
	return st.AtSnapshot(s)
}

func plainRelease(st *baav.Store, rels []string) {
	s := st.PinSnapshot(rels) // want `snapshot "s" is not released on all paths`
	st.AtSnapshot(s)
	s.Release()
}

func discarded(st *baav.Store, rels []string) {
	st.PinSnapshot(rels) // want `PinSnapshot result discarded`
}

func blank(st *baav.Store, rels []string) {
	_ = st.PinSnapshot(rels) // want `PinSnapshot result assigned to _`
}

func inline(st *baav.Store, rels []string) *baav.Store {
	return st.AtSnapshot(st.PinSnapshot(rels)) // want `PinSnapshot result consumed inline`
}

func releaseDeferred(st *baav.Store, rels []string) {
	v, release := pinView(st, rels)
	defer release()
	_ = v
}

func releasePlain(st *baav.Store, rels []string) {
	v, release := pinView(st, rels) // want `pin release "release" must run via defer`
	_ = v
	release()
}

func releaseBlank(st *baav.Store, rels []string) {
	v, _ := pinView(st, rels) // want `pin helper pinView's release func assigned to _`
	_ = v
}

func releaseForwarded(st *baav.Store, rels []string) func() {
	v, release := pinView(st, rels) // ok: the release escapes via return
	_ = v
	return release
}

// Package fixture exercises the tracethread rule: untraced storage calls
// on a path that has an *obs.Trace or *obs.KV in scope must be flagged,
// calls without a trace in scope must not.
package fixture

import (
	"zidian/internal/baav"
	"zidian/internal/kv"
	"zidian/internal/obs"
)

func keep(k, v []byte) bool { return true }

// tracedParam reaches its trace through a parameter.
func tracedParam(c *kv.Cluster, t *obs.KV) {
	c.Scan([]byte("p"), keep)       // want `untraced Cluster\.Scan on a traced path — use ScanT`
	c.ScanT(nil, []byte("p"), keep) // want `Cluster\.ScanT called with a nil trace`
	c.ScanT(t, []byte("p"), keep)   // ok: trace threaded
	c.Get([]byte("k"))              // want `untraced Cluster\.Get on a traced path — use GetRoutedT`
	c.GetRoutedT(t, []byte("k"), []byte("k"))
}

type env struct {
	store *baav.Store
	kvt   *obs.KV
}

// fieldTrace reaches its trace through a field read in the body.
func (e *env) fieldTrace(name string) {
	e.store.GetBlock(name, nil) // want `untraced Store\.GetBlock on a traced path — use GetBlockT`
	_ = e.kvt
}

// untraced has no trace anywhere: plain variants are the right call.
func untraced(c *kv.Cluster) {
	c.Scan([]byte("p"), keep) // ok: no trace in scope
}

// waived demonstrates the suppression directive.
func waived(c *kv.Cluster, t *obs.KV) {
	//lint:ignore zidian/tracethread fixture: cold path, deliberately untraced
	c.Scan([]byte("p"), keep)
	_ = t
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// literalleak enforces the PR 7 privacy contract: the slow-query log, the
// workload capture stream, and the statement-statistics registry only
// ever see anonymized templates — never normalized or raw SQL, which
// still embeds literal data values. Concretely:
//
//   - the Template field of a sink record (obs.StmtUsage, CaptureEntry,
//     slowEntry — matched by type name so fixtures can model them) must
//     be built from an anonymization call (a callee whose name contains
//     "anonymize"), a template-named field/variable, or a constant;
//   - every assignment to a template-named variable or field must itself
//     have such an origin, so the trusted names can't be laundered.
//
// Functions whose own name contains "anonymize" are the trust roots (they
// legitimately manipulate raw text to produce the template) and are
// skipped.
func literalleakAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "literalleak",
		Doc:  "slow-log/capture/StmtStats sinks only see AnonymizeSQL output or template fields, never raw SQL",
		Inspects: func(p string) bool {
			return pathHasSuffix(p, "internal/server", "internal/obs", "cmd/zidian-sql")
		},
		Run: runLiteralleak,
	}
}

// sinkRecordTypes are the struct type names whose Template field feeds a
// privacy-sensitive sink.
var sinkRecordTypes = map[string]bool{
	"StmtUsage":    true, // statement-statistics registry
	"CaptureEntry": true, // workload capture stream
	"slowEntry":    true, // slow-query log line
}

func runLiteralleak(p *Pass) {
	for _, f := range p.Files {
		for _, fb := range funcBodies(f) {
			if fb.decl == nil {
				continue
			}
			if strings.Contains(strings.ToLower(fb.name), "anonymize") {
				continue // trust root
			}
			body := fb.decl.Body
			ast.Inspect(body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.CompositeLit:
					checkSinkLiteral(p, body, st)
				case *ast.AssignStmt:
					checkTemplateAssign(p, body, st)
				}
				return true
			})
		}
	}
}

// templateName reports whether the identifier names a template slot.
func templateName(name string) bool {
	return name == "Template" || name == "template" ||
		strings.HasSuffix(name, "Template") || strings.HasSuffix(name, "template")
}

// isStringType reports whether t is (an alias or named form of) string —
// template slots hold text; maps or counters keyed "byTemplate" are not
// leak surfaces.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkSinkLiteral verifies the Template value of a sink-record composite
// literal, and of any keyed literal writing a template-named field.
func checkSinkLiteral(p *Pass, body *ast.BlockStmt, lit *ast.CompositeLit) {
	tv, ok := p.Info.Types[lit]
	if !ok {
		return
	}
	named, isNamed := namedOf(tv.Type)
	isSink := isNamed && sinkRecordTypes[named.Obj().Name()]
	for i, el := range lit.Elts {
		if kvExpr, ok := el.(*ast.KeyValueExpr); ok {
			key, ok := kvExpr.Key.(*ast.Ident)
			if !ok || !templateName(key.Name) {
				continue
			}
			if tv, ok := p.Info.Types[kvExpr.Value]; ok && !isStringType(tv.Type) {
				continue
			}
			if !anonymizedOrigin(p, body, kvExpr.Value, 0) {
				p.Reportf(kvExpr.Value.Pos(), "%s.%s set from %s, which is not anonymized — route it through AnonymizeSQL (raw/normalized SQL embeds literal data values)", litTypeName(named, isNamed), key.Name, exprString(kvExpr.Value))
			}
			continue
		}
		// Positional literal of a sink record: find the Template field.
		if !isSink {
			continue
		}
		if st, ok := named.Underlying().(*types.Struct); ok && i < st.NumFields() && templateName(st.Field(i).Name()) {
			if !anonymizedOrigin(p, body, el, 0) {
				p.Reportf(el.Pos(), "%s.%s set from %s, which is not anonymized — route it through AnonymizeSQL", named.Obj().Name(), st.Field(i).Name(), exprString(el))
			}
		}
	}
}

func litTypeName(named *types.Named, ok bool) string {
	if !ok {
		return "struct"
	}
	return named.Obj().Name()
}

// checkTemplateAssign verifies assignments to template-named variables
// and fields.
func checkTemplateAssign(p *Pass, body *ast.BlockStmt, st *ast.AssignStmt) {
	for i, lhs := range st.Lhs {
		name := selectorName(lhs)
		if !templateName(name) {
			continue
		}
		if tv, ok := p.Info.Types[lhs]; ok && !isStringType(tv.Type) {
			continue
		}
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := objOf(p, id); obj != nil && !isStringType(obj.Type()) {
				continue
			}
		}
		// Tuple assignment from one call: the call is the origin of every
		// LHS; otherwise pair positionally.
		var rhs ast.Expr
		if len(st.Rhs) == 1 {
			rhs = st.Rhs[0]
		} else if i < len(st.Rhs) {
			rhs = st.Rhs[i]
		}
		if rhs == nil {
			continue
		}
		if !anonymizedOrigin(p, body, rhs, 0) {
			p.Reportf(rhs.Pos(), "template %s assigned from %s, which is not anonymized — only AnonymizeSQL output (or another template) may flow into a template slot", name, exprString(rhs))
		}
	}
}

// objOf resolves an identifier to its object, whether the site is a use
// or a definition (:=).
func objOf(p *Pass, id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// anonymizedOrigin reports whether the expression's value provably comes
// from anonymization: an anonymize call, a template-named field or
// variable (whose own assignments are checked by checkTemplateAssign), a
// constant, or a local variable all of whose assignments in this function
// have an anonymized origin.
func anonymizedOrigin(p *Pass, body *ast.BlockStmt, e ast.Expr, depth int) bool {
	if depth > 6 {
		return false
	}
	e = ast.Unparen(e)
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
		return true // constant
	}
	switch x := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.CallExpr:
		return strings.Contains(strings.ToLower(calleeName(x)), "anonymize")
	case *ast.SelectorExpr:
		return templateName(x.Sel.Name)
	case *ast.BinaryExpr:
		return anonymizedOrigin(p, body, x.X, depth+1) && anonymizedOrigin(p, body, x.Y, depth+1)
	case *ast.Ident:
		if templateName(x.Name) {
			return true
		}
		// Follow local assignments: every write to this variable in the
		// function must itself be anonymized.
		obj := objOf(p, x)
		if obj == nil {
			return false
		}
		sawAssign := false
		clean := true
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if p.Info.Defs[id] != obj && p.Info.Uses[id] != obj {
					continue
				}
				sawAssign = true
				var rhs ast.Expr
				if len(as.Rhs) == 1 {
					rhs = as.Rhs[0]
				} else if i < len(as.Rhs) {
					rhs = as.Rhs[i]
				}
				if rhs == nil || !anonymizedOrigin(p, body, rhs, depth+1) {
					clean = false
				}
			}
			return true
		})
		return sawAssign && clean
	}
	return false
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared type- and AST-level helpers for the domain analyzers.

// namedOf unwraps pointers and aliases down to the *types.Named, if any.
func namedOf(t types.Type) (*types.Named, bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u, true
		default:
			return nil, false
		}
	}
}

// isTypeFrom reports whether t (through pointers) is the named type
// pkgSuffix.name, where pkgSuffix is matched as a full import-path suffix
// ("internal/obs" matches "zidian/internal/obs" but not "x/obs2").
func isTypeFrom(t types.Type, pkgSuffix, name string) bool {
	n, ok := namedOf(t)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	return pathHasSuffix(n.Obj().Pkg().Path(), pkgSuffix)
}

// isObsTraceOrKV reports whether t is *obs.Trace or *obs.KV (or the bare
// named types).
func isObsTraceOrKV(t types.Type) bool {
	return isTypeFrom(t, "internal/obs", "Trace") || isTypeFrom(t, "internal/obs", "KV")
}

// hasMethod reports whether the named type (or its pointer) has a method
// with the given name.
func hasMethod(n *types.Named, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(n), true, n.Obj().Pkg(), name)
	_, ok := obj.(*types.Func)
	return ok
}

// isNilIdent reports whether the expression is the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// funcBody is one analyzable function-like body: a declaration or a
// literal, with the nodes that carry its parameters.
type funcBody struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
	name string
}

// funcBodies returns every function declaration and function literal in
// the file, each as its own analysis unit.
func funcBodies(f *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcBody{decl: fn, body: fn.Body, name: fn.Name.Name})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{lit: fn, body: fn.Body, name: "func literal"})
		}
		return true
	})
	return out
}

// identsIn collects the names of every identifier in the expression.
func identsIn(e ast.Expr) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			out[id.Name] = true
		}
		return true
	})
	return out
}

// rootIdent returns the leftmost identifier of a selector/index/star
// chain: rootIdent(a.b[i].c) == a.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

// selectorName returns the rightmost name of an expression: the selected
// field/method for selectors, the identifier name otherwise.
func selectorName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

// calleeName returns the called function or method's bare name.
func calleeName(call *ast.CallExpr) string {
	return selectorName(call.Fun)
}

// exprString renders a (small) expression for use as a lock identity key
// and in messages.
func exprString(e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		b.WriteString(x.Name)
	case *ast.SelectorExpr:
		writeExpr(b, x.X)
		b.WriteByte('.')
		b.WriteString(x.Sel.Name)
	case *ast.IndexExpr:
		writeExpr(b, x.X)
		b.WriteByte('[')
		writeExpr(b, x.Index)
		b.WriteByte(']')
	case *ast.StarExpr:
		b.WriteByte('*')
		writeExpr(b, x.X)
	case *ast.CallExpr:
		writeExpr(b, x.Fun)
		b.WriteString("(…)")
	case *ast.ParenExpr:
		writeExpr(b, x.X)
	default:
		b.WriteString("?")
	}
}

// Package lint is zidian's self-contained static-analysis framework: a
// package loader built on the stdlib go/parser + go/types (no x/tools —
// the module stays dependency-free), a small analyzer registry, and the
// domain analyzers that mechanically enforce the codebase's concurrency
// and privacy contracts:
//
//   - tracethread: query-path packages must thread the *obs.Trace /
//     *obs.KV into every kv/index/store call that has a traced variant.
//   - snapshotpin: every MVCC PinSnapshot (and every pin-style helper
//     returning a release func) must release via defer or escape to the
//     caller, so a panicking executor can never stall the reclamation
//     watermark.
//   - lockorder: relation-lock acquisition loops iterate sorted slices,
//     and striped/per-node mutexes never nest outside the documented
//     pairs.
//   - literalleak: slow-log, capture, and statement-statistics sinks only
//     ever see anonymized templates, never raw SQL text.
//   - atomiccopy: structs holding sync or sync/atomic state in
//     internal/kv and internal/obs are never copied by value (stricter
//     than vet's copylocks, which misses our atomics wrappers).
//
// Findings can be waived with a directive on the offending line or the
// line above:
//
//	//lint:ignore zidian/<rule> <reason>
//
// The driver counts waivers and prints them, so suppressions stay visible
// in CI output instead of silently rotting.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired, and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Suppression records one finding waived by a //lint:ignore directive.
type Suppression struct {
	Diag   Diagnostic
	Reason string
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Fset    *token.FileSet
	Path    string // import path
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	ModDir  string // module root, for rendering relative positions
	analyz  *Analyzer
	reports *[]Diagnostic
}

// Reportf records a finding at pos under the pass's rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if rel, ok := strings.CutPrefix(position.Filename, p.ModDir+"/"); ok {
		position.Filename = rel
	}
	*p.reports = append(*p.reports, Diagnostic{
		Pos:     position,
		Rule:    p.analyz.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one registered rule.
type Analyzer struct {
	Name string // rule name as used in directives: zidian/<Name>
	Doc  string // one-line invariant statement
	// Inspects reports whether the analyzer wants the package. Testdata
	// fixture packages (path containing "lint/testdata/") are always
	// offered so the rule corpus exercises every analyzer regardless of
	// its production scoping.
	Inspects func(pkgPath string) bool
	Run      func(*Pass)
}

// Analyzers returns the full registry in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		tracethreadAnalyzer(),
		snapshotpinAnalyzer(),
		lockorderAnalyzer(),
		literalleakAnalyzer(),
		atomiccopyAnalyzer(),
	}
}

// Select filters the registry by a -rules spec: a comma-separated list of
// rule names to run, each optionally prefixed with '-' to skip instead.
// Mixing selects and skips applies skips to the selected set (or to the
// full set when only skips are given). An empty spec selects everything.
func Select(all []*Analyzer, spec string) ([]*Analyzer, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	selected := make(map[string]bool)
	skipped := make(map[string]bool)
	anySelect := false
	for _, tok := range strings.Split(spec, ",") {
		name := strings.TrimSpace(tok)
		if name == "" {
			continue
		}
		skip := strings.HasPrefix(name, "-")
		name = strings.TrimPrefix(name, "-")
		name = strings.TrimPrefix(name, "zidian/")
		if _, ok := byName[name]; !ok {
			known := make([]string, 0, len(all))
			for _, a := range all {
				known = append(known, a.Name)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("lint: unknown rule %q (known: %s)", name, strings.Join(known, ", "))
		}
		if skip {
			skipped[name] = true
		} else {
			selected[name] = true
			anySelect = true
		}
	}
	var out []*Analyzer
	for _, a := range all {
		if skipped[a.Name] {
			continue
		}
		if anySelect && !selected[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

// inTestdata reports whether the package is a lint fixture package.
func inTestdata(pkgPath string) bool {
	return strings.Contains(pkgPath, "lint/testdata/")
}

// pathHasSuffix reports whether the import path is exactly one of the
// given module-relative suffixes (e.g. "internal/kv").
func pathHasSuffix(pkgPath string, suffixes ...string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// Result is one full driver run: every finding partitioned into live
// diagnostics and waived suppressions.
type Result struct {
	Findings    []Diagnostic
	Suppressed  []Suppression
	Packages    int
	RulesRun    []string
	moduleDir   string
	suppression map[string]map[int]directive // file -> line -> directive
}

type directive struct {
	rule   string
	reason string
	used   bool
}

// Run executes the analyzers over the loaded packages, applies
// //lint:ignore directives, and returns the partitioned result sorted by
// position.
func Run(pkgs []*Package, analyzers []*Analyzer) *Result {
	res := &Result{suppression: make(map[string]map[int]directive)}
	var raw []Diagnostic
	for _, pkg := range pkgs {
		res.Packages++
		collectDirectives(pkg, res)
		for _, a := range analyzers {
			if a.Inspects != nil && !a.Inspects(pkg.Path) && !inTestdata(pkg.Path) {
				continue
			}
			pass := &Pass{
				Fset:    pkg.Fset,
				Path:    pkg.Path,
				Files:   pkg.Files,
				Pkg:     pkg.Types,
				Info:    pkg.Info,
				ModDir:  pkg.ModDir,
				analyz:  a,
				reports: &raw,
			}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		res.RulesRun = append(res.RulesRun, a.Name)
	}
	for _, d := range raw {
		if reason, ok := res.suppressedBy(d); ok {
			res.Suppressed = append(res.Suppressed, Suppression{Diag: d, Reason: reason})
			continue
		}
		res.Findings = append(res.Findings, d)
	}
	sortDiags(res.Findings)
	sort.Slice(res.Suppressed, func(i, j int) bool {
		return diagLess(res.Suppressed[i].Diag, res.Suppressed[j].Diag)
	})
	return res
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool { return diagLess(ds[i], ds[j]) })
}

func diagLess(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Rule < b.Rule
}

// collectDirectives indexes every //lint:ignore comment in the package by
// file and line.
func collectDirectives(pkg *Package, res *Result) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore"))
				parts := strings.SplitN(rest, " ", 2)
				rule := strings.TrimPrefix(parts[0], "zidian/")
				reason := ""
				if len(parts) == 2 {
					reason = strings.TrimSpace(parts[1])
				}
				pos := pkg.Fset.Position(c.Pos())
				name := pos.Filename
				if rel, ok := strings.CutPrefix(name, pkg.ModDir+"/"); ok {
					name = rel
				}
				if res.suppression[name] == nil {
					res.suppression[name] = make(map[int]directive)
				}
				res.suppression[name][pos.Line] = directive{rule: rule, reason: reason}
			}
		}
	}
}

// suppressedBy reports whether a directive on the diagnostic's line, or on
// the line immediately above it, waives the finding.
func (res *Result) suppressedBy(d Diagnostic) (string, bool) {
	lines := res.suppression[d.Pos.Filename]
	if lines == nil {
		return "", false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if dir, ok := lines[line]; ok && (dir.rule == d.Rule || dir.rule == "*") {
			return dir.reason, true
		}
	}
	return "", false
}

package lint

import (
	"regexp"
	"strings"
	"testing"
)

// expectation is one `// want `regex“ marker in a fixture file.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile("// want `([^`]+)`")

// suppressedWant is the number of //lint:ignore waivers each fixture
// package exercises on purpose.
var suppressedWant = map[string]int{
	"tracethread": 1,
	"lockorder":   1,
}

// TestAnalyzerFixtures runs each analyzer over its fixture package in
// testdata/<rule>/ and asserts the diagnostics match the `// want`
// markers exactly: every marker fires, nothing else does, and waived
// findings land in Suppressed instead.
func TestAnalyzerFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			// Load patterns resolve against the module root.
			pkgs, err := loader.Load("./internal/lint/testdata/" + a.Name)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("loaded %d packages, want 1", len(pkgs))
			}
			res := Run(pkgs, []*Analyzer{a})
			wants := collectWants(t, pkgs[0])
			if len(wants) == 0 {
				t.Fatal("fixture has no // want markers — it validates nothing")
			}
			for _, d := range res.Findings {
				if d.Rule != a.Name {
					t.Errorf("diagnostic from foreign rule %q: %s", d.Rule, d)
					continue
				}
				matched := false
				for _, w := range wants {
					if sameFile(d.Pos.Filename, w.file) && d.Pos.Line == w.line && w.re.MatchString(d.Message) {
						w.hit = true
						matched = true
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
				}
			}
			if got, want := len(res.Suppressed), suppressedWant[a.Name]; got != want {
				t.Errorf("suppressed %d findings, want %d", got, want)
				for _, s := range res.Suppressed {
					t.Logf("suppressed: %s (%s)", s.Diag, s.Reason)
				}
			}
		})
	}
}

// collectWants extracts the `// want` markers from the fixture's parsed
// comments (the loader keeps them via parser.ParseComments).
func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// sameFile matches the module-relative diagnostic filename against the
// fixture's absolute filename.
func sameFile(a, b string) bool {
	return a == b || strings.HasSuffix(a, b) || strings.HasSuffix(b, a)
}

func TestSelect(t *testing.T) {
	all := Analyzers()

	got, err := Select(all, "")
	if err != nil || len(got) != len(all) {
		t.Fatalf("empty spec: got %d analyzers, err=%v; want all %d", len(got), err, len(all))
	}

	got, err = Select(all, "snapshotpin, zidian/lockorder")
	if err != nil {
		t.Fatal(err)
	}
	if names(got) != "snapshotpin,lockorder" {
		t.Errorf("select spec: got %s, want snapshotpin,lockorder", names(got))
	}

	got, err = Select(all, "-zidian/literalleak")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all)-1 || strings.Contains(names(got), "literalleak") {
		t.Errorf("skip spec: got %s", names(got))
	}

	if _, err := Select(all, "nosuchrule"); err == nil {
		t.Error("unknown rule accepted")
	}
}

func names(as []*Analyzer) string {
	var b []string
	for _, a := range as {
		b = append(b, a.Name)
	}
	return strings.Join(b, ",")
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// tracethread enforces the PR 6/9 observability contract: on the query
// path (internal/index, internal/baav, internal/kba, internal/parallel,
// internal/core), every kv.Cluster / index.Manager / baav.Store call that
// has a traced variant must use it when the enclosing function has an
// *obs.Trace or *obs.KV in scope. An untraced call in a traced function
// silently drops its kv ops from EXPLAIN ANALYZE, /metrics, the slow-query
// log, and the statement-statistics registry — the totals stop reconciling
// and nobody notices until a benchmark disagrees with the trace.
//
// A function "has a trace in scope" when a receiver, parameter, or any
// expression in its body is typed *obs.Trace or *obs.KV (so executor
// methods reaching their trace through e.kv() count). Flagged:
//
//   - recv.M(...) where recv is one of the three storage types and MT (or
//     MRoutedT, for the Get/Put/Delete convenience wrappers) exists;
//   - recv.MT(nil, ...) — a traced variant explicitly discarding the
//     in-scope trace.
func tracethreadAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "tracethread",
		Doc:  "query-path storage calls must thread the in-scope *obs.Trace/*obs.KV through ...T variants",
		Inspects: func(p string) bool {
			return pathHasSuffix(p, "internal/index", "internal/baav", "internal/kba", "internal/parallel", "internal/core")
		},
		Run: runTracethread,
	}
}

func runTracethread(p *Pass) {
	for _, f := range p.Files {
		for _, fb := range funcBodies(f) {
			// Function literals share their enclosing declaration's
			// scope; analyzing them standalone would double-report, so
			// only walk declarations (their Inspect covers nested lits).
			if fb.decl == nil {
				continue
			}
			if !traceInScope(p, fb.decl) {
				continue
			}
			ast.Inspect(fb.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := p.Info.Selections[sel]
				if !ok || selection.Kind() != types.MethodVal {
					return true
				}
				recv, ok := namedOf(selection.Recv())
				if !ok || !isStorageType(recv) {
					return true
				}
				name := sel.Sel.Name
				if strings.HasSuffix(name, "T") {
					if len(call.Args) > 0 && isNilIdent(call.Args[0]) {
						p.Reportf(call.Pos(), "%s.%s called with a nil trace while an *obs.Trace/*obs.KV is in scope — thread it", recv.Obj().Name(), name)
					}
					return true
				}
				if traced := tracedVariant(recv, name); traced != "" {
					p.Reportf(call.Pos(), "untraced %s.%s on a traced path — use %s with the in-scope trace", recv.Obj().Name(), name, traced)
				}
				return true
			})
		}
	}
}

// traceInScope reports whether the function can reach a trace: a receiver
// or parameter of type *obs.Trace/*obs.KV, or any expression in the body
// of one of those types (a field read like e.Trace, or a call like e.kv()).
func traceInScope(p *Pass, fn *ast.FuncDecl) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, field := range fl.List {
			if t, ok := p.Info.Types[field.Type]; ok && isObsTraceOrKV(t.Type) {
				return true
			}
		}
		return false
	}
	if check(fn.Recv) || check(fn.Type.Params) {
		return true
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := p.Info.Types[e]; ok && isObsTraceOrKV(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isStorageType reports whether the named type is kv.Cluster,
// index.Manager, or baav.Store.
func isStorageType(n *types.Named) bool {
	pkg := n.Obj().Pkg()
	if pkg == nil {
		return false
	}
	switch n.Obj().Name() {
	case "Cluster":
		return pathHasSuffix(pkg.Path(), "internal/kv")
	case "Manager":
		return pathHasSuffix(pkg.Path(), "internal/index")
	case "Store":
		return pathHasSuffix(pkg.Path(), "internal/baav")
	}
	return false
}

// tracedVariant returns the name of the traced sibling of method name on
// recv, or "" when none exists: MT, or MRoutedT for the convenience
// wrappers (Get -> GetRoutedT) that route through a routed traced call.
func tracedVariant(recv *types.Named, name string) string {
	if hasMethod(recv, name+"T") {
		return name + "T"
	}
	if hasMethod(recv, name+"RoutedT") {
		return name + "RoutedT"
	}
	return ""
}

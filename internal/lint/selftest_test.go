package lint

import "testing"

// TestRepoInvariants is the regression guard the linter exists for: it
// runs every analyzer over the whole module in-process, so a change that
// violates a concurrency or privacy contract fails plain `go test ./...`
// even when nobody remembers to run zidian-vet. Waivers stay visible in
// the verbose log rather than failing the build.
func TestRepoInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the full module")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages — the loader is missing most of the module", len(pkgs))
	}
	res := Run(pkgs, Analyzers())
	for _, d := range res.Findings {
		t.Errorf("%s", d)
	}
	for _, s := range res.Suppressed {
		t.Logf("waived: %s (%s)", s.Diag, s.Reason)
	}
}

package parallel

import (
	"time"

	"zidian/internal/baav"
	"zidian/internal/core"
	"zidian/internal/kba"
	"zidian/internal/ra"
	"zidian/internal/relation"
)

// RunKBAFetchAll executes a KBA plan with the strawman parallelization the
// paper describes and rejects in Section 7.1: fetch every relevant KV
// instance from the BaaV store first (full scans), flatten ∝ into ordinary
// hash joins, and only then compute. It answers correctly but forfeits the
// scan-free guarantee; the ablation benchmark contrasts it with the
// interleaved RunKBA.
func RunKBAFetchAll(info *core.PlanInfo, store *baav.Store, workers int) (*ra.Result, *Metrics, error) {
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	if info.Empty {
		res, err := info.ToResult(nil)
		return res, &Metrics{Workers: workers, Wall: time.Since(start)}, err
	}
	e := &kbaExec{store: store, workers: workers, fetchAll: true}
	v, err := e.run(info.Root)
	if err != nil {
		return nil, nil, err
	}
	flat, err := kba.FromRows(v.attrs, v.rows(), v.attrs)
	if err != nil {
		return nil, nil, err
	}
	res, err := info.ToResult(flat)
	if err != nil {
		return nil, nil, err
	}
	return res, e.c.metrics(workers, time.Since(start)), nil
}

// runExtendFetchAll replaces the interleaved ∝ with retrieve-then-join: the
// whole parameter instance is scanned into a per-worker hash index, the
// input is repartitioned by the join key, and the join runs locally.
func (e *kbaExec) runExtendFetchAll(n *kba.Extend) (*pval, error) {
	in, err := e.run(n.Input)
	if err != nil {
		return nil, err
	}
	kvSchema := e.store.Schema.ByName(n.KV)
	if kvSchema == nil {
		return nil, errUnknownKV(n.KV)
	}
	keyIdx, err := in.positions(n.KeyFrom)
	if err != nil {
		return nil, err
	}
	// Phase 1: fetch the entire instance, workers splitting storage nodes,
	// indexing blocks by key and placing each block on its hash owner (the
	// shuffle the strawman pays for the whole relation).
	nodes := e.store.Cluster.NodeCount()
	type chunk struct {
		key  string
		home int
		rows []relation.Tuple
	}
	chunks := make([][]chunk, e.workers)
	err = forWorkers(e.workers, func(w int) error {
		var local []chunk
		var data, fetch, moved int64
		for node := w; node < nodes; node += e.workers {
			err := e.store.ScanInstanceNodeT(e.kv(), node, n.KV, func(key relation.Tuple, blk *baav.Block, _ *baav.BlockStats) bool {
				rows := blk.Expand()
				e.trace.CountBlocks(1)
				data += int64(len(rows)*len(kvSchema.Val) + len(key))
				fetch += int64(key.SizeBytes())
				all := make([]int, len(key))
				for i := range all {
					all[i] = i
				}
				home := hashTuple(key, all, e.workers)
				if home != w {
					for _, r := range rows {
						moved += int64(r.SizeBytes())
					}
				}
				for _, r := range rows {
					fetch += int64(r.SizeBytes())
				}
				local = append(local, chunk{key: relation.KeyString(key), home: home, rows: rows})
				return true
			})
			if err != nil {
				return err
			}
		}
		e.c.data.Add(data)
		e.c.fetch.Add(fetch)
		e.c.shuffle.Add(moved)
		chunks[w] = local
		return nil
	})
	if err != nil {
		return nil, err
	}
	indexes := make([]map[string][]relation.Tuple, e.workers)
	for w := range indexes {
		indexes[w] = make(map[string][]relation.Tuple)
	}
	for _, cs := range chunks {
		for _, c := range cs {
			indexes[c.home][c.key] = append(indexes[c.home][c.key], c.rows...)
		}
	}

	// Phase 2: repartition the input by key and hash join locally.
	shuffled := repartition(in, keyIdx, &e.c.shuffle)
	outAttrs := append(append([]string{}, in.attrs...), qualify(n.Alias, kvSchema.Val)...)
	out := newPval(outAttrs, e.workers)
	err = forWorkers(e.workers, func(w int) error {
		var local []relation.Tuple
		for _, row := range shuffled.parts[w] {
			k := relation.KeyString(row.Project(keyIdx))
			for _, r := range indexes[w][k] {
				local = append(local, row.Concat(r))
			}
		}
		out.parts[w] = local
		return nil
	})
	return out, err
}

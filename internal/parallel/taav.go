package parallel

import (
	"fmt"
	"time"

	"zidian/internal/kba"
	"zidian/internal/ra"
	"zidian/internal/relation"
	"zidian/internal/sql"
	"zidian/internal/taav"
)

// RunTaaV executes a query with the baseline SQL-over-NoSQL strategy in
// parallel: every relation the query mentions is fully retrieved from the
// storage layer (workers split the storage nodes), shipped to the SQL
// layer, and joined there with hash shuffles — no predicate pushdown, no
// index access, exactly the behaviour the paper attributes to TaaV systems.
func RunTaaV(q *ra.Query, store *taav.Store, workers int) (*ra.Result, *Metrics, error) {
	if q.NumParams > 0 {
		return nil, nil, fmt.Errorf("parallel: cannot run a template with %d unbound parameters (bind first)", q.NumParams)
	}
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	e := &kbaExec{workers: workers} // reuses shuffle/groupby machinery

	// Phase 1: retrieve. One scan per distinct relation; aliases share rows.
	scanned := make(map[string]*pval)
	nodes := store.Cluster.NodeCount()
	for _, atom := range q.Atoms {
		if _, ok := scanned[atom.Rel]; ok {
			continue
		}
		raw := newPval(atom.Schema.AttrNames(), workers)
		err := forWorkers(workers, func(w int) error {
			var local []relation.Tuple
			var gets, data, fetch int64
			for node := w; node < nodes; node += workers {
				err := store.ScanNode(node, atom.Rel, func(t relation.Tuple) bool {
					local = append(local, t)
					gets++
					data += int64(len(t))
					fetch += int64(t.SizeBytes())
					return true
				})
				if err != nil {
					return err
				}
			}
			e.c.gets.Add(gets)
			e.c.data.Add(data)
			e.c.fetch.Add(fetch)
			raw.parts[w] = local
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		scanned[atom.Rel] = raw
	}

	// Per-atom views with qualified attributes and local predicates applied
	// (in the SQL layer, after retrieval).
	atomVals := make([]*pval, len(q.Atoms))
	for i, atom := range q.Atoms {
		raw := scanned[atom.Rel]
		v := &pval{attrs: qualify(atom.Alias, atom.Schema.AttrNames()), parts: raw.parts}
		preds := localPreds(q, atom.Alias)
		if len(preds) > 0 {
			check, err := kba.CompilePreds(v.attrs, preds)
			if err != nil {
				return nil, nil, err
			}
			filtered := newPval(v.attrs, workers)
			if err := forWorkers(workers, func(w int) error {
				var local []relation.Tuple
				for _, row := range v.parts[w] {
					if check(row) {
						local = append(local, row)
					}
				}
				filtered.parts[w] = local
				return nil
			}); err != nil {
				return nil, nil, err
			}
			v = filtered
		}
		atomVals[i] = v
	}

	// Phase 2: parallel hash joins in atom order.
	acc := atomVals[0]
	eqDone := make(map[int]bool)
	fDone := make(map[int]bool)
	has := func(attrs []string, name string) bool {
		for _, a := range attrs {
			if a == name {
				return true
			}
		}
		return false
	}
	for i := 1; i < len(q.Atoms); i++ {
		next := atomVals[i]
		var lOn, rOn []string
		for ei, eq := range q.EqAttrs {
			if eqDone[ei] {
				continue
			}
			l, r := eq.L.String(), eq.R.String()
			if has(acc.attrs, r) && has(next.attrs, l) {
				l, r = r, l
			}
			if has(acc.attrs, l) && has(next.attrs, r) {
				lOn = append(lOn, l)
				rOn = append(rOn, r)
				eqDone[ei] = true
			}
		}
		joined, err := e.joinPvals(acc, next, lOn, rOn)
		if err != nil {
			return nil, nil, err
		}
		acc = joined
		// Newly bound cross-atom predicates.
		var preds []kba.Pred
		for ei, eq := range q.EqAttrs {
			if !eqDone[ei] && has(acc.attrs, eq.L.String()) && has(acc.attrs, eq.R.String()) {
				preds = append(preds, kba.Pred{Attr: eq.L.String(), Op: sql.OpEq, RAttr: eq.R.String()})
				eqDone[ei] = true
			}
		}
		for fi, f := range q.Filters {
			if fDone[fi] || f.RCol == nil {
				continue
			}
			if has(acc.attrs, f.Col.String()) && has(acc.attrs, f.RCol.String()) {
				preds = append(preds, kba.Pred{Attr: f.Col.String(), Op: f.Op, RAttr: f.RCol.String()})
				fDone[fi] = true
			}
		}
		if len(preds) > 0 {
			check, err := kba.CompilePreds(acc.attrs, preds)
			if err != nil {
				return nil, nil, err
			}
			filtered := newPval(acc.attrs, workers)
			if err := forWorkers(workers, func(w int) error {
				var local []relation.Tuple
				for _, row := range acc.parts[w] {
					if check(row) {
						local = append(local, row)
					}
				}
				filtered.parts[w] = local
				return nil
			}); err != nil {
				return nil, nil, err
			}
			acc = filtered
		}
	}

	// Phase 3: projection / aggregation tail.
	var outCols []string
	var keyCols []string
	seen := make(map[string]bool)
	for _, ref := range q.Proj {
		col := ref.String()
		outCols = append(outCols, col)
		if !seen[col] {
			seen[col] = true
			keyCols = append(keyCols, col)
		}
	}
	var final *pval
	if q.IsAggregate() {
		specs := make([]kba.AggSpec, len(q.Aggs))
		for i, a := range q.Aggs {
			spec := kba.AggSpec{Func: a.Func, Star: a.Star, Name: a.Name}
			if !a.Star {
				spec.Attr = a.Col.String()
			}
			specs[i] = spec
			outCols = append(outCols, a.Name)
		}
		v, err := e.runGroupBy(&kba.GroupBy{Input: &litPlan{acc}, Keys: keyCols, Aggs: specs})
		if err != nil {
			return nil, nil, err
		}
		final = v
	} else {
		v, err := e.runProject(&kba.Project{Input: &litPlan{acc}, Attrs: keyCols})
		if err != nil {
			return nil, nil, err
		}
		if q.Distinct {
			if v, err = e.runDistinct(&kba.Distinct{Input: &litPlan{v}}); err != nil {
				return nil, nil, err
			}
		}
		final = v
	}

	idx, err := final.positions(outCols)
	if err != nil {
		return nil, nil, err
	}
	res := &ra.Result{Cols: q.OutNames}
	for _, row := range final.rows() {
		res.Rows = append(res.Rows, row.Project(idx))
	}
	if err := ra.OrderAndLimit(res, q.OrderBy, q.Limit); err != nil {
		return nil, nil, err
	}
	return res, e.c.metrics(workers, time.Since(start)), nil
}

// joinPvals hash-joins two partitioned relations on the paired columns.
func (e *kbaExec) joinPvals(l, r *pval, lOn, rOn []string) (*pval, error) {
	if len(lOn) != len(rOn) {
		return nil, fmt.Errorf("parallel: join attribute lists differ")
	}
	return e.runJoin(&kba.Join{L: &litPlan{l}, R: &litPlan{r}, LOn: lOn, ROn: rOn})
}

// localPreds collects the per-atom predicates the SQL layer applies right
// after retrieval: constant equalities, IN lists, literal filters, and
// intra-atom equalities.
func localPreds(q *ra.Query, alias string) []kba.Pred {
	var preds []kba.Pred
	for _, ce := range q.EqConsts {
		if ce.Col.Alias == alias {
			v := ce.Val
			preds = append(preds, kba.Pred{Attr: ce.Col.String(), Op: sql.OpEq, Lit: &v})
		}
	}
	for _, in := range q.Ins {
		if in.Col.Alias == alias {
			preds = append(preds, kba.Pred{Attr: in.Col.String(), In: in.Vals})
		}
	}
	for _, f := range q.Filters {
		if f.Col.Alias != alias {
			continue
		}
		if f.RCol == nil {
			lit := *f.Lit
			preds = append(preds, kba.Pred{Attr: f.Col.String(), Op: f.Op, Lit: &lit})
		} else if f.RCol.Alias == alias {
			preds = append(preds, kba.Pred{Attr: f.Col.String(), Op: f.Op, RAttr: f.RCol.String()})
		}
	}
	for _, eq := range q.EqAttrs {
		if eq.L.Alias == alias && eq.R.Alias == alias {
			preds = append(preds, kba.Pred{Attr: eq.L.String(), Op: sql.OpEq, RAttr: eq.R.String()})
		}
	}
	return preds
}

// Package parallel implements module M3 of Zidian: parallel execution of
// KBA plans with the interleaved strategy of Section 7 (repartition
// intermediate keyed blocks to the owners of the target KV keys, then fetch
// only the needed blocks), plus the parallel TaaV baseline (retrieve-all,
// then parallel hash joins) that the paper compares against. Communication
// between workers is accounted explicitly.
package parallel

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"zidian/internal/relation"
)

// pval is a partitioned intermediate relation: flat rows over a fixed
// attribute layout, split across workers.
type pval struct {
	attrs []string
	parts [][]relation.Tuple
}

func newPval(attrs []string, workers int) *pval {
	return &pval{attrs: attrs, parts: make([][]relation.Tuple, workers)}
}

func (v *pval) workers() int { return len(v.parts) }

// rows gathers all partitions into one slice.
func (v *pval) rows() []relation.Tuple {
	n := 0
	for _, p := range v.parts {
		n += len(p)
	}
	out := make([]relation.Tuple, 0, n)
	for _, p := range v.parts {
		out = append(out, p...)
	}
	return out
}

func (v *pval) positions(names []string) ([]int, error) {
	pos := make(map[string]int, len(v.attrs))
	for i, a := range v.attrs {
		pos[a] = i
	}
	out := make([]int, len(names))
	for i, n := range names {
		j, ok := pos[n]
		if !ok {
			return nil, fmt.Errorf("parallel: attribute %q not in %v", n, v.attrs)
		}
		out[i] = j
	}
	return out, nil
}

// hashTuple routes a projected key to a worker.
func hashTuple(t relation.Tuple, idx []int, workers int) int {
	h := fnv.New64a()
	for _, i := range idx {
		h.Write(relation.AppendValue(nil, t[i]))
	}
	return int(h.Sum64() % uint64(workers))
}

// repartition redistributes rows so that rows agreeing on the key columns
// land on the same worker. Bytes of rows that change workers are added to
// shuffle. Empty keyIdx sends everything to worker 0 (a gather).
func repartition(v *pval, keyIdx []int, shuffle *atomic.Int64) *pval {
	workers := v.workers()
	out := newPval(v.attrs, workers)
	// buckets[src][dst]
	buckets := make([][][]relation.Tuple, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([][]relation.Tuple, workers)
			var moved int64
			for _, row := range v.parts[w] {
				dst := 0
				if len(keyIdx) > 0 {
					dst = hashTuple(row, keyIdx, workers)
				}
				local[dst] = append(local[dst], row)
				if dst != w {
					moved += int64(row.SizeBytes())
				}
			}
			buckets[w] = local
			shuffle.Add(moved)
		}(w)
	}
	wg.Wait()
	for dst := 0; dst < workers; dst++ {
		for src := 0; src < workers; src++ {
			out.parts[dst] = append(out.parts[dst], buckets[src][dst]...)
		}
	}
	return out
}

// forWorkers runs fn once per worker concurrently and returns the first
// error.
func forWorkers(workers int, fn func(w int) error) error {
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = fn(w)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

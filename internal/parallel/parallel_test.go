package parallel

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"zidian/internal/baav"
	"zidian/internal/core"
	"zidian/internal/kv"
	"zidian/internal/ra"
	"zidian/internal/relation"
	"zidian/internal/taav"
)

// fixture builds the paper's Example 1 schema with a randomized instance,
// both stores (TaaV and BaaV), and the checker.
func fixture(t *testing.T, seed int64, nSupp, nPS int) (*relation.Database, *taav.Store, *baav.Store, *core.Checker) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase()

	names := []string{"GERMANY", "FRANCE", "KENYA", "PERU", "JAPAN"}
	nation := relation.NewRelation(relation.MustSchema("NATION",
		[]relation.Attr{{Name: "nationkey", Kind: relation.KindInt}, {Name: "name", Kind: relation.KindString}},
		[]string{"nationkey"}))
	for i, n := range names {
		nation.MustInsert(relation.Tuple{relation.Int(int64(i + 1)), relation.String(n)})
	}
	db.Add(nation)

	supplier := relation.NewRelation(relation.MustSchema("SUPPLIER",
		[]relation.Attr{{Name: "suppkey", Kind: relation.KindInt}, {Name: "nationkey", Kind: relation.KindInt}},
		[]string{"suppkey"}))
	for i := 0; i < nSupp; i++ {
		supplier.MustInsert(relation.Tuple{relation.Int(int64(i)), relation.Int(int64(r.Intn(len(names)) + 1))})
	}
	db.Add(supplier)

	partsupp := relation.NewRelation(relation.MustSchema("PARTSUPP",
		[]relation.Attr{
			{Name: "partkey", Kind: relation.KindInt}, {Name: "suppkey", Kind: relation.KindInt},
			{Name: "supplycost", Kind: relation.KindInt}, {Name: "availqty", Kind: relation.KindInt},
		},
		[]string{"partkey", "suppkey"}))
	// Unique (partkey, suppkey) pairs: TaaV keys tuples by primary key, so
	// duplicates would silently overwrite and diverge from the reference.
	nParts := nPS / 4
	if nParts < 1 {
		nParts = 1
	}
	for i := 0; i < nPS && i < nParts*nSupp; i++ {
		partsupp.MustInsert(relation.Tuple{
			relation.Int(int64(i % nParts)), relation.Int(int64((i / nParts) % nSupp)),
			relation.Int(int64(r.Intn(50))), relation.Int(int64(r.Intn(20))),
		})
	}
	db.Add(partsupp)

	tv, err := taav.Map(db, kv.NewCluster(kv.EngineHash, 4))
	if err != nil {
		t.Fatal(err)
	}
	schema := baav.MustSchema(baav.RelSchemas(db),
		baav.KVSchema{Name: "NATION_by_name", Rel: "NATION", Key: []string{"name"}, Val: []string{"nationkey"}},
		baav.KVSchema{Name: "SUPPLIER_by_nation", Rel: "SUPPLIER", Key: []string{"nationkey"}, Val: []string{"suppkey"}},
		baav.KVSchema{Name: "PARTSUPP_by_supp", Rel: "PARTSUPP", Key: []string{"suppkey"}, Val: []string{"partkey", "supplycost", "availqty"}},
	)
	bv, err := baav.Map(db, schema, kv.NewCluster(kv.EngineHash, 4), baav.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return db, tv, bv, core.NewChecker(schema, baav.RelSchemas(db))
}

var testQueries = []string{
	`select PS.suppkey, SUM(PS.supplycost) from PARTSUPP as PS, SUPPLIER as S, NATION as N
	 where PS.suppkey = S.suppkey and S.nationkey = N.nationkey and N.name = 'GERMANY'
	 group by PS.suppkey`,
	"select N.name from NATION N where N.nationkey = 3",
	"select S.suppkey from SUPPLIER S, NATION N where S.nationkey = N.nationkey and N.name = 'FRANCE'",
	"select PS.partkey, PS.supplycost from PARTSUPP PS where PS.suppkey = 11",
	"select PS.partkey from PARTSUPP PS where PS.suppkey in (2, 4, 6) and PS.supplycost >= 10",
	"select SUM(PS.availqty), COUNT(*) from PARTSUPP PS",
	"select S.nationkey, COUNT(*) from SUPPLIER S group by S.nationkey",
	`select N.name, SUM(PS.supplycost) from PARTSUPP PS, SUPPLIER S, NATION N
	 where PS.suppkey = S.suppkey and S.nationkey = N.nationkey group by N.name`,
	"select distinct PS.suppkey from PARTSUPP PS where PS.partkey = 7",
	"select S.suppkey, N.name from SUPPLIER S, NATION N where S.nationkey = N.nationkey and S.suppkey between 3 and 8 order by S.suppkey limit 4",
	"select A.partkey from PARTSUPP A, PARTSUPP B where A.partkey = B.partkey and A.suppkey = 3 and B.suppkey = 5",
}

// TestParallelKBADifferential compares the parallel KBA executor against the
// reference evaluator for every test query at several worker counts.
func TestParallelKBADifferential(t *testing.T) {
	db, _, bv, c := fixture(t, 1, 40, 400)
	for _, src := range testQueries {
		q := ra.MustParse(src, db)
		info, err := c.Plan(q)
		if err != nil {
			t.Fatalf("plan %q: %v", src, err)
		}
		want, err := ra.Evaluate(q, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			got, m, err := RunKBA(info, bv, workers)
			if err != nil {
				t.Fatalf("RunKBA(%q, %d): %v", src, workers, err)
			}
			if !got.Equal(want) {
				t.Fatalf("parallel KBA differs for %q at p=%d:\n got %v\nwant %v",
					src, workers, got.Rows, want.Rows)
			}
			if m.Workers != workers || m.Wall <= 0 {
				t.Fatalf("metrics = %+v", m)
			}
		}
	}
}

// TestParallelTaaVDifferential does the same for the baseline executor.
func TestParallelTaaVDifferential(t *testing.T) {
	db, tv, _, _ := fixture(t, 2, 40, 400)
	for _, src := range testQueries {
		q := ra.MustParse(src, db)
		want, err := ra.Evaluate(q, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			got, m, err := RunTaaV(q, tv, workers)
			if err != nil {
				t.Fatalf("RunTaaV(%q, %d): %v", src, workers, err)
			}
			if !got.Equal(want) {
				t.Fatalf("parallel TaaV differs for %q at p=%d:\n got %v\nwant %v",
					src, workers, got.Rows, want.Rows)
			}
			if m.Gets == 0 {
				t.Fatal("baseline must count retrieval gets")
			}
		}
	}
}

// TestScanFreeBeatsBaselineOnAccess verifies Proposition 7's practical
// consequence: for a scan-free query, Zidian touches a bounded amount of
// data while the baseline touches everything.
func TestScanFreeBeatsBaselineOnAccess(t *testing.T) {
	db, tv, bv, c := fixture(t, 3, 60, 1200)
	q := ra.MustParse(testQueries[0], db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if !info.ScanFree {
		t.Fatal("Q1 must be scan-free")
	}
	_, mk, err := RunKBA(info, bv, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, mt, err := RunTaaV(q, tv, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mk.DataValues*5 > mt.DataValues {
		t.Fatalf("Zidian should access far less data: %d vs %d", mk.DataValues, mt.DataValues)
	}
	if mk.Gets > mt.Gets {
		t.Fatalf("Zidian gets %d > baseline %d", mk.Gets, mt.Gets)
	}
}

// TestBoundedCommunication: for a bounded query the shuffle volume must not
// grow with the database (Proposition 7(b)).
func TestBoundedCommunication(t *testing.T) {
	shuffleAt := func(nPS int) int64 {
		db, _, bv, c := fixture(t, 4, 40, nPS)
		q := ra.MustParse("select PS.partkey, PS.supplycost from PARTSUPP PS where PS.suppkey = 11", db)
		info, err := c.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		_, m, err := RunKBA(info, bv, 4)
		if err != nil {
			t.Fatal(err)
		}
		return m.ShuffleBytes
	}
	small := shuffleAt(200)
	big := shuffleAt(3200)
	// The block for supplier 11 grows slightly with data; allow 4x slack but
	// reject the ~16x growth a scan-based plan would show.
	if big > small*4+1024 {
		t.Fatalf("bounded query shuffle grew with |D|: %d -> %d", small, big)
	}
}

func TestRepartitionColocatesKeys(t *testing.T) {
	v := newPval([]string{"k", "x"}, 4)
	for i := 0; i < 100; i++ {
		row := relation.Tuple{relation.Int(int64(i % 7)), relation.Int(int64(i))}
		v.parts[i%4] = append(v.parts[i%4], row)
	}
	var shuffle atomic.Int64
	out := repartition(v, []int{0}, &shuffle)
	ownerOf := make(map[int64]int)
	total := 0
	for w, part := range out.parts {
		for _, row := range part {
			k := row[0].Int
			if prev, ok := ownerOf[k]; ok && prev != w {
				t.Fatalf("key %d on workers %d and %d", k, prev, w)
			}
			ownerOf[k] = w
			total++
		}
	}
	if total != 100 {
		t.Fatalf("rows lost: %d", total)
	}
	if shuffle.Load() == 0 {
		t.Fatal("some rows must have moved")
	}
	// Gather with empty key.
	gathered := repartition(v, nil, &shuffle)
	if len(gathered.parts[0]) != 100 {
		t.Fatalf("gather put %d rows on worker 0", len(gathered.parts[0]))
	}
}

// TestParallelScalability: on a sufficiently large non-scan-free workload,
// adding workers must not slow execution down dramatically (Theorem 8's
// practical reading; exact speedups depend on the host).
func TestParallelScalability(t *testing.T) {
	db, tv, _, _ := fixture(t, 5, 100, 12000)
	q := ra.MustParse(testQueries[7], db)
	_, m1, err := RunTaaV(q, tv, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, m8, err := RunTaaV(q, tv, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m8.Wall > m1.Wall*3 {
		t.Fatalf("8 workers much slower than 1: %v vs %v", m8.Wall, m1.Wall)
	}
}

func TestRunKBAEmptyPlan(t *testing.T) {
	db, _, bv, c := fixture(t, 6, 10, 50)
	q := ra.MustParse("select S.suppkey from SUPPLIER S where S.nationkey = 1 and S.nationkey = 2", db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	res, m, err := RunKBA(info, bv, 4)
	if err != nil || len(res.Rows) != 0 || m.Workers != 4 {
		t.Fatalf("empty plan: %v %v %v", res, m, err)
	}
}

// TestFetchAllDifferential: the Section 7.1 strawman answers every query
// identically to the interleaved executor — it only costs more.
func TestFetchAllDifferential(t *testing.T) {
	db, _, bv, c := fixture(t, 9, 40, 400)
	for _, src := range testQueries {
		q := ra.MustParse(src, db)
		info, err := c.Plan(q)
		if err != nil {
			t.Fatalf("plan %q: %v", src, err)
		}
		want, err := ra.Evaluate(q, db)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := RunKBAFetchAll(info, bv, 4)
		if err != nil {
			t.Fatalf("fetch-all %q: %v", src, err)
		}
		if !got.Equal(want) {
			t.Fatalf("fetch-all differs for %q", src)
		}
	}
}

// TestInterleavedBeatsFetchAllOnAccess: for a scan-free query the
// interleaved executor touches less data than the strawman.
func TestInterleavedBeatsFetchAllOnAccess(t *testing.T) {
	db, _, bv, c := fixture(t, 10, 60, 1200)
	q := ra.MustParse(testQueries[0], db)
	info, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	_, mi, err := RunKBA(info, bv, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, mf, err := RunKBAFetchAll(info, bv, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mi.DataValues >= mf.DataValues {
		t.Fatalf("interleaved %d !< fetch-all %d data values", mi.DataValues, mf.DataValues)
	}
	// The empty plan path works too.
	empty := ra.MustParse("select S.suppkey from SUPPLIER S where S.nationkey = 1 and S.nationkey = 2", db)
	infoEmpty, err := c.Plan(empty)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := RunKBAFetchAll(infoEmpty, bv, 4)
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("empty fetch-all: %v %v", res, err)
	}
}

package parallel

import (
	"sync/atomic"
	"time"
)

// Metrics reports one parallel execution: wall time, worker-to-worker
// shuffle volume, and the logical data-access counters of the paper's
// tables (#get, #data, bytes fetched from storage).
type Metrics struct {
	Workers      int
	Wall         time.Duration
	ShuffleBytes int64
	Gets         int64
	DataValues   int64
	FetchBytes   int64
}

// counters aggregates atomically during execution.
type counters struct {
	shuffle atomic.Int64
	gets    atomic.Int64
	data    atomic.Int64
	fetch   atomic.Int64
}

func (c *counters) metrics(workers int, wall time.Duration) *Metrics {
	return &Metrics{
		Workers:      workers,
		Wall:         wall,
		ShuffleBytes: c.shuffle.Load(),
		Gets:         c.gets.Load(),
		DataValues:   c.data.Load(),
		FetchBytes:   c.fetch.Load(),
	}
}

package parallel

import (
	"fmt"
	"sync"
	"time"

	"zidian/internal/baav"
	"zidian/internal/core"
	"zidian/internal/kba"
	"zidian/internal/obs"
	"zidian/internal/ra"
	"zidian/internal/relation"
)

// RunKBA executes a generated KBA plan with the interleaved parallel
// strategy (Section 7.2) on the given number of workers and shapes the
// relational answer.
func RunKBA(info *core.PlanInfo, store *baav.Store, workers int) (*ra.Result, *Metrics, error) {
	return RunKBATraced(info, store, workers, nil)
}

// RunKBATraced is RunKBA with a per-statement trace: operator spans record
// rows, wall time, inclusive kv deltas, and the worker fan-out with
// per-worker row counts. A nil trace costs nothing.
func RunKBATraced(info *core.PlanInfo, store *baav.Store, workers int, t *obs.Trace) (*ra.Result, *Metrics, error) {
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	if info.Empty {
		res, err := info.ToResult(nil)
		return res, &Metrics{Workers: workers, Wall: time.Since(start)}, err
	}
	e := &kbaExec{store: store, workers: workers, trace: t}
	v, err := e.run(info.Root)
	if err != nil {
		return nil, nil, err
	}
	flat, err := kba.FromRows(v.attrs, v.rows(), v.attrs)
	if err != nil {
		return nil, nil, err
	}
	res, err := info.ToResult(flat)
	if err != nil {
		return nil, nil, err
	}
	return res, e.c.metrics(workers, time.Since(start)), nil
}

type kbaExec struct {
	store   *baav.Store
	workers int
	c       counters
	// fetchAll flattens ∝ into retrieve-then-join (the Section 7.1
	// strawman) instead of the interleaved strategy.
	fetchAll bool
	// trace, when set, records operator spans and statement counters. The
	// span stack stays single-goroutine: run recurses on the driving
	// goroutine only, and forWorkers joins its workers before any span
	// finishes.
	trace *obs.Trace
}

// kv returns the kv-op sink threaded into store calls; nil untraced.
func (e *kbaExec) kv() *obs.KV { return e.trace.KVCounters() }

// run executes a node under an operator span. Workers fan out only inside
// exec, so span open/close stays on the driving goroutine; litPlan wrappers
// (already computed intermediates) get no span of their own.
func (e *kbaExec) run(p kba.Plan) (*pval, error) {
	if l, ok := p.(*litPlan); ok {
		return l.v, nil
	}
	span := e.trace.StartOpLazy(kba.OpName(p), func() string { return kba.NodeLabel(p) })
	v, err := e.exec(p)
	rows := 0
	if v != nil {
		if span != nil {
			span.Workers = e.workers
			span.PerWorker = make([]int64, len(v.parts))
			for w, part := range v.parts {
				span.PerWorker[w] = int64(len(part))
				rows += len(part)
			}
		} else {
			for _, part := range v.parts {
				rows += len(part)
			}
		}
	}
	e.trace.FinishOp(span, rows)
	return v, err
}

func (e *kbaExec) exec(p kba.Plan) (*pval, error) {
	switch n := p.(type) {
	case *litPlan:
		return n.v, nil
	case *kba.Const:
		return e.runConst(n)
	case *kba.ScanKV:
		return e.runScan(n)
	case *kba.IndexLookup:
		return e.runIndexLookup(n)
	case *kba.IndexRange:
		return e.runIndexRange(n)
	case *kba.Extend:
		if e.fetchAll {
			return e.runExtendFetchAll(n)
		}
		return e.runExtend(n)
	case *kba.Shift:
		return e.runShift(n)
	case *kba.Join:
		return e.runJoin(n)
	case *kba.Select:
		return e.runSelect(n)
	case *kba.Project:
		return e.runProject(n)
	case *kba.Distinct:
		return e.runDistinct(n)
	case *kba.Union:
		return e.runUnion(n)
	case *kba.Diff:
		return e.runDiff(n)
	case *kba.GroupBy:
		return e.runGroupBy(n)
	case *kba.StatsAgg:
		return e.runStatsAgg(n)
	default:
		return nil, fmt.Errorf("parallel: unknown plan node %T", p)
	}
}

func (e *kbaExec) runConst(n *kba.Const) (*pval, error) {
	if len(n.Args) > 0 {
		return nil, fmt.Errorf("parallel: plan template has unbound parameters (call Bind before executing)")
	}
	out := newPval(append([]string{}, n.KeyAttrs...), e.workers)
	all := make([]int, len(n.KeyAttrs))
	for i := range all {
		all[i] = i
	}
	for _, k := range n.Keys {
		if len(k) != len(n.KeyAttrs) {
			return nil, fmt.Errorf("parallel: constant arity mismatch")
		}
		w := 0
		if len(all) > 0 {
			w = hashTuple(k, all, e.workers)
		}
		out.parts[w] = append(out.parts[w], k)
	}
	return out, nil
}

func (e *kbaExec) runScan(n *kba.ScanKV) (*pval, error) {
	kvSchema := e.store.Schema.ByName(n.KV)
	if kvSchema == nil {
		return nil, fmt.Errorf("parallel: unknown KV schema %q", n.KV)
	}
	attrs := append(qualify(n.Alias, kvSchema.Key), qualify(n.Alias, kvSchema.Val)...)
	out := newPval(attrs, e.workers)
	nodes := e.store.Cluster.NodeCount()
	// perNode records each storage node's row contribution for the span's
	// fan-out annotation; every node is walked by exactly one worker, so the
	// slots are written race-free.
	perNode := make([]int64, nodes)
	var mu sync.Mutex
	// Workers split the storage nodes; each worker scans its nodes and keeps
	// the rows locally — scan output starts partitioned by storage layout.
	err := forWorkers(e.workers, func(w int) error {
		var local []relation.Tuple
		var data, fetch int64
		for node := w; node < nodes; node += e.workers {
			err := e.store.ScanInstanceNodeT(e.kv(), node, n.KV, func(key relation.Tuple, blk *baav.Block, _ *baav.BlockStats) bool {
				rows := blk.Expand()
				e.trace.CountBlocks(1)
				perNode[node] += int64(len(rows))
				data += int64(len(rows)*len(kvSchema.Val) + len(key))
				fetch += int64(key.SizeBytes())
				for _, r := range rows {
					fetch += int64(r.SizeBytes())
					local = append(local, key.Concat(r))
				}
				return true
			})
			if err != nil {
				return err
			}
		}
		e.c.data.Add(data)
		e.c.fetch.Add(fetch)
		mu.Lock()
		out.parts[w] = local
		mu.Unlock()
		return nil
	})
	e.trace.AnnotateNodes(perNode, nil)
	return out, err
}

func errUnknownKV(name string) error {
	return fmt.Errorf("parallel: unknown KV schema %q", name)
}

func qualify(alias string, attrs []string) []string {
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = alias + "." + a
	}
	return out
}

// runIndexLookup fetches every constant's posting list in one batched
// cluster round (the point gets group by owning node) and partitions the
// (value, block key) rows by their full content, so the downstream ∝ starts
// from an even spread of probe keys.
func (e *kbaExec) runIndexLookup(n *kba.IndexLookup) (*pval, error) {
	if len(n.Args) > 0 {
		return nil, fmt.Errorf("parallel: plan template has unbound parameters (call Bind before executing)")
	}
	if e.store.Index == nil {
		return nil, fmt.Errorf("parallel: plan uses index %q but the store has no index catalog", n.Index)
	}
	attrs := append([]string{n.ValAttr}, n.KeyAttrs...)
	out := newPval(attrs, e.workers)
	all := make([]int, len(attrs))
	for i := range all {
		all[i] = i
	}
	lists, gets, err := e.store.Index.LookupManyT(e.trace, n.Index, n.Values)
	if err != nil {
		return nil, err
	}
	var data int64
	for i, v := range n.Values {
		for _, k := range lists[i] {
			if len(k) != len(n.KeyAttrs) {
				return nil, fmt.Errorf("parallel: index %q posts %d key attributes, plan expects %d",
					n.Index, len(k), len(n.KeyAttrs))
			}
			row := relation.Tuple{v}.Concat(k)
			data += int64(len(row))
			w := hashTuple(row, all, e.workers)
			out.parts[w] = append(out.parts[w], row)
		}
	}
	e.c.gets.Add(int64(gets))
	e.c.data.Add(data)
	return out, nil
}

// runIndexRange performs the bounded ordered posting walk once (the walk is
// one cluster range scan; parallelizing it would not reduce its cost) and
// partitions the (value, block key) rows by full content, so the downstream
// ∝ starts from an even spread of probe keys exactly like an IndexLookup.
func (e *kbaExec) runIndexRange(n *kba.IndexRange) (*pval, error) {
	lo, hi, err := kba.RangeBounds(n)
	if err != nil {
		return nil, err
	}
	limit, err := kba.RangeWalkLimit(n)
	if err != nil {
		return nil, err
	}
	if e.store.Index == nil {
		return nil, fmt.Errorf("parallel: plan uses index %q but the store has no index catalog", n.Index)
	}
	vals, keys, scanned, err := e.store.Index.RangeLimitT(e.trace, n.Index, lo, hi, n.LoIncl, n.HiIncl, limit)
	if err != nil {
		return nil, err
	}
	attrs := append([]string{n.ValAttr}, n.KeyAttrs...)
	out := newPval(attrs, e.workers)
	all := make([]int, len(attrs))
	for i := range all {
		all[i] = i
	}
	var data int64
	for i, k := range keys {
		if len(k) != len(n.KeyAttrs) {
			return nil, fmt.Errorf("parallel: index %q posts %d key attributes, plan expects %d",
				n.Index, len(k), len(n.KeyAttrs))
		}
		row := relation.Tuple{vals[i]}.Concat(k)
		data += int64(len(row))
		w := hashTuple(row, all, e.workers)
		out.parts[w] = append(out.parts[w], row)
	}
	_ = scanned // physical scan steps are counted by the cluster's node metrics
	e.c.data.Add(data)
	return out, nil
}

// runExtend is the interleaved ∝: deduplicate the target keys across the
// whole input, fetch every needed block in one batched cluster round per
// owning node, then have workers expand their partitions against the shared
// read-only cache — the query fetches only the blocks it needs, and pays
// one storage round per node instead of one per distinct key.
func (e *kbaExec) runExtend(n *kba.Extend) (*pval, error) {
	in, err := e.run(n.Input)
	if err != nil {
		return nil, err
	}
	kvSchema := e.store.Schema.ByName(n.KV)
	if kvSchema == nil {
		return nil, errUnknownKV(n.KV)
	}
	if len(n.KeyFrom) != len(kvSchema.Key) {
		return nil, fmt.Errorf("parallel: extend key arity mismatch on %s", n.KV)
	}
	keyIdx, err := in.positions(n.KeyFrom)
	if err != nil {
		return nil, err
	}
	shuffled := repartition(in, keyIdx, &e.c.shuffle)

	// Collect the distinct probe keys across all partitions (order is
	// deterministic: partition-major, first occurrence wins).
	at := make(map[string]int)
	var keys []relation.Tuple
	for w := 0; w < e.workers; w++ {
		for _, row := range shuffled.parts[w] {
			key := row.Project(keyIdx)
			ks := relation.KeyString(key)
			if _, ok := at[ks]; !ok {
				at[ks] = len(keys)
				keys = append(keys, key)
			}
		}
	}
	blks, _, gets, err := e.store.GetBlocksT(e.kv(), n.KV, keys)
	if err != nil {
		return nil, err
	}
	e.c.gets.Add(int64(gets))
	cache := make(map[string][]relation.Tuple, len(keys))
	var data, fetch int64
	for i, key := range keys {
		var rows []relation.Tuple
		if blk := blks[i]; blk != nil {
			rows = blk.Expand()
			e.trace.CountBlocks(1)
			data += int64(len(rows)*len(kvSchema.Val) + len(key))
			fetch += int64(key.SizeBytes())
			for _, r := range rows {
				fetch += int64(r.SizeBytes())
			}
		}
		cache[relation.KeyString(key)] = rows
	}
	e.c.data.Add(data)
	e.c.fetch.Add(fetch)

	outAttrs := append(append([]string{}, in.attrs...), qualify(n.Alias, kvSchema.Val)...)
	out := newPval(outAttrs, e.workers)
	err = forWorkers(e.workers, func(w int) error {
		var local []relation.Tuple
		for _, row := range shuffled.parts[w] {
			for _, r := range cache[relation.KeyString(row.Project(keyIdx))] {
				local = append(local, row.Concat(r))
			}
		}
		out.parts[w] = local
		return nil
	})
	return out, err
}

func (e *kbaExec) runShift(n *kba.Shift) (*pval, error) {
	in, err := e.run(n.Input)
	if err != nil {
		return nil, err
	}
	keyIdx, err := in.positions(n.NewKey)
	if err != nil {
		return nil, err
	}
	return repartition(in, keyIdx, &e.c.shuffle), nil
}

func (e *kbaExec) runJoin(n *kba.Join) (*pval, error) {
	l, err := e.run(n.L)
	if err != nil {
		return nil, err
	}
	r, err := e.run(n.R)
	if err != nil {
		return nil, err
	}
	lIdx, err := l.positions(n.LOn)
	if err != nil {
		return nil, err
	}
	rIdx, err := r.positions(n.ROn)
	if err != nil {
		return nil, err
	}
	ls := repartition(l, lIdx, &e.c.shuffle)
	rs := repartition(r, rIdx, &e.c.shuffle)
	out := newPval(append(append([]string{}, l.attrs...), r.attrs...), e.workers)
	err = forWorkers(e.workers, func(w int) error {
		index := make(map[string][]relation.Tuple)
		for _, row := range rs.parts[w] {
			k := relation.KeyString(row.Project(rIdx))
			index[k] = append(index[k], row)
		}
		var local []relation.Tuple
		for _, row := range ls.parts[w] {
			k := relation.KeyString(row.Project(lIdx))
			for _, rr := range index[k] {
				local = append(local, row.Concat(rr))
			}
		}
		out.parts[w] = local
		return nil
	})
	return out, err
}

func (e *kbaExec) runSelect(n *kba.Select) (*pval, error) {
	in, err := e.run(n.Input)
	if err != nil {
		return nil, err
	}
	check, err := kba.CompilePreds(in.attrs, n.Preds)
	if err != nil {
		return nil, err
	}
	out := newPval(in.attrs, e.workers)
	err = forWorkers(e.workers, func(w int) error {
		var local []relation.Tuple
		for _, row := range in.parts[w] {
			if check(row) {
				local = append(local, row)
			}
		}
		out.parts[w] = local
		return nil
	})
	return out, err
}

func (e *kbaExec) runProject(n *kba.Project) (*pval, error) {
	in, err := e.run(n.Input)
	if err != nil {
		return nil, err
	}
	idx, err := in.positions(n.Attrs)
	if err != nil {
		return nil, err
	}
	out := newPval(append([]string{}, n.Attrs...), e.workers)
	err = forWorkers(e.workers, func(w int) error {
		local := make([]relation.Tuple, len(in.parts[w]))
		for i, row := range in.parts[w] {
			local[i] = row.Project(idx)
		}
		out.parts[w] = local
		return nil
	})
	return out, err
}

func (e *kbaExec) runDistinct(n *kba.Distinct) (*pval, error) {
	in, err := e.run(n.Input)
	if err != nil {
		return nil, err
	}
	all := make([]int, len(in.attrs))
	for i := range all {
		all[i] = i
	}
	shuffled := repartition(in, all, &e.c.shuffle)
	out := newPval(in.attrs, e.workers)
	err = forWorkers(e.workers, func(w int) error {
		seen := make(map[string]bool)
		var local []relation.Tuple
		for _, row := range shuffled.parts[w] {
			k := relation.KeyString(row)
			if !seen[k] {
				seen[k] = true
				local = append(local, row)
			}
		}
		out.parts[w] = local
		return nil
	})
	return out, err
}

func (e *kbaExec) runUnion(n *kba.Union) (*pval, error) {
	l, err := e.run(n.L)
	if err != nil {
		return nil, err
	}
	r, err := e.run(n.R)
	if err != nil {
		return nil, err
	}
	rIdx, err := r.positions(l.attrs)
	if err != nil {
		return nil, err
	}
	merged := newPval(l.attrs, e.workers)
	for w := 0; w < e.workers; w++ {
		merged.parts[w] = append(merged.parts[w], l.parts[w]...)
		for _, row := range r.parts[w] {
			merged.parts[w] = append(merged.parts[w], row.Project(rIdx))
		}
	}
	return e.runDistinct(&kba.Distinct{Input: &litPlan{merged}})
}

func (e *kbaExec) runDiff(n *kba.Diff) (*pval, error) {
	l, err := e.run(n.L)
	if err != nil {
		return nil, err
	}
	r, err := e.run(n.R)
	if err != nil {
		return nil, err
	}
	rIdx, err := r.positions(l.attrs)
	if err != nil {
		return nil, err
	}
	all := make([]int, len(l.attrs))
	for i := range all {
		all[i] = i
	}
	ls := repartition(l, all, &e.c.shuffle)
	// Align and repartition the right side the same way.
	ra2 := newPval(l.attrs, e.workers)
	for w := 0; w < e.workers; w++ {
		for _, row := range r.parts[w] {
			ra2.parts[w] = append(ra2.parts[w], row.Project(rIdx))
		}
	}
	rs := repartition(ra2, all, &e.c.shuffle)
	out := newPval(l.attrs, e.workers)
	err = forWorkers(e.workers, func(w int) error {
		drop := make(map[string]bool)
		for _, row := range rs.parts[w] {
			drop[relation.KeyString(row)] = true
		}
		seen := make(map[string]bool)
		var local []relation.Tuple
		for _, row := range ls.parts[w] {
			k := relation.KeyString(row)
			if !drop[k] && !seen[k] {
				seen[k] = true
				local = append(local, row)
			}
		}
		out.parts[w] = local
		return nil
	})
	return out, err
}

// litPlan wraps an already computed pval as a plan node so composed
// operators (union → distinct) can reuse the recursion.
type litPlan struct{ v *pval }

func (l *litPlan) Children() []kba.Plan { return nil }
func (l *litPlan) String() string       { return "lit" }

func (e *kbaExec) runStatsAgg(n *kba.StatsAgg) (*pval, error) {
	// Statistics scans read only block headers; run sequentially and
	// partition the (tiny) output. The delegate sinks kv ops into the
	// statement's counters without opening a second span tree (this node's
	// own span is already on the stack).
	seq := kba.NewExecutor(e.store)
	seq.KV = e.kv()
	rel, err := seq.Run(n)
	if err != nil {
		return nil, err
	}
	e.c.data.Add(seq.Stats.DataValues)
	out := newPval(rel.Attrs(), e.workers)
	for i, row := range rel.Flatten() {
		w := i % e.workers
		out.parts[w] = append(out.parts[w], row)
	}
	return out, nil
}

// runGroupBy aggregates with local partial states, shuffles the encoded
// partials by group key, and finalizes per worker — the standard two-phase
// parallel aggregation that keeps communication proportional to the number
// of groups, not rows.
func (e *kbaExec) runGroupBy(n *kba.GroupBy) (*pval, error) {
	in, err := e.run(n.Input)
	if err != nil {
		return nil, err
	}
	keyIdx, err := in.positions(n.Keys)
	if err != nil {
		return nil, err
	}
	aggIdx := make([]int, len(n.Aggs))
	for i, a := range n.Aggs {
		if a.Star {
			aggIdx[i] = -1
			continue
		}
		idx, err := in.positions([]string{a.Attr})
		if err != nil {
			return nil, err
		}
		aggIdx[i] = idx[0]
	}

	// Phase 1: local partial aggregation, encoded as flat tuples
	// key ++ state_1 ++ ... ++ state_m.
	stateW := ra.AggStateWidth()
	partialAttrs := append([]string{}, n.Keys...)
	for i := range n.Aggs {
		for j := 0; j < stateW; j++ {
			partialAttrs = append(partialAttrs, fmt.Sprintf("$agg%d.%d", i, j))
		}
	}
	partial := newPval(partialAttrs, e.workers)
	err = forWorkers(e.workers, func(w int) error {
		type group struct {
			key    relation.Tuple
			states []*ra.AggState
		}
		groups := make(map[string]*group)
		var order []string
		for _, row := range in.parts[w] {
			key := row.Project(keyIdx)
			ks := relation.KeyString(key)
			g, ok := groups[ks]
			if !ok {
				g = &group{key: key, states: make([]*ra.AggState, len(n.Aggs))}
				for i := range g.states {
					g.states[i] = ra.NewAggState()
				}
				groups[ks] = g
				order = append(order, ks)
			}
			for i := range n.Aggs {
				if aggIdx[i] < 0 {
					g.states[i].AddCount()
				} else {
					g.states[i].Add(row[aggIdx[i]])
				}
			}
		}
		var local []relation.Tuple
		for _, ks := range order {
			g := groups[ks]
			row := g.key.Clone()
			for _, st := range g.states {
				row = append(row, st.EncodeState()...)
			}
			local = append(local, row)
		}
		partial.parts[w] = local
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: shuffle partials by key and merge.
	keyOnly := make([]int, len(n.Keys))
	for i := range keyOnly {
		keyOnly[i] = i
	}
	shuffled := repartition(partial, keyOnly, &e.c.shuffle)
	outAttrs := append([]string{}, n.Keys...)
	for _, a := range n.Aggs {
		outAttrs = append(outAttrs, a.Name)
	}
	out := newPval(outAttrs, e.workers)
	err = forWorkers(e.workers, func(w int) error {
		type group struct {
			key    relation.Tuple
			states []*ra.AggState
		}
		groups := make(map[string]*group)
		var order []string
		for _, row := range shuffled.parts[w] {
			key := row[:len(n.Keys)]
			ks := relation.KeyString(key)
			g, ok := groups[ks]
			if !ok {
				g = &group{key: key, states: make([]*ra.AggState, len(n.Aggs))}
				for i := range g.states {
					g.states[i] = ra.NewAggState()
				}
				groups[ks] = g
				order = append(order, ks)
			}
			for i := range n.Aggs {
				st, err := ra.DecodeAggState(row, len(n.Keys)+i*stateW)
				if err != nil {
					return err
				}
				g.states[i].Merge(st)
			}
		}
		var local []relation.Tuple
		for _, ks := range order {
			g := groups[ks]
			row := g.key.Clone()
			for i, a := range n.Aggs {
				row = append(row, g.states[i].Final(a.Func))
			}
			local = append(local, row)
		}
		out.parts[w] = local
		return nil
	})
	return out, err
}

package workload

import (
	"fmt"

	"zidian/internal/baav"
	"zidian/internal/relation"
)

// TPC-H base cardinalities at scale 1.0. Region and nation are fixed-size
// as in the spec; everything else scales linearly (lineitem cardinality
// emerges from orders × lines-per-order).
const (
	tpchSuppliers = 100
	tpchParts     = 400
	tpchCustomers = 300
	tpchOrders    = 1500
)

var (
	tpchRegions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	tpchNations = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
		"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
		"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
		"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
	}
	// nationRegion maps each nation to its region index per the TPC-H spec.
	tpchNationRegion = []int{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}

	tpchSegments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	tpchPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	tpchShipModes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	tpchBrands     = []string{"Brand#11", "Brand#12", "Brand#13", "Brand#21", "Brand#22", "Brand#23", "Brand#31", "Brand#32", "Brand#41", "Brand#55"}
	tpchContainers = []string{"SM CASE", "SM BOX", "MED BOX", "MED BAG", "LG CASE", "LG BOX", "JUMBO PACK", "WRAP CASE"}
	tpchTypes      = []string{"STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM BRUSHED NICKEL", "ECONOMY BURNISHED STEEL", "PROMO POLISHED BRASS", "LARGE BURNISHED COPPER"}
	tpchInstructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
)

func intAttr(n string) relation.Attr   { return relation.Attr{Name: n, Kind: relation.KindInt} }
func strAttr(n string) relation.Attr   { return relation.Attr{Name: n, Kind: relation.KindString} }
func floatAttr(n string) relation.Attr { return relation.Attr{Name: n, Kind: relation.KindFloat} }

// TPCHSchemas returns the eight TPC-H relation schemas (61 attributes).
func TPCHSchemas() []*relation.Schema {
	return []*relation.Schema{
		relation.MustSchema("REGION",
			[]relation.Attr{intAttr("regionkey"), strAttr("name"), strAttr("comment")},
			[]string{"regionkey"}),
		relation.MustSchema("NATION",
			[]relation.Attr{intAttr("nationkey"), strAttr("name"), intAttr("regionkey"), strAttr("comment")},
			[]string{"nationkey"}),
		relation.MustSchema("SUPPLIER",
			[]relation.Attr{intAttr("suppkey"), strAttr("name"), strAttr("address"), intAttr("nationkey"), strAttr("phone"), floatAttr("acctbal"), strAttr("comment")},
			[]string{"suppkey"}),
		relation.MustSchema("PART",
			[]relation.Attr{intAttr("partkey"), strAttr("name"), strAttr("mfgr"), strAttr("brand"), strAttr("type"), intAttr("size"), strAttr("container"), floatAttr("retailprice"), strAttr("comment")},
			[]string{"partkey"}),
		relation.MustSchema("PARTSUPP",
			[]relation.Attr{intAttr("partkey"), intAttr("suppkey"), intAttr("availqty"), floatAttr("supplycost"), strAttr("comment")},
			[]string{"partkey", "suppkey"}),
		relation.MustSchema("CUSTOMER",
			[]relation.Attr{intAttr("custkey"), strAttr("name"), strAttr("address"), intAttr("nationkey"), strAttr("phone"), floatAttr("acctbal"), strAttr("mktsegment"), strAttr("comment")},
			[]string{"custkey"}),
		relation.MustSchema("ORDERS",
			[]relation.Attr{intAttr("orderkey"), intAttr("custkey"), strAttr("orderstatus"), floatAttr("totalprice"), strAttr("orderdate"), strAttr("orderpriority"), strAttr("clerk"), intAttr("shippriority"), strAttr("comment")},
			[]string{"orderkey"}),
		relation.MustSchema("LINEITEM",
			[]relation.Attr{intAttr("orderkey"), intAttr("partkey"), intAttr("suppkey"), intAttr("linenumber"), intAttr("quantity"), floatAttr("extendedprice"), intAttr("discount"), intAttr("tax"), strAttr("returnflag"), strAttr("linestatus"), strAttr("shipdate"), strAttr("commitdate"), strAttr("receiptdate"), strAttr("shipinstruct"), strAttr("shipmode"), strAttr("comment")},
			[]string{"orderkey", "linenumber"}),
	}
}

// TPCH generates the benchmark database (dbgen-like, uniform distributions
// — TPC-H is deliberately skew-free) with its query suite and BaaV schema.
func TPCH(spec Spec) *Workload {
	r := spec.rand()
	schemas := TPCHSchemas()
	db := relation.NewDatabase()
	rels := make(map[string]*relation.Relation)
	for _, s := range schemas {
		rel := relation.NewRelation(s)
		db.Add(rel)
		rels[s.Name] = rel
	}

	for i, name := range tpchRegions {
		rels["REGION"].MustInsert(relation.Tuple{
			relation.Int(int64(i)), relation.String(name), relation.String("region comment"),
		})
	}
	for i, name := range tpchNations {
		rels["NATION"].MustInsert(relation.Tuple{
			relation.Int(int64(i)), relation.String(name),
			relation.Int(int64(tpchNationRegion[i])), relation.String("nation comment"),
		})
	}
	nSupp := spec.scaled(tpchSuppliers)
	for i := 0; i < nSupp; i++ {
		rels["SUPPLIER"].MustInsert(relation.Tuple{
			relation.Int(int64(i)),
			relation.String(fmt.Sprintf("Supplier#%06d", i)),
			relation.String(fmt.Sprintf("addr-%d", r.Intn(10000))),
			relation.Int(int64(r.Intn(len(tpchNations)))),
			relation.String(fmt.Sprintf("%02d-%07d", r.Intn(99), r.Intn(1_000_0000))),
			relation.Float(float64(r.Intn(1_000_000))/100 - 1000),
			relation.String("supplier comment"),
		})
	}
	nPart := spec.scaled(tpchParts)
	for i := 0; i < nPart; i++ {
		rels["PART"].MustInsert(relation.Tuple{
			relation.Int(int64(i)),
			relation.String(fmt.Sprintf("part %d", i)),
			relation.String(fmt.Sprintf("Manufacturer#%d", 1+r.Intn(5))),
			relation.String(pick(r, tpchBrands)),
			relation.String(pick(r, tpchTypes)),
			relation.Int(int64(1 + r.Intn(50))),
			relation.String(pick(r, tpchContainers)),
			relation.Float(900 + float64(i%200)),
			relation.String("part comment"),
		})
		// Four suppliers per part, as in the spec.
		for j := 0; j < 4; j++ {
			rels["PARTSUPP"].MustInsert(relation.Tuple{
				relation.Int(int64(i)),
				relation.Int(int64((i + j*(nSupp/4+1)) % nSupp)),
				relation.Int(int64(1 + r.Intn(9999))),
				relation.Float(float64(1+r.Intn(100000)) / 100),
				relation.String("partsupp comment"),
			})
		}
	}
	nCust := spec.scaled(tpchCustomers)
	for i := 0; i < nCust; i++ {
		rels["CUSTOMER"].MustInsert(relation.Tuple{
			relation.Int(int64(i)),
			relation.String(fmt.Sprintf("Customer#%06d", i)),
			relation.String(fmt.Sprintf("addr-%d", r.Intn(10000))),
			relation.Int(int64(r.Intn(len(tpchNations)))),
			relation.String(fmt.Sprintf("%02d-%07d", r.Intn(99), r.Intn(1_000_0000))),
			relation.Float(float64(r.Intn(1_000_000))/100 - 1000),
			relation.String(pick(r, tpchSegments)),
			relation.String("customer comment"),
		})
	}
	nOrders := spec.scaled(tpchOrders)
	for i := 0; i < nOrders; i++ {
		year := 1992 + r.Intn(7)
		odate := date(year, r.Intn(12), r.Intn(28))
		rels["ORDERS"].MustInsert(relation.Tuple{
			relation.Int(int64(i)),
			relation.Int(int64(r.Intn(nCust))),
			relation.String(pick(r, []string{"O", "F", "P"})),
			relation.Float(float64(1000 + r.Intn(400000))),
			relation.String(odate),
			relation.String(pick(r, tpchPriorities)),
			relation.String(fmt.Sprintf("Clerk#%05d", r.Intn(1000))),
			relation.Int(0),
			relation.String("order comment"),
		})
		lines := 1 + r.Intn(7)
		for ln := 0; ln < lines; ln++ {
			ship := date(year, r.Intn(12), r.Intn(28))
			rels["LINEITEM"].MustInsert(relation.Tuple{
				relation.Int(int64(i)),
				relation.Int(int64(r.Intn(nPart))),
				relation.Int(int64(r.Intn(nSupp))),
				relation.Int(int64(ln)),
				relation.Int(int64(1 + r.Intn(50))),
				relation.Float(float64(1000+r.Intn(90000)) / 10),
				relation.Int(int64(r.Intn(11))),
				relation.Int(int64(r.Intn(9))),
				relation.String(pick(r, []string{"A", "N", "R"})),
				relation.String(pick(r, []string{"O", "F"})),
				relation.String(ship),
				relation.String(date(year, r.Intn(12), r.Intn(28))),
				relation.String(date(year, r.Intn(12), r.Intn(28))),
				relation.String(pick(r, tpchInstructs)),
				relation.String(pick(r, tpchShipModes)),
				relation.String("lineitem comment"),
			})
		}
	}

	return &Workload{
		Name:    "tpch",
		DB:      db,
		Schema:  tpchBaaVSchema(db),
		Queries: tpchQueries(),
	}
}

// tpchBaaVSchema is the BaaV schema derived for the TPC-H query suite (the
// paper extracted 64 KV schemas for its 22 queries; this suite needs 17).
// The storage budget is roughly 3.5× the dataset, as in Section 9.
func tpchBaaVSchema(db *relation.Database) *baav.Schema {
	return baav.MustSchema(baav.RelSchemas(db),
		baav.KVSchema{Name: "region_by_name", Rel: "REGION", Key: []string{"name"}, Val: []string{"regionkey"}},
		baav.KVSchema{Name: "nation_full", Rel: "NATION", Key: []string{"nationkey"}, Val: []string{"name", "regionkey", "comment"}},
		baav.KVSchema{Name: "nation_by_name", Rel: "NATION", Key: []string{"name"}, Val: []string{"nationkey", "regionkey"}},
		baav.KVSchema{Name: "nation_by_region", Rel: "NATION", Key: []string{"regionkey"}, Val: []string{"nationkey", "name"}},
		baav.KVSchema{Name: "supplier_full", Rel: "SUPPLIER", Key: []string{"suppkey"}, Val: []string{"name", "address", "nationkey", "phone", "acctbal", "comment"}},
		baav.KVSchema{Name: "supplier_by_nation", Rel: "SUPPLIER", Key: []string{"nationkey"}, Val: []string{"suppkey", "name", "acctbal"}},
		baav.KVSchema{Name: "part_full", Rel: "PART", Key: []string{"partkey"}, Val: []string{"name", "mfgr", "brand", "type", "size", "container", "retailprice", "comment"}},
		baav.KVSchema{Name: "part_by_brand", Rel: "PART", Key: []string{"brand"}, Val: []string{"partkey", "container", "size", "type", "retailprice"}},
		baav.KVSchema{Name: "partsupp_by_supp", Rel: "PARTSUPP", Key: []string{"suppkey"}, Val: []string{"partkey", "supplycost", "availqty"}},
		baav.KVSchema{Name: "partsupp_by_part", Rel: "PARTSUPP", Key: []string{"partkey"}, Val: []string{"suppkey", "supplycost", "availqty"}},
		baav.KVSchema{Name: "customer_full", Rel: "CUSTOMER", Key: []string{"custkey"}, Val: []string{"name", "address", "nationkey", "phone", "acctbal", "mktsegment", "comment"}},
		baav.KVSchema{Name: "customer_by_mktsegment", Rel: "CUSTOMER", Key: []string{"mktsegment"}, Val: []string{"custkey", "nationkey", "acctbal"}},
		baav.KVSchema{Name: "orders_full", Rel: "ORDERS", Key: []string{"orderkey"}, Val: []string{"custkey", "orderstatus", "totalprice", "orderdate", "orderpriority", "clerk", "shippriority", "comment"}},
		baav.KVSchema{Name: "orders_by_cust", Rel: "ORDERS", Key: []string{"custkey"}, Val: []string{"orderkey", "orderdate", "orderpriority", "totalprice", "orderstatus", "shippriority"}},
		baav.KVSchema{Name: "lineitem_by_order", Rel: "LINEITEM", Key: []string{"orderkey"}, Val: []string{"linenumber", "partkey", "suppkey", "quantity", "extendedprice", "discount", "tax", "returnflag", "linestatus", "shipdate", "shipmode"}},
		baav.KVSchema{Name: "lineitem_by_part", Rel: "LINEITEM", Key: []string{"partkey"}, Val: []string{"orderkey", "suppkey", "quantity", "extendedprice", "discount", "shipdate"}},
		baav.KVSchema{Name: "lineitem_by_supp", Rel: "LINEITEM", Key: []string{"suppkey"}, Val: []string{"orderkey", "partkey", "quantity", "extendedprice", "discount", "shipdate", "shipmode"}},
		baav.KVSchema{Name: "lineitem_by_shipmode", Rel: "LINEITEM", Key: []string{"shipmode"}, Val: []string{"orderkey", "shipdate", "commitdate", "extendedprice"}},
	)
}

// tpchQueries is the TPC-H-derived suite: the subset of the 22 benchmark
// queries expressible in the supported SQL fragment, simplified the way the
// paper simplifies q11 in its running example. Scan-free TPC-H queries are
// unbounded (block degrees grow with scale — Section 9).
func tpchQueries() []Query {
	return []Query{
		{Name: "tq01_pricing_summary", ScanFree: false, SQL: `
			select L.returnflag, L.linestatus, SUM(L.quantity), SUM(L.extendedprice), AVG(L.discount), COUNT(*)
			from LINEITEM L where L.shipdate <= '1998-09-02'
			group by L.returnflag, L.linestatus`},
		{Name: "tq02_min_cost_supplier", ScanFree: true, SQL: `
			select S.suppkey, S.name, S.acctbal
			from REGION R, NATION N, SUPPLIER S
			where R.name = 'EUROPE' and N.regionkey = R.regionkey and S.nationkey = N.nationkey`},
		{Name: "tq03_shipping_priority", ScanFree: true, SQL: `
			select O.orderkey, SUM(L.extendedprice)
			from CUSTOMER C, ORDERS O, LINEITEM L
			where C.mktsegment = 'BUILDING' and C.custkey = O.custkey
			  and O.orderkey = L.orderkey and O.orderdate < '1995-03-15'
			group by O.orderkey`},
		{Name: "tq04_order_priority", ScanFree: false, SQL: `
			select O.orderpriority, COUNT(*)
			from ORDERS O
			where O.orderdate >= '1994-01-01' and O.orderdate < '1995-01-01'
			group by O.orderpriority`},
		{Name: "tq05_local_supplier_volume", ScanFree: true, SQL: `
			select N.name, SUM(L.extendedprice)
			from REGION R, NATION N, SUPPLIER S, LINEITEM L
			where R.name = 'ASIA' and N.regionkey = R.regionkey
			  and S.nationkey = N.nationkey and L.suppkey = S.suppkey
			group by N.name`},
		{Name: "tq06_revenue_forecast", ScanFree: false, SQL: `
			select SUM(L.extendedprice), COUNT(*)
			from LINEITEM L
			where L.shipdate >= '1994-01-01' and L.shipdate < '1995-01-01'
			  and L.discount between 5 and 7 and L.quantity < 24`},
		{Name: "tq07_nation_volume", ScanFree: true, SQL: `
			select L.shipmode, SUM(L.extendedprice)
			from NATION N, SUPPLIER S, LINEITEM L
			where N.name = 'FRANCE' and S.nationkey = N.nationkey and L.suppkey = S.suppkey
			group by L.shipmode`},
		{Name: "tq08_returned_items", ScanFree: true, SQL: `
			select C.custkey, SUM(L.extendedprice)
			from CUSTOMER C, ORDERS O, LINEITEM L
			where C.mktsegment = 'AUTOMOBILE' and O.custkey = C.custkey
			  and L.orderkey = O.orderkey and L.returnflag = 'R'
			group by C.custkey`},
		{Name: "tq09_important_stock", ScanFree: true, SQL: `
			select PS.suppkey, SUM(PS.supplycost)
			from PARTSUPP PS, SUPPLIER S, NATION N
			where PS.suppkey = S.suppkey and S.nationkey = N.nationkey and N.name = 'GERMANY'
			group by PS.suppkey`},
		{Name: "tq10_shipmode_priority", ScanFree: true, SQL: `
			select O.orderpriority, COUNT(*)
			from LINEITEM L, ORDERS O
			where L.shipmode in ('MAIL', 'SHIP') and L.orderkey = O.orderkey
			  and L.shipdate < L.commitdate
			group by O.orderpriority`},
		{Name: "tq11_discounted_brand", ScanFree: true, SQL: `
			select SUM(L.extendedprice)
			from PART P, LINEITEM L
			where P.brand = 'Brand#23' and P.container = 'MED BOX'
			  and L.partkey = P.partkey and L.quantity < 5`},
		{Name: "tq12_promo_effect", ScanFree: false, SQL: `
			select P.type, SUM(L.extendedprice)
			from LINEITEM L, PART P
			where L.partkey = P.partkey
			  and L.shipdate >= '1995-09-01' and L.shipdate < '1995-10-01'
			group by P.type`},
	}
}

// PaperQ1 is the running example of the paper (Example 3): simplified
// TPC-H q11, used by the Exp-1 case study (Table 2).
const PaperQ1 = `select PS.suppkey, SUM(PS.supplycost)
	from PARTSUPP as PS, SUPPLIER as S, NATION as N
	where PS.suppkey = S.suppkey and S.nationkey = N.nationkey and N.name = 'GERMANY'
	group by PS.suppkey`

// Package workload generates the three datasets of the paper's evaluation
// (Section 9) at laptop scale — the TPC-H benchmark (skew-free, uniform),
// and synthetic stand-ins for the UK MOT and US AIRCA real-life datasets
// (skewed, small active domains) — together with their query suites and
// hand-designed BaaV schemas. Query classifications (scan-free / bounded)
// mirror the paper's and are validated by tests.
package workload

import (
	"fmt"
	"math/rand"

	"zidian/internal/baav"
	"zidian/internal/relation"
)

// Query is one workload query with the paper's classification.
type Query struct {
	Name string
	SQL  string
	// ScanFree records whether the query is scan-free over the workload's
	// BaaV schema (the paper's q1–q6 vs q7–q12 split).
	ScanFree bool
	// Bounded additionally requires stable block degrees (true for the
	// real-life datasets' q1–q6; false for TPC-H, whose scan-free queries
	// are unbounded — Section 9, "BaaV schema").
	Bounded bool
}

// Workload bundles a generated database, its BaaV schema, and queries.
type Workload struct {
	Name    string
	DB      *relation.Database
	Schema  *baav.Schema
	Queries []Query
}

// Spec parameterizes generation.
type Spec struct {
	// Scale multiplies the base cardinalities (1.0 ≈ a few thousand rows).
	Scale float64
	// Seed makes generation deterministic.
	Seed int64
}

func (s Spec) rand() *rand.Rand {
	if s.Seed == 0 {
		s.Seed = 1
	}
	return rand.New(rand.NewSource(s.Seed))
}

func (s Spec) scaled(base int) int {
	if s.Scale <= 0 {
		s.Scale = 1
	}
	n := int(float64(base) * s.Scale)
	if n < 1 {
		n = 1
	}
	return n
}

// ScanFreeQueries filters the suite by classification.
func (w *Workload) ScanFreeQueries() []Query {
	var out []Query
	for _, q := range w.Queries {
		if q.ScanFree {
			out = append(out, q)
		}
	}
	return out
}

// NonScanFreeQueries filters the suite by classification.
func (w *Workload) NonScanFreeQueries() []Query {
	var out []Query
	for _, q := range w.Queries {
		if !q.ScanFree {
			out = append(out, q)
		}
	}
	return out
}

// Generate builds the named workload ("tpch", "mot" or "airca").
func Generate(name string, spec Spec) (*Workload, error) {
	switch name {
	case "tpch":
		return TPCH(spec), nil
	case "mot":
		return MOT(spec), nil
	case "airca":
		return AIRCA(spec), nil
	default:
		return nil, fmt.Errorf("workload: unknown workload %q", name)
	}
}

// zipfN draws a Zipf-distributed value in [0, n) with skew s (s > 1; larger
// is more skewed). The real-life datasets use it to reproduce the skew the
// paper attributes their speedups to.
func zipfN(r *rand.Rand, n int, s float64) int {
	if n <= 1 {
		return 0
	}
	z := rand.NewZipf(r, s, 1, uint64(n-1))
	return int(z.Uint64())
}

// pick returns a uniform element of the pool.
func pick(r *rand.Rand, pool []string) string { return pool[r.Intn(len(pool))] }

// pickZipf returns a Zipf-skewed element of the pool (early entries hot).
func pickZipf(r *rand.Rand, pool []string, s float64) string {
	return pool[zipfN(r, len(pool), s)]
}

// date renders a synthetic ISO date; lexicographic order equals date order.
func date(year, month, day int) string {
	return fmt.Sprintf("%04d-%02d-%02d", year, 1+month%12, 1+day%28)
}

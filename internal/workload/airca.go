package workload

import (
	"fmt"

	"zidian/internal/baav"
	"zidian/internal/relation"
)

// The AIRCA workload stands in for the paper's US air-carrier dataset
// (flight on-time performance joined with carrier statistics): 7 tables,
// Zipf-skewed carriers and airports. Per-carrier fan-outs (fleet, routes,
// monthly statistics) and per-flight fan-outs (delays) are bounded by
// construction, making the q1–q6 templates bounded queries.
const (
	aircaCarriers           = 20
	aircaAirports           = 60
	aircaFleetPer           = 8
	aircaRoutesPer          = 20
	aircaMonths             = 24
	aircaFlights            = 4000
	aircaMaxDelaysPerFlight = 3
)

var (
	aircaCodes     = []string{"AA", "DL", "UA", "WN", "B6", "AS", "NK", "F9", "HA", "G4", "SY", "XP", "MX", "KS", "ZW", "OO", "YX", "9E", "QX", "PT"}
	aircaAlliances = []string{"ONEWORLD", "SKYTEAM", "STAR", "NONE"}
	aircaMakers    = []string{"BOEING", "AIRBUS", "EMBRAER", "BOMBARDIER"}
	aircaModels    = []string{"737-800", "A320", "A321", "E175", "CRJ900", "757-200", "787-9", "A220"}
	aircaCauses    = []string{"CARRIER", "WEATHER", "NAS", "SECURITY", "LATE AIRCRAFT"}
	aircaStates    = []string{"CA", "TX", "FL", "NY", "IL", "GA", "CO", "WA", "AZ", "NC", "VA", "MA"}
)

// AIRCASchemas returns the seven AIRCA relation schemas.
func AIRCASchemas() []*relation.Schema {
	return []*relation.Schema{
		relation.MustSchema("CARRIER", []relation.Attr{
			intAttr("carrier_id"), strAttr("code"), strAttr("name"), strAttr("country"),
			strAttr("alliance"), intAttr("founded"), intAttr("fleet_size"), strAttr("hub"),
		}, []string{"carrier_id"}),
		relation.MustSchema("AIRPORT", []relation.Attr{
			intAttr("airport_id"), strAttr("iata"), strAttr("city"), strAttr("state"),
			strAttr("country"), intAttr("elevation"), intAttr("runways"), strAttr("tz"),
		}, []string{"airport_id"}),
		relation.MustSchema("AIRCRAFT", []relation.Attr{
			intAttr("aircraft_id"), intAttr("carrier_id"), strAttr("model"),
			strAttr("manufacturer"), intAttr("seats"), intAttr("range_km"), intAttr("year"),
		}, []string{"aircraft_id"}),
		relation.MustSchema("ROUTE", []relation.Attr{
			intAttr("route_id"), intAttr("carrier_id"), intAttr("origin_id"),
			intAttr("dest_id"), intAttr("distance"), intAttr("intl"),
		}, []string{"route_id"}),
		relation.MustSchema("FLIGHT", []relation.Attr{
			intAttr("flight_id"), intAttr("route_id"), intAttr("aircraft_id"),
			intAttr("carrier_id"), strAttr("flight_date"), intAttr("dep_delay"),
			intAttr("arr_delay"), intAttr("cancelled"), intAttr("diverted"),
			intAttr("air_time"), intAttr("taxi_out"), intAttr("taxi_in"),
		}, []string{"flight_id"}),
		relation.MustSchema("DELAY", []relation.Attr{
			intAttr("delay_id"), intAttr("flight_id"), strAttr("cause"),
			intAttr("minutes"), intAttr("weather_related"),
		}, []string{"delay_id"}),
		relation.MustSchema("MONTHLY", []relation.Attr{
			intAttr("month_id"), intAttr("carrier_id"), strAttr("ym"), intAttr("flights"),
			intAttr("passengers"), floatAttr("revenue"), floatAttr("load_factor"),
			floatAttr("on_time_pct"),
		}, []string{"month_id"}),
	}
}

// AIRCA generates the synthetic air-carrier workload.
func AIRCA(spec Spec) *Workload {
	r := spec.rand()
	db := relation.NewDatabase()
	rels := make(map[string]*relation.Relation)
	for _, s := range AIRCASchemas() {
		rel := relation.NewRelation(s)
		db.Add(rel)
		rels[s.Name] = rel
	}

	nCar := aircaCarriers // fixed small domain, like the real data
	nAir := spec.scaled(aircaAirports)
	for c := 0; c < nCar; c++ {
		rels["CARRIER"].MustInsert(relation.Tuple{
			relation.Int(int64(c)),
			relation.String(aircaCodes[c%len(aircaCodes)]),
			relation.String(fmt.Sprintf("Carrier %s", aircaCodes[c%len(aircaCodes)])),
			relation.String("US"),
			relation.String(pickZipf(r, aircaAlliances, 1.3)),
			relation.Int(int64(1930 + r.Intn(80))),
			relation.Int(int64(aircaFleetPer)),
			relation.String(fmt.Sprintf("HUB%02d", r.Intn(nAir))),
		})
		for a := 0; a < aircaFleetPer; a++ {
			rels["AIRCRAFT"].MustInsert(relation.Tuple{
				relation.Int(int64(c*aircaFleetPer + a)),
				relation.Int(int64(c)),
				relation.String(pickZipf(r, aircaModels, 1.3)),
				relation.String(pickZipf(r, aircaMakers, 1.4)),
				relation.Int(int64(70 + 10*r.Intn(20))),
				relation.Int(int64(2000 + 500*r.Intn(12))),
				relation.Int(int64(1998 + r.Intn(22))),
			})
		}
		for rt := 0; rt < aircaRoutesPer; rt++ {
			origin := zipfN(r, nAir, 1.4)
			dest := (origin + 1 + r.Intn(nAir-1)) % nAir
			rels["ROUTE"].MustInsert(relation.Tuple{
				relation.Int(int64(c*aircaRoutesPer + rt)),
				relation.Int(int64(c)),
				relation.Int(int64(origin)),
				relation.Int(int64(dest)),
				relation.Int(int64(200 + r.Intn(4000))),
				relation.Int(int64(r.Intn(2))),
			})
		}
		for m := 0; m < aircaMonths; m++ {
			rels["MONTHLY"].MustInsert(relation.Tuple{
				relation.Int(int64(c*aircaMonths + m)),
				relation.Int(int64(c)),
				relation.String(fmt.Sprintf("%04d-%02d", 2000+m/12, 1+m%12)),
				relation.Int(int64(500 + r.Intn(4000))),
				relation.Int(int64(40000 + r.Intn(400000))),
				relation.Float(float64(1_000_000 + r.Intn(80_000_000))),
				relation.Float(0.5 + float64(r.Intn(45))/100),
				relation.Float(0.6 + float64(r.Intn(39))/100),
			})
		}
	}
	for a := 0; a < nAir; a++ {
		rels["AIRPORT"].MustInsert(relation.Tuple{
			relation.Int(int64(a)),
			relation.String(fmt.Sprintf("AP%03d", a)),
			relation.String(fmt.Sprintf("City%03d", a)),
			relation.String(pick(r, aircaStates)),
			relation.String("US"),
			relation.Int(int64(r.Intn(7000))),
			relation.Int(int64(1 + r.Intn(6))),
			relation.String(fmt.Sprintf("UTC-%d", 4+r.Intn(5))),
		})
	}
	nFlights := spec.scaled(aircaFlights)
	for f := 0; f < nFlights; f++ {
		carrier := zipfN(r, nCar, 1.5) // skewed: big carriers fly more
		route := carrier*aircaRoutesPer + r.Intn(aircaRoutesPer)
		dep := r.Intn(120) - 15
		cancelled := 0
		if r.Intn(50) == 0 {
			cancelled = 1
		}
		rels["FLIGHT"].MustInsert(relation.Tuple{
			relation.Int(int64(f)),
			relation.Int(int64(route)),
			relation.Int(int64(carrier*aircaFleetPer + r.Intn(aircaFleetPer))),
			relation.Int(int64(carrier)),
			relation.String(date(2000+r.Intn(2), r.Intn(12), r.Intn(28))),
			relation.Int(int64(dep)),
			relation.Int(int64(dep + r.Intn(40) - 15)),
			relation.Int(int64(cancelled)),
			relation.Int(int64(r.Intn(100) / 99)),
			relation.Int(int64(40 + r.Intn(300))),
			relation.Int(int64(5 + r.Intn(30))),
			relation.Int(int64(2 + r.Intn(15))),
		})
		if dep > 15 {
			delays := 1 + r.Intn(aircaMaxDelaysPerFlight)
			for d := 0; d < delays; d++ {
				rels["DELAY"].MustInsert(relation.Tuple{
					relation.Int(int64(f*aircaMaxDelaysPerFlight + d)),
					relation.Int(int64(f)),
					relation.String(pickZipf(r, aircaCauses, 1.4)),
					relation.Int(int64(5 + r.Intn(120))),
					relation.Int(int64(r.Intn(2))),
				})
			}
		}
	}

	return &Workload{
		Name:    "airca",
		DB:      db,
		Schema:  aircaBaaVSchema(db),
		Queries: aircaQueries(),
	}
}

func aircaBaaVSchema(db *relation.Database) *baav.Schema {
	return baav.MustSchema(baav.RelSchemas(db),
		baav.KVSchema{Name: "carrier_full", Rel: "CARRIER", Key: []string{"carrier_id"},
			Val: []string{"code", "name", "country", "alliance", "founded", "fleet_size", "hub"}},
		baav.KVSchema{Name: "carrier_by_code", Rel: "CARRIER", Key: []string{"code"},
			Val: []string{"carrier_id", "name", "alliance", "founded"}},
		baav.KVSchema{Name: "airport_full", Rel: "AIRPORT", Key: []string{"airport_id"},
			Val: []string{"iata", "city", "state", "country", "elevation", "runways", "tz"}},
		baav.KVSchema{Name: "aircraft_by_carrier", Rel: "AIRCRAFT", Key: []string{"carrier_id"},
			Val: []string{"aircraft_id", "model", "manufacturer", "seats", "range_km", "year"}},
		baav.KVSchema{Name: "route_by_carrier", Rel: "ROUTE", Key: []string{"carrier_id"},
			Val: []string{"route_id", "origin_id", "dest_id", "distance", "intl"}},
		baav.KVSchema{Name: "flight_full", Rel: "FLIGHT", Key: []string{"flight_id"},
			Val: []string{"route_id", "aircraft_id", "carrier_id", "flight_date", "dep_delay", "arr_delay", "cancelled", "diverted", "air_time", "taxi_out", "taxi_in"}},
		baav.KVSchema{Name: "delay_by_flight", Rel: "DELAY", Key: []string{"flight_id"},
			Val: []string{"delay_id", "cause", "minutes", "weather_related"}},
		baav.KVSchema{Name: "monthly_by_carrier", Rel: "MONTHLY", Key: []string{"carrier_id"},
			Val: []string{"month_id", "ym", "flights", "passengers", "revenue", "load_factor", "on_time_pct"}},
		// flight_by_carrier answers the per-carrier delay aggregate (aq08)
		// from per-block statistics headers alone.
		baav.KVSchema{Name: "flight_by_carrier", Rel: "FLIGHT", Key: []string{"carrier_id"},
			Val: []string{"dep_delay", "air_time"}},
	)
}

// aircaQueries: q1–q6 scan-free and bounded (carrier/flight keyed chains
// with fixed fan-outs); q7–q12 not scan-free.
func aircaQueries() []Query {
	return []Query{
		{Name: "aq01_carrier_profile", ScanFree: true, Bounded: true, SQL: `
			select C.name, C.alliance, M.ym, M.on_time_pct
			from CARRIER C, MONTHLY M
			where C.code = 'DL' and M.carrier_id = C.carrier_id and M.ym >= '2001-01'`},
		{Name: "aq02_carrier_fleet", ScanFree: true, Bounded: true, SQL: `
			select A.model, A.manufacturer, A.seats
			from CARRIER C, AIRCRAFT A
			where C.code = 'AA' and A.carrier_id = C.carrier_id`},
		{Name: "aq03_carrier_long_routes", ScanFree: true, Bounded: true, SQL: `
			select R.route_id, R.distance
			from CARRIER C, ROUTE R
			where C.code = 'UA' and R.carrier_id = C.carrier_id and R.distance > 2000`},
		{Name: "aq04_flight_delays", ScanFree: true, Bounded: true, SQL: `
			select F.flight_date, F.dep_delay, D.cause, D.minutes
			from FLIGHT F, DELAY D
			where F.flight_id = 77 and D.flight_id = F.flight_id`},
		{Name: "aq05_carrier_monthly_stats", ScanFree: true, Bounded: true, SQL: `
			select COUNT(*), AVG(M.load_factor), MAX(M.on_time_pct)
			from CARRIER C, MONTHLY M
			where C.code = 'WN' and M.carrier_id = C.carrier_id`},
		{Name: "aq06_carrier_route_airports", ScanFree: true, Bounded: true, SQL: `
			select R.route_id, P.iata, P.city
			from CARRIER C, ROUTE R, AIRPORT P
			where C.code = 'B6' and R.carrier_id = C.carrier_id
			  and P.airport_id = R.origin_id`},
		{Name: "aq07_delay_causes", ScanFree: false, SQL: `
			select D.cause, COUNT(*), SUM(D.minutes)
			from DELAY D group by D.cause`},
		{Name: "aq08_delay_by_carrier", ScanFree: false, SQL: `
			select F.carrier_id, AVG(F.dep_delay), COUNT(*)
			from FLIGHT F
			group by F.carrier_id`},
		{Name: "aq09_cancellations", ScanFree: false, SQL: `
			select COUNT(*)
			from FLIGHT F
			where F.cancelled = 1 and F.flight_date >= '2001-01-01'`},
		{Name: "aq10_weather_delays", ScanFree: false, SQL: `
			select D.cause, COUNT(*)
			from DELAY D, FLIGHT F
			where D.flight_id = F.flight_id and D.weather_related = 1
			group by D.cause`},
		{Name: "aq11_route_utilization", ScanFree: false, SQL: `
			select F.route_id, COUNT(*), AVG(F.air_time)
			from FLIGHT F
			where F.cancelled = 0
			group by F.route_id
			order by F.route_id limit 10`},
		{Name: "aq12_fleet_age", ScanFree: false, SQL: `
			select A.manufacturer, COUNT(*), MIN(A.year)
			from AIRCRAFT A
			where A.seats >= 100
			group by A.manufacturer`},
	}
}

package workload

import (
	"fmt"

	"zidian/internal/baav"
	"zidian/internal/relation"
)

// The MOT workload stands in for the paper's UK MOT dataset (anonymised
// vehicle test records joined with roadside observations): 3 tables, 42
// attributes, Zipf-skewed foreign keys and small active domains. The paper
// attributes the large real-life speedups to exactly this skew. Per-vehicle
// fan-outs are bounded by construction (at most 12 tests and 20
// observations per vehicle), so the q1–q6 templates are bounded queries.
const (
	motVehicles = 600
	motTestsPer = 5 // average; max 12
	motObsPer   = 6 // average; max 20
	motMaxTests = 12
	motMaxObs   = 20
	motStations = 40
	motRoads    = 80
)

var (
	motMakes     = []string{"FORD", "VAUXHALL", "VOLKSWAGEN", "BMW", "TOYOTA", "AUDI", "MERCEDES", "NISSAN", "PEUGEOT", "HONDA", "RENAULT", "SKODA"}
	motFuels     = []string{"PETROL", "DIESEL", "HYBRID", "ELECTRIC"}
	motColors    = []string{"BLACK", "WHITE", "SILVER", "BLUE", "RED", "GREY", "GREEN"}
	motRegions   = []string{"LONDON", "SCOTLAND", "WALES", "MIDLANDS", "NORTH EAST", "NORTH WEST", "SOUTH EAST", "SOUTH WEST", "EAST", "YORKSHIRE", "NI", "CUMBRIA"}
	motResults   = []string{"PASS", "FAIL", "PRS", "ABA"}
	motWeather   = []string{"DRY", "WET", "FOG", "SNOW", "ICE"}
	motRoadTypes = []string{"MOTORWAY", "A-ROAD", "B-ROAD", "URBAN", "RURAL"}
)

// MOTSchemas returns the three MOT relation schemas (42 attributes total).
func MOTSchemas() []*relation.Schema {
	return []*relation.Schema{
		relation.MustSchema("VEHICLE", []relation.Attr{
			intAttr("vehicle_id"), strAttr("make"), strAttr("model"), strAttr("fuel"),
			strAttr("color"), intAttr("year"), intAttr("engine_cc"), strAttr("region"),
			intAttr("weight"), intAttr("doors"), intAttr("co2"), strAttr("price_band"),
			strAttr("first_use"),
		}, []string{"vehicle_id"}),
		relation.MustSchema("TEST", []relation.Attr{
			intAttr("test_id"), intAttr("vehicle_id"), intAttr("station_id"),
			strAttr("test_date"), strAttr("result"), intAttr("mileage"),
			strAttr("test_class"), floatAttr("cost"), intAttr("duration_min"),
			intAttr("retest"), intAttr("defect_count"), intAttr("advisory_count"),
			intAttr("tester_id"), strAttr("odo_unit"),
		}, []string{"test_id"}),
		relation.MustSchema("OBSERVATION", []relation.Attr{
			intAttr("obs_id"), intAttr("road_id"), intAttr("vehicle_id"),
			strAttr("obs_date"), intAttr("speed"), strAttr("direction"),
			intAttr("lane"), strAttr("weather"), intAttr("temperature"),
			strAttr("region"), intAttr("camera_id"), intAttr("heavy"),
			intAttr("axles"), intAttr("occupancy"), strAttr("road_type"),
		}, []string{"obs_id"}),
	}
}

// MOT generates the synthetic MOT workload.
func MOT(spec Spec) *Workload {
	r := spec.rand()
	db := relation.NewDatabase()
	rels := make(map[string]*relation.Relation)
	for _, s := range MOTSchemas() {
		rel := relation.NewRelation(s)
		db.Add(rel)
		rels[s.Name] = rel
	}

	nVeh := spec.scaled(motVehicles)
	nModels := nVeh/50 + 5
	for v := 0; v < nVeh; v++ {
		make := pickZipf(r, motMakes, 1.4)
		// Model is uniform within the make so per-(make,model) block degrees
		// stay stable as the data scales — this keeps mq06 bounded.
		rels["VEHICLE"].MustInsert(relation.Tuple{
			relation.Int(int64(v)),
			relation.String(make),
			relation.String(fmt.Sprintf("%s-M%03d", make, r.Intn(nModels))),
			relation.String(pickZipf(r, motFuels, 1.5)),
			relation.String(pickZipf(r, motColors, 1.2)),
			relation.Int(int64(1995 + r.Intn(17))),
			relation.Int(int64(900 + 100*r.Intn(30))),
			relation.String(pickZipf(r, motRegions, 1.3)),
			relation.Int(int64(800 + r.Intn(2200))),
			relation.Int(int64(2 + r.Intn(4))),
			relation.Int(int64(90 + r.Intn(200))),
			relation.String(fmt.Sprintf("BAND-%c", 'A'+byte(r.Intn(6)))),
			relation.String(date(1995+r.Intn(17), r.Intn(12), r.Intn(28))),
		})
		// Tests: bounded per-vehicle fan-out.
		tests := 1 + zipfN(r, motMaxTests, 1.3)
		if tests > motMaxTests {
			tests = motMaxTests
		}
		baseMileage := 10000 + r.Intn(40000)
		for i := 0; i < tests; i++ {
			rels["TEST"].MustInsert(relation.Tuple{
				relation.Int(int64(v*motMaxTests + i)),
				relation.Int(int64(v)),
				relation.Int(int64(zipfN(r, spec.scaled(motStations), 1.4))),
				relation.String(date(2007+i%5, r.Intn(12), r.Intn(28))),
				relation.String(pickZipf(r, motResults, 1.6)),
				relation.Int(int64(baseMileage + i*7000 + r.Intn(3000))),
				relation.String(fmt.Sprintf("CLASS-%d", 3+r.Intn(3))),
				relation.Float(float64(3000+r.Intn(3000)) / 100),
				relation.Int(int64(20 + r.Intn(60))),
				relation.Int(int64(r.Intn(2))),
				relation.Int(int64(zipfN(r, 8, 1.8))),
				relation.Int(int64(zipfN(r, 6, 1.5))),
				relation.Int(int64(r.Intn(500))),
				relation.String("MI"),
			})
		}
		// Observations: bounded per-vehicle fan-out, skewed toward hot roads.
		obs := zipfN(r, motMaxObs, 1.2)
		for i := 0; i < obs; i++ {
			rels["OBSERVATION"].MustInsert(relation.Tuple{
				relation.Int(int64(v*motMaxObs + i)),
				relation.Int(int64(zipfN(r, spec.scaled(motRoads), 1.4))),
				relation.Int(int64(v)),
				relation.String(date(2007+r.Intn(5), r.Intn(12), r.Intn(28))),
				relation.Int(int64(20 + r.Intn(90))),
				relation.String(pick(r, []string{"N", "S", "E", "W"})),
				relation.Int(int64(1 + r.Intn(4))),
				relation.String(pickZipf(r, motWeather, 1.7)),
				relation.Int(int64(r.Intn(30) - 5)),
				relation.String(pickZipf(r, motRegions, 1.3)),
				relation.Int(int64(r.Intn(200))),
				relation.Int(int64(r.Intn(2))),
				relation.Int(int64(2 + r.Intn(4))),
				relation.Int(int64(1 + r.Intn(5))),
				relation.String(pickZipf(r, motRoadTypes, 1.4)),
			})
		}
	}

	return &Workload{
		Name:    "mot",
		DB:      db,
		Schema:  motBaaVSchema(db),
		Queries: motQueries(),
	}
}

// motBaaVSchema keys the per-vehicle data by vehicle_id (bounded blocks by
// construction) plus full schemas for fallback scans.
func motBaaVSchema(db *relation.Database) *baav.Schema {
	return baav.MustSchema(baav.RelSchemas(db),
		baav.KVSchema{Name: "vehicle_full", Rel: "VEHICLE", Key: []string{"vehicle_id"},
			Val: []string{"make", "model", "fuel", "color", "year", "engine_cc", "region", "weight", "doors", "co2", "price_band", "first_use"}},
		baav.KVSchema{Name: "vehicle_by_make_model", Rel: "VEHICLE", Key: []string{"make", "model"},
			Val: []string{"vehicle_id", "fuel", "year", "region"}},
		baav.KVSchema{Name: "test_by_vehicle", Rel: "TEST", Key: []string{"vehicle_id"},
			Val: []string{"test_id", "station_id", "test_date", "result", "mileage", "cost", "defect_count", "retest"}},
		baav.KVSchema{Name: "test_full", Rel: "TEST", Key: []string{"test_id"},
			Val: []string{"vehicle_id", "station_id", "test_date", "result", "mileage", "test_class", "cost", "duration_min", "retest", "defect_count", "advisory_count", "tester_id", "odo_unit"}},
		baav.KVSchema{Name: "obs_by_vehicle", Rel: "OBSERVATION", Key: []string{"vehicle_id"},
			Val: []string{"obs_id", "road_id", "obs_date", "speed", "weather", "region", "heavy", "road_type"}},
		baav.KVSchema{Name: "obs_full", Rel: "OBSERVATION", Key: []string{"obs_id"},
			Val: []string{"road_id", "vehicle_id", "obs_date", "speed", "direction", "lane", "weather", "temperature", "region", "camera_id", "heavy", "axles", "occupancy", "road_type"}},
		// obs_by_region answers the region histogram (mq10) from per-block
		// statistics headers alone (Section 8.2 aggregate pushdown).
		baav.KVSchema{Name: "obs_by_region", Rel: "OBSERVATION", Key: []string{"region"},
			Val: []string{"speed"}},
	)
}

// motQueries: q1–q6 scan-free and bounded (vehicle-keyed chains with stable
// block degrees); q7–q12 not scan-free (whole-table aggregates and
// range-only selections).
func motQueries() []Query {
	return []Query{
		{Name: "mq01_vehicle_tests", ScanFree: true, Bounded: true, SQL: `
			select T.test_date, T.result, T.mileage
			from TEST T where T.vehicle_id = 42`},
		{Name: "mq02_vehicle_profile", ScanFree: true, Bounded: true, SQL: `
			select V.make, V.model, T.test_date, T.result
			from VEHICLE V, TEST T
			where V.vehicle_id = 42 and T.vehicle_id = V.vehicle_id`},
		{Name: "mq03_vehicle_speeding", ScanFree: true, Bounded: true, SQL: `
			select O.obs_date, O.speed, O.road_type
			from OBSERVATION O
			where O.vehicle_id = 17 and O.speed > 70`},
		{Name: "mq04_vehicle_history", ScanFree: true, Bounded: true, SQL: `
			select T.test_date, T.result, O.obs_date, O.speed
			from VEHICLE V, TEST T, OBSERVATION O
			where V.vehicle_id = 7 and T.vehicle_id = V.vehicle_id
			  and O.vehicle_id = V.vehicle_id`},
		{Name: "mq05_vehicle_test_stats", ScanFree: true, Bounded: true, SQL: `
			select COUNT(*), AVG(T.mileage), MAX(T.defect_count)
			from TEST T
			where T.vehicle_id = 42 and T.test_date >= '2008-01-01'`},
		{Name: "mq06_model_fleet", ScanFree: true, Bounded: true, SQL: `
			select V.vehicle_id, V.fuel, V.year
			from VEHICLE V
			where V.make = 'FORD' and V.model = 'FORD-M001'`},
		{Name: "mq07_results_histogram", ScanFree: false, SQL: `
			select T.result, COUNT(*)
			from TEST T group by T.result`},
		{Name: "mq08_mileage_by_make", ScanFree: false, SQL: `
			select V.make, AVG(T.mileage)
			from TEST T, VEHICLE V
			where T.vehicle_id = V.vehicle_id
			group by V.make`},
		{Name: "mq09_station_failures", ScanFree: false, SQL: `
			select T.station_id, COUNT(*)
			from TEST T
			where T.result = 'FAIL' and T.test_date >= '2009-01-01'
			group by T.station_id`},
		{Name: "mq10_busiest_regions", ScanFree: false, SQL: `
			select O.region, COUNT(*)
			from OBSERVATION O
			group by O.region
			order by O.region limit 5`},
		{Name: "mq11_speed_by_roadtype", ScanFree: false, SQL: `
			select O.road_type, AVG(O.speed), COUNT(*)
			from OBSERVATION O
			where O.weather = 'WET'
			group by O.road_type`},
		{Name: "mq12_heavy_failures", ScanFree: false, SQL: `
			select COUNT(*)
			from TEST T, OBSERVATION O
			where T.vehicle_id = O.vehicle_id and T.result = 'FAIL' and O.heavy = 1`},
	}
}

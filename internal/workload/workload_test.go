package workload

import (
	"testing"

	"zidian/internal/baav"
	"zidian/internal/core"
	"zidian/internal/kv"
	"zidian/internal/parallel"
	"zidian/internal/ra"
	"zidian/internal/taav"
)

func buildStores(t *testing.T, w *Workload) (*baav.Store, *taav.Store, *core.Checker) {
	t.Helper()
	bv, err := baav.Map(w.DB, w.Schema, kv.NewCluster(kv.EngineHash, 4), baav.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tv, err := taav.Map(w.DB, kv.NewCluster(kv.EngineHash, 4))
	if err != nil {
		t.Fatal(err)
	}
	return bv, tv, core.NewChecker(w.Schema, baav.RelSchemas(w.DB)).WithStats(bv)
}

// verifyWorkload checks, for every query of a workload: the declared
// scan-free classification matches Condition (III); the generated plan's
// scan-freeness matches; and Zidian (sequential + parallel) and the TaaV
// baseline all agree with the reference evaluator.
func verifyWorkload(t *testing.T, w *Workload) {
	t.Helper()
	bv, tv, checker := buildStores(t, w)
	if len(w.Queries) != 12 {
		t.Fatalf("%s: expected 12 queries, have %d", w.Name, len(w.Queries))
	}
	for _, wq := range w.Queries {
		q, err := ra.Parse(wq.SQL, w.DB)
		if err != nil {
			t.Fatalf("%s/%s: parse: %v", w.Name, wq.Name, err)
		}
		if got := checker.ScanFree(q); got != wq.ScanFree {
			t.Fatalf("%s/%s: ScanFree = %v, declared %v", w.Name, wq.Name, got, wq.ScanFree)
		}
		info, err := checker.Plan(q)
		if err != nil {
			t.Fatalf("%s/%s: plan: %v", w.Name, wq.Name, err)
		}
		if info.ScanFree != wq.ScanFree {
			t.Fatalf("%s/%s: plan scan-freeness %v, declared %v (plan %s)",
				w.Name, wq.Name, info.ScanFree, wq.ScanFree, info.Root)
		}
		want, err := ra.Evaluate(q, w.DB)
		if err != nil {
			t.Fatalf("%s/%s: reference: %v", w.Name, wq.Name, err)
		}
		got, _, err := core.Answer(info, bv)
		if err != nil {
			t.Fatalf("%s/%s: answer: %v", w.Name, wq.Name, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s/%s: Zidian answer differs from reference (%d vs %d rows)",
				w.Name, wq.Name, len(got.Rows), len(want.Rows))
		}
		gotPar, _, err := parallel.RunKBA(info, bv, 4)
		if err != nil {
			t.Fatalf("%s/%s: parallel: %v", w.Name, wq.Name, err)
		}
		if !gotPar.Equal(want) {
			t.Fatalf("%s/%s: parallel Zidian answer differs", w.Name, wq.Name)
		}
		gotBase, _, err := parallel.RunTaaV(q, tv, 4)
		if err != nil {
			t.Fatalf("%s/%s: baseline: %v", w.Name, wq.Name, err)
		}
		if !gotBase.Equal(want) {
			t.Fatalf("%s/%s: baseline answer differs", w.Name, wq.Name)
		}
	}
}

func TestTPCHWorkload(t *testing.T) {
	w := TPCH(Spec{Scale: 0.2, Seed: 7})
	verifyWorkload(t, w)
}

func TestMOTWorkload(t *testing.T) {
	w := MOT(Spec{Scale: 0.5, Seed: 7})
	verifyWorkload(t, w)
}

func TestAIRCAWorkload(t *testing.T) {
	w := AIRCA(Spec{Scale: 0.3, Seed: 7})
	verifyWorkload(t, w)
}

func TestTPCHCardinalityRatios(t *testing.T) {
	w := TPCH(Spec{Scale: 0.5, Seed: 1})
	db := w.DB
	if db.Relation("REGION").Cardinality() != 5 || db.Relation("NATION").Cardinality() != 25 {
		t.Fatal("region/nation are fixed-size")
	}
	part := db.Relation("PART").Cardinality()
	ps := db.Relation("PARTSUPP").Cardinality()
	if ps != 4*part {
		t.Fatalf("partsupp = %d, want 4×part = %d", ps, 4*part)
	}
	orders := db.Relation("ORDERS").Cardinality()
	li := db.Relation("LINEITEM").Cardinality()
	if li < 2*orders || li > 8*orders {
		t.Fatalf("lineitem/orders ratio off: %d/%d", li, orders)
	}
	// 61 attributes across 8 relations, as in TPC-H.
	attrs := 0
	for _, s := range db.Schemas() {
		attrs += len(s.Attrs)
	}
	if attrs != 61 {
		t.Fatalf("attribute count = %d, want 61", attrs)
	}
}

func TestMOTShape(t *testing.T) {
	w := MOT(Spec{Scale: 1, Seed: 2})
	attrs := 0
	for _, s := range w.DB.Schemas() {
		attrs += len(s.Attrs)
	}
	if attrs != 42 {
		t.Fatalf("MOT attribute count = %d, want 42", attrs)
	}
	if len(w.DB.Schemas()) != 3 {
		t.Fatal("MOT has 3 tables")
	}
}

func TestAIRCAShape(t *testing.T) {
	w := AIRCA(Spec{Scale: 1, Seed: 2})
	if len(w.DB.Schemas()) != 7 {
		t.Fatal("AIRCA has 7 tables")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MOT(Spec{Scale: 0.5, Seed: 3})
	b := MOT(Spec{Scale: 0.5, Seed: 3})
	if a.DB.Cardinality() != b.DB.Cardinality() {
		t.Fatal("same seed must generate identical sizes")
	}
	c := MOT(Spec{Scale: 0.5, Seed: 4})
	if a.DB.Cardinality() == c.DB.Cardinality() && a.DB.SizeBytes() == c.DB.SizeBytes() {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateByName(t *testing.T) {
	for _, name := range []string{"tpch", "mot", "airca"} {
		w, err := Generate(name, Spec{Scale: 0.1, Seed: 1})
		if err != nil || w.Name != name {
			t.Fatalf("Generate(%s) = %v, %v", name, w, err)
		}
	}
	if _, err := Generate("nope", Spec{}); err == nil {
		t.Fatal("unknown workload must error")
	}
}

// TestBoundedQueriesStayBounded verifies the defining property of the
// real-life q1–q6 templates: their block degrees do not grow with scale.
func TestBoundedQueriesStayBounded(t *testing.T) {
	for _, gen := range []func(Spec) *Workload{MOT, AIRCA} {
		small := gen(Spec{Scale: 0.5, Seed: 5})
		big := gen(Spec{Scale: 2, Seed: 5})
		bvSmall, _, chkSmall := buildStores(t, small)
		bvBig, _, chkBig := buildStores(t, big)
		// The degree bound is calibrated on the small store with headroom.
		bound := bvSmall.Degree("")*3 + 50
		for i, wq := range small.Queries {
			if !wq.Bounded {
				continue
			}
			// Boundedness is a property of the plan: every instance the
			// plan's ∝ steps touch must keep a stable degree as |D| grows.
			qs := ra.MustParse(wq.SQL, small.DB)
			qb := ra.MustParse(big.Queries[i].SQL, big.DB)
			infoS, err := chkSmall.Plan(qs)
			if err != nil {
				t.Fatal(err)
			}
			infoB, err := chkBig.Plan(qb)
			if err != nil {
				t.Fatal(err)
			}
			if !infoS.Bounded(bvSmall, bound) {
				t.Fatalf("%s/%s: not bounded at small scale (bound %d)", small.Name, wq.Name, bound)
			}
			if !infoB.Bounded(bvBig, bound) {
				t.Fatalf("%s/%s: degree grew past %d at 4× scale", big.Name, wq.Name, bound)
			}
		}
	}
}

func TestScanFreeSplitIsSixSix(t *testing.T) {
	for _, w := range []*Workload{MOT(Spec{Scale: 0.2, Seed: 1}), AIRCA(Spec{Scale: 0.2, Seed: 1})} {
		if len(w.ScanFreeQueries()) != 6 || len(w.NonScanFreeQueries()) != 6 {
			t.Fatalf("%s: split = %d/%d, want 6/6", w.Name,
				len(w.ScanFreeQueries()), len(w.NonScanFreeQueries()))
		}
	}
}

func TestPaperQ1Constant(t *testing.T) {
	w := TPCH(Spec{Scale: 0.1, Seed: 1})
	q, err := ra.Parse(PaperQ1, w.DB)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 3 {
		t.Fatal("paper Q1 has three atoms")
	}
}

// Package baav implements the block-as-a-value data model of the paper
// (Section 4.1): KV schemas ~R⟨X,Y⟩, keyed blocks (k,B), BaaV stores over a
// KV cluster, the mapping from relational databases to BaaV stores, block
// segmentation, block compression with multiplicity counters, per-block
// group-by statistics, and incremental maintenance under updates.
package baav

import (
	"fmt"
	"sort"

	"zidian/internal/relation"
)

// KVSchema is one KV schema ~R⟨X,Y⟩ over a source relation: keys are tuples
// over the Key attributes, values are blocks of tuples over the Val
// attributes.
type KVSchema struct {
	// Name identifies the KV schema uniquely within a BaaV schema.
	Name string
	// Rel is the source relation the schema projects.
	Rel string
	// Key is X: the key attributes (any attributes, not just primary keys).
	Key []string
	// Val is Y: the value attributes grouped into blocks.
	Val []string
}

// Attrs returns X ∪ Y in key-then-value order.
func (s KVSchema) Attrs() []string {
	out := make([]string, 0, len(s.Key)+len(s.Val))
	out = append(out, s.Key...)
	out = append(out, s.Val...)
	return out
}

// String renders the schema as "name: Rel⟨X | Y⟩".
func (s KVSchema) String() string {
	return fmt.Sprintf("%s: %s<%v | %v>", s.Name, s.Rel, s.Key, s.Val)
}

// Schema is a BaaV schema ~R: a set of KV schemas. The paper assumes each KV
// schema draws its attributes from a single relation schema; so does this
// implementation.
type Schema struct {
	KVs    []KVSchema
	byName map[string]int
}

// NewSchema validates and indexes a set of KV schemas against the relational
// schemas they project.
func NewSchema(rels map[string]*relation.Schema, kvs ...KVSchema) (*Schema, error) {
	s := &Schema{KVs: kvs, byName: make(map[string]int, len(kvs))}
	for i, kvSchema := range kvs {
		if kvSchema.Name == "" {
			return nil, fmt.Errorf("baav: KV schema %d has no name", i)
		}
		if _, dup := s.byName[kvSchema.Name]; dup {
			return nil, fmt.Errorf("baav: duplicate KV schema name %q", kvSchema.Name)
		}
		rel, ok := rels[kvSchema.Rel]
		if !ok {
			return nil, fmt.Errorf("baav: KV schema %s references unknown relation %q", kvSchema.Name, kvSchema.Rel)
		}
		if len(kvSchema.Key) == 0 || len(kvSchema.Val) == 0 {
			return nil, fmt.Errorf("baav: KV schema %s needs non-empty key and value attribute sets", kvSchema.Name)
		}
		seen := make(map[string]bool)
		for _, a := range kvSchema.Attrs() {
			if !rel.Has(a) {
				return nil, fmt.Errorf("baav: KV schema %s: relation %s has no attribute %q", kvSchema.Name, kvSchema.Rel, a)
			}
			if seen[a] {
				return nil, fmt.Errorf("baav: KV schema %s: attribute %q repeated", kvSchema.Name, a)
			}
			seen[a] = true
		}
		s.byName[kvSchema.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for static workload schemas.
func MustSchema(rels map[string]*relation.Schema, kvs ...KVSchema) *Schema {
	s, err := NewSchema(rels, kvs...)
	if err != nil {
		panic(err)
	}
	return s
}

// RelSchemas collects a database's relation schemas into the map NewSchema
// expects.
func RelSchemas(db *relation.Database) map[string]*relation.Schema {
	out := make(map[string]*relation.Schema)
	for _, s := range db.Schemas() {
		out[s.Name] = s
	}
	return out
}

// ByName returns the KV schema with the given name, or nil.
func (s *Schema) ByName(name string) *KVSchema {
	if i, ok := s.byName[name]; ok {
		return &s.KVs[i]
	}
	return nil
}

// ForRelation returns the KV schemas projecting the given relation, in
// declaration order.
func (s *Schema) ForRelation(rel string) []KVSchema {
	var out []KVSchema
	for _, kvSchema := range s.KVs {
		if kvSchema.Rel == rel {
			out = append(out, kvSchema)
		}
	}
	return out
}

// Names returns all KV schema names, sorted.
func (s *Schema) Names() []string {
	out := make([]string, 0, len(s.KVs))
	for _, kvSchema := range s.KVs {
		out = append(out, kvSchema.Name)
	}
	sort.Strings(out)
	return out
}

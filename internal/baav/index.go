package baav

import "zidian/internal/relation"

// SecondaryIndex resolves block-aware secondary-index lookups at plan
// execution time. It is implemented by internal/index.Manager; the store
// only needs the read path, so executors stay decoupled from the index
// subsystem's catalog and maintenance machinery.
type SecondaryIndex interface {
	// Lookup returns the block keys posted under v in the named index and
	// the number of get invocations issued.
	Lookup(name string, v relation.Value) ([]relation.Tuple, int, error)
	// MaxPostings returns the longest posting list of the named index; the
	// boundedness check treats it like a block degree.
	MaxPostings(name string) int
}

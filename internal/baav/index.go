package baav

import (
	"zidian/internal/obs"
	"zidian/internal/relation"
)

// SecondaryIndex resolves block-aware secondary-index lookups at plan
// execution time. It is implemented by internal/index.Manager; the store
// only needs the read path, so executors stay decoupled from the index
// subsystem's catalog and maintenance machinery.
type SecondaryIndex interface {
	// Lookup returns the block keys posted under v in the named index and
	// the number of get invocations issued.
	Lookup(name string, v relation.Value) ([]relation.Tuple, int, error)
	// LookupT is Lookup with a per-statement trace (nil untraced): kv ops
	// count into the trace's kv sink and decoded posting lists into its
	// posting-read counter.
	LookupT(t *obs.Trace, name string, v relation.Value) ([]relation.Tuple, int, error)
	// LookupManyT resolves several values' postings in one batched cluster
	// round (the gets group by owning node); outs aligns with vs, nil for a
	// value with no posting. gets matches one LookupT per value.
	LookupManyT(t *obs.Trace, name string, vs []relation.Value) (outs [][]relation.Tuple, gets int, err error)
	// Range returns the postings of every indexed value within the bounds
	// (nil = unbounded side; loIncl/hiIncl select closed ends) as parallel
	// slices — vals[i] posted block key keys[i] — merged into encoded
	// (value, key) order, plus the number of posting lists visited by the
	// bounded ordered walk.
	Range(name string, lo, hi *relation.Value, loIncl, hiIncl bool) (vals []relation.Value, keys []relation.Tuple, scanned int, err error)
	// RangeLimit is Range bounded to the first limit postings in (value,
	// key) order (negative = unbounded): the streaming merge stops the walk
	// after O(limit) posting lists per node, so a pushed-down LIMIT costs
	// O(limit) scan steps instead of O(range).
	RangeLimit(name string, lo, hi *relation.Value, loIncl, hiIncl bool, limit int) (vals []relation.Value, keys []relation.Tuple, scanned int, err error)
	// RangeLimitT is RangeLimit with a per-statement trace (nil untraced).
	RangeLimitT(t *obs.Trace, name string, lo, hi *relation.Value, loIncl, hiIncl bool, limit int) (vals []relation.Value, keys []relation.Tuple, scanned int, err error)
	// MaxPostings returns the longest posting list of the named index; the
	// boundedness check treats it like a block degree.
	MaxPostings(name string) int
}

package baav

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"zidian/internal/kv"
	"zidian/internal/obs"
	"zidian/internal/relation"
)

// Options configure a BaaV store.
type Options struct {
	// SegmentThreshold is the maximum number of stored tuples per physical
	// block segment (Section 8.2's size threshold, expressed in tuples).
	SegmentThreshold int
	// Compress stores distinct value tuples with multiplicity counters.
	Compress bool
	// Stats attaches min/max/sum statistics to every block.
	Stats bool
}

// DefaultOptions mirror the paper's implementation defaults.
func DefaultOptions() Options {
	return Options{SegmentThreshold: 4096, Compress: true, Stats: true}
}

// Store is a BaaV store ~D: the KV instances of a BaaV schema, physically
// held in a kv.Cluster. Keyed blocks are encoded as single KV values; blocks
// larger than the segment threshold split into segments that logically
// appear as one block.
type Store struct {
	Schema  *Schema
	Cluster *kv.Cluster
	Rels    map[string]*relation.Schema
	Opts    Options

	// Index, when set, serves secondary-index lookups for IndexLookup plan
	// leaves. Index pairs live in the same cluster under a disjoint key
	// space (internal/index).
	Index SecondaryIndex

	ids   map[string]uint32 // KV schema name -> physical id
	kvRel map[string]string // KV schema name -> source relation

	// statsMu guards the bookkeeping maps below. The kv cluster already
	// synchronizes the stored pairs; this lock covers the store-level
	// statistics so maintenance on one relation can run concurrently with
	// planners and executors reading degrees, block counts, and row counts
	// for any relation (the maps are shared even when the keys are not).
	// A pointer so snapshot views (shallow Store copies) share the lock.
	statsMu *sync.RWMutex
	degrees map[string]int // KV schema name -> max distinct block size seen
	blocks  map[string]int // KV schema name -> number of keyed blocks
	relRows map[string]int // relation name -> tuple count

	// mvcc is the shared version directory and per-relation commit state;
	// snap, when set, pins this view's reads to a snapshot (see AtSnapshot).
	mvcc *mvccState
	snap *Snapshot
}

// NewStore creates an empty BaaV store for the schema on the cluster.
func NewStore(schema *Schema, rels map[string]*relation.Schema, cluster *kv.Cluster, opts Options) *Store {
	if opts.SegmentThreshold <= 0 {
		opts.SegmentThreshold = DefaultOptions().SegmentThreshold
	}
	st := &Store{
		Schema:  schema,
		Cluster: cluster,
		Rels:    rels,
		Opts:    opts,
		ids:     make(map[string]uint32),
		kvRel:   make(map[string]string),
		statsMu: &sync.RWMutex{},
		degrees: make(map[string]int),
		blocks:  make(map[string]int),
		relRows: make(map[string]int),
		mvcc:    newMVCCState(),
	}
	names := schema.Names()
	for i, n := range names {
		st.ids[n] = uint32(i + 1)
		st.kvRel[n] = schema.ByName(n).Rel
	}
	return st
}

// Map builds the BaaV store of db on the schema (the mapping of Section
// 4.1): for every KV schema, project the source relation onto X ∪ Y and
// group by X.
func Map(db *relation.Database, schema *Schema, cluster *kv.Cluster, opts Options) (*Store, error) {
	st := NewStore(schema, RelSchemas(db), cluster, opts)
	for _, kvSchema := range schema.KVs {
		rel := db.Relation(kvSchema.Rel)
		if rel == nil {
			return nil, fmt.Errorf("baav: relation %q missing from database", kvSchema.Rel)
		}
		st.relRows[kvSchema.Rel] = rel.Cardinality()
		keyPos, err := rel.Schema.Positions(kvSchema.Key)
		if err != nil {
			return nil, err
		}
		valPos, err := rel.Schema.Positions(kvSchema.Val)
		if err != nil {
			return nil, err
		}
		groups := make(map[string]*Block)
		var order []string
		keyOf := make(map[string]relation.Tuple)
		for _, t := range rel.Tuples {
			key := t.Project(keyPos)
			ks := relation.KeyString(key)
			b, ok := groups[ks]
			if !ok {
				b = &Block{}
				groups[ks] = b
				keyOf[ks] = key
				order = append(order, ks)
			}
			b.Add(t.Project(valPos), st.Opts.Compress)
		}
		sort.Strings(order) // deterministic layout
		for _, ks := range order {
			if err := st.loadBlock(kvSchema, keyOf[ks], groups[ks]); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

// blockPrefix is the physical key prefix of one logical block: schema id
// followed by the encoded key tuple.
func (st *Store) blockPrefix(id uint32, key relation.Tuple) []byte {
	out := make([]byte, 4, 4+16*len(key))
	binary.BigEndian.PutUint32(out, id)
	return relation.AppendTuple(out, key)
}

// Physical segment keys are version-suffixed; see verSegKey in mvcc.go.

// instancePrefix is the physical key prefix of a whole KV instance.
func (st *Store) instancePrefix(id uint32) []byte {
	out := make([]byte, 4)
	binary.BigEndian.PutUint32(out, id)
	return out
}

// GetBlock retrieves the keyed block under key in the named KV instance,
// reassembling segments. It returns nil when no block exists. gets reports
// the number of get invocations issued.
func (st *Store) GetBlock(name string, key relation.Tuple) (blk *Block, stats *BlockStats, gets int, err error) {
	return st.GetBlockT(nil, name, key)
}

// GetBlockT is GetBlock with a per-statement kv trace sink (nil untraced).
// The read resolves against this view's snapshot sequence: the version
// directory picks the winning version in memory, then every segment of
// that version is fetched in one batched multi-get (the segments share a
// route, so the whole block costs one round trip).
func (st *Store) GetBlockT(kvt *obs.KV, name string, key relation.Tuple) (blk *Block, stats *BlockStats, gets int, err error) {
	kvSchema := st.Schema.ByName(name)
	if kvSchema == nil {
		return nil, nil, 0, fmt.Errorf("baav: unknown KV schema %q", name)
	}
	id := st.ids[name]
	prefix := st.blockPrefix(id, key)
	seqLimit := st.snapSeqFor(kvSchema.Rel)

	winner, ok := pickWinner(st.mvcc.lookup(name, string(prefix)), seqLimit)
	if !ok {
		// No version visible at this snapshot. Probe the kv layer anyway so
		// a point lookup of an absent block keeps the accounting shape (one
		// get, one round trip) of a physical miss; the probe key cannot hit
		// (a version at exactly seqLimit would have been visible).
		st.Cluster.GetRoutedT(kvt, prefix, verSegKey(prefix, 0, seqLimit))
		return nil, nil, 1, nil
	}
	if winner.nsegs == 0 {
		// Tombstone: the block is deleted at this snapshot. Reading it costs
		// the one get a real versioned store would pay.
		st.Cluster.GetRoutedT(kvt, prefix, verSegKey(prefix, 0, winner.ver))
		return nil, nil, 1, nil
	}
	reqs := make([]kv.GetRequest, winner.nsegs)
	for seg := 0; seg < winner.nsegs; seg++ {
		reqs[seg] = kv.GetRequest{Route: prefix, Key: verSegKey(prefix, uint32(seg), winner.ver)}
	}
	res := st.Cluster.GetManyRouted(kvt, reqs)
	gets = winner.nsegs
	datas := make([][]byte, winner.nsegs)
	for i, r := range res {
		if !r.OK {
			return nil, nil, gets, fmt.Errorf("baav: missing segment %d of block in %s", i, name)
		}
		datas[i] = r.Value
	}
	blk, stats, err = assembleSegs(datas, len(kvSchema.Val))
	if err != nil {
		return nil, nil, gets, err
	}
	return blk, stats, gets, nil
}

// GetBlocksT retrieves several keyed blocks of one KV instance in a single
// batched cluster round: every block's winning version resolves in memory,
// then all their segments — and the probe gets of absent or tombstoned
// blocks, keeping GetBlockT's accounting shape per key — go out as one
// GetManyRouted, one emulated round trip and one lock acquisition per
// owning node however many blocks the round touches. blks and statss align
// with keys (nil where no block is visible); gets matches the sum the
// per-key GetBlockT calls would have reported.
func (st *Store) GetBlocksT(kvt *obs.KV, name string, keys []relation.Tuple) (blks []*Block, statss []*BlockStats, gets int, err error) {
	if len(keys) == 0 {
		return nil, nil, 0, nil
	}
	kvSchema := st.Schema.ByName(name)
	if kvSchema == nil {
		return nil, nil, 0, fmt.Errorf("baav: unknown KV schema %q", name)
	}
	id := st.ids[name]
	seqLimit := st.snapSeqFor(kvSchema.Rel)
	width := len(kvSchema.Val)

	type want struct {
		reqBase int
		nsegs   int // 0: probe only (absent or tombstoned at this snapshot)
	}
	wants := make([]want, len(keys))
	var reqs []kv.GetRequest
	for i, key := range keys {
		prefix := st.blockPrefix(id, key)
		winner, ok := pickWinner(st.mvcc.lookup(name, string(prefix)), seqLimit)
		switch {
		case !ok:
			wants[i] = want{reqBase: len(reqs)}
			reqs = append(reqs, kv.GetRequest{Route: prefix, Key: verSegKey(prefix, 0, seqLimit)})
			gets++
		case winner.nsegs == 0:
			wants[i] = want{reqBase: len(reqs)}
			reqs = append(reqs, kv.GetRequest{Route: prefix, Key: verSegKey(prefix, 0, winner.ver)})
			gets++
		default:
			wants[i] = want{reqBase: len(reqs), nsegs: winner.nsegs}
			for seg := 0; seg < winner.nsegs; seg++ {
				reqs = append(reqs, kv.GetRequest{Route: prefix, Key: verSegKey(prefix, uint32(seg), winner.ver)})
			}
			gets += winner.nsegs
		}
	}
	res := st.Cluster.GetManyRouted(kvt, reqs)
	blks = make([]*Block, len(keys))
	statss = make([]*BlockStats, len(keys))
	for i, w := range wants {
		if w.nsegs == 0 {
			continue
		}
		datas := make([][]byte, w.nsegs)
		for s := 0; s < w.nsegs; s++ {
			r := res[w.reqBase+s]
			if !r.OK {
				return nil, nil, gets, fmt.Errorf("baav: missing segment %d of block in %s", s, name)
			}
			datas[s] = r.Value
		}
		b, bs, err := assembleSegs(datas, width)
		if err != nil {
			return nil, nil, gets, err
		}
		blks[i], statss[i] = b, bs
	}
	return blks, statss, gets, nil
}

// loadBlock writes the initial (sequence-zero) version of a block during
// Map, bypassing the commit machinery: the load is single-threaded and
// nothing can be reading yet.
func (st *Store) loadBlock(kvSchema KVSchema, key relation.Tuple, blk *Block) error {
	if len(blk.Tuples) == 0 {
		return nil
	}
	prefix := st.blockPrefix(st.ids[kvSchema.Name], key)
	ops, nsegs := st.encodeVersionOps(kvSchema, prefix, blk, 0)
	for _, op := range ops {
		st.Cluster.PutRouted(op.Route, op.Key, op.Value)
	}
	st.mvcc.addVersion(kvSchema.Name, string(prefix), verEntry{ver: 0, nsegs: nsegs})
	st.statsMu.Lock()
	st.blocks[kvSchema.Name]++
	if d := blk.Distinct(); d > st.degrees[kvSchema.Name] {
		st.degrees[kvSchema.Name] = d
	}
	st.statsMu.Unlock()
	return nil
}

// PutBlock stores a block under key in the named KV instance, replacing
// any existing block, as a single-block commit on the owning relation: a
// new version is written and installed, and unreachable versions are
// reclaimed.
func (st *Store) PutBlock(name string, key relation.Tuple, blk *Block) error {
	kvSchema := st.Schema.ByName(name)
	if kvSchema == nil {
		return fmt.Errorf("baav: unknown KV schema %q", name)
	}
	c, err := st.BeginCommit(kvSchema.Rel)
	if err != nil {
		return err
	}
	defer c.Close()
	c.stagePut(*kvSchema, key, blk)
	st.Cluster.ApplyBatch(nil, c.Ops())
	c.Install()
	c.Reclaim(nil)
	return nil
}

// ScanInstance visits every keyed block of the named KV instance in key
// order until fn returns false. Segment reassembly is transparent.
func (st *Store) ScanInstance(name string, fn func(key relation.Tuple, blk *Block, stats *BlockStats) bool) error {
	return st.ScanInstanceT(nil, name, fn)
}

// ScanInstanceT is ScanInstance with a per-statement kv trace sink.
func (st *Store) ScanInstanceT(kvt *obs.KV, name string, fn func(key relation.Tuple, blk *Block, stats *BlockStats) bool) error {
	return st.scanInstanceWith(name, fn, func(prefix []byte, visit func(k, v []byte) bool) {
		st.Cluster.ScanT(kvt, prefix, visit)
	})
}

// ScanInstanceScatterT is ScanInstanceT returning the per-node stats of the
// scattered walk (pairs yielded, seek round trip, emptiness skips) so
// executors can surface the fan-out in EXPLAIN ANALYZE.
func (st *Store) ScanInstanceScatterT(kvt *obs.KV, name string, fn func(key relation.Tuple, blk *Block, stats *BlockStats) bool) ([]kv.NodeScanStat, error) {
	var stats []kv.NodeScanStat
	err := st.scanInstanceWith(name, fn, func(prefix []byte, visit func(k, v []byte) bool) {
		stats = st.Cluster.ScanScatterT(kvt, prefix, visit)
	})
	return stats, err
}

// AnnotateScatter records a scattered walk's per-node fan-out (pairs and
// seek round trips) on the trace's innermost open operator span; no-op
// untraced.
func AnnotateScatter(t *obs.Trace, stats []kv.NodeScanStat) {
	if t == nil || len(stats) == 0 {
		return
	}
	rows := make([]int64, len(stats))
	rtt := make([]int64, len(stats))
	for i, s := range stats {
		rows[i] = s.Pairs
		rtt[i] = int64(s.Wait)
	}
	t.AnnotateNodes(rows, rtt)
}

// ScanInstanceNode visits the keyed blocks of the instance held by one
// storage node. Blocks are colocated by key (segments route on the block
// prefix), so per-node scans see whole blocks; parallel scan drivers split
// work across nodes with it.
func (st *Store) ScanInstanceNode(node int, name string, fn func(key relation.Tuple, blk *Block, stats *BlockStats) bool) error {
	return st.ScanInstanceNodeT(nil, node, name, fn)
}

// ScanInstanceNodeT is ScanInstanceNode with a per-statement kv trace sink.
func (st *Store) ScanInstanceNodeT(kvt *obs.KV, node int, name string, fn func(key relation.Tuple, blk *Block, stats *BlockStats) bool) error {
	return st.scanInstanceWith(name, fn, func(prefix []byte, visit func(k, v []byte) bool) {
		st.Cluster.ScanNodeT(kvt, node, prefix, visit)
	})
}

// scanInstanceWith drives a raw kv scan over the instance's prefix and
// reassembles winner-version blocks. The physical key order within one
// block is (segment, newest-version-first), so the first segment-0 key at
// or below the snapshot sequence is the block's winning version; segments
// of any other version, and versions newer than the snapshot (including
// in-flight uninstalled commits), are skipped. A winning tombstone yields
// nothing — the block is deleted at this snapshot.
func (st *Store) scanInstanceWith(name string, fn func(key relation.Tuple, blk *Block, stats *BlockStats) bool,
	driver func(prefix []byte, visit func(k, v []byte) bool)) error {
	kvSchema := st.Schema.ByName(name)
	if kvSchema == nil {
		return fmt.Errorf("baav: unknown KV schema %q", name)
	}
	id := st.ids[name]
	width := len(kvSchema.Val)
	keyWidth := len(kvSchema.Key)
	seqLimit := st.snapSeqFor(kvSchema.Rel)

	var curPrefix []byte // block whose versions are being resolved
	var winnerVer uint64
	haveWinner := false
	var curKey relation.Tuple
	var curBlk *Block
	var curStats *BlockStats
	var scanErr error
	stopped := false

	flush := func() bool {
		if curBlk == nil {
			return true
		}
		ok := fn(curKey, curBlk, curStats)
		curBlk, curStats, curKey = nil, nil, nil
		return ok
	}

	driver(st.instancePrefix(id), func(k, v []byte) bool {
		key, n, err := relation.DecodeTuple(k[4:], keyWidth)
		if err != nil {
			scanErr = err
			return false
		}
		if len(k) < 4+n+12 {
			scanErr = errCorruptBlock
			return false
		}
		prefixLen := 4 + n
		seg := binary.BigEndian.Uint32(k[prefixLen:])
		ver := ^binary.BigEndian.Uint64(k[prefixLen+4:])
		if !bytes.Equal(curPrefix, k[:prefixLen]) {
			if !flush() {
				stopped = true
				return false
			}
			curPrefix = append(curPrefix[:0], k[:prefixLen]...)
			haveWinner = false
		}
		if seg == 0 {
			if haveWinner || ver > seqLimit {
				return true // older than the winner, or not yet visible
			}
			haveWinner = true
			winnerVer = ver
			nsegs, hk := binary.Uvarint(v)
			if hk <= 0 {
				scanErr = errCorruptBlock
				return false
			}
			if nsegs == 0 {
				return true // tombstone: deleted at this snapshot
			}
			blk, stats, err := DecodeBlock(v[hk:], width)
			if err != nil {
				scanErr = err
				return false
			}
			curKey, curBlk, curStats = key, blk, stats
			return true
		}
		if !haveWinner || ver != winnerVer || curBlk == nil {
			return true // segment of a non-winning version
		}
		blk, stats, err := DecodeBlock(v, width)
		if err != nil {
			scanErr = err
			return false
		}
		curBlk.Tuples = append(curBlk.Tuples, blk.Tuples...)
		if curBlk.Counts != nil && blk.Counts != nil {
			curBlk.Counts = append(curBlk.Counts, blk.Counts...)
		}
		if curStats != nil {
			curStats.Merge(stats)
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	if !stopped {
		flush()
	}
	return nil
}

// ScanStats visits only the statistics of every block of the instance,
// reading headers without decoding tuples. Blocks without stats yield nil.
func (st *Store) ScanStats(name string, fn func(key relation.Tuple, stats *BlockStats) bool) error {
	return st.ScanStatsT(nil, name, fn)
}

// ScanStatsT is ScanStats with a per-statement kv trace sink. Like the
// block scans it resolves each block's winning version at this view's
// snapshot sequence and emits stats only for that version's segments.
func (st *Store) ScanStatsT(kvt *obs.KV, name string, fn func(key relation.Tuple, stats *BlockStats) bool) error {
	kvSchema := st.Schema.ByName(name)
	if kvSchema == nil {
		return fmt.Errorf("baav: unknown KV schema %q", name)
	}
	id := st.ids[name]
	keyWidth := len(kvSchema.Key)
	seqLimit := st.snapSeqFor(kvSchema.Rel)

	var curPrefix []byte
	var winnerVer uint64
	haveWinner := false
	var scanErr error
	st.Cluster.ScanT(kvt, st.instancePrefix(id), func(k, v []byte) bool {
		key, n, err := relation.DecodeTuple(k[4:], keyWidth)
		if err != nil {
			scanErr = err
			return false
		}
		if len(k) < 4+n+12 {
			scanErr = errCorruptBlock
			return false
		}
		prefixLen := 4 + n
		seg := binary.BigEndian.Uint32(k[prefixLen:])
		ver := ^binary.BigEndian.Uint64(k[prefixLen+4:])
		if !bytes.Equal(curPrefix, k[:prefixLen]) {
			curPrefix = append(curPrefix[:0], k[:prefixLen]...)
			haveWinner = false
		}
		payload := v
		if seg == 0 {
			if haveWinner || ver > seqLimit {
				return true
			}
			haveWinner = true
			winnerVer = ver
			nsegs, hk := binary.Uvarint(v)
			if hk <= 0 {
				scanErr = errCorruptBlock
				return false
			}
			if nsegs == 0 {
				return true // tombstone
			}
			payload = v[hk:]
		} else if !haveWinner || ver != winnerVer {
			return true
		}
		stats, err := DecodeBlockStats(payload)
		if err != nil {
			scanErr = err
			return false
		}
		return fn(key, stats)
	})
	return scanErr
}

// Insert incrementally maintains the store for one inserted tuple of the
// named relation: a read-modify-write of the affected block in every KV
// schema projecting that relation — O(deg(~D)) per tuple, independent of
// |D| (Section 8.2).
func (st *Store) Insert(rel string, t relation.Tuple) error {
	return st.maintain(nil, rel, t, true)
}

// InsertT is Insert with a per-statement kv trace sink.
func (st *Store) InsertT(kvt *obs.KV, rel string, t relation.Tuple) error {
	return st.maintain(kvt, rel, t, true)
}

// Delete incrementally maintains the store for one deleted tuple.
func (st *Store) Delete(rel string, t relation.Tuple) error {
	return st.maintain(nil, rel, t, false)
}

// DeleteT is Delete with a per-statement kv trace sink.
func (st *Store) DeleteT(kvt *obs.KV, rel string, t relation.Tuple) error {
	return st.maintain(kvt, rel, t, false)
}

// maintain applies one tuple's insert or delete as a single-op commit:
// stage (every fallible step — reads, decoding — happens here, leaving
// the store untouched on error), write the new block versions in one
// batch, install the sequence, reclaim what the watermark allows. The
// all-or-nothing shape PR 5's two-phase path provided is now structural:
// nothing is visible until Install.
func (st *Store) maintain(kvt *obs.KV, rel string, t relation.Tuple, insert bool) error {
	c, err := st.BeginCommit(rel)
	if err != nil {
		return err
	}
	defer c.Close()
	if insert {
		err = c.StageInsert(kvt, t)
	} else {
		_, err = c.StageDelete(kvt, t)
	}
	if err != nil {
		return err
	}
	st.Cluster.ApplyBatch(kvt, c.Ops())
	c.Install()
	c.Reclaim(kvt)
	return nil
}

// InstanceBlocks returns the number of keyed blocks in the named KV
// instance — the planner's cost statistic for scan-vs-probe decisions.
func (st *Store) InstanceBlocks(name string) int {
	st.statsMu.RLock()
	defer st.statsMu.RUnlock()
	return st.blocks[name]
}

// InstanceBytes returns the physical payload size of one KV instance
// (keys + encoded block segments), by scanning its prefix.
func (st *Store) InstanceBytes(name string) (int64, error) {
	id, ok := st.ids[name]
	if !ok {
		return 0, fmt.Errorf("baav: unknown KV schema %q", name)
	}
	var total int64
	st.Cluster.Scan(st.instancePrefix(id), func(k, v []byte) bool {
		total += int64(len(k) + len(v))
		return true
	})
	return total, nil
}

// RelationRows returns the tuple count of a base relation as loaded and
// maintained — the planner's cardinality statistic.
func (st *Store) RelationRows(rel string) int {
	st.statsMu.RLock()
	defer st.statsMu.RUnlock()
	return st.relRows[rel]
}

// HasBlockStats reports whether blocks carry statistics headers, enabling
// the planner's aggregate pushdown (Section 8.2's statistics feature).
func (st *Store) HasBlockStats() bool { return st.Opts.Stats }

// Degree returns the largest distinct block size observed for the named KV
// instance (deg(~D) of Section 4.1), and the store-wide maximum when name
// is empty.
func (st *Store) Degree(name string) int {
	st.statsMu.RLock()
	defer st.statsMu.RUnlock()
	if name != "" {
		return st.degrees[name]
	}
	max := 0
	for _, d := range st.degrees {
		if d > max {
			max = d
		}
	}
	return max
}

// ComputeDegree scans the instance and returns the exact maximum block size.
func (st *Store) ComputeDegree(name string) (int, error) {
	max := 0
	err := st.ScanInstance(name, func(_ relation.Tuple, blk *Block, _ *BlockStats) bool {
		if d := blk.Distinct(); d > max {
			max = d
		}
		return true
	})
	if err == nil {
		st.statsMu.Lock()
		st.degrees[name] = max
		st.statsMu.Unlock()
	}
	return max, err
}

// Relational reconstructs the relational version of one KV instance: the
// flattening of Section 4.1. Attribute order is key attributes then value
// attributes.
func (st *Store) Relational(name string) (*relation.Relation, error) {
	kvSchema := st.Schema.ByName(name)
	if kvSchema == nil {
		return nil, fmt.Errorf("baav: unknown KV schema %q", name)
	}
	relSchema := st.Rels[kvSchema.Rel]
	attrs := make([]relation.Attr, 0, len(kvSchema.Key)+len(kvSchema.Val))
	for _, a := range kvSchema.Attrs() {
		attrs = append(attrs, relation.Attr{Name: a, Kind: relSchema.Attrs[relSchema.Index(a)].Kind})
	}
	out := relation.NewRelation(relation.MustSchema(name, attrs, nil))
	err := st.ScanInstance(name, func(key relation.Tuple, blk *Block, _ *BlockStats) bool {
		for _, v := range blk.Expand() {
			out.MustInsert(key.Concat(v))
		}
		return true
	})
	return out, err
}

package baav

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"zidian/internal/kv"
	"zidian/internal/obs"
	"zidian/internal/relation"
)

// Options configure a BaaV store.
type Options struct {
	// SegmentThreshold is the maximum number of stored tuples per physical
	// block segment (Section 8.2's size threshold, expressed in tuples).
	SegmentThreshold int
	// Compress stores distinct value tuples with multiplicity counters.
	Compress bool
	// Stats attaches min/max/sum statistics to every block.
	Stats bool
}

// DefaultOptions mirror the paper's implementation defaults.
func DefaultOptions() Options {
	return Options{SegmentThreshold: 4096, Compress: true, Stats: true}
}

// Store is a BaaV store ~D: the KV instances of a BaaV schema, physically
// held in a kv.Cluster. Keyed blocks are encoded as single KV values; blocks
// larger than the segment threshold split into segments that logically
// appear as one block.
type Store struct {
	Schema  *Schema
	Cluster *kv.Cluster
	Rels    map[string]*relation.Schema
	Opts    Options

	// Index, when set, serves secondary-index lookups for IndexLookup plan
	// leaves. Index pairs live in the same cluster under a disjoint key
	// space (internal/index).
	Index SecondaryIndex

	ids map[string]uint32 // KV schema name -> physical id

	// statsMu guards the bookkeeping maps below. The kv cluster already
	// synchronizes the stored pairs; this lock covers the store-level
	// statistics so maintenance on one relation can run concurrently with
	// planners and executors reading degrees, block counts, and row counts
	// for any relation (the maps are shared even when the keys are not).
	statsMu sync.RWMutex
	degrees map[string]int // KV schema name -> max distinct block size seen
	blocks  map[string]int // KV schema name -> number of keyed blocks
	relRows map[string]int // relation name -> tuple count
}

// NewStore creates an empty BaaV store for the schema on the cluster.
func NewStore(schema *Schema, rels map[string]*relation.Schema, cluster *kv.Cluster, opts Options) *Store {
	if opts.SegmentThreshold <= 0 {
		opts.SegmentThreshold = DefaultOptions().SegmentThreshold
	}
	st := &Store{
		Schema:  schema,
		Cluster: cluster,
		Rels:    rels,
		Opts:    opts,
		ids:     make(map[string]uint32),
		degrees: make(map[string]int),
		blocks:  make(map[string]int),
		relRows: make(map[string]int),
	}
	names := schema.Names()
	for i, n := range names {
		st.ids[n] = uint32(i + 1)
	}
	return st
}

// Map builds the BaaV store of db on the schema (the mapping of Section
// 4.1): for every KV schema, project the source relation onto X ∪ Y and
// group by X.
func Map(db *relation.Database, schema *Schema, cluster *kv.Cluster, opts Options) (*Store, error) {
	st := NewStore(schema, RelSchemas(db), cluster, opts)
	for _, kvSchema := range schema.KVs {
		rel := db.Relation(kvSchema.Rel)
		if rel == nil {
			return nil, fmt.Errorf("baav: relation %q missing from database", kvSchema.Rel)
		}
		st.relRows[kvSchema.Rel] = rel.Cardinality()
		keyPos, err := rel.Schema.Positions(kvSchema.Key)
		if err != nil {
			return nil, err
		}
		valPos, err := rel.Schema.Positions(kvSchema.Val)
		if err != nil {
			return nil, err
		}
		groups := make(map[string]*Block)
		var order []string
		keyOf := make(map[string]relation.Tuple)
		for _, t := range rel.Tuples {
			key := t.Project(keyPos)
			ks := relation.KeyString(key)
			b, ok := groups[ks]
			if !ok {
				b = &Block{}
				groups[ks] = b
				keyOf[ks] = key
				order = append(order, ks)
			}
			b.Add(t.Project(valPos), st.Opts.Compress)
		}
		sort.Strings(order) // deterministic layout
		for _, ks := range order {
			if err := st.putBlock(nil, kvSchema, keyOf[ks], groups[ks], false); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

// blockPrefix is the physical key prefix of one logical block: schema id
// followed by the encoded key tuple.
func (st *Store) blockPrefix(id uint32, key relation.Tuple) []byte {
	out := make([]byte, 4, 4+16*len(key))
	binary.BigEndian.PutUint32(out, id)
	return relation.AppendTuple(out, key)
}

func segKey(prefix []byte, seg uint32) []byte {
	out := make([]byte, len(prefix), len(prefix)+4)
	copy(out, prefix)
	return binary.BigEndian.AppendUint32(out, seg)
}

// instancePrefix is the physical key prefix of a whole KV instance.
func (st *Store) instancePrefix(id uint32) []byte {
	out := make([]byte, 4)
	binary.BigEndian.PutUint32(out, id)
	return out
}

// GetBlock retrieves the keyed block under key in the named KV instance,
// reassembling segments. It returns nil when no block exists. gets reports
// the number of get invocations issued.
func (st *Store) GetBlock(name string, key relation.Tuple) (blk *Block, stats *BlockStats, gets int, err error) {
	return st.GetBlockT(nil, name, key)
}

// GetBlockT is GetBlock with a per-statement kv trace sink (nil untraced).
func (st *Store) GetBlockT(kvt *obs.KV, name string, key relation.Tuple) (blk *Block, stats *BlockStats, gets int, err error) {
	kvSchema := st.Schema.ByName(name)
	if kvSchema == nil {
		return nil, nil, 0, fmt.Errorf("baav: unknown KV schema %q", name)
	}
	id := st.ids[name]
	prefix := st.blockPrefix(id, key)
	width := len(kvSchema.Val)

	data, ok := st.Cluster.GetRoutedT(kvt, prefix, segKey(prefix, 0))
	gets = 1
	if !ok {
		return nil, nil, gets, nil
	}
	nsegs, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, nil, gets, errCorruptBlock
	}
	blk, stats, err = DecodeBlock(data[k:], width)
	if err != nil {
		return nil, nil, gets, err
	}
	for seg := uint32(1); seg < uint32(nsegs); seg++ {
		data, ok := st.Cluster.GetRoutedT(kvt, prefix, segKey(prefix, seg))
		gets++
		if !ok {
			return nil, nil, gets, fmt.Errorf("baav: missing segment %d of block in %s", seg, name)
		}
		more, moreStats, err := DecodeBlock(data, width)
		if err != nil {
			return nil, nil, gets, err
		}
		blk.Tuples = append(blk.Tuples, more.Tuples...)
		switch {
		case blk.Counts != nil && more.Counts != nil:
			blk.Counts = append(blk.Counts, more.Counts...)
		case blk.Counts != nil:
			for range more.Tuples {
				blk.Counts = append(blk.Counts, 1)
			}
		case more.Counts != nil:
			blk.Counts = make([]int64, len(blk.Tuples)-len(more.Tuples))
			for i := range blk.Counts {
				blk.Counts[i] = 1
			}
			blk.Counts = append(blk.Counts, more.Counts...)
		}
		if stats != nil {
			stats.Merge(moreStats)
		}
	}
	return blk, stats, gets, nil
}

// putBlock writes a block under key, splitting into segments. When checkOld
// is set it first reads the previous segment count and deletes leftovers.
// kvt is the per-statement trace sink (nil untraced).
func (st *Store) putBlock(kvt *obs.KV, kvSchema KVSchema, key relation.Tuple, blk *Block, checkOld bool) error {
	id := st.ids[kvSchema.Name]
	prefix := st.blockPrefix(id, key)
	width := len(kvSchema.Val)

	oldSegs := uint64(0)
	if checkOld {
		if data, ok := st.Cluster.GetRoutedT(kvt, prefix, segKey(prefix, 0)); ok {
			n, k := binary.Uvarint(data)
			if k <= 0 {
				return errCorruptBlock
			}
			oldSegs = n
		}
	}
	if len(blk.Tuples) == 0 {
		for seg := uint32(0); seg < uint32(oldSegs); seg++ {
			st.Cluster.DeleteRoutedT(kvt, prefix, segKey(prefix, seg))
		}
		if oldSegs > 0 {
			st.statsMu.Lock()
			st.blocks[kvSchema.Name]--
			st.statsMu.Unlock()
		}
		return nil
	}
	if !checkOld || oldSegs == 0 {
		st.statsMu.Lock()
		st.blocks[kvSchema.Name]++
		st.statsMu.Unlock()
	}

	// Split into segments of at most SegmentThreshold stored tuples.
	thr := st.Opts.SegmentThreshold
	nsegs := (len(blk.Tuples) + thr - 1) / thr
	for seg := 0; seg < nsegs; seg++ {
		lo, hi := seg*thr, (seg+1)*thr
		if hi > len(blk.Tuples) {
			hi = len(blk.Tuples)
		}
		part := &Block{Tuples: blk.Tuples[lo:hi]}
		if blk.Counts != nil {
			part.Counts = blk.Counts[lo:hi]
		}
		var stats *BlockStats
		if st.Opts.Stats {
			stats = part.ComputeStats(width)
		}
		payload := EncodeBlock(part, stats, width)
		if seg == 0 {
			head := binary.AppendUvarint(nil, uint64(nsegs))
			payload = append(head, payload...)
		}
		st.Cluster.PutRoutedT(kvt, prefix, segKey(prefix, uint32(seg)), payload)
	}
	for seg := nsegs; seg < int(oldSegs); seg++ {
		st.Cluster.DeleteRoutedT(kvt, prefix, segKey(prefix, uint32(seg)))
	}
	st.statsMu.Lock()
	if d := blk.Distinct(); d > st.degrees[kvSchema.Name] {
		st.degrees[kvSchema.Name] = d
	}
	st.statsMu.Unlock()
	return nil
}

// PutBlock stores a block under key in the named KV instance, replacing any
// existing block.
func (st *Store) PutBlock(name string, key relation.Tuple, blk *Block) error {
	kvSchema := st.Schema.ByName(name)
	if kvSchema == nil {
		return fmt.Errorf("baav: unknown KV schema %q", name)
	}
	return st.putBlock(nil, *kvSchema, key, blk, true)
}

// ScanInstance visits every keyed block of the named KV instance in key
// order until fn returns false. Segment reassembly is transparent.
func (st *Store) ScanInstance(name string, fn func(key relation.Tuple, blk *Block, stats *BlockStats) bool) error {
	return st.ScanInstanceT(nil, name, fn)
}

// ScanInstanceT is ScanInstance with a per-statement kv trace sink.
func (st *Store) ScanInstanceT(kvt *obs.KV, name string, fn func(key relation.Tuple, blk *Block, stats *BlockStats) bool) error {
	return st.scanInstanceWith(name, fn, func(prefix []byte, visit func(k, v []byte) bool) {
		st.Cluster.ScanT(kvt, prefix, visit)
	})
}

// ScanInstanceNode visits the keyed blocks of the instance held by one
// storage node. Blocks are colocated by key (segments route on the block
// prefix), so per-node scans see whole blocks; parallel scan drivers split
// work across nodes with it.
func (st *Store) ScanInstanceNode(node int, name string, fn func(key relation.Tuple, blk *Block, stats *BlockStats) bool) error {
	return st.ScanInstanceNodeT(nil, node, name, fn)
}

// ScanInstanceNodeT is ScanInstanceNode with a per-statement kv trace sink.
func (st *Store) ScanInstanceNodeT(kvt *obs.KV, node int, name string, fn func(key relation.Tuple, blk *Block, stats *BlockStats) bool) error {
	return st.scanInstanceWith(name, fn, func(prefix []byte, visit func(k, v []byte) bool) {
		st.Cluster.ScanNodeT(kvt, node, prefix, visit)
	})
}

func (st *Store) scanInstanceWith(name string, fn func(key relation.Tuple, blk *Block, stats *BlockStats) bool,
	driver func(prefix []byte, visit func(k, v []byte) bool)) error {
	kvSchema := st.Schema.ByName(name)
	if kvSchema == nil {
		return fmt.Errorf("baav: unknown KV schema %q", name)
	}
	id := st.ids[name]
	width := len(kvSchema.Val)
	keyWidth := len(kvSchema.Key)

	var curKey relation.Tuple
	var curBlk *Block
	var curStats *BlockStats
	var scanErr error
	stopped := false

	flush := func() bool {
		if curBlk == nil {
			return true
		}
		ok := fn(curKey, curBlk, curStats)
		curBlk, curStats, curKey = nil, nil, nil
		return ok
	}

	driver(st.instancePrefix(id), func(k, v []byte) bool {
		key, n, err := relation.DecodeTuple(k[4:], keyWidth)
		if err != nil {
			scanErr = err
			return false
		}
		seg := binary.BigEndian.Uint32(k[4+n:])
		payload := v
		if seg == 0 {
			if !flush() {
				stopped = true
				return false
			}
			_, hk := binary.Uvarint(v)
			if hk <= 0 {
				scanErr = errCorruptBlock
				return false
			}
			payload = v[hk:]
			curKey = key
		}
		blk, stats, err := DecodeBlock(payload, width)
		if err != nil {
			scanErr = err
			return false
		}
		if seg == 0 {
			curBlk, curStats = blk, stats
		} else if curBlk != nil {
			curBlk.Tuples = append(curBlk.Tuples, blk.Tuples...)
			if curBlk.Counts != nil && blk.Counts != nil {
				curBlk.Counts = append(curBlk.Counts, blk.Counts...)
			}
			if curStats != nil {
				curStats.Merge(stats)
			}
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	if !stopped {
		flush()
	}
	return nil
}

// ScanStats visits only the statistics of every block of the instance,
// reading headers without decoding tuples. Blocks without stats yield nil.
func (st *Store) ScanStats(name string, fn func(key relation.Tuple, stats *BlockStats) bool) error {
	return st.ScanStatsT(nil, name, fn)
}

// ScanStatsT is ScanStats with a per-statement kv trace sink.
func (st *Store) ScanStatsT(kvt *obs.KV, name string, fn func(key relation.Tuple, stats *BlockStats) bool) error {
	kvSchema := st.Schema.ByName(name)
	if kvSchema == nil {
		return fmt.Errorf("baav: unknown KV schema %q", name)
	}
	id := st.ids[name]
	keyWidth := len(kvSchema.Key)
	var scanErr error
	st.Cluster.ScanT(kvt, st.instancePrefix(id), func(k, v []byte) bool {
		key, n, err := relation.DecodeTuple(k[4:], keyWidth)
		if err != nil {
			scanErr = err
			return false
		}
		seg := binary.BigEndian.Uint32(k[4+n:])
		payload := v
		if seg == 0 {
			_, hk := binary.Uvarint(v)
			if hk <= 0 {
				scanErr = errCorruptBlock
				return false
			}
			payload = v[hk:]
		}
		stats, err := DecodeBlockStats(payload)
		if err != nil {
			scanErr = err
			return false
		}
		return fn(key, stats)
	})
	return scanErr
}

// Insert incrementally maintains the store for one inserted tuple of the
// named relation: a read-modify-write of the affected block in every KV
// schema projecting that relation — O(deg(~D)) per tuple, independent of
// |D| (Section 8.2).
func (st *Store) Insert(rel string, t relation.Tuple) error {
	return st.maintain(nil, rel, t, true)
}

// InsertT is Insert with a per-statement kv trace sink.
func (st *Store) InsertT(kvt *obs.KV, rel string, t relation.Tuple) error {
	return st.maintain(kvt, rel, t, true)
}

// Delete incrementally maintains the store for one deleted tuple.
func (st *Store) Delete(rel string, t relation.Tuple) error {
	return st.maintain(nil, rel, t, false)
}

// DeleteT is Delete with a per-statement kv trace sink.
func (st *Store) DeleteT(kvt *obs.KV, rel string, t relation.Tuple) error {
	return st.maintain(kvt, rel, t, false)
}

// maintain applies one tuple's insert or delete to every KV schema
// projecting the relation, in two phases: a validate-and-read phase that
// performs every fallible step (schema resolution, block reads, decoding)
// and stages the edited blocks in memory, then an apply phase that writes
// them out. An error in phase one leaves the store untouched; phase two is
// pure cluster puts/deletes over blocks that were just read successfully,
// so short of concurrent external corruption every staged edit lands — the
// write path's callers rely on this all-or-nothing shape to keep the
// relation, the blocks, and the index postings consistent.
func (st *Store) maintain(kvt *obs.KV, rel string, t relation.Tuple, insert bool) error {
	schema, ok := st.Rels[rel]
	if !ok {
		return fmt.Errorf("baav: unknown relation %q", rel)
	}
	if len(t) != len(schema.Attrs) {
		return fmt.Errorf("baav: tuple arity %d != %s arity %d", len(t), rel, len(schema.Attrs))
	}
	type edit struct {
		kvSchema KVSchema
		key      relation.Tuple
		blk      *Block
	}
	var edits []edit
	for _, kvSchema := range st.Schema.ForRelation(rel) {
		keyPos, err := schema.Positions(kvSchema.Key)
		if err != nil {
			return err
		}
		valPos, err := schema.Positions(kvSchema.Val)
		if err != nil {
			return err
		}
		key := t.Project(keyPos)
		val := t.Project(valPos)
		blk, _, _, err := st.GetBlockT(kvt, kvSchema.Name, key)
		if err != nil {
			return err
		}
		if blk == nil {
			if !insert {
				continue
			}
			blk = &Block{}
		}
		if insert {
			blk.Add(val, st.Opts.Compress)
		} else if !blk.Remove(val) {
			continue
		}
		edits = append(edits, edit{kvSchema: kvSchema, key: key, blk: blk})
	}
	if len(edits) == 0 {
		return nil
	}
	for _, e := range edits {
		if err := st.putBlock(kvt, e.kvSchema, e.key, e.blk, true); err != nil {
			return err
		}
	}
	st.statsMu.Lock()
	if insert {
		st.relRows[rel]++
	} else if st.relRows[rel] > 0 {
		st.relRows[rel]--
	}
	st.statsMu.Unlock()
	return nil
}

// InstanceBlocks returns the number of keyed blocks in the named KV
// instance — the planner's cost statistic for scan-vs-probe decisions.
func (st *Store) InstanceBlocks(name string) int {
	st.statsMu.RLock()
	defer st.statsMu.RUnlock()
	return st.blocks[name]
}

// InstanceBytes returns the physical payload size of one KV instance
// (keys + encoded block segments), by scanning its prefix.
func (st *Store) InstanceBytes(name string) (int64, error) {
	id, ok := st.ids[name]
	if !ok {
		return 0, fmt.Errorf("baav: unknown KV schema %q", name)
	}
	var total int64
	st.Cluster.Scan(st.instancePrefix(id), func(k, v []byte) bool {
		total += int64(len(k) + len(v))
		return true
	})
	return total, nil
}

// RelationRows returns the tuple count of a base relation as loaded and
// maintained — the planner's cardinality statistic.
func (st *Store) RelationRows(rel string) int {
	st.statsMu.RLock()
	defer st.statsMu.RUnlock()
	return st.relRows[rel]
}

// HasBlockStats reports whether blocks carry statistics headers, enabling
// the planner's aggregate pushdown (Section 8.2's statistics feature).
func (st *Store) HasBlockStats() bool { return st.Opts.Stats }

// Degree returns the largest distinct block size observed for the named KV
// instance (deg(~D) of Section 4.1), and the store-wide maximum when name
// is empty.
func (st *Store) Degree(name string) int {
	st.statsMu.RLock()
	defer st.statsMu.RUnlock()
	if name != "" {
		return st.degrees[name]
	}
	max := 0
	for _, d := range st.degrees {
		if d > max {
			max = d
		}
	}
	return max
}

// ComputeDegree scans the instance and returns the exact maximum block size.
func (st *Store) ComputeDegree(name string) (int, error) {
	max := 0
	err := st.ScanInstance(name, func(_ relation.Tuple, blk *Block, _ *BlockStats) bool {
		if d := blk.Distinct(); d > max {
			max = d
		}
		return true
	})
	if err == nil {
		st.statsMu.Lock()
		st.degrees[name] = max
		st.statsMu.Unlock()
	}
	return max, err
}

// Relational reconstructs the relational version of one KV instance: the
// flattening of Section 4.1. Attribute order is key attributes then value
// attributes.
func (st *Store) Relational(name string) (*relation.Relation, error) {
	kvSchema := st.Schema.ByName(name)
	if kvSchema == nil {
		return nil, fmt.Errorf("baav: unknown KV schema %q", name)
	}
	relSchema := st.Rels[kvSchema.Rel]
	attrs := make([]relation.Attr, 0, len(kvSchema.Key)+len(kvSchema.Val))
	for _, a := range kvSchema.Attrs() {
		attrs = append(attrs, relation.Attr{Name: a, Kind: relSchema.Attrs[relSchema.Index(a)].Kind})
	}
	out := relation.NewRelation(relation.MustSchema(name, attrs, nil))
	err := st.ScanInstance(name, func(key relation.Tuple, blk *Block, _ *BlockStats) bool {
		for _, v := range blk.Expand() {
			out.MustInsert(key.Concat(v))
		}
		return true
	})
	return out, err
}

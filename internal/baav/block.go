package baav

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"zidian/internal/relation"
)

// Block is the B of a keyed block (k, B): a collection of tuples over the
// value attributes of a KV schema. When compression is on (Section 8.2),
// Tuples holds distinct tuples and Counts their multiplicities; otherwise
// Counts is nil and every tuple has multiplicity one.
type Block struct {
	Tuples []relation.Tuple
	Counts []int64 // nil when uncompressed
}

// Rows returns the logical number of tuples including multiplicities.
func (b *Block) Rows() int64 {
	if b.Counts == nil {
		return int64(len(b.Tuples))
	}
	var n int64
	for _, c := range b.Counts {
		n += c
	}
	return n
}

// Distinct returns the number of stored (distinct) tuples, the |B| that
// defines the degree of a KV instance.
func (b *Block) Distinct() int { return len(b.Tuples) }

// Expand materializes the block as a flat tuple list with multiplicities
// applied.
func (b *Block) Expand() []relation.Tuple {
	if b.Counts == nil {
		return b.Tuples
	}
	out := make([]relation.Tuple, 0, b.Rows())
	for i, t := range b.Tuples {
		for c := int64(0); c < b.Counts[i]; c++ {
			out = append(out, t)
		}
	}
	return out
}

// Add inserts one occurrence of t into the block, deduplicating when
// compress is set. It reports whether a new distinct tuple was added.
func (b *Block) Add(t relation.Tuple, compress bool) bool {
	if compress {
		for i, u := range b.Tuples {
			if u.Equal(t) {
				if b.Counts == nil {
					b.Counts = make([]int64, len(b.Tuples))
					for j := range b.Counts {
						b.Counts[j] = 1
					}
				}
				b.Counts[i]++
				return false
			}
		}
	}
	b.Tuples = append(b.Tuples, t)
	if b.Counts != nil {
		b.Counts = append(b.Counts, 1)
	}
	return true
}

// Remove deletes one occurrence of t, reporting whether anything changed.
func (b *Block) Remove(t relation.Tuple) bool {
	for i, u := range b.Tuples {
		if !u.Equal(t) {
			continue
		}
		if b.Counts != nil && b.Counts[i] > 1 {
			b.Counts[i]--
			return true
		}
		b.Tuples = append(b.Tuples[:i], b.Tuples[i+1:]...)
		if b.Counts != nil {
			b.Counts = append(b.Counts[:i], b.Counts[i+1:]...)
		}
		return true
	}
	return false
}

// AttrStats summarizes one numeric value attribute of a block.
type AttrStats struct {
	Valid bool // false for non-numeric attributes
	Min   float64
	Max   float64
	Sum   float64
}

// BlockStats is the per-block group-by statistics of Section 8.2: row count
// and min/max/sum per numeric attribute (avg = Sum/Rows).
type BlockStats struct {
	Rows  int64
	Attrs []AttrStats
}

// ComputeStats derives statistics for a block of the given width.
func (b *Block) ComputeStats(width int) *BlockStats {
	st := &BlockStats{Rows: b.Rows(), Attrs: make([]AttrStats, width)}
	for i := range st.Attrs {
		st.Attrs[i].Valid = true
	}
	for ti, t := range b.Tuples {
		mult := int64(1)
		if b.Counts != nil {
			mult = b.Counts[ti]
		}
		for i := 0; i < width; i++ {
			a := &st.Attrs[i]
			if !a.Valid {
				continue
			}
			v := t[i]
			if v.Kind != relation.KindInt && v.Kind != relation.KindFloat {
				a.Valid = false
				continue
			}
			f := v.AsFloat()
			if ti == 0 || f < a.Min {
				a.Min = f
			}
			if ti == 0 || f > a.Max {
				a.Max = f
			}
			a.Sum += f * float64(mult)
		}
	}
	if len(b.Tuples) == 0 {
		for i := range st.Attrs {
			st.Attrs[i].Valid = false
		}
	}
	return st
}

// Block encoding layout (all integers little-endian or uvarint):
//
//	flags byte           bit0 = has multiplicity counts, bit1 = has stats
//	uvarint distinct     number of stored tuples
//	[stats]              if bit1: uvarint width, then per attribute:
//	                     1 byte valid flag; if valid, min/max/sum float64
//	per tuple            [uvarint count if bit0] + width encoded values
const (
	flagCounts byte = 1 << 0
	flagStats  byte = 1 << 1
)

var errCorruptBlock = errors.New("baav: corrupt block encoding")

// EncodeBlock serializes a block (and optional stats) into one KV value.
func EncodeBlock(b *Block, stats *BlockStats, width int) []byte {
	var flags byte
	if b.Counts != nil {
		flags |= flagCounts
	}
	if stats != nil {
		flags |= flagStats
	}
	out := []byte{flags}
	out = binary.AppendUvarint(out, uint64(len(b.Tuples)))
	if stats != nil {
		out = binary.AppendUvarint(out, uint64(stats.Rows))
		out = binary.AppendUvarint(out, uint64(len(stats.Attrs)))
		var buf [8]byte
		for _, a := range stats.Attrs {
			if !a.Valid {
				out = append(out, 0)
				continue
			}
			out = append(out, 1)
			for _, f := range []float64{a.Min, a.Max, a.Sum} {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
				out = append(out, buf[:]...)
			}
		}
	}
	for i, t := range b.Tuples {
		if len(t) != width {
			panic(fmt.Sprintf("baav: tuple width %d != block width %d", len(t), width))
		}
		if b.Counts != nil {
			out = binary.AppendUvarint(out, uint64(b.Counts[i]))
		}
		out = relation.AppendTuple(out, t)
	}
	return out
}

// DecodeBlock deserializes a block of the given width. Stats are returned
// when present.
func DecodeBlock(data []byte, width int) (*Block, *BlockStats, error) {
	if len(data) == 0 {
		return nil, nil, errCorruptBlock
	}
	flags := data[0]
	off := 1
	n, k := binary.Uvarint(data[off:])
	if k <= 0 {
		return nil, nil, errCorruptBlock
	}
	off += k
	var stats *BlockStats
	if flags&flagStats != 0 {
		var err error
		stats, off, err = decodeStats(data, off)
		if err != nil {
			return nil, nil, err
		}
	}
	b := &Block{Tuples: make([]relation.Tuple, 0, n)}
	if flags&flagCounts != 0 {
		b.Counts = make([]int64, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		if flags&flagCounts != 0 {
			c, k := binary.Uvarint(data[off:])
			if k <= 0 {
				return nil, nil, errCorruptBlock
			}
			off += k
			b.Counts = append(b.Counts, int64(c))
		}
		t, k, err := relation.DecodeTuple(data[off:], width)
		if err != nil {
			return nil, nil, err
		}
		off += k
		b.Tuples = append(b.Tuples, t)
	}
	if stats != nil {
		stats.Rows = b.Rows()
	}
	return b, stats, nil
}

// DecodeBlockStats reads only the statistics header of an encoded block,
// without decoding the tuples; the fast path for statistics-backed
// aggregates. It returns nil when the block carries no stats.
func DecodeBlockStats(data []byte) (*BlockStats, error) {
	if len(data) == 0 {
		return nil, errCorruptBlock
	}
	flags := data[0]
	if flags&flagStats == 0 {
		return nil, nil
	}
	off := 1
	if _, k := binary.Uvarint(data[off:]); k <= 0 {
		return nil, errCorruptBlock
	} else {
		off += k // skip distinct count
	}
	stats, _, err := decodeStats(data, off)
	if err != nil {
		return nil, err
	}
	return stats, nil
}

func decodeStats(data []byte, off int) (*BlockStats, int, error) {
	rows, k := binary.Uvarint(data[off:])
	if k <= 0 {
		return nil, 0, errCorruptBlock
	}
	off += k
	w, k := binary.Uvarint(data[off:])
	if k <= 0 {
		return nil, 0, errCorruptBlock
	}
	off += k
	st := &BlockStats{Rows: int64(rows), Attrs: make([]AttrStats, w)}
	for i := uint64(0); i < w; i++ {
		if off >= len(data) {
			return nil, 0, errCorruptBlock
		}
		valid := data[off]
		off++
		if valid == 0 {
			continue
		}
		if off+24 > len(data) {
			return nil, 0, errCorruptBlock
		}
		a := &st.Attrs[i]
		a.Valid = true
		a.Min = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		a.Max = math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:]))
		a.Sum = math.Float64frombits(binary.LittleEndian.Uint64(data[off+16:]))
		off += 24
	}
	return st, off, nil
}

// Merge folds another stats block into s (attributewise).
func (s *BlockStats) Merge(o *BlockStats) {
	if o == nil {
		return
	}
	first := s.Rows == 0
	s.Rows += o.Rows
	if len(s.Attrs) < len(o.Attrs) {
		s.Attrs = append(s.Attrs, make([]AttrStats, len(o.Attrs)-len(s.Attrs))...)
	}
	for i := range o.Attrs {
		oa := o.Attrs[i]
		sa := &s.Attrs[i]
		if !oa.Valid {
			sa.Valid = false
			continue
		}
		if first || !sa.Valid {
			if first {
				*sa = oa
			}
			continue
		}
		if oa.Min < sa.Min {
			sa.Min = oa.Min
		}
		if oa.Max > sa.Max {
			sa.Max = oa.Max
		}
		sa.Sum += oa.Sum
	}
}

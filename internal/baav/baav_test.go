package baav

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"zidian/internal/kv"
	"zidian/internal/relation"
)

// paperDB builds the paper's Example 1 database.
func paperDB() *relation.Database {
	db := relation.NewDatabase()
	nation := relation.NewRelation(relation.MustSchema("NATION",
		[]relation.Attr{{Name: "nationkey", Kind: relation.KindInt}, {Name: "name", Kind: relation.KindString}},
		[]string{"nationkey"}))
	nation.MustInsert(relation.Tuple{relation.Int(1), relation.String("GERMANY")})
	nation.MustInsert(relation.Tuple{relation.Int(2), relation.String("FRANCE")})
	db.Add(nation)

	supplier := relation.NewRelation(relation.MustSchema("SUPPLIER",
		[]relation.Attr{{Name: "suppkey", Kind: relation.KindInt}, {Name: "nationkey", Kind: relation.KindInt}},
		[]string{"suppkey"}))
	supplier.MustInsert(relation.Tuple{relation.Int(10), relation.Int(1)})
	supplier.MustInsert(relation.Tuple{relation.Int(11), relation.Int(1)})
	supplier.MustInsert(relation.Tuple{relation.Int(12), relation.Int(2)})
	db.Add(supplier)
	return db
}

// paperSchema is Example 1's BaaV schema restricted to the two relations.
func paperSchema(db *relation.Database) *Schema {
	return MustSchema(RelSchemas(db),
		KVSchema{Name: "SUPPLIER_by_nation", Rel: "SUPPLIER", Key: []string{"nationkey"}, Val: []string{"suppkey"}},
		KVSchema{Name: "NATION_by_name", Rel: "NATION", Key: []string{"name"}, Val: []string{"nationkey"}},
	)
}

func TestSchemaValidation(t *testing.T) {
	db := paperDB()
	rels := RelSchemas(db)
	bad := []KVSchema{
		{Name: "", Rel: "NATION", Key: []string{"name"}, Val: []string{"nationkey"}},
		{Name: "x", Rel: "NOPE", Key: []string{"name"}, Val: []string{"nationkey"}},
		{Name: "x", Rel: "NATION", Key: nil, Val: []string{"nationkey"}},
		{Name: "x", Rel: "NATION", Key: []string{"name"}, Val: nil},
		{Name: "x", Rel: "NATION", Key: []string{"bogus"}, Val: []string{"nationkey"}},
		{Name: "x", Rel: "NATION", Key: []string{"name"}, Val: []string{"name"}},
	}
	for i, kvs := range bad {
		if _, err := NewSchema(rels, kvs); err == nil {
			t.Fatalf("case %d: expected error for %v", i, kvs)
		}
	}
	if _, err := NewSchema(rels,
		KVSchema{Name: "a", Rel: "NATION", Key: []string{"name"}, Val: []string{"nationkey"}},
		KVSchema{Name: "a", Rel: "NATION", Key: []string{"nationkey"}, Val: []string{"name"}},
	); err == nil {
		t.Fatal("duplicate names must be rejected")
	}
	s := paperSchema(db)
	if s.ByName("NATION_by_name") == nil || s.ByName("zzz") != nil {
		t.Fatal("ByName")
	}
	if got := s.ForRelation("SUPPLIER"); len(got) != 1 {
		t.Fatalf("ForRelation = %v", got)
	}
	if got := s.Names(); len(got) != 2 || got[0] != "NATION_by_name" {
		t.Fatalf("Names = %v", got)
	}
}

func TestBlockAddRemoveCompression(t *testing.T) {
	b := &Block{}
	b.Add(relation.Tuple{relation.Int(1)}, true)
	b.Add(relation.Tuple{relation.Int(1)}, true)
	b.Add(relation.Tuple{relation.Int(2)}, true)
	if b.Distinct() != 2 || b.Rows() != 3 {
		t.Fatalf("distinct=%d rows=%d", b.Distinct(), b.Rows())
	}
	if !b.Remove(relation.Tuple{relation.Int(1)}) || b.Rows() != 2 {
		t.Fatalf("remove: rows=%d", b.Rows())
	}
	if !b.Remove(relation.Tuple{relation.Int(1)}) || b.Distinct() != 1 {
		t.Fatalf("remove to zero: distinct=%d", b.Distinct())
	}
	if b.Remove(relation.Tuple{relation.Int(9)}) {
		t.Fatal("removing a missing tuple must fail")
	}
	exp := b.Expand()
	if len(exp) != 1 || exp[0][0].Int != 2 {
		t.Fatalf("expand = %v", exp)
	}
}

func TestBlockUncompressed(t *testing.T) {
	b := &Block{}
	b.Add(relation.Tuple{relation.Int(1)}, false)
	b.Add(relation.Tuple{relation.Int(1)}, false)
	if b.Distinct() != 2 || b.Rows() != 2 {
		t.Fatalf("uncompressed keeps duplicates: distinct=%d", b.Distinct())
	}
}

func TestBlockCodecRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		for _, withStats := range []bool{false, true} {
			b := &Block{}
			for i := 0; i < 10; i++ {
				b.Add(relation.Tuple{relation.Int(int64(i % 4)), relation.String(fmt.Sprint(i % 3))}, compress)
			}
			var stats *BlockStats
			if withStats {
				stats = b.ComputeStats(2)
			}
			enc := EncodeBlock(b, stats, 2)
			got, gotStats, err := DecodeBlock(enc, 2)
			if err != nil {
				t.Fatal(err)
			}
			if got.Rows() != b.Rows() || got.Distinct() != b.Distinct() {
				t.Fatalf("compress=%v: rows %d->%d distinct %d->%d",
					compress, b.Rows(), got.Rows(), b.Distinct(), got.Distinct())
			}
			if withStats {
				if gotStats == nil || gotStats.Rows != b.Rows() {
					t.Fatalf("stats = %+v", gotStats)
				}
				if !gotStats.Attrs[0].Valid || gotStats.Attrs[1].Valid {
					t.Fatalf("stats validity = %+v", gotStats.Attrs)
				}
				// Fast path agrees.
				fast, err := DecodeBlockStats(enc)
				if err != nil || fast == nil {
					t.Fatalf("fast stats: %v %v", fast, err)
				}
				if fast.Rows != gotStats.Rows || fast.Attrs[0].Sum != gotStats.Attrs[0].Sum {
					t.Fatalf("fast stats mismatch: %+v vs %+v", fast, gotStats)
				}
			} else if gotStats != nil {
				t.Fatal("unexpected stats")
			}
		}
	}
}

func TestComputeStatsValues(t *testing.T) {
	b := &Block{}
	b.Add(relation.Tuple{relation.Int(5), relation.Float(1.5)}, true)
	b.Add(relation.Tuple{relation.Int(5), relation.Float(1.5)}, true)
	b.Add(relation.Tuple{relation.Int(2), relation.Float(4.0)}, true)
	st := b.ComputeStats(2)
	if st.Rows != 3 {
		t.Fatalf("rows = %d", st.Rows)
	}
	a := st.Attrs[0]
	if a.Min != 2 || a.Max != 5 || a.Sum != 12 { // 5*2 + 2
		t.Fatalf("attr0 stats = %+v", a)
	}
	if st.Attrs[1].Sum != 1.5*2+4.0 {
		t.Fatalf("attr1 sum = %v", st.Attrs[1].Sum)
	}
}

func TestDecodeBlockCorrupt(t *testing.T) {
	if _, _, err := DecodeBlock(nil, 1); err == nil {
		t.Fatal("empty must fail")
	}
	if _, _, err := DecodeBlock([]byte{0, 5}, 1); err == nil {
		t.Fatal("truncated tuples must fail")
	}
	if _, err := DecodeBlockStats(nil); err == nil {
		t.Fatal("empty stats must fail")
	}
	if st, err := DecodeBlockStats([]byte{0, 0}); err != nil || st != nil {
		t.Fatal("no-stats block yields nil stats")
	}
}

func newTestStore(t *testing.T, opts Options) (*Store, *relation.Database) {
	t.Helper()
	db := paperDB()
	cluster := kv.NewCluster(kv.EngineHash, 3)
	st, err := Map(db, paperSchema(db), cluster, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st, db
}

func TestMapAndGetBlock(t *testing.T) {
	st, _ := newTestStore(t, DefaultOptions())
	blk, stats, gets, err := st.GetBlock("SUPPLIER_by_nation", relation.Tuple{relation.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if gets != 1 {
		t.Fatalf("gets = %d", gets)
	}
	if blk == nil || blk.Distinct() != 2 {
		t.Fatalf("block = %+v", blk)
	}
	if stats == nil || stats.Rows != 2 || stats.Attrs[0].Min != 10 || stats.Attrs[0].Max != 11 {
		t.Fatalf("stats = %+v", stats)
	}
	// Missing key.
	blk, _, gets, err = st.GetBlock("SUPPLIER_by_nation", relation.Tuple{relation.Int(99)})
	if err != nil || blk != nil || gets != 1 {
		t.Fatalf("missing block: %v %d %v", blk, gets, err)
	}
	// The paper's point lookup: one get fetches the whole GERMANY block.
	blk, _, _, err = st.GetBlock("NATION_by_name", relation.Tuple{relation.String("GERMANY")})
	if err != nil || blk == nil || blk.Rows() != 1 || blk.Tuples[0][0].Int != 1 {
		t.Fatalf("germany block = %+v err=%v", blk, err)
	}
	if _, _, _, err := st.GetBlock("zzz", nil); err == nil {
		t.Fatal("unknown schema must error")
	}
}

func TestScanInstance(t *testing.T) {
	st, _ := newTestStore(t, DefaultOptions())
	seen := map[string]int64{}
	err := st.ScanInstance("SUPPLIER_by_nation", func(key relation.Tuple, blk *Block, stats *BlockStats) bool {
		seen[key.String()] = blk.Rows()
		if stats == nil {
			t.Fatal("stats enabled but missing")
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen["(1)"] != 2 || seen["(2)"] != 1 {
		t.Fatalf("seen = %v", seen)
	}
	// Early stop.
	n := 0
	if err := st.ScanInstance("SUPPLIER_by_nation", func(relation.Tuple, *Block, *BlockStats) bool {
		n++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestScanStatsFastPath(t *testing.T) {
	st, _ := newTestStore(t, DefaultOptions())
	var total int64
	err := st.ScanStats("SUPPLIER_by_nation", func(_ relation.Tuple, stats *BlockStats) bool {
		if stats != nil {
			total += stats.Rows
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 {
		t.Fatalf("total rows from stats = %d", total)
	}
}

func TestSegmentation(t *testing.T) {
	db := paperDB()
	// Grow the supplier relation so one nation's block needs segments.
	sup := db.Relation("SUPPLIER")
	for i := 0; i < 100; i++ {
		sup.MustInsert(relation.Tuple{relation.Int(int64(1000 + i)), relation.Int(1)})
	}
	cluster := kv.NewCluster(kv.EngineHash, 3)
	opts := Options{SegmentThreshold: 16, Compress: true, Stats: true}
	st, err := Map(db, paperSchema(db), cluster, opts)
	if err != nil {
		t.Fatal(err)
	}
	blk, stats, gets, err := st.GetBlock("SUPPLIER_by_nation", relation.Tuple{relation.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if blk.Distinct() != 102 {
		t.Fatalf("distinct = %d", blk.Distinct())
	}
	wantSegs := (102 + 15) / 16
	if gets != wantSegs {
		t.Fatalf("gets = %d want %d (one per segment)", gets, wantSegs)
	}
	if stats == nil || stats.Rows != 102 {
		t.Fatalf("merged stats = %+v", stats)
	}
	// Scan reassembles segmented blocks too.
	total := 0
	if err := st.ScanInstance("SUPPLIER_by_nation", func(_ relation.Tuple, b *Block, _ *BlockStats) bool {
		total += b.Distinct()
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if total != 103 {
		t.Fatalf("scan total = %d", total)
	}
	if st.Degree("SUPPLIER_by_nation") != 102 {
		t.Fatalf("degree = %d", st.Degree("SUPPLIER_by_nation"))
	}
}

func TestIncrementalMaintenance(t *testing.T) {
	st, _ := newTestStore(t, DefaultOptions())
	// Insert a new supplier in nation 1 and a supplier in a new nation.
	if err := st.Insert("SUPPLIER", relation.Tuple{relation.Int(13), relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("SUPPLIER", relation.Tuple{relation.Int(14), relation.Int(3)}); err != nil {
		t.Fatal(err)
	}
	blk, _, _, _ := st.GetBlock("SUPPLIER_by_nation", relation.Tuple{relation.Int(1)})
	if blk.Distinct() != 3 {
		t.Fatalf("after insert: %d", blk.Distinct())
	}
	blk, _, _, _ = st.GetBlock("SUPPLIER_by_nation", relation.Tuple{relation.Int(3)})
	if blk == nil || blk.Distinct() != 1 {
		t.Fatalf("new block: %+v", blk)
	}
	// Delete one supplier; deleting the last tuple removes the block.
	if err := st.Delete("SUPPLIER", relation.Tuple{relation.Int(14), relation.Int(3)}); err != nil {
		t.Fatal(err)
	}
	blk, _, _, _ = st.GetBlock("SUPPLIER_by_nation", relation.Tuple{relation.Int(3)})
	if blk != nil {
		t.Fatalf("block should be gone: %+v", blk)
	}
	// Deleting a non-existent tuple is a no-op.
	if err := st.Delete("SUPPLIER", relation.Tuple{relation.Int(99), relation.Int(9)}); err != nil {
		t.Fatal(err)
	}
	// Errors.
	if err := st.Insert("NOPE", relation.Tuple{}); err == nil {
		t.Fatal("unknown relation")
	}
	if err := st.Insert("SUPPLIER", relation.Tuple{relation.Int(1)}); err == nil {
		t.Fatal("arity mismatch")
	}
}

func TestRelationalRoundTrip(t *testing.T) {
	st, db := newTestStore(t, DefaultOptions())
	rel, err := st.Relational("SUPPLIER_by_nation")
	if err != nil {
		t.Fatal(err)
	}
	// Same multiset of (nationkey, suppkey) pairs as the base relation.
	want := map[string]int{}
	for _, t2 := range db.Relation("SUPPLIER").Tuples {
		want[relation.KeyString(relation.Tuple{t2[1], t2[0]})]++
	}
	got := map[string]int{}
	for _, t2 := range rel.Tuples {
		got[relation.KeyString(t2)]++
	}
	if len(got) != len(want) {
		t.Fatalf("flattening: got %d keys want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("flattening multiset mismatch")
		}
	}
}

func TestComputeDegree(t *testing.T) {
	st, _ := newTestStore(t, DefaultOptions())
	d, err := st.ComputeDegree("SUPPLIER_by_nation")
	if err != nil || d != 2 {
		t.Fatalf("degree = %d err=%v", d, err)
	}
	if st.Degree("") != 2 {
		t.Fatalf("store degree = %d", st.Degree(""))
	}
}

// TestQuickMaintenanceMatchesRemap drives random inserts/deletes and checks
// that incremental maintenance produces the same store contents as remapping
// the database from scratch (the paper's O(|Δ|·deg) maintenance invariant).
func TestQuickMaintenanceMatchesRemap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := paperDB()
		cluster := kv.NewCluster(kv.EngineHash, 2)
		st, err := Map(db, paperSchema(db), cluster, DefaultOptions())
		if err != nil {
			return false
		}
		live := append([]relation.Tuple{}, db.Relation("SUPPLIER").Tuples...)
		for i := 0; i < 30; i++ {
			if r.Intn(2) == 0 || len(live) == 0 {
				tp := relation.Tuple{relation.Int(int64(r.Intn(20))), relation.Int(int64(r.Intn(4)))}
				live = append(live, tp)
				if err := st.Insert("SUPPLIER", tp); err != nil {
					return false
				}
			} else {
				j := r.Intn(len(live))
				tp := live[j]
				live = append(live[:j], live[j+1:]...)
				if err := st.Delete("SUPPLIER", tp); err != nil {
					return false
				}
			}
		}
		// Rebuild from scratch and compare flattened contents.
		db2 := paperDB()
		sup := relation.NewRelation(db2.Relation("SUPPLIER").Schema)
		for _, tp := range live {
			sup.MustInsert(tp)
		}
		db2.Add(sup)
		st2, err := Map(db2, paperSchema(db2), kv.NewCluster(kv.EngineHash, 2), DefaultOptions())
		if err != nil {
			return false
		}
		r1, err1 := st.Relational("SUPPLIER_by_nation")
		r2, err2 := st2.Relational("SUPPLIER_by_nation")
		if err1 != nil || err2 != nil {
			return false
		}
		c1 := map[string]int{}
		for _, tp := range r1.Tuples {
			c1[relation.KeyString(tp)]++
		}
		c2 := map[string]int{}
		for _, tp := range r2.Tuples {
			c2[relation.KeyString(tp)]++
		}
		if len(c1) != len(c2) {
			return false
		}
		for k, n := range c1 {
			if c2[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsMerge(t *testing.T) {
	a := &BlockStats{Rows: 2, Attrs: []AttrStats{{Valid: true, Min: 1, Max: 5, Sum: 6}}}
	b := &BlockStats{Rows: 3, Attrs: []AttrStats{{Valid: true, Min: 0, Max: 4, Sum: 7}}}
	a.Merge(b)
	if a.Rows != 5 || a.Attrs[0].Min != 0 || a.Attrs[0].Max != 5 || a.Attrs[0].Sum != 13 {
		t.Fatalf("merged = %+v", a)
	}
	// Invalid attribute poisons the merge.
	c := &BlockStats{Rows: 1, Attrs: []AttrStats{{Valid: false}}}
	a.Merge(c)
	if a.Attrs[0].Valid {
		t.Fatal("invalid attr must poison")
	}
	// Merge into a fresh accumulator adopts the first operand.
	fresh := &BlockStats{}
	fresh.Merge(b)
	if fresh.Rows != 3 || !fresh.Attrs[0].Valid || fresh.Attrs[0].Sum != 7 {
		t.Fatalf("fresh merge = %+v", fresh)
	}
	fresh.Merge(nil) // no-op
	if fresh.Rows != 3 {
		t.Fatal("nil merge must be a no-op")
	}
}

func TestInstanceStats(t *testing.T) {
	st, _ := newTestStore(t, DefaultOptions())
	if got := st.InstanceBlocks("SUPPLIER_by_nation"); got != 2 {
		t.Fatalf("blocks = %d", got)
	}
	if got := st.RelationRows("SUPPLIER"); got != 3 {
		t.Fatalf("rows = %d", got)
	}
	if !st.HasBlockStats() {
		t.Fatal("default options carry stats")
	}
	b, err := st.InstanceBytes("SUPPLIER_by_nation")
	if err != nil || b <= 0 {
		t.Fatalf("bytes = %d err=%v", b, err)
	}
	if _, err := st.InstanceBytes("nope"); err == nil {
		t.Fatal("unknown instance must error")
	}
	// Maintenance keeps the counters in sync.
	if err := st.Insert("SUPPLIER", relation.Tuple{relation.Int(40), relation.Int(9)}); err != nil {
		t.Fatal(err)
	}
	if st.InstanceBlocks("SUPPLIER_by_nation") != 3 || st.RelationRows("SUPPLIER") != 4 {
		t.Fatalf("after insert: blocks=%d rows=%d",
			st.InstanceBlocks("SUPPLIER_by_nation"), st.RelationRows("SUPPLIER"))
	}
	if err := st.Delete("SUPPLIER", relation.Tuple{relation.Int(40), relation.Int(9)}); err != nil {
		t.Fatal(err)
	}
	if st.InstanceBlocks("SUPPLIER_by_nation") != 2 || st.RelationRows("SUPPLIER") != 3 {
		t.Fatalf("after delete: blocks=%d rows=%d",
			st.InstanceBlocks("SUPPLIER_by_nation"), st.RelationRows("SUPPLIER"))
	}
}

package baav

import (
	"testing"

	"zidian/internal/obs"
	"zidian/internal/relation"
)

// commitOne runs one full commit on SUPPLIER applying stage, returning the
// watermark Reclaim observed.
func commitOne(t *testing.T, st *Store, stage func(c *Commit, kvt *obs.KV) error) uint64 {
	t.Helper()
	kvt := &obs.KV{}
	c, err := st.BeginCommit("SUPPLIER")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := stage(c, kvt); err != nil {
		t.Fatal(err)
	}
	st.Cluster.ApplyBatch(kvt, c.Ops())
	c.Install()
	return c.Reclaim(kvt)
}

func supplierBlock(t *testing.T, st *Store, nation int64) *Block {
	t.Helper()
	blk, _, _, err := st.GetBlock("SUPPLIER_by_nation", relation.Tuple{relation.Int(nation)})
	if err != nil {
		t.Fatal(err)
	}
	return blk
}

// TestMVCCSnapshotReadsPinnedVersion: a snapshot pinned before a commit
// keeps reading the pre-commit block while latest reads see the new one.
func TestMVCCSnapshotReadsPinnedVersion(t *testing.T) {
	st, _ := newTestStore(t, DefaultOptions())
	if st.CommitSeq("SUPPLIER") != 0 {
		t.Fatalf("fresh store seq = %d", st.CommitSeq("SUPPLIER"))
	}
	snap := st.PinSnapshot([]string{"SUPPLIER"})
	defer snap.Release()
	view := st.AtSnapshot(snap)

	commitOne(t, st, func(c *Commit, kvt *obs.KV) error {
		return c.StageInsert(kvt, relation.Tuple{relation.Int(13), relation.Int(1)})
	})
	if st.CommitSeq("SUPPLIER") != 1 {
		t.Fatalf("seq after commit = %d", st.CommitSeq("SUPPLIER"))
	}

	if blk := supplierBlock(t, st, 1); blk.Distinct() != 3 {
		t.Fatalf("latest read: distinct = %d, want 3", blk.Distinct())
	}
	if blk := supplierBlock(t, view, 1); blk.Distinct() != 2 {
		t.Fatalf("snapshot read: distinct = %d, want pre-commit 2", blk.Distinct())
	}
}

// TestMVCCCommitStamp: the stamp tracks in-flight commits and rolls back
// when a commit is abandoned, leaving the store untouched.
func TestMVCCCommitStamp(t *testing.T) {
	st, _ := newTestStore(t, DefaultOptions())
	kvt := &obs.KV{}
	c, err := st.BeginCommit("SUPPLIER")
	if err != nil {
		t.Fatal(err)
	}
	if st.CommitStamp("SUPPLIER") != 1 || st.CommitSeq("SUPPLIER") != 0 {
		t.Fatalf("in flight: stamp=%d seq=%d", st.CommitStamp("SUPPLIER"), st.CommitSeq("SUPPLIER"))
	}
	if err := c.StageInsert(kvt, relation.Tuple{relation.Int(13), relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
	c.Close() // abandoned: nothing installed
	if st.CommitStamp("SUPPLIER") != 0 || st.CommitSeq("SUPPLIER") != 0 {
		t.Fatalf("after abort: stamp=%d seq=%d", st.CommitStamp("SUPPLIER"), st.CommitSeq("SUPPLIER"))
	}
	if blk := supplierBlock(t, st, 1); blk.Distinct() != 2 {
		t.Fatalf("aborted commit leaked: distinct = %d", blk.Distinct())
	}
	if _, err := st.BeginCommit("NOPE"); err == nil {
		t.Fatal("unknown relation must error")
	}
}

// TestMVCCReclaimRespectsPins: a pinned snapshot blocks reclamation of the
// versions it can reach; releasing the pin lets the next commit's Reclaim
// free them.
func TestMVCCReclaimRespectsPins(t *testing.T) {
	st, _ := newTestStore(t, DefaultOptions())
	snap := st.PinSnapshot([]string{"SUPPLIER"})
	view := st.AtSnapshot(snap)
	live0 := st.VersionsLive()

	w := commitOne(t, st, func(c *Commit, kvt *obs.KV) error {
		return c.StageInsert(kvt, relation.Tuple{relation.Int(13), relation.Int(1)})
	})
	if w != 0 {
		t.Fatalf("watermark with pin at 0 = %d", w)
	}
	if got := st.VersionsReclaimed(); got != 0 {
		t.Fatalf("reclaimed %d versions while a snapshot pinned them", got)
	}
	if st.VersionsLive() != live0+1 {
		t.Fatalf("live = %d, want %d (old + new version coexist)", st.VersionsLive(), live0+1)
	}
	// The pinned reader still resolves the retired version's bytes.
	if blk := supplierBlock(t, view, 1); blk.Distinct() != 2 {
		t.Fatalf("pinned read after supersede: distinct = %d", blk.Distinct())
	}

	snap.Release()
	snap.Release() // idempotent
	w = commitOne(t, st, func(c *Commit, kvt *obs.KV) error {
		return c.StageInsert(kvt, relation.Tuple{relation.Int(20), relation.Int(2)})
	})
	if w != 2 {
		t.Fatalf("watermark after release = %d", w)
	}
	if got := st.VersionsReclaimed(); got != 2 {
		// nation-1's seq-0 version and nation-2's seq-0 version both retire.
		t.Fatalf("reclaimed = %d, want 2", got)
	}
	if st.VersionsLive() != live0 {
		t.Fatalf("live = %d, want %d after reclamation", st.VersionsLive(), live0)
	}
}

// TestMVCCTombstone: deleting a block's last row installs a tombstone —
// latest reads see the block gone, pinned snapshots still see it — and the
// tombstone itself is dropped once it is the sole unreachable version.
func TestMVCCTombstone(t *testing.T) {
	st, _ := newTestStore(t, DefaultOptions())
	snap := st.PinSnapshot([]string{"SUPPLIER"})
	view := st.AtSnapshot(snap)

	commitOne(t, st, func(c *Commit, kvt *obs.KV) error {
		found, err := c.StageDelete(kvt, relation.Tuple{relation.Int(12), relation.Int(2)})
		if err == nil && !found {
			t.Fatal("delete of an existing tuple not found")
		}
		return err
	})
	if blk := supplierBlock(t, st, 2); blk != nil {
		t.Fatalf("latest read past tombstone: %+v", blk)
	}
	if blk := supplierBlock(t, view, 2); blk == nil || blk.Distinct() != 1 {
		t.Fatalf("snapshot read = %+v, want the pre-delete block", blk)
	}

	snap.Release()
	commitOne(t, st, func(c *Commit, kvt *obs.KV) error {
		return c.StageInsert(kvt, relation.Tuple{relation.Int(13), relation.Int(1)})
	})
	// The old nation-2 version and its tombstone are both unreachable now.
	if len(st.mvcc.lookup("SUPPLIER_by_nation", string(st.blockPrefix(st.ids["SUPPLIER_by_nation"], relation.Tuple{relation.Int(2)})))) != 0 {
		t.Fatal("tombstoned block still has directory entries")
	}
	if blk := supplierBlock(t, st, 2); blk != nil {
		t.Fatalf("deleted block resurfaced: %+v", blk)
	}
	// Deleting from an absent block stages nothing and writes nothing.
	commitOne(t, st, func(c *Commit, kvt *obs.KV) error {
		found, err := c.StageDelete(kvt, relation.Tuple{relation.Int(99), relation.Int(2)})
		if found {
			t.Fatal("delete of a missing tuple reported found")
		}
		return err
	})
}

// TestMVCCPrefetchSeedsPreImages: Prefetch batch-reads every block the
// batch touches; staging after it issues no further gets.
func TestMVCCPrefetchSeedsPreImages(t *testing.T) {
	st, _ := newTestStore(t, DefaultOptions())
	kvt := &obs.KV{}
	c, err := st.BeginCommit("SUPPLIER")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows := []relation.Tuple{
		{relation.Int(13), relation.Int(1)},
		{relation.Int(14), relation.Int(2)},
	}
	if err := c.Prefetch(kvt, rows); err != nil {
		t.Fatal(err)
	}
	gets := kvt.Snapshot().Gets
	for _, row := range rows {
		if err := c.StageInsert(kvt, row); err != nil {
			t.Fatal(err)
		}
	}
	if now := kvt.Snapshot().Gets; now != gets {
		t.Fatalf("staging re-read prefetched blocks: gets %d -> %d", gets, now)
	}
	st.Cluster.ApplyBatch(kvt, c.Ops())
	c.Install()
	c.Reclaim(kvt)
	if blk := supplierBlock(t, st, 2); blk.Distinct() != 2 {
		t.Fatalf("batched insert lost: distinct = %d", blk.Distinct())
	}
}

package baav

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"zidian/internal/kv"
	"zidian/internal/obs"
	"zidian/internal/relation"
)

// MVCC blocks. Every block write is copy-on-write under a version-suffixed
// kv key: segment keys grow an 8-byte big-endian ^version suffix so the
// newest version of a segment sorts first within the block's key range. A
// relation's versions are governed by a monotonically increasing commit
// sequence; a commit writes all of its block versions under seq+1 and then
// installs them by bumping the sequence, so readers that pinned the
// sequence at statement start resolve every block read against a
// consistent snapshot without taking any relation lock. A block version
// with zero segments is a tombstone (payload: uvarint 0) marking the block
// deleted as of that sequence. Retired versions are reclaimed once the
// watermark — the oldest pinned snapshot sequence, or the current sequence
// when nothing is pinned — passes the sequence that retired them.

// verEntry is one materialized version of a block in the in-memory version
// directory: its commit sequence and segment count (0 = tombstone). The
// directory keeps point reads exact — a get resolves the winning version
// in memory and issues only real segment gets, never a scan.
type verEntry struct {
	ver   uint64
	nsegs int
}

// physSegs is the number of physical kv pairs a version occupies: a
// tombstone is one seg-0 pair carrying only the zero header.
func (e verEntry) physSegs() int {
	if e.nsegs < 1 {
		return 1
	}
	return e.nsegs
}

// retiredVer is a superseded block version awaiting reclamation: it may
// still be read by snapshots pinned below retireSeq.
type retiredVer struct {
	kvName    string
	prefix    string
	ver       uint64
	segs      int // physical segment pairs to delete
	retireSeq uint64
}

// tombRef is an installed tombstone that has not been superseded; once the
// watermark passes it and it is the block's sole remaining version, the
// tombstone itself (key and directory entry) is dropped.
type tombRef struct {
	kvName string
	prefix string
	ver    uint64
}

// relMVCC is the per-relation MVCC state.
type relMVCC struct {
	// commitMu serializes commits on the relation: exactly one commit
	// stages, applies, and installs at a time. Readers never take it.
	commitMu sync.Mutex

	// seq is the installed commit sequence: every version <= seq is fully
	// written and visible. stamp is bumped to seq+1 when a commit begins
	// writing, so stamp==seq means the relation is quiescent (no commit in
	// flight) — the optimistic limit-pushdown walk keys off this.
	seq   atomic.Uint64
	stamp atomic.Uint64

	pinMu sync.Mutex
	pins  map[uint64]int // pinned snapshot sequence -> pin count

	// retired and tombs are guarded by commitMu (only commits touch them).
	retired []retiredVer
	tombs   []tombRef
}

// watermark is the oldest sequence any active snapshot may read: versions
// retired at or below it are unreachable and safe to reclaim.
func (r *relMVCC) watermark() uint64 {
	r.pinMu.Lock()
	defer r.pinMu.Unlock()
	w := r.seq.Load()
	for s := range r.pins {
		if s < w {
			w = s
		}
	}
	return w
}

// mvccState is the store-wide MVCC bookkeeping, shared by every snapshot
// view of one Store.
type mvccState struct {
	mu   sync.RWMutex
	dirs map[string]map[string][]verEntry // kv name -> block prefix -> versions, descending
	rels map[string]*relMVCC

	live      atomic.Int64 // block versions currently materialized
	reclaimed atomic.Int64 // block versions reclaimed over the store's lifetime
	sweptBg   atomic.Int64 // versions reclaimed by the background sweep alone
}

func newMVCCState() *mvccState {
	return &mvccState{
		dirs: make(map[string]map[string][]verEntry),
		rels: make(map[string]*relMVCC),
	}
}

// rel returns the relation's MVCC state, creating it on first use.
func (m *mvccState) rel(name string) *relMVCC {
	m.mu.RLock()
	r := m.rels[name]
	m.mu.RUnlock()
	if r != nil {
		return r
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if r = m.rels[name]; r == nil {
		r = &relMVCC{pins: make(map[uint64]int)}
		m.rels[name] = r
	}
	return r
}

// lookup returns the version list for a block, newest first. The returned
// slice is immutable (writers replace, never mutate in place).
func (m *mvccState) lookup(kvName, prefix string) []verEntry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.dirs[kvName][prefix]
}

// addVersion prepends a new version (necessarily the newest) to a block's
// directory entry.
func (m *mvccState) addVersion(kvName, prefix string, e verEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byPrefix := m.dirs[kvName]
	if byPrefix == nil {
		byPrefix = make(map[string][]verEntry)
		m.dirs[kvName] = byPrefix
	}
	old := byPrefix[prefix]
	fresh := make([]verEntry, 0, len(old)+1)
	fresh = append(fresh, e)
	fresh = append(fresh, old...)
	byPrefix[prefix] = fresh
	m.live.Add(1)
}

// dropVersion removes one version from a block's directory entry,
// deleting the entry when it empties.
func (m *mvccState) dropVersion(kvName, prefix string, ver uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byPrefix := m.dirs[kvName]
	old := byPrefix[prefix]
	fresh := make([]verEntry, 0, len(old))
	for _, e := range old {
		if e.ver != ver {
			fresh = append(fresh, e)
		}
	}
	if len(fresh) == len(old) {
		return
	}
	if len(fresh) == 0 {
		delete(byPrefix, prefix)
	} else {
		byPrefix[prefix] = fresh
	}
	m.live.Add(-1)
	m.reclaimed.Add(1)
}

// soleVersion reports whether ver is the block's only remaining version.
func (m *mvccState) soleVersion(kvName, prefix string, ver uint64) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	es := m.dirs[kvName][prefix]
	return len(es) == 1 && es[0].ver == ver
}

// pickWinner selects the newest version visible at seq.
func pickWinner(entries []verEntry, seq uint64) (verEntry, bool) {
	for _, e := range entries {
		if e.ver <= seq {
			return e, true
		}
	}
	return verEntry{}, false
}

// verSegKey is the physical key of one segment of one block version:
// blockPrefix | seg (4 bytes BE) | ^ver (8 bytes BE). Complementing the
// version makes newer versions sort before older ones.
func verSegKey(prefix []byte, seg uint32, ver uint64) []byte {
	out := make([]byte, len(prefix), len(prefix)+12)
	copy(out, prefix)
	out = binary.BigEndian.AppendUint32(out, seg)
	return binary.BigEndian.AppendUint64(out, ^ver)
}

// Snapshot pins, per relation, the commit sequence a statement's reads
// resolve against. Pin before planning, release after the last read; a
// held pin blocks reclamation of every version it can reach.
type Snapshot struct {
	st       *Store
	Seqs     map[string]uint64
	released bool
}

// PinSnapshot pins the current commit sequence of each named relation
// (duplicates and unknown names are ignored) and returns the snapshot.
func (st *Store) PinSnapshot(rels []string) *Snapshot {
	s := &Snapshot{st: st, Seqs: make(map[string]uint64, len(rels))}
	for _, rel := range rels {
		if _, ok := s.Seqs[rel]; ok {
			continue
		}
		if _, ok := st.Rels[rel]; !ok {
			continue
		}
		r := st.mvcc.rel(rel)
		r.pinMu.Lock()
		seq := r.seq.Load() // loaded under pinMu so a concurrent reclaim either sees the pin or the pin sees the new sequence
		r.pins[seq]++
		r.pinMu.Unlock()
		s.Seqs[rel] = seq
	}
	return s
}

// Release unpins the snapshot. Idempotent; nil-safe.
func (s *Snapshot) Release() {
	if s == nil || s.released {
		return
	}
	s.released = true
	for rel, seq := range s.Seqs {
		r := s.st.mvcc.rel(rel)
		r.pinMu.Lock()
		if r.pins[seq] > 1 {
			r.pins[seq]--
		} else {
			delete(r.pins, seq)
		}
		r.pinMu.Unlock()
	}
}

// Seq returns the pinned sequence for rel, if the snapshot covers it.
func (s *Snapshot) Seq(rel string) (uint64, bool) {
	if s == nil {
		return 0, false
	}
	seq, ok := s.Seqs[rel]
	return seq, ok
}

// AtSnapshot returns a read view of the store whose block and stats reads
// resolve against the snapshot's pinned sequences. The view shares all
// mutable state with the parent (it is a shallow copy); relations the
// snapshot does not cover read latest.
func (st *Store) AtSnapshot(s *Snapshot) *Store {
	if s == nil {
		return st
	}
	cp := *st
	cp.snap = s
	return &cp
}

// snapSeqFor resolves the sequence this store view reads relation rel at:
// the pinned sequence when the view is a snapshot, the installed sequence
// otherwise.
func (st *Store) snapSeqFor(rel string) uint64 {
	if st.snap != nil {
		if s, ok := st.snap.Seqs[rel]; ok {
			return s
		}
	}
	return st.mvcc.rel(rel).seq.Load()
}

// CommitSeq returns the relation's installed commit sequence.
func (st *Store) CommitSeq(rel string) uint64 { return st.mvcc.rel(rel).seq.Load() }

// CommitStamp returns the relation's commit stamp: equal to CommitSeq when
// the relation is quiescent, CommitSeq+1 while a commit is writing.
func (st *Store) CommitStamp(rel string) uint64 { return st.mvcc.rel(rel).stamp.Load() }

// Watermark returns the oldest sequence an active snapshot of rel may
// read.
func (st *Store) Watermark(rel string) uint64 { return st.mvcc.rel(rel).watermark() }

// VersionsLive returns the number of materialized block versions.
func (st *Store) VersionsLive() int64 { return st.mvcc.live.Load() }

// VersionsReclaimed returns the number of block versions reclaimed over
// the store's lifetime.
func (st *Store) VersionsReclaimed() int64 { return st.mvcc.reclaimed.Load() }

// stagedEdit is one block's pending state inside a commit: the pre-image
// (nil when the block is absent at the commit's base sequence) plus edits.
type stagedEdit struct {
	kvSchema KVSchema
	key      relation.Tuple
	prefix   []byte
	blk      *Block
	dirty    bool
}

// Commit is an open commit on one relation: it holds the relation's commit
// mutex from BeginCommit until Close. Usage:
//
//	c, _ := st.BeginCommit(rel)
//	defer c.Close()
//	c.Prefetch(kvt, tuples)              // optional: batch-read pre-images
//	c.StageInsert(kvt, t) / c.StageDelete(kvt, t)   // all fallible work
//	st.Cluster.ApplyBatch(kvt, c.Ops())  // write new versions
//	c.Install()                          // bump the sequence: versions become visible
//	w := c.Reclaim(kvt)                  // drop versions below the watermark
//
// Abandoning a commit before Install (Close after a staging error) leaves
// the store untouched: staged edits live only in memory and nothing was
// installed, so there is nothing to compensate.
type Commit struct {
	st  *Store
	rel string
	r   *relMVCC
	seq uint64 // sequence this commit installs

	staged    map[string]map[string]*stagedEdit // kv name -> prefix -> edit
	rowsDelta int

	// computed by Ops, consumed by Install
	opsBuilt bool
	dirAdds  []struct {
		kvName, prefix string
		e              verEntry
	}
	retires    []retiredVer
	newTombs   []tombRef
	blockDelta map[string]int
	degreeMax  map[string]int

	installed bool
	closed    bool
}

// BeginCommit opens a commit on rel, locking out other commits on the
// relation and bumping the commit stamp (readers see stamp != seq while
// the commit is in flight).
func (st *Store) BeginCommit(rel string) (*Commit, error) {
	if _, ok := st.Rels[rel]; !ok {
		return nil, fmt.Errorf("baav: unknown relation %q", rel)
	}
	r := st.mvcc.rel(rel)
	r.commitMu.Lock()
	seq := r.seq.Load() + 1
	r.stamp.Store(seq)
	return &Commit{
		st:         st,
		rel:        rel,
		r:          r,
		seq:        seq,
		staged:     make(map[string]map[string]*stagedEdit),
		blockDelta: make(map[string]int),
		degreeMax:  make(map[string]int),
	}, nil
}

// Seq returns the sequence this commit will install.
func (c *Commit) Seq() uint64 { return c.seq }

// edit returns the staged state for one block, loading its pre-image from
// the store (at the commit's base sequence) on first touch.
func (c *Commit) edit(kvt *obs.KV, kvSchema KVSchema, key relation.Tuple) (*stagedEdit, error) {
	byPrefix := c.staged[kvSchema.Name]
	if byPrefix == nil {
		byPrefix = make(map[string]*stagedEdit)
		c.staged[kvSchema.Name] = byPrefix
	}
	prefix := c.st.blockPrefix(c.st.ids[kvSchema.Name], key)
	if e, ok := byPrefix[string(prefix)]; ok {
		return e, nil
	}
	blk, _, _, err := c.st.GetBlockT(kvt, kvSchema.Name, key)
	if err != nil {
		return nil, err
	}
	e := &stagedEdit{kvSchema: kvSchema, key: key, prefix: prefix, blk: blk}
	byPrefix[string(prefix)] = e
	return e, nil
}

// Prefetch batch-reads the pre-image blocks every tuple in the batch will
// touch — one multi-get round trip per storage node instead of one get
// per block — and seeds the staged-edit cache with them.
func (c *Commit) Prefetch(kvt *obs.KV, tuples []relation.Tuple) error {
	schema := c.st.Rels[c.rel]
	type want struct {
		kvSchema KVSchema
		key      relation.Tuple
		prefix   []byte
		winner   verEntry
		reqBase  int // index of its first request in reqs; -1 when absent
	}
	var wants []*want
	var reqs []kv.GetRequest
	for _, kvSchema := range c.st.Schema.ForRelation(c.rel) {
		keyPos, err := schema.Positions(kvSchema.Key)
		if err != nil {
			return err
		}
		byPrefix := c.staged[kvSchema.Name]
		if byPrefix == nil {
			byPrefix = make(map[string]*stagedEdit)
			c.staged[kvSchema.Name] = byPrefix
		}
		seen := make(map[string]bool)
		for _, t := range tuples {
			if len(t) != len(schema.Attrs) {
				return fmt.Errorf("baav: tuple arity %d != %s arity %d", len(t), c.rel, len(schema.Attrs))
			}
			key := t.Project(keyPos)
			prefix := c.st.blockPrefix(c.st.ids[kvSchema.Name], key)
			ps := string(prefix)
			if seen[ps] {
				continue
			}
			seen[ps] = true
			if _, ok := byPrefix[ps]; ok {
				continue // already staged by an earlier round
			}
			w := &want{kvSchema: kvSchema, key: key, prefix: prefix, reqBase: -1}
			entry, ok := pickWinner(c.st.mvcc.lookup(kvSchema.Name, ps), c.seq-1)
			if ok && entry.nsegs > 0 {
				w.winner = entry
				w.reqBase = len(reqs)
				for seg := 0; seg < entry.nsegs; seg++ {
					reqs = append(reqs, kv.GetRequest{Route: prefix, Key: verSegKey(prefix, uint32(seg), entry.ver)})
				}
			}
			wants = append(wants, w)
		}
	}
	res := c.st.Cluster.GetManyRouted(kvt, reqs)
	for _, w := range wants {
		var blk *Block
		if w.reqBase >= 0 {
			datas := make([][]byte, w.winner.nsegs)
			for i := 0; i < w.winner.nsegs; i++ {
				r := res[w.reqBase+i]
				if !r.OK {
					return fmt.Errorf("baav: missing segment %d of block in %s", i, w.kvSchema.Name)
				}
				datas[i] = r.Value
			}
			var err error
			blk, _, err = assembleSegs(datas, len(w.kvSchema.Val))
			if err != nil {
				return err
			}
		}
		c.staged[w.kvSchema.Name][string(w.prefix)] = &stagedEdit{
			kvSchema: w.kvSchema, key: w.key, prefix: w.prefix, blk: blk,
		}
	}
	return nil
}

// StageInsert stages one inserted tuple into every KV schema projecting
// the relation. Fallible (reads, decoding) — an error leaves the commit
// abandonable with nothing written.
func (c *Commit) StageInsert(kvt *obs.KV, t relation.Tuple) error {
	schema := c.st.Rels[c.rel]
	if len(t) != len(schema.Attrs) {
		return fmt.Errorf("baav: tuple arity %d != %s arity %d", len(t), c.rel, len(schema.Attrs))
	}
	for _, kvSchema := range c.st.Schema.ForRelation(c.rel) {
		keyPos, err := schema.Positions(kvSchema.Key)
		if err != nil {
			return err
		}
		valPos, err := schema.Positions(kvSchema.Val)
		if err != nil {
			return err
		}
		e, err := c.edit(kvt, kvSchema, t.Project(keyPos))
		if err != nil {
			return err
		}
		if e.blk == nil {
			e.blk = &Block{}
		}
		e.blk.Add(t.Project(valPos), c.st.Opts.Compress)
		e.dirty = true
	}
	c.rowsDelta++
	return nil
}

// StageDelete stages one deleted tuple; found reports whether any
// projection actually held it.
func (c *Commit) StageDelete(kvt *obs.KV, t relation.Tuple) (found bool, err error) {
	schema := c.st.Rels[c.rel]
	if len(t) != len(schema.Attrs) {
		return false, fmt.Errorf("baav: tuple arity %d != %s arity %d", len(t), c.rel, len(schema.Attrs))
	}
	for _, kvSchema := range c.st.Schema.ForRelation(c.rel) {
		keyPos, err := schema.Positions(kvSchema.Key)
		if err != nil {
			return found, err
		}
		valPos, err := schema.Positions(kvSchema.Val)
		if err != nil {
			return found, err
		}
		e, err := c.edit(kvt, kvSchema, t.Project(keyPos))
		if err != nil {
			return found, err
		}
		if e.blk == nil || !e.blk.Remove(t.Project(valPos)) {
			continue
		}
		e.dirty = true
		found = true
	}
	if found {
		c.rowsDelta--
	}
	return found, nil
}

// stagePut stages a whole-block replacement (PutBlock's path).
func (c *Commit) stagePut(kvSchema KVSchema, key relation.Tuple, blk *Block) {
	byPrefix := c.staged[kvSchema.Name]
	if byPrefix == nil {
		byPrefix = make(map[string]*stagedEdit)
		c.staged[kvSchema.Name] = byPrefix
	}
	prefix := c.st.blockPrefix(c.st.ids[kvSchema.Name], key)
	byPrefix[string(prefix)] = &stagedEdit{kvSchema: kvSchema, key: key, prefix: prefix, blk: blk, dirty: true}
}

// Ops materializes the commit's dirty edits as versioned batch mutations
// and computes the directory/bookkeeping deltas Install will apply. Pure:
// no kv traffic, no visible state change.
func (c *Commit) Ops() []kv.BatchOp {
	var ops []kv.BatchOp
	kvNames := make([]string, 0, len(c.staged))
	for name := range c.staged {
		kvNames = append(kvNames, name)
	}
	sort.Strings(kvNames)
	for _, name := range kvNames {
		byPrefix := c.staged[name]
		prefixes := make([]string, 0, len(byPrefix))
		for p := range byPrefix {
			prefixes = append(prefixes, p)
		}
		sort.Strings(prefixes)
		for _, ps := range prefixes {
			e := byPrefix[ps]
			if !e.dirty {
				continue
			}
			oldWinner, hadOld := pickWinner(c.st.mvcc.lookup(name, ps), c.seq-1)
			oldExists := hadOld && oldWinner.nsegs > 0
			newExists := e.blk != nil && len(e.blk.Tuples) > 0
			if !oldExists && !newExists {
				continue // deleting an absent block: nothing to write
			}
			if newExists {
				segOps, nsegs := c.st.encodeVersionOps(e.kvSchema, e.prefix, e.blk, c.seq)
				ops = append(ops, segOps...)
				c.dirAdds = append(c.dirAdds, struct {
					kvName, prefix string
					e              verEntry
				}{name, ps, verEntry{ver: c.seq, nsegs: nsegs}})
				if d := e.blk.Distinct(); d > c.degreeMax[name] {
					c.degreeMax[name] = d
				}
				if !oldExists {
					c.blockDelta[name]++
				}
			} else {
				// Tombstone: one seg-0 pair whose header says zero segments.
				ops = append(ops, kv.BatchOp{
					Route: e.prefix,
					Key:   verSegKey(e.prefix, 0, c.seq),
					Value: binary.AppendUvarint(nil, 0),
				})
				c.dirAdds = append(c.dirAdds, struct {
					kvName, prefix string
					e              verEntry
				}{name, ps, verEntry{ver: c.seq, nsegs: 0}})
				c.newTombs = append(c.newTombs, tombRef{kvName: name, prefix: ps, ver: c.seq})
				c.blockDelta[name]--
			}
			if hadOld {
				c.retires = append(c.retires, retiredVer{
					kvName: name, prefix: ps, ver: oldWinner.ver,
					segs: oldWinner.physSegs(), retireSeq: c.seq,
				})
			}
		}
	}
	c.opsBuilt = true
	return ops
}

// Install makes the commit's versions visible: directory entries first,
// then the sequence bump — a reader that sees the new sequence always
// finds the new versions. Call only after the batch ops have been applied
// to the cluster.
func (c *Commit) Install() {
	if !c.opsBuilt {
		c.Ops()
	}
	for _, a := range c.dirAdds {
		c.st.mvcc.addVersion(a.kvName, a.prefix, a.e)
	}
	c.st.statsMu.Lock()
	for name, d := range c.blockDelta {
		c.st.blocks[name] += d
	}
	for name, d := range c.degreeMax {
		if d > c.st.degrees[name] {
			c.st.degrees[name] = d
		}
	}
	if c.rowsDelta > 0 || c.st.relRows[c.rel] >= -c.rowsDelta {
		c.st.relRows[c.rel] += c.rowsDelta
	} else {
		c.st.relRows[c.rel] = 0
	}
	c.st.statsMu.Unlock()
	c.r.retired = append(c.r.retired, c.retires...)
	c.r.tombs = append(c.r.tombs, c.newTombs...)
	c.r.seq.Store(c.seq)
	c.installed = true
}

// Reclaim drops every retired version at or below the watermark (deleting
// its kv pairs in one batch) and opportunistically removes tombstones that
// are a block's sole remaining version below the watermark. Returns the
// watermark so index maintenance can reclaim against the same bound. Must
// be called before Close, after Install.
func (c *Commit) Reclaim(kvt *obs.KV) uint64 {
	w, _ := c.st.reclaimRel(kvt, c.r)
	return w
}

// reclaimRel is the reclamation core shared by commits and the background
// sweep: drop retired versions and sole-remaining tombstones at or below
// the relation's watermark, deleting their kv pairs in one batch. The
// caller must hold r.commitMu (only commits and the sweep touch retired
// and tombs). Returns the watermark and the number of versions dropped.
func (st *Store) reclaimRel(kvt *obs.KV, r *relMVCC) (w uint64, swept int) {
	w = r.watermark()
	var ops []kv.BatchOp
	keep := r.retired[:0]
	for _, rv := range r.retired {
		if rv.retireSeq > w {
			keep = append(keep, rv)
			continue
		}
		prefix := []byte(rv.prefix)
		for seg := 0; seg < rv.segs; seg++ {
			ops = append(ops, kv.BatchOp{Route: prefix, Key: verSegKey(prefix, uint32(seg), rv.ver), Delete: true})
		}
		st.mvcc.dropVersion(rv.kvName, rv.prefix, rv.ver)
		swept++
	}
	r.retired = keep
	keepT := r.tombs[:0]
	for _, tb := range r.tombs {
		es := st.mvcc.lookup(tb.kvName, tb.prefix)
		if len(es) == 0 || es[0].ver > tb.ver {
			continue // superseded or gone: the normal retire path owns its key
		}
		if len(es) == 1 && tb.ver <= w {
			// Sole remaining version and unreachable: the block is fully
			// deleted — drop the tombstone key itself. Older versions were
			// already deleted above (same batch, earlier ops), so a reader
			// can never resurrect a pre-delete version.
			prefix := []byte(tb.prefix)
			ops = append(ops, kv.BatchOp{Route: prefix, Key: verSegKey(prefix, 0, tb.ver), Delete: true})
			st.mvcc.dropVersion(tb.kvName, tb.prefix, tb.ver)
			swept++
			continue
		}
		keepT = append(keepT, tb)
	}
	r.tombs = keepT
	st.Cluster.ApplyBatch(kvt, ops)
	return w, swept
}

// SweepRelation reclaims what the relation's watermark allows without
// waiting for its next commit: a relation that stops receiving commits
// would otherwise hold its last superseded versions (and tombstones)
// forever, since reclamation normally rides the commit path. The sweep
// takes the commit mutex opportunistically — TryLock, so it never delays
// a live commit — and bumps neither the sequence nor the stamp, leaving
// quiescence checks untouched. then, when non-nil, runs with the mutex
// still held and the watermark the sweep reclaimed against — the hook for
// retrying the relation's pending posting shrinks, which commits also only
// touch under this mutex. Returns the number of versions dropped and
// whether the sweep ran at all (false: a commit held the relation; the
// next tick retries).
func (st *Store) SweepRelation(rel string, then func(watermark uint64)) (swept int, ok bool) {
	if _, known := st.Rels[rel]; !known {
		return 0, false
	}
	r := st.mvcc.rel(rel)
	if !r.commitMu.TryLock() {
		return 0, false
	}
	defer r.commitMu.Unlock()
	var w uint64
	w, swept = st.reclaimRel(nil, r)
	st.mvcc.sweptBg.Add(int64(swept))
	if then != nil {
		then(w)
	}
	return swept, true
}

// VersionsSwept returns the number of block versions reclaimed by the
// background sweep (a subset of VersionsReclaimed).
func (st *Store) VersionsSwept() int64 { return st.mvcc.sweptBg.Load() }

// Close ends the commit, releasing the relation's commit mutex. If the
// commit was not installed the stamp is rolled back so the relation reads
// quiescent again.
func (c *Commit) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if !c.installed {
		c.r.stamp.Store(c.r.seq.Load())
	}
	c.r.commitMu.Unlock()
}

// encodeVersionOps encodes a block at one version into put ops, splitting
// into segments at the configured threshold. Returns the ops and the
// segment count.
func (st *Store) encodeVersionOps(kvSchema KVSchema, prefix []byte, blk *Block, ver uint64) ([]kv.BatchOp, int) {
	width := len(kvSchema.Val)
	thr := st.Opts.SegmentThreshold
	nsegs := (len(blk.Tuples) + thr - 1) / thr
	ops := make([]kv.BatchOp, 0, nsegs)
	for seg := 0; seg < nsegs; seg++ {
		lo, hi := seg*thr, (seg+1)*thr
		if hi > len(blk.Tuples) {
			hi = len(blk.Tuples)
		}
		part := &Block{Tuples: blk.Tuples[lo:hi]}
		if blk.Counts != nil {
			part.Counts = blk.Counts[lo:hi]
		}
		var stats *BlockStats
		if st.Opts.Stats {
			stats = part.ComputeStats(width)
		}
		payload := EncodeBlock(part, stats, width)
		if seg == 0 {
			head := binary.AppendUvarint(nil, uint64(nsegs))
			payload = append(head, payload...)
		}
		ops = append(ops, kv.BatchOp{Route: prefix, Key: verSegKey(prefix, uint32(seg), ver), Value: payload})
	}
	return ops, nsegs
}

// assembleSegs decodes a block from its ordered segment payloads (seg 0
// carries the uvarint segment-count header).
func assembleSegs(datas [][]byte, width int) (*Block, *BlockStats, error) {
	nsegs, k := binary.Uvarint(datas[0])
	if k <= 0 {
		return nil, nil, errCorruptBlock
	}
	if int(nsegs) != len(datas) {
		return nil, nil, fmt.Errorf("baav: block header says %d segments, read %d", nsegs, len(datas))
	}
	blk, stats, err := DecodeBlock(datas[0][k:], width)
	if err != nil {
		return nil, nil, err
	}
	for _, data := range datas[1:] {
		more, moreStats, err := DecodeBlock(data, width)
		if err != nil {
			return nil, nil, err
		}
		blk.Tuples = append(blk.Tuples, more.Tuples...)
		switch {
		case blk.Counts != nil && more.Counts != nil:
			blk.Counts = append(blk.Counts, more.Counts...)
		case blk.Counts != nil:
			for range more.Tuples {
				blk.Counts = append(blk.Counts, 1)
			}
		case more.Counts != nil:
			counts := make([]int64, len(blk.Tuples)-len(more.Tuples))
			for i := range counts {
				counts[i] = 1
			}
			blk.Counts = append(counts, more.Counts...)
		}
		if stats != nil {
			stats.Merge(moreStats)
		}
	}
	return blk, stats, nil
}

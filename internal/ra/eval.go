package ra

import (
	"fmt"
	"sort"

	"zidian/internal/relation"
	"zidian/internal/sql"
)

// Result is a materialized query answer.
type Result struct {
	Cols []string
	Rows []relation.Tuple
}

// Sort orders rows lexicographically in place; canonical form for tests.
func (r *Result) Sort() {
	sort.Slice(r.Rows, func(i, j int) bool { return r.Rows[i].Compare(r.Rows[j]) < 0 })
}

// Equal reports whether two results have identical columns and identical
// row multisets (rows compared after sorting copies). Floating-point values
// compare with a small relative tolerance: parallel and block-wise
// execution sum in different orders, and float addition is not associative.
func (r *Result) Equal(o *Result) bool {
	if len(r.Cols) != len(o.Cols) || len(r.Rows) != len(o.Rows) {
		return false
	}
	for i := range r.Cols {
		if r.Cols[i] != o.Cols[i] {
			return false
		}
	}
	a := &Result{Rows: append([]relation.Tuple(nil), r.Rows...)}
	b := &Result{Rows: append([]relation.Tuple(nil), o.Rows...)}
	a.Sort()
	b.Sort()
	for i := range a.Rows {
		if !tupleApproxEqual(a.Rows[i], b.Rows[i]) {
			return false
		}
	}
	return true
}

func tupleApproxEqual(a, b relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !valueApproxEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func valueApproxEqual(a, b relation.Value) bool {
	if relation.Equal(a, b) {
		return true
	}
	aNum := a.Kind == relation.KindInt || a.Kind == relation.KindFloat
	bNum := b.Kind == relation.KindInt || b.Kind == relation.KindFloat
	if !aNum || !bNum {
		return false
	}
	af, bf := a.AsFloat(), b.AsFloat()
	diff := af - bf
	if diff < 0 {
		diff = -diff
	}
	scale := 1.0
	if m := af; m < 0 {
		m = -m
		if m > scale {
			scale = m
		}
	} else if af > scale {
		scale = af
	}
	return diff <= 1e-9*scale
}

// binding tracks the columns of an intermediate join result.
type binding struct {
	cols []ColRef
	idx  map[ColRef]int
}

func newBinding(cols []ColRef) *binding {
	b := &binding{cols: cols, idx: make(map[ColRef]int, len(cols))}
	for i, c := range cols {
		b.idx[c] = i
	}
	return b
}

func (b *binding) has(c ColRef) bool { _, ok := b.idx[c]; return ok }

// Evaluate runs the query over an in-memory database. It is the reference
// ("ground truth") evaluator: single-node, no storage accounting. Templates
// must be bound first (BindParams) — the evaluator works on literals only.
func Evaluate(q *Query, db *relation.Database) (*Result, error) {
	if q.NumParams > 0 {
		return nil, fmt.Errorf("ra: cannot evaluate a template with %d unbound parameters", q.NumParams)
	}
	rows, bind, err := evaluateSPC(q, db)
	if err != nil {
		return nil, err
	}
	return finishQuery(q, rows, bind)
}

// evaluateSPC computes the join of all atoms with all predicates applied,
// returning intermediate rows and their column binding.
func evaluateSPC(q *Query, db *relation.Database) ([]relation.Tuple, *binding, error) {
	if len(q.Atoms) == 0 {
		return nil, nil, fmt.Errorf("ra: query has no atoms")
	}
	type applied struct {
		eq     map[int]bool
		filter map[int]bool
	}
	done := applied{eq: map[int]bool{}, filter: map[int]bool{}}

	var cur []relation.Tuple
	var bind *binding
	for ai, atom := range q.Atoms {
		base, cols, err := scanAtom(q, db, atom)
		if err != nil {
			return nil, nil, err
		}
		if ai == 0 {
			cur = base
			bind = newBinding(cols)
		} else {
			newBind := newBinding(append(append([]ColRef{}, bind.cols...), cols...))
			// Join keys: equalities with one side bound and one side new.
			var lk, rk []int
			for ei, eq := range q.EqAttrs {
				if done.eq[ei] {
					continue
				}
				l, r := eq.L, eq.R
				if bind.has(r) && l.Alias == atom.Alias {
					l, r = r, l
				}
				if bind.has(l) && r.Alias == atom.Alias {
					ri := -1
					for ci, c := range cols {
						if c == r {
							ri = ci
						}
					}
					if ri < 0 {
						continue
					}
					lk = append(lk, bind.idx[l])
					rk = append(rk, ri)
					done.eq[ei] = true
				}
			}
			cur = hashJoin(cur, base, lk, rk)
			bind = newBind
		}
		// Post-join predicates now fully bound: remaining equalities and
		// column-column filters.
		cur = applyBoundPreds(q, cur, bind, &done.eq, &done.filter)
	}
	return cur, bind, nil
}

// scanAtom returns the filtered base rows of one atom and their columns.
func scanAtom(q *Query, db *relation.Database, atom Atom) ([]relation.Tuple, []ColRef, error) {
	rel := db.Relation(atom.Rel)
	if rel == nil {
		return nil, nil, fmt.Errorf("ra: relation %q not in database", atom.Rel)
	}
	cols := make([]ColRef, len(atom.Schema.Attrs))
	for i, a := range atom.Schema.Attrs {
		cols[i] = ColRef{Alias: atom.Alias, Attr: a.Name}
	}
	pos := func(c ColRef) int { return atom.Schema.Index(c.Attr) }

	var out []relation.Tuple
	for _, t := range rel.Tuples {
		ok := true
		for _, ce := range q.EqConsts {
			if ce.Col.Alias == atom.Alias && !relation.Equal(t[pos(ce.Col)], ce.Val) {
				ok = false
				break
			}
		}
		if ok {
			for _, in := range q.Ins {
				if in.Col.Alias != atom.Alias {
					continue
				}
				hit := false
				for _, v := range in.Vals {
					if relation.Equal(t[pos(in.Col)], v) {
						hit = true
						break
					}
				}
				if !hit {
					ok = false
					break
				}
			}
		}
		if ok {
			for _, f := range q.Filters {
				if f.Col.Alias != atom.Alias || f.Lit == nil {
					continue
				}
				if !cmpOK(t[pos(f.Col)], f.Op, *f.Lit) {
					ok = false
					break
				}
			}
		}
		if ok {
			// Intra-atom equalities (r.a = r.b).
			for _, eq := range q.EqAttrs {
				if eq.L.Alias == atom.Alias && eq.R.Alias == atom.Alias &&
					!relation.Equal(t[pos(eq.L)], t[pos(eq.R)]) {
					ok = false
					break
				}
			}
		}
		if ok {
			out = append(out, t)
		}
	}
	return out, cols, nil
}

// applyBoundPreds filters rows by predicates whose references are now all
// bound and not yet applied.
func applyBoundPreds(q *Query, rows []relation.Tuple, bind *binding, eqDone, fDone *map[int]bool) []relation.Tuple {
	var checks []func(relation.Tuple) bool
	for ei, eq := range q.EqAttrs {
		if (*eqDone)[ei] || eq.L.Alias == eq.R.Alias {
			continue
		}
		if bind.has(eq.L) && bind.has(eq.R) {
			li, ri := bind.idx[eq.L], bind.idx[eq.R]
			checks = append(checks, func(t relation.Tuple) bool {
				return relation.Equal(t[li], t[ri])
			})
			(*eqDone)[ei] = true
		}
	}
	for fi, f := range q.Filters {
		if (*fDone)[fi] || f.RCol == nil {
			continue
		}
		if bind.has(f.Col) && bind.has(*f.RCol) {
			li, ri := bind.idx[f.Col], bind.idx[*f.RCol]
			op := f.Op
			checks = append(checks, func(t relation.Tuple) bool {
				return cmpOK(t[li], op, t[ri])
			})
			(*fDone)[fi] = true
		}
	}
	if len(checks) == 0 {
		return rows
	}
	out := rows[:0:0]
	for _, t := range rows {
		ok := true
		for _, c := range checks {
			if !c(t) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, t)
		}
	}
	return out
}

// hashJoin joins left and right rows on the given key positions; empty keys
// degrade to a cross product.
func hashJoin(left, right []relation.Tuple, lk, rk []int) []relation.Tuple {
	var out []relation.Tuple
	if len(lk) == 0 {
		for _, l := range left {
			for _, r := range right {
				out = append(out, l.Concat(r))
			}
		}
		return out
	}
	index := make(map[string][]relation.Tuple)
	for _, r := range right {
		k := relation.KeyString(r.Project(rk))
		index[k] = append(index[k], r)
	}
	for _, l := range left {
		k := relation.KeyString(l.Project(lk))
		for _, r := range index[k] {
			out = append(out, l.Concat(r))
		}
	}
	return out
}

func cmpOK(a relation.Value, op sql.CmpOp, b relation.Value) bool {
	c := relation.Compare(a, b)
	switch op {
	case sql.OpEq:
		return c == 0
	case sql.OpNe:
		return c != 0
	case sql.OpLt:
		return c < 0
	case sql.OpLe:
		return c <= 0
	case sql.OpGt:
		return c > 0
	case sql.OpGe:
		return c >= 0
	default:
		return false
	}
}

// finishQuery applies projection, aggregation, DISTINCT, ORDER BY and LIMIT
// to the joined rows. It is shared by every execution backend (reference,
// TaaV baseline, and the flattened tail of KBA plans).
func finishQuery(q *Query, rows []relation.Tuple, bind *binding) (*Result, error) {
	projIdx := make([]int, len(q.Proj))
	for i, c := range q.Proj {
		j, ok := bind.idx[c]
		if !ok {
			return nil, fmt.Errorf("ra: projection column %s not bound", c)
		}
		projIdx[i] = j
	}
	res := &Result{Cols: q.OutNames}
	if len(q.Aggs) == 0 {
		for _, t := range rows {
			res.Rows = append(res.Rows, t.Project(projIdx))
		}
	} else {
		aggIdx := make([]int, len(q.Aggs))
		for i, a := range q.Aggs {
			if a.Star {
				aggIdx[i] = -1
				continue
			}
			j, ok := bind.idx[a.Col]
			if !ok {
				return nil, fmt.Errorf("ra: aggregate column %s not bound", a.Col)
			}
			aggIdx[i] = j
		}
		res.Rows = aggregate(rows, projIdx, q.Aggs, aggIdx)
	}
	if q.Distinct {
		res.Rows = distinct(res.Rows)
	}
	if err := OrderAndLimit(res, q.OrderBy, q.Limit); err != nil {
		return nil, err
	}
	return res, nil
}

// OrderAndLimit applies ORDER BY keys (referring to result columns by name)
// and a LIMIT (negative = none) to a result in place. It is shared by every
// execution backend.
func OrderAndLimit(res *Result, keys []OrderKey, limit int) error {
	if len(keys) > 0 {
		if err := orderBy(res, keys); err != nil {
			return err
		}
	}
	if limit >= 0 && len(res.Rows) > limit {
		res.Rows = res.Rows[:limit]
	}
	return nil
}

// AggState accumulates one aggregate; exported for reuse by the parallel
// executor's partial aggregation.
type AggState struct {
	Count int64
	Sum   float64
	// SumInt tracks integer sums so SUM over int columns stays int.
	SumInt  int64
	AllInt  bool
	Min     relation.Value
	Max     relation.Value
	started bool
}

// NewAggState returns an empty accumulator.
func NewAggState() *AggState { return &AggState{AllInt: true} }

// Add folds one value into the accumulator.
func (s *AggState) Add(v relation.Value) {
	s.Count++
	if v.Kind == relation.KindInt {
		s.SumInt += v.Int
	} else {
		s.AllInt = false
	}
	s.Sum += v.AsFloat()
	if !s.started || relation.Compare(v, s.Min) < 0 {
		s.Min = v
	}
	if !s.started || relation.Compare(v, s.Max) > 0 {
		s.Max = v
	}
	s.started = true
}

// AddCount folds a bare row count (for COUNT(*)).
func (s *AggState) AddCount() { s.Count++ }

// Merge folds another accumulator into s (for partial aggregation).
func (s *AggState) Merge(o *AggState) {
	s.Count += o.Count
	s.Sum += o.Sum
	s.SumInt += o.SumInt
	s.AllInt = s.AllInt && o.AllInt
	if o.started {
		if !s.started || relation.Compare(o.Min, s.Min) < 0 {
			s.Min = o.Min
		}
		if !s.started || relation.Compare(o.Max, s.Max) > 0 {
			s.Max = o.Max
		}
		s.started = true
	}
}

// stateWidth is the number of values EncodeState produces.
const stateWidth = 7

// EncodeState serializes the accumulator so partial aggregates can be
// shuffled between workers as ordinary tuples.
func (s *AggState) EncodeState() Tuple7 {
	allInt := int64(0)
	if s.AllInt {
		allInt = 1
	}
	started := int64(0)
	if s.started {
		started = 1
	}
	return Tuple7{
		relation.Int(s.Count), relation.Float(s.Sum), relation.Int(s.SumInt),
		relation.Int(allInt), relation.Int(started), s.Min, s.Max,
	}
}

// Tuple7 is the fixed-width encoded form of an AggState.
type Tuple7 = relation.Tuple

// DecodeAggState rebuilds an accumulator from EncodeState's layout starting
// at offset off of the tuple.
func DecodeAggState(t relation.Tuple, off int) (*AggState, error) {
	if off+stateWidth > len(t) {
		return nil, fmt.Errorf("ra: truncated aggregate state")
	}
	return &AggState{
		Count:   t[off].Int,
		Sum:     t[off+1].Flt,
		SumInt:  t[off+2].Int,
		AllInt:  t[off+3].Int == 1,
		started: t[off+4].Int == 1,
		Min:     t[off+5],
		Max:     t[off+6],
	}, nil
}

// AggStateWidth returns the number of tuple values one encoded state uses.
func AggStateWidth() int { return stateWidth }

// Final produces the aggregate value for the given function.
func (s *AggState) Final(f sql.AggFunc) relation.Value {
	switch f {
	case sql.AggCount:
		return relation.Int(s.Count)
	case sql.AggSum:
		if s.AllInt {
			return relation.Int(s.SumInt)
		}
		return relation.Float(s.Sum)
	case sql.AggMin:
		if !s.started {
			return relation.Null()
		}
		return s.Min
	case sql.AggMax:
		if !s.started {
			return relation.Null()
		}
		return s.Max
	case sql.AggAvg:
		if s.Count == 0 {
			return relation.Null()
		}
		return relation.Float(s.Sum / float64(s.Count))
	default:
		return relation.Null()
	}
}

func aggregate(rows []relation.Tuple, keyIdx []int, aggs []Agg, aggIdx []int) []relation.Tuple {
	type group struct {
		key    relation.Tuple
		states []*AggState
	}
	groups := make(map[string]*group)
	var order []string
	for _, t := range rows {
		key := t.Project(keyIdx)
		ks := relation.KeyString(key)
		g, ok := groups[ks]
		if !ok {
			g = &group{key: key, states: make([]*AggState, len(aggs))}
			for i := range g.states {
				g.states[i] = NewAggState()
			}
			groups[ks] = g
			order = append(order, ks)
		}
		for i := range aggs {
			if aggIdx[i] < 0 {
				g.states[i].AddCount()
			} else {
				g.states[i].Add(t[aggIdx[i]])
			}
		}
	}
	out := make([]relation.Tuple, 0, len(groups))
	for _, ks := range order {
		g := groups[ks]
		row := g.key.Clone()
		for i, a := range aggs {
			row = append(row, g.states[i].Final(a.Func))
		}
		out = append(out, row)
	}
	return out
}

func distinct(rows []relation.Tuple) []relation.Tuple {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, t := range rows {
		k := relation.KeyString(t)
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out
}

func orderBy(res *Result, keys []OrderKey) error {
	idx := make([]int, len(keys))
	for i, k := range keys {
		idx[i] = -1
		for j, c := range res.Cols {
			if c == k.Name {
				idx[i] = j
				break
			}
		}
		if idx[i] < 0 {
			return fmt.Errorf("ra: ORDER BY column %q missing from result", k.Name)
		}
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for i, k := range keys {
			c := relation.Compare(res.Rows[a][idx[i]], res.Rows[b][idx[i]])
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return nil
}

package ra

import (
	"sort"

	"zidian/internal/relation"
)

// EqClasses partitions the attribute references of a query into equality
// classes induced by its attr=attr predicates, and records the constant (if
// any) each class is pinned to by attr=const predicates. This is the
// "equality transitivity" used by the GET chase (Section 6.1) and by SPC
// minimization.
type EqClasses struct {
	parent map[ColRef]ColRef
	consts map[ColRef]relation.Value // root -> constant
	// Unsat is true when two different constants were forced equal; such a
	// query returns the empty answer on every database.
	Unsat bool
}

// BuildEqClasses computes the equality classes of q.
func BuildEqClasses(q *Query) *EqClasses {
	e := &EqClasses{
		parent: make(map[ColRef]ColRef),
		consts: make(map[ColRef]relation.Value),
	}
	for _, eq := range q.EqAttrs {
		e.union(eq.L, eq.R)
	}
	for _, c := range q.EqConsts {
		root := e.find(c.Col)
		if prev, ok := e.consts[root]; ok {
			if !relation.Equal(prev, c.Val) {
				e.Unsat = true
			}
			continue
		}
		e.consts[root] = c.Val
	}
	return e
}

func (e *EqClasses) find(c ColRef) ColRef {
	p, ok := e.parent[c]
	if !ok || p == c {
		return c
	}
	root := e.find(p)
	e.parent[c] = root
	return root
}

func (e *EqClasses) union(a, b ColRef) {
	ra, rb := e.find(a), e.find(b)
	if ra == rb {
		return
	}
	// Deterministic union: smaller root wins.
	if rb.String() < ra.String() {
		ra, rb = rb, ra
	}
	e.parent[rb] = ra
	if v, ok := e.consts[rb]; ok {
		if prev, ok2 := e.consts[ra]; ok2 {
			if !relation.Equal(prev, v) {
				e.Unsat = true
			}
		} else {
			e.consts[ra] = v
		}
		delete(e.consts, rb)
	}
}

// Find returns the canonical representative of c's class.
func (e *EqClasses) Find(c ColRef) ColRef { return e.find(c) }

// Same reports whether a and b are in the same class.
func (e *EqClasses) Same(a, b ColRef) bool { return e.find(a) == e.find(b) }

// Const returns the constant the class of c is pinned to, if any.
func (e *EqClasses) Const(c ColRef) (relation.Value, bool) {
	v, ok := e.consts[e.find(c)]
	return v, ok
}

// Members returns every reference known to be equal to c (including c),
// sorted for determinism. Only references that appeared in predicates are
// tracked; a reference never mentioned forms a singleton class.
func (e *EqClasses) Members(c ColRef) []ColRef {
	root := e.find(c)
	out := []ColRef{}
	seen := map[ColRef]bool{}
	add := func(x ColRef) {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	add(root)
	for x := range e.parent {
		if e.find(x) == root {
			add(x)
		}
	}
	if !seen[c] {
		add(c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// ConstCols returns all references pinned to constants, with their values,
// sorted for determinism.
func (e *EqClasses) ConstCols() []ConstEq {
	var out []ConstEq
	for root, v := range e.consts {
		for _, m := range e.Members(root) {
			out = append(out, ConstEq{Col: m, Val: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Col.String() < out[j].Col.String() })
	return out
}

package ra

import (
	"fmt"

	"zidian/internal/relation"
)

// CheckParams validates a bound parameter list against a template's arity
// and per-slot expected kinds, returning the (possibly numerically coerced)
// values to execute with. It is the single arity/type gate shared by the
// plan-level Bind and the reference-evaluation path.
func CheckParams(params []relation.Value, numParams int, kinds []relation.Kind) ([]relation.Value, error) {
	if len(params) != numParams {
		return nil, fmt.Errorf("ra: statement wants %d parameters, got %d", numParams, len(params))
	}
	if numParams == 0 {
		return nil, nil
	}
	out := make([]relation.Value, len(params))
	for i, v := range params {
		want := relation.KindNull
		if i < len(kinds) {
			want = kinds[i]
		}
		cv, err := relation.CoerceKind(v, want)
		if err != nil {
			return nil, fmt.Errorf("ra: parameter %d: %w", i, err)
		}
		out[i] = cv
	}
	return out, nil
}

// LimitOf resolves the query's effective LIMIT under already-checked bound
// values: the literal limit when no LIMIT ? slot exists, otherwise the
// slot's value, which must be a non-negative integer (CheckParams has
// coerced numerics to the slot's int kind by the time this runs).
func (q *Query) LimitOf(vals []relation.Value) (int, error) {
	if q.LimitParam == nil {
		return q.Limit, nil
	}
	slot := *q.LimitParam
	if slot < 0 || slot >= len(vals) {
		return 0, fmt.Errorf("ra: LIMIT parameter slot %d out of range (have %d)", slot, len(vals))
	}
	v := vals[slot]
	if v.Kind != relation.KindInt || v.Int < 0 {
		return 0, fmt.Errorf("ra: LIMIT parameter must be a non-negative integer, got %s", v)
	}
	return int(v.Int), nil
}

// BindParams substitutes bound values into a template query, returning an
// equivalent literal-only query: col = ? becomes a constant equality, `?`
// IN elements become literal elements, and `?` filter bounds become literal
// bounds. The receiver is not modified. It is the query-level counterpart of
// the plan-level Bind, used by the reference evaluator and by differential
// tests; the serving hot path binds compiled plans instead.
func (q *Query) BindParams(params []relation.Value) (*Query, error) {
	vals, err := CheckParams(params, q.NumParams, q.ParamKinds)
	if err != nil {
		return nil, err
	}
	if q.NumParams == 0 {
		return q, nil
	}
	out := *q
	out.NumParams = 0
	out.ParamKinds = nil
	if q.LimitParam != nil {
		n, err := q.LimitOf(vals)
		if err != nil {
			return nil, err
		}
		out.Limit = n
		out.LimitParam = nil
	}
	out.EqParams = nil
	out.EqConsts = append([]ConstEq{}, q.EqConsts...)
	for _, pe := range q.EqParams {
		out.EqConsts = append(out.EqConsts, ConstEq{Col: pe.Col, Val: vals[pe.Slot]})
	}
	out.Ins = nil
	for _, in := range q.Ins {
		b := InPred{Col: in.Col, Vals: append([]relation.Value{}, in.Vals...)}
		for _, slot := range in.Slots {
			b.Vals = append(b.Vals, vals[slot])
		}
		out.Ins = append(out.Ins, b)
	}
	out.Filters = nil
	for _, f := range q.Filters {
		if f.Param != nil {
			lit := vals[*f.Param]
			f = Filter{Col: f.Col, Op: f.Op, Lit: &lit}
		}
		out.Filters = append(out.Filters, f)
	}
	return &out, nil
}

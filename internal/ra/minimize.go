package ra

import (
	"zidian/internal/relation"
)

// This file implements SPC (conjunctive query) minimization, the min(Q) of
// Conditions (II) and (III). Minimization folds redundant atoms: an atom a
// can be removed when there is a homomorphism from Q to Q\{a} that fixes the
// distinguished references (projection, aggregate inputs, filter and IN
// columns) and maps constants to themselves. By the homomorphism theorem
// such a removal preserves equivalence. The search is exponential in the
// number of atoms in the worst case (the problem is NP-complete), which is
// fine at typical query sizes.

// term is a tableau entry: either a variable (an equality-class root) or a
// constant.
type term struct {
	isConst bool
	val     relation.Value
	v       ColRef // class root when isConst is false
}

func (e *EqClasses) termOf(c ColRef) term {
	if v, ok := e.Const(c); ok {
		return term{isConst: true, val: v}
	}
	return term{v: e.Find(c)}
}

// Minimize returns the minimal equivalent query min(Q). The receiver is not
// modified. Filters and IN predicates are treated as distinguished, which is
// sound (it never merges atoms whose removal could change the answer) though
// it may keep a non-minimal query in corner cases involving comparisons.
func (q *Query) Minimize() *Query {
	cur := q
	for {
		removed := false
		for _, a := range cur.Atoms {
			if next, ok := cur.tryRemoveAtom(a.Alias); ok {
				cur = next
				removed = true
				break
			}
		}
		if !removed {
			return cur
		}
	}
}

// distinguished returns the references that a homomorphism must fix: outputs,
// aggregate inputs, filter, IN and parameter columns. Parameter equalities
// pin a class to a value unknown until bind time, so — like filters — they
// must survive minimization verbatim.
func (q *Query) distinguished() []ColRef {
	var out []ColRef
	out = append(out, q.Proj...)
	for _, a := range q.Aggs {
		if !a.Star {
			out = append(out, a.Col)
		}
	}
	for _, f := range q.Filters {
		out = append(out, f.Col)
		if f.RCol != nil {
			out = append(out, *f.RCol)
		}
	}
	for _, in := range q.Ins {
		out = append(out, in.Col)
	}
	for _, pe := range q.EqParams {
		out = append(out, pe.Col)
	}
	return out
}

// tryRemoveAtom attempts to fold away the atom with the given alias,
// returning the reduced equivalent query if it succeeds.
func (q *Query) tryRemoveAtom(alias string) (*Query, bool) {
	if len(q.Atoms) <= 1 {
		return nil, false
	}
	eq := BuildEqClasses(q)
	if eq.Unsat {
		return nil, false // unsatisfiable queries are left alone
	}

	// rewrite maps a reference on the removed atom to an equal surviving
	// reference, or fails.
	rewrite := func(c ColRef) (ColRef, bool) {
		if c.Alias != alias {
			return c, true
		}
		for _, m := range eq.Members(c) {
			if m.Alias != alias {
				return m, true
			}
		}
		return ColRef{}, false
	}

	// Build the candidate query Q' with the atom dropped and references
	// rewritten. Equality structure is preserved by re-emitting each class
	// as a chain over the surviving members (connectivity through the
	// removed atom is implied by transitivity in Q, so Q ⊆ Q' holds).
	next := &Query{
		OutNames:   q.OutNames,
		Distinct:   q.Distinct,
		OrderBy:    q.OrderBy,
		Limit:      q.Limit,
		LimitParam: q.LimitParam,
		NumParams:  q.NumParams,
		ParamKinds: q.ParamKinds,
	}
	for _, a := range q.Atoms {
		if a.Alias != alias {
			next.Atoms = append(next.Atoms, a)
		}
	}
	// Surviving equality chains per class.
	classSeen := map[ColRef]bool{}
	allRefs := q.allRefs()
	for _, c := range allRefs {
		root := eq.Find(c)
		if classSeen[root] {
			continue
		}
		classSeen[root] = true
		var members []ColRef
		for _, m := range eq.Members(root) {
			if m.Alias != alias {
				members = append(members, m)
			}
		}
		for i := 1; i < len(members); i++ {
			next.EqAttrs = append(next.EqAttrs, AttrEq{L: members[0], R: members[i]})
		}
		if v, ok := eq.Const(root); ok && len(members) > 0 {
			next.EqConsts = append(next.EqConsts, ConstEq{Col: members[0], Val: v})
		}
	}
	for _, c := range q.Proj {
		rc, ok := rewrite(c)
		if !ok {
			return nil, false
		}
		next.Proj = append(next.Proj, rc)
	}
	for _, a := range q.Aggs {
		na := a
		if !a.Star {
			rc, ok := rewrite(a.Col)
			if !ok {
				return nil, false
			}
			na.Col = rc
		}
		next.Aggs = append(next.Aggs, na)
	}
	for _, f := range q.Filters {
		nf := f
		rc, ok := rewrite(f.Col)
		if !ok {
			return nil, false
		}
		nf.Col = rc
		if f.RCol != nil {
			rr, ok := rewrite(*f.RCol)
			if !ok {
				return nil, false
			}
			nf.RCol = &rr
		}
		next.Filters = append(next.Filters, nf)
	}
	for _, in := range q.Ins {
		rc, ok := rewrite(in.Col)
		if !ok {
			return nil, false
		}
		next.Ins = append(next.Ins, InPred{Col: rc, Vals: in.Vals, Slots: in.Slots})
	}
	for _, pe := range q.EqParams {
		rc, ok := rewrite(pe.Col)
		if !ok {
			return nil, false
		}
		next.EqParams = append(next.EqParams, ParamEq{Col: rc, Slot: pe.Slot})
	}

	// Homomorphism search Q -> Q'.
	if !homomorphism(q, eq, next) {
		return nil, false
	}
	return next, true
}

// allRefs lists every reference appearing anywhere in the query.
func (q *Query) allRefs() []ColRef {
	var out []ColRef
	for _, e := range q.EqAttrs {
		out = append(out, e.L, e.R)
	}
	for _, c := range q.EqConsts {
		out = append(out, c.Col)
	}
	for _, pe := range q.EqParams {
		out = append(out, pe.Col)
	}
	for _, in := range q.Ins {
		out = append(out, in.Col)
	}
	for _, f := range q.Filters {
		out = append(out, f.Col)
		if f.RCol != nil {
			out = append(out, *f.RCol)
		}
	}
	out = append(out, q.Proj...)
	for _, a := range q.Aggs {
		if !a.Star {
			out = append(out, a.Col)
		}
	}
	return out
}

// homomorphism reports whether there is a homomorphism from src (with
// equality classes srcEq) into dst that fixes distinguished references and
// constants.
func homomorphism(src *Query, srcEq *EqClasses, dst *Query) bool {
	dstEq := BuildEqClasses(dst)
	if dstEq.Unsat {
		return false
	}

	// Tableau rows.
	type row struct {
		rel   string
		terms []term
	}
	srcRows := make([]row, len(src.Atoms))
	for i, a := range src.Atoms {
		r := row{rel: a.Rel, terms: make([]term, len(a.Schema.Attrs))}
		for j, attr := range a.Schema.Attrs {
			r.terms[j] = srcEq.termOf(ColRef{Alias: a.Alias, Attr: attr.Name})
		}
		srcRows[i] = r
	}
	dstRows := make([]row, len(dst.Atoms))
	for i, a := range dst.Atoms {
		r := row{rel: a.Rel, terms: make([]term, len(a.Schema.Attrs))}
		for j, attr := range a.Schema.Attrs {
			r.terms[j] = dstEq.termOf(ColRef{Alias: a.Alias, Attr: attr.Name})
		}
		dstRows[i] = r
	}

	// h maps source variable roots to destination terms.
	h := make(map[ColRef]term)
	bind := func(v ColRef, t term) bool {
		if prev, ok := h[v]; ok {
			return termEqual(prev, t)
		}
		h[v] = t
		return true
	}
	// Distinguished references must be fixed: the source term of d must map
	// to the destination term of d's surviving image. The images were
	// computed during rewrite; recompute here from the destination query's
	// distinguished list, which is positionally parallel to the source's.
	srcDist := src.distinguished()
	dstDist := dst.distinguished()
	if len(srcDist) != len(dstDist) {
		return false
	}
	for i := range srcDist {
		st := srcEq.termOf(srcDist[i])
		dt := dstEq.termOf(dstDist[i])
		if st.isConst {
			if !termEqual(st, dt) {
				return false
			}
			continue
		}
		if !bind(st.v, dt) {
			return false
		}
	}

	// Backtracking assignment of source rows to destination rows.
	var assign func(i int) bool
	assign = func(i int) bool {
		if i == len(srcRows) {
			return true
		}
		sr := srcRows[i]
		for _, dr := range dstRows {
			if dr.rel != sr.rel || len(dr.terms) != len(sr.terms) {
				continue
			}
			// Trail for backtracking.
			var trail []ColRef
			ok := true
			for j := range sr.terms {
				st, dt := sr.terms[j], dr.terms[j]
				if st.isConst {
					if !termEqual(st, dt) {
						ok = false
						break
					}
					continue
				}
				if prev, bound := h[st.v]; bound {
					if !termEqual(prev, dt) {
						ok = false
						break
					}
					continue
				}
				h[st.v] = dt
				trail = append(trail, st.v)
			}
			if ok && assign(i+1) {
				return true
			}
			for _, v := range trail {
				delete(h, v)
			}
		}
		return false
	}
	return assign(0)
}

func termEqual(a, b term) bool {
	if a.isConst != b.isConst {
		return false
	}
	if a.isConst {
		return relation.Equal(a.val, b.val)
	}
	return a.v == b.v
}

package ra

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"zidian/internal/relation"
)

// paperDB builds the simplified TPC-H schema of the paper's Example 1 with
// a small instance.
func paperDB() *relation.Database {
	db := relation.NewDatabase()

	nation := relation.NewRelation(relation.MustSchema("NATION",
		[]relation.Attr{{Name: "nationkey", Kind: relation.KindInt}, {Name: "name", Kind: relation.KindString}},
		[]string{"nationkey"}))
	nation.MustInsert(relation.Tuple{relation.Int(1), relation.String("GERMANY")})
	nation.MustInsert(relation.Tuple{relation.Int(2), relation.String("FRANCE")})
	db.Add(nation)

	supplier := relation.NewRelation(relation.MustSchema("SUPPLIER",
		[]relation.Attr{{Name: "suppkey", Kind: relation.KindInt}, {Name: "nationkey", Kind: relation.KindInt}},
		[]string{"suppkey"}))
	supplier.MustInsert(relation.Tuple{relation.Int(10), relation.Int(1)})
	supplier.MustInsert(relation.Tuple{relation.Int(11), relation.Int(1)})
	supplier.MustInsert(relation.Tuple{relation.Int(12), relation.Int(2)})
	db.Add(supplier)

	partsupp := relation.NewRelation(relation.MustSchema("PARTSUPP",
		[]relation.Attr{
			{Name: "partkey", Kind: relation.KindInt}, {Name: "suppkey", Kind: relation.KindInt},
			{Name: "supplycost", Kind: relation.KindInt}, {Name: "availqty", Kind: relation.KindInt},
		},
		[]string{"partkey", "suppkey"}))
	partsupp.MustInsert(relation.Tuple{relation.Int(100), relation.Int(10), relation.Int(5), relation.Int(1)})
	partsupp.MustInsert(relation.Tuple{relation.Int(101), relation.Int(10), relation.Int(7), relation.Int(2)})
	partsupp.MustInsert(relation.Tuple{relation.Int(100), relation.Int(11), relation.Int(3), relation.Int(3)})
	partsupp.MustInsert(relation.Tuple{relation.Int(100), relation.Int(12), relation.Int(9), relation.Int(4)})
	db.Add(partsupp)
	return db
}

const paperQ1 = `select PS.suppkey, SUM(PS.supplycost)
	from PARTSUPP as PS, SUPPLIER as S, NATION as N
	where PS.suppkey = S.suppkey and S.nationkey = N.nationkey and N.name = 'GERMANY'
	group by PS.suppkey`

func TestBindPaperQ1(t *testing.T) {
	q := MustParse(paperQ1, paperDB())
	if len(q.Atoms) != 3 || len(q.EqAttrs) != 2 || len(q.EqConsts) != 1 {
		t.Fatalf("bound query: %s", q)
	}
	if len(q.Proj) != 1 || q.Proj[0] != (ColRef{Alias: "PS", Attr: "suppkey"}) {
		t.Fatalf("proj = %v", q.Proj)
	}
	if len(q.Aggs) != 1 || q.Aggs[0].Col != (ColRef{Alias: "PS", Attr: "supplycost"}) {
		t.Fatalf("aggs = %v", q.Aggs)
	}
	if !q.IsAggregate() {
		t.Fatal("aggregate query")
	}
	if q.Atom("PS") == nil || q.Atom("nope") != nil {
		t.Fatal("Atom lookup")
	}
}

func TestBindErrors(t *testing.T) {
	db := paperDB()
	bad := []string{
		"select X.a from NOPE X",
		"select S.bogus from SUPPLIER S",
		"select Z.suppkey from SUPPLIER S",
		"select suppkey from SUPPLIER S, PARTSUPP PS",         // ambiguous
		"select S.suppkey, SUM(S.nationkey) from SUPPLIER S",  // agg mix without group by
		"select S.suppkey from SUPPLIER S group by S.suppkey", // group by without aggs
		"select S.suppkey from SUPPLIER S, SUPPLIER S",        // duplicate alias
		"select S.nationkey, COUNT(*) from SUPPLIER S group by S.suppkey",
		"select S.suppkey from SUPPLIER S order by S.nationkey", // order by non-output
		"select * from SUPPLIER S group by S.suppkey",
	}
	for _, src := range bad {
		if _, err := Parse(src, db); err == nil {
			t.Fatalf("expected bind error for %q", src)
		}
	}
}

func TestBindUnqualifiedResolution(t *testing.T) {
	q := MustParse("select name from NATION N where nationkey = 1", paperDB())
	if q.Proj[0] != (ColRef{Alias: "N", Attr: "name"}) {
		t.Fatalf("proj = %v", q.Proj)
	}
	if q.EqConsts[0].Col != (ColRef{Alias: "N", Attr: "nationkey"}) {
		t.Fatalf("const = %v", q.EqConsts)
	}
}

func TestEqClasses(t *testing.T) {
	q := MustParse(paperQ1, paperDB())
	eq := BuildEqClasses(q)
	if eq.Unsat {
		t.Fatal("satisfiable query")
	}
	if !eq.Same(ColRef{"PS", "suppkey"}, ColRef{"S", "suppkey"}) {
		t.Fatal("PS.suppkey ~ S.suppkey")
	}
	if eq.Same(ColRef{"PS", "suppkey"}, ColRef{"N", "nationkey"}) {
		t.Fatal("suppkey !~ nationkey")
	}
	if v, ok := eq.Const(ColRef{"N", "name"}); !ok || v.Str != "GERMANY" {
		t.Fatalf("const = %v, %v", v, ok)
	}
	members := eq.Members(ColRef{"S", "nationkey"})
	if len(members) != 2 {
		t.Fatalf("members = %v", members)
	}
	if got := eq.ConstCols(); len(got) != 1 || got[0].Val.Str != "GERMANY" {
		t.Fatalf("const cols = %v", got)
	}
}

func TestEqClassesTransitiveConst(t *testing.T) {
	db := paperDB()
	q := MustParse(`select S.suppkey from SUPPLIER S, NATION N
		where S.nationkey = N.nationkey and N.nationkey = 1`, db)
	eq := BuildEqClasses(q)
	if v, ok := eq.Const(ColRef{"S", "nationkey"}); !ok || v.Int != 1 {
		t.Fatalf("constant must propagate through the class: %v %v", v, ok)
	}
}

func TestEqClassesUnsat(t *testing.T) {
	q := MustParse(`select S.suppkey from SUPPLIER S, NATION N
		where S.nationkey = N.nationkey and N.nationkey = 1 and S.nationkey = 2`, paperDB())
	if !BuildEqClasses(q).Unsat {
		t.Fatal("conflicting constants must mark the classes unsatisfiable")
	}
}

func TestAttrsUsed(t *testing.T) {
	q := MustParse(paperQ1, paperDB())
	got := q.AttrsUsed("PS")
	want := []string{"suppkey", "supplycost"} // lexicographic: 'k' < 'l'
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("AttrsUsed(PS) = %v", got)
	}
	if got := q.AttrsUsed("N"); len(got) != 2 {
		t.Fatalf("AttrsUsed(N) = %v", got)
	}
}

func TestEvaluatePaperQ1(t *testing.T) {
	db := paperDB()
	q := MustParse(paperQ1, db)
	res, err := Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// German suppliers are 10 and 11: sums 5+7=12 and 3.
	want := &Result{
		Cols: q.OutNames,
		Rows: []relation.Tuple{
			{relation.Int(10), relation.Int(12)},
			{relation.Int(11), relation.Int(3)},
		},
	}
	if !res.Equal(want) {
		t.Fatalf("result = %v", res.Rows)
	}
}

func TestEvaluateProjectionAndFilters(t *testing.T) {
	db := paperDB()
	res, err := Evaluate(MustParse(
		"select PS.partkey from PARTSUPP PS where PS.supplycost > 4 and PS.availqty < 3", db), db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvaluateIn(t *testing.T) {
	db := paperDB()
	res, err := Evaluate(MustParse(
		"select PS.supplycost from PARTSUPP PS where PS.suppkey in (10, 12)", db), db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvaluateDistinctOrderLimit(t *testing.T) {
	db := paperDB()
	res, err := Evaluate(MustParse(
		"select distinct PS.partkey from PARTSUPP PS order by PS.partkey desc limit 1", db), db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 101 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvaluateGlobalAggregates(t *testing.T) {
	db := paperDB()
	res, err := Evaluate(MustParse(
		"select COUNT(*), SUM(PS.supplycost), MIN(PS.supplycost), MAX(PS.supplycost), AVG(PS.supplycost) from PARTSUPP PS", db), db)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].Int != 4 || row[1].Int != 24 || row[2].Int != 3 || row[3].Int != 9 {
		t.Fatalf("aggregates = %v", row)
	}
	if row[4].Flt != 6.0 {
		t.Fatalf("avg = %v", row[4])
	}
}

func TestEvaluateCrossProductAndColFilter(t *testing.T) {
	db := paperDB()
	// Cross product with a column-column filter across atoms.
	res, err := Evaluate(MustParse(
		"select S.suppkey, N.nationkey from SUPPLIER S, NATION N where S.nationkey < N.nationkey", db), db)
	if err != nil {
		t.Fatal(err)
	}
	// Suppliers with nationkey 1 pair with nation 2 only: suppliers 10, 11.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvaluateSelfJoin(t *testing.T) {
	db := paperDB()
	// Pairs of partsupp rows for the same part from different suppliers.
	res, err := Evaluate(MustParse(
		`select A.suppkey, B.suppkey from PARTSUPP A, PARTSUPP B
		 where A.partkey = B.partkey and A.suppkey < B.suppkey`, db), db)
	if err != nil {
		t.Fatal(err)
	}
	// Part 100 has suppliers 10,11,12 -> pairs (10,11),(10,12),(11,12).
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestMinimizeRemovesRedundantRenaming(t *testing.T) {
	db := paperDB()
	// Example 5's Q2: PARTSUPP joined with a redundant renaming of itself.
	q2 := MustParse(`select PS.suppkey, PS.supplycost
		from NATION N, SUPPLIER S, PARTSUPP PS, PARTSUPP PS2
		where N.name = 'GERMANY' and N.nationkey = S.nationkey
		  and S.suppkey = PS.suppkey and PS.availqty = PS2.availqty
		  and PS.partkey = PS2.partkey and PS.suppkey = PS2.suppkey
		  and PS.supplycost = PS2.supplycost`, db)
	m := q2.Minimize()
	if len(m.Atoms) != 3 {
		t.Fatalf("min(Q2) atoms = %d (%s)", len(m.Atoms), m)
	}
	// Equivalence: both evaluate to the same answer.
	r1, err := Evaluate(q2, db)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Evaluate(m, db)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) {
		t.Fatalf("minimization changed the answer: %v vs %v", r1.Rows, r2.Rows)
	}
}

func TestMinimizeKeepsNonRedundantSelfJoin(t *testing.T) {
	db := paperDB()
	q := MustParse(`select A.suppkey, B.suppkey from PARTSUPP A, PARTSUPP B
		where A.partkey = B.partkey and A.suppkey < B.suppkey`, db)
	m := q.Minimize()
	if len(m.Atoms) != 2 {
		t.Fatalf("non-redundant self join must keep both atoms: %s", m)
	}
}

func TestMinimizeKeepsMinimalQuery(t *testing.T) {
	db := paperDB()
	q := MustParse(paperQ1, db)
	m := q.Minimize()
	if len(m.Atoms) != 3 {
		t.Fatalf("Q1 is already minimal: %s", m)
	}
}

func TestMinimizeIdenticalAtoms(t *testing.T) {
	db := paperDB()
	q := MustParse(`select A.nationkey from SUPPLIER A, SUPPLIER B
		where A.suppkey = B.suppkey and A.nationkey = B.nationkey`, db)
	m := q.Minimize()
	if len(m.Atoms) != 1 {
		t.Fatalf("identical atom must fold: %s", m)
	}
	r1, _ := Evaluate(q, db)
	r2, err := Evaluate(m, db)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) {
		t.Fatalf("fold changed answer: %v vs %v", r1.Rows, r2.Rows)
	}
}

func TestMinimizeRespectsFilters(t *testing.T) {
	db := paperDB()
	// Each atom carries its own filter; folding either one would conjoin the
	// filters onto a single atom and change the answer, so both must stay.
	q := MustParse(`select A.partkey from PARTSUPP A, PARTSUPP B
		where A.partkey = B.partkey and A.supplycost > 4 and B.availqty > 2`, db)
	m := q.Minimize()
	if len(m.Atoms) != 2 {
		t.Fatalf("independently filtered atoms must not fold: %s", m)
	}
	r1, _ := Evaluate(q, db)
	r2, err := Evaluate(m, db)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) {
		t.Fatalf("minimization changed the answer: %v vs %v", r1.Rows, r2.Rows)
	}
}

func TestMinimizeFoldsImpliedFilterAtom(t *testing.T) {
	db := paperDB()
	// Under set semantics the unfiltered atom A is implied by B (same
	// relation, shared join attribute), so min(Q) has a single atom.
	q := MustParse(`select distinct A.partkey from PARTSUPP A, PARTSUPP B
		where A.partkey = B.partkey and B.supplycost > 4`, db)
	m := q.Minimize()
	if len(m.Atoms) != 1 {
		t.Fatalf("implied atom must fold: %s", m)
	}
	r1, _ := Evaluate(q, db)
	r2, err := Evaluate(m, db)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) {
		t.Fatalf("fold changed answer (distinct): %v vs %v", r1.Rows, r2.Rows)
	}
}

func TestResultEqual(t *testing.T) {
	a := &Result{Cols: []string{"x"}, Rows: []relation.Tuple{{relation.Int(1)}, {relation.Int(2)}}}
	b := &Result{Cols: []string{"x"}, Rows: []relation.Tuple{{relation.Int(2)}, {relation.Int(1)}}}
	if !a.Equal(b) {
		t.Fatal("order must not matter")
	}
	c := &Result{Cols: []string{"y"}, Rows: b.Rows}
	if a.Equal(c) {
		t.Fatal("columns must match")
	}
	d := &Result{Cols: []string{"x"}, Rows: []relation.Tuple{{relation.Int(1)}}}
	if a.Equal(d) {
		t.Fatal("row counts must match")
	}
}

func TestAggStateMerge(t *testing.T) {
	a, b := NewAggState(), NewAggState()
	a.Add(relation.Int(1))
	a.Add(relation.Int(5))
	b.Add(relation.Int(3))
	b.AddCount()
	a.Merge(b)
	if a.Count != 4 {
		t.Fatalf("count = %d", a.Count)
	}
	if got := a.Final("SUM"); got.Int != 9 {
		t.Fatalf("sum = %v", got)
	}
	if got := a.Final("MIN"); got.Int != 1 {
		t.Fatalf("min = %v", got)
	}
	if got := a.Final("MAX"); got.Int != 5 {
		t.Fatalf("max = %v", got)
	}
	empty := NewAggState()
	if !empty.Final("MIN").IsNull() || !empty.Final("AVG").IsNull() {
		t.Fatal("empty aggregates are NULL")
	}
}

// TestQuickMinimizationPreservesAnswers generates random self-join queries
// and checks that min(Q) evaluates identically to Q under set semantics
// (DISTINCT), the fragment minimization is defined on.
func TestQuickMinimizationPreservesAnswers(t *testing.T) {
	db := paperDB()
	r := rand.New(rand.NewSource(7))
	attrs := []string{"partkey", "suppkey", "supplycost", "availqty"}
	for trial := 0; trial < 80; trial++ {
		nAtoms := 2 + r.Intn(2)
		var from, preds []string
		for i := 0; i < nAtoms; i++ {
			from = append(from, fmt.Sprintf("PARTSUPP A%d", i))
		}
		// Random equalities between consecutive atoms.
		for i := 1; i < nAtoms; i++ {
			a := attrs[r.Intn(2)] // join on partkey or suppkey
			preds = append(preds, fmt.Sprintf("A%d.%s = A%d.%s", i-1, a, i, a))
		}
		// Occasionally a constant or a filter.
		if r.Intn(2) == 0 {
			preds = append(preds, fmt.Sprintf("A0.suppkey = %d", r.Intn(13)))
		}
		if r.Intn(3) == 0 {
			preds = append(preds, fmt.Sprintf("A%d.supplycost > %d", r.Intn(nAtoms), r.Intn(8)))
		}
		proj := fmt.Sprintf("A%d.%s", r.Intn(nAtoms), attrs[r.Intn(len(attrs))])
		src := "select distinct " + proj + " from " + strings.Join(from, ", ") +
			" where " + strings.Join(preds, " and ")
		q := MustParse(src, db)
		m := q.Minimize()
		if len(m.Atoms) > len(q.Atoms) {
			t.Fatalf("minimization grew the query: %s", src)
		}
		want, err := Evaluate(q, db)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		got, err := Evaluate(m, db)
		if err != nil {
			t.Fatalf("min(%s): %v", src, err)
		}
		if !got.Equal(want) {
			t.Fatalf("minimization changed the answer of %q:\nmin = %s\n got %v\nwant %v",
				src, m, got.Rows, want.Rows)
		}
	}
}

// Package ra models SPC and RAaggr queries over a relational schema: binding
// from the SQL AST, equality classes, tableau-style SPC minimization, and a
// reference in-memory evaluator used as ground truth by tests and as the
// compute layer of the TaaV baseline.
package ra

import (
	"fmt"
	"sort"
	"strings"

	"zidian/internal/relation"
	"zidian/internal/sql"
)

// Atom is one relation occurrence in the FROM clause.
type Atom struct {
	Rel    string
	Alias  string
	Schema *relation.Schema
}

// ColRef is a bound, alias-qualified attribute reference.
type ColRef struct {
	Alias string
	Attr  string
}

// String renders the reference as "alias.attr".
func (c ColRef) String() string { return c.Alias + "." + c.Attr }

// AttrEq is an equality join/selection predicate between two attributes.
type AttrEq struct{ L, R ColRef }

// ConstEq is an equality selection with a constant.
type ConstEq struct {
	Col ColRef
	Val relation.Value
}

// ParamEq is an equality selection with a bind-time parameter (col = ?).
// The value is unknown when the template is planned but fixed for each
// execution, so the planner treats the class as constant-pinned: its value
// seeds the chase, and the concrete literal is injected by Bind.
type ParamEq struct {
	Col  ColRef
	Slot int // 0-based placeholder index
}

// InPred is a disjunctive constant selection col IN (v1..vn). Slots lists
// the placeholder indices of `?` elements; Vals holds the literal elements.
type InPred struct {
	Col   ColRef
	Vals  []relation.Value
	Slots []int
}

// Filter is a non-equality comparison: col op literal, col op `?`, or
// col op col.
type Filter struct {
	Col   ColRef
	Op    sql.CmpOp
	Lit   *relation.Value
	Param *int // placeholder index for a `?` RHS
	RCol  *ColRef
}

// Agg is one aggregate output.
type Agg struct {
	Func sql.AggFunc
	Col  ColRef
	Star bool
	Name string // output column name
}

// Query is a bound RAaggr query: an SPC core (atoms, equalities, filters,
// projection) plus optional group-by aggregates, DISTINCT, ORDER BY, LIMIT.
type Query struct {
	Atoms    []Atom
	EqAttrs  []AttrEq
	EqConsts []ConstEq
	EqParams []ParamEq
	Ins      []InPred
	Filters  []Filter
	// Proj holds the plain output columns. When Aggs is non-empty these are
	// exactly the group-by keys (global aggregates have empty Proj).
	Proj []ColRef
	Aggs []Agg
	// OutNames gives the output column names in final order: plain columns
	// first (as listed in SELECT), then aggregates.
	OutNames []string
	Distinct bool
	OrderBy  []OrderKey
	Limit    int // -1 when absent
	// LimitParam is the placeholder slot of a LIMIT ? clause (nil for a
	// literal or absent limit). The slot's expected kind is int and the
	// bound value must be non-negative; it shapes only the answer cut, so
	// the plan template is independent of it.
	LimitParam *int
	// NumParams counts the `?` placeholders; a query with NumParams > 0 is a
	// template and must be bound (plan-level Bind, or BindParams here) with
	// exactly that many values before execution.
	NumParams int
	// ParamKinds records, per placeholder slot, the relation.Kind of the
	// column the placeholder is compared with (or inserted into). Bind
	// validates supplied values against it; KindNull means unconstrained.
	ParamKinds []relation.Kind
}

// OrderKey is one ORDER BY entry, referring to an output column by name.
type OrderKey struct {
	Name string
	Desc bool
}

// IsAggregate reports whether the query has group-by aggregates.
func (q *Query) IsAggregate() bool { return len(q.Aggs) > 0 }

// Atom returns the atom with the given alias, or nil.
func (q *Query) Atom(alias string) *Atom {
	for i := range q.Atoms {
		if q.Atoms[i].Alias == alias {
			return &q.Atoms[i]
		}
	}
	return nil
}

// Bind resolves a parsed SQL query against a database schema, checking that
// every table and attribute exists and that references are unambiguous.
func Bind(ast *sql.Query, db *relation.Database) (*Query, error) {
	q := &Query{Limit: ast.Limit, Distinct: ast.Distinct}
	seen := make(map[string]bool)
	for _, ref := range ast.From {
		schema := db.Schema(ref.Name)
		if schema == nil {
			return nil, fmt.Errorf("ra: unknown relation %q", ref.Name)
		}
		if seen[ref.Alias] {
			return nil, fmt.Errorf("ra: duplicate alias %q", ref.Alias)
		}
		seen[ref.Alias] = true
		q.Atoms = append(q.Atoms, Atom{Rel: ref.Name, Alias: ref.Alias, Schema: schema})
	}

	resolve := func(c sql.Col) (ColRef, error) {
		if c.Table != "" {
			a := q.Atom(c.Table)
			if a == nil {
				return ColRef{}, fmt.Errorf("ra: unknown alias %q in %s", c.Table, c)
			}
			if !a.Schema.Has(c.Name) {
				return ColRef{}, fmt.Errorf("ra: relation %s has no attribute %q", a.Rel, c.Name)
			}
			return ColRef{Alias: c.Table, Attr: c.Name}, nil
		}
		var found *Atom
		for i := range q.Atoms {
			if q.Atoms[i].Schema.Has(c.Name) {
				if found != nil {
					return ColRef{}, fmt.Errorf("ra: ambiguous attribute %q", c.Name)
				}
				found = &q.Atoms[i]
			}
		}
		if found == nil {
			return ColRef{}, fmt.Errorf("ra: unknown attribute %q", c.Name)
		}
		return ColRef{Alias: found.Alias, Attr: c.Name}, nil
	}

	q.NumParams = ast.NumParams
	if q.NumParams > 0 {
		q.ParamKinds = make([]relation.Kind, q.NumParams)
	}
	if ast.LimitParam != nil {
		slot := ast.LimitParam.Index
		q.LimitParam = &slot
		if slot >= 0 && slot < len(q.ParamKinds) {
			q.ParamKinds[slot] = relation.KindInt
		}
	}
	// kindOf returns the declared kind of a bound column, for param slot
	// type expectations.
	kindOf := func(c ColRef) relation.Kind {
		a := q.Atom(c.Alias)
		if a == nil {
			return relation.KindNull
		}
		if i := a.Schema.Index(c.Attr); i >= 0 {
			return a.Schema.Attrs[i].Kind
		}
		return relation.KindNull
	}
	expectKind := func(slot int, c ColRef) {
		if slot >= 0 && slot < len(q.ParamKinds) {
			q.ParamKinds[slot] = kindOf(c)
		}
	}
	// coerceLit aligns a predicate literal with its column's declared kind
	// when the conversion is lossless (44.0 over an int column becomes the
	// int 44), mirroring what CheckParams does for `?` bindings. Compare
	// treats numeric kinds uniformly, so this never changes a predicate's
	// truth value — but key-encoded access paths (constant ∝ probes, index
	// postings, posting-range fences) partition by kind tag, and only a
	// kind-aligned literal finds the stored keys. Lossy mixes (44.5 over an
	// int column) stay as written: equality on them is unsatisfiable either
	// way, and the planner's range path rounds its fences separately.
	coerceLit := func(c ColRef, v relation.Value) relation.Value {
		if cv, err := relation.CoerceKind(v, kindOf(c)); err == nil {
			return cv
		}
		return v
	}

	// WHERE clause: classify conjuncts.
	for _, p := range ast.Where {
		left, err := resolve(p.Left)
		if err != nil {
			return nil, err
		}
		switch {
		case p.IsIn():
			for _, pr := range p.InParams {
				expectKind(pr.Index, left)
			}
			switch {
			case len(p.InParams) == 0 && len(p.In) == 1:
				q.EqConsts = append(q.EqConsts, ConstEq{Col: left, Val: coerceLit(left, p.In[0])})
			case len(p.In) == 0 && len(p.InParams) == 1:
				q.EqParams = append(q.EqParams, ParamEq{Col: left, Slot: p.InParams[0].Index})
			default:
				in := InPred{Col: left}
				for _, v := range p.In {
					in.Vals = append(in.Vals, coerceLit(left, v))
				}
				for _, pr := range p.InParams {
					in.Slots = append(in.Slots, pr.Index)
				}
				q.Ins = append(q.Ins, in)
			}
		case p.Op == sql.OpEq && p.Param != nil:
			expectKind(p.Param.Index, left)
			q.EqParams = append(q.EqParams, ParamEq{Col: left, Slot: p.Param.Index})
		case p.Op == sql.OpEq && p.Lit != nil:
			q.EqConsts = append(q.EqConsts, ConstEq{Col: left, Val: coerceLit(left, *p.Lit)})
		case p.Op == sql.OpEq && p.Right != nil:
			right, err := resolve(*p.Right)
			if err != nil {
				return nil, err
			}
			q.EqAttrs = append(q.EqAttrs, AttrEq{L: left, R: right})
		case p.Param != nil:
			expectKind(p.Param.Index, left)
			slot := p.Param.Index
			q.Filters = append(q.Filters, Filter{Col: left, Op: p.Op, Param: &slot})
		case p.Lit != nil:
			lit := coerceLit(left, *p.Lit)
			q.Filters = append(q.Filters, Filter{Col: left, Op: p.Op, Lit: &lit})
		case p.Right != nil:
			right, err := resolve(*p.Right)
			if err != nil {
				return nil, err
			}
			q.Filters = append(q.Filters, Filter{Col: left, Op: p.Op, RCol: &right})
		default:
			return nil, fmt.Errorf("ra: malformed predicate %v", p)
		}
	}

	// SELECT list.
	if ast.Star {
		if ast.GroupBy != nil {
			return nil, fmt.Errorf("ra: SELECT * with GROUP BY is not supported")
		}
		for _, a := range q.Atoms {
			for _, attr := range a.Schema.Attrs {
				c := ColRef{Alias: a.Alias, Attr: attr.Name}
				q.Proj = append(q.Proj, c)
				q.OutNames = append(q.OutNames, c.String())
			}
		}
	} else {
		var plainNames []string
		for _, item := range ast.Items {
			if item.Agg == sql.AggNone {
				c, err := resolve(item.Col)
				if err != nil {
					return nil, err
				}
				name := item.Alias
				if name == "" {
					name = c.String()
				}
				q.Proj = append(q.Proj, c)
				plainNames = append(plainNames, name)
				continue
			}
			agg := Agg{Func: item.Agg, Star: item.Star, Name: item.Alias}
			if !item.Star {
				c, err := resolve(item.Col)
				if err != nil {
					return nil, err
				}
				agg.Col = c
			}
			if agg.Name == "" {
				if agg.Star {
					agg.Name = string(agg.Func) + "(*)"
				} else {
					agg.Name = fmt.Sprintf("%s(%s)", agg.Func, agg.Col)
				}
			}
			q.Aggs = append(q.Aggs, agg)
		}
		q.OutNames = plainNames
		for _, a := range q.Aggs {
			q.OutNames = append(q.OutNames, a.Name)
		}
	}

	// GROUP BY validation: with aggregates, plain outputs must equal the
	// group-by keys.
	if len(ast.GroupBy) > 0 {
		if len(q.Aggs) == 0 {
			return nil, fmt.Errorf("ra: GROUP BY without aggregates is not supported")
		}
		keys := make(map[ColRef]bool)
		for _, g := range ast.GroupBy {
			c, err := resolve(g)
			if err != nil {
				return nil, err
			}
			keys[c] = true
		}
		if len(keys) != len(q.Proj) {
			return nil, fmt.Errorf("ra: GROUP BY keys must match plain select columns")
		}
		for _, c := range q.Proj {
			if !keys[c] {
				return nil, fmt.Errorf("ra: select column %s is not a GROUP BY key", c)
			}
		}
	} else if len(q.Aggs) > 0 && len(q.Proj) > 0 {
		return nil, fmt.Errorf("ra: mixing plain columns and aggregates requires GROUP BY")
	}

	// ORDER BY must refer to output columns.
	for _, o := range ast.OrderBy {
		name := ""
		if o.Col.Table == "" {
			name = o.Col.Name
		} else {
			name = o.Col.Table + "." + o.Col.Name
		}
		idx := -1
		for i, n := range q.OutNames {
			if n == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			// Allow ordering by the bound form of a plain column.
			if c, err := resolve(o.Col); err == nil {
				for i, p := range q.Proj {
					if p == c {
						idx = i
						name = q.OutNames[i]
						break
					}
				}
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("ra: ORDER BY column %q is not in the output", name)
		}
		q.OrderBy = append(q.OrderBy, OrderKey{Name: name, Desc: o.Desc})
	}
	return q, nil
}

// Parse parses and binds a SQL string in one step.
func Parse(src string, db *relation.Database) (*Query, error) {
	ast, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	return Bind(ast, db)
}

// MustParse is Parse that panics on error; for static workload queries.
func MustParse(src string, db *relation.Database) *Query {
	q, err := Parse(src, db)
	if err != nil {
		panic(err)
	}
	return q
}

// AttrsUsed returns X_R^Q for the atom with the given alias: the attributes
// of that atom that appear in selection/join predicates, IN lists, filters,
// or the final projection (including aggregate inputs). Sorted for
// determinism.
func (q *Query) AttrsUsed(alias string) []string {
	set := make(map[string]bool)
	add := func(c ColRef) {
		if c.Alias == alias {
			set[c.Attr] = true
		}
	}
	for _, e := range q.EqAttrs {
		add(e.L)
		add(e.R)
	}
	for _, e := range q.EqConsts {
		add(e.Col)
	}
	for _, e := range q.EqParams {
		add(e.Col)
	}
	for _, in := range q.Ins {
		add(in.Col)
	}
	for _, f := range q.Filters {
		add(f.Col)
		if f.RCol != nil {
			add(*f.RCol)
		}
	}
	for _, c := range q.Proj {
		add(c)
	}
	for _, a := range q.Aggs {
		if !a.Star {
			add(a.Col)
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// String renders the bound query compactly for diagnostics.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("Q{")
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s as %s", a.Rel, a.Alias)
	}
	if len(q.EqAttrs)+len(q.EqConsts)+len(q.EqParams)+len(q.Ins)+len(q.Filters) > 0 {
		b.WriteString(" | ")
		first := true
		sep := func() {
			if !first {
				b.WriteString(" ∧ ")
			}
			first = false
		}
		for _, e := range q.EqAttrs {
			sep()
			fmt.Fprintf(&b, "%s=%s", e.L, e.R)
		}
		for _, e := range q.EqConsts {
			sep()
			fmt.Fprintf(&b, "%s=%s", e.Col, e.Val)
		}
		for _, e := range q.EqParams {
			sep()
			fmt.Fprintf(&b, "%s=?%d", e.Col, e.Slot)
		}
		for _, in := range q.Ins {
			sep()
			if len(in.Slots) > 0 {
				fmt.Fprintf(&b, "%s∈%v?%v", in.Col, in.Vals, in.Slots)
			} else {
				fmt.Fprintf(&b, "%s∈%v", in.Col, in.Vals)
			}
		}
		for _, f := range q.Filters {
			sep()
			switch {
			case f.RCol != nil:
				fmt.Fprintf(&b, "%s%s%s", f.Col, f.Op, *f.RCol)
			case f.Param != nil:
				fmt.Fprintf(&b, "%s%s?%d", f.Col, f.Op, *f.Param)
			default:
				fmt.Fprintf(&b, "%s%s%s", f.Col, f.Op, f.Lit)
			}
		}
	}
	b.WriteString(" → ")
	for i, c := range q.Proj {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
	}
	for _, a := range q.Aggs {
		b.WriteString(" " + a.Name)
	}
	b.WriteString("}")
	return b.String()
}

package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Attr is a named, typed attribute of a relation schema.
type Attr struct {
	Name string
	Kind Kind
}

// Schema describes a relation: its name, ordered attributes, and primary key.
type Schema struct {
	Name  string
	Attrs []Attr
	// Key holds the primary-key attribute names (a subset of Attrs).
	Key []string

	index map[string]int // lazily built name -> position
}

// NewSchema builds a schema and validates that key attributes exist.
func NewSchema(name string, attrs []Attr, key []string) (*Schema, error) {
	s := &Schema{Name: name, Attrs: attrs, Key: key}
	s.buildIndex()
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if seen[a.Name] {
			return nil, fmt.Errorf("relation %s: duplicate attribute %q", name, a.Name)
		}
		seen[a.Name] = true
	}
	for _, k := range key {
		if !seen[k] {
			return nil, fmt.Errorf("relation %s: key attribute %q not in schema", name, k)
		}
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for static workload schemas.
func MustSchema(name string, attrs []Attr, key []string) *Schema {
	s, err := NewSchema(name, attrs, key)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Schema) buildIndex() {
	s.index = make(map[string]int, len(s.Attrs))
	for i, a := range s.Attrs {
		s.index[a.Name] = i
	}
}

// Index returns the position of the named attribute, or -1.
func (s *Schema) Index(name string) int {
	if s.index == nil {
		s.buildIndex()
	}
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the named attribute.
func (s *Schema) Has(name string) bool { return s.Index(name) >= 0 }

// AttrNames returns the attribute names in schema order.
func (s *Schema) AttrNames() []string {
	out := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		out[i] = a.Name
	}
	return out
}

// Positions maps attribute names to their positions; it errors on unknown
// attributes.
func (s *Schema) Positions(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		j := s.Index(n)
		if j < 0 {
			return nil, fmt.Errorf("relation %s: unknown attribute %q", s.Name, n)
		}
		out[i] = j
	}
	return out, nil
}

// String renders the schema as "Name(a, b, c key(a))".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
	}
	if len(s.Key) > 0 {
		b.WriteString(" key(")
		b.WriteString(strings.Join(s.Key, ", "))
		b.WriteByte(')')
	}
	b.WriteByte(')')
	return b.String()
}

// Relation is an in-memory instance of a schema.
type Relation struct {
	Schema *Schema
	Tuples []Tuple
}

// NewRelation returns an empty relation over the schema.
func NewRelation(s *Schema) *Relation { return &Relation{Schema: s} }

// Insert appends a tuple after arity checking.
func (r *Relation) Insert(t Tuple) error {
	if len(t) != len(r.Schema.Attrs) {
		return fmt.Errorf("relation %s: tuple arity %d != schema arity %d",
			r.Schema.Name, len(t), len(r.Schema.Attrs))
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// MustInsert is Insert that panics on arity mismatch.
func (r *Relation) MustInsert(t Tuple) {
	if err := r.Insert(t); err != nil {
		panic(err)
	}
}

// Cardinality returns |R|, the number of tuples.
func (r *Relation) Cardinality() int { return len(r.Tuples) }

// ValueCount returns ||R||, the number of values (tuples × arity).
func (r *Relation) ValueCount() int { return len(r.Tuples) * len(r.Schema.Attrs) }

// SizeBytes returns the accounting size of the relation.
func (r *Relation) SizeBytes() int {
	n := 0
	for _, t := range r.Tuples {
		n += t.SizeBytes()
	}
	return n
}

// Database is a named collection of relations, the "D of schema R" of the
// paper.
type Database struct {
	rels  map[string]*Relation
	order []string
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// Add registers a relation; it replaces any prior relation of the same name.
func (d *Database) Add(r *Relation) {
	if _, ok := d.rels[r.Schema.Name]; !ok {
		d.order = append(d.order, r.Schema.Name)
	}
	d.rels[r.Schema.Name] = r
}

// Relation returns the named relation, or nil.
func (d *Database) Relation(name string) *Relation { return d.rels[name] }

// Schema returns the schema of the named relation, or nil.
func (d *Database) Schema(name string) *Schema {
	if r := d.rels[name]; r != nil {
		return r.Schema
	}
	return nil
}

// Names returns relation names in insertion order.
func (d *Database) Names() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// Schemas returns all relation schemas, sorted by name for determinism.
func (d *Database) Schemas() []*Schema {
	out := make([]*Schema, 0, len(d.rels))
	for _, r := range d.rels {
		out = append(out, r.Schema)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Cardinality returns |D|, total tuples across relations.
func (d *Database) Cardinality() int {
	n := 0
	for _, r := range d.rels {
		n += r.Cardinality()
	}
	return n
}

// ValueCount returns ||D||, total values across relations.
func (d *Database) ValueCount() int {
	n := 0
	for _, r := range d.rels {
		n += r.ValueCount()
	}
	return n
}

// SizeBytes returns the accounting size of the whole database.
func (d *Database) SizeBytes() int {
	n := 0
	for _, r := range d.rels {
		n += r.SizeBytes()
	}
	return n
}

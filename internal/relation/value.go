// Package relation provides the relational substrate shared by every layer
// of the Zidian reproduction: typed values, tuples, relation schemas,
// in-memory relations and databases, and an order-preserving tuple codec
// used for KV keys and block payloads.
package relation

import (
	"fmt"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// Value kinds. The numeric order of the constants is also the cross-kind
// sort order used by Compare and by the order-preserving codec.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed SQL value. It is a comparable struct (no
// slices or maps) so it can be used directly as a map key.
type Value struct {
	Kind Kind
	Int  int64
	Flt  float64
	Str  string
}

// Null returns the SQL NULL value.
func Null() Value { return Value{Kind: KindNull} }

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, Int: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{Kind: KindFloat, Flt: f} }

// String returns a string value.
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat converts numeric values to float64. Strings and nulls yield 0.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.Int)
	case KindFloat:
		return v.Flt
	default:
		return 0
	}
}

// AsInt converts numeric values to int64 (truncating floats).
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt:
		return v.Int
	case KindFloat:
		return int64(v.Flt)
	default:
		return 0
	}
}

// Compare orders two values. Numeric values (int and float) compare
// numerically across kinds; otherwise values of different kinds order by
// Kind. NULL sorts before everything.
func Compare(a, b Value) int {
	an, bn := a.Kind == KindInt || a.Kind == KindFloat, b.Kind == KindInt || b.Kind == KindFloat
	if an && bn {
		if a.Kind == KindInt && b.Kind == KindInt {
			switch {
			case a.Int < b.Int:
				return -1
			case a.Int > b.Int:
				return 1
			}
			return 0
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	if a.Kind == KindString {
		switch {
		case a.Str < b.Str:
			return -1
		case a.Str > b.Str:
			return 1
		}
	}
	return 0
}

// Equal reports whether two values are equal under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// String renders the value for display and debugging.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Flt, 'g', -1, 64)
	case KindString:
		return v.Str
	default:
		return "?"
	}
}

// CoerceKind validates a bind-time value against an expected attribute kind
// and returns the value to use. Numeric kinds interconvert losslessly (an
// integral float binds to an int column as the int, an int binds to a float
// column as the float) so wire formats that blur the distinction still hit
// the right blocks; anything else is a type mismatch. KindNull as the
// expectation accepts any non-null value. NULL never binds: the query
// fragment has no NULL comparisons.
func CoerceKind(v Value, want Kind) (Value, error) {
	if v.Kind == KindNull {
		return Value{}, fmt.Errorf("relation: cannot bind NULL parameter")
	}
	switch want {
	case KindNull:
		return v, nil
	case KindInt:
		switch v.Kind {
		case KindInt:
			return v, nil
		case KindFloat:
			if i := int64(v.Flt); float64(i) == v.Flt {
				return Int(i), nil
			}
		}
	case KindFloat:
		switch v.Kind {
		case KindFloat:
			return v, nil
		case KindInt:
			return Float(float64(v.Int)), nil
		}
	case KindString:
		if v.Kind == KindString {
			return v, nil
		}
	}
	return Value{}, fmt.Errorf("relation: parameter type mismatch: %s value for %s column", v.Kind, want)
}

// SizeBytes is the accounting size of a value: the number of bytes the
// value occupies when shipped between the storage and SQL layers. It is
// used by the experiment harness to report communication volumes.
func (v Value) SizeBytes() int {
	switch v.Kind {
	case KindNull:
		return 1
	case KindInt, KindFloat:
		return 8
	case KindString:
		return len(v.Str) + 1
	default:
		return 1
	}
}

package relation

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// The codec encodes tuples into byte strings whose bytewise (memcmp) order
// equals the tuple order defined by Tuple.Compare. Order preservation is
// what lets composite keys work as DHT keys and lets the segments of one
// logical BaaV block stay adjacent under a common prefix.
//
// Layout per value: a 1-byte kind tag followed by a kind-specific payload.
//   null:   tag only
//   int:    8 bytes big-endian with the sign bit flipped
//   float:  8 bytes of IEEE-754 bits, sign-adjusted so order is preserved
//   string: raw bytes with 0x00 escaped as 0x00 0xFF, terminated by 0x00 0x01
//
// Kind tags are ordered like Kind constants so cross-kind order matches
// Compare for non-numeric mixes. (Mixed int/float keys are not used by the
// workloads; schemas are typed.)

const (
	tagNull   byte = 0x01
	tagInt    byte = 0x02
	tagFloat  byte = 0x03
	tagString byte = 0x04
)

var errCorrupt = errors.New("relation: corrupt encoded tuple")

// AppendValue appends the order-preserving encoding of v to dst.
func AppendValue(dst []byte, v Value) []byte {
	switch v.Kind {
	case KindNull:
		return append(dst, tagNull)
	case KindInt:
		dst = append(dst, tagInt)
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.Int)^(1<<63))
		return append(dst, buf[:]...)
	case KindFloat:
		dst = append(dst, tagFloat)
		bits := math.Float64bits(v.Flt)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative floats: flip everything
		} else {
			bits |= 1 << 63 // positive floats: set the sign bit
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		return append(dst, buf[:]...)
	case KindString:
		dst = append(dst, tagString)
		for i := 0; i < len(v.Str); i++ {
			c := v.Str[i]
			if c == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, c)
			}
		}
		return append(dst, 0x00, 0x01)
	default:
		panic(fmt.Sprintf("relation: cannot encode kind %v", v.Kind))
	}
}

// DecodeValue decodes one value from the front of b, returning the value and
// the number of bytes consumed.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, errCorrupt
	}
	switch b[0] {
	case tagNull:
		return Null(), 1, nil
	case tagInt:
		if len(b) < 9 {
			return Value{}, 0, errCorrupt
		}
		u := binary.BigEndian.Uint64(b[1:9])
		return Int(int64(u ^ (1 << 63))), 9, nil
	case tagFloat:
		if len(b) < 9 {
			return Value{}, 0, errCorrupt
		}
		bits := binary.BigEndian.Uint64(b[1:9])
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63
		} else {
			bits = ^bits
		}
		return Float(math.Float64frombits(bits)), 9, nil
	case tagString:
		var out []byte
		i := 1
		for {
			if i >= len(b) {
				return Value{}, 0, errCorrupt
			}
			c := b[i]
			if c != 0x00 {
				out = append(out, c)
				i++
				continue
			}
			if i+1 >= len(b) {
				return Value{}, 0, errCorrupt
			}
			switch b[i+1] {
			case 0xFF:
				out = append(out, 0x00)
				i += 2
			case 0x01:
				return String(string(out)), i + 2, nil
			default:
				return Value{}, 0, errCorrupt
			}
		}
	default:
		return Value{}, 0, errCorrupt
	}
}

// EncodeTuple encodes a tuple with the order-preserving codec.
func EncodeTuple(t Tuple) []byte {
	out := make([]byte, 0, 16*len(t))
	for _, v := range t {
		out = AppendValue(out, v)
	}
	return out
}

// AppendTuple appends the encoding of t to dst.
func AppendTuple(dst []byte, t Tuple) []byte {
	for _, v := range t {
		dst = AppendValue(dst, v)
	}
	return dst
}

// DecodeTuple decodes exactly n values from b, returning the tuple and the
// bytes consumed.
func DecodeTuple(b []byte, n int) (Tuple, int, error) {
	t := make(Tuple, 0, n)
	off := 0
	for i := 0; i < n; i++ {
		v, k, err := DecodeValue(b[off:])
		if err != nil {
			return nil, 0, err
		}
		t = append(t, v)
		off += k
	}
	return t, off, nil
}

// SkipValue returns the encoded length of the first value in b without
// materializing it.
func SkipValue(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, errCorrupt
	}
	switch b[0] {
	case tagNull:
		return 1, nil
	case tagInt, tagFloat:
		if len(b) < 9 {
			return 0, errCorrupt
		}
		return 9, nil
	case tagString:
		i := 1
		for {
			if i >= len(b) {
				return 0, errCorrupt
			}
			if b[i] != 0x00 {
				i++
				continue
			}
			if i+1 >= len(b) {
				return 0, errCorrupt
			}
			switch b[i+1] {
			case 0xFF:
				i += 2
			case 0x01:
				return i + 2, nil
			default:
				return 0, errCorrupt
			}
		}
	default:
		return 0, errCorrupt
	}
}

// SkipTuple returns the encoded length of the first n values in b without
// decoding them. Posting walks cut payloads into per-key byte slices and
// never look at the values; decoding just to learn the cut points was the
// single largest allocator in the mixed benchmark.
func SkipTuple(b []byte, n int) (int, error) {
	off := 0
	for i := 0; i < n; i++ {
		k, err := SkipValue(b[off:])
		if err != nil {
			return 0, err
		}
		off += k
	}
	return off, nil
}

// DecodeAll decodes values until b is exhausted.
func DecodeAll(b []byte) (Tuple, error) {
	var t Tuple
	off := 0
	for off < len(b) {
		v, k, err := DecodeValue(b[off:])
		if err != nil {
			return nil, err
		}
		t = append(t, v)
		off += k
	}
	return t, nil
}

// KeyString encodes a tuple and returns it as a string, convenient as a Go
// map key for hashing keyed blocks and intermediate results.
func KeyString(t Tuple) string { return string(EncodeTuple(t)) }

package relation

import "strings"

// Tuple is an ordered list of values. The meaning of each position is given
// by a Schema (for base relations) or by an attribute list carried alongside
// (for intermediate query results).
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Project returns the tuple restricted to the given positions, in order.
func (t Tuple) Project(idx []int) Tuple {
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// Concat returns the concatenation t ++ u as a fresh tuple.
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(u))
	out = append(out, t...)
	out = append(out, u...)
	return out
}

// Equal reports positionwise equality of two tuples.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !Equal(t[i], u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := Compare(t[i], u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// SizeBytes is the accounting size of the tuple (sum of value sizes).
func (t Tuple) SizeBytes() int {
	n := 0
	for _, v := range t {
		n += v.SizeBytes()
	}
	return n
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

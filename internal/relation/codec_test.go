package relation

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueRoundTrip(t *testing.T) {
	cases := []Value{
		Null(),
		Int(0), Int(1), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(1.5), Float(-1.5), Float(math.MaxFloat64), Float(-math.MaxFloat64),
		Float(math.SmallestNonzeroFloat64),
		String(""), String("a"), String("hello world"),
		String("with\x00null"), String("\x00"), String("\x00\x00"), String("end\x00"),
	}
	for _, v := range cases {
		enc := AppendValue(nil, v)
		got, n, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(enc) {
			t.Fatalf("decode %v consumed %d of %d bytes", v, n, len(enc))
		}
		if !Equal(got, v) {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func TestIntOrderPreserved(t *testing.T) {
	vals := []int64{math.MinInt64, -1000, -1, 0, 1, 7, 1000, math.MaxInt64}
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			a := AppendValue(nil, Int(vals[i]))
			b := AppendValue(nil, Int(vals[j]))
			want := 0
			if vals[i] < vals[j] {
				want = -1
			} else if vals[i] > vals[j] {
				want = 1
			}
			if got := bytes.Compare(a, b); got != want {
				t.Fatalf("order of %d vs %d: got %d want %d", vals[i], vals[j], got, want)
			}
		}
	}
}

func TestFloatOrderPreserved(t *testing.T) {
	vals := []float64{math.Inf(-1), -math.MaxFloat64, -2.5, -1, 0, 1, 2.5, math.MaxFloat64, math.Inf(1)}
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			a := AppendValue(nil, Float(vals[i]))
			b := AppendValue(nil, Float(vals[j]))
			want := 0
			if vals[i] < vals[j] {
				want = -1
			} else if vals[i] > vals[j] {
				want = 1
			}
			if got := bytes.Compare(a, b); got != want {
				t.Fatalf("order of %g vs %g: got %d want %d", vals[i], vals[j], got, want)
			}
		}
	}
}

func TestStringOrderPreserved(t *testing.T) {
	vals := []string{"", "a", "ab", "a\x00", "a\x00b", "b", "ba"}
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			a := AppendValue(nil, String(vals[i]))
			b := AppendValue(nil, String(vals[j]))
			want := 0
			if vals[i] < vals[j] {
				want = -1
			} else if vals[i] > vals[j] {
				want = 1
			}
			if got := bytes.Compare(a, b); got != want {
				t.Fatalf("order of %q vs %q: got %d want %d", vals[i], vals[j], got, want)
			}
		}
	}
}

// randomValue generates values in a shape testing/quick can drive.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		return Null()
	case 1:
		return Int(r.Int63() - r.Int63())
	case 2:
		return Float(r.NormFloat64() * 1e6)
	default:
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		return String(string(b))
	}
}

type tuplePair struct{ A, B Tuple }

// Generate implements quick.Generator for random tuple pairs that share a
// kind signature per position (typed columns, like real schemas).
func (tuplePair) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 1 + r.Intn(4)
	a := make(Tuple, n)
	b := make(Tuple, n)
	for i := 0; i < n; i++ {
		a[i] = randomValue(r)
		// Same-kind value in b half the time to exercise equal prefixes.
		if r.Intn(2) == 0 {
			b[i] = a[i]
		} else {
			for {
				v := randomValue(r)
				if v.Kind == a[i].Kind {
					b[i] = v
					break
				}
			}
		}
	}
	return reflect.ValueOf(tuplePair{a, b})
}

func TestQuickTupleRoundTrip(t *testing.T) {
	f := func(p tuplePair) bool {
		enc := EncodeTuple(p.A)
		dec, n, err := DecodeTuple(enc, len(p.A))
		if err != nil || n != len(enc) {
			return false
		}
		return dec.Equal(p.A)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEncodingOrderMatchesTupleOrder(t *testing.T) {
	f := func(p tuplePair) bool {
		ea, eb := EncodeTuple(p.A), EncodeTuple(p.B)
		want := p.A.Compare(p.B)
		got := bytes.Compare(ea, eb)
		// Mixed int/float columns may disagree with numeric compare;
		// typed columns (as generated) never mix, so order must match.
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	bad := [][]byte{
		{},
		{0x99},
		{tagInt, 1, 2},
		{tagFloat, 1},
		{tagString, 'a'},        // unterminated
		{tagString, 0x00},       // escape cut short
		{tagString, 0x00, 0x77}, // invalid escape
	}
	for _, b := range bad {
		if _, _, err := DecodeValue(b); err == nil {
			t.Fatalf("decode %v: expected error", b)
		}
	}
}

func TestDecodeAll(t *testing.T) {
	tup := Tuple{Int(1), String("x"), Float(2.5), Null()}
	got, err := DecodeAll(EncodeTuple(tup))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tup) {
		t.Fatalf("got %v want %v", got, tup)
	}
}

func TestKeyString(t *testing.T) {
	a := Tuple{Int(1), String("x")}
	b := Tuple{Int(1), String("x")}
	c := Tuple{Int(2), String("x")}
	if KeyString(a) != KeyString(b) {
		t.Fatal("equal tuples must share key string")
	}
	if KeyString(a) == KeyString(c) {
		t.Fatal("different tuples must not collide")
	}
}

// TestSkipMatchesDecode checks SkipValue/SkipTuple report exactly the byte
// counts their decoding counterparts consume, including escaped strings.
func TestSkipMatchesDecode(t *testing.T) {
	tuples := []Tuple{
		{Int(0), Int(-1), Int(1 << 40)},
		{String(""), String("plain"), String("nul\x00byte\x00")},
		{Float(-2.5), Float(0), Null()},
		{Int(7), String("mixed\x00"), Float(3.14), Null()},
	}
	for _, tup := range tuples {
		enc := EncodeTuple(tup)
		// Tack on trailing bytes so skip lengths can't rely on exhaustion.
		enc = append(enc, 0xAB, 0xCD)
		_, wantN, err := DecodeTuple(enc, len(tup))
		if err != nil {
			t.Fatalf("DecodeTuple(%v): %v", tup, err)
		}
		gotN, err := SkipTuple(enc, len(tup))
		if err != nil {
			t.Fatalf("SkipTuple(%v): %v", tup, err)
		}
		if gotN != wantN {
			t.Fatalf("SkipTuple(%v) = %d bytes, DecodeTuple consumed %d", tup, gotN, wantN)
		}
	}
	if _, err := SkipValue(nil); err == nil {
		t.Fatal("SkipValue(nil) did not fail")
	}
	if _, err := SkipValue([]byte{0x02, 0x00}); err == nil {
		t.Fatal("SkipValue(truncated int) did not fail")
	}
	if _, err := SkipValue([]byte{0x04, 'a'}); err == nil {
		t.Fatal("SkipValue(unterminated string) did not fail")
	}
}

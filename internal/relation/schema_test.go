package relation

import "testing"

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("supplier",
		[]Attr{{"suppkey", KindInt}, {"name", KindString}, {"nationkey", KindInt}},
		[]string{"suppkey"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.Index("name") != 1 {
		t.Fatalf("Index(name) = %d", s.Index("name"))
	}
	if s.Index("absent") != -1 {
		t.Fatal("expected -1 for unknown attribute")
	}
	if !s.Has("nationkey") || s.Has("foo") {
		t.Fatal("Has misbehaved")
	}
	names := s.AttrNames()
	if len(names) != 3 || names[0] != "suppkey" {
		t.Fatalf("AttrNames = %v", names)
	}
	pos, err := s.Positions([]string{"nationkey", "suppkey"})
	if err != nil || pos[0] != 2 || pos[1] != 0 {
		t.Fatalf("Positions = %v err=%v", pos, err)
	}
	if _, err := s.Positions([]string{"zzz"}); err == nil {
		t.Fatal("expected error on unknown attribute")
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema("r", []Attr{{"a", KindInt}, {"a", KindInt}}, nil); err == nil {
		t.Fatal("expected duplicate-attribute error")
	}
	if _, err := NewSchema("r", []Attr{{"a", KindInt}}, []string{"b"}); err == nil {
		t.Fatal("expected unknown-key error")
	}
}

func TestRelationInsertAndCounts(t *testing.T) {
	r := NewRelation(testSchema(t))
	r.MustInsert(Tuple{Int(1), String("acme"), Int(10)})
	r.MustInsert(Tuple{Int(2), String("globex"), Int(20)})
	if r.Cardinality() != 2 {
		t.Fatalf("cardinality = %d", r.Cardinality())
	}
	if r.ValueCount() != 6 {
		t.Fatalf("value count = %d", r.ValueCount())
	}
	if err := r.Insert(Tuple{Int(3)}); err == nil {
		t.Fatal("expected arity error")
	}
	if r.SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
}

func TestDatabase(t *testing.T) {
	d := NewDatabase()
	r := NewRelation(testSchema(t))
	r.MustInsert(Tuple{Int(1), String("acme"), Int(10)})
	d.Add(r)
	if d.Relation("supplier") != r {
		t.Fatal("lookup failed")
	}
	if d.Schema("supplier") != r.Schema {
		t.Fatal("schema lookup failed")
	}
	if d.Relation("nope") != nil || d.Schema("nope") != nil {
		t.Fatal("expected nil for unknown relation")
	}
	if d.Cardinality() != 1 || d.ValueCount() != 3 {
		t.Fatalf("counts: |D|=%d ||D||=%d", d.Cardinality(), d.ValueCount())
	}
	if got := d.Names(); len(got) != 1 || got[0] != "supplier" {
		t.Fatalf("Names = %v", got)
	}
	if got := d.Schemas(); len(got) != 1 {
		t.Fatalf("Schemas = %v", got)
	}
}

func TestTupleOps(t *testing.T) {
	a := Tuple{Int(1), String("x"), Float(2)}
	if got := a.Project([]int{2, 0}); !got.Equal(Tuple{Float(2), Int(1)}) {
		t.Fatalf("Project = %v", got)
	}
	b := a.Clone()
	b[0] = Int(9)
	if a[0].Int != 1 {
		t.Fatal("Clone must not alias")
	}
	c := a.Concat(Tuple{Null()})
	if len(c) != 4 || !c[3].IsNull() {
		t.Fatalf("Concat = %v", c)
	}
	if a.Compare(b) >= 0 {
		t.Fatal("(1,..) should sort before (9,..)")
	}
	if a.Compare(a[:2]) <= 0 {
		t.Fatal("longer tuple with equal prefix sorts after")
	}
}

func TestValueCompareMixedNumeric(t *testing.T) {
	if Compare(Int(2), Float(2.0)) != 0 {
		t.Fatal("2 == 2.0")
	}
	if Compare(Int(2), Float(2.5)) != -1 {
		t.Fatal("2 < 2.5")
	}
	if Compare(Null(), Int(0)) != -1 {
		t.Fatal("NULL sorts first")
	}
	if Compare(String("a"), Int(1)) != 1 {
		t.Fatal("strings sort after ints across kinds")
	}
}

// Package kv implements the key-value storage substrate of the
// SQL-over-NoSQL architecture: single-node storage engines with get/put/scan
// semantics, a hash-sharded cluster (the DHT of the paper's storage layer),
// per-node operation metrics, and cost profiles that model the three KV
// systems used in the paper's evaluation (HBase, Kudu, Cassandra).
package kv

import "sync/atomic"

// Metrics counts storage operations. All counters are safe for concurrent
// update; experiments snapshot them before and after a run and subtract.
type Metrics struct {
	gets      atomic.Int64
	puts      atomic.Int64
	deletes   atomic.Int64
	scanNexts atomic.Int64
	bytesRead atomic.Int64
	bytesWrit atomic.Int64
}

// Snapshot is an immutable copy of a Metrics at a point in time.
type Snapshot struct {
	Gets, Puts, Deletes, ScanNexts int64
	BytesRead, BytesWritten        int64
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Gets:         m.gets.Load(),
		Puts:         m.puts.Load(),
		Deletes:      m.deletes.Load(),
		ScanNexts:    m.scanNexts.Load(),
		BytesRead:    m.bytesRead.Load(),
		BytesWritten: m.bytesWrit.Load(),
	}
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.gets.Store(0)
	m.puts.Store(0)
	m.deletes.Store(0)
	m.scanNexts.Store(0)
	m.bytesRead.Store(0)
	m.bytesWrit.Store(0)
}

func (m *Metrics) countGet(bytes int) {
	m.gets.Add(1)
	m.bytesRead.Add(int64(bytes))
}

func (m *Metrics) countPut(bytes int) {
	m.puts.Add(1)
	m.bytesWrit.Add(int64(bytes))
}

func (m *Metrics) countDelete() { m.deletes.Add(1) }

func (m *Metrics) countScanNext(bytes int) {
	m.scanNexts.Add(1)
	m.bytesRead.Add(int64(bytes))
}

// Sub returns s - o componentwise; use to isolate the cost of one run.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		Gets:         s.Gets - o.Gets,
		Puts:         s.Puts - o.Puts,
		Deletes:      s.Deletes - o.Deletes,
		ScanNexts:    s.ScanNexts - o.ScanNexts,
		BytesRead:    s.BytesRead - o.BytesRead,
		BytesWritten: s.BytesWritten - o.BytesWritten,
	}
}

// Add returns s + o componentwise.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		Gets:         s.Gets + o.Gets,
		Puts:         s.Puts + o.Puts,
		Deletes:      s.Deletes + o.Deletes,
		ScanNexts:    s.ScanNexts + o.ScanNexts,
		BytesRead:    s.BytesRead + o.BytesRead,
		BytesWritten: s.BytesWritten + o.BytesWritten,
	}
}

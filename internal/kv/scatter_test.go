package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// The scatter differential suite: the concurrent per-node pipelines must be
// observationally identical to the serial per-node walks they replaced —
// byte-for-byte, across engines and node counts, under -race.

var scatterNodeCounts = []int{1, 2, 4, 8}

// scatterFixture loads a deterministic keyspace: nPairs keys under prefix
// "blk/", plus decoys under "idx/" and "zzz/" that a prefix walk must never
// leak. Values vary in size so chunk boundaries land at different offsets
// per node count.
func scatterFixture(kind EngineKind, nodes, nPairs int) *Cluster {
	c := NewCluster(kind, nodes)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < nPairs; i++ {
		k := []byte(fmt.Sprintf("blk/%05d", i))
		v := make([]byte, 1+rng.Intn(48))
		rng.Read(v)
		c.Put(k, v)
		c.Put([]byte(fmt.Sprintf("idx/%05d", i)), []byte{byte(i)})
	}
	c.Put([]byte("zzz/tail"), []byte("tail"))
	return c
}

// collectPairs renders a pair sequence into one comparable byte string,
// preserving order.
func collectPairs(pairs []Pair) string {
	var b bytes.Buffer
	for _, p := range pairs {
		fmt.Fprintf(&b, "%q=%x\n", p.Key, p.Value)
	}
	return b.String()
}

// serialScan is the reference implementation the scatter must match: walk
// each node in node order, pairs in key order within the node.
func serialScan(c *Cluster, prefix []byte) []Pair {
	var out []Pair
	for i := 0; i < c.NodeCount(); i++ {
		c.ScanNodeT(nil, i, prefix, func(k, v []byte) bool {
			out = append(out, Pair{Key: k, Value: v})
			return true
		})
	}
	return out
}

func TestScanScatterMatchesSerialWalk(t *testing.T) {
	prefix := []byte("blk/")
	for _, kind := range allKinds {
		for _, nodes := range scatterNodeCounts {
			c := scatterFixture(kind, nodes, 300)
			want := collectPairs(serialScan(c, prefix))

			var got []Pair
			stats := c.ScanScatterT(nil, prefix, func(k, v []byte) bool {
				got = append(got, Pair{Key: k, Value: v})
				return true
			})
			if collectPairs(got) != want {
				t.Fatalf("%v/%d nodes: scattered walk diverged from serial walk (%d vs %d pairs)",
					kind, nodes, len(got), len(serialScan(c, prefix)))
			}
			if len(stats) != nodes {
				t.Fatalf("%v/%d nodes: %d stat entries", kind, nodes, len(stats))
			}
			var statPairs int64
			for _, s := range stats {
				statPairs += s.Pairs
			}
			if statPairs != int64(len(got)) {
				t.Fatalf("%v/%d nodes: stats count %d pairs, delivered %d", kind, nodes, statPairs, len(got))
			}
		}
	}
}

// TestScanScatterEarlyStop: a consumer that stops after k pairs must have
// seen exactly the serial walk's first k pairs, and the in-flight node
// pipelines must wind down cleanly (covered by -race and goroutine leak
// checks via wg.Wait inside the scatter).
func TestScanScatterEarlyStop(t *testing.T) {
	prefix := []byte("blk/")
	for _, kind := range allKinds {
		for _, nodes := range scatterNodeCounts {
			c := scatterFixture(kind, nodes, 300)
			ref := serialScan(c, prefix)
			for _, stop := range []int{0, 1, 63, 64, 65, 200} {
				var got []Pair
				c.ScanScatterT(nil, prefix, func(k, v []byte) bool {
					got = append(got, Pair{Key: k, Value: v})
					return len(got) < stop
				})
				wantN := stop
				if stop == 0 {
					wantN = 1 // fn sees the first pair, then stops
				}
				if wantN > len(ref) {
					wantN = len(ref)
				}
				if collectPairs(got) != collectPairs(ref[:wantN]) {
					t.Fatalf("%v/%d nodes stop=%d: early-stopped walk is not a prefix of the serial walk",
						kind, nodes, stop)
				}
			}
		}
	}
}

// TestScanScatterEmptyPrefixSkipsNodes: a prefix no node holds must answer
// without paying any seek round trip — every engine answers prefix-emptiness
// definitively (one binary search), so all nodes report Skipped and the
// cluster-wide scan metrics stay untouched.
func TestScanScatterEmptyPrefixSkipsNodes(t *testing.T) {
	for _, kind := range allKinds {
		for _, nodes := range scatterNodeCounts {
			c := scatterFixture(kind, nodes, 100)
			before := c.Metrics()
			stats := c.ScanScatterT(nil, []byte("nope/"), func(k, v []byte) bool {
				t.Fatalf("%v/%d nodes: pair %q under an absent prefix", kind, nodes, k)
				return false
			})
			for i, s := range stats {
				if !s.Skipped || s.Pairs != 0 {
					t.Fatalf("%v/%d nodes: node %d not skipped (%+v)", kind, nodes, i, s)
				}
			}
			if d := c.Metrics().Sub(before); d.ScanNexts != 0 {
				t.Fatalf("%v/%d nodes: absent-prefix scan took %d scan steps", kind, nodes, d.ScanNexts)
			}
		}
	}
}

// TestRangeScatterStreamsMatchSerial: each node stream of a scattered range
// walk must deliver exactly the pairs of that node's serial bounded walk, in
// the same ascending order.
func TestRangeScatterStreamsMatchSerial(t *testing.T) {
	prefix := []byte("blk/")
	windows := []struct{ lo, hi string }{
		{"", ""},                       // whole prefix
		{"blk/00100", "blk/00199"},     // interior two-sided
		{"blk/00250", ""},              // half-open upper
		{"", "blk/00049"},              // half-open lower
		{"blk/00200", "blk/00100"},     // inverted: empty
		{"blk/00123x", "blk/00123xzz"}, // gap: empty
	}
	for _, kind := range allKinds {
		for _, nodes := range scatterNodeCounts {
			c := scatterFixture(kind, nodes, 300)
			for _, w := range windows {
				var lo, hi []byte
				if w.lo != "" {
					lo = []byte(w.lo)
				}
				if w.hi != "" {
					hi = []byte(w.hi)
				}
				s := c.RangeScatterT(nil, prefix, lo, hi, nil)
				for i := 0; i < nodes; i++ {
					var want []Pair
					c.ScanRangeNodeT(nil, i, prefix, lo, hi, func(k, v []byte) bool {
						want = append(want, Pair{Key: k, Value: v})
						return true
					})
					var got []Pair
					for chunk := range s.Streams[i].C {
						got = append(got, chunk...)
					}
					if collectPairs(got) != collectPairs(want) {
						t.Fatalf("%v/%d nodes window [%q,%q] node %d: stream diverged from serial walk (%d vs %d pairs)",
							kind, nodes, w.lo, w.hi, i, len(got), len(want))
					}
				}
				s.Cancel()
			}
		}
	}
}

// TestRangeScatterProducerCut: the producer-side early stop must end a
// node's stream after the pair that tripped it, leaving other nodes intact.
func TestRangeScatterProducerCut(t *testing.T) {
	for _, kind := range allKinds {
		c := scatterFixture(kind, 4, 300)
		const perNode = 5
		counts := make([]int, 4)
		s := c.RangeScatterT(nil, []byte("blk/"), nil, nil, func(node int, k, v []byte) bool {
			counts[node]++ // producer-side: one goroutine per node, slots disjoint
			return counts[node] < perNode
		})
		for i := 0; i < 4; i++ {
			var got []Pair
			for chunk := range s.Streams[i].C {
				got = append(got, chunk...)
			}
			var want []Pair
			c.ScanRangeNodeT(nil, i, []byte("blk/"), nil, nil, func(k, v []byte) bool {
				want = append(want, Pair{Key: k, Value: v})
				return len(want) < perNode
			})
			if collectPairs(got) != collectPairs(want) {
				t.Fatalf("%v node %d: cut stream is not the serial walk's first %d pairs", kind, i, perNode)
			}
		}
		s.Cancel()
	}
}

// TestRangeScatterCancelMidStream: canceling with undrained streams must
// release every producer (Cancel blocks until the pipelines exit; a stuck
// producer hangs the test).
func TestRangeScatterCancelMidStream(t *testing.T) {
	for _, kind := range allKinds {
		c := scatterFixture(kind, 4, 2000)
		s := c.RangeScatterT(nil, []byte("blk/"), nil, nil, nil)
		// Consume one chunk from one stream, then walk away.
		for range s.Streams[0].C {
			break
		}
		s.Cancel()
		// The cluster must be fully usable afterwards: locks released.
		c.Put([]byte("blk/99999"), []byte("post-cancel"))
		if _, ok := c.Get([]byte("blk/99999")); !ok {
			t.Fatalf("%v: cluster unusable after mid-stream cancel", kind)
		}
	}
}

// TestGetManyRoutedMatchesPointGets: the batched routed fetch must agree
// with one-at-a-time GetRouted on hits, misses, and routed (block-prefix)
// keys, while touching each owning node once.
func TestGetManyRoutedMatchesPointGets(t *testing.T) {
	for _, kind := range allKinds {
		for _, nodes := range scatterNodeCounts {
			c := scatterFixture(kind, nodes, 200)
			var reqs []GetRequest
			for i := 0; i < 250; i += 3 { // past 200: misses included
				k := []byte(fmt.Sprintf("blk/%05d", i))
				reqs = append(reqs, GetRequest{Route: k, Key: k})
			}
			got := c.GetManyRouted(nil, reqs)
			for i, r := range reqs {
				wantV, wantOK := c.GetRouted(r.Route, r.Key)
				if got[i].OK != wantOK || !bytes.Equal(got[i].Value, wantV) {
					t.Fatalf("%v/%d nodes req %d (%q): batched (%x,%v) vs point (%x,%v)",
						kind, nodes, i, r.Key, got[i].Value, got[i].OK, wantV, wantOK)
				}
			}
		}
	}
}

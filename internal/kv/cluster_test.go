package kv

import (
	"fmt"
	"sync"
	"testing"
)

func TestClusterRoutingIsStable(t *testing.T) {
	c := NewCluster(EngineHash, 4)
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key%d", i))
		n1 := c.NodeFor(k)
		n2 := c.NodeFor(k)
		if n1 != n2 {
			t.Fatal("routing must be deterministic")
		}
		if n1 < 0 || n1 >= 4 {
			t.Fatalf("node %d out of range", n1)
		}
	}
}

func TestClusterGetPutDelete(t *testing.T) {
	c := NewCluster(EngineHash, 3)
	c.Put([]byte("a"), []byte("1"))
	if v, ok := c.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("get = %q,%v", v, ok)
	}
	if _, ok := c.Get([]byte("zzz")); ok {
		t.Fatal("missing key must miss")
	}
	if !c.Delete([]byte("a")) || c.Delete([]byte("a")) {
		t.Fatal("delete semantics")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestClusterScanVisitsAllNodes(t *testing.T) {
	c := NewCluster(EngineHash, 4)
	want := make(map[string]bool)
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("p/%02d", i)
		c.Put([]byte(k), []byte("v"))
		want[k] = true
	}
	c.Put([]byte("q/other"), []byte("v"))
	got := make(map[string]bool)
	c.Scan([]byte("p/"), func(k, _ []byte) bool { got[string(k)] = true; return true })
	if len(got) != len(want) {
		t.Fatalf("scan visited %d keys, want %d", len(got), len(want))
	}
	// Early termination stops the whole scan.
	n := 0
	c.Scan([]byte("p/"), func(_, _ []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestClusterScanNodePartition(t *testing.T) {
	c := NewCluster(EngineHash, 4)
	for i := 0; i < 64; i++ {
		c.Put([]byte(fmt.Sprintf("p/%02d", i)), []byte("v"))
	}
	total := 0
	for i := 0; i < c.NodeCount(); i++ {
		c.ScanNode(i, []byte("p/"), func(_, _ []byte) bool { total++; return true })
	}
	if total != 64 {
		t.Fatalf("per-node scans visited %d", total)
	}
}

func TestClusterMetrics(t *testing.T) {
	c := NewCluster(EngineHash, 2)
	c.Put([]byte("a"), []byte("12345"))
	c.Put([]byte("b"), []byte("1"))
	c.Get([]byte("a"))
	c.Get([]byte("missing"))
	c.Scan(nil, func(_, _ []byte) bool { return true })
	m := c.Metrics()
	if m.Puts != 2 {
		t.Fatalf("puts = %d", m.Puts)
	}
	if m.Gets != 2 {
		t.Fatalf("gets = %d", m.Gets)
	}
	if m.ScanNexts != 2 {
		t.Fatalf("scanNexts = %d", m.ScanNexts)
	}
	if m.BytesRead < 5 {
		t.Fatalf("bytesRead = %d", m.BytesRead)
	}
	c.ResetMetrics()
	if c.Metrics() != (Snapshot{}) {
		t.Fatal("reset must zero metrics")
	}
	// Per-node metrics sum to the aggregate.
	c.Get([]byte("a"))
	var sum Snapshot
	for i := 0; i < c.NodeCount(); i++ {
		sum = sum.Add(c.NodeMetrics(i))
	}
	if sum != c.Metrics() {
		t.Fatal("per-node metrics must sum to aggregate")
	}
}

func TestClusterConcurrentAccess(t *testing.T) {
	c := NewCluster(EngineLSM, 4)
	for i := 0; i < 256; i++ {
		c.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("k%04d", (i*7+w)%256))
				if _, ok := c.Get(k); !ok {
					t.Errorf("missing %s", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Metrics().Gets; got != 8*500 {
		t.Fatalf("gets = %d", got)
	}
}

func TestSnapshotArithmetic(t *testing.T) {
	a := Snapshot{Gets: 10, Puts: 5, BytesRead: 100}
	b := Snapshot{Gets: 4, Puts: 1, BytesRead: 40}
	d := a.Sub(b)
	if d.Gets != 6 || d.Puts != 4 || d.BytesRead != 60 {
		t.Fatalf("sub = %+v", d)
	}
	s := b.Add(b)
	if s.Gets != 8 || s.BytesRead != 80 {
		t.Fatalf("add = %+v", s)
	}
}

func TestNewClusterClampsSize(t *testing.T) {
	c := NewCluster(EngineHash, 0)
	if c.NodeCount() != 1 {
		t.Fatalf("node count = %d", c.NodeCount())
	}
}

func TestCostModelQueryTime(t *testing.T) {
	m := ProfileKStore
	scanHeavy := Snapshot{ScanNexts: 1_000_000, BytesRead: 1 << 26}
	getLight := Snapshot{Gets: 100, BytesRead: 1 << 12}
	tScan := m.QueryUS(scanHeavy, 0, 4, 4)
	tGet := m.QueryUS(getLight, 0, 4, 4)
	if tGet >= tScan {
		t.Fatalf("get-light query (%f) should be faster than scan-heavy (%f)", tGet, tScan)
	}
	// More storage nodes reduce scan-heavy time.
	if m.QueryUS(scanHeavy, 0, 8, 4) >= tScan {
		t.Fatal("more nodes must not slow down")
	}
	// Cost models map to engine kinds.
	if ProfileHStore.EngineKind() != EngineLSM ||
		ProfileKStore.EngineKind() != EngineSorted ||
		ProfileCStore.EngineKind() != EngineHash {
		t.Fatal("profile/engine mapping")
	}
	if len(Profiles()) != 3 {
		t.Fatal("three standard profiles")
	}
	if m.QueryUS(Snapshot{}, 0, 0, 0) <= 0 {
		t.Fatal("setup cost must be positive even for empty queries")
	}
}

func TestClusterRoutedOps(t *testing.T) {
	c := NewCluster(EngineHash, 4)
	route := []byte("block-7")
	// All segments of one logical block share the route and colocate.
	for seg := 0; seg < 5; seg++ {
		c.PutRouted(route, []byte(fmt.Sprintf("block-7/%d", seg)), []byte("v"))
	}
	owner := c.NodeFor(route)
	found := 0
	c.ScanNode(owner, []byte("block-7/"), func(_, _ []byte) bool { found++; return true })
	if found != 5 {
		t.Fatalf("segments scattered: %d of 5 on the owner node", found)
	}
	if v, ok := c.GetRouted(route, []byte("block-7/3")); !ok || string(v) != "v" {
		t.Fatalf("routed get = %q %v", v, ok)
	}
	if !c.DeleteRouted(route, []byte("block-7/3")) {
		t.Fatal("routed delete")
	}
	if _, ok := c.GetRouted(route, []byte("block-7/3")); ok {
		t.Fatal("deleted segment visible")
	}
}

package kv

import (
	"bytes"
	"sort"
	"strings"
)

// Engine is a single storage node: a dictionary from byte-string keys to
// byte-string values with ordered prefix scans. Engines are not safe for
// concurrent mutation; the Cluster serializes access per node.
type Engine interface {
	// Get returns the value stored under key.
	Get(key []byte) ([]byte, bool)
	// Put stores value under key, replacing any previous value.
	Put(key, value []byte)
	// Delete removes key, reporting whether it was present.
	Delete(key []byte) bool
	// Scan visits pairs whose key starts with prefix, in ascending key
	// order, until fn returns false. An empty prefix visits everything.
	Scan(prefix []byte, fn func(key, value []byte) bool)
	// ScanRange visits pairs with from <= key <= to (bytewise), in ascending
	// key order, until fn returns false. A nil from starts at the first key;
	// a nil to runs to the last. The bounded seek is what makes ordered
	// posting-range walks cost O(range), not O(instance): keys below from are
	// never visited. ScanRange obeys the same ReadOnlyScan contract as Scan.
	ScanRange(from, to []byte, fn func(key, value []byte) bool)
	// Len returns the number of stored pairs.
	Len() int
	// SizeBytes returns the total payload size (keys + values).
	SizeBytes() int64
	// ReadOnlyScan reports whether Scan never mutates engine state, so a
	// cluster may run it under a shared (read) lock concurrently with gets.
	// Engines that sort or merge lazily on scan must return false.
	ReadOnlyScan() bool
	// PrefixEmpty reports whether the engine definitely holds no key
	// carrying prefix. It must not mutate engine state (the cluster probes
	// it under the shared lock) and may answer conservatively: true is a
	// guarantee of emptiness, false only means "maybe non-empty". The
	// cluster uses it to skip a node's emulated seek round trip when a scan
	// prefix provably misses the node.
	PrefixEmpty(prefix []byte) bool
}

// EngineKind selects one of the engine implementations, each standing in for
// one of the paper's storage systems.
type EngineKind int

const (
	// EngineHash is a hash-table engine with lazily sorted scans; it plays
	// the role of Cassandra's partition store ("cstore").
	EngineHash EngineKind = iota
	// EngineLSM is a log-structured merge engine (memtable + sorted runs
	// with compaction); it plays the role of HBase ("hstore").
	EngineLSM
	// EngineSorted keeps one sorted array with a write buffer folded in on
	// the write path, like a Kudu tablet ("kstore"): slower point writes,
	// fast ordered scans (read-only buffer overlay).
	EngineSorted
)

// String names the engine kind.
func (k EngineKind) String() string {
	switch k {
	case EngineHash:
		return "hash"
	case EngineLSM:
		return "lsm"
	case EngineSorted:
		return "sorted"
	default:
		return "unknown"
	}
}

// NewEngine constructs an engine of the given kind.
func NewEngine(kind EngineKind) Engine {
	switch kind {
	case EngineLSM:
		return newLSMEngine()
	case EngineSorted:
		return newSortedEngine()
	default:
		return newHashEngine()
	}
}

// hashEngine stores pairs in a map and maintains key order on the write
// path, so scans are pure reads and the cluster can run them under
// per-node read locks concurrently with gets (ROADMAP: parallelize
// scan-heavy mixes). Fresh keys accumulate in a small unsorted pending
// buffer that Put folds into the sorted slice once it fills — one O(n)
// merge per hashMergeAt writes keeps bulk loads near O(N log N) instead of
// the O(N²) a splice-per-key would cost. Scan merges the (copied, sorted)
// pending buffer with the sorted keys on the fly, mutating nothing.
type hashEngine struct {
	m       map[string][]byte
	keys    []string // sorted; excludes pending
	pending []string // fresh keys not yet merged, unsorted
	size    int64
}

const hashMergeAt = 4096

func newHashEngine() *hashEngine {
	return &hashEngine{m: make(map[string][]byte)}
}

func (e *hashEngine) Get(key []byte) ([]byte, bool) {
	v, ok := e.m[string(key)]
	return v, ok
}

// mergePending folds the pending buffer into the sorted key slice.
func (e *hashEngine) mergePending() {
	if len(e.pending) == 0 {
		return
	}
	sort.Strings(e.pending)
	merged := make([]string, 0, len(e.keys)+len(e.pending))
	i, j := 0, 0
	for i < len(e.keys) || j < len(e.pending) {
		if j >= len(e.pending) || (i < len(e.keys) && e.keys[i] < e.pending[j]) {
			merged = append(merged, e.keys[i])
			i++
		} else {
			merged = append(merged, e.pending[j])
			j++
		}
	}
	e.keys = merged
	e.pending = e.pending[:0]
}

func (e *hashEngine) Put(key, value []byte) {
	k := string(key)
	if old, ok := e.m[k]; ok {
		e.size -= int64(len(old))
	} else {
		e.size += int64(len(k))
		e.pending = append(e.pending, k)
		if len(e.pending) >= hashMergeAt {
			e.mergePending()
		}
	}
	e.m[k] = value
	e.size += int64(len(value))
}

func (e *hashEngine) Delete(key []byte) bool {
	k := string(key)
	old, ok := e.m[k]
	if !ok {
		return false
	}
	delete(e.m, k)
	e.size -= int64(len(k) + len(old))
	// Deletes are rare next to puts: fold pending first, then splice once.
	e.mergePending()
	i := sort.SearchStrings(e.keys, k)
	e.keys = append(e.keys[:i], e.keys[i+1:]...)
	return true
}

func (e *hashEngine) Scan(prefix []byte, fn func(key, value []byte) bool) {
	e.ScanRange(prefix, nil, func(k, v []byte) bool {
		if !bytes.HasPrefix(k, prefix) {
			return false
		}
		return fn(k, v)
	})
}

func (e *hashEngine) ScanRange(from, to []byte, fn func(key, value []byte) bool) {
	f := string(from)
	var pend []string
	if len(e.pending) > 0 {
		pend = append([]string{}, e.pending...)
		sort.Strings(pend)
		j := sort.SearchStrings(pend, f)
		pend = pend[j:]
	}
	i := sort.SearchStrings(e.keys, f)
	for i < len(e.keys) || len(pend) > 0 {
		var k string
		if len(pend) == 0 || (i < len(e.keys) && e.keys[i] < pend[0]) {
			k = e.keys[i]
			i++
		} else {
			k = pend[0]
			pend = pend[1:]
		}
		if to != nil && k > string(to) {
			return
		}
		if !fn([]byte(k), e.m[k]) {
			return
		}
	}
}

func (e *hashEngine) Len() int { return len(e.m) }

func (e *hashEngine) SizeBytes() int64 { return e.size }

func (e *hashEngine) ReadOnlyScan() bool { return true }

// PrefixEmpty: one binary search over the sorted keys plus a linear pass
// over the small pending buffer, no mutation.
func (e *hashEngine) PrefixEmpty(prefix []byte) bool {
	p := string(prefix)
	i := sort.SearchStrings(e.keys, p)
	if i < len(e.keys) && strings.HasPrefix(e.keys[i], p) {
		return false
	}
	for _, k := range e.pending {
		if strings.HasPrefix(k, p) {
			return false
		}
	}
	return true
}

package kv

import (
	"bytes"
	"sort"
)

// Engine is a single storage node: a dictionary from byte-string keys to
// byte-string values with ordered prefix scans. Engines are not safe for
// concurrent mutation; the Cluster serializes access per node.
type Engine interface {
	// Get returns the value stored under key.
	Get(key []byte) ([]byte, bool)
	// Put stores value under key, replacing any previous value.
	Put(key, value []byte)
	// Delete removes key, reporting whether it was present.
	Delete(key []byte) bool
	// Scan visits pairs whose key starts with prefix, in ascending key
	// order, until fn returns false. An empty prefix visits everything.
	Scan(prefix []byte, fn func(key, value []byte) bool)
	// Len returns the number of stored pairs.
	Len() int
	// SizeBytes returns the total payload size (keys + values).
	SizeBytes() int64
}

// EngineKind selects one of the engine implementations, each standing in for
// one of the paper's storage systems.
type EngineKind int

const (
	// EngineHash is a hash-table engine with lazily sorted scans; it plays
	// the role of Cassandra's partition store ("cstore").
	EngineHash EngineKind = iota
	// EngineLSM is a log-structured merge engine (memtable + sorted runs
	// with compaction); it plays the role of HBase ("hstore").
	EngineLSM
	// EngineSorted keeps one sorted array with a write buffer, like a Kudu
	// tablet ("kstore"): slower point writes, fast ordered scans.
	EngineSorted
)

// String names the engine kind.
func (k EngineKind) String() string {
	switch k {
	case EngineHash:
		return "hash"
	case EngineLSM:
		return "lsm"
	case EngineSorted:
		return "sorted"
	default:
		return "unknown"
	}
}

// NewEngine constructs an engine of the given kind.
func NewEngine(kind EngineKind) Engine {
	switch kind {
	case EngineLSM:
		return newLSMEngine()
	case EngineSorted:
		return newSortedEngine()
	default:
		return newHashEngine()
	}
}

// hashEngine stores pairs in a map and materializes a sorted key list on
// demand for scans.
type hashEngine struct {
	m    map[string][]byte
	keys []string // sorted cache; nil when dirty
	size int64
}

func newHashEngine() *hashEngine {
	return &hashEngine{m: make(map[string][]byte)}
}

func (e *hashEngine) Get(key []byte) ([]byte, bool) {
	v, ok := e.m[string(key)]
	return v, ok
}

func (e *hashEngine) Put(key, value []byte) {
	k := string(key)
	if old, ok := e.m[k]; ok {
		e.size -= int64(len(old))
	} else {
		e.size += int64(len(k))
		e.keys = nil
	}
	e.m[k] = value
	e.size += int64(len(value))
}

func (e *hashEngine) Delete(key []byte) bool {
	k := string(key)
	old, ok := e.m[k]
	if !ok {
		return false
	}
	delete(e.m, k)
	e.size -= int64(len(k) + len(old))
	e.keys = nil
	return true
}

func (e *hashEngine) Scan(prefix []byte, fn func(key, value []byte) bool) {
	if e.keys == nil {
		e.keys = make([]string, 0, len(e.m))
		for k := range e.m {
			e.keys = append(e.keys, k)
		}
		sort.Strings(e.keys)
	}
	p := string(prefix)
	i := sort.SearchStrings(e.keys, p)
	for ; i < len(e.keys); i++ {
		k := e.keys[i]
		if !bytes.HasPrefix([]byte(k), prefix) {
			return
		}
		if !fn([]byte(k), e.m[k]) {
			return
		}
	}
}

func (e *hashEngine) Len() int { return len(e.m) }

func (e *hashEngine) SizeBytes() int64 { return e.size }

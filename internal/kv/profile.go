package kv

// CostModel captures the per-operation latencies of one storage system. The
// experiment harness multiplies operation counts (Snapshot) by these costs
// to obtain a simulated cluster time, so that the relative behaviour of the
// paper's three systems (HBase, Kudu, Cassandra) is reproduced even though
// all engines here run in-process.
//
// The constants are calibrated to the qualitative profile of each system:
// HBase has expensive random gets and slow scans (LSM read amplification);
// Kudu has very fast ordered scans (columnar tablets); Cassandra has cheap
// writes but relatively slow scans.
type CostModel struct {
	Name string
	// Per-operation storage costs in microseconds.
	GetUS      float64
	PutUS      float64
	ScanNextUS float64
	// Data transfer costs in microseconds per KiB.
	ReadUSPerKB    float64 // storage layer -> SQL layer
	ShuffleUSPerKB float64 // worker <-> worker within the SQL layer
	// Fixed per-query setup overhead in milliseconds (job launch, plan
	// distribution). Dominates very short queries, as the paper observes
	// when adding workers to already-fast Zidian runs. The values are
	// scaled down with the datasets (the paper's clusters pay hundreds of
	// milliseconds against minutes of scanning; these laptop-scale
	// profiles pay milliseconds against tens of milliseconds).
	SetupMS float64
}

// Profiles for the three SQL-over-NoSQL storage systems of the paper.
var (
	// ProfileHStore models HBase under SparkSQL (the paper's SoH).
	ProfileHStore = CostModel{
		Name: "hstore", GetUS: 320, PutUS: 450, ScanNextUS: 30,
		ReadUSPerKB: 2.0, ShuffleUSPerKB: 3.0, SetupMS: 2.0,
	}
	// ProfileKStore models Kudu (SoK): fast scans, moderate gets.
	ProfileKStore = CostModel{
		Name: "kstore", GetUS: 140, PutUS: 300, ScanNextUS: 4,
		ReadUSPerKB: 2.0, ShuffleUSPerKB: 3.0, SetupMS: 0.6,
	}
	// ProfileCStore models Cassandra (SoC): cheap writes, slow scans.
	ProfileCStore = CostModel{
		Name: "cstore", GetUS: 260, PutUS: 180, ScanNextUS: 22,
		ReadUSPerKB: 2.0, ShuffleUSPerKB: 3.0, SetupMS: 1.0,
	}
)

// EngineKindFor maps a cost model to the engine implementation that mimics
// the corresponding system's storage structure.
func (m CostModel) EngineKind() EngineKind {
	switch m.Name {
	case "hstore":
		return EngineLSM
	case "kstore":
		return EngineSorted
	default:
		return EngineHash
	}
}

// StorageUS returns the simulated storage-side work for the operation
// counts in s, in microseconds, before dividing across nodes.
func (m CostModel) StorageUS(s Snapshot) float64 {
	return float64(s.Gets)*m.GetUS +
		float64(s.Puts)*m.PutUS +
		float64(s.ScanNexts)*m.ScanNextUS
}

// QueryUS returns the simulated wall time of a query, in microseconds:
// storage work spread over the storage nodes, data transfer to the SQL
// layer spread over the workers, plus worker-to-worker shuffle and the
// fixed setup cost.
func (m CostModel) QueryUS(storage Snapshot, shuffleBytes int64, storageNodes, workers int) float64 {
	if storageNodes < 1 {
		storageNodes = 1
	}
	if workers < 1 {
		workers = 1
	}
	storageTime := m.StorageUS(storage) / float64(storageNodes)
	transfer := float64(storage.BytesRead) / 1024 * m.ReadUSPerKB / float64(workers)
	shuffle := float64(shuffleBytes) / 1024 * m.ShuffleUSPerKB / float64(workers)
	return storageTime + transfer + shuffle + m.SetupMS*1000
}

// Profiles returns the three standard profiles in presentation order
// (SoH, SoK, SoC — matching the paper's tables).
func Profiles() []CostModel {
	return []CostModel{ProfileHStore, ProfileKStore, ProfileCStore}
}

package kv

import (
	"sync"
	"time"

	"zidian/internal/obs"
)

// Scatter-gather scan pipelines: the placement layer that turns "walk the
// cluster" into "walk every node at once". A logical scan names a key
// window; placement fans it out as one streaming walk per storage node,
// each in its own goroutine behind a bounded channel, and a gather step
// recombines the per-node streams. Two merge disciplines exist:
//
//   - Node-contiguous fan-in (ScanScatterT): each node's stream is
//     delivered whole, in node order, exactly matching the serial walk's
//     output. Callers that reassemble multi-pair records from adjacent
//     keys (BaaV multi-segment blocks — segments of one block are
//     colocated on the block's owner node) rely on streams never
//     interleaving at pair granularity. The win is overlap: every node's
//     emulated seek round trip and engine walk runs concurrently instead
//     of back to back.
//
//   - Ordered key-granularity merge: each key lives on exactly one node
//     and per-node streams arrive in ascending key order, so a heap merge
//     recombines them into one globally ordered stream. The posting-range
//     walk in internal/index builds this on top of RangeScatterT.
//
// Cancellation: when the consumer stops early (LIMIT, error), in-flight
// node walks observe the cancel between pairs and abort instead of
// walking their remainder into a buffer nobody reads.
//
// Contract: gather callbacks run while producer goroutines hold per-node
// read locks, so a scan callback must not issue cluster operations — a
// nested op behind a queued writer would deadlock. No current caller does
// (callbacks parse and collect); new callers collect first, operate after.

const (
	// scanChunk is how many pairs a node pipeline packs per channel send.
	scanChunk = 64
	// scanChanCap bounds the chunks a node stream may run ahead of the
	// gather step — backpressure, so a fast node cannot buffer its whole
	// keyspace while the consumer is busy elsewhere.
	scanChanCap = 4
)

// Pair is one key/value yielded by a node pipeline. Slices reference
// engine-owned storage; engines never mutate stored payloads in place
// (updates replace whole values), so pairs stay valid after delivery.
type Pair struct {
	Key   []byte
	Value []byte
}

// NodeScanStat reports one node's share of a scattered walk.
type NodeScanStat struct {
	// Pairs counts the pairs the node's walk yielded.
	Pairs int64
	// Wait is the node's emulated seek round trip as observed by this walk —
	// under the service-capacity model it includes time queued behind other
	// statements' rounds at the node, so it localizes hot-node contention.
	Wait time.Duration
	// Skipped is set when the node was never visited because its engine
	// reported no keys under the scan prefix: no seek round trip, no lock.
	Skipped bool
}

// ScanScatterT walks every pair carrying prefix exactly like ScanT —
// node by node in key order within each node — but runs all node walks
// concurrently: each node's emulated seek round trip and engine walk
// overlaps the others, and the fan-in delivers node streams contiguously
// in node order so the output is byte-for-byte the serial walk's. Nodes
// whose engines hold no keys under the prefix are skipped without paying
// the seek round trip. fn must not issue cluster operations (see the
// package comment above). The returned stats have one entry per node.
func (c *Cluster) ScanScatterT(t *obs.KV, prefix []byte, fn func(key, value []byte) bool) []NodeScanStat {
	stats := make([]NodeScanStat, len(c.nodes))
	if len(c.nodes) == 1 {
		// One node: no pipeline to overlap; walk inline.
		n := c.nodes[0]
		if c.nodePrefixEmpty(n, prefix) {
			stats[0].Skipped = true
			return stats
		}
		seek := time.Now()
		c.roundWait(t, 0)
		stats[0].Wait = time.Since(seek)
		unlock := n.lockScan()
		n.eng.Scan(prefix, func(k, v []byte) bool {
			n.metrics.countScanNext(len(v))
			t.CountScanNext(len(v))
			stats[0].Pairs++
			return fn(k, v)
		})
		unlock()
		return stats
	}

	done := make(chan struct{})
	var once sync.Once
	cancel := func() { once.Do(func() { close(done) }) }
	defer cancel()

	chans := make([]chan []Pair, len(c.nodes))
	var wg sync.WaitGroup
	for i := range c.nodes {
		chans[i] = make(chan []Pair, scanChanCap)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch := chans[i]
			defer close(ch)
			n := c.nodes[i]
			if c.nodePrefixEmpty(n, prefix) {
				stats[i].Skipped = true
				return
			}
			seek := time.Now()
			c.roundWait(t, i) // per-node seek rounds overlap across producers
			stats[i].Wait = time.Since(seek)
			unlock := n.lockScan()
			defer unlock()
			chunk := make([]Pair, 0, scanChunk)
			flush := func() bool {
				if len(chunk) == 0 {
					return true
				}
				select {
				case ch <- chunk:
					chunk = make([]Pair, 0, scanChunk)
					return true
				case <-done:
					return false
				}
			}
			n.eng.Scan(prefix, func(k, v []byte) bool {
				select {
				case <-done:
					return false
				default:
				}
				n.metrics.countScanNext(len(v))
				t.CountScanNext(len(v))
				stats[i].Pairs++
				chunk = append(chunk, Pair{Key: k, Value: v})
				if len(chunk) == scanChunk {
					return flush()
				}
				return true
			})
			flush()
		}(i)
	}

	// Node-contiguous fan-in, in node order: identical delivery order to
	// the serial walk, with all the per-node work already in flight.
gather:
	for i := range chans {
		for chunk := range chans[i] {
			for _, p := range chunk {
				if !fn(p.Key, p.Value) {
					break gather
				}
			}
		}
	}
	cancel()
	wg.Wait()
	return stats
}

// RangeStream is one node's ordered, bounded-window walk inside a
// RangeScatterT: pairs arrive in ascending key order on C until the walk
// ends or the scatter is canceled.
type RangeStream struct {
	C <-chan []Pair
}

// RangeScatter tracks the per-node pipelines of one scattered range walk.
type RangeScatter struct {
	// Streams has one ordered pair stream per storage node.
	Streams []RangeStream

	done   chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
	cutoff []func() bool
}

// Cancel aborts every in-flight node walk and waits for the pipelines to
// exit. Safe to call more than once; always call it when done consuming.
func (s *RangeScatter) Cancel() {
	s.once.Do(func() { close(s.done) })
	s.wg.Wait()
}

// RangeScatterT starts one bounded range walk per storage node — the
// window semantics of ScanRangeNodeT: keys carrying prefix with
// lo <= k <= hi, ascending per node — each in its own goroutine behind a
// bounded channel, and returns the per-node streams for the caller to
// merge (each key lives on exactly one node, so an ascending heap merge
// of the streams is a globally ordered walk). cut, when non-nil, is the
// producer-side early stop: it runs in the node's goroutine after each
// pair is appended and stops that node's walk when it returns false —
// callers use it to cap how far a LIMIT-bound walk scans per node.
// Nodes with no keys under the prefix are skipped without a seek round
// trip. The caller must Cancel the scatter once it stops consuming.
func (c *Cluster) RangeScatterT(t *obs.KV, prefix, lo, hi []byte, cut func(node int, k, v []byte) bool) *RangeScatter {
	s := &RangeScatter{
		Streams: make([]RangeStream, len(c.nodes)),
		done:    make(chan struct{}),
	}
	for i := range c.nodes {
		ch := make(chan []Pair, scanChanCap)
		s.Streams[i] = RangeStream{C: ch}
		s.wg.Add(1)
		go func(i int, ch chan []Pair) {
			defer s.wg.Done()
			defer close(ch)
			n := c.nodes[i]
			if c.nodePrefixEmpty(n, prefix) {
				return
			}
			chunk := make([]Pair, 0, scanChunk)
			flush := func() bool {
				if len(chunk) == 0 {
					return true
				}
				select {
				case ch <- chunk:
					chunk = make([]Pair, 0, scanChunk)
					return true
				case <-s.done:
					return false
				}
			}
			c.scanRangeNode(t, i, prefix, lo, hi, func(k, v []byte) bool {
				select {
				case <-s.done:
					return false
				default:
				}
				chunk = append(chunk, Pair{Key: k, Value: v})
				if cut != nil && !cut(i, k, v) {
					flush()
					return false
				}
				if len(chunk) == scanChunk {
					return flush()
				}
				return true
			})
			flush()
		}(i, ch)
	}
	return s
}

// nodePrefixEmpty probes, under a brief read lock, whether the node's
// engine definitely holds no key carrying prefix. Engines answer
// conservatively (see Engine.PrefixEmpty); a false "maybe non-empty" only
// costs the seek round trip the probe exists to save.
func (c *Cluster) nodePrefixEmpty(n *node, prefix []byte) bool {
	n.mu.RLock()
	empty := n.eng.PrefixEmpty(prefix)
	n.mu.RUnlock()
	return empty
}

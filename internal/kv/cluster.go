package kv

import (
	"bytes"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"zidian/internal/obs"
)

// Cluster is a hash-sharded collection of storage nodes: the distributed
// hash table (DHT) that SQL-over-NoSQL systems use as their storage layer.
// Keys are routed to nodes by FNV hash. All operations are safe for
// concurrent use; each node is guarded by its own RWMutex so concurrent
// readers of the same node proceed in parallel (gets are pure reads in
// every engine) and contend only with writers. Scans run under the per-node
// read lock on all three engine kinds — the hash engine's key order is
// precomputed on the write path, the LSM engine's merge-on-scan is a pure
// read, and the sorted engine overlays its write buffer on the sorted array
// without folding it — so scan-heavy mixes parallelize with gets. The
// ReadOnlyScan capability gate remains for engines that cannot promise a
// non-mutating scan.
type Cluster struct {
	kind  EngineKind
	nodes []*node

	// opDelayNanos, when non-zero, emulates the network round trip a real
	// SQL-over-NoSQL deployment pays per storage operation (the in-process
	// cluster is otherwise latency-free): each get/put/delete, and each
	// node seek of a scan, sleeps this long outside the node's lock.
	// Benchmarks that study how locking regimes overlap storage waits
	// (zidian-bench -exp mixed) opt in via SetOpDelay; the default is off.
	opDelayNanos atomic.Int64
	// serviceDelayNanos, when non-zero, upgrades the emulated network from
	// pure latency to per-node service capacity: each storage round at a
	// node holds that node's service slot for the delay, so one node
	// sustains at most 1/delay rounds per second no matter how many
	// statements are in flight. This is the model under which horizontal
	// read scaling is even observable — adding nodes adds aggregate service
	// capacity, exactly like adding region servers to an HBase or Cassandra
	// deployment — where the latency-only model gives every node infinite
	// throughput. When set it takes precedence over opDelayNanos.
	serviceDelayNanos atomic.Int64
	// perOpBatchDelay makes ApplyBatch/GetManyRouted charge the emulated
	// delay once per operation instead of once per batched round — the wire
	// behavior of the pre-batching write path, where every put and posting
	// read was its own RPC. Benchmarks enable it on baseline cells to keep
	// an A/B honest; serving deployments never should.
	perOpBatchDelay atomic.Bool
}

// SetOpDelay installs an emulated per-operation storage latency (zero
// disables). Safe to change at runtime.
func (c *Cluster) SetOpDelay(d time.Duration) { c.opDelayNanos.Store(int64(d)) }

// SetServiceDelay installs an emulated per-node service time (zero
// disables): every storage round trip occupies the target node for d, so a
// node's throughput is capped at 1/d rounds per second and concurrent
// statements queue behind each other at hot nodes. The scale-out bench
// (zidian-bench -exp scaleout) and `zidian-server -op-delay` use it to
// make node count a real capacity axis. Takes precedence over SetOpDelay.
func (c *Cluster) SetServiceDelay(d time.Duration) { c.serviceDelayNanos.Store(int64(d)) }

// SetPerOpBatchDelay switches the emulated-delay cost model of batched
// calls between one round trip per node group (default, the batched-RPC
// fan-out this store issues) and one round trip per operation (the legacy
// per-op RPCs of the pre-group-commit write path, for baseline benchmark
// cells).
func (c *Cluster) SetPerOpBatchDelay(v bool) { c.perOpBatchDelay.Store(v) }

// opWait sleeps the emulated storage latency, if any, attributing the wait
// to the statement's trace counters when one is threaded through.
func (c *Cluster) opWait(t *obs.KV) {
	if d := c.opDelayNanos.Load(); d > 0 {
		time.Sleep(time.Duration(d))
		t.CountWait(time.Duration(d))
	}
}

// roundWait models one storage round trip to node ni. Under the service
// model the round occupies the node's service slot for the delay —
// concurrent rounds to the same node queue, rounds to different nodes
// proceed in parallel; under the latency-only model it is a plain sleep.
func (c *Cluster) roundWait(t *obs.KV, ni int) {
	if sd := c.serviceDelayNanos.Load(); sd > 0 {
		n := c.nodes[ni]
		n.svc.Lock()
		time.Sleep(time.Duration(sd))
		n.svc.Unlock()
		t.CountWait(time.Duration(sd))
		return
	}
	c.opWait(t)
}

// batchWait models one batched round issued to the nodes of byNode
// concurrently, the way a real client library fans out per-node RPCs: the
// wall-clock wait is a single round trip regardless of fan-out (under the
// service model, the slowest node's queue), while the trace still charges
// one emulated RTT per node touched (the traffic the deployment pays).
func (c *Cluster) batchWait(t *obs.KV, byNode map[int][]int, ops int) {
	d := c.opDelayNanos.Load()
	sd := c.serviceDelayNanos.Load()
	if (d <= 0 && sd <= 0) || len(byNode) == 0 {
		return
	}
	if c.perOpBatchDelay.Load() && d > 0 {
		// Legacy cost model: every operation is its own round trip, paid
		// serially. One sleep covers the sum to spare the timer; the trace
		// charges per op.
		time.Sleep(time.Duration(d) * time.Duration(ops))
		for i := 0; i < ops; i++ {
			t.CountWait(time.Duration(d))
		}
		return
	}
	if sd > 0 {
		// Service model: each involved node's round occupies that node's
		// service slot; the rounds run concurrently and the batch returns
		// when the slowest completes.
		if len(byNode) == 1 {
			for ni := range byNode {
				n := c.nodes[ni]
				n.svc.Lock()
				time.Sleep(time.Duration(sd))
				n.svc.Unlock()
			}
		} else {
			var wg sync.WaitGroup
			for ni := range byNode {
				wg.Add(1)
				go func(ni int) {
					defer wg.Done()
					n := c.nodes[ni]
					n.svc.Lock()
					time.Sleep(time.Duration(sd))
					n.svc.Unlock()
				}(ni)
			}
			wg.Wait()
		}
		for range byNode {
			t.CountWait(time.Duration(sd))
		}
		return
	}
	time.Sleep(time.Duration(d))
	for range byNode {
		t.CountWait(time.Duration(d))
	}
}

type node struct {
	mu      sync.RWMutex
	eng     Engine
	metrics Metrics
	// svc serializes emulated service rounds at this node when the cluster
	// runs under the service-capacity delay model (SetServiceDelay). It is
	// deliberately separate from mu: the service wait stands in for the
	// remote node's request queue and must not extend data-lock hold times.
	svc sync.Mutex
}

// lockScan acquires the cheapest lock that makes a scan safe on this node's
// engine and returns the matching unlock.
func (n *node) lockScan() func() {
	if n.eng.ReadOnlyScan() {
		n.mu.RLock()
		return n.mu.RUnlock
	}
	n.mu.Lock()
	return n.mu.Unlock
}

// NewCluster builds a cluster of n nodes using the given engine kind.
func NewCluster(kind EngineKind, n int) *Cluster {
	if n < 1 {
		n = 1
	}
	c := &Cluster{kind: kind, nodes: make([]*node, n)}
	for i := range c.nodes {
		c.nodes[i] = &node{eng: NewEngine(kind)}
	}
	return c
}

// Kind returns the engine kind used by the cluster's nodes.
func (c *Cluster) Kind() EngineKind { return c.kind }

// NodeCount returns the number of storage nodes.
func (c *Cluster) NodeCount() int { return len(c.nodes) }

// NodeFor returns the node index that owns key.
func (c *Cluster) NodeFor(key []byte) int {
	h := fnv.New64a()
	h.Write(key)
	return int(h.Sum64() % uint64(len(c.nodes)))
}

// Get retrieves the value stored under key, counting one get invocation.
func (c *Cluster) Get(key []byte) ([]byte, bool) { return c.GetRouted(key, key) }

// GetRouted is Get with an explicit routing key: the pair lives on the node
// that owns route rather than key. BaaV stores route all segments of one
// logical block by the block's key prefix so the block stays colocated.
func (c *Cluster) GetRouted(route, key []byte) ([]byte, bool) {
	return c.GetRoutedT(nil, route, key)
}

// GetRoutedT is GetRouted with a per-statement trace sink (nil for
// untraced callers); the trace counts exactly what the node metrics count.
func (c *Cluster) GetRoutedT(t *obs.KV, route, key []byte) ([]byte, bool) {
	ni := c.NodeFor(route)
	c.roundWait(t, ni)
	n := c.nodes[ni]
	n.mu.RLock()
	v, ok := n.eng.Get(key)
	n.metrics.countGet(len(v))
	n.mu.RUnlock()
	t.CountGet(len(v))
	return v, ok
}

// Put stores value under key.
func (c *Cluster) Put(key, value []byte) { c.PutRouted(key, key, value) }

// PutRouted is Put with an explicit routing key.
func (c *Cluster) PutRouted(route, key, value []byte) { c.PutRoutedT(nil, route, key, value) }

// PutRoutedT is PutRouted with a per-statement trace sink.
func (c *Cluster) PutRoutedT(t *obs.KV, route, key, value []byte) {
	ni := c.NodeFor(route)
	c.roundWait(t, ni)
	n := c.nodes[ni]
	n.mu.Lock()
	n.eng.Put(key, value)
	n.metrics.countPut(len(key) + len(value))
	n.mu.Unlock()
	t.CountPut(len(key) + len(value))
}

// Delete removes key, reporting whether it was present.
func (c *Cluster) Delete(key []byte) bool { return c.DeleteRouted(key, key) }

// DeleteRouted is Delete with an explicit routing key.
func (c *Cluster) DeleteRouted(route, key []byte) bool { return c.DeleteRoutedT(nil, route, key) }

// DeleteRoutedT is DeleteRouted with a per-statement trace sink.
func (c *Cluster) DeleteRoutedT(t *obs.KV, route, key []byte) bool {
	ni := c.NodeFor(route)
	c.roundWait(t, ni)
	n := c.nodes[ni]
	n.mu.Lock()
	ok := n.eng.Delete(key)
	n.metrics.countDelete()
	n.mu.Unlock()
	t.CountDelete()
	return ok
}

// BatchOp is one mutation inside an ApplyBatch: a put of Value under Key
// (or a delete of Key when Delete is set), routed to the node that owns
// Route. Batching exists so a group commit can land many block/posting
// edits on a node for the cost of one round trip.
type BatchOp struct {
	Route  []byte
	Key    []byte
	Value  []byte
	Delete bool
}

// ApplyBatch applies a set of mutations grouped by owning node: each node
// involved pays one emulated round trip (opWait) and one lock acquisition
// for all of its ops, instead of one per op. Per-op metric and trace
// accounting is identical to the routed single-op calls, so traced totals
// still equal the cluster-wide metric delta. Ops land in input order within
// each node; cross-node order is unspecified (the key space is disjoint by
// construction, so it cannot matter).
func (c *Cluster) ApplyBatch(t *obs.KV, ops []BatchOp) {
	if len(ops) == 0 {
		return
	}
	byNode := groupByNode(c, ops, func(op BatchOp) []byte { return op.Route })
	c.batchWait(t, byNode, len(ops)) // one concurrent round: per-node RTTs overlap
	for ni, idxs := range byNode {
		n := c.nodes[ni]
		n.mu.Lock()
		for _, i := range idxs {
			op := ops[i]
			if op.Delete {
				n.eng.Delete(op.Key)
				n.metrics.countDelete()
				t.CountDelete()
			} else {
				n.eng.Put(op.Key, op.Value)
				n.metrics.countPut(len(op.Key) + len(op.Value))
				t.CountPut(len(op.Key) + len(op.Value))
			}
		}
		n.mu.Unlock()
	}
}

// GetRequest names one lookup inside a GetManyRouted: Key fetched from the
// node that owns Route.
type GetRequest struct {
	Route []byte
	Key   []byte
}

// GetResult is the answer to one GetRequest, aligned by index.
type GetResult struct {
	Value []byte
	OK    bool
}

// GetManyRouted resolves a set of routed lookups grouped by owning node:
// one emulated round trip and one read-lock acquisition per node per batch.
// Results align with the request slice. Per-op accounting matches
// GetRoutedT exactly.
func (c *Cluster) GetManyRouted(t *obs.KV, reqs []GetRequest) []GetResult {
	out := make([]GetResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	byNode := groupByNode(c, reqs, func(r GetRequest) []byte { return r.Route })
	c.batchWait(t, byNode, len(reqs)) // one concurrent round: per-node RTTs overlap
	for ni, idxs := range byNode {
		n := c.nodes[ni]
		n.mu.RLock()
		for _, i := range idxs {
			v, ok := n.eng.Get(reqs[i].Key)
			n.metrics.countGet(len(v))
			t.CountGet(len(v))
			out[i] = GetResult{Value: v, OK: ok}
		}
		n.mu.RUnlock()
	}
	return out
}

// groupByNode buckets item indexes by the node that owns each item's route.
func groupByNode[T any](c *Cluster, items []T, route func(T) []byte) map[int][]int {
	byNode := make(map[int][]int)
	for i, it := range items {
		ni := c.NodeFor(route(it))
		byNode[ni] = append(byNode[ni], i)
	}
	return byNode
}

// Scan visits every pair whose key starts with prefix, node by node in key
// order within each node, until fn returns false. Every visited pair counts
// as one scan step (a next()+get in the paper's terms).
func (c *Cluster) Scan(prefix []byte, fn func(key, value []byte) bool) {
	c.ScanT(nil, prefix, fn)
}

// ScanT is Scan with a per-statement trace sink. The walk is scattered:
// every node's seek round trip and engine walk runs concurrently (see
// ScanScatterT), while delivery stays node-contiguous in node order, so
// callers observe exactly the serial walk's output. fn must not issue
// cluster operations (see scatter.go).
func (c *Cluster) ScanT(t *obs.KV, prefix []byte, fn func(key, value []byte) bool) {
	c.ScanScatterT(t, prefix, fn)
}

// ScanRange visits every pair whose key k satisfies the window — k starts
// with prefix, lo <= k (when lo is non-nil) and k <= hi (when hi is
// non-nil), all bytewise — node by node in ascending key order within each
// node, until fn returns false. Keys below the window are never touched
// (the engines seek), and each node's walk stops at the window's upper
// fence without aborting the other nodes, so a posting-range lookup over a
// hash-sharded key space costs O(matching pairs) scan steps, not
// O(key space). Every visited pair counts as one scan step.
func (c *Cluster) ScanRange(prefix, lo, hi []byte, fn func(key, value []byte) bool) {
	for i := range c.nodes {
		if !c.ScanRangeNode(i, prefix, lo, hi, fn) {
			return
		}
	}
}

// ScanRangeNode is ScanRange restricted to one storage node: it walks the
// node's pairs inside the window in ascending key order and reports whether
// the walk reached the window's end (false: fn stopped it early). Callers
// that merge across nodes use it to stop each node independently — a
// LIMIT-bounded posting walk stops a node as soon as that node has yielded
// enough entries, without abandoning the other nodes' contributions.
func (c *Cluster) ScanRangeNode(i int, prefix, lo, hi []byte, fn func(key, value []byte) bool) bool {
	return c.ScanRangeNodeT(nil, i, prefix, lo, hi, fn)
}

// ScanRangeNodeT is ScanRangeNode with a per-statement trace sink. The
// trace counts a scan step only after the prefix check admits the pair —
// the same fence the node metrics apply — so traced totals always equal
// the cluster-wide metric delta for the statement. A node whose engine
// holds no keys under the prefix is skipped without the seek round trip.
func (c *Cluster) ScanRangeNodeT(t *obs.KV, i int, prefix, lo, hi []byte, fn func(key, value []byte) bool) bool {
	if c.nodePrefixEmpty(c.nodes[i], prefix) {
		return true
	}
	return c.scanRangeNode(t, i, prefix, lo, hi, fn)
}

// scanRangeNode is the core bounded walk of one node: seek round trip,
// lock, engine range scan with prefix fencing and per-pair accounting.
// Callers are expected to have applied the prefix-emptiness skip.
func (c *Cluster) scanRangeNode(t *obs.KV, i int, prefix, lo, hi []byte, fn func(key, value []byte) bool) bool {
	start := prefix
	if bytes.Compare(lo, prefix) > 0 {
		start = lo
	}
	// An open upper side still gets a byte fence — the prefix successor —
	// so engines that snapshot their window (the LSM merge-on-scan) stay
	// bounded by the prefix instead of materializing the key-space tail.
	// The fence key itself lies outside the prefix; the HasPrefix check
	// below rejects it before it is counted or visited.
	if hi == nil {
		hi = prefixSuccessor(prefix)
	}
	n := c.nodes[i]
	stopped := false
	c.roundWait(t, i) // one emulated seek round trip per node
	unlock := n.lockScan()
	n.eng.ScanRange(start, hi, func(k, v []byte) bool {
		if !bytes.HasPrefix(k, prefix) {
			return false // past the prefix on this node; next node
		}
		n.metrics.countScanNext(len(v))
		t.CountScanNext(len(v))
		if !fn(k, v) {
			stopped = true
			return false
		}
		return true
	})
	unlock()
	return !stopped
}

// prefixSuccessor returns the smallest byte string greater than every key
// carrying the prefix, or nil (unbounded) when no such string exists (the
// prefix is empty or all 0xFF).
func prefixSuccessor(prefix []byte) []byte {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xFF {
			out := make([]byte, i+1)
			copy(out, prefix[:i+1])
			out[i]++
			return out
		}
	}
	return nil
}

// ScanNode visits pairs with the prefix on one node only; parallel scan
// drivers partition work across nodes with it.
func (c *Cluster) ScanNode(i int, prefix []byte, fn func(key, value []byte) bool) {
	c.ScanNodeT(nil, i, prefix, fn)
}

// ScanNodeT is ScanNode with a per-statement trace sink. A node whose
// engine holds no keys under the prefix is skipped without the seek round
// trip.
func (c *Cluster) ScanNodeT(t *obs.KV, i int, prefix []byte, fn func(key, value []byte) bool) {
	n := c.nodes[i]
	if c.nodePrefixEmpty(n, prefix) {
		return
	}
	c.roundWait(t, i) // one emulated seek round trip per node
	defer n.lockScan()()
	n.eng.Scan(prefix, func(k, v []byte) bool {
		n.metrics.countScanNext(len(v))
		t.CountScanNext(len(v))
		return fn(k, v)
	})
}

// Metrics returns the aggregate snapshot across all nodes.
func (c *Cluster) Metrics() Snapshot {
	var total Snapshot
	for _, n := range c.nodes {
		total = total.Add(n.metrics.Snapshot())
	}
	return total
}

// NodeMetrics returns the snapshot for one node.
func (c *Cluster) NodeMetrics(i int) Snapshot { return c.nodes[i].metrics.Snapshot() }

// ResetMetrics zeroes all node counters.
func (c *Cluster) ResetMetrics() {
	for _, n := range c.nodes {
		n.metrics.Reset()
	}
}

// Len returns the total number of stored pairs.
func (c *Cluster) Len() int {
	total := 0
	for _, n := range c.nodes {
		n.mu.Lock()
		total += n.eng.Len()
		n.mu.Unlock()
	}
	return total
}

// SizeBytes returns the total stored payload size.
func (c *Cluster) SizeBytes() int64 {
	var total int64
	for _, n := range c.nodes {
		n.mu.Lock()
		total += n.eng.SizeBytes()
		n.mu.Unlock()
	}
	return total
}

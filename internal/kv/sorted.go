package kv

import (
	"sort"
	"strings"
)

// sortedEngine keeps one sorted array of pairs plus a small unsorted write
// buffer that is folded in on the write path once it grows, similar to a
// Kudu tablet (DiskRowSet + DeltaMemStore): point reads are binary searches,
// ordered scans are sequential, and writes pay an amortized merge cost.
// Merging happens only on Put/Delete (batched every mergeAt writes), never
// on the read path: Scan overlays the buffer on the sorted array on the
// fly, so it is a pure read and the cluster can run it under the per-node
// read lock, concurrent with gets — scans on all three engine kinds now
// parallelize with point reads.
type sortedEngine struct {
	keys []string
	vals [][]byte
	buf  map[string][]byte // overrides; nil value = delete
	size int64             // payload bytes of the sorted array only

	mergeAt int
}

const defaultMergeAt = 1024

func newSortedEngine() *sortedEngine {
	return &sortedEngine{buf: make(map[string][]byte), mergeAt: defaultMergeAt}
}

func (e *sortedEngine) Get(key []byte) ([]byte, bool) {
	k := string(key)
	if v, ok := e.buf[k]; ok {
		if v == nil {
			return nil, false
		}
		return v, true
	}
	i := sort.SearchStrings(e.keys, k)
	if i < len(e.keys) && e.keys[i] == k {
		return e.vals[i], true
	}
	return nil, false
}

func (e *sortedEngine) Put(key, value []byte) {
	e.buf[string(key)] = value
	if len(e.buf) >= e.mergeAt {
		e.merge()
	}
}

func (e *sortedEngine) Delete(key []byte) bool {
	_, ok := e.Get(key)
	if !ok {
		return false
	}
	e.buf[string(key)] = nil
	if len(e.buf) >= e.mergeAt {
		e.merge()
	}
	return true
}

// merge folds the buffer into the sorted array. Called only from the write
// path (Put/Delete), under the exclusive lock.
func (e *sortedEngine) merge() {
	if len(e.buf) == 0 {
		return
	}
	bufKeys := make([]string, 0, len(e.buf))
	for k := range e.buf {
		bufKeys = append(bufKeys, k)
	}
	sort.Strings(bufKeys)

	keys := make([]string, 0, len(e.keys)+len(bufKeys))
	vals := make([][]byte, 0, len(e.keys)+len(bufKeys))
	i, j := 0, 0
	for i < len(e.keys) || j < len(bufKeys) {
		switch {
		case j >= len(bufKeys) || (i < len(e.keys) && e.keys[i] < bufKeys[j]):
			keys = append(keys, e.keys[i])
			vals = append(vals, e.vals[i])
			i++
		case i >= len(e.keys) || bufKeys[j] < e.keys[i]:
			if v := e.buf[bufKeys[j]]; v != nil {
				keys = append(keys, bufKeys[j])
				vals = append(vals, v)
			}
			j++
		default: // equal: buffer wins
			if v := e.buf[bufKeys[j]]; v != nil {
				keys = append(keys, bufKeys[j])
				vals = append(vals, v)
			}
			i++
			j++
		}
	}
	e.keys, e.vals = keys, vals
	e.buf = make(map[string][]byte)
	e.size = 0
	for i := range e.keys {
		e.size += int64(len(e.keys[i]) + len(e.vals[i]))
	}
}

// Scan walks the sorted array and the write buffer with a read-only
// two-pointer overlay: buffered entries win over sorted ones of the same
// key, and buffered deletions hide them. Nothing is mutated, so the
// cluster runs scans under the shared lock.
func (e *sortedEngine) Scan(prefix []byte, fn func(key, value []byte) bool) {
	p := string(prefix)
	e.overlayScan(p,
		func(k string) bool { return strings.HasPrefix(k, p) },
		fn)
}

// ScanRange is the bounded ordered walk over [from, to]: the same read-only
// buffer overlay as Scan, seeked to from and stopped past to, so buffered
// but unmerged writes inside the range are visible without folding.
func (e *sortedEngine) ScanRange(from, to []byte, fn func(key, value []byte) bool) {
	e.overlayScan(string(from),
		func(k string) bool { return to == nil || k <= string(to) },
		fn)
}

// overlayScan merges the sorted array and the write buffer from the seek
// position, visiting keys while within reports true.
func (e *sortedEngine) overlayScan(seek string, within func(string) bool, fn func(key, value []byte) bool) {
	var bufKeys []string
	for k := range e.buf {
		if k >= seek && within(k) {
			bufKeys = append(bufKeys, k)
		}
	}
	sort.Strings(bufKeys)
	i := sort.SearchStrings(e.keys, seek)
	for i < len(e.keys) || len(bufKeys) > 0 {
		fromSorted := len(bufKeys) == 0 ||
			(i < len(e.keys) && e.keys[i] < bufKeys[0])
		var k string
		var v []byte
		switch {
		case fromSorted:
			if i >= len(e.keys) {
				return
			}
			k, v = e.keys[i], e.vals[i]
			i++
			if !within(k) {
				return
			}
		default:
			k = bufKeys[0]
			bufKeys = bufKeys[1:]
			v = e.buf[k]
			if i < len(e.keys) && e.keys[i] == k {
				i++ // buffer overrides the sorted entry
			}
			if v == nil {
				continue // buffered deletion
			}
		}
		if !fn([]byte(k), v) {
			return
		}
	}
}

// Len counts live pairs without folding the buffer: sorted entries plus
// buffered inserts minus buffered deletions of present keys.
func (e *sortedEngine) Len() int {
	n := len(e.keys)
	for k, v := range e.buf {
		i := sort.SearchStrings(e.keys, k)
		present := i < len(e.keys) && e.keys[i] == k
		switch {
		case v == nil && present:
			n--
		case v != nil && !present:
			n++
		}
	}
	return n
}

// SizeBytes accounts the sorted payload plus the buffer's net effect,
// without folding the buffer.
func (e *sortedEngine) SizeBytes() int64 {
	total := e.size
	for k, v := range e.buf {
		i := sort.SearchStrings(e.keys, k)
		present := i < len(e.keys) && e.keys[i] == k
		if present {
			total -= int64(len(k) + len(e.vals[i]))
		}
		if v != nil {
			total += int64(len(k) + len(v))
		}
	}
	return total
}

// ReadOnlyScan: the overlay scan never mutates engine state, so cluster
// scans may run under the shared (read) lock, concurrent with gets.
func (e *sortedEngine) ReadOnlyScan() bool { return true }

// PrefixEmpty: one binary search over the sorted array plus a linear pass
// over the write buffer, no mutation. Buffered deletions count as "maybe
// non-empty" — false only forfeits the round-trip skip.
func (e *sortedEngine) PrefixEmpty(prefix []byte) bool {
	p := string(prefix)
	i := sort.SearchStrings(e.keys, p)
	if i < len(e.keys) && strings.HasPrefix(e.keys[i], p) {
		return false
	}
	for k := range e.buf {
		if strings.HasPrefix(k, p) {
			return false
		}
	}
	return true
}

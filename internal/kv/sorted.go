package kv

import (
	"bytes"
	"sort"
)

// sortedEngine keeps one sorted array of pairs plus a small unsorted write
// buffer that is merged in when it grows, similar to a Kudu tablet
// (DiskRowSet + DeltaMemStore): point reads are binary searches, ordered
// scans are sequential, and writes pay a merge cost.
type sortedEngine struct {
	keys []string
	vals [][]byte
	buf  map[string][]byte // overrides; nil value = delete
	size int64

	mergeAt int
}

const defaultMergeAt = 1024

func newSortedEngine() *sortedEngine {
	return &sortedEngine{buf: make(map[string][]byte), mergeAt: defaultMergeAt}
}

func (e *sortedEngine) Get(key []byte) ([]byte, bool) {
	k := string(key)
	if v, ok := e.buf[k]; ok {
		if v == nil {
			return nil, false
		}
		return v, true
	}
	i := sort.SearchStrings(e.keys, k)
	if i < len(e.keys) && e.keys[i] == k {
		return e.vals[i], true
	}
	return nil, false
}

func (e *sortedEngine) Put(key, value []byte) {
	e.buf[string(key)] = value
	if len(e.buf) >= e.mergeAt {
		e.merge()
	}
}

func (e *sortedEngine) Delete(key []byte) bool {
	_, ok := e.Get(key)
	if !ok {
		return false
	}
	e.buf[string(key)] = nil
	if len(e.buf) >= e.mergeAt {
		e.merge()
	}
	return true
}

// merge folds the buffer into the sorted array.
func (e *sortedEngine) merge() {
	if len(e.buf) == 0 {
		return
	}
	bufKeys := make([]string, 0, len(e.buf))
	for k := range e.buf {
		bufKeys = append(bufKeys, k)
	}
	sort.Strings(bufKeys)

	keys := make([]string, 0, len(e.keys)+len(bufKeys))
	vals := make([][]byte, 0, len(e.keys)+len(bufKeys))
	i, j := 0, 0
	for i < len(e.keys) || j < len(bufKeys) {
		switch {
		case j >= len(bufKeys) || (i < len(e.keys) && e.keys[i] < bufKeys[j]):
			keys = append(keys, e.keys[i])
			vals = append(vals, e.vals[i])
			i++
		case i >= len(e.keys) || bufKeys[j] < e.keys[i]:
			if v := e.buf[bufKeys[j]]; v != nil {
				keys = append(keys, bufKeys[j])
				vals = append(vals, v)
			}
			j++
		default: // equal: buffer wins
			if v := e.buf[bufKeys[j]]; v != nil {
				keys = append(keys, bufKeys[j])
				vals = append(vals, v)
			}
			i++
			j++
		}
	}
	e.keys, e.vals = keys, vals
	e.buf = make(map[string][]byte)
	e.size = 0
	for i := range e.keys {
		e.size += int64(len(e.keys[i]) + len(e.vals[i]))
	}
}

func (e *sortedEngine) Scan(prefix []byte, fn func(key, value []byte) bool) {
	e.merge() // scans see a fully merged view
	p := string(prefix)
	i := sort.SearchStrings(e.keys, p)
	for ; i < len(e.keys); i++ {
		if !bytes.HasPrefix([]byte(e.keys[i]), prefix) {
			return
		}
		if !fn([]byte(e.keys[i]), e.vals[i]) {
			return
		}
	}
}

func (e *sortedEngine) Len() int {
	e.merge()
	return len(e.keys)
}

func (e *sortedEngine) SizeBytes() int64 {
	e.merge()
	return e.size
}

// ReadOnlyScan: scans fold the write buffer into the sorted array first, so
// they mutate engine state and need the exclusive lock.
func (e *sortedEngine) ReadOnlyScan() bool { return false }

package kv

import (
	"fmt"
	"sync"
	"testing"
)

// TestScanDuringGetRace drives concurrent scans, gets and writes against
// every engine kind. Its job is to fail under the race detector if a scan
// mutates engine state while only holding the read lock: the hash engine's
// precomputed key order, the LSM engine's snapshot scan, and the sorted
// engine's buffer-overlay scan must all stay pure reads (all three now
// report ReadOnlyScan, so every cluster scan runs under the shared lock).
func TestScanDuringGetRace(t *testing.T) {
	for _, kind := range []EngineKind{EngineHash, EngineLSM, EngineSorted} {
		t.Run(kind.String(), func(t *testing.T) {
			c := NewCluster(kind, 4)
			for i := 0; i < 512; i++ {
				c.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
			}
			const loops = 200
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				wg.Add(3)
				go func(w int) { // scanner
					defer wg.Done()
					for i := 0; i < loops; i++ {
						n := 0
						c.Scan([]byte("k"), func(_, _ []byte) bool {
							n++
							return n < 64
						})
					}
				}(w)
				go func(w int) { // getter
					defer wg.Done()
					for i := 0; i < loops; i++ {
						c.Get([]byte(fmt.Sprintf("k%04d", (i*7+w)%512)))
					}
				}(w)
				go func(w int) { // writer
					defer wg.Done()
					for i := 0; i < loops; i++ {
						k := []byte(fmt.Sprintf("w%d-%04d", w, i))
						c.Put(k, []byte("x"))
						if i%3 == 0 {
							c.Delete(k)
						}
					}
				}(w)
			}
			wg.Wait()
			// The seeded pairs must all survive the churn.
			for i := 0; i < 512; i += 61 {
				if _, ok := c.Get([]byte(fmt.Sprintf("k%04d", i))); !ok {
					t.Fatalf("%s: seeded key k%04d lost", kind, i)
				}
			}
		})
	}
}

// TestSortedEngineScanOverlay checks the sorted engine's read-only scan:
// unmerged buffered inserts, overrides and deletions must all be visible in
// key order without the scan folding the buffer.
func TestSortedEngineScanOverlay(t *testing.T) {
	e := newSortedEngine()
	for _, k := range []string{"d", "a", "c"} {
		e.Put([]byte(k), []byte("s:"+k))
	}
	e.merge() // sorted array now holds a, c, d
	// Buffered, unmerged writes: a fresh key, an override, and a delete.
	e.Put([]byte("b"), []byte("b:new"))
	e.Put([]byte("c"), []byte("c:override"))
	e.Delete([]byte("d"))
	if len(e.buf) == 0 {
		t.Fatal("test needs an unmerged buffer")
	}
	bufBefore := len(e.buf)
	var got []string
	e.Scan(nil, func(k, v []byte) bool {
		got = append(got, string(k)+"="+string(v))
		return true
	})
	want := []string{"a=s:a", "b=b:new", "c=c:override"}
	if len(got) != len(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}
	if len(e.buf) != bufBefore {
		t.Fatalf("scan mutated the buffer: %d -> %d entries", bufBefore, len(e.buf))
	}
	if n := e.Len(); n != 3 {
		t.Fatalf("Len = %d, want 3", n)
	}
	if e.SizeBytes() <= 0 {
		t.Fatalf("SizeBytes = %d", e.SizeBytes())
	}
	// Prefix scans see the overlay too.
	e.Put([]byte("cc"), []byte("cc:new"))
	got = nil
	e.Scan([]byte("c"), func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 2 || got[0] != "c" || got[1] != "cc" {
		t.Fatalf("prefix scan = %v", got)
	}
}

// TestHashEngineIncrementalOrder checks that the hash engine's precomputed
// key order survives interleaved puts and deletes.
func TestHashEngineIncrementalOrder(t *testing.T) {
	e := newHashEngine()
	for _, k := range []string{"d", "a", "c", "b", "e"} {
		e.Put([]byte(k), []byte(k))
	}
	e.Delete([]byte("c"))
	e.Put([]byte("ab"), []byte("ab"))
	e.Put([]byte("a"), []byte("a2")) // overwrite must not duplicate the key
	var got []string
	e.Scan(nil, func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"a", "ab", "b", "d", "e"}
	if len(got) != len(want) {
		t.Fatalf("scan order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order %v, want %v", got, want)
		}
	}
	if v, ok := e.Get([]byte("a")); !ok || string(v) != "a2" {
		t.Fatalf("overwrite lost: %q %v", v, ok)
	}
}

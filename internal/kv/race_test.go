package kv

import (
	"fmt"
	"sync"
	"testing"
)

// TestScanDuringGetRace drives concurrent scans, gets and writes against
// every engine kind. Its job is to fail under the race detector if a scan
// mutates engine state while only holding the read lock (the hash engine's
// precomputed key order and the LSM engine's snapshot scan must stay pure
// reads; the sorted engine must keep taking the exclusive lock).
func TestScanDuringGetRace(t *testing.T) {
	for _, kind := range []EngineKind{EngineHash, EngineLSM, EngineSorted} {
		t.Run(kind.String(), func(t *testing.T) {
			c := NewCluster(kind, 4)
			for i := 0; i < 512; i++ {
				c.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
			}
			const loops = 200
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				wg.Add(3)
				go func(w int) { // scanner
					defer wg.Done()
					for i := 0; i < loops; i++ {
						n := 0
						c.Scan([]byte("k"), func(_, _ []byte) bool {
							n++
							return n < 64
						})
					}
				}(w)
				go func(w int) { // getter
					defer wg.Done()
					for i := 0; i < loops; i++ {
						c.Get([]byte(fmt.Sprintf("k%04d", (i*7+w)%512)))
					}
				}(w)
				go func(w int) { // writer
					defer wg.Done()
					for i := 0; i < loops; i++ {
						k := []byte(fmt.Sprintf("w%d-%04d", w, i))
						c.Put(k, []byte("x"))
						if i%3 == 0 {
							c.Delete(k)
						}
					}
				}(w)
			}
			wg.Wait()
			// The seeded pairs must all survive the churn.
			for i := 0; i < 512; i += 61 {
				if _, ok := c.Get([]byte(fmt.Sprintf("k%04d", i))); !ok {
					t.Fatalf("%s: seeded key k%04d lost", kind, i)
				}
			}
		})
	}
}

// TestHashEngineIncrementalOrder checks that the hash engine's precomputed
// key order survives interleaved puts and deletes.
func TestHashEngineIncrementalOrder(t *testing.T) {
	e := newHashEngine()
	for _, k := range []string{"d", "a", "c", "b", "e"} {
		e.Put([]byte(k), []byte(k))
	}
	e.Delete([]byte("c"))
	e.Put([]byte("ab"), []byte("ab"))
	e.Put([]byte("a"), []byte("a2")) // overwrite must not duplicate the key
	var got []string
	e.Scan(nil, func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"a", "ab", "b", "d", "e"}
	if len(got) != len(want) {
		t.Fatalf("scan order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order %v, want %v", got, want)
		}
	}
	if v, ok := e.Get([]byte("a")); !ok || string(v) != "a2" {
		t.Fatalf("overwrite lost: %q %v", v, ok)
	}
}

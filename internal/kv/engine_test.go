package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

var allKinds = []EngineKind{EngineHash, EngineLSM, EngineSorted}

// forEachEngine runs the test body against every engine implementation.
func forEachEngine(t *testing.T, body func(t *testing.T, e Engine)) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) { body(t, NewEngine(kind)) })
	}
}

func TestEngineGetPut(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e Engine) {
		if _, ok := e.Get([]byte("a")); ok {
			t.Fatal("empty engine must miss")
		}
		e.Put([]byte("a"), []byte("1"))
		e.Put([]byte("b"), []byte("2"))
		if v, ok := e.Get([]byte("a")); !ok || string(v) != "1" {
			t.Fatalf("get a = %q, %v", v, ok)
		}
		e.Put([]byte("a"), []byte("9")) // overwrite
		if v, _ := e.Get([]byte("a")); string(v) != "9" {
			t.Fatalf("overwrite failed: %q", v)
		}
		if e.Len() != 2 {
			t.Fatalf("len = %d", e.Len())
		}
	})
}

func TestEngineDelete(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e Engine) {
		e.Put([]byte("x"), []byte("1"))
		if !e.Delete([]byte("x")) {
			t.Fatal("delete existing must return true")
		}
		if e.Delete([]byte("x")) {
			t.Fatal("delete missing must return false")
		}
		if _, ok := e.Get([]byte("x")); ok {
			t.Fatal("deleted key must miss")
		}
		if e.Len() != 0 {
			t.Fatalf("len = %d", e.Len())
		}
	})
}

func TestEngineScanOrderAndPrefix(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e Engine) {
		keys := []string{"b/2", "a/1", "b/1", "c", "a/2", "b/10"}
		for _, k := range keys {
			e.Put([]byte(k), []byte("v"+k))
		}
		var got []string
		e.Scan([]byte("b/"), func(k, v []byte) bool {
			got = append(got, string(k))
			if string(v) != "v"+string(k) {
				t.Fatalf("value mismatch for %s", k)
			}
			return true
		})
		want := []string{"b/1", "b/10", "b/2"}
		if len(got) != len(want) {
			t.Fatalf("scan got %v want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("scan got %v want %v", got, want)
			}
		}
		// Early stop.
		n := 0
		e.Scan(nil, func(k, v []byte) bool { n++; return n < 2 })
		if n != 2 {
			t.Fatalf("early stop visited %d", n)
		}
	})
}

func TestEngineScanAllSorted(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e Engine) {
		r := rand.New(rand.NewSource(7))
		want := make([]string, 0, 200)
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("k%06d", r.Intn(100000))
			e.Put([]byte(k), []byte("v"))
			want = append(want, k)
		}
		sort.Strings(want)
		// Dedup (overwrites collapse).
		dedup := want[:0]
		for i, k := range want {
			if i == 0 || want[i-1] != k {
				dedup = append(dedup, k)
			}
		}
		var got []string
		e.Scan(nil, func(k, _ []byte) bool { got = append(got, string(k)); return true })
		if len(got) != len(dedup) {
			t.Fatalf("scan %d keys, want %d", len(got), len(dedup))
		}
		for i := range got {
			if got[i] != dedup[i] {
				t.Fatalf("position %d: got %s want %s", i, got[i], dedup[i])
			}
		}
	})
}

// TestEngineMatchesModel drives every engine with a random workload and
// checks it against a plain map model after every operation batch.
func TestEngineMatchesModel(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e Engine) {
		r := rand.New(rand.NewSource(42))
		model := make(map[string]string)
		for step := 0; step < 3000; step++ {
			k := fmt.Sprintf("key%03d", r.Intn(150))
			switch r.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("val%d", step)
				e.Put([]byte(k), []byte(v))
				model[k] = v
			case 2:
				got := e.Delete([]byte(k))
				_, want := model[k]
				if got != want {
					t.Fatalf("step %d: delete %s = %v, model %v", step, k, got, want)
				}
				delete(model, k)
			}
			if step%500 == 0 {
				kk := fmt.Sprintf("key%03d", r.Intn(150))
				gv, gok := e.Get([]byte(kk))
				mv, mok := model[kk]
				if gok != mok || (gok && string(gv) != mv) {
					t.Fatalf("step %d: get %s = %q,%v; model %q,%v", step, kk, gv, gok, mv, mok)
				}
			}
		}
		if e.Len() != len(model) {
			t.Fatalf("len = %d, model %d", e.Len(), len(model))
		}
		e.Scan(nil, func(k, v []byte) bool {
			if model[string(k)] != string(v) {
				t.Fatalf("scan mismatch at %s", k)
			}
			return true
		})
	})
}

func TestLSMFlushAndCompaction(t *testing.T) {
	e := newLSMEngine()
	e.flushSize = 64 // force frequent flushes
	e.maxRuns = 2
	for i := 0; i < 500; i++ {
		e.Put([]byte(fmt.Sprintf("k%04d", i%50)), bytes.Repeat([]byte("x"), 8))
	}
	if len(e.runs) > e.maxRuns+1 {
		t.Fatalf("compaction did not bound runs: %d", len(e.runs))
	}
	if e.Len() != 50 {
		t.Fatalf("len = %d want 50", e.Len())
	}
	// Tombstones survive flush and hide older versions.
	e.Delete([]byte("k0001"))
	if _, ok := e.Get([]byte("k0001")); ok {
		t.Fatal("tombstoned key visible")
	}
	e.flush()
	if _, ok := e.Get([]byte("k0001")); ok {
		t.Fatal("tombstoned key visible after flush")
	}
	if e.Len() != 49 {
		t.Fatalf("len = %d want 49", e.Len())
	}
}

func TestSortedMerge(t *testing.T) {
	e := newSortedEngine()
	e.mergeAt = 4
	for i := 9; i >= 0; i-- {
		e.Put([]byte(fmt.Sprintf("k%d", i)), []byte{byte('0' + i)})
	}
	var got []string
	e.Scan(nil, func(k, _ []byte) bool { got = append(got, string(k)); return true })
	if len(got) != 10 || got[0] != "k0" || got[9] != "k9" {
		t.Fatalf("scan = %v", got)
	}
	e.Delete([]byte("k5"))
	if e.Len() != 9 {
		t.Fatalf("len = %d", e.Len())
	}
	if e.SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
}

func TestEngineKindString(t *testing.T) {
	names := map[EngineKind]string{EngineHash: "hash", EngineLSM: "lsm", EngineSorted: "sorted"}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%v.String() = %s", k, k.String())
		}
	}
	if EngineKind(99).String() != "unknown" {
		t.Fatal("unknown kind")
	}
}

package kv

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// TestEngineScanRange checks the bounded ordered walk on every engine kind:
// inclusive byte bounds, seeks that skip keys below the window, and
// visibility of unmerged writes (the sorted engine's buffer, the LSM
// memtable).
func TestEngineScanRange(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngine(kind)
			for i := 0; i < 100; i++ {
				e.Put([]byte(fmt.Sprintf("k%03d", i)), []byte{byte(i)})
			}
			var got []string
			e.ScanRange([]byte("k010"), []byte("k015"), func(k, _ []byte) bool {
				got = append(got, string(k))
				return true
			})
			want := []string{"k010", "k011", "k012", "k013", "k014", "k015"}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("ScanRange = %v, want %v", got, want)
			}

			// Open-ended bounds.
			got = nil
			e.ScanRange([]byte("k097"), nil, func(k, _ []byte) bool {
				got = append(got, string(k))
				return true
			})
			if !reflect.DeepEqual(got, []string{"k097", "k098", "k099"}) {
				t.Fatalf("open-hi ScanRange = %v", got)
			}
			got = nil
			e.ScanRange(nil, []byte("k001"), func(k, _ []byte) bool {
				got = append(got, string(k))
				return true
			})
			if !reflect.DeepEqual(got, []string{"k000", "k001"}) {
				t.Fatalf("open-lo ScanRange = %v", got)
			}

			// A fresh unmerged write inside the window must be visible.
			e.Put([]byte("k012x"), []byte("new"))
			e.Delete([]byte("k013"))
			got = nil
			e.ScanRange([]byte("k012"), []byte("k014"), func(k, _ []byte) bool {
				got = append(got, string(k))
				return true
			})
			if !reflect.DeepEqual(got, []string{"k012", "k012x", "k014"}) {
				t.Fatalf("post-write ScanRange = %v", got)
			}

			// Early stop.
			n := 0
			e.ScanRange(nil, nil, func(_, _ []byte) bool {
				n++
				return n < 3
			})
			if n != 3 {
				t.Fatalf("early stop visited %d", n)
			}
		})
	}
}

// TestClusterScanRange checks that the cluster walk visits only in-window
// pairs across all nodes (hash sharding spreads the range), counts exactly
// one scan step per visited pair, and stops per node at the upper fence.
func TestClusterScanRange(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			c := NewCluster(kind, 4)
			prefix := []byte("p:")
			for i := 0; i < 200; i++ {
				c.Put([]byte(fmt.Sprintf("p:%03d", i)), []byte{1})
				c.Put([]byte(fmt.Sprintf("q:%03d", i)), []byte{2}) // outside prefix
			}
			c.ResetMetrics()
			seen := make(map[string]bool)
			c.ScanRange(prefix, []byte("p:050"), []byte("p:059"), func(k, _ []byte) bool {
				seen[string(k)] = true
				return true
			})
			if len(seen) != 10 {
				t.Fatalf("visited %d keys, want 10: %v", len(seen), seen)
			}
			for i := 50; i < 60; i++ {
				if !seen[fmt.Sprintf("p:%03d", i)] {
					t.Fatalf("missing p:%03d", i)
				}
			}
			if m := c.Metrics(); m.ScanNexts != 10 {
				t.Fatalf("scan steps = %d, want 10 (bounded walk must skip out-of-range keys)", m.ScanNexts)
			}

			// Open upper side: the walk is fenced by the prefix successor,
			// so it covers the prefix tail but never the q: key space.
			c.ResetMetrics()
			n := 0
			c.ScanRange(prefix, []byte("p:190"), nil, func(k, _ []byte) bool {
				if !bytes.HasPrefix(k, prefix) {
					t.Fatalf("open-hi walk escaped the prefix: %q", k)
				}
				n++
				return true
			})
			if n != 10 {
				t.Fatalf("open-hi walk visited %d keys, want 10", n)
			}
			if succ := prefixSuccessor([]byte{0xFF, 0xFF}); succ != nil {
				t.Fatalf("prefixSuccessor(FF FF) = %x, want nil", succ)
			}
			if succ := prefixSuccessor([]byte{0x01, 0xFF}); !bytes.Equal(succ, []byte{0x02}) {
				t.Fatalf("prefixSuccessor(01 FF) = %x, want 02", succ)
			}
		})
	}
}

package kv

import (
	"fmt"
	"testing"
	"time"

	"zidian/internal/obs"
)

// distinctRoutes returns n routes that land on n distinct nodes of c, so a
// test can pin exactly how many nodes a batch touches.
func distinctRoutes(t *testing.T, c *Cluster, n int) [][]byte {
	t.Helper()
	routes := make([][]byte, 0, n)
	seen := make(map[int]bool)
	for i := 0; len(routes) < n && i < 10_000; i++ {
		r := []byte(fmt.Sprintf("route-%d", i))
		ni := c.NodeFor(r)
		if !seen[ni] {
			seen[ni] = true
			routes = append(routes, r)
		}
	}
	if len(routes) < n {
		t.Fatalf("could not find %d distinct-node routes", n)
	}
	return routes
}

func TestApplyBatchValuesAndAccounting(t *testing.T) {
	for _, kind := range []EngineKind{EngineHash, EngineLSM, EngineSorted} {
		t.Run(kind.String(), func(t *testing.T) {
			c := NewCluster(kind, 4)
			routes := distinctRoutes(t, c, 3)
			var ops []BatchOp
			for ri, r := range routes {
				for s := 0; s < 4; s++ {
					ops = append(ops, BatchOp{
						Route: r,
						Key:   []byte(fmt.Sprintf("%s/%d", r, s)),
						Value: []byte(fmt.Sprintf("v%d-%d", ri, s)),
					})
				}
			}
			var kvt obs.KV
			c.ApplyBatch(&kvt, ops)
			// Every op landed, colocated with its route.
			for _, op := range ops {
				v, ok := c.GetRouted(op.Route, op.Key)
				if !ok || string(v) != string(op.Value) {
					t.Fatalf("key %q = %q, %v; want %q", op.Key, v, ok, op.Value)
				}
				owner := c.NodeFor(op.Route)
				found := false
				c.ScanNode(owner, op.Key, func(_, _ []byte) bool { found = true; return false })
				if !found {
					t.Fatalf("key %q not on its route's node", op.Key)
				}
			}
			// Trace put count equals the op count and matches the cluster
			// metrics (same conservation the traced single-op paths keep).
			snap := kvt.Snapshot()
			if snap.Puts != int64(len(ops)) {
				t.Fatalf("trace puts = %d, want %d", snap.Puts, len(ops))
			}
			// Batched deletes remove the pairs and count per op.
			var dels []BatchOp
			for _, op := range ops[:5] {
				dels = append(dels, BatchOp{Route: op.Route, Key: op.Key, Delete: true})
			}
			c.ApplyBatch(&kvt, dels)
			if got := kvt.Snapshot().Deletes; got != 5 {
				t.Fatalf("trace deletes = %d, want 5", got)
			}
			if _, ok := c.GetRouted(ops[0].Route, ops[0].Key); ok {
				t.Fatal("batched delete left the pair")
			}
			if m := c.Metrics(); m.Puts != int64(len(ops)) || m.Deletes != 5 {
				t.Fatalf("cluster metrics = %+v", m)
			}
		})
	}
}

func TestApplyBatchChargesOneDelayPerNode(t *testing.T) {
	for _, kind := range []EngineKind{EngineHash, EngineLSM, EngineSorted} {
		t.Run(kind.String(), func(t *testing.T) {
			c := NewCluster(kind, 4)
			routes := distinctRoutes(t, c, 3)
			delay := 2 * time.Millisecond
			c.SetOpDelay(delay)
			// 30 ops spread over exactly 3 nodes: the batch must pay 3 RTTs,
			// not 30.
			var ops []BatchOp
			for i := 0; i < 30; i++ {
				r := routes[i%3]
				ops = append(ops, BatchOp{
					Route: r,
					Key:   []byte(fmt.Sprintf("%s/k%02d", r, i)),
					Value: []byte("v"),
				})
			}
			var kvt obs.KV
			c.ApplyBatch(&kvt, ops)
			if got, want := kvt.Snapshot().WaitNanos, int64(3*delay); got != want {
				t.Fatalf("batched apply waited %d ns, want exactly %d (3 nodes x 1 RTT)", got, want)
			}

			// The multi-get pays the same per-node accounting.
			var reqs []GetRequest
			for _, op := range ops {
				reqs = append(reqs, GetRequest{Route: op.Route, Key: op.Key})
			}
			var gt obs.KV
			res := c.GetManyRouted(&gt, reqs)
			for i, r := range res {
				if !r.OK || string(r.Value) != "v" {
					t.Fatalf("result %d = %+v", i, r)
				}
			}
			if got, want := gt.Snapshot().WaitNanos, int64(3*delay); got != want {
				t.Fatalf("batched get waited %d ns, want exactly %d", got, want)
			}
			if got := gt.Snapshot().Gets; got != int64(len(reqs)) {
				t.Fatalf("trace gets = %d, want %d", got, len(reqs))
			}
		})
	}
}

func TestGetManyRoutedAlignmentAndMisses(t *testing.T) {
	c := NewCluster(EngineHash, 4)
	c.PutRouted([]byte("r1"), []byte("r1/a"), []byte("A"))
	c.PutRouted([]byte("r2"), []byte("r2/b"), []byte("B"))
	res := c.GetManyRouted(nil, []GetRequest{
		{Route: []byte("r2"), Key: []byte("r2/b")},
		{Route: []byte("r1"), Key: []byte("r1/missing")},
		{Route: []byte("r1"), Key: []byte("r1/a")},
	})
	if !res[0].OK || string(res[0].Value) != "B" {
		t.Fatalf("res[0] = %+v", res[0])
	}
	if res[1].OK {
		t.Fatalf("res[1] should miss, got %+v", res[1])
	}
	if !res[2].OK || string(res[2].Value) != "A" {
		t.Fatalf("res[2] = %+v", res[2])
	}
	// Empty batches are free.
	var kvt obs.KV
	c.SetOpDelay(time.Millisecond)
	c.ApplyBatch(&kvt, nil)
	if out := c.GetManyRouted(&kvt, nil); len(out) != 0 {
		t.Fatalf("empty multi-get returned %d results", len(out))
	}
	if w := kvt.Snapshot().WaitNanos; w != 0 {
		t.Fatalf("empty batches waited %d ns", w)
	}
}

// TestPerOpBatchDelay flips the batched calls to the legacy cost model:
// every op in the batch pays its own round trip, the wire behavior of the
// pre-group-commit write path that baseline bench cells reproduce.
func TestPerOpBatchDelay(t *testing.T) {
	c := NewCluster(EngineHash, 4)
	routes := distinctRoutes(t, c, 3)
	delay := time.Millisecond
	c.SetOpDelay(delay)
	c.SetPerOpBatchDelay(true)
	var ops []BatchOp
	for i := 0; i < 12; i++ {
		r := routes[i%3]
		ops = append(ops, BatchOp{
			Route: r,
			Key:   []byte(fmt.Sprintf("%s/p%02d", r, i)),
			Value: []byte("v"),
		})
	}
	var kvt obs.KV
	c.ApplyBatch(&kvt, ops)
	if got, want := kvt.Snapshot().WaitNanos, int64(12*delay); got != want {
		t.Fatalf("per-op apply waited %d ns, want %d (12 ops x 1 RTT)", got, want)
	}
	var gt obs.KV
	reqs := make([]GetRequest, len(ops))
	for i, op := range ops {
		reqs[i] = GetRequest{Route: op.Route, Key: op.Key}
	}
	c.GetManyRouted(&gt, reqs)
	if got, want := gt.Snapshot().WaitNanos, int64(12*delay); got != want {
		t.Fatalf("per-op get waited %d ns, want %d", got, want)
	}
	// Back to the batched model: 3 node groups, 3 RTTs.
	c.SetPerOpBatchDelay(false)
	var bt obs.KV
	c.ApplyBatch(&bt, ops)
	if got, want := bt.Snapshot().WaitNanos, int64(3*delay); got != want {
		t.Fatalf("batched apply waited %d ns, want %d", got, want)
	}
}

package kv

import (
	"bytes"
	"sort"
	"strings"
)

// lsmEngine is a deliberately small log-structured merge engine: writes go
// to an in-memory memtable; when the memtable exceeds a threshold it is
// flushed to an immutable sorted run; runs are compacted (merged) once there
// are too many. Reads consult the memtable first and then runs from newest
// to oldest. Deletes write tombstones (nil values).
type lsmEngine struct {
	mem       map[string][]byte // nil value = tombstone
	memBytes  int64
	runs      []run // runs[0] is oldest
	size      int64 // live payload estimate
	flushSize int64
	maxRuns   int
}

type run struct {
	keys []string
	vals [][]byte // nil = tombstone
}

const (
	defaultFlushBytes = 256 << 10
	defaultMaxRuns    = 6
)

func newLSMEngine() *lsmEngine {
	return &lsmEngine{
		mem:       make(map[string][]byte),
		flushSize: defaultFlushBytes,
		maxRuns:   defaultMaxRuns,
	}
}

func (e *lsmEngine) Get(key []byte) ([]byte, bool) {
	k := string(key)
	if v, ok := e.mem[k]; ok {
		if v == nil {
			return nil, false
		}
		return v, true
	}
	for i := len(e.runs) - 1; i >= 0; i-- {
		r := &e.runs[i]
		j := sort.SearchStrings(r.keys, k)
		if j < len(r.keys) && r.keys[j] == k {
			if r.vals[j] == nil {
				return nil, false
			}
			return r.vals[j], true
		}
	}
	return nil, false
}

func (e *lsmEngine) Put(key, value []byte) {
	k := string(key)
	e.mem[k] = value
	e.memBytes += int64(len(k) + len(value))
	if e.memBytes >= e.flushSize {
		e.flush()
	}
}

func (e *lsmEngine) Delete(key []byte) bool {
	_, ok := e.Get(key)
	if !ok {
		return false
	}
	k := string(key)
	e.mem[k] = nil // tombstone
	e.memBytes += int64(len(k))
	if e.memBytes >= e.flushSize {
		e.flush()
	}
	return true
}

// flush turns the memtable into a new sorted run and compacts if needed.
func (e *lsmEngine) flush() {
	if len(e.mem) == 0 {
		return
	}
	keys := make([]string, 0, len(e.mem))
	for k := range e.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		vals[i] = e.mem[k]
	}
	e.runs = append(e.runs, run{keys: keys, vals: vals})
	e.mem = make(map[string][]byte)
	e.memBytes = 0
	if len(e.runs) > e.maxRuns {
		e.compact()
	}
}

// compact merges all runs into one, dropping tombstones and shadowed
// versions.
func (e *lsmEngine) compact() {
	merged := make(map[string][]byte)
	for _, r := range e.runs { // oldest first; newer overwrite
		for i, k := range r.keys {
			merged[k] = r.vals[i]
		}
	}
	keys := make([]string, 0, len(merged))
	for k, v := range merged {
		if v != nil {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		vals[i] = merged[k]
	}
	e.runs = []run{{keys: keys, vals: vals}}
}

// Scan merges the memtable and all runs, newest version wins.
func (e *lsmEngine) Scan(prefix []byte, fn func(key, value []byte) bool) {
	e.scanMerged(prefix, prefix, nil, fn)
}

// ScanRange is the bounded ordered walk: the snapshot covers only the
// [from, to] key window, so the cost is proportional to the range, not the
// engine.
func (e *lsmEngine) ScanRange(from, to []byte, fn func(key, value []byte) bool) {
	e.scanMerged(from, nil, to, fn)
}

// scanMerged builds a merge-on-scan snapshot of the keys at or above seek
// that satisfy the (prefix, to) window and streams it in ascending order,
// newest version winning. Small engine sizes make the snapshot acceptable;
// real LSM trees stream a k-way merge instead. Shared by prefix scans
// (prefix set, to nil) and bounded range scans (prefix nil, to set).
func (e *lsmEngine) scanMerged(seek, prefix, to []byte, fn func(key, value []byte) bool) {
	keep := func(k string) bool {
		if prefix != nil && !bytes.HasPrefix([]byte(k), prefix) {
			return false
		}
		return to == nil || k <= string(to)
	}
	s := string(seek)
	merged := make(map[string][]byte)
	for _, r := range e.runs {
		i := sort.SearchStrings(r.keys, s)
		for ; i < len(r.keys); i++ {
			if !keep(r.keys[i]) {
				break
			}
			merged[r.keys[i]] = r.vals[i]
		}
	}
	for k, v := range e.mem {
		if k >= s && keep(k) {
			merged[k] = v
		}
	}
	keys := make([]string, 0, len(merged))
	for k, v := range merged {
		if v != nil {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn([]byte(k), merged[k]) {
			return
		}
	}
}

func (e *lsmEngine) Len() int {
	n := 0
	e.Scan(nil, func(_, _ []byte) bool { n++; return true })
	return n
}

func (e *lsmEngine) SizeBytes() int64 {
	var n int64
	e.Scan(nil, func(k, v []byte) bool { n += int64(len(k) + len(v)); return true })
	return n
}

// ReadOnlyScan: the merge-on-scan snapshot reads the memtable and runs
// without flushing or compacting, so scans are pure reads.
func (e *lsmEngine) ReadOnlyScan() bool { return true }

// PrefixEmpty: a binary search per run plus a linear pass over the
// memtable, no mutation. Tombstoned keys count as "maybe non-empty" —
// distinguishing a tombstone from live shadowed versions would cost the
// walk the probe exists to avoid, and false only forfeits the skip.
func (e *lsmEngine) PrefixEmpty(prefix []byte) bool {
	p := string(prefix)
	for i := range e.runs {
		r := &e.runs[i]
		j := sort.SearchStrings(r.keys, p)
		if j < len(r.keys) && strings.HasPrefix(r.keys[j], p) {
			return false
		}
	}
	for k := range e.mem {
		if strings.HasPrefix(k, p) {
			return false
		}
	}
	return true
}

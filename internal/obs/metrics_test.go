package obs

import (
	"bufio"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.NewGauge("g", "a gauge")
	g.Set(3)
	g.Set(2)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}
	v := r.NewCounterVec("v_total", "labeled", "kind")
	v.With("a").Inc()
	v.With("a").Inc()
	v.With("b").Inc()
	if v.With("a").Value() != 2 || v.With("b").Value() != 1 {
		t.Fatalf("vec = a:%d b:%d", v.With("a").Value(), v.With("b").Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram(nil) // DefBuckets
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
	// 100 observations spread evenly over [1ms, 100ms]: the true p50 is
	// ~50ms, p99 ~99ms. Bucket interpolation is coarse; assert the right
	// bucket neighborhood rather than exact values.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if p50 := s.Quantile(0.50); p50 < 0.025 || p50 > 0.1 {
		t.Fatalf("p50 = %gs, want within [0.025, 0.1]", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 0.05 || p99 > 0.25 {
		t.Fatalf("p99 = %gs, want within [0.05, 0.25]", p99)
	}
	if s.Quantile(0.50) > s.Quantile(0.99) {
		t.Fatal("quantiles not monotone")
	}
	wantSum := int64(0)
	for i := 1; i <= 100; i++ {
		wantSum += int64(time.Duration(i) * time.Millisecond)
	}
	if s.SumNanos != wantSum {
		t.Fatalf("sum = %d, want %d", s.SumNanos, wantSum)
	}
}

func TestHistogramQuantilesLowSamples(t *testing.T) {
	// Below MinQuantileSamples every quantile must be exactly 0 — a p99
	// interpolated from one or two observations is a bucket boundary dressed
	// up as signal.
	for n := 0; n < MinQuantileSamples; n++ {
		h := newHistogram(nil)
		for i := 0; i < n; i++ {
			h.Observe(7 * time.Millisecond)
		}
		s := h.Snapshot()
		if s.QuantilesValid() {
			t.Fatalf("n=%d: QuantilesValid = true, want false", n)
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			if v := s.Quantile(q); v != 0 {
				t.Fatalf("n=%d: Quantile(%g) = %g, want 0", n, q, v)
			}
		}
	}
	// At exactly MinQuantileSamples quantiles turn on and are non-zero.
	h := newHistogram(nil)
	for i := 0; i < MinQuantileSamples; i++ {
		h.Observe(7 * time.Millisecond)
	}
	s := h.Snapshot()
	if !s.QuantilesValid() {
		t.Fatalf("n=%d: QuantilesValid = false, want true", MinQuantileSamples)
	}
	if v := s.Quantile(0.5); v <= 0 {
		t.Fatalf("n=%d: Quantile(0.5) = %g, want > 0", MinQuantileSamples, v)
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	a := newHistogram(nil)
	b := newHistogram(nil)
	for i := 0; i < 10; i++ {
		a.Observe(time.Millisecond)
		b.Observe(100 * time.Millisecond)
	}
	m := a.Snapshot()
	m.Merge(b.Snapshot())
	if m.Count != 20 {
		t.Fatalf("merged count = %d, want 20", m.Count)
	}
	if p50 := m.Quantile(0.5); p50 > 0.1 {
		t.Fatalf("merged p50 = %g, want below the upper mode", p50)
	}
	if p95 := m.Quantile(0.95); p95 < 0.05 {
		t.Fatalf("merged p95 = %g, want in the upper mode", p95)
	}
}

// sampleLine matches one Prometheus text sample: name{labels} value.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [0-9eE.+-]+$|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? \+Inf$`)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("t_ops_total", "ops").Add(7)
	cv := r.NewCounterVec("t_events_total", "events", "kind")
	cv.With("x").Add(2)
	cv.With("y").Add(3)
	r.NewGauge("t_depth", "depth").Set(1.5)
	h := r.NewHistogram("t_latency_seconds", "latency", nil)
	h.Observe(time.Millisecond)
	h.Observe(time.Second)
	hv := r.NewHistogramVec("t_verb_seconds", "by verb", "verb", nil)
	hv.With("select").Observe(10 * time.Millisecond)
	hv.With("insert").Observe(20 * time.Millisecond)
	r.RegisterFunc("t_pull", "pull-style", "gauge", "mode", func() []Sample {
		return []Sample{{Label: "a", Value: 1}, {Label: "b", Value: 2}}
	})

	var sb strings.Builder
	r.WritePrometheus(&sb)
	text := sb.String()

	for _, fam := range []string{"t_ops_total", "t_events_total", "t_depth",
		"t_latency_seconds", "t_verb_seconds", "t_pull"} {
		if !strings.Contains(text, "# HELP "+fam+" ") {
			t.Fatalf("missing HELP for %s in:\n%s", fam, text)
		}
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Fatalf("missing TYPE for %s", fam)
		}
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
	}

	// Histogram invariants: cumulative buckets are monotone, the +Inf bucket
	// equals _count, and _sum is present.
	var cum []int64
	var count int64 = -1
	sc = bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		switch {
		case strings.HasPrefix(fields[0], "t_latency_seconds_bucket{"):
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", fields[1], err)
			}
			cum = append(cum, v)
		case fields[0] == "t_latency_seconds_count":
			count, _ = strconv.ParseInt(fields[1], 10, 64)
		}
	}
	if len(cum) == 0 || count != 2 {
		t.Fatalf("histogram exposition missing (buckets=%d count=%d)", len(cum), count)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative buckets not monotone: %v", cum)
		}
	}
	if cum[len(cum)-1] != count {
		t.Fatalf("+Inf bucket %d != count %d", cum[len(cum)-1], count)
	}
	if !strings.Contains(text, "t_latency_seconds_sum ") {
		t.Fatal("missing _sum sample")
	}
	if !strings.Contains(text, `t_verb_seconds_bucket{verb="insert",le=`) {
		t.Fatal("labeled histogram missing verb label on buckets")
	}
}

package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// KV accumulates kv-layer counters for one traced statement. Every method
// is safe on a nil receiver so untraced call paths stay allocation- and
// branch-cheap: the cluster threads a *KV through its routed operations and
// counts into it only when non-nil, mirroring exactly what the per-node
// Metrics count (so a trace's totals equal the cluster-wide delta for the
// statement). Fields are atomics because the parallel executor's workers
// record concurrently.
type KV struct {
	gets, puts, deletes, scanNexts atomic.Int64
	bytesRead, bytesWritten        atomic.Int64
	waitNanos                      atomic.Int64 // emulated storage round-trip sleeps
}

// CountGet records one point read of n value bytes.
func (k *KV) CountGet(n int) {
	if k == nil {
		return
	}
	k.gets.Add(1)
	k.bytesRead.Add(int64(n))
}

// CountPut records one write of n key+value bytes.
func (k *KV) CountPut(n int) {
	if k == nil {
		return
	}
	k.puts.Add(1)
	k.bytesWritten.Add(int64(n))
}

// CountDelete records one delete.
func (k *KV) CountDelete() {
	if k == nil {
		return
	}
	k.deletes.Add(1)
}

// CountScanNext records one scan step over n value bytes.
func (k *KV) CountScanNext(n int) {
	if k == nil {
		return
	}
	k.scanNexts.Add(1)
	k.bytesRead.Add(int64(n))
}

// CountWait records emulated round-trip time spent sleeping in the store.
func (k *KV) CountWait(d time.Duration) {
	if k == nil {
		return
	}
	k.waitNanos.Add(int64(d))
}

// Merge adds a snapshot's totals into the counters — a group-committed
// statement folds its batch's kv traffic into its own sink this way.
// Nil-safe like the counting methods.
func (k *KV) Merge(s KVSnapshot) {
	if k == nil {
		return
	}
	k.gets.Add(s.Gets)
	k.puts.Add(s.Puts)
	k.deletes.Add(s.Deletes)
	k.scanNexts.Add(s.ScanNexts)
	k.bytesRead.Add(s.BytesRead)
	k.bytesWritten.Add(s.BytesWritten)
	k.waitNanos.Add(s.WaitNanos)
}

// Snapshot returns the current totals; zero for a nil receiver.
func (k *KV) Snapshot() KVSnapshot {
	if k == nil {
		return KVSnapshot{}
	}
	return KVSnapshot{
		Gets:         k.gets.Load(),
		Puts:         k.puts.Load(),
		Deletes:      k.deletes.Load(),
		ScanNexts:    k.scanNexts.Load(),
		BytesRead:    k.bytesRead.Load(),
		BytesWritten: k.bytesWritten.Load(),
		WaitNanos:    k.waitNanos.Load(),
	}
}

// KVSnapshot is an immutable copy of KV counters.
type KVSnapshot struct {
	Gets         int64 `json:"gets"`
	Puts         int64 `json:"puts"`
	Deletes      int64 `json:"deletes"`
	ScanNexts    int64 `json:"scanNexts"`
	BytesRead    int64 `json:"bytesRead"`
	BytesWritten int64 `json:"bytesWritten"`
	WaitNanos    int64 `json:"waitNanos"`
}

// Sub returns s - o, the delta between two snapshots.
func (s KVSnapshot) Sub(o KVSnapshot) KVSnapshot {
	return KVSnapshot{
		Gets:         s.Gets - o.Gets,
		Puts:         s.Puts - o.Puts,
		Deletes:      s.Deletes - o.Deletes,
		ScanNexts:    s.ScanNexts - o.ScanNexts,
		BytesRead:    s.BytesRead - o.BytesRead,
		BytesWritten: s.BytesWritten - o.BytesWritten,
		WaitNanos:    s.WaitNanos - o.WaitNanos,
	}
}

// Ops is the total kv operation count across all op kinds.
func (s KVSnapshot) Ops() int64 { return s.Gets + s.Puts + s.Deletes + s.ScanNexts }

// Trace is the per-statement trace context. The server allocates one per
// traced statement and threads it through planner and executor; layers
// below the executor see only the embedded KV counters. All counter
// methods are nil-safe. The operator span stack is NOT synchronized: plan
// tree recursion is single-goroutine in both executors (the parallel
// executor fans workers out only inside an operator and joins them before
// the operator's span finishes), so spans open and close on one goroutine.
type Trace struct {
	KV           KV
	postingReads atomic.Int64 // index posting lists decoded
	blocks       atomic.Int64 // data blocks fetched and decoded

	// QueueWaitNanos and LockWaitNanos are written once by the server
	// before the executor runs (or after a failed acquire), never raced.
	QueueWaitNanos int64
	LockWaitNanos  int64

	// SnapshotSeqs records, per relation, the MVCC commit sequence the
	// statement's reads were pinned to. Written once when the snapshot is
	// pinned, before the executor runs; never raced.
	SnapshotSeqs map[string]uint64
	// CommitWaitNanos is the time a write statement spent queued in its
	// relation's group commit before its batch installed. Written by the
	// statement's own goroutine after the commit completes.
	CommitWaitNanos int64

	Root  *OpNode
	stack []*OpNode
}

// CountPostings records n index posting-list reads; nil-safe.
func (t *Trace) CountPostings(n int) {
	if t == nil {
		return
	}
	t.postingReads.Add(int64(n))
}

// CountBlocks records n block fetches; nil-safe.
func (t *Trace) CountBlocks(n int) {
	if t == nil {
		return
	}
	t.blocks.Add(int64(n))
}

// PostingReads returns the posting-list read total; 0 when nil.
func (t *Trace) PostingReads() int64 {
	if t == nil {
		return 0
	}
	return t.postingReads.Load()
}

// Blocks returns the block fetch total; 0 when nil.
func (t *Trace) Blocks() int64 {
	if t == nil {
		return 0
	}
	return t.blocks.Load()
}

// KVCounters returns the trace's kv counter sink, nil for a nil trace, so
// callers can pass it down without re-checking the trace itself.
func (t *Trace) KVCounters() *KV {
	if t == nil {
		return nil
	}
	return &t.KV
}

// OpNode is one operator's span in the executed plan tree: static identity
// (Name, Label), measured rows and wall time, the inclusive kv-op delta
// observed while the span was open, and — for parallel operators — the
// worker fan-out with per-worker row counts.
type OpNode struct {
	Name      string        `json:"name"`
	Label     string        `json:"label,omitempty"`
	Rows      int64         `json:"rows"`
	Wall      time.Duration `json:"wallNanos"`
	KV        KVSnapshot    `json:"kv"`
	Workers   int           `json:"workers,omitempty"`
	PerWorker []int64       `json:"perWorker,omitempty"`
	// Nodes and PerNode record the storage-node fan-out of a scattered
	// walk or batched fetch: how many nodes the operator touched and each
	// node's contribution (pairs walked, postings yielded, or gets served,
	// depending on the operator). PerNodeRTT, when known, is each node's
	// emulated round-trip time in nanoseconds — under the service-capacity
	// delay model it includes queueing at the node, so a hot node shows up
	// directly in the plan.
	Nodes      int       `json:"nodes,omitempty"`
	PerNode    []int64   `json:"perNode,omitempty"`
	PerNodeRTT []int64   `json:"perNodeRTTNanos,omitempty"`
	Children   []*OpNode `json:"children,omitempty"`

	start   time.Time
	startKV KVSnapshot
	// lazyLabel, when set, renders Label on demand (see StartOpLazy).
	lazyLabel func() string
}

// StartOp opens an operator span as a child of the innermost open span
// (or as the root). Returns nil on a nil trace.
func (t *Trace) StartOp(name, label string) *OpNode {
	if t == nil {
		return nil
	}
	n := &OpNode{Name: name, Label: label, start: time.Now(), startKV: t.KV.Snapshot()}
	if len(t.stack) == 0 {
		t.Root = n
	} else {
		p := t.stack[len(t.stack)-1]
		p.Children = append(p.Children, n)
	}
	t.stack = append(t.stack, n)
	return n
}

// StartOpLazy is StartOp with the label rendering deferred until the tree is
// actually shown. Almost every statement's tree is dropped unread — only
// EXPLAIN ANALYZE renders it — while a label costs several allocations per
// operator, so hot executors pass a thunk instead of the string.
func (t *Trace) StartOpLazy(name string, label func() string) *OpNode {
	if t == nil {
		return nil
	}
	n := &OpNode{Name: name, lazyLabel: label, start: time.Now(), startKV: t.KV.Snapshot()}
	if len(t.stack) == 0 {
		t.Root = n
	} else {
		p := t.stack[len(t.stack)-1]
		p.Children = append(p.Children, n)
	}
	t.stack = append(t.stack, n)
	return n
}

// ResolveLabels renders any deferred labels in the tree rooted at n. Callers
// that serialize an OpNode (JSON can't see a label thunk) must resolve
// first; RenderPlan does it itself.
func (n *OpNode) ResolveLabels() {
	if n == nil {
		return
	}
	if n.lazyLabel != nil {
		n.Label = n.lazyLabel()
		n.lazyLabel = nil
	}
	for _, c := range n.Children {
		c.ResolveLabels()
	}
}

// AnnotateNodes records a storage-node fan-out on the innermost open
// span: perNode holds each node's contribution to the operator's walk or
// batch, rttNanos (optional, nil to omit) each node's emulated round-trip
// time. Called by the access-path layers (scan scatter, posting merge,
// batched gets) while their operator's span is on top of the stack; safe
// no-op on a nil or span-less trace. Like the span stack itself it must be
// called from the driving goroutine only.
func (t *Trace) AnnotateNodes(perNode []int64, rttNanos []int64) {
	if t == nil || len(t.stack) == 0 || len(perNode) == 0 {
		return
	}
	n := t.stack[len(t.stack)-1]
	n.Nodes = len(perNode)
	n.PerNode = perNode
	n.PerNodeRTT = rttNanos
}

// FinishOp closes the span, recording its row count, wall time, and
// inclusive kv delta. No-op when the trace or span is nil.
func (t *Trace) FinishOp(n *OpNode, rows int) {
	if t == nil || n == nil {
		return
	}
	n.Rows = int64(rows)
	n.Wall = time.Since(n.start)
	n.KV = t.KV.Snapshot().Sub(n.startKV)
	if len(t.stack) > 0 && t.stack[len(t.stack)-1] == n {
		t.stack = t.stack[:len(t.stack)-1]
	}
}

// RenderPlan renders an operator tree as indented lines, one per node.
// With analyze=false only the static shape (Name and Label) is shown; with
// analyze=true each line carries rows, wall time, the inclusive kv-op
// breakdown, and worker fan-out.
func RenderPlan(root *OpNode, analyze bool) []string {
	root.ResolveLabels()
	var out []string
	var walk func(n *OpNode, depth int)
	walk = func(n *OpNode, depth int) {
		if n == nil {
			return
		}
		var b strings.Builder
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Name)
		if n.Label != "" {
			b.WriteByte(' ')
			b.WriteString(n.Label)
		}
		if analyze {
			fmt.Fprintf(&b, " (rows=%d time=%s", n.Rows, fmtDur(n.Wall))
			if ops := n.KV.Ops(); ops > 0 {
				fmt.Fprintf(&b, " kvops=%d", ops)
				var parts []string
				if n.KV.Gets > 0 {
					parts = append(parts, fmt.Sprintf("gets=%d", n.KV.Gets))
				}
				if n.KV.ScanNexts > 0 {
					parts = append(parts, fmt.Sprintf("scan_next=%d", n.KV.ScanNexts))
				}
				if n.KV.Puts > 0 {
					parts = append(parts, fmt.Sprintf("puts=%d", n.KV.Puts))
				}
				if n.KV.Deletes > 0 {
					parts = append(parts, fmt.Sprintf("deletes=%d", n.KV.Deletes))
				}
				if len(parts) > 0 {
					fmt.Fprintf(&b, " [%s]", strings.Join(parts, " "))
				}
			}
			if n.KV.WaitNanos > 0 {
				fmt.Fprintf(&b, " rtt=%s", fmtDur(time.Duration(n.KV.WaitNanos)))
			}
			if n.Workers > 0 {
				fmt.Fprintf(&b, " workers=%d", n.Workers)
				if len(n.PerWorker) > 0 {
					fmt.Fprintf(&b, " per_worker=%s", fmtPerWorker(n.PerWorker))
				}
			}
			if n.Nodes > 0 {
				fmt.Fprintf(&b, " nodes=%d", n.Nodes)
				if len(n.PerNode) > 0 {
					fmt.Fprintf(&b, " per_node=%s", fmtPerWorker(n.PerNode))
				}
				if len(n.PerNodeRTT) > 0 {
					fmt.Fprintf(&b, " node_rtt=%s", fmtPerNodeRTT(n.PerNodeRTT))
				}
			}
			b.WriteByte(')')
		}
		out = append(out, b.String())
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return out
}

// fmtPerWorker renders per-worker row counts compactly: the exact list for
// small fan-outs, min/median/max beyond eight workers.
func fmtPerWorker(rows []int64) string {
	if len(rows) <= 8 {
		parts := make([]string, len(rows))
		for i, r := range rows {
			parts[i] = fmt.Sprintf("%d", r)
		}
		return "[" + strings.Join(parts, ",") + "]"
	}
	sorted := append([]int64(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return fmt.Sprintf("[min=%d med=%d max=%d n=%d]",
		sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1], len(sorted))
}

// fmtPerNodeRTT renders per-node round-trip times compactly: the exact
// list for small fan-outs, min/median/max beyond eight nodes.
func fmtPerNodeRTT(nanos []int64) string {
	if len(nanos) <= 8 {
		parts := make([]string, len(nanos))
		for i, n := range nanos {
			parts[i] = fmtDur(time.Duration(n))
		}
		return "[" + strings.Join(parts, ",") + "]"
	}
	sorted := append([]int64(nil), nanos...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return fmt.Sprintf("[min=%s med=%s max=%s n=%d]",
		fmtDur(time.Duration(sorted[0])), fmtDur(time.Duration(sorted[len(sorted)/2])),
		fmtDur(time.Duration(sorted[len(sorted)-1])), len(sorted))
}

// fmtDur rounds a duration for display so plan lines stay scannable.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}

package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func usageFor(verb, template string, wall time.Duration, rows int64) StmtUsage {
	return StmtUsage{
		Verb:     verb,
		Template: template,
		Wall:     wall,
		Rows:     rows,
		KV:       KVSnapshot{Gets: 2, ScanNexts: 3, BytesRead: 100},
	}
}

func TestStmtStatsBasicAggregation(t *testing.T) {
	s := NewStmtStats(64)
	for i := 0; i < 5; i++ {
		u := usageFor("select", "select a from T where id = ?", 10*time.Millisecond, 1)
		u.CacheHit = i > 0
		u.Relations = []string{"T"}
		s.Record(u)
	}
	u := usageFor("select", "select a from T where id = ?", 20*time.Millisecond, 0)
	u.Err = true
	s.Record(u)
	s.Record(usageFor("insert", "insert into T values (?, ?)", time.Millisecond, 0))

	snap := s.Snapshot()
	if snap.Tracked != 2 || len(snap.Statements) != 2 {
		t.Fatalf("tracked = %d entries = %d, want 2/2", snap.Tracked, len(snap.Statements))
	}
	if snap.Evicted != nil || snap.Evictions != 0 {
		t.Fatalf("unexpected evictions: %+v", snap)
	}
	var sel *StmtEntry
	for i := range snap.Statements {
		if snap.Statements[i].Verb == "select" {
			sel = &snap.Statements[i]
		}
	}
	if sel == nil {
		t.Fatal("select entry missing")
	}
	if sel.Calls != 6 || sel.Errors != 1 || sel.Rows != 5 || sel.CacheHits != 4 {
		t.Fatalf("select entry = %+v", sel)
	}
	wantNanos := int64(5*10*time.Millisecond + 20*time.Millisecond)
	if sel.TotalNanos != wantNanos {
		t.Fatalf("totalNanos = %d, want %d", sel.TotalNanos, wantNanos)
	}
	if sel.KV.Gets != 12 || sel.KVOps != sel.KV.Ops() {
		t.Fatalf("kv aggregation wrong: %+v", sel.KV)
	}
	if sel.P95Micros <= 0 {
		t.Fatalf("p95 = %g, want > 0 at %d samples", sel.P95Micros, sel.Calls)
	}
	if len(sel.Relations) != 1 || sel.Relations[0] != "T" {
		t.Fatalf("relations = %v", sel.Relations)
	}
}

func TestStmtStatsLowSampleQuantilesOmitted(t *testing.T) {
	s := NewStmtStats(8)
	s.Record(usageFor("select", "select 1", time.Millisecond, 1))
	snap := s.Snapshot()
	e := snap.Statements[0]
	if e.P50Micros != 0 || e.P95Micros != 0 || e.P99Micros != 0 {
		t.Fatalf("quantiles at n=1 should be 0, got %+v", e)
	}
	if e.MeanMicros <= 0 {
		t.Fatalf("mean should still be reported, got %g", e.MeanMicros)
	}
}

// TestStmtStatsEvictionConservation drives many more templates than the
// registry can hold and checks nothing is lost: the per-template sums plus
// the _evicted fold bucket must equal exactly what was recorded.
func TestStmtStatsEvictionConservation(t *testing.T) {
	const capacity = 8
	s := NewStmtStats(capacity)
	const templates = 100
	const callsPer = 3
	for c := 0; c < callsPer; c++ {
		for i := 0; i < templates; i++ {
			s.Record(usageFor("select", fmt.Sprintf("select a from T%d", i), time.Millisecond, 2))
		}
	}
	snap := s.Snapshot()
	if snap.Tracked > capacity {
		t.Fatalf("tracked %d > capacity %d", snap.Tracked, capacity)
	}
	if snap.Evictions == 0 || snap.Evicted == nil {
		t.Fatalf("expected evictions, got %d (evicted=%v)", snap.Evictions, snap.Evicted)
	}
	if snap.Evicted.Template != EvictedTemplate {
		t.Fatalf("evicted template = %q", snap.Evicted.Template)
	}
	var calls, rows, nanos, kvOps int64
	for _, e := range snap.Statements {
		calls += e.Calls
		rows += e.Rows
		nanos += e.TotalNanos
		kvOps += e.KVOps
	}
	calls += snap.Evicted.Calls
	rows += snap.Evicted.Rows
	nanos += snap.Evicted.TotalNanos
	kvOps += snap.Evicted.KVOps
	wantCalls := int64(templates * callsPer)
	if calls != wantCalls {
		t.Fatalf("calls conserved: got %d, want %d", calls, wantCalls)
	}
	if rows != 2*wantCalls {
		t.Fatalf("rows conserved: got %d, want %d", rows, 2*wantCalls)
	}
	if nanos != wantCalls*int64(time.Millisecond) {
		t.Fatalf("nanos conserved: got %d, want %d", nanos, wantCalls*int64(time.Millisecond))
	}
	if kvOps != 5*wantCalls {
		t.Fatalf("kv ops conserved: got %d, want %d", kvOps, 5*wantCalls)
	}
}

// TestStmtStatsConcurrentConservation is the -race half of the registry
// conservation satellite: N goroutines recording M templates concurrently,
// with a capacity small enough to force eviction churn; per-template sums
// (including _evicted) must equal the totals each goroutine contributed.
func TestStmtStatsConcurrentConservation(t *testing.T) {
	const (
		goroutines = 8
		templates  = 40
		perG       = 200
	)
	s := NewStmtStats(16)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tpl := fmt.Sprintf("select a from T%d where id = ?", (g*7+i)%templates)
				u := usageFor("select", tpl, time.Duration(1+i%5)*time.Millisecond, 1)
				u.PostingReads = 2
				u.Blocks = 1
				s.Record(u)
			}
		}(g)
	}
	wg.Wait()

	snap := s.Snapshot()
	var calls, kvOps, postings, blocks, nanos int64
	sum := func(e StmtEntry) {
		calls += e.Calls
		kvOps += e.KVOps
		postings += e.PostingReads
		blocks += e.Blocks
		nanos += e.TotalNanos
	}
	for _, e := range snap.Statements {
		sum(e)
	}
	if snap.Evicted != nil {
		sum(*snap.Evicted)
	}
	wantCalls := int64(goroutines * perG)
	if calls != wantCalls {
		t.Fatalf("calls = %d, want %d", calls, wantCalls)
	}
	if kvOps != 5*wantCalls {
		t.Fatalf("kv ops = %d, want %d", kvOps, 5*wantCalls)
	}
	if postings != 2*wantCalls || blocks != wantCalls {
		t.Fatalf("postings/blocks = %d/%d, want %d/%d", postings, blocks, 2*wantCalls, wantCalls)
	}
	var wantNanos int64
	for i := 0; i < perG; i++ {
		wantNanos += int64(goroutines) * int64(time.Duration(1+i%5)*time.Millisecond)
	}
	if nanos != wantNanos {
		t.Fatalf("nanos = %d, want %d", nanos, wantNanos)
	}
}

func TestSortStmtEntries(t *testing.T) {
	entries := []StmtEntry{
		{Template: "b", Calls: 5, KVOps: 1, TotalNanos: 100},
		{Template: "a", Calls: 1, KVOps: 9, TotalNanos: 300},
		{Template: "c", Calls: 3, KVOps: 4, TotalNanos: 200},
	}
	SortStmtEntries(entries, SortByTotalTime)
	if entries[0].Template != "a" || entries[2].Template != "b" {
		t.Fatalf("total_time order wrong: %v", entries)
	}
	SortStmtEntries(entries, SortByCalls)
	if entries[0].Template != "b" || entries[2].Template != "a" {
		t.Fatalf("calls order wrong: %v", entries)
	}
	SortStmtEntries(entries, SortByKVOps)
	if entries[0].Template != "a" || entries[2].Template != "b" {
		t.Fatalf("kv_ops order wrong: %v", entries)
	}
	// Ties break by template ascending for stable output.
	tied := []StmtEntry{{Template: "z", Calls: 1}, {Template: "y", Calls: 1}}
	SortStmtEntries(tied, SortByCalls)
	if tied[0].Template != "y" {
		t.Fatalf("tie-break wrong: %v", tied)
	}
}

func TestTopTemplates(t *testing.T) {
	s := NewStmtStats(32)
	// Same template under two verbs folds into one total.
	s.Record(usageFor("select", "select a from T where id = ?", 10*time.Millisecond, 1))
	s.Record(usageFor("explain_analyze", "select a from T where id = ?", 30*time.Millisecond, 1))
	s.Record(usageFor("select", "select b from U", time.Millisecond, 1))
	top := s.TopTemplates(1)
	if len(top) != 1 {
		t.Fatalf("top len = %d", len(top))
	}
	if top[0].Template != "select a from T where id = ?" || top[0].Calls != 2 {
		t.Fatalf("top = %+v", top[0])
	}
	if top[0].Seconds < 0.039 || top[0].Seconds > 0.041 {
		t.Fatalf("seconds = %g", top[0].Seconds)
	}
	if got := s.TopTemplates(10); len(got) != 2 {
		t.Fatalf("top(10) len = %d, want 2", len(got))
	}
}

func TestStmtStatsNilSafe(t *testing.T) {
	var s *StmtStats
	s.Record(usageFor("select", "x", time.Millisecond, 1)) // must not panic
	if s.Tracked() != 0 || s.Evictions() != 0 || s.Capacity() != 0 {
		t.Fatal("nil registry should report zeros")
	}
	if snap := s.Snapshot(); snap.Tracked != 0 || len(snap.Statements) != 0 {
		t.Fatalf("nil snapshot = %+v", snap)
	}
	if top := s.TopTemplates(5); top != nil {
		t.Fatalf("nil top = %v", top)
	}
}

package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceConcurrentRecording hammers one trace's counters from many
// goroutines — the parallel executor's worker pattern — and checks the
// totals. Run under -race this is the trace-recording race test.
func TestTraceConcurrentRecording(t *testing.T) {
	tr := &Trace{}
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			kv := tr.KVCounters()
			for i := 0; i < perWorker; i++ {
				kv.CountGet(10)
				kv.CountScanNext(20)
				kv.CountPut(5)
				kv.CountDelete()
				kv.CountWait(time.Microsecond)
				tr.CountPostings(2)
				tr.CountBlocks(1)
			}
		}()
	}
	wg.Wait()
	s := tr.KV.Snapshot()
	n := int64(workers * perWorker)
	if s.Gets != n || s.ScanNexts != n || s.Puts != n || s.Deletes != n {
		t.Fatalf("counters = %+v, want %d each", s, n)
	}
	if s.BytesRead != 30*n || s.BytesWritten != 5*n {
		t.Fatalf("bytes = read %d written %d, want %d / %d", s.BytesRead, s.BytesWritten, 30*n, 5*n)
	}
	if s.WaitNanos != n*int64(time.Microsecond) {
		t.Fatalf("waitNanos = %d, want %d", s.WaitNanos, n*int64(time.Microsecond))
	}
	if tr.PostingReads() != 2*n || tr.Blocks() != n {
		t.Fatalf("postings = %d blocks = %d, want %d / %d", tr.PostingReads(), tr.Blocks(), 2*n, n)
	}
	if s.Ops() != 4*n {
		t.Fatalf("ops = %d, want %d", s.Ops(), 4*n)
	}
}

// TestTraceNilSafe: every method on a nil trace and nil KV is a no-op, so
// the untraced path costs only nil checks.
func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	var kv *KV
	kv.CountGet(1)
	kv.CountPut(1)
	kv.CountDelete()
	kv.CountScanNext(1)
	kv.CountWait(time.Second)
	if s := kv.Snapshot(); s != (KVSnapshot{}) {
		t.Fatalf("nil KV snapshot = %+v", s)
	}
	tr.CountPostings(1)
	tr.CountBlocks(1)
	if tr.PostingReads() != 0 || tr.Blocks() != 0 || tr.KVCounters() != nil {
		t.Fatal("nil trace leaked state")
	}
	n := tr.StartOp("Scan", "")
	if n != nil {
		t.Fatal("nil trace opened a span")
	}
	tr.FinishOp(n, 0) // must not panic
	if lines := RenderPlan(nil, true); len(lines) != 0 {
		t.Fatalf("RenderPlan(nil) = %v", lines)
	}
}

// TestTraceSpanTree: spans nest into a tree, record inclusive kv deltas,
// and render with indentation.
func TestTraceSpanTree(t *testing.T) {
	tr := &Trace{}
	root := tr.StartOp("HashJoin", "S.nationkey = N.nationkey")
	left := tr.StartOp("IndexLookup", "NATION(name)")
	tr.KVCounters().CountGet(100)
	tr.FinishOp(left, 1)
	right := tr.StartOp("ScanRange", "SUPPLIER")
	tr.KVCounters().CountScanNext(50)
	tr.KVCounters().CountScanNext(50)
	tr.FinishOp(right, 2)
	tr.FinishOp(root, 2)

	if tr.Root != root || len(root.Children) != 2 {
		t.Fatalf("tree shape wrong: root=%v children=%d", tr.Root, len(root.Children))
	}
	if left.KV.Gets != 1 || left.KV.ScanNexts != 0 {
		t.Fatalf("left span kv = %+v", left.KV)
	}
	if right.KV.ScanNexts != 2 || right.KV.Gets != 0 {
		t.Fatalf("right span kv = %+v", right.KV)
	}
	// The root's inclusive delta covers both children.
	if root.KV.Gets != 1 || root.KV.ScanNexts != 2 {
		t.Fatalf("root inclusive kv = %+v", root.KV)
	}

	plain := RenderPlan(tr.Root, false)
	if len(plain) != 3 {
		t.Fatalf("plain render = %v", plain)
	}
	if plain[0] != "HashJoin S.nationkey = N.nationkey" {
		t.Fatalf("root line = %q", plain[0])
	}
	if !strings.HasPrefix(plain[1], "  IndexLookup") || !strings.HasPrefix(plain[2], "  ScanRange") {
		t.Fatalf("children not indented: %v", plain)
	}
	analyzed := RenderPlan(tr.Root, true)
	if !strings.Contains(analyzed[0], "rows=2") || !strings.Contains(analyzed[0], "kvops=3") {
		t.Fatalf("analyzed root line = %q", analyzed[0])
	}
	if !strings.Contains(analyzed[1], "gets=1") || !strings.Contains(analyzed[2], "scan_next=2") {
		t.Fatalf("analyzed child lines = %v", analyzed[1:])
	}
}

// Package obs is the observability core: a dependency-free metrics
// registry (atomic counters, gauges, fixed-bucket latency histograms with
// quantile snapshots, single-label families, Prometheus text exposition)
// and a per-query trace context threaded through the executors down to the
// kv cluster. Everything here is stdlib-only so every layer of the system
// can import it without cycles.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Sample is one exported value of a counter or gauge family. Label is the
// label value ("" for unlabeled families).
type Sample struct {
	Label string
	Value float64
}

// family is one registered metric family, exposed in registration order.
type family struct {
	name  string
	help  string
	typ   string // "counter" | "gauge" | "histogram"
	label string // label key, "" when unlabeled
	// Exactly one of collect / hist / histVec is set.
	collect func() []Sample
	hist    *Histogram
	histVec *HistogramVec
}

// Registry is an ordered collection of metric families. Registration takes
// the lock; reads of counter/gauge values are atomic and exposition only
// locks the family list, so scraping never blocks the hot path.
type Registry struct {
	mu       sync.Mutex
	families []*family
	names    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) add(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[f.name] {
		panic("obs: duplicate metric family " + f.name)
	}
	r.names[f.name] = true
	r.families = append(r.families, f)
}

// RegisterFunc registers a counter or gauge family whose samples are pulled
// from fn at exposition time. This is how pre-existing stats structs
// (admission, plan cache, kv node metrics) join the registry without
// changing their own bookkeeping.
func (r *Registry) RegisterFunc(name, help, typ, label string, fn func() []Sample) {
	if typ != "counter" && typ != "gauge" {
		panic("obs: RegisterFunc type must be counter or gauge")
	}
	r.add(&family{name: name, help: help, typ: typ, label: label, collect: fn})
}

// NewCounter registers and returns an unlabeled monotonic counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, typ: "counter",
		collect: func() []Sample { return []Sample{{Value: float64(c.Value())}} }})
	return c
}

// NewCounterVec registers and returns a counter family with one label key.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{counters: make(map[string]*Counter)}
	r.add(&family{name: name, help: help, typ: "counter", label: label, collect: v.samples})
	return v
}

// NewGauge registers and returns an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&family{name: name, help: help, typ: "gauge",
		collect: func() []Sample { return []Sample{{Value: g.Value()}} }})
	return g
}

// NewHistogram registers and returns an unlabeled latency histogram.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.add(&family{name: name, help: help, typ: "histogram", hist: h})
	return h
}

// NewHistogramVec registers and returns a histogram family with one label.
func (r *Registry) NewHistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	v := &HistogramVec{buckets: buckets, hists: make(map[string]*Histogram)}
	r.add(&family{name: name, help: help, typ: "histogram", label: label, histVec: v})
	return v
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ n atomic.Int64 }

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Value returns the gauge value.
func (g *Gauge) Value() float64 { return floatFromBits(g.bits.Load()) }

// CounterVec is a set of counters distinguished by one label value.
type CounterVec struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// With returns the counter for the given label value, creating it on first
// use so the family exposes only labels that occurred.
func (v *CounterVec) With(label string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.counters[label]
	if c == nil {
		c = &Counter{}
		v.counters[label] = c
	}
	return c
}

func (v *CounterVec) samples() []Sample {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]Sample, 0, len(v.counters))
	for label, c := range v.counters {
		out = append(out, Sample{Label: label, Value: float64(c.Value())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// DefBuckets are the default latency bucket upper bounds in seconds:
// roughly exponential from 50µs (a point lookup on warm cache) to 10s
// (a queue-timeout-scale stall).
var DefBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Observations and scrapes
// are lock-free; quantiles are estimated by linear interpolation inside the
// bucket holding the target rank.
type Histogram struct {
	bounds   []float64 // ascending upper bounds in seconds; +Inf is implicit
	counts   []atomic.Int64
	count    atomic.Int64
	sumNanos atomic.Int64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram buckets must be strictly ascending")
		}
	}
	return &Histogram{bounds: buckets, counts: make([]atomic.Int64, len(buckets)+1)}
}

// NewHistogram returns an unregistered histogram (for traces and tests).
func NewHistogram(buckets []float64) *Histogram { return newHistogram(buckets) }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Snapshot returns a point-in-time copy of the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Bounds: h.bounds, Counts: make([]int64, len(h.counts))}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.SumNanos = h.sumNanos.Load()
	return s
}

// HistSnapshot is an immutable histogram state: per-bucket counts (the last
// entry is the +Inf bucket), total count, and the sum of observed time.
type HistSnapshot struct {
	Bounds   []float64
	Counts   []int64
	Count    int64
	SumNanos int64
}

// MinQuantileSamples is the smallest observation count at which bucket
// quantiles are meaningful. Below it, interpolating a p50/p95/p99 from one
// or two samples just reads back a bucket boundary as if it were signal, so
// Quantile reports 0 instead and callers should omit quantiles entirely.
const MinQuantileSamples = 3

// QuantilesValid reports whether the snapshot holds enough observations for
// Quantile to return a meaningful estimate.
func (s HistSnapshot) QuantilesValid() bool { return s.Count >= MinQuantileSamples }

// Quantile estimates the q-quantile (0 < q <= 1) in seconds by linear
// interpolation within the bucket containing the target rank. Observations
// beyond the last finite bound clamp to it. Returns 0 when the histogram
// holds fewer than MinQuantileSamples observations (see QuantilesValid).
func (s HistSnapshot) Quantile(q float64) float64 {
	if !s.QuantilesValid() {
		return 0
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		prev := float64(cum)
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket: clamp to last finite bound
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Merge adds another snapshot with identical bounds into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if len(s.Counts) == 0 {
		s.Bounds, s.Counts = o.Bounds, append([]int64(nil), o.Counts...)
		s.Count, s.SumNanos = o.Count, o.SumNanos
		return
	}
	for i := range o.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.SumNanos += o.SumNanos
}

// HistogramVec is a histogram family with one label key.
type HistogramVec struct {
	mu      sync.Mutex
	buckets []float64
	hists   map[string]*Histogram
}

// With returns the histogram for the given label value.
func (v *HistogramVec) With(label string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h := v.hists[label]
	if h == nil {
		h = newHistogram(v.buckets)
		v.hists[label] = h
	}
	return h
}

// MergedSnapshot folds every label's histogram into one snapshot, for
// whole-family quantiles (e.g. overall query latency across verbs).
func (v *HistogramVec) MergedSnapshot() HistSnapshot {
	v.mu.Lock()
	defer v.mu.Unlock()
	var out HistSnapshot
	for _, h := range v.hists {
		out.Merge(h.Snapshot())
	}
	return out
}

func (v *HistogramVec) sorted() []struct {
	label string
	h     *Histogram
} {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]struct {
		label string
		h     *Histogram
	}, 0, len(v.hists))
	for label, h := range v.hists {
		out = append(out, struct {
			label string
			h     *Histogram
		}{label, h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].label < out[j].label })
	return out
}

// WritePrometheus writes every family in Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		switch {
		case f.collect != nil:
			for _, s := range f.collect() {
				if f.label != "" && s.Label != "" {
					fmt.Fprintf(w, "%s{%s=%q} %s\n", f.name, f.label, s.Label, fnum(s.Value))
				} else {
					fmt.Fprintf(w, "%s %s\n", f.name, fnum(s.Value))
				}
			}
		case f.hist != nil:
			writeHist(w, f.name, "", "", f.hist.Snapshot())
		case f.histVec != nil:
			for _, lh := range f.histVec.sorted() {
				writeHist(w, f.name, f.label, lh.label, lh.h.Snapshot())
			}
		}
	}
}

func writeHist(w io.Writer, name, labelKey, labelVal string, s HistSnapshot) {
	pair := ""
	if labelKey != "" {
		pair = fmt.Sprintf("%s=%q,", labelKey, labelVal)
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = fnum(s.Bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, pair, le, cum)
	}
	suffix := ""
	if labelKey != "" {
		suffix = fmt.Sprintf("{%s=%q}", labelKey, labelVal)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, fnum(float64(s.SumNanos)/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, s.Count)
}

func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

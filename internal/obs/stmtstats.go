package obs

import (
	"container/list"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EvictedTemplate is the template label under which the totals of templates
// evicted from a StmtStats registry are folded. Nothing is lost on eviction:
// calls, kv ops, and time recorded for a cold template move into this bucket,
// so summing every snapshot entry (including it) always equals the global
// counters for the same window.
const EvictedTemplate = "_evicted"

// StmtUsage is one finished statement's contribution to the per-template
// statistics registry: the identity key (Verb, Template — the anonymized
// normalized text, literals replaced by placeholders) plus everything the
// statement's trace measured.
type StmtUsage struct {
	Verb     string
	Template string
	Wall     time.Duration
	Rows     int64
	Err      bool
	CacheHit bool
	KV       KVSnapshot
	// PostingReads and Blocks are the trace's index/block access totals.
	PostingReads int64
	Blocks       int64
	// QueueWaitNanos and LockWaitNanos are scheduling time outside execution.
	QueueWaitNanos int64
	LockWaitNanos  int64
	// Relations is the statement's relation footprint (may be nil).
	Relations []string
}

// stmtKey identifies one aggregate: the anonymized template under its verb,
// so "select ..." and "explain analyze select ..." of the same shape stay
// distinguishable.
type stmtKey struct {
	verb     string
	template string
}

// stmtAgg is one template's running totals. All fields are plain values
// guarded by the owning shard's mutex — Record is one short critical section,
// no per-field atomics needed.
type stmtAgg struct {
	calls          int64
	errors         int64
	rows           int64
	cacheHits      int64
	wallNanos      int64
	kv             KVSnapshot
	postingReads   int64
	blocks         int64
	queueWaitNanos int64
	lockWaitNanos  int64
	// latCounts are DefBuckets latency bucket counts (last entry +Inf),
	// enough to report per-template p50/p95/p99.
	latCounts []int64
	relations map[string]struct{}
}

func newStmtAgg() *stmtAgg {
	return &stmtAgg{latCounts: make([]int64, len(DefBuckets)+1)}
}

// add folds one statement into the aggregate.
func (a *stmtAgg) add(u StmtUsage) {
	a.calls++
	if u.Err {
		a.errors++
	}
	if u.CacheHit {
		a.cacheHits++
	}
	a.rows += u.Rows
	a.wallNanos += int64(u.Wall)
	a.kv = mergeKV(a.kv, u.KV)
	a.postingReads += u.PostingReads
	a.blocks += u.Blocks
	a.queueWaitNanos += u.QueueWaitNanos
	a.lockWaitNanos += u.LockWaitNanos
	a.latCounts[sort.SearchFloat64s(DefBuckets, u.Wall.Seconds())]++
	if len(u.Relations) > 0 {
		if a.relations == nil {
			a.relations = make(map[string]struct{}, len(u.Relations))
		}
		for _, r := range u.Relations {
			a.relations[r] = struct{}{}
		}
	}
}

// merge folds another aggregate in (eviction path).
func (a *stmtAgg) merge(o *stmtAgg) {
	a.calls += o.calls
	a.errors += o.errors
	a.rows += o.rows
	a.cacheHits += o.cacheHits
	a.wallNanos += o.wallNanos
	a.kv = mergeKV(a.kv, o.kv)
	a.postingReads += o.postingReads
	a.blocks += o.blocks
	a.queueWaitNanos += o.queueWaitNanos
	a.lockWaitNanos += o.lockWaitNanos
	for i, c := range o.latCounts {
		a.latCounts[i] += c
	}
	if len(o.relations) > 0 {
		if a.relations == nil {
			a.relations = make(map[string]struct{}, len(o.relations))
		}
		for r := range o.relations {
			a.relations[r] = struct{}{}
		}
	}
}

func mergeKV(a, b KVSnapshot) KVSnapshot {
	return KVSnapshot{
		Gets:         a.Gets + b.Gets,
		Puts:         a.Puts + b.Puts,
		Deletes:      a.Deletes + b.Deletes,
		ScanNexts:    a.ScanNexts + b.ScanNexts,
		BytesRead:    a.BytesRead + b.BytesRead,
		BytesWritten: a.BytesWritten + b.BytesWritten,
		WaitNanos:    a.WaitNanos + b.WaitNanos,
	}
}

type stmtNode struct {
	key stmtKey
	agg *stmtAgg
}

// stmtShard is one lock stripe: a bounded LRU of template aggregates plus the
// shard's fold bucket for evicted totals.
type stmtShard struct {
	mu      sync.Mutex
	items   map[stmtKey]*list.Element
	lru     *list.List // front = most recently recorded
	evicted *stmtAgg   // nil until the first eviction
}

// StmtStats is a bounded, lock-striped registry of per-statement-template
// aggregates. It is the serving layer's answer to "which statement shapes are
// eating the cluster": every finished statement folds its trace into the
// aggregate keyed by (verb, anonymized template). Capacity is enforced per
// shard with LRU eviction; evicted totals fold into the EvictedTemplate
// bucket so the registry's sums stay conserved under template churn.
type StmtStats struct {
	shards    []*stmtShard
	perCap    int
	capacity  int
	evictions atomic.Int64
}

// NewStmtStats returns a registry tracking at most capacity templates
// (default 512 when capacity <= 0). Striping is sized so each shard keeps a
// useful LRU window even at small capacities.
func NewStmtStats(capacity int) *StmtStats {
	if capacity <= 0 {
		capacity = 512
	}
	nShards := 16
	for nShards > 1 && capacity/nShards < 4 {
		nShards /= 2
	}
	perCap := (capacity + nShards - 1) / nShards
	s := &StmtStats{shards: make([]*stmtShard, nShards), perCap: perCap, capacity: capacity}
	for i := range s.shards {
		s.shards[i] = &stmtShard{items: make(map[stmtKey]*list.Element), lru: list.New()}
	}
	return s
}

// fnv32a hashes a key for shard selection.
func fnv32a(verb, template string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(verb); i++ {
		h = (h ^ uint32(verb[i])) * 16777619
	}
	h = (h ^ 0) * 16777619 // separator so ("a","bc") and ("ab","c") differ
	for i := 0; i < len(template); i++ {
		h = (h ^ uint32(template[i])) * 16777619
	}
	return h
}

// Record folds one finished statement into its template aggregate, creating
// it (and evicting the shard's coldest template into the fold bucket when the
// shard is full) on first sight. Safe for concurrent use.
func (s *StmtStats) Record(u StmtUsage) {
	if s == nil {
		return
	}
	key := stmtKey{verb: u.Verb, template: u.Template}
	sh := s.shards[fnv32a(u.Verb, u.Template)%uint32(len(s.shards))]
	sh.mu.Lock()
	el, ok := sh.items[key]
	if ok {
		sh.lru.MoveToFront(el)
	} else {
		if sh.lru.Len() >= s.perCap {
			back := sh.lru.Back()
			old := back.Value.(*stmtNode)
			if sh.evicted == nil {
				sh.evicted = newStmtAgg()
			}
			sh.evicted.merge(old.agg)
			delete(sh.items, old.key)
			sh.lru.Remove(back)
			s.evictions.Add(1)
		}
		el = sh.lru.PushFront(&stmtNode{key: key, agg: newStmtAgg()})
		sh.items[key] = el
	}
	el.Value.(*stmtNode).agg.add(u)
	sh.mu.Unlock()
}

// Evictions returns the number of templates evicted since creation.
func (s *StmtStats) Evictions() int64 {
	if s == nil {
		return 0
	}
	return s.evictions.Load()
}

// Tracked returns the number of templates currently held.
func (s *StmtStats) Tracked() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// Capacity returns the configured template bound.
func (s *StmtStats) Capacity() int {
	if s == nil {
		return 0
	}
	return s.capacity
}

// StmtEntry is one template's immutable aggregate snapshot. Quantiles are 0
// (and omitted from JSON) when the template has fewer than MinQuantileSamples
// observations — interpolating a p99 from one sample is noise, not signal.
type StmtEntry struct {
	Template       string     `json:"template"`
	Verb           string     `json:"verb"`
	Calls          int64      `json:"calls"`
	Errors         int64      `json:"errors,omitempty"`
	Rows           int64      `json:"rows"`
	CacheHits      int64      `json:"cacheHits"`
	TotalNanos     int64      `json:"totalNanos"`
	MeanMicros     float64    `json:"meanMicros"`
	P50Micros      float64    `json:"p50Micros,omitempty"`
	P95Micros      float64    `json:"p95Micros,omitempty"`
	P99Micros      float64    `json:"p99Micros,omitempty"`
	KV             KVSnapshot `json:"kv"`
	KVOps          int64      `json:"kvOps"`
	PostingReads   int64      `json:"postingReads,omitempty"`
	Blocks         int64      `json:"blocks,omitempty"`
	QueueWaitNanos int64      `json:"queueWaitNanos,omitempty"`
	LockWaitNanos  int64      `json:"lockWaitNanos,omitempty"`
	Relations      []string   `json:"relations,omitempty"`
}

// entry shapes an aggregate into its exported form.
func (a *stmtAgg) entry(key stmtKey) StmtEntry {
	e := StmtEntry{
		Template:       key.template,
		Verb:           key.verb,
		Calls:          a.calls,
		Errors:         a.errors,
		Rows:           a.rows,
		CacheHits:      a.cacheHits,
		TotalNanos:     a.wallNanos,
		KV:             a.kv,
		KVOps:          a.kv.Ops(),
		PostingReads:   a.postingReads,
		Blocks:         a.blocks,
		QueueWaitNanos: a.queueWaitNanos,
		LockWaitNanos:  a.lockWaitNanos,
	}
	if a.calls > 0 {
		e.MeanMicros = float64(a.wallNanos) / float64(a.calls) / 1e3
	}
	snap := HistSnapshot{Bounds: DefBuckets, Counts: a.latCounts, Count: a.calls, SumNanos: a.wallNanos}
	if snap.QuantilesValid() {
		e.P50Micros = snap.Quantile(0.50) * 1e6
		e.P95Micros = snap.Quantile(0.95) * 1e6
		e.P99Micros = snap.Quantile(0.99) * 1e6
	}
	if len(a.relations) > 0 {
		e.Relations = make([]string, 0, len(a.relations))
		for r := range a.relations {
			e.Relations = append(e.Relations, r)
		}
		sort.Strings(e.Relations)
	}
	return e
}

// StmtSnapshot is a point-in-time copy of the whole registry.
type StmtSnapshot struct {
	// Statements holds one entry per tracked (verb, template) pair,
	// unsorted; see SortStmtEntries.
	Statements []StmtEntry
	// Evicted carries the fold bucket's totals (template EvictedTemplate,
	// empty verb); nil when nothing has been evicted.
	Evicted *StmtEntry
	// Tracked and Capacity describe registry occupancy; Evictions counts
	// templates evicted since creation.
	Tracked   int
	Capacity  int
	Evictions int64
}

// Snapshot copies every aggregate out under the shard locks. The per-shard
// eviction buckets merge into one Evicted entry.
func (s *StmtStats) Snapshot() StmtSnapshot {
	if s == nil {
		return StmtSnapshot{}
	}
	snap := StmtSnapshot{Capacity: s.capacity, Evictions: s.evictions.Load()}
	var evicted *stmtAgg
	for _, sh := range s.shards {
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			n := el.Value.(*stmtNode)
			snap.Statements = append(snap.Statements, n.agg.entry(n.key))
		}
		if sh.evicted != nil {
			if evicted == nil {
				evicted = newStmtAgg()
			}
			evicted.merge(sh.evicted)
		}
		sh.mu.Unlock()
	}
	snap.Tracked = len(snap.Statements)
	if evicted != nil {
		e := evicted.entry(stmtKey{template: EvictedTemplate})
		snap.Evicted = &e
	}
	return snap
}

// Sort orders for SortStmtEntries and the /stats/statements ?by= parameter.
const (
	SortByTotalTime = "total_time"
	SortByCalls     = "calls"
	SortByKVOps     = "kv_ops"
)

// SortStmtEntries orders entries descending by the given measure
// (SortByTotalTime, SortByCalls, SortByKVOps; anything else falls back to
// total time), breaking ties by template then verb for stable output.
func SortStmtEntries(entries []StmtEntry, by string) {
	measure := func(e *StmtEntry) int64 {
		switch by {
		case SortByCalls:
			return e.Calls
		case SortByKVOps:
			return e.KVOps
		default:
			return e.TotalNanos
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		mi, mj := measure(&entries[i]), measure(&entries[j])
		if mi != mj {
			return mi > mj
		}
		if entries[i].Template != entries[j].Template {
			return entries[i].Template < entries[j].Template
		}
		return entries[i].Verb < entries[j].Verb
	})
}

// StmtTemplateTotal is one template's cross-verb totals, for the per-template
// /metrics families.
type StmtTemplateTotal struct {
	Template string
	Seconds  float64
	Calls    int64
	KVOps    int64
}

// TopTemplates returns the k templates with the most total time, summing
// across verbs (a template queried both directly and via EXPLAIN ANALYZE
// exports one label, not two). The eviction bucket competes like any other
// template under the EvictedTemplate label, so /metrics sums stay conserved.
func (s *StmtStats) TopTemplates(k int) []StmtTemplateTotal {
	if s == nil || k <= 0 {
		return nil
	}
	snap := s.Snapshot()
	byTemplate := make(map[string]*StmtTemplateTotal, len(snap.Statements))
	fold := func(e *StmtEntry) {
		t := byTemplate[e.Template]
		if t == nil {
			t = &StmtTemplateTotal{Template: e.Template}
			byTemplate[e.Template] = t
		}
		t.Seconds += float64(e.TotalNanos) / 1e9
		t.Calls += e.Calls
		t.KVOps += e.KVOps
	}
	for i := range snap.Statements {
		fold(&snap.Statements[i])
	}
	if snap.Evicted != nil {
		fold(snap.Evicted)
	}
	out := make([]StmtTemplateTotal, 0, len(byTemplate))
	for _, t := range byTemplate {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Template < out[j].Template
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

package server

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"zidian/internal/relation"
)

func TestAnonymizeSQL(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		params []relation.Value
		want   string
		binds  []string
	}{
		{
			name:  "int literal",
			src:   "select T.a from T where T.id = 42",
			want:  "select T.a from T where T.id = ?",
			binds: []string{"int"},
		},
		{
			name:  "string literal with quote escape",
			src:   "select T.a from T where T.name = 'O''Brien' and T.id = 7",
			want:  "select T.a from T where T.name = ? and T.id = ?",
			binds: []string{"string", "int"},
		},
		{
			name:  "float and negative int",
			src:   "select T.a from T where T.x = 1.5 and T.y = -3",
			want:  "select T.a from T where T.x = ? and T.y = ?",
			binds: []string{"float", "int"},
		},
		{
			name:  "limit count stays verbatim",
			src:   "select T.a from T where T.id = 9 LIMIT 10",
			want:  "select T.a from T where T.id = ? limit 10",
			binds: []string{"int"},
		},
		{
			name:   "existing placeholders take kinds from params",
			src:    "select T.a from T where T.id = ? and T.name = ?",
			params: []relation.Value{relation.Int(4), relation.String("x")},
			want:   "select T.a from T where T.id = ? and T.name = ?",
			binds:  []string{"int", "string"},
		},
		{
			name:  "placeholder beyond params reports any",
			src:   "select T.a from T where T.id = ?",
			want:  "select T.a from T where T.id = ?",
			binds: []string{"any"},
		},
		{
			name:  "quoted identifier and digit-bearing alias verbatim",
			src:   `select T1.a from "Weird Rel" T1 where T1.v = 5`,
			want:  `select T1.a from "Weird Rel" T1 where T1.v = ?`,
			binds: []string{"int"},
		},
		{
			name:  "insert values",
			src:   "insert into ACCOUNTS values (1001, 'W2', 55)",
			want:  "insert into ACCOUNTS values (?, ?, ?)",
			binds: []string{"int", "string", "int"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, binds := AnonymizeSQL(NormalizeSQL(tc.src), tc.params)
			if got != tc.want {
				t.Fatalf("template:\n got %q\nwant %q", got, tc.want)
			}
			if !reflect.DeepEqual(binds, tc.binds) {
				t.Fatalf("binds: got %v want %v", binds, tc.binds)
			}
		})
	}
}

// TestAnonymizeSQLNoLiteralLeak feeds statements with distinctive literal
// values and requires none of them to survive into the template — the privacy
// property the capture stream depends on.
func TestAnonymizeSQLNoLiteralLeak(t *testing.T) {
	secrets := []string{"8675309", "hunter2", "4.9921"}
	src := "select T.a from T where T.id = 8675309 and T.pw = 'hunter2' and T.x = 4.9921"
	got, binds := AnonymizeSQL(NormalizeSQL(src), nil)
	for _, s := range secrets {
		if strings.Contains(got, s) {
			t.Fatalf("literal %q leaked into template %q", s, got)
		}
	}
	if want := []string{"int", "string", "float"}; !reflect.DeepEqual(binds, want) {
		t.Fatalf("binds: got %v want %v", binds, want)
	}
}

func TestCaptureLogRecord(t *testing.T) {
	var buf bytes.Buffer
	l := newCaptureLog(&buf)
	l.record(CaptureEntry{Verb: "select", Template: "select T.a from T where T.id = ?", Binds: []string{"int"}, Rows: 3, OK: true})
	l.record(CaptureEntry{Verb: "insert", Template: "insert into T values (?)", Binds: []string{"int"}, OK: true, Session: 2})

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d capture lines, want 2", len(lines))
	}
	var e CaptureEntry
	if err := json.Unmarshal(lines[0], &e); err != nil {
		t.Fatal(err)
	}
	if e.Verb != "select" || e.Rows != 3 || !e.OK {
		t.Fatalf("round-trip mismatch: %+v", e)
	}
	if e.DTMicros < 0 {
		t.Fatalf("negative arrival delta %d", e.DTMicros)
	}

	// nil sink, nil log: both safe no-ops.
	newCaptureLog(nil).record(CaptureEntry{Verb: "select"})
}

func TestRotatingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.log")
	rf, err := OpenRotatingFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rf.Write([]byte("first\n")); err != nil {
		t.Fatal(err)
	}
	if err := rf.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := rf.Write([]byte("second\n")); err != nil {
		t.Fatal(err)
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	if string(old) != "first\n" {
		t.Fatalf("rotated file holds %q, want %q", old, "first\n")
	}
	cur, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(cur) != "second\n" {
		t.Fatalf("current file holds %q, want %q", cur, "second\n")
	}
	// Rotate twice more: .1 is replaced, never accumulated.
	rf2, err := OpenRotatingFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rf2.Write([]byte("third\n"))
	if err := rf2.Rotate(); err != nil {
		t.Fatal(err)
	}
	rf2.Close()
	old, _ = os.ReadFile(path + ".1")
	if string(old) != "second\nthird\n" {
		t.Fatalf("second rotation holds %q, want %q", old, "second\nthird\n")
	}
}

// slowCtx builds a minimal finished-statement context for logSlow.
func slowCtx(o *serverObs) *stmtCtx {
	c := o.begin(verbSelect)
	c.template = "select T.a from T where T.id = ?"
	c.binds = []string{"int"}
	return c
}

// TestSlowQueryLogByteCapDrops caps the log over a plain (non-rotating)
// writer: once the cap is reached further lines are dropped and counted.
func TestSlowQueryLogByteCapDrops(t *testing.T) {
	var buf bytes.Buffer
	o := newServerObs(nil, Config{
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLog:       &buf,
	})
	c := slowCtx(o)

	// Measure one line, then cap at 2.5 lines.
	o.slowMaxBytes = 1 << 30
	o.logSlow(c, 1, time.Millisecond, nil)
	lineLen := int64(buf.Len())
	if lineLen == 0 {
		t.Fatal("no slow-query line written")
	}
	o.slowMaxBytes = lineLen*2 + lineLen/2

	for i := 0; i < 5; i++ {
		o.logSlow(c, 1, time.Millisecond, nil)
	}
	if int64(buf.Len()) > o.slowMaxBytes {
		t.Fatalf("log grew to %d bytes past the %d cap", buf.Len(), o.slowMaxBytes)
	}
	if got := o.slowDropped.Value(); got != 4 {
		t.Fatalf("dropped %d lines, want 4 (one fits after the first, four over cap)", got)
	}
	// Every retained line is valid JSON with the anonymized template.
	for _, ln := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var e slowEntry
		if err := json.Unmarshal(ln, &e); err != nil {
			t.Fatalf("retained line unparseable: %v", err)
		}
		if e.Template != c.template {
			t.Fatalf("template %q, want %q", e.Template, c.template)
		}
	}
}

// TestSlowQueryLogByteCapRotates caps the log over a RotatingFile: hitting
// the cap rotates instead of dropping, so nothing is lost and the counter
// stays at zero.
func TestSlowQueryLogByteCapRotates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.log")
	rf, err := OpenRotatingFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	o := newServerObs(nil, Config{
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLog:       rf,
	})
	c := slowCtx(o)

	o.slowMaxBytes = 1 << 30
	o.logSlow(c, 1, time.Millisecond, nil)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	lineLen := fi.Size()
	o.slowMaxBytes = lineLen*2 + lineLen/2

	for i := 0; i < 5; i++ {
		o.logSlow(c, 1, time.Millisecond, nil)
	}
	if got := o.slowDropped.Value(); got != 0 {
		t.Fatalf("dropped %d lines despite rotation", got)
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("no rotated file: %v", err)
	}
	fi, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > o.slowMaxBytes {
		t.Fatalf("current log %d bytes past the %d cap", fi.Size(), o.slowMaxBytes)
	}
}

// TestSlowQueryLogOversizeLine drops a single line larger than the cap even
// on a rotating sink — rotation cannot make it fit.
func TestSlowQueryLogOversizeLine(t *testing.T) {
	var buf bytes.Buffer
	o := newServerObs(nil, Config{
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLog:       &buf,
		SlowQueryMaxBytes:  8,
	})
	o.logSlow(slowCtx(o), 1, time.Millisecond, nil)
	if buf.Len() != 0 {
		t.Fatalf("oversize line written (%d bytes)", buf.Len())
	}
	if got := o.slowDropped.Value(); got != 1 {
		t.Fatalf("dropped %d, want 1", got)
	}
}

// TestAnonCacheMatchesDirect checks the memoized path returns exactly what
// AnonymizeSQL would, including on cache hits where a statement's bound
// value kinds differ from the first caller's.
func TestAnonCacheMatchesDirect(t *testing.T) {
	intV := relation.Value{Kind: relation.KindInt, Int: 7}
	strV := relation.Value{Kind: relation.KindString, Str: "x"}
	cases := []struct {
		norm   string
		params []relation.Value
	}{
		{"select V.id from VEHICLE V where V.id = ?", []relation.Value{intV}},
		{"select V.id from VEHICLE V where V.id = ?", []relation.Value{strV}},
		{"select V.id from VEHICLE V where V.id = ?", nil},
		{"select T.a from T where T.s = 'lit' and T.n = 42 and T.b = ?", []relation.Value{intV}},
		{"select O.speed from OBSERVATION O where O.speed > ? limit 5", []relation.Value{intV}},
	}
	var c anonCache
	for _, tc := range cases {
		wantT, wantB := AnonymizeSQL(tc.norm, tc.params)
		for rep := 0; rep < 2; rep++ { // second pass is a guaranteed hit
			gotT, gotB := c.anonymize(tc.norm, tc.params)
			if gotT != wantT {
				t.Fatalf("template %q, want %q (norm %q)", gotT, wantT, tc.norm)
			}
			if len(gotB) != len(wantB) {
				t.Fatalf("binds %v, want %v (norm %q)", gotB, wantB, tc.norm)
			}
			for i := range gotB {
				if gotB[i] != wantB[i] {
					t.Fatalf("binds %v, want %v (norm %q)", gotB, wantB, tc.norm)
				}
			}
		}
	}
}

package server_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"zidian/internal/server"
	"zidian/internal/server/client"
)

// scrapeMetrics fetches the server's /metrics page as text.
func scrapeMetrics(t *testing.T, httpAddr string) string {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue returns a sample's value from scraped text; the name must
// match the full sample name including labels.
func metricValue(t *testing.T, text, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == sample {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("sample %s value %q: %v", sample, fields[1], err)
			}
			return v
		}
	}
	t.Fatalf("sample %s not found in scrape:\n%s", sample, text)
	return 0
}

// metricValueOr is metricValue for labels that may not have occurred —
// counter vecs expose only observed label values, so absence means zero.
func metricValueOr(text, sample string) float64 {
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == sample {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}

// TestMetricsEndpoint drives a little traffic and checks the required
// families are exposed with non-zero values in valid Prometheus text.
func TestMetricsEndpoint(t *testing.T) {
	_, tcp, httpA := startServer(t, server.Config{MaxConcurrent: 4, QueueDepth: 64, QueueTimeout: 5 * time.Second})
	c, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if _, _, _, err := c.Query(fmt.Sprintf(testTemplates[0], i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Exec("insert into VEHICLE values (900001, 'ZMAKE', 'ZM-1', 'PETROL', 'BLACK', 2026, 1600, 'R-1', 1200, 4, 120, 'BAND-A', '2026-01-15')"); err != nil {
		t.Fatal(err)
	}

	text := scrapeMetrics(t, httpA)
	if v := metricValue(t, text, `zidian_queries_total{verb="select"}`); v < 5 {
		t.Fatalf("select counter = %g, want >= 5", v)
	}
	if v := metricValue(t, text, `zidian_queries_total{verb="insert"}`); v != 1 {
		t.Fatalf("insert counter = %g, want 1", v)
	}
	if v := metricValue(t, text, `zidian_admission_total{result="admitted"}`); v < 6 {
		t.Fatalf("admitted = %g, want >= 6", v)
	}
	if v := metricValue(t, text, `zidian_kv_ops_total{op="get"}`); v == 0 {
		t.Fatal("kv get counter is zero after point lookups")
	}
	if v := metricValue(t, text, `zidian_query_duration_seconds_count{verb="select"}`); v < 5 {
		t.Fatalf("latency histogram count = %g, want >= 5", v)
	}
	for _, family := range []string{
		"zidian_plan_cache_events_total", "zidian_plan_cache_size",
		"zidian_admission_in_flight", "zidian_blocks_fetched_total",
		"zidian_query_duration_seconds_bucket", "zidian_sessions_total",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("family %s missing from /metrics", family)
		}
	}
	// Every histogram family carries the exposition triple.
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if !strings.Contains(text, "zidian_admission_wait_seconds"+suffix) {
			t.Fatalf("admission wait histogram missing %s", suffix)
		}
	}
}

// TestMetricsDisabled: with DisableMetrics the endpoint 404s and serving
// still works.
func TestMetricsDisabled(t *testing.T) {
	srv, tcp, httpA := startServer(t, server.Config{
		MaxConcurrent: 4, QueueDepth: 16, QueueTimeout: time.Second,
		DisableMetrics: true,
	})
	if srv.MetricsRegistry() != nil {
		t.Fatal("registry present despite DisableMetrics")
	}
	c, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, _, err := c.Query(fmt.Sprintf(testTemplates[0], 1)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + httpA + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics status = %s, want 404", resp.Status)
	}
}

// TestPlanCacheMetricsAcrossDDL asserts the registry's plan-cache counters
// through a miss → hit → DDL invalidation → stale-miss sequence.
func TestPlanCacheMetricsAcrossDDL(t *testing.T) {
	_, tcp, httpA := startServer(t, server.Config{MaxConcurrent: 4, QueueDepth: 16, QueueTimeout: 5 * time.Second})
	c, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const q = "select V.make, V.model from VEHICLE V where V.vehicle_id = 3"

	if _, _, _, err := c.Query(q); err != nil {
		t.Fatal(err)
	}
	text := scrapeMetrics(t, httpA)
	misses0 := metricValue(t, text, `zidian_plan_cache_events_total{event="miss"}`)
	hits0 := metricValue(t, text, `zidian_plan_cache_events_total{event="hit"}`)
	epoch0 := metricValue(t, text, "zidian_plan_cache_epoch")
	if misses0 == 0 {
		t.Fatal("first compile did not count as a miss")
	}

	if _, _, _, err := c.Query(q); err != nil {
		t.Fatal(err)
	}
	text = scrapeMetrics(t, httpA)
	if hits1 := metricValue(t, text, `zidian_plan_cache_events_total{event="hit"}`); hits1 != hits0+1 {
		t.Fatalf("repeat query: hits %g -> %g, want +1", hits0, hits1)
	}

	// DDL advances the epoch and invalidates every cached plan.
	if _, err := c.Exec("create index ix_obs_vehicle_speed on OBSERVATION(speed)"); err != nil {
		t.Fatal(err)
	}
	text = scrapeMetrics(t, httpA)
	if inv := metricValue(t, text, `zidian_plan_cache_events_total{event="invalidation"}`); inv == 0 {
		t.Fatal("DDL did not count an invalidation")
	}
	if epoch1 := metricValue(t, text, "zidian_plan_cache_epoch"); epoch1 <= epoch0 {
		t.Fatalf("epoch %g -> %g, want advance", epoch0, epoch1)
	}

	// The cached plan now trails the epoch: the next run recompiles.
	if _, _, _, err := c.Query(q); err != nil {
		t.Fatal(err)
	}
	text = scrapeMetrics(t, httpA)
	misses2 := metricValue(t, text, `zidian_plan_cache_events_total{event="miss"}`)
	stale := metricValue(t, text, `zidian_plan_cache_events_total{event="stale_drop"}`)
	if misses2 <= misses0 && stale == 0 {
		t.Fatalf("post-DDL query served from a stale plan (misses %g, stale drops %g)", misses2, stale)
	}
}

// syncBuffer is a goroutine-safe writer for capturing the slow-query log.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSlowQueryLog: with a zero-distance threshold every statement is slow;
// the log line carries the normalized template, the verb, and the kv
// breakdown as structured JSON.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	_, tcp, _ := startServer(t, server.Config{
		MaxConcurrent: 4, QueueDepth: 16, QueueTimeout: 5 * time.Second,
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLog:       &buf,
	})
	c, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, _, err := c.Query("select V.make from VEHICLE V where V.vehicle_id = ?", 7); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no slow-query log line emitted")
	}
	var e struct {
		TS         string `json:"ts"`
		Verb       string `json:"verb"`
		Template   string `json:"template"`
		BindArity  int    `json:"bindArity"`
		Relations  []string
		WallMicros int64 `json:"wallMicros"`
		KV         struct {
			Gets int64 `json:"gets"`
		} `json:"kv"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &e); err != nil {
		t.Fatalf("slow log line is not JSON: %v\n%s", err, lines[len(lines)-1])
	}
	if e.Verb != "select" {
		t.Fatalf("verb = %q", e.Verb)
	}
	if !strings.Contains(e.Template, "?") || strings.Contains(e.Template, "7") {
		t.Fatalf("template leaked the literal or lost the placeholder: %q", e.Template)
	}
	if e.BindArity != 1 {
		t.Fatalf("bindArity = %d, want 1", e.BindArity)
	}
	if e.KV.Gets == 0 {
		t.Fatal("slow log line missing kv breakdown")
	}
	if e.TS == "" || e.WallMicros < 0 {
		t.Fatalf("bad line fields: %+v", e)
	}
}

// TestQueueTimeoutCodeAndWaitRecorded: statements rejected by admission
// carry a machine-readable retryable code, and their queue wait is still
// recorded in the admission-wait histogram (the wait is most interesting
// exactly when it ended in a timeout).
func TestQueueTimeoutCodeAndWaitRecorded(t *testing.T) {
	_, tcp, httpA := startServer(t, server.Config{
		MaxConcurrent: 1,
		QueueDepth:    1,
		QueueTimeout:  2 * time.Millisecond,
	})

	var wg sync.WaitGroup
	var mu sync.Mutex
	var rejections, retryable int
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.Dial(tcp)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 40; i++ {
				_, _, _, err := c.Query(fmt.Sprintf(testTemplates[2], (g+i)%50))
				if err == nil {
					continue
				}
				var se *client.ServerError
				if !errors.As(err, &se) {
					t.Errorf("failure is not a ServerError: %v", err)
					return
				}
				mu.Lock()
				rejections++
				if se.Retryable() {
					retryable++
				}
				mu.Unlock()
				if se.Code != "queue_timeout" && se.Code != "overloaded" {
					t.Errorf("rejection code = %q", se.Code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if rejections == 0 {
		t.Skip("overload did not trigger on this host")
	}
	if retryable != rejections {
		t.Fatalf("retryable = %d of %d rejections", retryable, rejections)
	}
	text := scrapeMetrics(t, httpA)
	waits := metricValue(t, text, "zidian_admission_wait_seconds_count")
	admitted := metricValue(t, text, `zidian_admission_total{result="admitted"}`)
	// Satellite invariant: every acquire — including ones that timed out —
	// observed into the wait histogram, so waits strictly exceed admissions
	// whenever anything was rejected from the queue.
	timedOut := metricValue(t, text, `zidian_admission_total{result="timed_out"}`)
	if waits < admitted+timedOut {
		t.Fatalf("admission waits = %g, want >= admitted %g + timed out %g", waits, admitted, timedOut)
	}
	if v := metricValueOr(text, `zidian_query_errors_total{reason="queue_timeout"}`); timedOut > 0 && v == 0 {
		t.Fatal("queue timeouts not counted in error reasons")
	}
	rejected := metricValue(t, text, `zidian_admission_total{result="rejected"}`)
	errTotal := metricValueOr(text, `zidian_query_errors_total{reason="queue_timeout"}`) +
		metricValueOr(text, `zidian_query_errors_total{reason="overloaded"}`)
	if errTotal != timedOut+rejected {
		t.Fatalf("error-reason counters = %g, want timed_out %g + rejected %g", errTotal, timedOut, rejected)
	}
}

// TestExplainAnalyzeOverWire: EXPLAIN ANALYZE executes the inner SELECT and
// returns the annotated plan as rows; the verb gets its own counter.
func TestExplainAnalyzeOverWire(t *testing.T) {
	_, tcp, httpA := startServer(t, server.Config{MaxConcurrent: 4, QueueDepth: 16, QueueTimeout: 5 * time.Second})
	c, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Exec("explain analyze select V.make, V.model from VEHICLE V where V.vehicle_id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) < 2 {
		t.Fatalf("plan rows = %d, want headline + tree", len(resp.Rows))
	}
	text := fmt.Sprint(resp.Rows)
	if !strings.Contains(text, "rows=") || !strings.Contains(text, "kvops=") {
		t.Fatalf("analyze output missing runtime annotations: %s", text)
	}
	if !strings.Contains(text, "totals:") {
		t.Fatalf("analyze output missing totals line: %s", text)
	}
	m := scrapeMetrics(t, httpA)
	if v := metricValue(t, m, `zidian_queries_total{verb="explain_analyze"}`); v != 1 {
		t.Fatalf("explain_analyze counter = %g, want 1", v)
	}
}

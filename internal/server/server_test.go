package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"zidian/internal/server"
	"zidian/internal/server/client"
)

// startServer opens a small MOT instance and serves it on loopback ports.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string, string) {
	t.Helper()
	inst, _, err := server.OpenWorkload("mot", 0.2, 7, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(inst, cfg)
	tcp, httpA, err := srv.Start("127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, tcp, httpA
}

var testTemplates = []string{
	"select T.test_date, T.result, T.mileage from TEST T where T.vehicle_id = %d",
	"select V.make, V.model from VEHICLE V where V.vehicle_id = %d",
	"select COUNT(*), AVG(T.mileage) from TEST T where T.vehicle_id = %d",
	"select O.obs_date, O.speed from OBSERVATION O where O.vehicle_id = %d and O.speed > 70",
}

// TestServerConcurrentClients issues queries from many goroutines over real
// TCP connections and checks every answer against a sequentially computed
// expectation. Run under -race this doubles as the serving-layer race test.
func TestServerConcurrentClients(t *testing.T) {
	srv, tcp, _ := startServer(t, server.Config{MaxConcurrent: 4, QueueDepth: 64, QueueTimeout: 30 * time.Second})

	const params = 8
	type key struct{ tmpl, param int }
	expected := make(map[key][][]any)
	c0, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	for ti, tmpl := range testTemplates {
		for p := 0; p < params; p++ {
			_, rows, _, err := c0.Query(fmt.Sprintf(tmpl, p))
			if err != nil {
				t.Fatalf("seed query: %v", err)
			}
			expected[key{ti, p}] = rows
		}
	}
	c0.Close()

	const goroutines = 32
	const perG = 24
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.Dial(tcp)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perG; i++ {
				ti := (g + i) % len(testTemplates)
				p := (g * i) % params
				_, rows, stats, err := c.Query(fmt.Sprintf(testTemplates[ti], p))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !stats.ScanFree {
					errs <- fmt.Errorf("template %d should be scan-free", ti)
					return
				}
				if want := expected[key{ti, p}]; !sameRows(rows, want) {
					errs <- fmt.Errorf("template %d param %d: got %v want %v", ti, p, rows, want)
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := srv.Stats()
	if st.Errors != 0 {
		t.Fatalf("server recorded %d errors", st.Errors)
	}
	if st.PlanCache.HitRate < 0.9 {
		t.Fatalf("plan cache hit rate %.2f, want > 0.9 on a repeated-template workload", st.PlanCache.HitRate)
	}
}

// sameRows compares unordered result sets (JSON round-trips make numeric
// types float64 on the client side, so compare via rendered form).
func sameRows(a, b [][]any) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[string]int)
	for _, r := range a {
		count[fmt.Sprint(r)]++
	}
	for _, r := range b {
		count[fmt.Sprint(r)]--
	}
	for _, n := range count {
		if n != 0 {
			return false
		}
	}
	return true
}

func TestServerPreparedStatements(t *testing.T) {
	_, tcp, _ := startServer(t, server.Config{})
	c, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sql := "select T.test_date, T.result from TEST T where T.vehicle_id = 3"
	if err := c.Prepare("q1", sql); err != nil {
		t.Fatal(err)
	}
	directCols, direct, _, err := c.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		cols, rows, stats, err := c.Execute("q1")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cols, directCols) {
			t.Fatalf("cols = %v, want %v", cols, directCols)
		}
		if !sameRows(rows, direct) {
			t.Fatalf("prepared answer %v != direct answer %v", rows, direct)
		}
		if !stats.CacheHit {
			t.Fatal("prepared execution should report plan reuse")
		}
	}
	if err := c.ClosePrepared("q1"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Execute("q1"); err == nil {
		t.Fatal("execute after close should fail")
	}
	if err := c.Prepare("", sql); err == nil {
		t.Fatal("prepare without a name should fail")
	}
}

// TestServerDMLUnderLoad exercises the write path (exclusive lock) while
// readers run, then verifies the maintained store answers queries about the
// new tuple.
func TestServerDMLUnderLoad(t *testing.T) {
	_, tcp, _ := startServer(t, server.Config{MaxConcurrent: 4})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.Dial(tcp)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, _, err := c.Query(fmt.Sprintf(testTemplates[0], (g*13+i)%20)); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}(g)
	}

	c, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const vid = 1 << 20
	ins := fmt.Sprintf("insert into VEHICLE values (%d, 'FORD', 'FORD-M999', 'PETROL', 'BLACK', 2005, 1600, 'LONDON', 1200, 4, 120, 'BAND-A', '2005-01-01')", vid)
	resp, err := c.Exec(ins)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Affected != 1 {
		t.Fatalf("insert affected %d", resp.Affected)
	}
	_, rows, _, err := c.Query(fmt.Sprintf("select V.make, V.model from VEHICLE V where V.vehicle_id = %d", vid))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "FORD" {
		t.Fatalf("query after insert: %v", rows)
	}
	resp, err = c.Exec(fmt.Sprintf("delete from VEHICLE where vehicle_id = %d", vid))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Affected != 1 {
		t.Fatalf("delete affected %d", resp.Affected)
	}
	_, rows, _, err = c.Query(fmt.Sprintf("select V.make from VEHICLE V where V.vehicle_id = %d", vid))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("query after delete: %v", rows)
	}
	close(stop)
	wg.Wait()
}

func TestServerHTTP(t *testing.T) {
	_, _, httpA := startServer(t, server.Config{})
	base := "http://" + httpA

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}

	q := "select V.make from VEHICLE V where V.vehicle_id = 1"
	resp, err = http.Post(base+"/query", "application/json",
		strings.NewReader(`{"sql": "`+q+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	var wire server.Response
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !wire.OK || len(wire.Rows) != 1 {
		t.Fatalf("POST /query: %+v", wire)
	}

	resp, err = http.Get(base + "/query?q=" + strings.ReplaceAll(q, " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !wire.OK || len(wire.Rows) != 1 {
		t.Fatalf("GET /query: %+v", wire)
	}

	resp, err = http.Get(base + "/query?q=select+nonsense")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st server.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Queries < 2 {
		t.Fatalf("stats queries = %d", st.Queries)
	}
}

func TestServerMalformedAndUnknown(t *testing.T) {
	_, tcp, _ := startServer(t, server.Config{})
	c, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec("frobnicate the database"); err == nil {
		t.Fatal("nonsense SQL should fail")
	}
	if _, _, _, err := c.Query("select X.y from NOPE X"); err == nil {
		t.Fatal("unknown relation should fail")
	}
	// The connection survives statement errors.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	inst, _, err := server.OpenWorkload("mot", 0.2, 7, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(inst, server.Config{})
	tcp, _, err := srv.Start("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, _, err := c.Query(fmt.Sprintf(testTemplates[0], 1)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := client.Dial(tcp); err == nil {
		t.Fatal("dial after shutdown should fail")
	}
	// Idempotent.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestServerOverloadSheds(t *testing.T) {
	srv, tcp, _ := startServer(t, server.Config{
		MaxConcurrent: 1,
		QueueDepth:    1,
		QueueTimeout:  5 * time.Millisecond,
	})

	var wg sync.WaitGroup
	var failures atomic64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.Dial(tcp)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 30; i++ {
				if _, _, _, err := c.Query(fmt.Sprintf(testTemplates[2], (g+i)%50)); err != nil {
					failures.add(1)
				}
			}
		}(g)
	}
	wg.Wait()

	st := srv.Stats()
	if rejectedTotal := st.Admission.Rejected + st.Admission.TimedOut; rejectedTotal != failures.load() {
		t.Fatalf("admission rejected+timedOut = %d, client-observed failures = %d",
			rejectedTotal, failures.load())
	}
	// The server survives overload and keeps answering.
	c, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

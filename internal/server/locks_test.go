package server

import (
	"sync"
	"testing"
	"time"
)

// mixedTestRels is the fixed relation set the lock scenarios run over.
var mixedTestRels = []string{"VEHICLE", "TEST", "OBSERVATION"}

// tryAcquire runs acquire in a goroutine and reports whether it completed
// within the patience window, returning the release when it did. A blocked
// acquisition keeps waiting in the background and self-releases, so each
// scenario below uses a fresh relLocks to keep leftovers from interfering.
func tryAcquire(acquire func() func()) (release func(), ok bool) {
	done := make(chan func(), 1)
	go func() { done <- acquire() }()
	select {
	case rel := <-done:
		return rel, true
	case <-time.After(200 * time.Millisecond):
		go func() { (<-done)() }() // release once it eventually acquires
		return nil, false
	}
}

// TestRelLocksOverlap pins the scheduling semantics the mixed-workload
// speedup rests on: while a writer holds one relation, readers and writers
// of other relations proceed, only that relation's readers block, and DDL
// excludes everything.
func TestRelLocksOverlap(t *testing.T) {
	// Writer vs disjoint traffic: everything not touching TEST proceeds.
	{
		l := newRelLocks(regimePerRelation, mixedTestRels)
		releaseW := l.acquireWrite("TEST")
		if rel, ok := tryAcquire(func() func() { return l.acquireRead([]string{"VEHICLE"}) }); !ok {
			t.Fatal("reader of an unwritten relation blocked behind the writer")
		} else {
			rel()
		}
		if rel, ok := tryAcquire(func() func() { return l.acquireWrite("OBSERVATION") }); !ok {
			t.Fatal("writer of a different relation blocked behind the writer")
		} else {
			rel()
		}
		releaseW()
	}
	// Writer vs the written relation's reader: excluded until release.
	{
		l := newRelLocks(regimePerRelation, mixedTestRels)
		releaseW := l.acquireWrite("TEST")
		if rel, ok := tryAcquire(func() func() { return l.acquireRead([]string{"VEHICLE", "TEST"}) }); ok {
			rel()
			t.Fatal("reader of the written relation was admitted mid-write")
		}
		releaseW()
	}
	// Readers share; duplicate/unsorted lock sets are fine.
	{
		l := newRelLocks(regimePerRelation, mixedTestRels)
		r1 := l.acquireRead([]string{"TEST"})
		r2, ok := tryAcquire(func() func() { return l.acquireRead([]string{"TEST", "VEHICLE", "TEST"}) })
		if !ok {
			t.Fatal("readers of one relation did not share")
		}
		r1()
		r2()
	}
	// DDL excludes writers...
	{
		l := newRelLocks(regimePerRelation, mixedTestRels)
		releaseW := l.acquireWrite("TEST")
		if rel, ok := tryAcquire(l.acquireDDL); ok {
			rel()
			t.Fatal("DDL was admitted while a writer held a relation")
		}
		releaseW()
	}
	// ...and readers, and excludes them in turn.
	{
		l := newRelLocks(regimePerRelation, mixedTestRels)
		r := l.acquireRead([]string{"TEST"})
		if rel, ok := tryAcquire(l.acquireDDL); ok {
			rel()
			t.Fatal("DDL was admitted while a reader was in flight")
		}
		r()
	}
	{
		l := newRelLocks(regimePerRelation, mixedTestRels)
		releaseDDL := l.acquireDDL()
		if rel, ok := tryAcquire(func() func() { return l.acquireRead([]string{"VEHICLE"}) }); ok {
			rel()
			t.Fatal("reader was admitted during DDL")
		}
		releaseDDL()
	}
}

// TestRelLocksUnknownRelation: names outside the schema share the fallback
// lock — the table never grows — and never stall schema relations.
func TestRelLocksUnknownRelation(t *testing.T) {
	l := newRelLocks(regimePerRelation, mixedTestRels)
	releaseW := l.acquireWrite("NOPE")
	if rel, ok := tryAcquire(func() func() { return l.acquireRead([]string{"VEHICLE"}) }); !ok {
		t.Fatal("schema reader blocked behind an unknown-relation writer")
	} else {
		rel()
	}
	if rel, ok := tryAcquire(func() func() { return l.acquireWrite("ALSO-NOPE") }); ok {
		rel()
		t.Fatal("two unknown-relation writers did not share the fallback lock")
	}
	releaseW()
}

// TestRelLocksGlobalMode: the legacy gate serializes every write against
// every read, instance-wide.
func TestRelLocksGlobalMode(t *testing.T) {
	{
		l := newRelLocks(regimeGlobal, mixedTestRels)
		releaseW := l.acquireWrite("TEST")
		if rel, ok := tryAcquire(func() func() { return l.acquireRead([]string{"VEHICLE"}) }); ok {
			rel()
			t.Fatal("global mode admitted a reader during a write")
		}
		releaseW()
	}
	{
		l := newRelLocks(regimeGlobal, mixedTestRels)
		r := l.acquireRead([]string{"VEHICLE"})
		if rel, ok := tryAcquire(func() func() { return l.acquireWrite("OBSERVATION") }); ok {
			rel()
			t.Fatal("global mode admitted a writer during a read")
		}
		r()
	}
}

// TestRelLocksMVCCMode: under the default regime readers and writers all
// share the gate — even on the same relation, since snapshots and the group
// committer provide the isolation — and only DDL excludes.
func TestRelLocksMVCCMode(t *testing.T) {
	l := newRelLocks(regimeMVCC, mixedTestRels)
	releaseW := l.acquireWrite("TEST")
	if rel, ok := tryAcquire(func() func() { return l.acquireRead([]string{"TEST"}) }); !ok {
		t.Fatal("mvcc mode stalled a reader of the written relation")
	} else {
		rel()
	}
	if rel, ok := tryAcquire(func() func() { return l.acquireWrite("TEST") }); !ok {
		t.Fatal("mvcc mode stalled a second writer at the gate (the committer, not the gate, serializes)")
	} else {
		rel()
	}
	if rel, ok := tryAcquire(l.acquireDDL); ok {
		rel()
		t.Fatal("DDL was admitted while statements were in flight")
	}
	releaseW()
}

// queuedWaiters reports how many acquisitions are parked on the gate.
func (g *fairGate) queuedWaiters() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.queue)
}

// TestDDLGateFIFO pins the fairness bug fix: a pending DDL must acquire
// before readers that arrive AFTER it, no matter how many there are — under
// a plain RWMutex an overlapping reader flood starves the writer forever.
// The sequencing is deterministic: each phase waits until the previous
// acquisition is observably parked on the gate's queue before proceeding.
func TestDDLGateFIFO(t *testing.T) {
	l := newRelLocks(regimeMVCC, mixedTestRels)
	waitQueued := func(n int) {
		deadline := time.Now().Add(5 * time.Second)
		for l.global.queuedWaiters() < n {
			if time.Now().After(deadline) {
				t.Fatalf("gate queue never reached %d waiters", n)
			}
			time.Sleep(time.Millisecond)
		}
	}

	var order []string
	var mu sync.Mutex
	record := func(who string) {
		mu.Lock()
		order = append(order, who)
		mu.Unlock()
	}

	r1 := l.acquireRead([]string{"TEST"}) // in-flight reader: DDL must wait for it
	ddlDone := make(chan func(), 1)
	go func() {
		rel := l.acquireDDL()
		record("ddl")
		ddlDone <- rel
	}()
	waitQueued(1) // the DDL is parked behind r1

	const lateReaders = 8
	readerDone := make(chan func(), lateReaders)
	for i := 0; i < lateReaders; i++ {
		go func() {
			rel := l.acquireRead([]string{"TEST", "VEHICLE"})
			record("reader")
			readerDone <- rel
		}()
	}
	waitQueued(1 + lateReaders) // every late reader parked behind the DDL

	select {
	case <-ddlDone:
		t.Fatal("DDL acquired while the earlier reader still held the gate")
	case rel := <-readerDone:
		rel()
		t.Fatal("a late-arriving reader jumped the queued DDL")
	default:
	}

	r1() // drain the pre-DDL reader: the DDL must now acquire, alone
	releaseDDL := <-ddlDone
	select {
	case rel := <-readerDone:
		rel()
		t.Fatal("a reader was admitted during DDL")
	default:
	}
	releaseDDL()

	// With the DDL gone the reader batch flows; all of it ordered after.
	for i := 0; i < lateReaders; i++ {
		(<-readerDone)()
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 1+lateReaders || order[0] != "ddl" {
		t.Fatalf("acquisition order = %v, want ddl first then %d readers", order, lateReaders)
	}
}

package server

import (
	"testing"
	"time"
)

// mixedTestRels is the fixed relation set the lock scenarios run over.
var mixedTestRels = []string{"VEHICLE", "TEST", "OBSERVATION"}

// tryAcquire runs acquire in a goroutine and reports whether it completed
// within the patience window, returning the release when it did. A blocked
// acquisition keeps waiting in the background and self-releases, so each
// scenario below uses a fresh relLocks to keep leftovers from interfering.
func tryAcquire(acquire func() func()) (release func(), ok bool) {
	done := make(chan func(), 1)
	go func() { done <- acquire() }()
	select {
	case rel := <-done:
		return rel, true
	case <-time.After(200 * time.Millisecond):
		go func() { (<-done)() }() // release once it eventually acquires
		return nil, false
	}
}

// TestRelLocksOverlap pins the scheduling semantics the mixed-workload
// speedup rests on: while a writer holds one relation, readers and writers
// of other relations proceed, only that relation's readers block, and DDL
// excludes everything.
func TestRelLocksOverlap(t *testing.T) {
	// Writer vs disjoint traffic: everything not touching TEST proceeds.
	{
		l := newRelLocks(false, mixedTestRels)
		releaseW := l.acquireWrite("TEST")
		if rel, ok := tryAcquire(func() func() { return l.acquireRead([]string{"VEHICLE"}) }); !ok {
			t.Fatal("reader of an unwritten relation blocked behind the writer")
		} else {
			rel()
		}
		if rel, ok := tryAcquire(func() func() { return l.acquireWrite("OBSERVATION") }); !ok {
			t.Fatal("writer of a different relation blocked behind the writer")
		} else {
			rel()
		}
		releaseW()
	}
	// Writer vs the written relation's reader: excluded until release.
	{
		l := newRelLocks(false, mixedTestRels)
		releaseW := l.acquireWrite("TEST")
		if rel, ok := tryAcquire(func() func() { return l.acquireRead([]string{"VEHICLE", "TEST"}) }); ok {
			rel()
			t.Fatal("reader of the written relation was admitted mid-write")
		}
		releaseW()
	}
	// Readers share; duplicate/unsorted lock sets are fine.
	{
		l := newRelLocks(false, mixedTestRels)
		r1 := l.acquireRead([]string{"TEST"})
		r2, ok := tryAcquire(func() func() { return l.acquireRead([]string{"TEST", "VEHICLE", "TEST"}) })
		if !ok {
			t.Fatal("readers of one relation did not share")
		}
		r1()
		r2()
	}
	// DDL excludes writers...
	{
		l := newRelLocks(false, mixedTestRels)
		releaseW := l.acquireWrite("TEST")
		if rel, ok := tryAcquire(l.acquireDDL); ok {
			rel()
			t.Fatal("DDL was admitted while a writer held a relation")
		}
		releaseW()
	}
	// ...and readers, and excludes them in turn.
	{
		l := newRelLocks(false, mixedTestRels)
		r := l.acquireRead([]string{"TEST"})
		if rel, ok := tryAcquire(l.acquireDDL); ok {
			rel()
			t.Fatal("DDL was admitted while a reader was in flight")
		}
		r()
	}
	{
		l := newRelLocks(false, mixedTestRels)
		releaseDDL := l.acquireDDL()
		if rel, ok := tryAcquire(func() func() { return l.acquireRead([]string{"VEHICLE"}) }); ok {
			rel()
			t.Fatal("reader was admitted during DDL")
		}
		releaseDDL()
	}
}

// TestRelLocksUnknownRelation: names outside the schema share the fallback
// lock — the table never grows — and never stall schema relations.
func TestRelLocksUnknownRelation(t *testing.T) {
	l := newRelLocks(false, mixedTestRels)
	releaseW := l.acquireWrite("NOPE")
	if rel, ok := tryAcquire(func() func() { return l.acquireRead([]string{"VEHICLE"}) }); !ok {
		t.Fatal("schema reader blocked behind an unknown-relation writer")
	} else {
		rel()
	}
	if rel, ok := tryAcquire(func() func() { return l.acquireWrite("ALSO-NOPE") }); ok {
		rel()
		t.Fatal("two unknown-relation writers did not share the fallback lock")
	}
	releaseW()
}

// TestRelLocksGlobalMode: the legacy gate serializes every write against
// every read, instance-wide.
func TestRelLocksGlobalMode(t *testing.T) {
	{
		l := newRelLocks(true, mixedTestRels)
		releaseW := l.acquireWrite("TEST")
		if rel, ok := tryAcquire(func() func() { return l.acquireRead([]string{"VEHICLE"}) }); ok {
			rel()
			t.Fatal("global mode admitted a reader during a write")
		}
		releaseW()
	}
	{
		l := newRelLocks(true, mixedTestRels)
		r := l.acquireRead([]string{"VEHICLE"})
		if rel, ok := tryAcquire(func() func() { return l.acquireWrite("OBSERVATION") }); ok {
			rel()
			t.Fatal("global mode admitted a writer during a read")
		}
		r()
	}
}

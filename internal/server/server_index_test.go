package server_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"zidian"
	"zidian/internal/server"
	"zidian/internal/server/client"
)

// startIndexServer serves a dedicated 400-vehicle instance stored only
// under a primary-key KV schema, so a make predicate has no keyed access
// path and the cost model decisively prefers the secondary index over the
// scan once one exists (400 blocks vs ~21 gets).
func startIndexServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	db := zidian.NewDatabase()
	vehicle := zidian.NewRelation(zidian.MustRelSchema("VEHICLE",
		[]zidian.Attr{
			{Name: "vehicle_id", Kind: zidian.KindInt},
			{Name: "make", Kind: zidian.KindString},
			{Name: "model", Kind: zidian.KindString},
			{Name: "year", Kind: zidian.KindInt},
		},
		[]string{"vehicle_id"}))
	for i := 0; i < 400; i++ {
		vehicle.MustInsert(zidian.Tuple{
			zidian.Int(int64(i)),
			zidian.String(fmt.Sprintf("MAKE-%02d", i%20)),
			zidian.String(fmt.Sprintf("MODEL-%03d", i%37)),
			zidian.Int(int64(2000 + i%20)),
		})
	}
	db.Add(vehicle)
	schema, err := zidian.NewBaaVSchema(db, zidian.KVSchema{
		Name: "vehicle_full", Rel: "VEHICLE",
		Key: []string{"vehicle_id"}, Val: []string{"make", "model", "year"},
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := zidian.Open(db, schema, zidian.Options{Nodes: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(inst, cfg)
	tcp, _, err := srv.Start("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, tcp
}

func sortedJSONRows(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

// TestServerWireDML drives INSERT and DELETE through the wire protocol's
// exec op and checks the answers a reader sees, including index
// maintenance: the same non-key query must return the same rows before and
// after CREATE INDEX, across inserts and deletes.
func TestServerWireDML(t *testing.T) {
	_, tcp := startIndexServer(t, server.Config{})
	c, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const q = "select V.vehicle_id, V.model from VEHICLE V where V.make = 'MAKE-07'"
	_, base, _, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 20 {
		t.Fatalf("baseline rows = %d", len(base))
	}

	resp, err := c.Exec("insert into VEHICLE values " +
		"(9001, 'MAKE-07', 'WIRE-1', 2024), (9002, 'MAKE-07', 'WIRE-2', 2025), (9003, 'MAKE-01', 'WIRE-3', 2025)")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Affected != 3 {
		t.Fatalf("insert affected = %d", resp.Affected)
	}
	_, afterIns, _, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(afterIns) != len(base)+2 {
		t.Fatalf("rows after insert = %d, want %d", len(afterIns), len(base)+2)
	}

	// CREATE INDEX through the wire; the same query must now be served by
	// the index with identical rows.
	if resp, err = c.Exec("create index ix_make on VEHICLE(make)"); err != nil {
		t.Fatal(err)
	}
	if resp.Affected != 403 {
		t.Fatalf("create index backfilled %d tuples", resp.Affected)
	}
	expResp, err := c.Exec("explain " + q)
	if err != nil {
		t.Fatal(err)
	}
	if len(expResp.Rows) != 1 || !strings.Contains(fmt.Sprint(expResp.Rows[0]), "IndexLookup") {
		t.Fatalf("explain over the wire = %v", expResp.Rows)
	}
	_, viaIndex, stats, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ScanFree {
		t.Fatalf("post-DDL query stats = %+v", stats)
	}
	if got, want := sortedJSONRows(viaIndex), sortedJSONRows(afterIns); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("index rows diverge:\n got %v\nwant %v", got, want)
	}

	// DELETE through the wire maintains postings too.
	if resp, err = c.Exec("delete from VEHICLE where vehicle_id = 9001"); err != nil {
		t.Fatal(err)
	}
	if resp.Affected != 1 {
		t.Fatalf("delete affected = %d", resp.Affected)
	}
	_, afterDel, _, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(afterDel) != len(afterIns)-1 {
		t.Fatalf("rows after delete = %d, want %d", len(afterDel), len(afterIns)-1)
	}
	for _, r := range afterDel {
		if fmt.Sprint(r[0]) == "9001" {
			t.Fatalf("deleted vehicle still answered: %v", afterDel)
		}
	}
}

// TestServerDDLBumpsEpoch checks the plan-cache invalidation contract: DDL
// advances the cache epoch, previously cached plans stop hitting, and the
// recompiled plan uses the new access path.
func TestServerDDLBumpsEpoch(t *testing.T) {
	srv, tcp := startIndexServer(t, server.Config{})
	c, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const q = "select V.vehicle_id from VEHICLE V where V.make = 'MAKE-11'"
	if _, _, stats, err := c.Query(q); err != nil || stats.CacheHit {
		t.Fatalf("first run: hit=%v err=%v", stats != nil && stats.CacheHit, err)
	}
	if _, _, stats, err := c.Query(q); err != nil || !stats.CacheHit {
		t.Fatalf("second run should hit the cache, err=%v", err)
	}
	st0 := srv.Cache().Stats()
	if st0.Epoch != 0 || st0.Invalidations != 0 {
		t.Fatalf("pre-DDL cache stats = %+v", st0)
	}

	if _, err := c.Exec("create index ix_make on VEHICLE(make)"); err != nil {
		t.Fatal(err)
	}
	st1 := srv.Cache().Stats()
	if st1.Epoch != 1 || st1.Invalidations != 1 {
		t.Fatalf("post-DDL cache stats = %+v", st1)
	}
	// The cached scan plan is stale: this run must miss, recompile, and use
	// the index.
	_, _, stats, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHit {
		t.Fatal("stale plan served from cache after DDL")
	}
	if !stats.ScanFree {
		t.Fatalf("recompiled plan not index-backed: %+v", stats)
	}
	if st := srv.Cache().Stats(); st.StaleDrops == 0 {
		t.Fatalf("no stale drops recorded: %+v", st)
	}
	if _, _, stats, err = c.Query(q); err != nil || !stats.CacheHit {
		t.Fatalf("recompiled plan should hit again, err=%v", err)
	}

	// DROP INDEX bumps the epoch again; the query falls back to the scan
	// plan rather than erroring on the missing index.
	if _, err := c.Exec("drop index ix_make"); err != nil {
		t.Fatal(err)
	}
	if st := srv.Cache().Stats(); st.Epoch != 2 {
		t.Fatalf("epoch after drop = %d", st.Epoch)
	}
	_, _, stats, err = c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHit || stats.ScanFree {
		t.Fatalf("post-drop stats = %+v", stats)
	}
}

// TestServerPreparedRevalidation: session prepared statements compiled
// before a DDL are transparently recompiled on execute, so they neither
// fail on a dropped index nor miss a new one.
func TestServerPreparedRevalidation(t *testing.T) {
	_, tcp := startIndexServer(t, server.Config{})
	c, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const q = "select V.vehicle_id from VEHICLE V where V.make = 'MAKE-05'"
	if err := c.Prepare("m5", q); err != nil {
		t.Fatal(err)
	}
	_, before, _, err := c.Execute("m5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("create index ix_make on VEHICLE(make)"); err != nil {
		t.Fatal(err)
	}
	// Execute after CREATE: recompiled to the index plan, same rows.
	_, after, stats, err := c.Execute("m5")
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ScanFree {
		t.Fatalf("prepared statement not recompiled after DDL: %+v", stats)
	}
	if got, want := sortedJSONRows(after), sortedJSONRows(before); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("prepared rows diverge after DDL:\n got %v\nwant %v", got, want)
	}
	// Execute after DROP: recompiled back to the scan plan, no error.
	if _, err := c.Exec("drop index ix_make"); err != nil {
		t.Fatal(err)
	}
	_, after2, stats, err := c.Execute("m5")
	if err != nil {
		t.Fatal(err)
	}
	if stats.ScanFree {
		t.Fatalf("prepared statement still index-backed after DROP: %+v", stats)
	}
	if len(after2) != len(before) {
		t.Fatalf("rows after drop = %d, want %d", len(after2), len(before))
	}
}

// TestServerDDLUnderConcurrentLoad hammers the server with reads while DDL
// and DML run on another connection; every answer must be internally
// consistent and no statement may fail. Run under -race this exercises the
// epoch handoff between Exec's invalidation and concurrent compilations.
func TestServerDDLUnderConcurrentLoad(t *testing.T) {
	_, tcp := startIndexServer(t, server.Config{MaxConcurrent: 4, QueueDepth: 64, QueueTimeout: 30 * time.Second})

	done := make(chan error, 5)
	for g := 0; g < 4; g++ {
		go func(g int) {
			c, err := client.Dial(tcp)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for i := 0; i < 40; i++ {
				q := fmt.Sprintf("select V.vehicle_id from VEHICLE V where V.make = 'MAKE-%02d' and V.year > %d", i%20, 2000+i%10)
				if _, _, _, err := c.Query(q); err != nil {
					done <- fmt.Errorf("reader %d: %w", g, err)
					return
				}
			}
			done <- nil
		}(g)
	}
	go func() {
		c, err := client.Dial(tcp)
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		for i := 0; i < 6; i++ {
			if _, err := c.Exec("create index ix_make on VEHICLE(make)"); err != nil {
				done <- fmt.Errorf("ddl create: %w", err)
				return
			}
			if _, err := c.Exec(fmt.Sprintf("insert into VEHICLE values (%d, 'MAKE-03', 'CHURN', 2024)", 9500+i)); err != nil {
				done <- fmt.Errorf("ddl insert: %w", err)
				return
			}
			if _, err := c.Exec("drop index ix_make"); err != nil {
				done <- fmt.Errorf("ddl drop: %w", err)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 5; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"strconv"
	"sync"
	"time"

	"zidian"
	"zidian/internal/obs"
	"zidian/internal/relation"
)

// Statement verbs used as metric label values and slow-log kinds.
const (
	verbSelect         = "select"
	verbInsert         = "insert"
	verbDelete         = "delete"
	verbDDL            = "ddl"
	verbExplain        = "explain"
	verbExplainAnalyze = "explain_analyze"
	verbShow           = "show"
)

// serverObs is the server's observability surface: the metrics registry
// behind /metrics, the per-statement measurement context, and the
// slow-query log. A nil *serverObs (Config.DisableMetrics) is fully inert —
// every method is nil-safe, begin returns a nil context, and the nil trace
// it yields turns off counting all the way down to the kv cluster.
type serverObs struct {
	reg *obs.Registry

	queries  *obs.CounterVec   // zidian_queries_total{verb}
	errs     *obs.CounterVec   // zidian_query_errors_total{reason}
	latency  *obs.HistogramVec // zidian_query_duration_seconds{verb}
	admWait  *obs.Histogram    // zidian_admission_wait_seconds
	lockWait *obs.Histogram    // zidian_lock_wait_seconds
	postings *obs.Counter      // zidian_index_posting_reads_total
	blocks   *obs.Counter      // zidian_blocks_fetched_total
	batch    *obs.Histogram    // zidian_commit_batch_size

	// stmts is the per-template statistics registry behind
	// /stats/statements and SHOW STATEMENTS; stmtTopK bounds how many
	// templates the per-template /metrics families export.
	stmts    *obs.StmtStats
	stmtTopK int

	// capture, when non-nil, streams one anonymized JSON line per finished
	// statement for later replay.
	capture *captureLog

	// anon memoizes AnonymizeSQL by normalized text — a serving workload is
	// a small set of templates repeated, and parameterized statements hit
	// the cache with their literals already lifted out.
	anon anonCache

	slowThreshold time.Duration
	slowMaxBytes  int64
	slowDropped   *obs.Counter // zidian_slow_query_dropped_total
	slowMu        sync.Mutex
	slowOut       io.Writer
	slowBytes     int64 // bytes written since start/last rotation, under slowMu
}

// newServerObs builds the registry and registers every family the server
// exposes. Pre-existing stats structs (admission gate, plan cache, kv node
// metrics, session counters) join via pull-style RegisterFunc closures so
// their own bookkeeping stays untouched.
func newServerObs(s *Server, cfg Config) *serverObs {
	o := &serverObs{
		reg:           obs.NewRegistry(),
		stmts:         obs.NewStmtStats(cfg.StmtStatsCapacity),
		stmtTopK:      cfg.StmtMetricsTopK,
		capture:       newCaptureLog(cfg.CaptureLog),
		slowThreshold: cfg.SlowQueryThreshold,
		slowMaxBytes:  cfg.SlowQueryMaxBytes,
		slowOut:       cfg.SlowQueryLog,
	}
	r := o.reg
	o.queries = r.NewCounterVec("zidian_queries_total",
		"Statements executed, by verb.", "verb")
	o.errs = r.NewCounterVec("zidian_query_errors_total",
		"Statements failed, by reason.", "reason")
	o.latency = r.NewHistogramVec("zidian_query_duration_seconds",
		"End-to-end statement wall time inside the server, by verb.", "verb", nil)
	o.admWait = r.NewHistogram("zidian_admission_wait_seconds",
		"Time statements spent queued at the admission gate, including waits that ended in rejection or timeout.", nil)
	o.lockWait = r.NewHistogram("zidian_lock_wait_seconds",
		"Time statements spent acquiring relation locks.", nil)
	o.postings = r.NewCounter("zidian_index_posting_reads_total",
		"Secondary-index posting entries read by traced statements.")
	o.blocks = r.NewCounter("zidian_blocks_fetched_total",
		"BaaV blocks fetched and decoded by traced statements.")
	o.slowDropped = r.NewCounter("zidian_slow_query_dropped_total",
		"Slow-query log lines dropped by the size cap.")
	// Batch sizes ride the histogram machinery by encoding a batch of n
	// statements as n "seconds": bucket upper bounds are statement counts.
	o.batch = r.NewHistogram("zidian_commit_batch_size",
		"Statements folded into one group commit, per installed batch.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	if s != nil && s.inst != nil { // tests exercise the obs layer serverless
		s.inst.SetCommitObserver(func(n int) {
			o.batch.Observe(time.Duration(n) * time.Second)
		})
	}

	r.RegisterFunc("zidian_commit_seq",
		"Installed MVCC commit sequence, per relation.", "counter", "rel",
		func() []obs.Sample {
			rels := s.inst.Relations()
			out := make([]obs.Sample, len(rels))
			for i, rel := range rels {
				out[i] = obs.Sample{Label: rel, Value: float64(s.inst.CommitSeq(rel))}
			}
			return out
		})
	r.RegisterFunc("zidian_mvcc_versions_live",
		"Block versions currently held in the version directory.", "gauge", "",
		func() []obs.Sample {
			live, _ := s.inst.MVCCVersions()
			return []obs.Sample{{Value: float64(live)}}
		})
	r.RegisterFunc("zidian_mvcc_versions_reclaimed_total",
		"Retired block versions physically reclaimed since open.", "counter", "",
		func() []obs.Sample {
			_, reclaimed := s.inst.MVCCVersions()
			return []obs.Sample{{Value: float64(reclaimed)}}
		})
	r.RegisterFunc("zidian_mvcc_versions_swept_total",
		"Retired block versions reclaimed by the background sweep (a subset of the reclaimed total).", "counter", "",
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.inst.MVCCSwept())}}
		})

	r.RegisterFunc("zidian_stmt_seconds_total",
		"Total statement wall time for the top-K templates by total time.", "counter", "template",
		func() []obs.Sample {
			top := o.stmts.TopTemplates(o.stmtTopK)
			out := make([]obs.Sample, len(top))
			for i, t := range top {
				out[i] = obs.Sample{Label: t.Template, Value: t.Seconds}
			}
			return out
		})
	r.RegisterFunc("zidian_stmt_calls_total",
		"Statement calls for the top-K templates by total time.", "counter", "template",
		func() []obs.Sample {
			top := o.stmts.TopTemplates(o.stmtTopK)
			out := make([]obs.Sample, len(top))
			for i, t := range top {
				out[i] = obs.Sample{Label: t.Template, Value: float64(t.Calls)}
			}
			return out
		})
	r.RegisterFunc("zidian_stmt_kv_ops_total",
		"Traced KV operations for the top-K templates by total time.", "counter", "template",
		func() []obs.Sample {
			top := o.stmts.TopTemplates(o.stmtTopK)
			out := make([]obs.Sample, len(top))
			for i, t := range top {
				out[i] = obs.Sample{Label: t.Template, Value: float64(t.KVOps)}
			}
			return out
		})
	r.RegisterFunc("zidian_stmt_templates",
		"Statement templates currently tracked by the statistics registry.", "gauge", "",
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(o.stmts.Tracked())}}
		})
	r.RegisterFunc("zidian_stmt_templates_evicted_total",
		"Statement templates evicted from the statistics registry (totals fold into the _evicted bucket).", "counter", "",
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(o.stmts.Evictions())}}
		})

	r.RegisterFunc("zidian_admission_in_flight",
		"Statements currently holding an execution slot.", "gauge", "",
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.adm.Stats().InFlight)}}
		})
	r.RegisterFunc("zidian_admission_waiting",
		"Statements currently queued for an execution slot.", "gauge", "",
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.adm.Stats().Waiting)}}
		})
	r.RegisterFunc("zidian_admission_total",
		"Admission gate outcomes, by result.", "counter", "result",
		func() []obs.Sample {
			st := s.adm.Stats()
			return []obs.Sample{
				{Label: "admitted", Value: float64(st.Admitted)},
				{Label: "rejected", Value: float64(st.Rejected)},
				{Label: "timed_out", Value: float64(st.TimedOut)},
			}
		})
	r.RegisterFunc("zidian_plan_cache_events_total",
		"Plan cache activity, by event.", "counter", "event",
		func() []obs.Sample {
			st := s.cache.Stats()
			return []obs.Sample{
				{Label: "hit", Value: float64(st.Hits)},
				{Label: "miss", Value: float64(st.Misses)},
				{Label: "eviction", Value: float64(st.Evictions)},
				{Label: "params_hit", Value: float64(st.ParamsHits)},
				{Label: "literal_hit", Value: float64(st.LiteralHits)},
				{Label: "invalidation", Value: float64(st.Invalidations)},
				{Label: "stale_drop", Value: float64(st.StaleDrops)},
			}
		})
	r.RegisterFunc("zidian_plan_cache_size",
		"Compiled plans currently cached.", "gauge", "",
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.cache.Len())}}
		})
	r.RegisterFunc("zidian_plan_cache_epoch",
		"Current schema epoch of the plan cache.", "gauge", "",
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.cache.Epoch())}}
		})
	r.RegisterFunc("zidian_kv_ops_total",
		"KV operations served by the storage nodes, by op.", "counter", "op",
		func() []obs.Sample {
			m := s.inst.Store().Cluster.Metrics()
			return []obs.Sample{
				{Label: "delete", Value: float64(m.Deletes)},
				{Label: "get", Value: float64(m.Gets)},
				{Label: "put", Value: float64(m.Puts)},
				{Label: "scan_next", Value: float64(m.ScanNexts)},
			}
		})
	r.RegisterFunc("zidian_kv_bytes_total",
		"Bytes moved between the SQL layer and the storage nodes, by direction.", "counter", "dir",
		func() []obs.Sample {
			m := s.inst.Store().Cluster.Metrics()
			return []obs.Sample{
				{Label: "read", Value: float64(m.BytesRead)},
				{Label: "written", Value: float64(m.BytesWritten)},
			}
		})
	// Per-node families: the same op/byte totals broken out by storage
	// node, so shard skew and hot nodes are visible without a trace.
	r.RegisterFunc("zidian_kv_node_ops_total",
		"KV operations served, by storage node (all op kinds).", "counter", "node",
		func() []obs.Sample {
			cl := s.inst.Store().Cluster
			out := make([]obs.Sample, cl.NodeCount())
			for i := range out {
				m := cl.NodeMetrics(i)
				out[i] = obs.Sample{Label: strconv.Itoa(i),
					Value: float64(m.Gets + m.Puts + m.Deletes + m.ScanNexts)}
			}
			return out
		})
	r.RegisterFunc("zidian_kv_node_reads_total",
		"KV read operations (gets and scan steps) served, by storage node.", "counter", "node",
		func() []obs.Sample {
			cl := s.inst.Store().Cluster
			out := make([]obs.Sample, cl.NodeCount())
			for i := range out {
				m := cl.NodeMetrics(i)
				out[i] = obs.Sample{Label: strconv.Itoa(i), Value: float64(m.Gets + m.ScanNexts)}
			}
			return out
		})
	r.RegisterFunc("zidian_kv_node_writes_total",
		"KV write operations (puts and deletes) served, by storage node.", "counter", "node",
		func() []obs.Sample {
			cl := s.inst.Store().Cluster
			out := make([]obs.Sample, cl.NodeCount())
			for i := range out {
				m := cl.NodeMetrics(i)
				out[i] = obs.Sample{Label: strconv.Itoa(i), Value: float64(m.Puts + m.Deletes)}
			}
			return out
		})
	r.RegisterFunc("zidian_kv_node_bytes_read_total",
		"Bytes read from storage, by storage node.", "counter", "node",
		func() []obs.Sample {
			cl := s.inst.Store().Cluster
			out := make([]obs.Sample, cl.NodeCount())
			for i := range out {
				out[i] = obs.Sample{Label: strconv.Itoa(i), Value: float64(cl.NodeMetrics(i).BytesRead)}
			}
			return out
		})
	r.RegisterFunc("zidian_kv_node_bytes_written_total",
		"Bytes written to storage, by storage node.", "counter", "node",
		func() []obs.Sample {
			cl := s.inst.Store().Cluster
			out := make([]obs.Sample, cl.NodeCount())
			for i := range out {
				out[i] = obs.Sample{Label: strconv.Itoa(i), Value: float64(cl.NodeMetrics(i).BytesWritten)}
			}
			return out
		})
	r.RegisterFunc("zidian_sessions",
		"Open wire-protocol sessions.", "gauge", "",
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.sessions.Load())}}
		})
	r.RegisterFunc("zidian_sessions_total",
		"Wire-protocol sessions accepted since start.", "counter", "",
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.totalSess.Load())}}
		})
	r.RegisterFunc("zidian_uptime_seconds",
		"Seconds since the server started.", "gauge", "",
		func() []obs.Sample {
			return []obs.Sample{{Value: time.Since(s.started).Seconds()}}
		})
	return o
}

// begin opens a per-statement measurement context. Nil receiver → nil
// context → nil trace, so a disabled server pays only nil checks.
func (o *serverObs) begin(verb string) *stmtCtx {
	if o == nil {
		return nil
	}
	return &stmtCtx{o: o, verb: verb, trace: &obs.Trace{}, start: time.Now()}
}

// stmtCtx measures one statement through the serving layer: it owns the
// statement's trace, records where time went (queue, locks, execution), and
// on finish folds everything into the registry and — when the statement was
// slow or failed slow — the slow-query log. All methods are nil-safe.
type stmtCtx struct {
	o         *serverObs
	verb      string
	norm      string
	template  string   // anonymized norm: literals replaced by ?
	binds     []string // kinds of bound/replaced values, in order
	session   uint64   // originating wire session (0 for HTTP)
	relations []string
	cacheHit  bool
	trace     *obs.Trace
	start     time.Time
	done      bool
}

// Trace returns the statement's trace (nil when metrics are disabled).
func (c *stmtCtx) Trace() *obs.Trace {
	if c == nil {
		return nil
	}
	return c.trace
}

// setStmt records the normalized statement text and derives the anonymized
// template and bind-kind list that key the statistics registry and the
// capture stream. params are the statement's bound values (their kinds fill
// the positions of pre-existing ? placeholders; values are never kept).
func (c *stmtCtx) setStmt(norm string, params []relation.Value) {
	if c == nil {
		return
	}
	c.norm = norm
	c.template, c.binds = c.o.anon.anonymize(norm, params)
}

// setSession records the originating wire session for capture.
func (c *stmtCtx) setSession(id uint64) {
	if c == nil {
		return
	}
	c.session = id
}

// setRelations records the statement's relation footprint.
func (c *stmtCtx) setRelations(rels []string) {
	if c == nil {
		return
	}
	c.relations = rels
}

// admissionWait records time spent at the admission gate. It is called on
// every acquire — successful or not — so a statement that times out in the
// queue still reports where its latency went.
func (c *stmtCtx) admissionWait(d time.Duration) {
	if c == nil {
		return
	}
	c.trace.QueueWaitNanos += int64(d)
	c.o.admWait.Observe(d)
}

// locksWait records time spent acquiring relation locks.
func (c *stmtCtx) locksWait(d time.Duration) {
	if c == nil {
		return
	}
	c.trace.LockWaitNanos += int64(d)
	c.o.lockWait.Observe(d)
}

// finish closes the statement: verb and latency counters, error counters by
// reason, trace-derived posting/block totals, and the slow-query log when
// the statement exceeded the threshold. Idempotent so retry loops can call
// it once per statement regardless of exit path.
func (c *stmtCtx) finish(rows int, cacheHit bool, err error) {
	if c == nil || c.done {
		return
	}
	c.done = true
	c.cacheHit = cacheHit
	wall := time.Since(c.start)
	c.o.queries.With(c.verb).Inc()
	c.o.latency.With(c.verb).Observe(wall)
	if err != nil {
		c.o.errs.With(errorCode(err)).Inc()
	}
	c.o.postings.Add(c.trace.PostingReads())
	c.o.blocks.Add(c.trace.Blocks())
	// Fold into the per-template registry with the same wall value the
	// global histogram observed, so per-template sums reconcile exactly
	// against the global families.
	c.o.stmts.Record(obs.StmtUsage{
		Verb:           c.verb,
		Template:       c.template,
		Wall:           wall,
		Rows:           int64(rows),
		Err:            err != nil,
		CacheHit:       cacheHit,
		KV:             c.trace.KV.Snapshot(),
		PostingReads:   c.trace.PostingReads(),
		Blocks:         c.trace.Blocks(),
		QueueWaitNanos: c.trace.QueueWaitNanos,
		LockWaitNanos:  c.trace.LockWaitNanos,
		Relations:      c.relations,
	})
	c.o.capture.record(CaptureEntry{
		Session:  c.session,
		Verb:     c.verb,
		Template: c.template,
		Binds:    c.binds,
		Rows:     int64(rows),
		OK:       err == nil,
	})
	c.o.logSlow(c, rows, wall, err)
}

// slowEntry is one slow-query log line: everything needed to understand an
// offending statement without re-running it — the template (never literal
// values), where the time went layer by layer, and what the statement
// touched.
type slowEntry struct {
	TS              string   `json:"ts"`
	Verb            string   `json:"verb"`
	Template        string   `json:"template"`
	BindArity       int      `json:"bindArity"`
	Relations       []string `json:"relations,omitempty"`
	Rows            int      `json:"rows"`
	WallMicros      int64    `json:"wallMicros"`
	QueueWaitMicros int64    `json:"queueWaitMicros"`
	LockWaitMicros  int64    `json:"lockWaitMicros"`
	// Snapshot renders the MVCC sequences the statement's reads pinned
	// ("REL:seq,..."), CommitWaitMicros the time a write sat in its
	// relation's group-commit queue.
	Snapshot         string         `json:"snapshot,omitempty"`
	CommitWaitMicros int64          `json:"commitWaitMicros,omitempty"`
	KV               obs.KVSnapshot `json:"kv"`
	PostingReads     int64          `json:"postingReads"`
	BlocksFetched    int64          `json:"blocksFetched"`
	CacheHit         bool           `json:"cacheHit"`
	Error            string         `json:"error,omitempty"`
	Code             string         `json:"code,omitempty"`
}

// logSlow emits one JSON line when the statement's wall time crossed the
// threshold. Failed statements are logged too — a queue timeout is exactly
// the kind of slowness the log exists to explain.
func (o *serverObs) logSlow(c *stmtCtx, rows int, wall time.Duration, err error) {
	if o.slowThreshold <= 0 || o.slowOut == nil || wall < o.slowThreshold {
		return
	}
	e := slowEntry{
		TS:               time.Now().UTC().Format(time.RFC3339Nano),
		Verb:             c.verb,
		Template:         c.template,
		BindArity:        len(c.binds),
		Relations:        c.relations,
		Rows:             rows,
		WallMicros:       wall.Microseconds(),
		QueueWaitMicros:  c.trace.QueueWaitNanos / 1e3,
		LockWaitMicros:   c.trace.LockWaitNanos / 1e3,
		KV:               c.trace.KV.Snapshot(),
		PostingReads:     c.trace.PostingReads(),
		BlocksFetched:    c.trace.Blocks(),
		CacheHit:         c.cacheHit,
		CommitWaitMicros: c.trace.CommitWaitNanos / 1e3,
	}
	if len(c.trace.SnapshotSeqs) > 0 {
		e.Snapshot = zidian.RenderSnapshotSeqs(c.trace.SnapshotSeqs)
	}
	if err != nil {
		e.Error = err.Error()
		e.Code = errorCode(err)
	}
	line, merr := json.Marshal(&e)
	if merr != nil {
		return
	}
	line = append(line, '\n')
	o.slowMu.Lock()
	defer o.slowMu.Unlock()
	if o.slowMaxBytes > 0 {
		if int64(len(line)) > o.slowMaxBytes {
			// A single line larger than the whole cap can never fit.
			o.slowDropped.Inc()
			return
		}
		if o.slowBytes+int64(len(line)) > o.slowMaxBytes {
			// Cap reached: rotate when the sink supports it, otherwise
			// drop and count — the log must never outgrow its bound.
			rot, ok := o.slowOut.(interface{ Rotate() error })
			if !ok || rot.Rotate() != nil {
				o.slowDropped.Inc()
				return
			}
			o.slowBytes = 0
		}
	}
	n, _ := o.slowOut.Write(line)
	o.slowBytes += int64(n)
}

// errorCode maps a statement error to the machine-readable code carried in
// the response payload and the slow-query log: backpressure and shutdown
// conditions keep distinct codes so clients can tell retryable rejections
// from statement faults.
func errorCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrQueueTimeout):
		return "queue_timeout"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	default:
		return "statement"
	}
}

package server

import (
	"fmt"
	"sort"
	"sync"
)

// Lock regimes. The server schedules statements under one of three
// regimes, selectable per deployment for A/B measurement (zidian-bench's
// -exp mixed runs all three):
//
//   - regimeMVCC (the default): readers and writers both take the global
//     gate SHARED and no relation locks at all. Readers pin MVCC snapshots
//     inside the instance; writers ride their relation's group committer,
//     which serializes conflicting writes itself. Only DDL (CREATE/DROP
//     INDEX) takes the gate exclusive: index backfill reads the relation's
//     tuple slice and rewrites the posting space, so nothing may be in
//     flight — and with no statements in flight there are no pinned
//     snapshots to invalidate.
//   - regimePerRelation: the PR 5 discipline. A SELECT takes the gate
//     shared plus the read lock of every relation its plan touches in
//     sorted order; a write takes the gate shared plus its target's write
//     lock, so writes stall their own relation's readers but nobody
//     else's. Kept as the measured baseline MVCC is judged against.
//   - regimeGlobal: the legacy instance-wide write gate — every write
//     excludes every read.
//
// The global gate is a queue-fair (FIFO) readers-writer lock, not a
// sync.RWMutex: arrivals are admitted strictly in order, with consecutive
// readers batched. Under a flood of overlapping readers a sync.RWMutex
// never drains its readers, so a pending DDL could starve; under the fair
// gate the DDL's slot in the queue blocks readers that arrive after it,
// and it acquires as soon as the readers ahead of it finish.
//
// Deadlock freedom: every acquisition orders the global gate first, then
// relation locks in sorted name order; writers hold at most one relation
// lock. There is no lock-upgrade path.

type lockRegime int

const (
	regimeMVCC lockRegime = iota
	regimePerRelation
	regimeGlobal
)

// parseRegime maps a Config.LockRegime string to its regime.
func parseRegime(s string) (lockRegime, error) {
	switch s {
	case "", "mvcc":
		return regimeMVCC, nil
	case "per-relation":
		return regimePerRelation, nil
	case "global":
		return regimeGlobal, nil
	default:
		return 0, fmt.Errorf("server: unknown lock regime %q (want mvcc, per-relation or global)", s)
	}
}

func (r lockRegime) String() string {
	switch r {
	case regimePerRelation:
		return "per-relation"
	case regimeGlobal:
		return "global"
	default:
		return "mvcc"
	}
}

// gateWaiter is one queued acquisition on the fair gate.
type gateWaiter struct {
	exclusive bool
	ready     chan struct{}
}

// fairGate is a FIFO readers-writer lock: acquisitions are granted in
// arrival order, with runs of consecutive readers admitted together.
// active holds the reader count, or -1 while an exclusive holder runs.
type fairGate struct {
	mu     sync.Mutex
	active int
	queue  []*gateWaiter
}

// RLock acquires the gate shared, behind any earlier waiter.
func (g *fairGate) RLock() {
	g.mu.Lock()
	if len(g.queue) == 0 && g.active >= 0 {
		g.active++
		g.mu.Unlock()
		return
	}
	w := &gateWaiter{ready: make(chan struct{})}
	g.queue = append(g.queue, w)
	g.mu.Unlock()
	<-w.ready
}

// RUnlock releases one shared hold.
func (g *fairGate) RUnlock() {
	g.mu.Lock()
	g.active--
	if g.active == 0 {
		g.wake()
	}
	g.mu.Unlock()
}

// Lock acquires the gate exclusively, behind any earlier waiter.
func (g *fairGate) Lock() {
	g.mu.Lock()
	if len(g.queue) == 0 && g.active == 0 {
		g.active = -1
		g.mu.Unlock()
		return
	}
	w := &gateWaiter{exclusive: true, ready: make(chan struct{})}
	g.queue = append(g.queue, w)
	g.mu.Unlock()
	<-w.ready
}

// Unlock releases the exclusive hold.
func (g *fairGate) Unlock() {
	g.mu.Lock()
	g.active = 0
	g.wake()
	g.mu.Unlock()
}

// wake admits the queue head — and, for a reader head, the run of readers
// behind it — while the gate state allows. Called with mu held and the
// gate free (active == 0) or shared (active > 0, reader admission only).
func (g *fairGate) wake() {
	for len(g.queue) > 0 {
		head := g.queue[0]
		if head.exclusive {
			if g.active != 0 {
				return
			}
			g.active = -1
			g.queue = g.queue[0:copy(g.queue, g.queue[1:])]
			close(head.ready)
			return
		}
		if g.active < 0 {
			return
		}
		g.active++
		g.queue = g.queue[0:copy(g.queue, g.queue[1:])]
		close(head.ready)
	}
}

// relLocks schedules statements under the configured regime (see the
// package comment above for the three disciplines).
type relLocks struct {
	regime lockRegime
	global fairGate

	// rels is built once at construction from the schema's fixed relation
	// set and never mutated after, so the hot path reads it lock-free. A
	// name outside it (a typo'd INSERT target — the statement fails
	// downstream anyway) maps to the shared fallback lock instead of
	// growing state per distinct bad name. Only regimePerRelation uses it.
	rels    map[string]*sync.RWMutex
	unknown sync.RWMutex
}

// newRelLocks builds a lock manager over the fixed relation set.
func newRelLocks(regime lockRegime, rels []string) *relLocks {
	l := &relLocks{regime: regime, rels: make(map[string]*sync.RWMutex, len(rels))}
	for _, r := range rels {
		l.rels[r] = &sync.RWMutex{}
	}
	return l
}

// lockFor returns the named relation's lock, or the fallback for names
// outside the schema. Read-only after construction — no synchronization.
func (l *relLocks) lockFor(rel string) *sync.RWMutex {
	if m, ok := l.rels[rel]; ok {
		return m
	}
	return &l.unknown
}

// acquireRead admits a read over the given relations, returning the
// release. Under mvcc and global regimes only the gate (shared) is taken;
// per-relation additionally read-locks each relation. rels may be in any
// order and contain duplicates; acquisition sorts and dedups so
// concurrent multi-relation readers cannot deadlock.
func (l *relLocks) acquireRead(rels []string) func() {
	l.global.RLock()
	if l.regime != regimePerRelation || len(rels) == 0 {
		return l.global.RUnlock
	}
	sorted := rels
	if !sort.StringsAreSorted(sorted) {
		// The usual producer (PlanInfo.Relations) is already canonical;
		// only unordered ad-hoc lists pay the copy and sort.
		sorted = append([]string{}, rels...)
		sort.Strings(sorted)
	}
	locks := make([]*sync.RWMutex, 0, len(sorted))
	for i, r := range sorted {
		if i > 0 && r == sorted[i-1] {
			continue
		}
		m := l.lockFor(r)
		m.RLock()
		locks = append(locks, m)
	}
	return func() {
		for i := len(locks) - 1; i >= 0; i-- {
			locks[i].RUnlock()
		}
		l.global.RUnlock()
	}
}

// acquireWrite admits a write to one relation, returning the release.
// Under mvcc the write shares the gate with readers — snapshot pinning and
// the group committer carry the isolation; under per-relation it excludes
// the target's readers; under global it excludes everything.
func (l *relLocks) acquireWrite(rel string) func() {
	switch l.regime {
	case regimeGlobal:
		l.global.Lock()
		return l.global.Unlock
	case regimePerRelation:
		l.global.RLock()
		m := l.lockFor(rel)
		m.Lock()
		return func() {
			m.Unlock()
			l.global.RUnlock()
		}
	default:
		l.global.RLock()
		return l.global.RUnlock
	}
}

// acquireDDL locks the whole instance exclusively for a catalog change.
// The fair gate guarantees it cannot be starved by a reader flood: it
// waits only for statements admitted before it.
func (l *relLocks) acquireDDL() func() {
	l.global.Lock()
	return l.global.Unlock
}

// compileLock locks the instance for plan compilation: shared with reads
// and writes, excluded by DDL — the window in which the plan cache's epoch
// is captured, so a plan compiled just before a DDL lands tagged stale.
func (l *relLocks) compileLock() func() {
	l.global.RLock()
	return l.global.RUnlock
}

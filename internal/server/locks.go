package server

import (
	"sort"
	"sync"
)

// relLocks schedules statements for mixed read/write traffic with
// per-relation read/write locking plus one global DDL gate:
//
//   - A SELECT takes the global gate shared, then the read lock of every
//     base relation its compiled plan touches, in sorted order. Readers of
//     the same relation share; readers of different relations never meet.
//   - An INSERT or DELETE takes the global gate shared, then its single
//     target relation's write lock: it excludes only that relation's
//     readers and writer. Writes to disjoint relations run in parallel,
//     and readers of untouched relations are never stalled — the paper's
//     module M4 makes a write touch only its own blocks and postings, so
//     the lock scope matches the data scope. Index posting maintenance for
//     rel(attr) rides the same write path, so a reader admitted after the
//     write sees a consistent block/posting pair per relation.
//   - DDL (CREATE/DROP INDEX) takes the global gate exclusive: it changes
//     the catalog that compiled plans and the plan cache depend on, so
//     nothing else may be in flight. Plan compilation takes the global
//     gate shared (compileLock), preserving the cache's epoch-capture
//     dance exactly as under the old instance-wide lock.
//
// Deadlock freedom: every acquisition orders the global gate first, then
// relation locks in sorted name order; writers hold at most one relation
// lock. There is no lock-upgrade path.
//
// The legacy single-gate behavior (every write excludes every read,
// instance-wide) remains available behind globalOnly for A/B measurement —
// zidian-bench's -exp mixed compares the two regimes.
type relLocks struct {
	globalOnly bool
	global     sync.RWMutex

	// rels is built once at construction from the schema's fixed relation
	// set and never mutated after, so the hot path reads it lock-free. A
	// name outside it (a typo'd INSERT target — the statement fails
	// downstream anyway) maps to the shared fallback lock instead of
	// growing state per distinct bad name.
	rels    map[string]*sync.RWMutex
	unknown sync.RWMutex
}

// newRelLocks builds a lock manager over the fixed relation set; globalOnly
// selects the legacy instance-wide write gate instead of per-relation
// locking.
func newRelLocks(globalOnly bool, rels []string) *relLocks {
	l := &relLocks{globalOnly: globalOnly, rels: make(map[string]*sync.RWMutex, len(rels))}
	for _, r := range rels {
		l.rels[r] = &sync.RWMutex{}
	}
	return l
}

// lockFor returns the named relation's lock, or the fallback for names
// outside the schema. Read-only after construction — no synchronization.
func (l *relLocks) lockFor(rel string) *sync.RWMutex {
	if m, ok := l.rels[rel]; ok {
		return m
	}
	return &l.unknown
}

// acquireRead locks the given relations for reading (shared), returning the
// release. rels may be in any order and contain duplicates; acquisition
// sorts and dedups so concurrent multi-relation readers cannot deadlock.
func (l *relLocks) acquireRead(rels []string) func() {
	l.global.RLock()
	if l.globalOnly || len(rels) == 0 {
		return l.global.RUnlock
	}
	sorted := rels
	if !sort.StringsAreSorted(sorted) {
		// The usual producer (PlanInfo.Relations) is already canonical;
		// only unordered ad-hoc lists pay the copy and sort.
		sorted = append([]string{}, rels...)
		sort.Strings(sorted)
	}
	locks := make([]*sync.RWMutex, 0, len(sorted))
	for i, r := range sorted {
		if i > 0 && r == sorted[i-1] {
			continue
		}
		m := l.lockFor(r)
		m.RLock()
		locks = append(locks, m)
	}
	return func() {
		for i := len(locks) - 1; i >= 0; i-- {
			locks[i].RUnlock()
		}
		l.global.RUnlock()
	}
}

// acquireWrite locks one relation for writing (exclusive against its
// readers and writer, shared against everything else), returning the
// release.
func (l *relLocks) acquireWrite(rel string) func() {
	if l.globalOnly {
		l.global.Lock()
		return l.global.Unlock
	}
	l.global.RLock()
	m := l.lockFor(rel)
	m.Lock()
	return func() {
		m.Unlock()
		l.global.RUnlock()
	}
}

// acquireDDL locks the whole instance exclusively for a catalog change.
func (l *relLocks) acquireDDL() func() {
	l.global.Lock()
	return l.global.Unlock
}

// compileLock locks the instance for plan compilation: shared with reads
// and writes, excluded by DDL — the window in which the plan cache's epoch
// is captured, so a plan compiled just before a DDL lands tagged stale.
func (l *relLocks) compileLock() func() {
	l.global.RLock()
	return l.global.RUnlock
}

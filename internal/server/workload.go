package server

import (
	"zidian"
	"zidian/internal/workload"
)

// OpenWorkload generates a named workload dataset ("mot", "airca" or
// "tpch") at the given scale and opens a zidian instance over its
// hand-designed BaaV schema — the standard bootstrap for a serving
// deployment backed by synthetic data (zidian-server, the load-generator
// bench, and the server tests all start here).
func OpenWorkload(name string, scale float64, seed int64, nodes, workers int) (*zidian.Instance, *workload.Workload, error) {
	w, err := workload.Generate(name, workload.Spec{Scale: scale, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	inst, err := zidian.Open(w.DB, w.Schema, zidian.Options{Nodes: nodes, Workers: workers})
	if err != nil {
		return nil, nil, err
	}
	return inst, w, nil
}

package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"zidian/internal/server"
	"zidian/internal/server/client"
)

// TestWireParams drives parameterized statements over the wire protocol:
// direct queries, prepare/execute with per-execution bindings, DML, and the
// bind-error surface.
func TestWireParams(t *testing.T) {
	srv, tcp, _ := startServer(t, server.Config{})
	c, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const tmpl = "select T.test_date, T.result, T.mileage from TEST T where T.vehicle_id = ?"
	// The same template with different bindings must return the same rows
	// as the literal-inlined spelling.
	for _, id := range []int{1, 2, 3, 7} {
		_, litRows, _, err := c.Query(fmt.Sprintf(
			"select T.test_date, T.result, T.mileage from TEST T where T.vehicle_id = %d", id))
		if err != nil {
			t.Fatalf("literal %d: %v", id, err)
		}
		_, parRows, stats, err := c.Query(tmpl, id)
		if err != nil {
			t.Fatalf("param %d: %v", id, err)
		}
		if fmt.Sprint(parRows) != fmt.Sprint(litRows) {
			t.Fatalf("id %d: literal %v != parameterized %v", id, litRows, parRows)
		}
		if !stats.ScanFree {
			t.Fatalf("id %d: stats %+v", id, stats)
		}
	}
	// After the first compile, every distinct binding is a cache hit on the
	// same template entry.
	_, _, stats, err := c.Query(tmpl, 99)
	if err != nil || !stats.CacheHit {
		t.Fatalf("template should be cached: %+v %v", stats, err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanCache.ParamsHits == 0 {
		t.Fatalf("paramsHits = 0: %+v", st.PlanCache)
	}

	// prepare / execute with per-execution params.
	if err := c.Prepare("pt", tmpl); err != nil {
		t.Fatal(err)
	}
	_, rows1, _, err := c.Execute("pt", 1)
	if err != nil {
		t.Fatal(err)
	}
	_, lit1, _, err := c.Query("select T.test_date, T.result, T.mileage from TEST T where T.vehicle_id = 1")
	if err != nil || fmt.Sprint(rows1) != fmt.Sprint(lit1) {
		t.Fatalf("execute(1) = %v, want %v (%v)", rows1, lit1, err)
	}
	if _, _, _, err := c.Execute("pt"); err == nil || !strings.Contains(err.Error(), "parameters") {
		t.Fatalf("arity mismatch over the wire: %v", err)
	}
	if _, _, _, err := c.Execute("pt", "not-a-number"); err == nil {
		t.Fatal("type mismatch over the wire must error")
	}
	if err := c.ClosePrepared("pt"); err != nil {
		t.Fatal(err)
	}

	// Parameterized DML through exec.
	resp, err := c.Exec(
		"insert into VEHICLE values (?, 'FORD', 'FORD-M001', 'PETROL', 'RED', ?, 1600, 'LONDON', 1200, 4, 120, 'MID', '2015-01-01')",
		990001, 2015)
	if err != nil || resp.Affected != 1 {
		t.Fatalf("insert: %+v %v", resp, err)
	}
	_, rows, _, err := c.Query("select V.make from VEHICLE V where V.vehicle_id = ?", 990001)
	if err != nil || len(rows) != 1 {
		t.Fatalf("inserted row: %v %v", rows, err)
	}
	resp, err = c.Exec("delete from VEHICLE where vehicle_id = ?", 990001)
	if err != nil || resp.Affected != 1 {
		t.Fatalf("delete: %+v %v", resp, err)
	}
	// Params with DDL are rejected.
	if _, err := c.Exec("create index ix_whatever on VEHICLE(make)", 1); err == nil {
		t.Fatal("params with DDL must error")
	}

	_ = srv
}

// TestWireParamDecoding checks the JSON → value mapping: integral numbers
// must arrive as ints (they key blocks), fractions as floats, strings as
// strings, and anything else is rejected.
func TestWireParamDecoding(t *testing.T) {
	raw := func(parts ...string) []json.RawMessage {
		out := make([]json.RawMessage, len(parts))
		for i, p := range parts {
			out[i] = json.RawMessage(p)
		}
		return out
	}
	vals, err := server.DecodeParams(raw("42", "2.5", `"x"`, "1e3"))
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].Kind.String() != "int" || vals[0].Int != 42 {
		t.Fatalf("vals[0] = %+v", vals[0])
	}
	if vals[1].Kind.String() != "float" || vals[1].Flt != 2.5 {
		t.Fatalf("vals[1] = %+v", vals[1])
	}
	if vals[2].Kind.String() != "string" || vals[2].Str != "x" {
		t.Fatalf("vals[2] = %+v", vals[2])
	}
	for _, bad := range []string{"true", "null", "[1]", "{}", ""} {
		if _, err := server.DecodeParams(raw(bad)); err == nil {
			t.Errorf("DecodeParams(%s) succeeded", bad)
		}
	}
}

// TestHTTPQueryParams exercises the HTTP surface's params array.
func TestHTTPQueryParams(t *testing.T) {
	_, _, httpA := startServer(t, server.Config{})
	body, _ := json.Marshal(map[string]any{
		"sql":    "select V.make, V.model from VEHICLE V where V.vehicle_id = ?",
		"params": []any{3},
	})
	resp, err := http.Post("http://"+httpA+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var r server.Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if !r.OK || len(r.Rows) != 1 {
		t.Fatalf("response = %+v", r)
	}
	// Arity mismatch surfaces as a client error.
	body, _ = json.Marshal(map[string]any{
		"sql": "select V.make from VEHICLE V where V.vehicle_id = ?",
	})
	resp2, err := http.Post("http://"+httpA+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
}

// TestTemplateCacheKeying pins the cache-keying contract: parameterized
// statements share one entry per template across all bindings, while
// non-parameterized SQL falls back to literal-inlined keys (distinct
// literals = distinct entries, the intended fallback), with the hit split
// reported per class.
func TestTemplateCacheKeying(t *testing.T) {
	srv, tcp, _ := startServer(t, server.Config{})
	c, err := client.Dial(tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const tmpl = "select V.make from VEHICLE V where V.vehicle_id = ?"
	for i := 0; i < 10; i++ {
		if _, _, _, err := c.Query(tmpl, 1000+i); err != nil {
			t.Fatal(err)
		}
	}
	cs := srv.Cache().Stats()
	if cs.ParamsHits != 9 {
		t.Fatalf("10 distinct bindings should be 1 miss + 9 template hits: %+v", cs)
	}
	if srv.Cache().Len() != 1 {
		t.Fatalf("cache should hold one template entry, has %d", srv.Cache().Len())
	}

	// Different spellings of the same template normalize to one key.
	if _, _, _, err := c.Query("SELECT  V.make FROM VEHICLE V WHERE V.vehicle_id = ?;", 1); err != nil {
		t.Fatal(err)
	}
	if srv.Cache().Len() != 1 {
		t.Fatalf("normalization should collapse spellings: %d entries", srv.Cache().Len())
	}

	// The literal fallback: distinct literals make distinct entries and no
	// cross-literal reuse, but exact-text repeats still hit.
	base := srv.Cache().Stats()
	for i := 0; i < 5; i++ {
		sql := fmt.Sprintf("select V.make from VEHICLE V where V.vehicle_id = %d", 2000+i)
		if _, _, _, err := c.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	cs = srv.Cache().Stats()
	if got := cs.Misses - base.Misses; got != 5 {
		t.Fatalf("5 distinct literals should all miss, missed %d", got)
	}
	if srv.Cache().Len() != 6 {
		t.Fatalf("cache entries = %d, want 1 template + 5 literal", srv.Cache().Len())
	}
	if _, _, stats, err := c.Query("select V.make from VEHICLE V where V.vehicle_id = 2000"); err != nil || !stats.CacheHit {
		t.Fatalf("exact-text repeat should hit: %+v %v", stats, err)
	}
	cs = srv.Cache().Stats()
	if cs.LiteralHits == 0 {
		t.Fatalf("literalHits = 0: %+v", cs)
	}
}

package server

import (
	"fmt"
	"testing"
)

// TestPlanCacheEpochInvalidation: Invalidate advances the epoch and every
// cached plan reads as a miss afterwards, with stale drops accounted.
func TestPlanCacheEpochInvalidation(t *testing.T) {
	c := NewPlanCache(64)
	for i := 0; i < 8; i++ {
		c.Put(fmt.Sprintf("q%d", i), nil)
	}
	if _, ok := c.Get("q3"); !ok {
		t.Fatal("warm entry missed")
	}
	if c.Epoch() != 0 {
		t.Fatalf("epoch = %d", c.Epoch())
	}
	c.Invalidate()
	if c.Epoch() != 1 {
		t.Fatalf("epoch after invalidate = %d", c.Epoch())
	}
	for i := 0; i < 8; i++ {
		if _, ok := c.Get(fmt.Sprintf("q%d", i)); ok {
			t.Fatalf("stale entry q%d hit after invalidate", i)
		}
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.StaleDrops != 8 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Size != 0 {
		t.Fatalf("stale entries not dropped: size = %d", st.Size)
	}
	// Fresh entries at the new epoch hit normally.
	c.Put("q0", nil)
	if _, ok := c.Get("q0"); !ok {
		t.Fatal("fresh entry missed after invalidate")
	}
}

// TestPlanCachePutAtStaleEpoch: a plan compiled under an old epoch (the
// DDL-races-compilation window) is stored but never served.
func TestPlanCachePutAtStaleEpoch(t *testing.T) {
	c := NewPlanCache(16)
	old := c.Epoch()
	c.Invalidate() // DDL lands while the plan is being compiled
	c.PutAt("q", nil, old)
	if _, ok := c.Get("q"); ok {
		t.Fatal("plan compiled under an old epoch was served")
	}
	c.PutAt("q", nil, c.Epoch())
	if _, ok := c.Get("q"); !ok {
		t.Fatal("plan at the current epoch missed")
	}
}

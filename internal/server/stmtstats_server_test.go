package server

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"zidian"
)

// stmtVerbs are every verb the serving layer records.
var stmtVerbs = []string{
	verbSelect, verbInsert, verbDelete, verbDDL,
	verbExplain, verbExplainAnalyze, verbShow,
}

// TestStmtStatsServerConservation drives concurrent mixed traffic through a
// server whose statement registry is far smaller than the distinct-template
// count — forcing LRU evictions — on all three kv engines, and requires the
// registry to conserve every statement: the per-template sums (including the
// _evicted fold) must equal the global verb counters and the merged latency
// histogram exactly. Run under -race this is also the registry's data-race
// probe inside the real serving path.
func TestStmtStatsServerConservation(t *testing.T) {
	for _, eng := range []string{"hash", "lsm", "sorted"} {
		t.Run(eng, func(t *testing.T) {
			db, bv := mixedDB(t)
			inst, err := zidian.Open(db, bv, zidian.Options{Engine: eng, Nodes: 4, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			// Capacity 8 vs ~27 distinct templates (15 reads, 6 writes, 6 DDL)
			// guarantees evictions while traffic is still arriving.
			srv := New(inst, Config{MaxConcurrent: 8, QueueDepth: 256, StmtStatsCapacity: 8})
			ctx := context.Background()
			for _, ddl := range mixedDDL() {
				if _, err := srv.Exec(ctx, ddl); err != nil {
					t.Fatal(err)
				}
			}

			errs := make(chan error, 16)
			var wg sync.WaitGroup
			for w := range mixedRels {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for _, stmt := range mixedWriteOps(w) {
						if _, err := srv.Exec(ctx, stmt); err != nil {
							select {
							case errs <- fmt.Errorf("writer %d: %v", w, err):
							default:
							}
							return
						}
					}
				}(w)
			}
			suite := mixedReadSuite()
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						q := suite[(r+i)%len(suite)]
						if _, _, _, err := srv.Query(ctx, q); err != nil {
							select {
							case errs <- fmt.Errorf("reader %d: %v", r, err):
							default:
							}
							return
						}
					}
				}(r)
			}
			wg.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
			// A SHOW mid-stream counts as a statement itself.
			if _, err := srv.Exec(ctx, "show statements"); err != nil {
				t.Fatal(err)
			}

			snap := srv.obs.stmts.Snapshot()
			if snap.Evictions == 0 {
				t.Fatalf("no evictions with capacity %d — test lost its point", snap.Capacity)
			}
			var calls, errN, totalNanos, kvOps int64
			entries := snap.Statements
			if snap.Evicted != nil {
				entries = append(entries, *snap.Evicted)
			}
			for _, e := range entries {
				calls += e.Calls
				errN += e.Errors
				totalNanos += e.TotalNanos
				kvOps += e.KVOps
			}

			var wantCalls int64
			for _, v := range stmtVerbs {
				wantCalls += srv.obs.queries.With(v).Value()
			}
			if calls != wantCalls {
				t.Fatalf("registry holds %d calls, verb counters hold %d", calls, wantCalls)
			}
			if errN != 0 {
				t.Fatalf("registry recorded %d errors on an error-free run", errN)
			}
			merged := srv.obs.latency.MergedSnapshot()
			if merged.Count != calls {
				t.Fatalf("latency histogram holds %d observations, registry %d calls", merged.Count, calls)
			}
			if merged.SumNanos != totalNanos {
				t.Fatalf("latency histogram sums %dns, registry %dns — same wall must feed both", merged.SumNanos, totalNanos)
			}
			if kvOps <= 0 {
				t.Fatalf("registry recorded no kv ops across %d calls", calls)
			}

			// TopTemplates must conserve calls too (it folds the evicted
			// bucket and merges verbs).
			var topCalls int64
			for _, tt := range srv.obs.stmts.TopTemplates(snap.Tracked + 1) {
				topCalls += tt.Calls
			}
			if topCalls != calls {
				t.Fatalf("TopTemplates sums %d calls, registry %d", topCalls, calls)
			}
		})
	}
}
